// Tests for the telemetry layer: registry semantics, histogram bucketing,
// counting-plane snapshot bitwise identity serial vs pooled under a hostile
// fault schedule, registry-vs-report accounting closure, solver accounting
// reconciliation, trace-ring bounds and pool execution-plane stats.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/error.hpp"
#include "control/streaming.hpp"
#include "core/closed_loop.hpp"
#include "core/threadpool.hpp"
#include "field/solver.hpp"
#include "fluidic/chamber_network.hpp"
#include "obs/export.hpp"
#include "obs/fold.hpp"
#include "obs/obs.hpp"
#include "physics/medium.hpp"

namespace biochip::obs {
namespace {

// ---------------------------------------------------------- registry ----

TEST(MetricsRegistry, FindOrCreateReturnsStableIdsAndChecksKinds) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("service.delivered");
  const MetricId b = reg.counter("service.delivered");
  EXPECT_EQ(a.index, b.index);
  // Same name, different index = a different metric.
  const MetricId c0 = reg.counter("event.cell_lost", 0);
  const MetricId c1 = reg.counter("event.cell_lost", 1);
  EXPECT_NE(c0.index, c1.index);
  // Re-registering under another kind is a contract violation.
  EXPECT_THROW(reg.gauge("service.delivered"), PreconditionError);

  reg.inc(a);
  reg.inc(a, 4);
  EXPECT_EQ(reg.at(a).value, 5u);
  reg.set_counter(a, 2);
  EXPECT_EQ(reg.at(a).value, 2u);

  const MetricId g = reg.gauge("queue.depth", 1);
  reg.set(g, -3);
  EXPECT_EQ(reg.at(g).ivalue, -3);

  const Metric* found = reg.find("event.cell_lost", 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->index, 1);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBoundsPlusOverflow) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("latency", {1, 2, 4, 8});
  // Inclusive upper bounds: value <= bound lands in that bucket.
  reg.observe(h, 0);   // <= 1
  reg.observe(h, 1);   // <= 1
  reg.observe(h, 2);   // <= 2
  reg.observe(h, 3);   // <= 4
  reg.observe(h, 4);   // <= 4
  reg.observe(h, 8);   // <= 8
  reg.observe(h, 9);   // overflow
  reg.observe(h, 100); // overflow
  const Metric& m = reg.at(h);
  ASSERT_EQ(m.buckets.size(), 5u);
  EXPECT_EQ(m.buckets[0], 2u);
  EXPECT_EQ(m.buckets[1], 1u);
  EXPECT_EQ(m.buckets[2], 2u);
  EXPECT_EQ(m.buckets[3], 1u);
  EXPECT_EQ(m.buckets[4], 2u);
}

TEST(MetricsRegistry, SnapshotComparesAndFiltersExecutionPlane) {
  MetricsRegistry reg;
  reg.inc(reg.counter("a"));
  reg.set(reg.gauge("pool.max_parts", -1, Plane::kExecution), 8);

  const MetricsSnapshot full = reg.snapshot(7);
  EXPECT_EQ(full.tick, 7);
  EXPECT_EQ(full.metrics.size(), 2u);
  const MetricsSnapshot counting = reg.snapshot(7, /*counting_only=*/true);
  ASSERT_EQ(counting.metrics.size(), 1u);
  EXPECT_EQ(counting.metrics[0].name, "a");

  MetricsRegistry other;
  other.inc(other.counter("a"));
  other.set(other.gauge("pool.max_parts", -1, Plane::kExecution), 999);
  // Execution plane differs; the counting plane is identical.
  EXPECT_FALSE(reg.snapshot(7) == other.snapshot(7));
  EXPECT_TRUE(reg.snapshot(7, true) == other.snapshot(7, true));
}

// ---------------------------------------------------------- exporters ----

TEST(Exporters, SnapshotJsonlAndSummaryAreWellFormed) {
  MetricsRegistry reg;
  reg.inc(reg.counter("service.delivered"), 3);
  const MetricId h = reg.histogram("lat", {1, 2});
  reg.observe(h, 2);

  std::ostringstream jsonl;
  write_snapshot_jsonl(jsonl, reg.snapshot(42));
  const std::string line = jsonl.str();
  EXPECT_NE(line.find("\"schema\":\"biochip.metrics.v1\""), std::string::npos);
  EXPECT_NE(line.find("\"tick\":42"), std::string::npos);
  EXPECT_NE(line.find("\"service.delivered\""), std::string::npos);
  EXPECT_NE(line.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(line.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');

  std::ostringstream summary;
  write_summary_json(summary, reg.snapshot(42), "unit_test");
  EXPECT_NE(summary.str().find("\"label\": \"unit_test\""), std::string::npos);
  EXPECT_NE(summary.str().find("\"tick\": 42"), std::string::npos);
}

// -------------------------------------------------------- timing plane ----

TEST(TraceRecorder, RingBoundsMemoryAndCountsDrops) {
  TraceRecorder rec(4);
  for (int n = 0; n < 10; ++n)
    rec.record("phase", 100 * n, 100 * n + 50, /*lane=*/-1, /*tick=*/n);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<TraceSpan> spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Chronological, the newest 4.
  EXPECT_EQ(spans.front().tick, 6);
  EXPECT_EQ(spans.back().tick, 9);

  std::ostringstream out;
  rec.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceRecorder, NullRecorderPhasesAreSafeNoOps) {
  // The disabled path: no recorder, no clock read, no crash.
  {
    PhaseTicker phase(nullptr, -1, 1);
    phase.begin("a");
    phase.begin("b");
    phase.end();
  }
  {
    PhaseSpan span(nullptr, "c", -1, 1);
  }
  SUCCEED();
}

// --------------------------------------------------- solver accounting ----

field::DirichletBc plate_bc(const Grid3& g, double v_bottom, double v_top) {
  field::DirichletBc bc = field::DirichletBc::all_free(g);
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i) {
      bc.fixed[g.index(i, j, 0)] = 1;
      bc.value[g.index(i, j, 0)] = v_bottom;
      bc.fixed[g.index(i, j, g.nz() - 1)] = 1;
      bc.value[g.index(i, j, g.nz() - 1)] = v_top;
    }
  return bc;
}

// Workspace accounting is the exact sum of the per-call SolveStats — the
// same counters the benches accumulate — and fold_solver mirrors it into
// the registry verbatim.
TEST(SolverAccounting, WorkspaceTotalsAreExactSumsOfReturnedStats) {
  Grid3 phi(17, 17, 17, 1e-6);
  const field::DirichletBc bc = plate_bc(phi, 0.0, 3.3);
  field::MultigridWorkspace ws;

  field::SolveAccounting manual;
  for (int n = 0; n < 3; ++n) {
    Grid3 g(17, 17, 17, 1e-6);
    const field::SolveStats stats = field::solve_laplace(g, bc, {}, &ws);
    EXPECT_TRUE(stats.converged);
    manual.account(stats);
  }

  const field::SolveAccounting& acc = ws.accounting();
  EXPECT_EQ(acc.solves, 3u);
  EXPECT_EQ(acc.solves, manual.solves);
  EXPECT_EQ(acc.cycles, manual.cycles);
  EXPECT_EQ(acc.total_sweeps, manual.total_sweeps);
  EXPECT_EQ(acc.fine_equiv_sweeps, manual.fine_equiv_sweeps);
  EXPECT_EQ(acc.last_residual, manual.last_residual);
  EXPECT_GT(acc.cycles, 0u);
  EXPECT_GT(acc.total_sweeps, 0u);

  MetricsRegistry reg;
  fold_solver(reg, acc);
  EXPECT_EQ(reg.find("solver.solves")->value, acc.solves);
  EXPECT_EQ(reg.find("solver.cycles")->value, acc.cycles);
  EXPECT_EQ(reg.find("solver.sweeps")->value, acc.total_sweeps);
  EXPECT_EQ(reg.find("solver.fe_sweeps")->rvalue, acc.fine_equiv_sweeps);
  EXPECT_EQ(reg.find("solver.final_residual")->rvalue, acc.last_residual);
}

// ------------------------------------------------ pool execution plane ----

TEST(PoolStats, ParallelForTrafficIsCountedAndDeltaed) {
  core::ThreadPool pool(4);
  const core::PoolStats before = pool.stats();
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t n = b; n < e; ++n) hits[n] = 1;
  });
  const core::PoolStats delta = pool.stats().since(before);
  EXPECT_EQ(delta.jobs, 1u);
  EXPECT_GE(delta.chunks, 1u);
  EXPECT_LE(delta.chunks, 4u);
  EXPECT_GE(delta.max_parts, 1u);

  MetricsRegistry reg;
  fold_pool(reg, delta);
  const Metric* jobs = reg.find("pool.jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->plane, Plane::kExecution);
  EXPECT_EQ(jobs->value, delta.jobs);
}

// ------------------------------------- streaming snapshot identity ----

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  physics::ParticleBody prototype(const cell::ParticleSpec& spec) const {
    return {{0.0, 0.0, 0.0}, spec.radius, spec.density,
            spec.dep_prefactor(medium, dev.config().drive_frequency), 0};
  }

  control::ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

class ObsStreamingTest : public ::testing::Test {
 protected:
  ObsStreamingTest() {
    cfg_ = chip::paper_config_on_node(chip::paper_node());
    cfg_.cols = 16;
    cfg_.rows = 16;
    cage_ = chip::BiochipDevice(cfg_).calibrate_cage(5, 6);
  }

  /// One observed streaming run under a hostile schedule: scripted electrode
  /// + sensor faults, random escapes, health monitoring, elision — the
  /// nastiest deterministic load the identity suites exercise.
  std::pair<MetricsSnapshot, control::StreamingReport> run_observed(
      std::size_t max_parts, Observer& observer) {
    fluidic::ChamberNetwork network;
    fluidic::Microchamber geo;
    geo.length = cfg_.cols * cfg_.pitch;
    geo.width = cfg_.rows * cfg_.pitch;
    geo.height = cfg_.chamber_height;
    for (int c = 0; c < 2; ++c) network.add_chamber(geo, 16, 16);
    for (int c = 0; c < 2; ++c) network.add_inlet(c, {1, 8});

    auto w0 = std::make_unique<World>(cfg_, cage_);
    auto w1 = std::make_unique<World>(cfg_, cage_);

    control::StreamingConfig cfg;
    cfg.ticks = 260;
    cfg.arrival_rates = {0.12, 0.12};
    cfg.type_weights = {3.0, 1.0};
    cfg.body_prototypes = {w0->prototype(cell::viable_lymphocyte()),
                           w0->prototype(cell::polystyrene_bead(5e-6))};
    cfg.admission.queue_capacity = 4;
    cfg.admission.chamber_quota = 3;
    cfg.admission.degraded_quota = 1;
    cfg.service_deadline = 120;
    cfg.goal_sites = {{{12, 4}, {12, 8}, {12, 12}}, {{12, 4}, {12, 8}, {12, 12}}};
    cfg.control.escape_rate = 0.002;
    cfg.control.health.enabled = true;
    cfg.elide_idle_chambers = true;
    cfg.faults.scripted.push_back(
        {40, chip::FaultKind::kElectrodeDead, 0, {7, 3}, -1, 0});
    cfg.faults.scripted.push_back(
        {60, chip::FaultKind::kSensorRowDropout, 1, {0, 8}, -1, 5});
    cfg.faults.scripted.push_back(
        {90, chip::FaultKind::kSensorPixelBurst, 0, {6, 6}, -1, 3});

    control::StreamingService service(network, cfg);
    service.set_observer(&observer);
    std::vector<control::ChamberSetup> chambers{w0->setup(), w1->setup()};
    core::ThreadPool pool(4);
    const control::StreamingReport report =
        service.run(chambers, Rng(90210), max_parts == 1 ? nullptr : &pool,
                    max_parts);
    return {observer.metrics().snapshot(report.ticks, /*counting_only=*/true),
            report};
  }

  chip::DeviceConfig cfg_;
  field::HarmonicCage cage_;
};

// The counting-plane snapshot — every counter, gauge and histogram bucket —
// is bitwise identical between the serial reference and the pooled fan-out
// under the hostile fault schedule. One `==` over the whole snapshot.
TEST_F(ObsStreamingTest, CountingSnapshotBitwiseIdenticalSerialVsPooled) {
  ObsConfig ocfg;
  ocfg.enabled = true;
  ocfg.timing = false;  // counting plane only; wall clock stays untouched
  Observer serial_obs(ocfg), pooled_obs(ocfg);

  const auto [serial_snap, serial_report] = run_observed(1, serial_obs);
  const auto [pooled_snap, pooled_report] = run_observed(0, pooled_obs);

  EXPECT_TRUE(serial_report == pooled_report);
  EXPECT_TRUE(serial_snap == pooled_snap);
  EXPECT_GT(serial_snap.metrics.size(), 20u);
  // The hostile schedule actually exercised the system.
  EXPECT_GT(serial_report.admission.offered, 10u);
  EXPECT_GT(serial_report.delivered, 0u);
  EXPECT_EQ(serial_report.injected_faults, 3u);
}

// Accounting closure: the registry mirrors the streaming report exactly —
// counters, per-kind event totals, and the latency histogram holds exactly
// the delivered cells (same invariant the service gates on its own books).
TEST_F(ObsStreamingTest, RegistryReconcilesWithStreamingReport) {
  ObsConfig ocfg;
  ocfg.enabled = true;
  ocfg.timing = false;
  Observer obs(ocfg);
  const auto [snap, report] = run_observed(0, obs);
  (void)snap;
  const MetricsRegistry& reg = obs.metrics();

  EXPECT_EQ(reg.find("admission.offered")->value, report.admission.offered);
  EXPECT_EQ(reg.find("admission.shed")->value, report.admission.shed);
  EXPECT_EQ(reg.find("admission.admitted")->value, report.admission.admitted);
  EXPECT_EQ(reg.find("service.delivered")->value, report.delivered);
  EXPECT_EQ(reg.find("service.evicted")->value, report.evicted);
  EXPECT_EQ(reg.find("service.faults_injected")->value, report.injected_faults);
  EXPECT_EQ(static_cast<std::size_t>(
                reg.find("service.peak_in_flight")->ivalue),
            report.peak_in_flight);
  EXPECT_EQ(static_cast<std::size_t>(
                reg.find("service.frames_sensed")->ivalue),
            report.frames_sensed);

  // Histogram total == delivered (the report pins the same closure on its
  // own fixed-bin histogram; the registry's power-of-two bins must agree).
  const Metric* hist = reg.find("service.latency_ticks");
  ASSERT_NE(hist, nullptr);
  std::uint64_t hist_total = 0;
  for (std::uint64_t b : hist->buckets) hist_total += b;
  EXPECT_EQ(hist_total, report.delivered);

  // Per-kind event counters mirror the report's drained totals, chamber by
  // chamber — including kinds that never fired (pre-registered at zero).
  for (std::size_t c = 0; c < report.event_counts.size(); ++c)
    for (std::size_t k = 0; k < control::kEventKindCount; ++k) {
      const Metric* m = reg.find(
          std::string("event.") +
              control::to_string(static_cast<control::EventKind>(k)),
          static_cast<int>(c));
      ASSERT_NE(m, nullptr) << "kind " << k << " chamber " << c;
      EXPECT_EQ(m->value, report.event_counts[c][k])
          << "kind " << k << " chamber " << c;
    }

  // Shed closure across planes: audit events == admission counter.
  std::uint64_t shed_events = 0;
  for (std::size_t c = 0; c < report.event_counts.size(); ++c)
    shed_events +=
        reg.find(std::string("event.") +
                     control::to_string(control::EventKind::kAdmissionShed),
                 static_cast<int>(c))
            ->value;
  EXPECT_EQ(shed_events, report.admission.shed);
}

// A disabled observer must not perturb the run: report identical to a run
// with no observer attached at all.
TEST_F(ObsStreamingTest, DisabledObserverIsInert) {
  Observer disabled;  // default ObsConfig: enabled = false
  ASSERT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.trace(), nullptr);

  ObsConfig on;
  on.enabled = true;
  on.timing = false;
  Observer enabled(on);

  const auto [snap_on, report_on] = run_observed(0, enabled);
  (void)snap_on;
  const auto [snap_off, report_off] = run_observed(0, disabled);
  EXPECT_TRUE(report_on == report_off);
  EXPECT_EQ(snap_off.metrics.size(), 0u);
}

}  // namespace
}  // namespace biochip::obs
