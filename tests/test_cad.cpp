// Tests for the CAD layer: assay graphs, reconstructed benchmarks,
// scheduling, placement, routing, and end-to-end synthesis.

#include <gtest/gtest.h>

#include <set>

#include "cad/assay.hpp"
#include "cad/benchmarks.hpp"
#include "cad/place.hpp"
#include "cad/route.hpp"
#include "cad/schedule.hpp"
#include "cad/synthesis.hpp"
#include "chip/defects.hpp"
#include "common/error.hpp"

namespace biochip::cad {
namespace {

// ----------------------------------------------------------------- assay ----

TEST(Assay, BuildAndQuery) {
  AssayGraph g("t");
  const int a = g.add(OpKind::kInput, {}, 2.0, "a");
  const int b = g.add(OpKind::kInput, {}, 2.0, "b");
  const int m = g.add(OpKind::kMix, {a, b}, 10.0, "m");
  const int o = g.add(OpKind::kOutput, {m}, 2.0, "o");
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.successors(a), std::vector<int>{m});
  EXPECT_EQ(g.successors(m), std::vector<int>{o});
  EXPECT_NO_THROW(g.validate());
  EXPECT_DOUBLE_EQ(g.critical_path(), 14.0);
  EXPECT_EQ(g.count(OpKind::kInput), 2u);
}

TEST(Assay, ForwardReferenceRejected) {
  AssayGraph g("t");
  EXPECT_THROW(g.add(OpKind::kOutput, {5}, 1.0), PreconditionError);
}

TEST(Assay, ValidateCatchesWrongInDegree) {
  AssayGraph g("t");
  const int a = g.add(OpKind::kInput, {}, 1.0);
  g.add(OpKind::kMix, {a, a}, 1.0);  // mix with duplicate input passes count...
  // but the input now fans out twice without a split:
  EXPECT_THROW(g.validate(), ConfigError);
}

TEST(Assay, ValidateCatchesDanglingNonTerminal) {
  AssayGraph g("t");
  g.add(OpKind::kInput, {}, 1.0);  // never consumed
  EXPECT_THROW(g.validate(), ConfigError);
}

TEST(Assay, SplitMayFeedTwoConsumers) {
  AssayGraph g("t");
  const int a = g.add(OpKind::kInput, {}, 1.0);
  const int s = g.add(OpKind::kSplit, {a}, 1.0);
  g.add(OpKind::kOutput, {s}, 1.0);
  g.add(OpKind::kOutput, {s}, 1.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(Assay, CriticalPathIgnoresResourceLimits) {
  // Two independent chains: CP is the longer one.
  AssayGraph g("t");
  const int a = g.add(OpKind::kInput, {}, 1.0);
  const int b = g.add(OpKind::kInput, {}, 1.0);
  const int ia = g.add(OpKind::kIncubate, {a}, 30.0);
  const int ib = g.add(OpKind::kIncubate, {b}, 5.0);
  g.add(OpKind::kOutput, {ia}, 1.0);
  g.add(OpKind::kOutput, {ib}, 1.0);
  EXPECT_DOUBLE_EQ(g.critical_path(), 32.0);
}

// ------------------------------------------------------------- benchmarks ----

TEST(Benchmarks, PcrShape) {
  const AssayGraph g = pcr_mix(3);
  EXPECT_EQ(g.count(OpKind::kInput), 8u);
  EXPECT_EQ(g.count(OpKind::kMix), 7u);  // the classic 7-mix PCR tree
  EXPECT_EQ(g.count(OpKind::kOutput), 1u);
  EXPECT_NO_THROW(g.validate());
  // Critical path: input + 3 mixing levels + output.
  OpDurations d;
  EXPECT_DOUBLE_EQ(g.critical_path(), d.input + 3 * d.mix + d.output);
}

TEST(Benchmarks, IvdShape) {
  const AssayGraph g = invitro_diagnostics(3, 4);
  EXPECT_EQ(g.count(OpKind::kMix), 12u);
  EXPECT_EQ(g.count(OpKind::kDetect), 12u);
  EXPECT_EQ(g.count(OpKind::kInput), 24u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Benchmarks, DilutionShape) {
  const AssayGraph g = serial_dilution(7);
  EXPECT_EQ(g.count(OpKind::kMix), 7u);
  EXPECT_EQ(g.count(OpKind::kSplit), 7u);
  EXPECT_EQ(g.count(OpKind::kDetect), 7u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Benchmarks, CellSortShape) {
  const AssayGraph g = dep_cell_sort(16);
  EXPECT_EQ(g.count(OpKind::kInput), 16u);
  EXPECT_EQ(g.count(OpKind::kDetect), 16u);
  EXPECT_EQ(g.count(OpKind::kOutput), 16u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Benchmarks, SuiteAllValid) {
  for (const AssayGraph& g : benchmark_suite()) EXPECT_NO_THROW(g.validate());
}

TEST(Benchmarks, ParameterValidation) {
  EXPECT_THROW(pcr_mix(0), PreconditionError);
  EXPECT_THROW(invitro_diagnostics(0, 3), PreconditionError);
  EXPECT_THROW(serial_dilution(100), PreconditionError);
}

// -------------------------------------------------------------- schedule ----

TEST(Schedule, AsapEqualsCriticalPath) {
  const AssayGraph g = pcr_mix(3);
  const Schedule s = asap_schedule(g);
  EXPECT_DOUBLE_EQ(s.makespan, g.critical_path());
}

TEST(Schedule, AlapRespectsDeadlineAndPrecedence) {
  const AssayGraph g = pcr_mix(3);
  const double deadline = g.critical_path() + 20.0;
  const Schedule s = alap_schedule(g, deadline);
  EXPECT_DOUBLE_EQ(s.makespan, deadline);
  for (const Operation& o : g.operations())
    for (int in : o.inputs)
      EXPECT_LE(s.at(in).end, s.at(o.id).start + 1e-9);
  EXPECT_THROW(alap_schedule(g, 1.0), PreconditionError);
}

TEST(Schedule, ListRespectsResources) {
  const AssayGraph g = pcr_mix(3);
  const ChipResources res{2, 0, 2};
  const Schedule s = list_schedule(g, res);
  EXPECT_NO_THROW(check_schedule(g, s, res));
  EXPECT_GE(s.makespan, g.critical_path());
}

TEST(Schedule, UnlimitedResourcesReachAsap) {
  const AssayGraph g = pcr_mix(3);
  const ChipResources unlimited{0, 0, 0};
  const Schedule s = list_schedule(g, unlimited);
  EXPECT_NEAR(s.makespan, g.critical_path(), 1e-9);
}

TEST(Schedule, ListNeverWorseThanFifoOnSuite) {
  const ChipResources res{2, 2, 2};
  for (const AssayGraph& g : benchmark_suite()) {
    const Schedule lst = list_schedule(g, res);
    const Schedule fifo = fifo_schedule(g, res);
    EXPECT_NO_THROW(check_schedule(g, lst, res)) << g.name();
    EXPECT_NO_THROW(check_schedule(g, fifo, res)) << g.name();
    EXPECT_LE(lst.makespan, fifo.makespan * 1.001) << g.name();
  }
}

TEST(Schedule, TighterResourcesNeverFaster) {
  const AssayGraph g = invitro_diagnostics(3, 3);
  double prev = 1e99;
  for (int mixers : {1, 2, 4, 8}) {
    const Schedule s = list_schedule(g, {mixers, 0, 2});
    EXPECT_LE(s.makespan, prev + 1e-9) << mixers;
    prev = s.makespan;
  }
}

TEST(Schedule, CheckScheduleCatchesViolations) {
  const AssayGraph g = pcr_mix(2);
  Schedule s = list_schedule(g, {0, 0, 0});
  // Push an input op later than its consuming mix: precedence broken.
  s.ops[0].start += 100.0;
  s.ops[0].end += 100.0;
  EXPECT_THROW(check_schedule(g, s, {0, 0, 0}), PreconditionError);
  // Duration tampering is caught too.
  Schedule s2 = list_schedule(g, {0, 0, 0});
  s2.ops[1].end += 3.0;
  EXPECT_THROW(check_schedule(g, s2, {0, 0, 0}), PreconditionError);
}

// ----------------------------------------------------------------- place ----

class PlaceTest : public ::testing::Test {
 protected:
  AssayGraph graph_ = pcr_mix(3);
  Schedule schedule_ = list_schedule(graph_, {4, 0, 4});
  PlacerConfig config_{{64, 64}, 6, 2};
};

TEST_F(PlaceTest, GreedyPlacementLegal) {
  const Placement p = greedy_place(graph_, schedule_, config_);
  ASSERT_TRUE(p.valid) << (p.issues.empty() ? "" : p.issues.front());
  EXPECT_NO_THROW(check_placement(graph_, schedule_, p, config_));
}

TEST_F(PlaceTest, EveryOpGetsAModule) {
  const Placement p = greedy_place(graph_, schedule_, config_);
  for (const Operation& o : graph_.operations())
    EXPECT_NO_THROW(p.at(o.id)) << o.label;
}

TEST_F(PlaceTest, PortsSitOnEdges) {
  const Placement p = greedy_place(graph_, schedule_, config_);
  for (const Operation& o : graph_.operations()) {
    if (o.kind == OpKind::kInput) {
      EXPECT_EQ(p.at(o.id).origin.col, 0) << o.label;
    }
    if (o.kind == OpKind::kOutput) {
      EXPECT_EQ(p.at(o.id).origin.col, config_.dims.cols - 1) << o.label;
    }
  }
}

TEST_F(PlaceTest, AnnealImprovesOrMatchesTransportCost) {
  const Placement greedy = greedy_place(graph_, schedule_, config_);
  Rng rng(13);
  const Placement annealed = annealed_place(graph_, schedule_, config_, rng, 3000);
  ASSERT_TRUE(annealed.valid);
  EXPECT_NO_THROW(check_placement(graph_, schedule_, annealed, config_));
  EXPECT_LE(transport_cost(graph_, annealed), transport_cost(graph_, greedy) + 1e-9);
}

TEST_F(PlaceTest, TooSmallArrayReported) {
  // 12x12 sites cannot host 4 concurrent 6x6 modules with halo 2.
  PlacerConfig tiny{{12, 12}, 6, 2};
  const AssayGraph wide = invitro_diagnostics(2, 2);
  const Schedule s = list_schedule(wide, {4, 0, 4});
  const Placement p = greedy_place(wide, s, tiny);
  EXPECT_FALSE(p.valid);
  EXPECT_FALSE(p.issues.empty());
}

TEST_F(PlaceTest, ModuleSizeSanityCheck) {
  PlacerConfig bad{{6, 6}, 6, 2};
  EXPECT_THROW(greedy_place(graph_, schedule_, bad), PreconditionError);
}

// ----------------------------------------------------------------- route ----

RouteConfig small_grid() {
  RouteConfig cfg;
  cfg.cols = 32;
  cfg.rows = 32;
  return cfg;
}

TEST(Route, SingleCageStraightLine) {
  const std::vector<RouteRequest> reqs{{0, {2, 2}, {20, 2}}};
  for (auto* router : {&route_greedy, &route_astar}) {
    const RouteResult r = (*router)(reqs, small_grid());
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.makespan_steps, 18);
    EXPECT_EQ(r.total_moves, 18u);
    EXPECT_NO_THROW(verify_routes(reqs, r, small_grid()));
  }
}

TEST(Route, AlreadyAtTarget) {
  const std::vector<RouteRequest> reqs{{0, {5, 5}, {5, 5}}};
  const RouteResult r = route_astar(reqs, small_grid());
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan_steps, 0);
  EXPECT_EQ(r.total_moves, 0u);
}

TEST(Route, CrossingPairAstarSucceeds) {
  // Two cages swapping corridor ends: greedy may gridlock, A* must solve.
  const std::vector<RouteRequest> reqs{{0, {2, 10}, {28, 10}},
                                       {1, {28, 12}, {2, 12}}};
  const RouteResult r = route_astar(reqs, small_grid());
  EXPECT_TRUE(r.success);
  EXPECT_NO_THROW(verify_routes(reqs, r, small_grid()));
}

TEST(Route, HeadOnConflictResolvedByAstar) {
  // Directly head-on on the same row: one cage must yield.
  const std::vector<RouteRequest> reqs{{0, {2, 10}, {28, 10}},
                                       {1, {28, 10}, {2, 10}}};
  const RouteResult r = route_astar(reqs, small_grid());
  EXPECT_TRUE(r.success);
  EXPECT_NO_THROW(verify_routes(reqs, r, small_grid()));
  EXPECT_GE(r.makespan_steps, 26);  // at least the Manhattan distance
}

TEST(Route, ObstacleAvoided) {
  RouteConfig cfg = small_grid();
  cfg.obstacles.push_back({{10, 0}, 4, 28});  // wall with gap at the top
  const std::vector<RouteRequest> reqs{{0, {2, 5}, {28, 5}}};
  const RouteResult r = route_astar(reqs, cfg);
  EXPECT_TRUE(r.success);
  EXPECT_NO_THROW(verify_routes(reqs, r, cfg));
  EXPECT_GT(r.total_moves, 26u);  // forced detour
}

TEST(Route, ImpossibleRouteFails) {
  RouteConfig cfg = small_grid();
  cfg.obstacles.push_back({{10, 0}, 4, 32});  // full wall
  cfg.max_steps = 200;
  const std::vector<RouteRequest> reqs{{0, {2, 5}, {28, 5}}};
  const RouteResult r = route_astar(reqs, cfg);
  EXPECT_FALSE(r.success);
  ASSERT_EQ(r.failed_ids.size(), 1u);
  EXPECT_EQ(r.failed_ids.front(), 0);
}

TEST(Route, BlockedSitesNeverEntered) {
  // Defect-aware routing: sites blocked by a sampled DefectMap must never be
  // entered by either router, on randomized instances.
  for (const int seed : {1, 2, 3, 4, 5}) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const chip::ElectrodeArray array(32, 32, 20e-6);
    const chip::DefectMap defects = chip::sample_defects(array, 0.01, rng);
    RouteConfig cfg = small_grid();
    cfg.blocked = chip::blocked_site_mask(array, defects, 1);

    std::vector<RouteRequest> reqs;
    int id = 0;
    while (reqs.size() < 4) {
      const GridCoord from{static_cast<int>(rng.uniform_int(2, 29)),
                           static_cast<int>(rng.uniform_int(2, 29))};
      const GridCoord to{static_cast<int>(rng.uniform_int(2, 29)),
                         static_cast<int>(rng.uniform_int(2, 29))};
      if (cfg.is_blocked(from) || cfg.is_blocked(to)) continue;
      bool separated = true;
      for (const RouteRequest& r : reqs)
        if (chebyshev(from, r.from) < 2 || chebyshev(to, r.to) < 2) separated = false;
      if (!separated) continue;
      reqs.push_back({id++, from, to});
    }

    for (auto* router : {&route_greedy, &route_astar}) {
      const RouteResult r = (*router)(reqs, cfg);
      for (const RoutedPath& p : r.paths)
        for (std::size_t t = 1; t < p.waypoints.size(); ++t)
          EXPECT_FALSE(cfg.is_blocked(p.waypoints[t]))
              << "seed " << seed << " cage " << p.id << " t " << t;
      if (router == &route_astar) {
        EXPECT_TRUE(r.success) << "seed " << seed;
        EXPECT_NO_THROW(verify_routes(reqs, r, cfg));
      }
    }
  }
}

TEST(Route, BlockedDestinationFailsCleanly) {
  RouteConfig cfg = small_grid();
  cfg.blocked.assign(static_cast<std::size_t>(cfg.cols) * cfg.rows, 0);
  cfg.blocked[10 * 32 + 20] = 1;  // target site {20, 10}
  cfg.max_steps = 120;
  const std::vector<RouteRequest> reqs{{0, {2, 10}, {20, 10}}};
  const RouteResult r = route_astar(reqs, cfg);
  EXPECT_FALSE(r.success);
  ASSERT_EQ(r.failed_ids.size(), 1u);
}

TEST(Route, ReservedReplanAvoidsCommittedTraffic) {
  // Plan two cages, then re-route cage 0 mid-execution (t0 = 3) to a new
  // target: the new path must start where the cage actually is and respect
  // cage 1's still-valid committed path at every absolute step.
  const std::vector<RouteRequest> reqs{{0, {2, 10}, {20, 10}},
                                       {1, {10, 2}, {10, 20}}};
  const RouteConfig cfg = small_grid();
  const RouteResult base = route_astar(reqs, cfg);
  ASSERT_TRUE(base.success);

  const int t0 = 3;
  const RoutedPath& own = base.paths[0];
  const std::vector<RoutedPath> committed{base.paths[1]};
  const RouteRequest replan{0, own.position_at(t0), {20, 4}};
  const auto fresh = route_astar_reserved(replan, cfg, committed, t0);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->waypoints.front(), own.position_at(t0));
  EXPECT_EQ(fresh->waypoints.back(), (GridCoord{20, 4}));
  for (std::size_t s = 0; s < fresh->waypoints.size(); ++s) {
    const int t = t0 + static_cast<int>(s);
    EXPECT_GE(chebyshev(fresh->waypoints[s], committed[0].position_at(t)),
              cfg.min_separation)
        << "t " << t;
    if (s > 0) {
      EXPECT_LE(manhattan(fresh->waypoints[s], fresh->waypoints[s - 1]), 1);
    }
  }
  // And the parked tail stays separated from the committed path's remainder.
  for (int t = t0 + static_cast<int>(fresh->waypoints.size());
       t <= static_cast<int>(committed[0].waypoints.size()); ++t)
    EXPECT_GE(chebyshev(fresh->waypoints.back(), committed[0].position_at(t)),
              cfg.min_separation);
}

// Determinism-audit regression (docs/static-analysis.md): the reserved A*
// keeps an unordered_set of visited (site, t) keys. That set is
// membership-only — expansion order is fully decided by the priority queue's
// (f, h, push-order) tie-breaking — so the hash layout must never reach the
// returned path. Pin it: many searches over obstacle-rich grids, re-run in
// reverse order and interleaved with unrelated allocations (which perturb
// the set's bucket landscape), must return bitwise-identical waypoints.
TEST(Route, AstarReservedRepeatedSearchesAreBitwiseIdentical) {
  RouteConfig cfg = small_grid();
  cfg.max_steps = 160;
  const std::vector<RouteRequest> reqs{{0, {2, 10}, {20, 10}},
                                       {1, {10, 2}, {10, 20}}};
  const RouteResult base = route_astar(reqs, cfg);
  ASSERT_TRUE(base.success);
  const std::vector<RoutedPath> committed{base.paths[1]};

  std::vector<RouteRequest> replans;
  for (int col = 4; col <= 24; col += 2)
    replans.push_back({0, {2, 10}, {col, 4}});

  std::vector<std::vector<GridCoord>> first_pass;
  for (const RouteRequest& r : replans) {
    const auto p = route_astar_reserved(r, cfg, committed, 0);
    ASSERT_TRUE(p.has_value()) << "to {" << r.to.col << "," << r.to.row << "}";
    first_pass.push_back(p->waypoints);
  }
  for (std::size_t i = replans.size(); i-- > 0;) {
    std::vector<int> churn(1 + 977 * i % 4096);  // heap-state perturbation
    churn.back() = static_cast<int>(i);
    const auto p = route_astar_reserved(replans[i], cfg, committed, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->waypoints, first_pass[i]) << "replan " << i << " diverged";
  }
}

TEST(Route, GreedyGridlocksWhereAstarSolves) {
  // Narrow 5-row grid, two cages must pass each other: greedy's no-detour
  // policy deadlocks, prioritized A* waits one cage out.
  RouteConfig cfg;
  cfg.cols = 24;
  cfg.rows = 5;
  const std::vector<RouteRequest> reqs{{0, {2, 2}, {21, 2}}, {1, {21, 2}, {2, 2}}};
  const RouteResult greedy = route_greedy(reqs, cfg);
  const RouteResult astar = route_astar(reqs, cfg);
  EXPECT_FALSE(greedy.success);
  EXPECT_TRUE(astar.success);
  EXPECT_NO_THROW(verify_routes(reqs, astar, cfg));
}

class RouteSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(RouteSeedTest, RandomScattersAlwaysVerify) {
  // Property test: random many-cage instances must either fail cleanly or
  // produce fully verified, separation-respecting paths.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RouteConfig cfg;
  cfg.cols = 40;
  cfg.rows = 40;
  std::vector<RouteRequest> reqs;
  std::set<std::pair<int, int>> used_from, used_to;
  for (int i = 0; i < 12; ++i) {
    GridCoord from{static_cast<int>(rng.uniform_int(0, 39)),
                   static_cast<int>(rng.uniform_int(0, 39))};
    GridCoord to{static_cast<int>(rng.uniform_int(0, 39)),
                 static_cast<int>(rng.uniform_int(0, 39))};
    // Keep sources/targets pairwise separated (physical precondition).
    bool ok = true;
    for (const auto& [c, r] : used_from)
      if (chebyshev(from, {c, r}) < 2) ok = false;
    for (const auto& [c, r] : used_to)
      if (chebyshev(to, {c, r}) < 2) ok = false;
    if (!ok) continue;
    used_from.insert({from.col, from.row});
    used_to.insert({to.col, to.row});
    reqs.push_back({i, from, to});
  }
  const RouteResult r = route_astar(reqs, cfg);
  EXPECT_TRUE(r.success);
  EXPECT_NO_THROW(verify_routes(reqs, r, cfg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteSeedTest, ::testing::Range(1, 9));

// -------------------------------------------------------------- synthesis ----

TEST(Synthesis, PcrEndToEnd) {
  SynthesisConfig cfg;
  const SynthesisResult r = synthesize(pcr_mix(3), cfg);
  EXPECT_TRUE(r.success) << (r.issues.empty() ? "" : r.issues.front());
  EXPECT_GE(r.processing_makespan, pcr_mix(3).critical_path() - 1e-9);
  EXPECT_GT(r.transport_steps, 0u);
  EXPECT_NEAR(r.total_time, r.processing_makespan + r.transport_time, 1e-9);
}

TEST(Synthesis, SuiteSynthesizesOnPaperScaleArray) {
  SynthesisConfig cfg;
  cfg.dims = {128, 128};
  cfg.resources = {6, 0, 4};
  for (const AssayGraph& g : benchmark_suite()) {
    const SynthesisResult r = synthesize(g, cfg);
    EXPECT_TRUE(r.success) << g.name() << ": "
                           << (r.issues.empty() ? "?" : r.issues.front());
  }
}

TEST(Synthesis, TransportTimeUsesStepPeriod) {
  SynthesisConfig slow;
  slow.step_period = 2.0;  // 10 µm/s cells
  SynthesisConfig fast;
  fast.step_period = 0.2;  // 100 µm/s cells
  const SynthesisResult rs = synthesize(pcr_mix(2), slow);
  const SynthesisResult rf = synthesize(pcr_mix(2), fast);
  ASSERT_TRUE(rs.success && rf.success);
  EXPECT_EQ(rs.transport_steps, rf.transport_steps);  // same routes
  EXPECT_NEAR(rs.transport_time / rf.transport_time, 10.0, 1e-6);
}

TEST(Synthesis, FifoBaselineNeverBeatsListScheduler) {
  SynthesisConfig lst;
  lst.resources = {2, 0, 2};
  SynthesisConfig fifo = lst;
  fifo.list_scheduler = false;
  const SynthesisResult a = synthesize(invitro_diagnostics(2, 3), lst);
  const SynthesisResult b = synthesize(invitro_diagnostics(2, 3), fifo);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_LE(a.processing_makespan, b.processing_makespan + 1e-9);
}

TEST(Synthesis, EpisodesCoverEveryDataEdge) {
  const AssayGraph g = pcr_mix(2);
  SynthesisConfig cfg;
  const SynthesisResult r = synthesize(g, cfg);
  ASSERT_TRUE(r.success);
  std::size_t edges = 0;
  for (const Operation& o : g.operations()) edges += o.inputs.size();
  std::size_t transfers = 0;
  for (const TransferEpisode& e : r.episodes) transfers += e.transfers.size();
  EXPECT_EQ(transfers, edges);
}

TEST(Synthesis, ImpossiblePlacementReportedNotThrown) {
  SynthesisConfig cfg;
  cfg.dims = {12, 12};
  cfg.resources = {8, 0, 8};
  const SynthesisResult r = synthesize(invitro_diagnostics(3, 3), cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.issues.empty());
}

}  // namespace
}  // namespace biochip::cad
