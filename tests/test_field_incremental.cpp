// Oracle-equivalence harness for the incremental (dirty-window) field path:
// seeded random cage-hop fuzz across mixed tile shapes, checking after every
// step that the tracked potential stays within the agreement budget of a
// cold full solve, is bitwise equal to it at re-anchor ticks, and is bitwise
// identical for every solver thread count.
//
// BIOCHIP_LONGFUZZ=<n> multiplies the fuzz sequence count (the `longfuzz`
// ctest label runs with n=10; the default tier-1 budget stays short).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "field/incremental.hpp"

namespace biochip::field {
namespace {

constexpr double kPitch = 20e-6;

// Agreement budget [V per volt of drive] of a windowed step vs the
// full-solve oracle at window radius 2.5 pitches. The exterior correction a
// window freezes decays like a dipole field (~(pitch/r)^3 of the drive
// change — algebraic, not exponential), so the budget is set by the radius
// policy, and the re-anchor cadence bounds how many stale exteriors can
// accumulate between exact states (docs/perf.md, "Incremental field
// updates"). Calibrated with ~2x headroom over the fuzz-observed worst case.
constexpr double kAgreementTol = 8e-2;

struct TileShape {
  int cols;
  int rows;
  int npp;              ///< grid nodes per electrode pitch
  double height_pitches;  ///< chamber height in pitch lengths
};

std::vector<Rect> tile_footprints(int cols, int rows, double fill = 0.8) {
  std::vector<Rect> out;
  out.reserve(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows));
  const double half = 0.5 * kPitch * fill;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const double cx = (static_cast<double>(c) + 0.5) * kPitch;
      const double cy = (static_cast<double>(r) + 0.5) * kPitch;
      out.push_back({{cx - half, cy - half}, {cx + half, cy + half}});
    }
  return out;
}

ChamberDomain tile_domain(const TileShape& s) {
  ChamberDomain d;
  d.spacing = kPitch / static_cast<double>(s.npp);
  d.width_x = static_cast<double>(s.cols) * kPitch;
  d.width_y = static_cast<double>(s.rows) * kPitch;
  d.height = s.height_pitches * kPitch;
  return d;
}

SolverOptions tracker_options(std::size_t reanchor_period = 8) {
  SolverOptions opts;
  opts.tolerance = 1e-8;
  opts.incremental.tolerance = 1e-8;
  opts.incremental.window_radius_pitches = 2.5;
  opts.incremental.reanchor_period = reanchor_period;
  return opts;
}

std::size_t longfuzz_factor() {
  const char* env = std::getenv("BIOCHIP_LONGFUZZ");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

double max_abs_diff(const Grid3& a, const Grid3& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t n = 0; n < a.size(); ++n)
    worst = std::max(worst, std::abs(a.data()[n] - b.data()[n]));
  return worst;
}

bool bitwise_equal(const Grid3& a, const Grid3& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t n = 0; n < a.size(); ++n)
    if (a.data()[n] != b.data()[n]) return false;
  return true;
}

/// Random cage-hop drive generator: `cages` electrodes driven, one hopping
/// to a free lateral neighbor per step; occasionally a cage's amplitude
/// flips between 1.0 and 0.6 V instead (a value change without a move).
struct HopFuzz {
  HopFuzz(int cols, int rows, std::size_t cages, Rng rng)
      : cols_(cols), rows_(rows), rng_(rng) {
    drive.assign(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows), 0.0);
    while (pos_.size() < cages) {
      const int c = static_cast<int>(rng_.uniform_int(0, cols - 1));
      const int r = static_cast<int>(rng_.uniform_int(0, rows - 1));
      if (!occupied(c, r)) {
        pos_.push_back({c, r});
        amp_.push_back(1.0);
      }
    }
    write_drive();
  }

  void step() {
    const std::size_t who =
        static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(pos_.size()) - 1));
    if (rng_.bernoulli(0.2)) {
      amp_[who] = amp_[who] == 1.0 ? 0.6 : 1.0;
    } else {
      static constexpr int dc[4] = {1, -1, 0, 0};
      static constexpr int dr[4] = {0, 0, 1, -1};
      const std::size_t dir = static_cast<std::size_t>(rng_.uniform_int(0, 3));
      const int nc = pos_[who].first + dc[dir];
      const int nr = pos_[who].second + dr[dir];
      if (nc >= 0 && nc < cols_ && nr >= 0 && nr < rows_ && !occupied(nc, nr))
        pos_[who] = {nc, nr};
    }
    write_drive();
  }

  std::vector<double> drive;

 private:
  bool occupied(int c, int r) const {
    for (const auto& p : pos_)
      if (p.first == c && p.second == r) return true;
    return false;
  }
  void write_drive() {
    std::fill(drive.begin(), drive.end(), 0.0);
    for (std::size_t n = 0; n < pos_.size(); ++n)
      drive[static_cast<std::size_t>(pos_[n].second) * static_cast<std::size_t>(cols_) +
            static_cast<std::size_t>(pos_[n].first)] = amp_[n];
  }

  int cols_;
  int rows_;
  Rng rng_;
  std::vector<std::pair<int, int>> pos_;
  std::vector<double> amp_;
};

// ------------------------------------------------------------ exactness ----

TEST(IncrementalField, FirstUpdateAndReanchorsBitwiseEqualOracle) {
  const TileShape shape{5, 5, 4, 2.0};
  IncrementalPotential inc(tile_domain(shape), tile_footprints(shape.cols, shape.rows),
                           /*lid_present=*/false, kPitch, tracker_options(4));
  HopFuzz fuzz(shape.cols, shape.rows, 3, Rng(101));

  std::size_t reanchors = 0;
  for (int step = 0; step < 12; ++step) {
    const auto rep = inc.update(fuzz.drive);
    ASSERT_TRUE(rep.stats.converged) << "step " << step;
    if (step == 0) {
      EXPECT_TRUE(rep.reanchored);  // first call primes with a full solve
    }
    if (rep.reanchored) {
      ++reanchors;
      EXPECT_DOUBLE_EQ(rep.window_fraction, 1.0);
      // The re-anchor restarts from a zeroed interior, so it must reproduce
      // the independent cold oracle bit for bit — not just within tolerance.
      EXPECT_TRUE(bitwise_equal(inc.potential(), inc.oracle())) << "step " << step;
    }
    fuzz.step();
  }
  // Period 4: the priming solve plus a cadence re-anchor every 4th update.
  EXPECT_GE(reanchors, 3u);
}

TEST(IncrementalField, ExplicitReanchorRestoresExactEquality) {
  const TileShape shape{4, 4, 4, 2.0};
  IncrementalPotential inc(tile_domain(shape), tile_footprints(shape.cols, shape.rows),
                           false, kPitch, tracker_options(0));  // 0 = never auto-anchor
  HopFuzz fuzz(shape.cols, shape.rows, 2, Rng(202));
  inc.update(fuzz.drive);
  for (int step = 0; step < 6; ++step) {
    fuzz.step();
    inc.update(fuzz.drive);
  }
  // Windowed drift is bounded but (in general) nonzero...
  EXPECT_LE(max_abs_diff(inc.potential(), inc.oracle()), kAgreementTol);
  // ...and a forced re-anchor erases it exactly.
  const SolveStats stats = inc.reanchor();
  EXPECT_TRUE(stats.converged);
  EXPECT_TRUE(bitwise_equal(inc.potential(), inc.oracle()));
}

TEST(IncrementalField, AccountingSeparatesWindowedFromFullSolves) {
  const TileShape shape{6, 6, 4, 2.0};
  IncrementalPotential inc(tile_domain(shape), tile_footprints(shape.cols, shape.rows),
                           false, kPitch, tracker_options(0));
  HopFuzz fuzz(shape.cols, shape.rows, 2, Rng(303));
  inc.update(fuzz.drive);  // full solve
  EXPECT_EQ(inc.accounting().solves, 1u);
  EXPECT_EQ(inc.accounting().window_solves, 0u);

  std::size_t effective = 0;
  for (int step = 0; step < 8; ++step) {
    fuzz.step();
    const auto rep = inc.update(fuzz.drive);
    if (rep.changed > 0) ++effective;
    EXPECT_FALSE(rep.reanchored);
  }
  EXPECT_EQ(inc.accounting().solves, 1u);  // no further full solves
  EXPECT_GE(inc.accounting().window_solves, effective);
  // A single-cage hop touches a small fraction of the tile.
  const double mean_fraction = inc.accounting().window_fraction_sum /
                               static_cast<double>(inc.accounting().window_solves);
  EXPECT_LT(mean_fraction, 0.75);
  EXPECT_GT(mean_fraction, 0.0);
}

// ------------------------------------------------------------------ fuzz ----

TEST(IncrementalFuzz, CageHopSequencesMatchOracleOnMixedTiles) {
  const std::vector<TileShape> shapes{
      {4, 4, 4, 2.0}, {6, 3, 3, 1.5}, {5, 5, 2, 2.0}};
  const std::size_t sequences = 8 * longfuzz_factor();
  const int steps = 25;

  double worst = 0.0;
  const Rng base(20260807);
  for (std::size_t sh = 0; sh < shapes.size(); ++sh) {
    const TileShape& shape = shapes[sh];
    for (std::size_t seq = 0; seq < sequences; ++seq) {
      IncrementalPotential inc(tile_domain(shape),
                               tile_footprints(shape.cols, shape.rows), false,
                               kPitch, tracker_options(8));
      HopFuzz fuzz(shape.cols, shape.rows, 1 + seq % 3, base.fork(sh).fork(seq));
      for (int step = 0; step < steps; ++step) {
        const auto rep = inc.update(fuzz.drive);
        ASSERT_TRUE(rep.stats.converged)
            << "shape " << sh << " seq " << seq << " step " << step;
        const double err = max_abs_diff(inc.potential(), inc.oracle());
        worst = std::max(worst, err);
        if (rep.reanchored) {
          ASSERT_EQ(err, 0.0) << "shape " << sh << " seq " << seq << " step " << step;
        } else {
          ASSERT_LE(err, kAgreementTol)
              << "shape " << sh << " seq " << seq << " step " << step;
        }
        fuzz.step();
      }
    }
  }
  RecordProperty("worst_abs_error", std::to_string(worst));
}

// The no-op contract under fuzz: replaying the same drive is bitwise inert
// and does not advance the re-anchor cadence.
TEST(IncrementalFuzz, RepeatedDriveIsBitwiseInert) {
  const TileShape shape{5, 4, 3, 2.0};
  IncrementalPotential inc(tile_domain(shape), tile_footprints(shape.cols, shape.rows),
                           false, kPitch, tracker_options(3));
  // Explicit drive sequence (guaranteed-effective changes, unlike a random
  // hop that can bounce off a wall and leave the drive unchanged).
  std::vector<double> drive(inc.electrode_count(), 0.0);
  drive[7] = 1.0;
  inc.update(drive);  // priming anchor
  drive[7] = 0.0;
  drive[8] = 1.0;
  inc.update(drive);  // effective update #1 since the anchor

  const Grid3 before = inc.potential();
  const SolveAccounting acct = inc.accounting();
  for (int n = 0; n < 5; ++n) {
    const auto rep = inc.update(drive);  // identical drive, repeatedly
    EXPECT_EQ(rep.changed, 0u);
    EXPECT_FALSE(rep.reanchored);
    EXPECT_EQ(rep.windows, 0u);
  }
  EXPECT_TRUE(bitwise_equal(inc.potential(), before));
  EXPECT_EQ(inc.accounting().solves, acct.solves);
  EXPECT_EQ(inc.accounting().window_solves, acct.window_solves);

  // The next effective updates land on the original cadence slots: #2 is
  // still windowed, #3 hits the period-3 re-anchor.
  drive[8] = 0.6;
  EXPECT_FALSE(inc.update(drive).reanchored);
  drive[8] = 1.0;
  EXPECT_TRUE(inc.update(drive).reanchored);
}

// -------------------------------------------------------------- threading ----

TEST(IncrementalField, WindowedUpdatesBitwiseIdenticalSerialVsPooled) {
  const TileShape shape{6, 5, 4, 2.0};
  const auto run_once = [&](std::size_t threads) {
    SolverOptions opts = tracker_options(6);
    opts.threads = threads;
    IncrementalPotential inc(tile_domain(shape),
                             tile_footprints(shape.cols, shape.rows), false,
                             kPitch, opts);
    HopFuzz fuzz(shape.cols, shape.rows, 3, Rng(505));
    std::vector<Grid3> trajectory;
    for (int step = 0; step < 15; ++step) {
      inc.update(fuzz.drive);
      trajectory.push_back(inc.potential());
      fuzz.step();
    }
    return trajectory;
  };

  const std::vector<Grid3> serial = run_once(1);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    const std::vector<Grid3> pooled = run_once(threads);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t s = 0; s < serial.size(); ++s)
      ASSERT_TRUE(bitwise_equal(serial[s], pooled[s]))
          << "threads " << threads << " step " << s;
  }
}

}  // namespace
}  // namespace biochip::field
