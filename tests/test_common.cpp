// Tests for the common substrate: units, geometry, RNG, grids, linear
// algebra, statistics, and table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/grid.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace biochip {
namespace {

using namespace biochip::units;

// ---------------------------------------------------------------- units ----

TEST(Units, LengthLiteralsScaleToMeters) {
  EXPECT_DOUBLE_EQ(20.0_um, 2e-5);
  EXPECT_DOUBLE_EQ(1.5_mm, 1.5e-3);
  EXPECT_DOUBLE_EQ(100.0_nm, 1e-7);
  EXPECT_DOUBLE_EQ(3_um, 3e-6);  // integer literal overload
}

TEST(Units, TimeAndFrequencyLiterals) {
  EXPECT_DOUBLE_EQ(2.0_ms, 2e-3);
  EXPECT_DOUBLE_EQ(1.0_MHz, 1e6);
  EXPECT_DOUBLE_EQ(2.5_day, 2.5 * 86400.0);
  EXPECT_DOUBLE_EQ(1.0_hour, 3600.0);
}

TEST(Units, VolumeLiteralsMapToCubicMeters) {
  EXPECT_DOUBLE_EQ(4.0_uL, 4e-9);
  EXPECT_NEAR(1.0_L, 1e-3, 1e-18);
}

TEST(Units, CelsiusConversion) {
  EXPECT_DOUBLE_EQ(celsius(25.0), 298.15);
  EXPECT_DOUBLE_EQ(celsius(0.0), 273.15);
}

TEST(Units, PhysicalConstantsSane) {
  EXPECT_NEAR(constants::epsilon0, 8.854e-12, 1e-14);
  EXPECT_NEAR(constants::kB, 1.381e-23, 1e-25);
  EXPECT_GT(constants::eps_r_water, 70.0);
}

// ------------------------------------------------------------- geometry ----

TEST(Geometry, Vec3Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), (Vec3{-3, 6, -3}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Geometry, Vec2NormAndDot) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).dot({0, 1}), 0.0);
}

TEST(Geometry, GridCoordDistances) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
  EXPECT_EQ(chebyshev({2, 2}, {2, 2}), 0);
}

TEST(Geometry, AabbContainsAndVolume) {
  const Aabb box{{0, 0, 0}, {1, 2, 3}};
  EXPECT_TRUE(box.contains({0.5, 1.0, 2.9}));
  EXPECT_FALSE(box.contains({1.5, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(box.volume(), 6.0);
  EXPECT_EQ(box.center(), (Vec3{0.5, 1.0, 1.5}));
}

TEST(Geometry, AabbClampPullsPointsInside) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(box.clamp({2, -1, 0.5}), (Vec3{1, 0, 0.5}));
}

TEST(Geometry, RectOverlapIsExclusiveOfTouching) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{1, 0}, {2, 1}};  // shares an edge only
  EXPECT_FALSE(a.overlaps(b));
  const Rect c{{0.5, 0.5}, {1.5, 1.5}};
  EXPECT_TRUE(a.overlaps(c));
}

TEST(Geometry, EmptyRectHasZeroArea) {
  const Rect inverted{{1, 1}, {0, 0}};
  EXPECT_DOUBLE_EQ(inverted.area(), 0.0);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsCounterBased) {
  // fork(id) depends only on (parent state, id): it never advances the
  // parent, and the derivation order is irrelevant.
  Rng parent(99);
  Rng a7 = parent.fork(7);
  Rng a3 = parent.fork(3);
  Rng b3 = parent.fork(3);
  Rng b7 = parent.fork(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a3(), b3());
    EXPECT_EQ(a7(), b7());
  }
  // Parent stream untouched by the forks.
  Rng untouched(99);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(parent(), untouched());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(4242);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  Rng c = parent.fork(0xFFFFFFFFFFFFFFFFull);
  int same_ab = 0, same_ac = 0, same_ap = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a(), vb = b(), vc = c(), vp = parent();
    if (va == vb) ++same_ab;
    if (va == vc) ++same_ac;
    if (va == vp) ++same_ap;
  }
  EXPECT_LT(same_ab, 2);
  EXPECT_LT(same_ac, 2);
  EXPECT_LT(same_ap, 2);
}

TEST(Rng, ForkAndSplitFamiliesDiverge) {
  Rng a(5), b(5);
  Rng forked = a.fork(0);
  Rng split = b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (forked() == split()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  bool seen_lo = false, seen_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen_lo |= (v == 3);
    seen_hi |= (v == 7);
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCvMatchesRequestedMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 60000; ++i) s.add(rng.lognormal_mean_cv(10.0, 0.3));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.3, 0.01);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(23);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(29);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.015);
}

TEST(Rng, BernoulliClampsProbability) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  Rng rng(41);
  RunningStats small, large;
  for (int i = 0; i < 30000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(small.variance(), 3.0, 0.15);
  EXPECT_NEAR(large.mean(), 80.0, 0.35);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(43);
  Rng child = parent.split();
  RunningStats corr;
  double last_child = child.uniform();
  for (int i = 0; i < 1000; ++i) {
    const double p = parent.uniform();
    const double c = child.uniform();
    corr.add((p - 0.5) * (last_child - 0.5));
    last_child = c;
  }
  EXPECT_NEAR(corr.mean(), 0.0, 0.02);
}

// ----------------------------------------------------------------- grid ----

TEST(Grid2, ConstructionAndIndexing) {
  Grid2 g(4, 3, 1e-6, 2.5);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(3, 2), 2.5);
  g.at(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(g.at(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  EXPECT_DOUBLE_EQ(g.min(), 2.5);
}

TEST(Grid2, OutOfRangeIndexThrows) {
  Grid2 g(2, 2, 1.0);
  EXPECT_THROW(g.at(2, 0), PreconditionError);
  EXPECT_THROW(g.at(0, 2), PreconditionError);
}

TEST(Grid2, BilinearInterpolationExactOnLinearField) {
  Grid2 g(5, 5, 1.0);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 5; ++i)
      g.at(i, j) = 2.0 * static_cast<double>(i) + 3.0 * static_cast<double>(j);
  EXPECT_NEAR(g.sample({1.5, 2.5}), 2.0 * 1.5 + 3.0 * 2.5, 1e-12);
  EXPECT_NEAR(g.sample({0.25, 3.75}), 2.0 * 0.25 + 3.0 * 3.75, 1e-12);
}

TEST(Grid2, SampleClampsOutsideDomain) {
  Grid2 g(3, 3, 1.0);
  g.at(0, 0) = 1.0;
  g.at(2, 2) = 9.0;
  EXPECT_DOUBLE_EQ(g.sample({-5.0, -5.0}), 1.0);
  EXPECT_DOUBLE_EQ(g.sample({50.0, 50.0}), 9.0);
}

TEST(Grid3, TrilinearInterpolationExactOnLinearField) {
  Grid3 g(4, 4, 4, 0.5);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 4; ++i)
        g.at(i, j, k) = static_cast<double>(i) - 2.0 * static_cast<double>(j) +
                        0.5 * static_cast<double>(k);
  // p in physical coordinates: node index * spacing.
  const double v = g.sample({0.75, 1.25, 0.6});
  const double expect = (0.75 / 0.5) - 2.0 * (1.25 / 0.5) + 0.5 * (0.6 / 0.5);
  EXPECT_NEAR(v, expect, 1e-12);
}

TEST(Grid3, GradientOfLinearFieldIsConstant) {
  Grid3 g(6, 6, 6, 1e-5);
  const double h = g.spacing();
  for (std::size_t k = 0; k < 6; ++k)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t i = 0; i < 6; ++i)
        g.at(i, j, k) = 3.0 * (static_cast<double>(i) * h) -
                        1.0 * (static_cast<double>(j) * h) +
                        2.0 * (static_cast<double>(k) * h);
  const Vec3 grad = g.gradient({2.5 * h, 2.5 * h, 2.5 * h});
  EXPECT_NEAR(grad.x, 3.0, 1e-9);
  EXPECT_NEAR(grad.y, -1.0, 1e-9);
  EXPECT_NEAR(grad.z, 2.0, 1e-9);
}

TEST(Grid3, RejectsZeroSpacing) {
  EXPECT_THROW(Grid3(2, 2, 2, 0.0), PreconditionError);
}

// --------------------------------------------------------------- linalg ----

TEST(Linalg, DenseSolveRecoversKnownSolution) {
  Matrix a(3, 3);
  a.at(0, 0) = 4;  a.at(0, 1) = 1;  a.at(0, 2) = 0;
  a.at(1, 0) = 1;  a.at(1, 1) = 3;  a.at(1, 2) = 1;
  a.at(2, 0) = 0;  a.at(2, 1) = 1;  a.at(2, 2) = 2;
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = solve_dense(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Linalg, DenseSolveNeedsPivoting) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  a.at(1, 1) = 0;
  const std::vector<double> x = solve_dense(a, {5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(Linalg, SingularMatrixThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;  a.at(0, 1) = 2;
  a.at(1, 0) = 2;  a.at(1, 1) = 4;
  EXPECT_THROW(solve_dense(a, {1.0, 2.0}), NumericError);
}

TEST(Linalg, TridiagonalSolveMatchesDense) {
  const std::vector<double> lower{1.0, 1.0, 1.0};
  const std::vector<double> diag{4.0, 4.0, 4.0, 4.0};
  const std::vector<double> upper{1.0, 1.0, 1.0};
  const std::vector<double> rhs{5.0, 6.0, 6.0, 5.0};
  const std::vector<double> x = solve_tridiagonal(lower, diag, upper, rhs);
  // Verify residual instead of hard-coding the solution.
  for (std::size_t i = 0; i < 4; ++i) {
    double lhs = diag[i] * x[i];
    if (i > 0) lhs += lower[i - 1] * x[i - 1];
    if (i < 3) lhs += upper[i] * x[i + 1];
    EXPECT_NEAR(lhs, rhs[i], 1e-12);
  }
}

TEST(Linalg, LineFitRecoversSlopeInterceptR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LineFit f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-10);
  EXPECT_NEAR(f.slope, 2.0, 1e-10);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Linalg, PowerFitRecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(5.0 * std::pow(static_cast<double>(i), 1.5));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 1.5, 1e-9);
  EXPECT_NEAR(f.coefficient, 5.0, 1e-6);
}

TEST(Linalg, PowerFitRejectsNonPositive) {
  EXPECT_THROW(fit_power({1.0, -2.0}, {1.0, 2.0}), PreconditionError);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, RunningStatsBasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, PercentilesInterpolate) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-12);
  EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(p.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(p.percentile(90.0), 90.1, 1e-9);
}

TEST(Stats, PercentileOnEmptyThrows) {
  Percentiles p;
  EXPECT_THROW(p.median(), PreconditionError);
}

TEST(Stats, HistogramBinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (double v : {0.5, 1.5, 1.7, 9.99, -1.0, 10.0, 25.0}) h.add(v);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignedPrintContainsAllCells) {
  Table t({"node", "vdd"});
  t.row().cell("0.35um").cell(3.3, 1);
  t.row().cell("90nm").cell(1.0, 1);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("0.35um"), std::string::npos);
  EXPECT_NE(s.find("3.3"), std::string::npos);
  EXPECT_NE(s.find("90nm"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("plain");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), PreconditionError);
}

TEST(Table, SiFormatPicksPrefixes) {
  EXPECT_EQ(si_format(2e-5, "m", 3), "20 um");
  EXPECT_EQ(si_format(4.1e-9, "m3", 3), "4.1 nm3");
  EXPECT_EQ(si_format(1.5e6, "Hz", 3), "1.5 MHz");
}

}  // namespace
}  // namespace biochip
