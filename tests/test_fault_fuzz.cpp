// Fault-lifecycle tests: deterministic injector schedules, injected-vs-
// observed exact accounting through the orchestrator, transfer retry /
// escalation / deadline discipline, per-port transfer queueing, the rescue
// maneuver, watchdog quarantine, idle-chamber elision equivalence, and
// pooled-vs-serial bitwise identity under randomized fault fuzz.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "chip/fault_injector.hpp"
#include "common/error.hpp"
#include "control/health.hpp"
#include "control/orchestrator.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "physics/medium.hpp"

namespace biochip::control {
namespace {

// ----------------------------------------------------- injector schedules ----

bool same_fault(const chip::FaultEvent& a, const chip::FaultEvent& b) {
  return a.tick == b.tick && a.kind == b.kind && a.chamber == b.chamber &&
         a.site == b.site && a.port == b.port && a.duration == b.duration;
}

TEST(FaultInjectorTest, ScriptedFireExactlyAndSampledSchedulesAreDeterministic) {
  chip::FaultScheduleConfig cfg;
  cfg.scripted = {
      {5, chip::FaultKind::kElectrodeDead, 0, {3, 3}, -1, 0},
      {5, chip::FaultKind::kPortIntermittent, -1, {}, 0, 10},
      {9, chip::FaultKind::kSensorRowDropout, 1, {0, 4}, -1, 4},
  };
  cfg.rates.electrode_dead = 0.01;
  cfg.rates.sensor_pixel_burst = 0.01;
  cfg.rates.port_intermittent = 0.01;
  const std::vector<chip::ChamberShape> shapes{{16, 16}, {16, 16}};

  const auto collect = [&](std::uint64_t seed) {
    chip::FaultInjector inj(cfg, shapes, 1, Rng(seed));
    std::vector<chip::FaultEvent> all;
    for (int t = 1; t <= 50; ++t)
      for (const chip::FaultEvent& f : inj.tick(t)) all.push_back(f);
    return all;
  };

  const std::vector<chip::FaultEvent> a = collect(7);
  const std::vector<chip::FaultEvent> b = collect(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n)
    EXPECT_TRUE(same_fault(a[n], b[n])) << "event " << n;

  // Scripted entries fire at their exact tick, none earlier.
  std::size_t scripted_seen = 0;
  for (const chip::FaultEvent& f : a) {
    if (f.kind == chip::FaultKind::kElectrodeDead && f.tick == 5 &&
        f.site == GridCoord{3, 3})
      ++scripted_seen;
    if (f.kind == chip::FaultKind::kPortIntermittent && f.port == 0) {
      EXPECT_GE(f.tick, 5);
    }
    if (f.kind == chip::FaultKind::kSensorRowDropout && f.chamber == 1 &&
        f.site.row == 4) {
      EXPECT_EQ(f.duration, 4);
    }
  }
  EXPECT_GE(scripted_seen, 1u);
  EXPECT_EQ(chip::FaultInjector(cfg, shapes, 1, Rng(7)).injected(), 0u);
}

TEST(FaultInjectorTest, ElectrodeCapBoundsSampledFaults) {
  chip::FaultScheduleConfig cfg;
  cfg.rates.electrode_dead = 0.5;  // ~8 expected per tick on a 16x16 chamber
  cfg.max_electrode_faults_per_chamber = 3;
  chip::FaultInjector inj(cfg, {{16, 16}}, 0, Rng(11));
  std::size_t electrode = 0;
  for (int t = 1; t <= 100; ++t)
    for (const chip::FaultEvent& f : inj.tick(t))
      if (f.kind == chip::FaultKind::kElectrodeDead) ++electrode;
  EXPECT_EQ(electrode, 3u);
  EXPECT_EQ(inj.electrode_faults(0), 3u);
}

// ------------------------------------------------------- episode fixtures ----

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

fluidic::Microchamber chamber_geometry(const chip::DeviceConfig& cfg) {
  fluidic::Microchamber c;
  c.length = cfg.cols * cfg.pitch;
  c.width = cfg.rows * cfg.pitch;
  c.height = cfg.chamber_height;
  return c;
}

// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  int add_cell(GridCoord site) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius,
                      spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    return id;
  }

  ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

class FaultFuzzTest : public ::testing::Test {
 protected:
  FaultFuzzTest() {
    cfg_ = chip::paper_config_on_node(chip::paper_node());
    cfg_.cols = 16;
    cfg_.rows = 16;
    cage_ = chip::BiochipDevice(cfg_).calibrate_cage(5, 6);
  }

  std::unique_ptr<World> make_world() const {
    return std::make_unique<World>(cfg_, cage_);
  }

  /// a → b → c chain with ports at {14,8} / {1,8} on each side.
  fluidic::ChamberNetwork chain(std::size_t n) const {
    fluidic::ChamberNetwork net;
    const fluidic::Microchamber geo = chamber_geometry(cfg_);
    for (std::size_t c = 0; c < n; ++c) net.add_chamber(geo, 16, 16);
    for (std::size_t c = 0; c + 1 < n; ++c)
      net.add_port(static_cast<int>(c), {14, 8}, static_cast<int>(c) + 1, {1, 8},
                   500e-6, 60e-6);
    return net;
  }

  chip::DeviceConfig cfg_;
  field::HarmonicCage cage_;
};

// Every injected fault is observable in the audit trail, exactly once, as
// its typed event — the injected-vs-observed accounting contract.
TEST_F(FaultFuzzTest, InjectedVsObservedExactAccounting) {
  fluidic::ChamberNetwork net = chain(2);
  auto w0 = make_world();
  auto w1 = make_world();
  const int cage = w0->add_cell({10, 8});
  const int local = w1->add_cell({4, 3});
  w1->goals.push_back({local, {12, 3}});

  OrchestratorConfig config;
  config.faults.scripted = {
      {1, chip::FaultKind::kPortIntermittent, -1, {}, 0, 2},
      {3, chip::FaultKind::kElectrodeSilentDead, 0, {12, 13}, -1, 0},
      {3, chip::FaultKind::kElectrodeDead, 1, {5, 13}, -1, 0},
      {4, chip::FaultKind::kElectrodeStuckCage, 0, {3, 13}, -1, 0},
      {5, chip::FaultKind::kSensorRowDropout, 0, {0, 14}, -1, 3},
      {6, chip::FaultKind::kSensorPixelBurst, 1, {10, 3}, -1, 2},
  };
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage, 1, {12, 8}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(404), nullptr);

  ASSERT_TRUE(report.planned);
  ASSERT_EQ(report.injected_faults.size(), 6u);
  std::size_t fault_injected = 0, sensor_fault = 0, port_down = 0,
              port_restored = 0, port_failed = 0;
  for (const EpisodeReport& chamber : report.chambers) {
    fault_injected += count_events(chamber.events, EventKind::kFaultInjected);
    sensor_fault += count_events(chamber.events, EventKind::kSensorFault);
    port_down += count_events(chamber.events, EventKind::kPortDown);
    port_restored += count_events(chamber.events, EventKind::kPortRestored);
    port_failed += count_events(chamber.events, EventKind::kPortFailed);
  }
  EXPECT_EQ(fault_injected, 3u);  // one per electrode fault, announced or not
  EXPECT_EQ(sensor_fault, 2u);
  EXPECT_EQ(port_down, 1u);
  EXPECT_EQ(port_restored, 1u);  // the intermittent outage came back up
  EXPECT_EQ(port_failed, 0u);
  EXPECT_TRUE(report.failed_ports.empty());

  // Faults sat away from the traffic: everything still delivers, and the
  // carried-over ground truth holds both the announced and the silent kill.
  EXPECT_EQ(report.delivered_transfers, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report.chambers[1].delivered_ids, std::vector<int>{local});
  ASSERT_EQ(report.final_truth_defects.size(), 2u);
  EXPECT_EQ(report.final_truth_defects[0].state({12, 13}), chip::PixelState::kDead);
  EXPECT_EQ(report.final_truth_defects[0].state({3, 13}),
            chip::PixelState::kStuckCage);
  EXPECT_EQ(report.final_truth_defects[1].state({5, 13}), chip::PixelState::kDead);
}

// A permanently failed port escalates the transfer to the alternate port of
// the same chamber pair mid-tow; the transfer still delivers.
TEST_F(FaultFuzzTest, PortFailureEscalatesToAlternatePort) {
  fluidic::ChamberNetwork net;
  const fluidic::Microchamber geo = chamber_geometry(cfg_);
  net.add_chamber(geo, 16, 16);
  net.add_chamber(geo, 16, 16);
  net.add_port(0, {14, 8}, 1, {1, 8}, 500e-6, 60e-6);
  net.add_port(0, {14, 10}, 1, {1, 10}, 500e-6, 60e-6);

  auto w0 = make_world();
  auto w1 = make_world();
  const int cage = w0->add_cell({10, 8});

  OrchestratorConfig config;
  config.faults.scripted = {{1, chip::FaultKind::kPortFailed, -1, {}, 0, 0}};
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage, 1, {12, 9}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(505), nullptr);

  ASSERT_TRUE(report.planned);
  EXPECT_EQ(report.transfers[0].phase, TransferPhase::kDelivered);
  EXPECT_EQ(report.transfers[0].port_id, 1);
  EXPECT_EQ(report.transfers[0].reroutes, 1);
  EXPECT_EQ(report.reroutes, 1u);
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kTransferRerouted), 1u);
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kPortFailed), 1u);
  EXPECT_EQ(report.failed_ports, std::vector<int>{0});
}

// A long intermittent outage on the only port holds the transfer at the port
// until its admission deadline, which fails it explicitly — no livelock, no
// denial hammering.
TEST_F(FaultFuzzTest, IntermittentPortOutageTimesOutExplicitly) {
  fluidic::ChamberNetwork net = chain(2);
  auto w0 = make_world();
  auto w1 = make_world();
  const int cage = w0->add_cell({10, 8});

  OrchestratorConfig config;
  config.transfer_deadline = 15;
  config.faults.scripted = {{1, chip::FaultKind::kPortIntermittent, -1, {}, 0, 400}};
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage, 1, {12, 8}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(606), nullptr);

  ASSERT_TRUE(report.planned);
  EXPECT_EQ(report.transfers[0].phase, TransferPhase::kFailed);
  EXPECT_TRUE(report.transfers[0].timed_out);
  EXPECT_EQ(report.timeouts, 1u);
  EXPECT_EQ(report.failed_transfers, (std::vector<std::size_t>{0}));
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kPortDown), 1u);
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kTransferTimedOut), 1u);
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kDeliveryFailed), 1u);
  // Held, not hammered: the outage never produced an admission denial.
  EXPECT_EQ(report.denials, 0u);
}

// Two transfers sharing one source port: the second stages as kQueued (its
// cage parks, goal-less) and only claims the port after the first admission
// — no two cages ever race to one port site. Both deliver.
TEST_F(FaultFuzzTest, SharedSourcePortQueuesSecondTransfer) {
  fluidic::ChamberNetwork net = chain(2);
  auto w0 = make_world();
  auto w1 = make_world();
  const int cage_a = w0->add_cell({10, 8});
  const int cage_b = w0->add_cell({6, 8});

  OrchestratorConfig config;
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage_a, 1, {12, 5}},
                                            {0, cage_b, 1, {12, 11}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(707), nullptr);

  ASSERT_TRUE(report.planned);
  EXPECT_EQ(report.delivered_transfers, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(report.transfers[0].phase, TransferPhase::kDelivered);
  EXPECT_EQ(report.transfers[1].phase, TransferPhase::kDelivered);
  // The queued transfer's port leg starts only after the first hand-off.
  EXPECT_GT(report.transfers[1].handoff_tick, report.transfers[0].handoff_tick);
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kTransferRequested), 2u);
  EXPECT_EQ(report.admissions, 2u);
}

// The rescue maneuver recovers a cell lost into a fully blocked
// neighborhood; without it the loss is terminal. The cell is parked inside a
// pocket whose every site fails ring-usability while its own pixel stays
// healthy, so only a relaxed-mask (empty-cage) approach can reach it.
TEST_F(FaultFuzzTest, RescueRecoversCellFromBlockedNeighborhood) {
  const auto run_once = [&](bool rescue) {
    auto w = make_world();
    // Dead pixels at {7,3}, {9,3}, {8,5}: every site of the 3x3 around
    // {8,4} is ring-blocked, but the {8,4} pixel itself reads fine.
    w->defects.set_state({7, 3}, chip::PixelState::kDead);
    w->defects.set_state({9, 3}, chip::PixelState::kDead);
    w->defects.set_state({8, 5}, chip::PixelState::kDead);
    w->add_cell({8, 7});
    w->goals.push_back({0, {13, 7}});

    ControlConfig config;
    config.rescue = rescue;
    // Scripted escape with an exact heading onto the {8,4} trap center
    // inside the pocket. The displacement applies after tick 1's physics,
    // when the cell has settled on the cage's first route step {9,7} — aim
    // from there, not from the start site.
    const Vec3 from = w->engine.field_model().trap_center({9, 7});
    const Vec3 to = w->engine.field_model().trap_center({8, 4});
    ControlConfig::DirectedEscape de;
    de.tick = 1;
    de.cage_id = 0;
    de.angle = std::atan2(to.y - from.y, to.x - from.x);
    de.distance_pitches = (to - from).norm() / cfg_.pitch;
    config.directed_escapes = {de};

    core::ClosedLoopTransporter transporter(w->cages, w->engine, w->imager,
                                            w->defects, 0.4, config);
    Rng rng(808);
    return transporter.execute(w->goals, w->bodies, w->cage_bodies, rng);
  };

  const EpisodeReport with_rescue = run_once(true);
  ASSERT_TRUE(with_rescue.planned);
  EXPECT_EQ(count_events(with_rescue.events, EventKind::kEscapeInjected), 1u);
  EXPECT_GE(count_events(with_rescue.events, EventKind::kRescueStarted), 1u);
  EXPECT_GE(count_events(with_rescue.events, EventKind::kCellRecaptured), 1u);
  EXPECT_EQ(with_rescue.delivered_ids, std::vector<int>{0});
  EXPECT_TRUE(with_rescue.success);

  const EpisodeReport without = run_once(false);
  ASSERT_TRUE(without.planned);
  EXPECT_EQ(count_events(without.events, EventKind::kRescueStarted), 0u);
  EXPECT_GE(count_events(without.events, EventKind::kRecaptureFailed), 1u);
  EXPECT_EQ(without.failed_ids, std::vector<int>{0});
  EXPECT_FALSE(without.success);
}

// ------------------------------------------------------- health watchdog ----

TEST(HealthMonitorTest, StrikesQuarantineTheRegionAndLadderIsOneWay) {
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.suspect_after_losses = 2;
  cfg.quarantine_ring = 1;
  HealthMonitor monitor(cfg, 16, 16);

  // One strike: suspect, not yet quarantined.
  auto out = monitor.observe(1, {{1, EventKind::kCellLost, 3, {8, 8}}}, 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(monitor.strikes({8, 8}), 1);
  EXPECT_TRUE(monitor.newly_quarantined().empty());

  // Second strike at the same site: the 3x3 region is quarantined.
  out = monitor.observe(2, {{2, EventKind::kRecaptureFailed, 3, {8, 8}}}, 0.0);
  ASSERT_EQ(count_events(out, EventKind::kSiteQuarantined), 1u);
  EXPECT_EQ(monitor.newly_quarantined().size(), 9u);
  EXPECT_EQ(monitor.state(), HealthState::kNormal);

  // The ladder climbs on the excess blocked fraction and never descends.
  out = monitor.observe(3, {}, 0.10);
  EXPECT_EQ(count_events(out, EventKind::kHealthDegraded), 1u);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.frames_multiplier(), cfg.degraded_frames_boost);
  out = monitor.observe(4, {}, 0.01);  // fraction back down: state stays
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  out = monitor.observe(5, {}, 0.25);
  EXPECT_EQ(count_events(out, EventKind::kHealthQuarantined), 1u);
  EXPECT_EQ(monitor.state(), HealthState::kQuarantined);

  // Admission policy per rung: degraded throttles, quarantined refuses.
  EXPECT_FALSE(monitor.admission_allowed(100, 99));
  HealthMonitor degraded(cfg, 16, 16);
  degraded.observe(1, {}, 0.10);
  ASSERT_EQ(degraded.state(), HealthState::kDegraded);
  EXPECT_TRUE(degraded.admission_allowed(10, -1));
  EXPECT_FALSE(degraded.admission_allowed(10, 10 - cfg.degraded_admission_cooldown + 1));
  EXPECT_TRUE(degraded.admission_allowed(10, 10 - cfg.degraded_admission_cooldown));
}

// Open-ended-horizon mode: stale strikes expire, site quarantines serve a
// probation term and recover with their strikes reset, and the ladder climbs
// back one rung per observation with 2x hysteresis. Defaults (window 0,
// probation 0) keep the episode semantics of the test above bit-for-bit.
TEST(HealthMonitorTest, StrikeWindowAndProbationRecoverFalsePositives) {
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.suspect_after_losses = 2;
  cfg.quarantine_ring = 1;
  cfg.strike_window = 100;
  cfg.quarantine_probation = 50;
  HealthMonitor monitor(cfg, 16, 16);

  // Strikes far apart in time are noise, not a dead electrode: the stale
  // strike expires instead of accumulating toward a quarantine.
  auto out = monitor.observe(1, {{1, EventKind::kCellLost, 3, {8, 8}}}, 0.0);
  EXPECT_TRUE(out.empty());
  out = monitor.observe(150, {{150, EventKind::kCellLost, 4, {8, 8}}}, 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(monitor.strikes({8, 8}), 1);

  // Two strikes inside the window still quarantine promptly...
  out = monitor.observe(160, {{160, EventKind::kRecaptureFailed, 4, {8, 8}}}, 0.0);
  ASSERT_EQ(count_events(out, EventKind::kSiteQuarantined), 1u);
  EXPECT_EQ(monitor.newly_quarantined().size(), 9u);

  // ...and probation lifts the whole ring again, strikes reset, so a false
  // positive recovers for good while a dead electrode re-earns its term.
  out = monitor.observe(211, {}, 0.0);
  EXPECT_EQ(count_events(out, EventKind::kSiteRehabilitated), 9u);
  EXPECT_EQ(monitor.rehabilitated().size(), 9u);
  EXPECT_EQ(monitor.strikes({8, 8}), 0);

  // The ladder descends on a blocked-fraction spike and, in probation mode,
  // climbs back one rung per observation once the fraction drops below half
  // the rung's threshold (2x hysteresis: 0.16 >= 0.20/2 holds the rung).
  out = monitor.observe(300, {}, 0.25);
  EXPECT_EQ(monitor.state(), HealthState::kQuarantined);
  out = monitor.observe(301, {}, 0.16);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(monitor.state(), HealthState::kQuarantined);
  out = monitor.observe(302, {}, 0.08);
  EXPECT_EQ(count_events(out, EventKind::kHealthRecovered), 1u);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  out = monitor.observe(303, {}, 0.02);
  EXPECT_EQ(count_events(out, EventKind::kHealthRecovered), 1u);
  EXPECT_EQ(monitor.state(), HealthState::kNormal);
}

// The runtime folds watchdog quarantines into its belief mask (routing sees
// them) without ever touching ground truth, and announced vs silent
// electrode faults split exactly along the belief/truth line.
TEST_F(FaultFuzzTest, RuntimeFaultHooksSplitBeliefFromTruth) {
  auto w = make_world();
  w->add_cell({3, 8});
  w->goals.push_back({0, {12, 8}});

  ControlConfig config;
  config.health.enabled = true;
  config.health.suspect_after_losses = 2;
  ClosedLoopEngine engine(w->cages, w->engine, w->imager, w->defects, 0.4, config);
  EpisodeRuntime rt(engine, w->goals, w->bodies, w->cage_bodies, Rng(12), nullptr);
  ASSERT_TRUE(rt.planned());

  // Announced fault: belief AND truth. Silent fault: truth only.
  ASSERT_TRUE(rt.site_ok({6, 3}));
  rt.apply_electrode_fault(1, {6, 3}, chip::FaultKind::kElectrodeDead);
  EXPECT_FALSE(rt.site_ok({6, 3}));
  EXPECT_EQ(rt.truth_defects().state({6, 3}), chip::PixelState::kDead);
  ASSERT_TRUE(rt.site_ok({12, 12}));
  rt.apply_electrode_fault(1, {12, 12}, chip::FaultKind::kElectrodeSilentDead);
  EXPECT_TRUE(rt.site_ok({12, 12}));  // the controller does not know
  EXPECT_EQ(rt.truth_defects().state({12, 12}), chip::PixelState::kDead);
  EXPECT_GT(rt.excess_blocked_fraction(), 0.0);

  // Fabricated tow-failure telemetry at one site: after the strike
  // threshold the watchdog quarantines the region in belief — ground truth
  // (the actual hardware) is untouched.
  rt.record_event({1, EventKind::kCellLost, 0, {9, 12}});
  rt.record_event({1, EventKind::kRecaptureFailed, 0, {9, 12}});
  ASSERT_TRUE(rt.site_ok({9, 12}));
  rt.tick(1);  // the watchdog consumes the audit stream during the tick
  EXPECT_FALSE(rt.site_ok({9, 12}));
  EXPECT_FALSE(rt.site_ok({8, 11}));  // ring-1 region, not just the site
  EXPECT_EQ(rt.truth_defects().state({9, 12}), chip::PixelState::kOk);

  const EpisodeReport report = rt.finish();
  EXPECT_EQ(count_events(report.events, EventKind::kFaultInjected), 2u);
  EXPECT_EQ(count_events(report.events, EventKind::kSiteQuarantined), 1u);
}

// ------------------------------------------------- elision + determinism ----

// Idle-chamber elision: a finished, unreferenced chamber skips its full
// sense/track/supervise tick. The audit event streams and the global
// accounting are identical with and without elision.
TEST_F(FaultFuzzTest, IdleChamberElisionPreservesEventStreams) {
  const auto run_once = [&](bool elide) {
    fluidic::ChamberNetwork net = chain(3);
    auto w0 = make_world();
    auto w1 = make_world();
    auto w2 = make_world();
    const int cage_a = w0->add_cell({10, 8});
    const int local = w2->add_cell({4, 3});
    w2->goals.push_back({local, {6, 3}});  // chamber 2 finishes early

    OrchestratorConfig config;
    config.elide_idle_chambers = elide;
    Orchestrator orch(net, config);
    std::vector<ChamberSetup> chambers{w0->setup(), w1->setup(), w2->setup()};
    const std::vector<TransferGoal> transfers{{0, cage_a, 1, {12, 8}}};
    return orch.run(chambers, transfers, Rng(909), nullptr);
  };

  const OrchestratorReport off = run_once(false);
  const OrchestratorReport on = run_once(true);
  ASSERT_TRUE(off.planned && on.planned);
  EXPECT_EQ(off.elided_chamber_ticks, 0u);
  EXPECT_GT(on.elided_chamber_ticks, 0u);

  EXPECT_EQ(off.ticks, on.ticks);
  EXPECT_EQ(off.delivered_transfers, on.delivered_transfers);
  EXPECT_EQ(off.admissions, on.admissions);
  EXPECT_EQ(off.denials, on.denials);
  ASSERT_EQ(off.chambers.size(), on.chambers.size());
  for (std::size_t c = 0; c < off.chambers.size(); ++c) {
    const EpisodeReport& a = off.chambers[c];
    const EpisodeReport& b = on.chambers[c];
    EXPECT_EQ(a.delivered_ids, b.delivered_ids) << "chamber " << c;
    EXPECT_EQ(a.failed_ids, b.failed_ids) << "chamber " << c;
    ASSERT_EQ(a.events.size(), b.events.size()) << "chamber " << c;
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].tick, b.events[e].tick);
      EXPECT_EQ(a.events[e].kind, b.events[e].kind);
      EXPECT_EQ(a.events[e].cage_id, b.events[e].cage_id);
    }
  }
}

// Bitwise identity of pooled vs serial chamber fan-out with the whole fault
// lifecycle armed: sampled faults of five kinds, health monitoring, rescue,
// deadlines, escalation and elision all on.
TEST_F(FaultFuzzTest, PooledBitwiseIdenticalUnderFaultFuzz) {
  const auto run_once = [&](std::size_t max_parts) {
    fluidic::ChamberNetwork net = chain(3);
    auto w0 = make_world();
    auto w1 = make_world();
    auto w2 = make_world();
    const int cage_a = w0->add_cell({10, 8});
    const int cage_b = w1->add_cell({3, 12});
    const int local = w2->add_cell({4, 3});
    w2->goals.push_back({local, {12, 3}});

    OrchestratorConfig config;
    config.control.escape_rate = 0.002;
    config.control.rescue = true;
    config.control.health.enabled = true;
    config.transfer_deadline = 80;
    config.elide_idle_chambers = true;
    config.faults.rates.electrode_dead = 0.0005;
    config.faults.rates.electrode_silent_dead = 0.0005;
    config.faults.rates.sensor_row_dropout = 0.001;
    config.faults.rates.sensor_pixel_burst = 0.001;
    config.faults.rates.port_intermittent = 0.001;
    config.faults.max_electrode_faults_per_chamber = 4;
    Orchestrator orch(net, config);
    std::vector<ChamberSetup> chambers{w0->setup(), w1->setup(), w2->setup()};
    const std::vector<TransferGoal> transfers{{0, cage_a, 1, {12, 8}},
                                              {1, cage_b, 2, {12, 10}}};
    Rng rng(424242);
    const OrchestratorReport report = core::ClosedLoopTransporter::execute_orchestrated(
        orch, chambers, transfers, rng, max_parts);

    std::vector<Vec3> positions;
    for (const World* w : {w0.get(), w1.get(), w2.get()})
      for (const physics::ParticleBody& b : w->bodies) positions.push_back(b.position);
    return std::make_pair(report, positions);
  };

  const auto [serial, serial_pos] = run_once(1);
  const auto [pooled, pooled_pos] = run_once(0);

  ASSERT_TRUE(serial.planned);
  ASSERT_EQ(serial_pos.size(), pooled_pos.size());
  for (std::size_t n = 0; n < serial_pos.size(); ++n)
    ASSERT_EQ(serial_pos[n], pooled_pos[n]) << "body " << n;

  EXPECT_EQ(serial.ticks, pooled.ticks);
  EXPECT_EQ(serial.elided_chamber_ticks, pooled.elided_chamber_ticks);
  EXPECT_EQ(serial.transfer_requests, pooled.transfer_requests);
  EXPECT_EQ(serial.admissions, pooled.admissions);
  EXPECT_EQ(serial.denials, pooled.denials);
  EXPECT_EQ(serial.reroutes, pooled.reroutes);
  EXPECT_EQ(serial.timeouts, pooled.timeouts);
  EXPECT_EQ(serial.delivered_transfers, pooled.delivered_transfers);
  EXPECT_EQ(serial.failed_transfers, pooled.failed_transfers);
  ASSERT_EQ(serial.injected_faults.size(), pooled.injected_faults.size());
  for (std::size_t n = 0; n < serial.injected_faults.size(); ++n)
    ASSERT_TRUE(same_fault(serial.injected_faults[n], pooled.injected_faults[n]))
        << "fault " << n;
  ASSERT_EQ(serial.chambers.size(), pooled.chambers.size());
  for (std::size_t c = 0; c < serial.chambers.size(); ++c) {
    const EpisodeReport& a = serial.chambers[c];
    const EpisodeReport& b = pooled.chambers[c];
    EXPECT_EQ(a.delivered_ids, b.delivered_ids) << "chamber " << c;
    EXPECT_EQ(a.failed_ids, b.failed_ids) << "chamber " << c;
    EXPECT_EQ(serial.health[c], pooled.health[c]) << "chamber " << c;
    ASSERT_EQ(a.events.size(), b.events.size()) << "chamber " << c;
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].tick, b.events[e].tick);
      EXPECT_EQ(a.events[e].kind, b.events[e].kind);
      EXPECT_EQ(a.events[e].cage_id, b.events[e].cage_id);
    }
  }
}

// The tracked whole-chamber field stays bitwise identical between the
// serial and the pooled windowed solver under a hostile fault schedule:
// electrode faults (announced AND silent — both kill the trap, so both drop
// the site's drive and dirty its window; the silent one touches ground truth
// only), sensor overlays, random escapes, rescue and the health watchdog all
// armed. The per-tick grids, not just the final state, must match for every
// solver thread count.
TEST_F(FaultFuzzTest, TrackedFieldBitwiseIdenticalSerialVsPooledUnderFaultFuzz) {
  struct Run {
    std::vector<std::vector<double>> grids;  ///< tracked potential per tick
    field::SolveAccounting accounting;
  };
  const auto run_once = [&](std::size_t solver_threads) {
    auto w = make_world();
    w->add_cell({3, 8});
    w->add_cell({12, 4});
    w->goals.push_back({0, {12, 8}});
    w->goals.push_back({1, {4, 4}});

    ControlConfig config;
    config.escape_rate = 0.002;
    config.rescue = true;
    config.health.enabled = true;
    config.field_tracking_nodes_per_pitch = 2;
    config.field_tracking.tolerance = 1e-7;
    config.field_tracking.incremental.tolerance = 1e-7;
    config.field_tracking.incremental.reanchor_period = 8;
    config.field_tracking.threads = solver_threads;
    ClosedLoopEngine engine(w->cages, w->engine, w->imager, w->defects, 0.4, config);
    EpisodeRuntime rt(engine, w->goals, w->bodies, w->cage_bodies, Rng(424242),
                      nullptr);
    EXPECT_TRUE(rt.planned());

    Run run;
    for (int t = 1; t <= 30; ++t) {
      // Silent kill on cage 0's route: the trap dies, the controller does
      // not know, and the tracked drive drops at the occupied site anyway.
      if (t == 4)
        rt.apply_electrode_fault(t, {6, 8}, chip::FaultKind::kElectrodeSilentDead);
      if (t == 6)
        rt.apply_electrode_fault(t, {12, 6}, chip::FaultKind::kElectrodeDead);
      if (t == 8) rt.begin_sensor_dropout(t, 8, 3);
      if (t == 10) rt.begin_sensor_burst(t, {10, 8}, 3, 2);
      rt.tick(t);
      EXPECT_NE(rt.field_tracker(), nullptr);
      run.grids.push_back(rt.field_tracker()->potential().data());
    }
    run.accounting = rt.field_tracker()->accounting();
    return run;
  };

  const Run serial = run_once(1);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    const Run pooled = run_once(threads);
    ASSERT_EQ(serial.grids.size(), pooled.grids.size()) << "threads " << threads;
    for (std::size_t t = 0; t < serial.grids.size(); ++t) {
      ASSERT_EQ(serial.grids[t].size(), pooled.grids[t].size());
      for (std::size_t n = 0; n < serial.grids[t].size(); ++n)
        ASSERT_EQ(serial.grids[t][n], pooled.grids[t][n])
            << "threads " << threads << " tick " << t + 1 << " node " << n;
    }
    // Same work, not just the same answer: the schedule of full vs windowed
    // solves is part of the determinism contract.
    EXPECT_EQ(serial.accounting.solves, pooled.accounting.solves);
    EXPECT_EQ(serial.accounting.window_solves, pooled.accounting.window_solves);
    EXPECT_EQ(serial.accounting.total_sweeps, pooled.accounting.total_sweeps);
  }
  // The incremental path actually engaged: windowed solves dominate, full
  // re-anchors stay on the configured cadence.
  EXPECT_GT(serial.accounting.window_solves, serial.accounting.solves);
  EXPECT_GE(serial.accounting.solves, 1u);
}

}  // namespace
}  // namespace biochip::control
