// Tests for the open-system streaming mode: arrival-process purity, pooled
// vs serial bitwise identity, idle-chamber elision equivalence, bounded
// residency under slot recycling, typed load shedding at 2x overload, and
// the steady-state sense slow-down's event-stream equivalence.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "control/streaming.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "physics/medium.hpp"

namespace biochip::control {
namespace {

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  void add_cell(const cell::ParticleSpec& spec, GridCoord site, GridCoord goal) {
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius,
                      spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    goals.push_back({id, goal});
  }

  physics::ParticleBody prototype(const cell::ParticleSpec& spec) const {
    return {{0.0, 0.0, 0.0}, spec.radius, spec.density,
            spec.dep_prefactor(medium, dev.config().drive_frequency), 0};
  }

  ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() {
    cfg_ = chip::paper_config_on_node(chip::paper_node());
    cfg_.cols = 16;
    cfg_.rows = 16;
    cage_ = chip::BiochipDevice(cfg_).calibrate_cage(5, 6);
  }

  std::unique_ptr<World> make_world() const {
    return std::make_unique<World>(cfg_, cage_);
  }

  fluidic::Microchamber geometry() const {
    fluidic::Microchamber c;
    c.length = cfg_.cols * cfg_.pitch;
    c.width = cfg_.rows * cfg_.pitch;
    c.height = cfg_.chamber_height;
    return c;
  }

  /// n chambers, one inlet at {1,8} per listed chamber.
  fluidic::ChamberNetwork net(std::size_t n_chambers,
                              const std::vector<int>& inlet_chambers) const {
    fluidic::ChamberNetwork net;
    for (std::size_t c = 0; c < n_chambers; ++c)
      net.add_chamber(geometry(), 16, 16);
    for (int c : inlet_chambers) net.add_inlet(c, {1, 8});
    return net;
  }

  StreamingConfig base_config(const World& w, std::size_t n_inlets,
                              double rate) const {
    StreamingConfig cfg;
    cfg.ticks = 200;
    cfg.arrival_rates.assign(n_inlets, rate);
    // Two types with the same 5 µm imaging footprint but different physics
    // (density, DEP prefactor). Larger cells (K562, 9 µm) read fine alone
    // but merge into one detection cluster when admitted in close convoy —
    // a real association hazard, exercised separately, not a default mix.
    cfg.type_weights = {3.0, 1.0};
    cfg.body_prototypes = {w.prototype(cell::viable_lymphocyte()),
                           w.prototype(cell::polystyrene_bead(5e-6))};
    cfg.admission.queue_capacity = 4;
    cfg.admission.chamber_quota = 3;
    cfg.admission.degraded_quota = 1;
    cfg.service_deadline = 120;
    return cfg;
  }

  chip::DeviceConfig cfg_;
  field::HarmonicCage cage_;
};

// ------------------------------------------------------- arrival process ----

// The arrival draw at (inlet, tick) is a pure function of the stream — the
// same whatever order ticks and inlets are queried in, and unchanged by how
// many other inlets or chambers exist (stream ids, not topology, key it).
TEST_F(StreamingTest, ArrivalProcessIsPureAndCallOrderInvariant) {
  const Rng base = Rng(123).fork(0);
  std::vector<int> a, b;

  // Forward vs reverse query order, interleaved inlets: identical draws.
  std::vector<std::vector<int>> forward;
  for (int t = 1; t <= 50; ++t)
    for (int i = 0; i < 3; ++i) {
      sample_arrivals(base, i, t, 0.4, {2.0, 1.0}, a);
      forward.push_back(a);
    }
  std::size_t k = forward.size();
  for (int t = 50; t >= 1; --t)
    for (int i = 2; i >= 0; --i) {
      sample_arrivals(base, i, t, 0.4, {2.0, 1.0}, b);
      ASSERT_EQ(b, forward[--k]) << "inlet " << i << " tick " << t;
    }

  // Distinct (inlet, tick) keys decorrelate; the process actually arrives.
  std::size_t total = 0;
  for (int t = 1; t <= 50; ++t) total += sample_arrivals(base, 0, t, 0.4, {1.0}, a);
  EXPECT_GT(total, 5u);
  EXPECT_LT(total, 60u);

  // Zero rate draws nothing and consumes nothing.
  EXPECT_EQ(sample_arrivals(base, 0, 1, 0.0, {1.0}, a), 0u);
  EXPECT_TRUE(a.empty());
}

// ------------------------------------------- serial vs pooled determinism ----

// The full streaming report — admission stats, latency histogram, per-kind
// event counters, peaks — and every body position are bitwise identical for
// the pooled chamber fan-out vs the serial reference, with faults, health
// monitoring and random escapes in play.
TEST_F(StreamingTest, SerialVsPooledBitwiseIdentical) {
  const auto run_once = [&](std::size_t max_parts) {
    fluidic::ChamberNetwork network = net(2, {0, 1});
    auto w0 = make_world();
    auto w1 = make_world();

    StreamingConfig cfg = base_config(*w0, 2, 0.12);
    cfg.control.escape_rate = 0.002;
    cfg.control.health.enabled = true;
    cfg.goal_sites = {{{12, 4}, {12, 8}, {12, 12}}, {{12, 4}, {12, 8}, {12, 12}}};
    cfg.faults.scripted.push_back(
        {40, chip::FaultKind::kElectrodeDead, 0, {7, 3}, -1, 0});

    StreamingService service(network, cfg);
    std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
    Rng rng(90210);
    const StreamingReport report = core::ClosedLoopTransporter::execute_streaming(
        service, chambers, rng, max_parts);

    std::vector<Vec3> positions;
    for (const World* w : {w0.get(), w1.get()})
      for (const physics::ParticleBody& b : w->bodies) positions.push_back(b.position);
    return std::make_pair(report, positions);
  };

  const auto [serial, serial_pos] = run_once(1);
  const auto [pooled, pooled_pos] = run_once(0);

  EXPECT_TRUE(serial == pooled);
  ASSERT_EQ(serial_pos.size(), pooled_pos.size());
  for (std::size_t n = 0; n < serial_pos.size(); ++n)
    ASSERT_EQ(serial_pos[n], pooled_pos[n]) << "body " << n;

  // The run exercised the open system: arrivals were offered and delivered.
  EXPECT_GT(serial.admission.offered, 10u);
  EXPECT_GT(serial.delivered, 5u);
  EXPECT_EQ(serial.injected_faults, 1u);
}

// Idle-chamber elision changes how much work runs, not what happens: the
// report matches the non-elided run in everything but frames spent sensing
// empty chambers.
TEST_F(StreamingTest, IdleChamberElisionPreservesTheReport) {
  const auto run_once = [&](bool elide) {
    fluidic::ChamberNetwork network = net(2, {0});  // chamber 1 is always idle
    auto w0 = make_world();
    auto w1 = make_world();
    StreamingConfig cfg = base_config(*w0, 1, 0.10);
    cfg.goal_sites = {{{12, 4}, {12, 8}, {12, 12}}, {}};
    cfg.elide_idle_chambers = elide;
    StreamingService service(network, cfg);
    std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
    return service.run(chambers, Rng(4711), nullptr, 1);
  };

  StreamingReport eager = run_once(false);
  StreamingReport elided = run_once(true);

  EXPECT_EQ(eager.elided_chamber_ticks, 0u);
  EXPECT_GE(elided.elided_chamber_ticks, 200u);  // chamber 1 every tick + gaps
  EXPECT_LT(elided.frames_sensed, eager.frames_sensed);
  // Everything observable is identical.
  elided.elided_chamber_ticks = eager.elided_chamber_ticks = 0;
  elided.frames_sensed = eager.frames_sensed = 0;
  EXPECT_TRUE(eager == elided);
}

// --------------------------------------------------- bounded-memory soak ----

// The monotone-growth regression: with slot recycling on (streaming forces
// it), servicing tens of arrivals keeps the body array and the cage-slot
// table bounded by the in-flight quota — not by the number of cells ever
// serviced — and the admission accounting closes exactly.
TEST_F(StreamingTest, SlotRecyclingBoundsResidencyOverManyServices) {
  fluidic::ChamberNetwork network = net(1, {0});
  auto w0 = make_world();
  StreamingConfig cfg = base_config(*w0, 1, 0.30);
  cfg.ticks = 400;
  cfg.goal_sites = {{{12, 4}, {12, 8}, {12, 12}}};
  StreamingService service(network, cfg);
  std::vector<ChamberSetup> chambers{w0->setup()};
  const StreamingReport report = service.run(chambers, Rng(2026), nullptr, 1);

  // Enough cells flowed through to make unbounded growth visible...
  EXPECT_GT(report.admission.admitted, 20u);
  EXPECT_GT(report.delivered, 15u);
  // ...yet residency never exceeded the quota: slots were recycled.
  EXPECT_LE(report.peak_resident_bodies,
            static_cast<std::size_t>(cfg.admission.chamber_quota));
  EXPECT_LE(report.peak_cage_slots,
            static_cast<std::size_t>(cfg.admission.chamber_quota));
  EXPECT_LE(report.peak_in_flight,
            static_cast<std::size_t>(cfg.admission.chamber_quota +
                                     cfg.admission.queue_capacity));
  // Exact conservation: every offered cell is shed, still queued, or
  // admitted; every admitted cell is delivered, evicted, or still in flight.
  EXPECT_EQ(report.admission.offered,
            report.admission.shed + report.admission.admitted + report.queued_end);
  EXPECT_EQ(report.admission.admitted,
            report.delivered + report.evicted + report.in_flight_end);
  // Latency histogram holds exactly the delivered cells.
  std::uint64_t hist_total = 0;
  for (std::uint64_t v : report.latency_hist) hist_total += v;
  EXPECT_EQ(hist_total, report.delivered);
  EXPECT_GE(report.latency_quantile(0.99), report.latency_quantile(0.5));
}

// ------------------------------------------------------- overload behavior ----

// Scripted 2x overload: arrivals far beyond the service rate degrade the
// shed fraction and the queue wait — never memory, and never silently. Every
// shed and every first deferral is a typed audit event, queues respect the
// watermark, and the service keeps delivering (no livelock).
TEST_F(StreamingTest, OverloadShedsTypedEventsAndStaysBounded) {
  fluidic::ChamberNetwork network = net(1, {0});
  auto w0 = make_world();
  StreamingConfig cfg = base_config(*w0, 1, 1.0);  // >> service rate
  cfg.ticks = 250;
  cfg.goal_sites = {{{12, 4}, {12, 8}, {12, 12}}};
  StreamingService service(network, cfg);
  std::vector<ChamberSetup> chambers{w0->setup()};
  const StreamingReport report = service.run(chambers, Rng(777), nullptr, 1);

  // Overload is explicit, typed, and accounted one-to-one.
  EXPECT_GT(report.admission.shed, 0u);
  EXPECT_GT(report.admission.deferrals, 0u);
  EXPECT_EQ(count_events(report, EventKind::kAdmissionShed), report.admission.shed);
  EXPECT_EQ(count_events(report, EventKind::kAdmissionDeferred),
            report.admission.deferrals);
  EXPECT_EQ(count_events(report, EventKind::kTransferAdmitted),
            report.admission.admitted);
  // Backpressure bounds residency: quota in flight + watermarked queue.
  EXPECT_LE(report.peak_in_flight,
            static_cast<std::size_t>(cfg.admission.chamber_quota +
                                     cfg.admission.queue_capacity));
  EXPECT_LE(report.peak_resident_bodies,
            static_cast<std::size_t>(cfg.admission.chamber_quota));
  // No livelock: the chamber kept servicing cells under overload.
  EXPECT_GT(report.delivered, 10u);
  EXPECT_EQ(report.admission.offered,
            report.admission.shed + report.admission.admitted + report.queued_end);
}

// --------------------------------------------- steady-state sense slow-down ----

// In healthy steady state the sense slow-down halves the frame budget
// without changing a single observable: same events at the same ticks, same
// deliveries, same trajectories — only fewer CDS frames spent. A 32-frame
// baseline keeps the halved arm at a ~7.6σ detection margin, so the
// detection outcome is frame-count independent by a wide margin.
TEST_F(StreamingTest, SteadySenseSlowdownPreservesTheEventStream) {
  const auto run_once = [&](std::size_t divisor) {
    World world(cfg_, cage_);
    world.add_cell(cell::viable_lymphocyte(), {3, 4}, {12, 4});
    world.add_cell(cell::viable_lymphocyte(), {3, 10}, {12, 10});
    ControlConfig config;
    config.frames_per_tick = 32;
    config.steady_frames_divisor = divisor;
    core::ClosedLoopTransporter transporter(world.cages, world.engine, world.imager,
                                            world.defects, 0.4, config);
    Rng rng(5150);
    EpisodeReport report =
        transporter.execute(world.goals, world.bodies, world.cage_bodies, rng);
    std::vector<Vec3> positions;
    for (const physics::ParticleBody& b : world.bodies)
      positions.push_back(b.position);
    return std::make_pair(report, positions);
  };

  const auto [full, full_pos] = run_once(1);
  const auto [slow, slow_pos] = run_once(2);

  ASSERT_TRUE(full.success);
  ASSERT_TRUE(slow.success);
  EXPECT_EQ(full.ticks, slow.ticks);
  EXPECT_EQ(full.delivered_ids, slow.delivered_ids);
  ASSERT_EQ(full.events.size(), slow.events.size());
  for (std::size_t e = 0; e < full.events.size(); ++e) {
    EXPECT_EQ(full.events[e].tick, slow.events[e].tick);
    EXPECT_EQ(full.events[e].kind, slow.events[e].kind);
    EXPECT_EQ(full.events[e].cage_id, slow.events[e].cage_id);
  }
  ASSERT_EQ(full_pos.size(), slow_pos.size());
  for (std::size_t n = 0; n < full_pos.size(); ++n)
    ASSERT_EQ(full_pos[n], slow_pos[n]) << "body " << n;
  // The slow-down actually spent fewer frames.
  EXPECT_LT(slow.frames_sensed, full.frames_sensed);
}

}  // namespace
}  // namespace biochip::control
