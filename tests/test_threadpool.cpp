// Tests for the worker-pool parallelism layer: chunk coverage, caller
// participation, part limits, exception propagation, and reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/threadpool.hpp"

namespace biochip::core {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ThreadPool, HonorsSubrangeAndEmptyRange) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(20, 50, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], (i >= 20 && i < 50) ? 1 : 0) << "i=" << i;
  // Empty range is a no-op, not an error.
  pool.parallel_for(7, 7, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 64, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, MaxPartsBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t, std::size_t) { ++chunks; }, 3);
  EXPECT_GE(chunks.load(), 1);
  EXPECT_LE(chunks.load(), 3);
}

TEST(ThreadPool, MorePartsThanItemsStillCoversAll) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPool, PropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw Error("chunk failed");
                        }),
      Error);
  // The pool survives a throwing job and can run the next one.
  std::atomic<int> total{0};
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, RejectsInvertedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 2, [](std::size_t, std::size_t) {}),
               PreconditionError);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 200; ++job)
    pool.parallel_for(0, 97, [&](std::size_t b, std::size_t e) {
      total += static_cast<long>(e - b);
    });
  EXPECT_EQ(total.load(), 200L * 97L);
}

// Back-to-back tiny jobs maximize the generation-transition window where a
// stale worker drains the previous job's ticket space while the next job is
// being published. The generation-tagged claim protocol must never let such
// a worker claim a chunk with a mixed old/new view: every index is hit
// exactly once per job, every job. (Under TSan this doubles as a race probe
// for the publish/claim handshake.)
TEST(ThreadPool, RapidGenerationTurnoverClaimsEachChunkOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (int job = 0; job < 2000; ++job) {
    const std::size_t n = 1 + static_cast<std::size_t>(job % 64);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.parallel_for(0, n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), i < n ? 1 : 0) << "job " << job << " i " << i;
  }
}

TEST(ThreadPool, GlobalPoolIsSharedAndUsable) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> total{0};
  a.parallel_for(0, 32, [&](std::size_t bb, std::size_t ee) {
    total += static_cast<int>(ee - bb);
  });
  EXPECT_EQ(total.load(), 32);
}

}  // namespace
}  // namespace biochip::core
