// Tests for the closed-loop control subsystem: tracker hysteresis, the
// lost → recapture → delivery loop on a seeded episode, pooled-vs-serial
// bitwise identity, and defect-injection fuzz.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "control/events.hpp"
#include "control/tracker.hpp"
#include "core/closed_loop.hpp"
#include "physics/medium.hpp"

namespace biochip::control {
namespace {

// ------------------------------------------------------ occupancy tracker ----

sensor::Detection det(double x, double y) {
  sensor::Detection d;
  d.position = {x, y};
  d.score = 1.0;
  d.pixel_count = 1;
  return d;
}

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : tracker_({/*lost_after*/ 3, /*occupied_after*/ 2, 0.0}, 30e-6) {
    tracker_.add_track(7, TrackState::kOccupied);
  }
  OccupancyTracker tracker_;
  const std::vector<int> ids_{7};
  const std::vector<Vec2> expected_{{100e-6, 100e-6}};
};

TEST_F(TrackerTest, SingleNoisyMissDoesNotFlipTheTrack) {
  // One missed frame, then the detection returns: no state change ever.
  auto up = tracker_.update(ids_, expected_, {});
  EXPECT_TRUE(up.changes.empty());
  EXPECT_EQ(tracker_.state(7), TrackState::kOccupied);
  up = tracker_.update(ids_, expected_, {det(102e-6, 99e-6)});
  EXPECT_TRUE(up.changes.empty());
  // Two more isolated misses, interleaved with hits: still no flap.
  for (int round = 0; round < 2; ++round) {
    up = tracker_.update(ids_, expected_, {});
    EXPECT_TRUE(up.changes.empty()) << "round " << round;
    up = tracker_.update(ids_, expected_, {det(100e-6, 100e-6)});
    EXPECT_TRUE(up.changes.empty()) << "round " << round;
  }
  EXPECT_EQ(tracker_.state(7), TrackState::kOccupied);
}

TEST_F(TrackerTest, ConsecutiveMissesConfirmLossExactlyOnce) {
  tracker_.update(ids_, expected_, {});
  tracker_.update(ids_, expected_, {});
  EXPECT_EQ(tracker_.state(7), TrackState::kOccupied);  // 2 misses: not yet
  const auto up = tracker_.update(ids_, expected_, {});
  ASSERT_EQ(up.changes.size(), 1u);
  EXPECT_EQ(up.changes[0].cage_id, 7);
  EXPECT_EQ(up.changes[0].state, TrackState::kLost);
  // Further misses do not re-announce the loss.
  EXPECT_TRUE(tracker_.update(ids_, expected_, {}).changes.empty());
}

TEST_F(TrackerTest, RecaptureNeedsHitHysteresis) {
  for (int n = 0; n < 3; ++n) tracker_.update(ids_, expected_, {});
  ASSERT_EQ(tracker_.state(7), TrackState::kLost);
  auto up = tracker_.update(ids_, expected_, {det(101e-6, 100e-6)});
  EXPECT_TRUE(up.changes.empty());  // one hit: not confirmed yet
  up = tracker_.update(ids_, expected_, {det(101e-6, 100e-6)});
  ASSERT_EQ(up.changes.size(), 1u);
  EXPECT_EQ(up.changes[0].state, TrackState::kOccupied);
  EXPECT_TRUE(tracker_.has_fix(7));
  EXPECT_NEAR(tracker_.last_fix(7).x, 101e-6, 1e-12);
}

TEST_F(TrackerTest, OutOfGateDetectionIsUnmatched) {
  // 50 µm from the expected trap center with a 30 µm gate: stray.
  const auto up = tracker_.update(ids_, expected_, {det(150e-6, 100e-6)});
  ASSERT_EQ(up.unmatched_detections.size(), 1u);
  EXPECT_EQ(up.unmatched_detections[0], 0u);
}

// ------------------------------------------------------- episode fixtures ----

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

// One self-contained chip world per episode (episodes must not share state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  void add_cell(GridCoord site, GridCoord goal) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius, spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    goals.push_back({id, goal});
  }
};

class ClosedLoopTest : public ::testing::Test {
 protected:
  ClosedLoopTest() {
    cfg_ = chip::paper_config_on_node(chip::paper_node());
    cfg_.cols = 24;
    cfg_.rows = 24;
    cage_ = chip::BiochipDevice(cfg_).calibrate_cage(5, 6);
  }

  std::unique_ptr<World> make_world() const {
    auto world = std::make_unique<World>(cfg_, cage_);
    world->defects.set_state({10, 4}, chip::PixelState::kDead);
    world->add_cell({3, 4}, {20, 4});
    world->add_cell({3, 10}, {20, 10});
    world->add_cell({3, 16}, {20, 16});
    return world;
  }

  EpisodeReport run(World& world, const ControlConfig& config, std::uint64_t seed) {
    core::ClosedLoopTransporter transporter(world.cages, world.engine, world.imager,
                                            world.defects, 0.4, config);
    Rng rng(seed);
    return transporter.execute(world.goals, world.bodies, world.cage_bodies, rng);
  }

  chip::DeviceConfig cfg_;
  field::HarmonicCage cage_;
};

// The acceptance loop: a scripted escape plus a dead pixel on one route. The
// open-loop baseline loses the cell; the closed loop confirms the loss,
// recaptures, re-routes around the defect and delivers everything.
TEST_F(ClosedLoopTest, LostCellIsRecapturedAndDelivered) {
  ControlConfig config;
  config.forced_escapes = {{4, 0}};
  config.defect_aware_initial = false;  // exercise the online defect reroute

  auto open_world = make_world();
  ControlConfig open = config;
  open.closed_loop = false;
  const EpisodeReport open_report = run(*open_world, open, 2026);
  EXPECT_TRUE(open_report.planned);
  EXPECT_FALSE(open_report.success);
  EXPECT_EQ(open_report.failed_ids, std::vector<int>{0});

  auto closed_world = make_world();
  const EpisodeReport report = run(*closed_world, config, 2026);
  EXPECT_TRUE(report.planned);
  EXPECT_TRUE(report.success) << "failed cages: " << report.failed_ids.size();
  EXPECT_EQ(report.delivered_ids.size(), 3u);
  EXPECT_GE(report.replans, 2u);  // defect reroute + recapture legs

  // The audit trail tells the story in order for cage 0.
  std::vector<EventKind> story;
  for (const ControlEvent& e : report.events)
    if (e.cage_id == 0 && e.kind != EventKind::kRerouted) story.push_back(e.kind);
  const std::vector<EventKind> expected{
      EventKind::kEscapeInjected, EventKind::kCellLost, EventKind::kRecaptureStarted,
      EventKind::kCellRecaptured, EventKind::kDelivered};
  EXPECT_EQ(story, expected);
}

// Bitwise identity of the pooled episode fan-out vs the serial reference:
// same trajectories, same event logs, for any chunking.
TEST_F(ClosedLoopTest, EpisodeFanOutBitwiseIdenticalToSerial) {
  ControlConfig config;
  config.forced_escapes = {{4, 0}};
  config.escape_rate = 0.002;

  const auto run_episodes = [&](std::size_t max_parts) {
    std::vector<std::unique_ptr<World>> worlds;
    std::vector<std::unique_ptr<core::ClosedLoopTransporter>> transporters;
    std::vector<core::ClosedLoopTransporter::Episode> episodes;
    for (int n = 0; n < 3; ++n) {
      worlds.push_back(make_world());
      World& w = *worlds.back();
      transporters.push_back(std::make_unique<core::ClosedLoopTransporter>(
          w.cages, w.engine, w.imager, w.defects, 0.4, config));
      episodes.push_back({transporters.back().get(), w.goals, &w.bodies, w.cage_bodies});
    }
    Rng rng(4242);
    const auto reports =
        core::ClosedLoopTransporter::execute_episodes(episodes, rng, max_parts);
    std::vector<Vec3> positions;
    for (const auto& w : worlds)
      for (const physics::ParticleBody& b : w->bodies) positions.push_back(b.position);
    return std::make_pair(reports, positions);
  };

  const auto [serial_reports, serial_pos] = run_episodes(1);
  const auto [fanned_reports, fanned_pos] = run_episodes(0);
  ASSERT_EQ(serial_pos.size(), fanned_pos.size());
  for (std::size_t n = 0; n < serial_pos.size(); ++n)
    ASSERT_EQ(serial_pos[n], fanned_pos[n]) << "body " << n;
  ASSERT_EQ(serial_reports.size(), fanned_reports.size());
  for (std::size_t n = 0; n < serial_reports.size(); ++n) {
    const EpisodeReport& a = serial_reports[n];
    const EpisodeReport& b = fanned_reports[n];
    EXPECT_TRUE(a.planned);
    ASSERT_EQ(a.events.size(), b.events.size()) << "episode " << n;
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].tick, b.events[e].tick);
      EXPECT_EQ(a.events[e].kind, b.events[e].kind);
      EXPECT_EQ(a.events[e].cage_id, b.events[e].cage_id);
    }
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.delivered_ids, b.delivered_ids);
    EXPECT_EQ(a.failed_ids, b.failed_ids);
  }
}

// Defect-injection fuzz: randomized defect maps and random escapes. The
// engine must never crash, never silently drop a cell from the books —
// every goal cage ends in exactly one of delivered/failed, and every
// failure carries an explicit event.
TEST_F(ClosedLoopTest, DefectFuzzAccountsForEveryCell) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    auto world = std::make_unique<World>(cfg_, cage_);
    Rng defect_rng(seed);
    world->defects =
        chip::sample_defects(world->dev.array(), 0.01, defect_rng);
    // Keep the launch/goal sites themselves usable so the episode starts
    // legally; everything in between is up to the supervisor.
    const GridCoord starts[3] = {{3, 4}, {3, 10}, {3, 16}};
    const GridCoord goals[3] = {{20, 4}, {20, 10}, {20, 16}};
    for (int n = 0; n < 3; ++n) {
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc) {
          world->defects.set_state({starts[n].col + dc, starts[n].row + dr},
                                   chip::PixelState::kOk);
          world->defects.set_state({goals[n].col + dc, goals[n].row + dr},
                                   chip::PixelState::kOk);
        }
      world->add_cell(starts[n], goals[n]);
    }

    ControlConfig config;
    config.escape_rate = 0.01;
    const EpisodeReport report = run(*world, config, seed * 1000 + 1);
    ASSERT_TRUE(report.planned) << "seed " << seed;

    std::vector<int> accounted = report.delivered_ids;
    accounted.insert(accounted.end(), report.failed_ids.begin(),
                     report.failed_ids.end());
    std::sort(accounted.begin(), accounted.end());
    EXPECT_EQ(accounted, (std::vector<int>{0, 1, 2})) << "seed " << seed;
    EXPECT_EQ(count_events(report.events, EventKind::kDeliveryFailed),
              report.failed_ids.size())
        << "seed " << seed;
    // Delivered cages must have a delivery event; failed ones must not be
    // double-counted as delivered.
    for (const int id : report.delivered_ids)
      EXPECT_TRUE(std::any_of(report.events.begin(), report.events.end(),
                              [&](const ControlEvent& e) {
                                return e.cage_id == id &&
                                       e.kind == EventKind::kDelivered;
                              }))
          << "seed " << seed << " cage " << id;
  }
}

}  // namespace
}  // namespace biochip::control
