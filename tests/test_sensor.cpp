// Tests for the sensor library: capacitive/optical pixel models, scan
// timing, frame synthesis (offsets, CDS, averaging), and detection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"
#include "sensor/optical.hpp"
#include "sensor/scan.hpp"

namespace biochip::sensor {
namespace {

using namespace biochip::units;

CapacitivePixel paper_pixel() {
  CapacitivePixel px;
  px.electrode_area = 16.0_um * 16.0_um;
  px.chamber_height = 100.0_um;
  px.sense_voltage = 3.3;
  return px;
}

// ------------------------------------------------------------ capacitive ----

TEST(Capacitive, BaselineIsSeriesCombination) {
  const CapacitivePixel px = paper_pixel();
  const double c = px.baseline_capacitance();
  // fF scale for a 16 µm electrode through 100 µm of water.
  EXPECT_GT(c, 0.1e-15);
  EXPECT_LT(c, 100e-15);
  // Series: less than either plate alone.
  const double c_liquid =
      px.medium_eps_r * constants::epsilon0 * px.electrode_area / px.chamber_height;
  EXPECT_LT(c, c_liquid);
}

TEST(Capacitive, DeltaCNegativeAndMonotonicInRadius) {
  const CapacitivePixel px = paper_pixel();
  double prev = 0.0;
  for (double r : {1e-6, 2e-6, 4e-6, 8e-6}) {
    const double d = px.delta_c(r, r * 1.05, 0.0);
    EXPECT_LT(d, 0.0) << r;
    EXPECT_LT(d, prev) << r;  // more negative with size
    prev = d;
  }
}

TEST(Capacitive, DeltaCDecaysWithHeightAndLateralOffset) {
  const CapacitivePixel px = paper_pixel();
  const double near = std::fabs(px.delta_c(5e-6, 6e-6, 0.0));
  const double high = std::fabs(px.delta_c(5e-6, 30e-6, 0.0));
  const double aside = std::fabs(px.delta_c(5e-6, 6e-6, 15e-6));
  EXPECT_GT(near, high);
  EXPECT_GT(near, aside);
}

TEST(Capacitive, NoiseSigmaHasAmplifierFloor) {
  CapacitivePixel px = paper_pixel();
  const double sigma = px.frame_noise_sigma(298.15);
  EXPECT_GE(sigma, px.amp_noise_charge / px.sense_voltage);
  px.amp_noise_charge = 0.0;
  EXPECT_GT(px.frame_noise_sigma(298.15), 0.0);  // kT/C term remains
}

TEST(Capacitive, HigherSenseVoltageBuysSnr) {
  // Claim C2's sensing half: ΔC-referred noise falls as 1/V.
  CapacitivePixel hi = paper_pixel();   // 3.3 V
  CapacitivePixel lo = paper_pixel();
  lo.sense_voltage = 1.0;
  EXPECT_NEAR(hi.single_frame_snr(5e-6, 6e-6, 298.15) /
                  lo.single_frame_snr(5e-6, 6e-6, 298.15),
              3.3, 1e-9);
}

TEST(Capacitive, AveragedSnrFollowsSqrtN) {
  // Claim C4's law: SNR(N) = SNR(1)·√N.
  const CapacitivePixel px = paper_pixel();
  const double s1 = px.averaged_snr(5e-6, 6e-6, 298.15, 1);
  const double s16 = px.averaged_snr(5e-6, 6e-6, 298.15, 16);
  const double s256 = px.averaged_snr(5e-6, 6e-6, 298.15, 256);
  EXPECT_NEAR(s16 / s1, 4.0, 1e-9);
  EXPECT_NEAR(s256 / s1, 16.0, 1e-9);
}

TEST(Capacitive, FramesForSnrInvertsTheLaw) {
  const CapacitivePixel px = paper_pixel();
  const double s1 = px.single_frame_snr(2e-6, 2.2e-6, 298.15);
  const std::size_t n = frames_for_snr(px, 2e-6, 2.2e-6, 298.15, 5.0 * s1);
  EXPECT_GE(n, 25u);
  EXPECT_LE(n, 26u);
  EXPECT_EQ(frames_for_snr(px, 10e-6, 10.5e-6, 298.15, 1e-6), 1u);
}

class AveragingLawTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AveragingLawTest, SnrScalesExactly) {
  const CapacitivePixel px = paper_pixel();
  const std::size_t n = GetParam();
  EXPECT_NEAR(px.averaged_snr(5e-6, 6e-6, 298.15, n),
              px.single_frame_snr(5e-6, 6e-6, 298.15) * std::sqrt(double(n)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PowersOfFour, AveragingLawTest,
                         ::testing::Values(1u, 4u, 16u, 64u, 256u, 1024u, 4096u));

// --------------------------------------------------------------- optical ----

TEST(Optical, BaselineAndShadowSigns) {
  OpticalPixel px;
  px.photodiode_area = 10.0_um * 10.0_um;
  EXPECT_GT(px.baseline_current(), 0.0);
  EXPECT_GT(px.delta_current(5e-6, 0.0), 0.0);
  EXPECT_LT(px.delta_current(5e-6, 20e-6), px.delta_current(5e-6, 0.0));
}

TEST(Optical, ShadowSaturatesAtPixelArea) {
  OpticalPixel px;
  px.photodiode_area = 10.0_um * 10.0_um;
  const double huge = px.delta_current(50e-6, 0.0);
  const double expected_cap =
      px.responsivity * px.irradiance * px.photodiode_area * px.shadow_contrast;
  EXPECT_NEAR(huge, expected_cap, expected_cap * 1e-9);
}

TEST(Optical, SnrImprovesWithIntegrationAndAveraging) {
  OpticalPixel px;
  px.photodiode_area = 10.0_um * 10.0_um;
  const double s1 = px.single_frame_snr(5e-6);
  EXPECT_GT(s1, 0.0);
  EXPECT_NEAR(px.averaged_snr(5e-6, 9) / s1, 3.0, 1e-9);
  OpticalPixel longer = px;
  longer.integration_time = 4.0 * px.integration_time;
  // Signal ∝ T, noise ∝ √T → SNR ∝ √T... here noise charge = sqrt(2qI·T/2):
  EXPECT_NEAR(longer.single_frame_snr(5e-6) / s1, 2.0, 1e-6);
}

// ------------------------------------------------------------------ scan ----

TEST(Scan, FrameTimeScalesWithArray) {
  ScanTiming scan;
  chip::ElectrodeArray small(64, 64, 20.0_um), large(320, 320, 20.0_um);
  EXPECT_LT(scan.frame_time(small), scan.frame_time(large));
  EXPECT_GT(scan.frame_rate(small), scan.frame_rate(large));
}

TEST(Scan, PaperArrayFrameRateAboveVideoRate) {
  // 102k pixels over 8 ADCs at 1 Msps -> ~70 fps: sensor readout is not the
  // bottleneck (claim C3/C4 coupling).
  ScanTiming scan;
  chip::ElectrodeArray a(320, 320, 20.0_um);
  EXPECT_GT(scan.frame_rate(a), 25.0);
}

TEST(Scan, MaxFramesWithinTransitBudget) {
  ScanTiming scan;
  chip::ElectrodeArray a(320, 320, 20.0_um);
  const std::size_t n = scan.max_frames_within_transit(a, 50e-6);
  EXPECT_GE(n, 10u);   // plenty of averaging during one pitch transit
  EXPECT_LE(n, 1000u);
  // Faster cells leave less time.
  EXPECT_LT(scan.max_frames_within_transit(a, 100e-6), n);
}

TEST(Scan, AcquisitionTimeLinearInFrames) {
  ScanTiming scan;
  chip::ElectrodeArray a(64, 64, 20.0_um);
  EXPECT_NEAR(scan.acquisition_time(a, 10), 10.0 * scan.frame_time(a), 1e-12);
}

// ----------------------------------------------------------------- frame ----

class FrameTest : public ::testing::Test {
 protected:
  chip::ElectrodeArray array_{32, 32, 20.0e-6};
  FrameSynthesizer synth_{array_, paper_pixel(), 298.15, 77};
  std::vector<FrameTarget> one_cell_{{{320.0e-6, 320.0e-6, 6.0e-6}, 5.0e-6}};
};

TEST_F(FrameTest, IdealFrameSignalAtParticlePixel) {
  const Grid2 f = synth_.ideal_frame(one_cell_);
  const GridCoord at = array_.nearest({320.0e-6, 320.0e-6});
  EXPECT_LT(f.at(static_cast<std::size_t>(at.col), static_cast<std::size_t>(at.row)), 0.0);
  // Far corner is clean.
  EXPECT_DOUBLE_EQ(f.at(0, 0), 0.0);
}

TEST_F(FrameTest, OffsetsAreDeterministicPerSeed) {
  FrameSynthesizer again(array_, paper_pixel(), 298.15, 77);
  for (std::size_t n = 0; n < synth_.offsets().size(); ++n)
    EXPECT_DOUBLE_EQ(synth_.offsets().data()[n], again.offsets().data()[n]);
  FrameSynthesizer other(array_, paper_pixel(), 298.15, 78);
  EXPECT_NE(synth_.offsets().data()[0], other.offsets().data()[0]);
}

TEST_F(FrameTest, CdsRemovesFixedPatternOffsets) {
  Rng rng(5);
  const Grid2 raw = synth_.raw_frame({}, rng);
  const Grid2 cds = synth_.cds_frame({}, rng);
  // Raw frame variance is dominated by the 3 fF offsets; CDS by ~40 aF noise.
  RunningStats raw_stats, cds_stats;
  for (double v : raw.data()) raw_stats.add(v);
  for (double v : cds.data()) cds_stats.add(v);
  EXPECT_GT(raw_stats.stddev(), 20.0 * cds_stats.stddev());
}

TEST_F(FrameTest, AveragingShrinksNoiseBySqrtN) {
  Rng rng(6);
  RunningStats s1, s64;
  for (int rep = 0; rep < 12; ++rep) {
    const Grid2 f1 = synth_.averaged_frame({}, rng, 1);
    const Grid2 f64 = synth_.averaged_frame({}, rng, 64);
    for (double v : f1.data()) s1.add(v);
    for (double v : f64.data()) s64.add(v);
  }
  EXPECT_NEAR(s1.stddev() / s64.stddev(), 8.0, 1.0);
}

TEST_F(FrameTest, InvalidTargetThrows) {
  EXPECT_THROW(synth_.ideal_frame({{{0, 0, 0}, 0.0}}), PreconditionError);
}

// ---------------------------------------------------------------- detect ----

class DetectTest : public ::testing::Test {
 protected:
  chip::ElectrodeArray array_{32, 32, 20.0e-6};
  CapacitivePixel pixel_ = paper_pixel();
  FrameSynthesizer synth_{array_, pixel_, 298.15, 99};

  std::vector<FrameTarget> targets_ = {
      {{100.0e-6, 100.0e-6, 6.0e-6}, 5.0e-6},
      {{420.0e-6, 180.0e-6, 6.0e-6}, 5.0e-6},
      {{300.0e-6, 520.0e-6, 6.0e-6}, 5.0e-6},
  };
  std::vector<Vec2> truth_ = {{100.0e-6, 100.0e-6}, {420.0e-6, 180.0e-6},
                              {300.0e-6, 520.0e-6}};
};

TEST_F(DetectTest, ThresholdFindsAllCellsInAveragedFrame) {
  Rng rng(7);
  const Grid2 frame = synth_.averaged_frame(targets_, rng, 64);
  const double sigma = synth_.cds_noise_sigma() / 8.0;
  const auto dets = detect_threshold(frame, array_, 6.0 * sigma);
  const MatchStats stats = match_detections(truth_, dets, 30e-6);
  EXPECT_EQ(stats.true_positives, 3);
  EXPECT_EQ(stats.false_negatives, 0);
  EXPECT_LE(stats.false_positives, 1);
  EXPECT_LT(stats.mean_localization_error, 15e-6);
}

TEST_F(DetectTest, SingleNoisyFrameMissesSmallCells) {
  // A 2 µm particle has single-frame SNR << 1: detection needs averaging.
  std::vector<FrameTarget> small{{{200.0e-6, 200.0e-6, 2.2e-6}, 2.0e-6}};
  Rng rng(8);
  const Grid2 one = synth_.cds_frame(small, rng);
  const double sigma = synth_.cds_noise_sigma();
  const auto dets1 = detect_threshold(one, array_, 5.0 * sigma);
  const MatchStats m1 = match_detections({{200.0e-6, 200.0e-6}}, dets1, 30e-6);
  EXPECT_EQ(m1.true_positives, 0);
  // 4096 averaged frames recover it.
  const Grid2 avg = synth_.averaged_frame(small, rng, 4096);
  const auto dets2 = detect_threshold(avg, array_, 5.0 * sigma / 64.0);
  const MatchStats m2 = match_detections({{200.0e-6, 200.0e-6}}, dets2, 30e-6);
  EXPECT_EQ(m2.true_positives, 1);
}

TEST_F(DetectTest, MatchedFilterBeatsThresholdAtLowSnr) {
  // At marginal SNR the matched filter should find at least as many cells
  // with no more false positives.
  std::vector<FrameTarget> faint{{{200.0e-6, 200.0e-6, 3.3e-6}, 3.0e-6},
                                 {{440.0e-6, 400.0e-6, 3.3e-6}, 3.0e-6}};
  const std::vector<Vec2> truth{{200.0e-6, 200.0e-6}, {440.0e-6, 400.0e-6}};
  Rng rng(9);
  int matched_wins = 0, tie = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Grid2 frame = synth_.averaged_frame(faint, rng, 4);
    const double sigma = synth_.cds_noise_sigma() / 2.0;
    const auto th = match_detections(
        truth, detect_threshold(frame, array_, 4.5 * sigma), 40e-6);
    const auto mf = match_detections(
        truth, detect_matched(frame, array_, pixel_, 3e-6, 3.3e-6, 4.5 * sigma), 40e-6);
    const double th_score = th.true_positives - th.false_positives;
    const double mf_score = mf.true_positives - mf.false_positives;
    if (mf_score > th_score) ++matched_wins;
    if (mf_score == th_score) ++tie;
  }
  EXPECT_GE(matched_wins + tie, 7);
}

TEST_F(DetectTest, MatchStatsAccounting) {
  std::vector<Detection> dets{{{100.0e-6, 100.0e-6}, 1.0, 1},
                              {{900.0e-6, 900.0e-6}, 1.0, 1}};
  const MatchStats stats = match_detections(truth_, dets, 25e-6);
  EXPECT_EQ(stats.true_positives, 1);
  EXPECT_EQ(stats.false_positives, 1);
  EXPECT_EQ(stats.false_negatives, 2);
  EXPECT_NEAR(stats.recall(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.precision(), 0.5, 1e-12);
}

TEST_F(DetectTest, TwoAdjacentCellsMergeIntoOneCluster) {
  // Cells one pitch apart blur into one cluster at this pixel pitch — the
  // known resolution limit of pitch-sampled imaging.
  std::vector<FrameTarget> pair{{{200.0e-6, 200.0e-6, 6.0e-6}, 5.0e-6},
                                {{220.0e-6, 200.0e-6, 6.0e-6}, 5.0e-6}};
  Rng rng(10);
  const Grid2 frame = synth_.averaged_frame(pair, rng, 256);
  const auto dets = detect_threshold(frame, array_, synth_.cds_noise_sigma());
  EXPECT_EQ(dets.size(), 1u);
  EXPECT_GT(dets.front().pixel_count, 1);
}

TEST(Detect, KernelIsUnitEnergy) {
  chip::ElectrodeArray array(16, 16, 20.0e-6);
  const auto kernel = matched_kernel(paper_pixel(), array, 5e-6, 6e-6, 1);
  double energy = 0.0;
  for (double v : kernel) energy += v * v;
  EXPECT_NEAR(energy, 1.0, 1e-9);
}

TEST(Frame, PixelFaultsOverlayByKind) {
  const chip::ElectrodeArray array(4, 4, 20.0_um);
  chip::DefectMap defects(array);
  defects.set_state({1, 0}, chip::PixelState::kDead);
  defects.set_state({2, 1}, chip::PixelState::kStuckBackground);
  defects.set_state({3, 2}, chip::PixelState::kStuckCage);
  Grid2 frame(4, 4, 20.0_um, /*init=*/-7e-16);
  apply_pixel_faults(frame, defects, -4e-15);
  EXPECT_EQ(frame.at(1, 0), 0.0);      // dead: no reading
  EXPECT_EQ(frame.at(2, 1), 0.0);      // stuck background: no reading
  EXPECT_EQ(frame.at(3, 2), -4e-15);   // stuck cage: parked-phantom ΔC
  EXPECT_EQ(frame.at(0, 0), -7e-16);   // healthy pixels untouched
  // Controller-side bad-pixel masking is the same overlay with ΔC = 0.
  apply_pixel_faults(frame, defects, 0.0);
  EXPECT_EQ(frame.at(3, 2), 0.0);
  Grid2 wrong(3, 3, 20.0_um);
  EXPECT_THROW(apply_pixel_faults(wrong, defects, 0.0), PreconditionError);
}

TEST(Detect, AssociateNearestWithinGate) {
  const std::vector<Vec2> expected{{100e-6, 100e-6}, {200e-6, 100e-6}};
  std::vector<Detection> dets(3);
  dets[0].position = {205e-6, 102e-6};  // nearest to expected[1]
  dets[1].position = {101e-6, 99e-6};   // nearest to expected[0]
  dets[2].position = {400e-6, 400e-6};  // stray, out of every gate
  const std::vector<int> a = associate_detections(expected, dets, 30e-6);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
  // Each detection is used at most once: one detection cannot serve two
  // expected positions even when both are in gate.
  const std::vector<Vec2> both{{100e-6, 100e-6}, {110e-6, 100e-6}};
  const std::vector<Detection> one{dets[1]};
  const std::vector<int> b = associate_detections(both, one, 30e-6);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], -1);
}

TEST(Detect, ThresholdValidation) {
  Grid2 frame(4, 4, 20.0e-6);
  chip::ElectrodeArray array(4, 4, 20.0e-6);
  EXPECT_THROW(detect_threshold(frame, array, 0.0), PreconditionError);
  EXPECT_THROW(match_detections({}, {}, 0.0), PreconditionError);
}

}  // namespace
}  // namespace biochip::sensor
