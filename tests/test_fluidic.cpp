// Tests for the fluidic library: chamber, slot flow, evaporation, mask
// layout + DRC, fabrication process economics (claim C6), and packaging
// (the paper's Fig. 3 stack).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "fluidic/chamber.hpp"
#include "fluidic/evaporation.hpp"
#include "fluidic/fabrication.hpp"
#include "fluidic/flow.hpp"
#include "fluidic/mask.hpp"
#include "fluidic/packaging.hpp"
#include "physics/medium.hpp"

namespace biochip::fluidic {
namespace {

using namespace biochip::units;

// --------------------------------------------------------------- chamber ----

TEST(Chamber, PaperChamberVolumeIsAbout4ul) {
  const Microchamber c{6.4_mm, 6.4_mm, 100.0_um};
  EXPECT_NEAR(c.volume(), 4.1e-9, 0.1e-9);
  EXPECT_NO_THROW(validate(c));
}

TEST(Chamber, ExchangeTimeAndHydraulicDiameter) {
  const Microchamber c{6.4_mm, 6.4_mm, 100.0_um};
  EXPECT_NEAR(c.exchange_time(1e-9 / 60.0), c.volume() / (1e-9 / 60.0), 1e-6);
  EXPECT_NEAR(c.hydraulic_diameter(), 2.0 * 100.0_um, 10.0_um);  // slot limit 2h
}

TEST(Chamber, ValidationRejectsNonSlot) {
  Microchamber c{1.0_mm, 1.0_mm, 0.8_mm};
  EXPECT_THROW(validate(c), ConfigError);
  c = {0.0, 1.0_mm, 0.1_mm};
  EXPECT_THROW(validate(c), ConfigError);
}

// ------------------------------------------------------------------ flow ----

class FlowTest : public ::testing::Test {
 protected:
  Microchamber chamber_{6.4e-3, 6.4e-3, 100.0e-6};
  physics::Medium medium_ = physics::dep_buffer();
};

TEST_F(FlowTest, ParabolicProfile) {
  SlotFlow flow(chamber_, medium_, 100e-6);
  EXPECT_DOUBLE_EQ(flow.velocity_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(flow.velocity_at(chamber_.height), 0.0);
  EXPECT_NEAR(flow.velocity_at(chamber_.height / 2.0), 1.5 * 100e-6, 1e-12);
  EXPECT_NEAR(flow.peak_velocity(), 1.5 * 100e-6, 1e-12);
  // Symmetry.
  EXPECT_NEAR(flow.velocity_at(25e-6), flow.velocity_at(75e-6), 1e-15);
}

TEST_F(FlowTest, CreepingFlowRegime) {
  SlotFlow flow(chamber_, medium_, 100e-6);
  EXPECT_LT(flow.reynolds(), 0.1);  // deeply laminar
}

TEST_F(FlowTest, WallShearSafeForCells) {
  // 100 µm/s mean flow: shear ~ 5 mPa, far below the ~1 Pa damage level.
  SlotFlow flow(chamber_, medium_, 100e-6);
  EXPECT_LT(flow.wall_shear_stress(), 0.05);
  EXPECT_GT(flow.wall_shear_stress(), 0.0);
}

TEST_F(FlowTest, DragOnHeldParticleVsHoldingForce) {
  // A trapped cell at mid-height in a 100 µm/s flow feels ~100 fN-pN drag.
  SlotFlow flow(chamber_, medium_, 100e-6);
  const double drag = flow.drag_on_held_particle(5e-6, 20e-6);
  EXPECT_GT(drag, 1e-14);
  EXPECT_LT(drag, 1e-10);
}

TEST_F(FlowTest, FlowRateConsistent) {
  SlotFlow flow(chamber_, medium_, 100e-6);
  EXPECT_NEAR(flow.flow_rate(), 100e-6 * chamber_.width * chamber_.height, 1e-18);
  EXPECT_GT(flow.pressure_gradient(), 0.0);
}

// ------------------------------------------------------------ evaporation ----

TEST(Evaporation, SaturationPressureIncreasesWithT) {
  EXPECT_GT(saturation_vapor_pressure(celsius(37.0)),
            saturation_vapor_pressure(celsius(20.0)));
  EXPECT_NEAR(saturation_vapor_pressure(celsius(25.0)), 3169.0, 100.0);  // ~3.17 kPa
}

TEST(Evaporation, DropLifetimeMinutesScale) {
  // A 4 µl open drop of ~2 mm contact radius dies in minutes — the reason
  // the paper's chamber is sealed (Fig. 3).
  const Ambient ambient{};
  const double life = drop_lifetime(4.0_uL, 2.0_mm, ambient);
  EXPECT_GT(life, 1.0_min);
  EXPECT_LT(life, 120.0_min);
}

TEST(Evaporation, HumidityExtendsLifetime) {
  Ambient dry{};
  dry.relative_humidity = 0.1;
  Ambient humid{};
  humid.relative_humidity = 0.9;
  EXPECT_GT(drop_lifetime(4.0_uL, 2.0_mm, humid), drop_lifetime(4.0_uL, 2.0_mm, dry));
}

TEST(Evaporation, SealedChamberDriftsSlowly) {
  // Port evaporation through a 1 mm film from a 0.5 mm port: the chamber
  // osmolarity drifts < 1%/min — cells survive the assay.
  const Ambient ambient{};
  const double rate = port_evaporation_rate(0.25e-6, 1.0_mm, ambient);
  const double drift = osmolarity_drift_rate(4.0_uL, rate);
  EXPECT_LT(drift * 60.0, 0.01);
}

TEST(Evaporation, Validation) {
  const Ambient ambient{};
  EXPECT_THROW(drop_evaporation_rate(0.0, ambient), PreconditionError);
  EXPECT_THROW(saturation_vapor_pressure(1000.0), PreconditionError);
}

// ------------------------------------------------------------------ mask ----

FluidicMask demo_mask() {
  FluidicMask mask("demo");
  mask.add_rect("chamber", FeatureKind::kChamber,
                {{2.0_mm, 2.0_mm}, {8.4_mm, 8.4_mm}}, 0);
  mask.add_channel("inlet_channel", {0.5_mm, 5.2_mm}, {2.0_mm, 5.2_mm}, 300.0_um, 0);
  mask.add_channel("outlet_channel", {8.4_mm, 5.2_mm}, {9.9_mm, 5.2_mm}, 300.0_um, 0);
  mask.add_port("inlet", {0.5_mm, 5.2_mm}, 600.0_um, 0);
  mask.add_port("outlet", {9.9_mm, 5.2_mm}, 600.0_um, 0);
  return mask;
}

DesignRules demo_rules() {
  DesignRules rules;
  rules.die = {{0.0, 0.0}, {10.4_mm, 10.4_mm}};
  return rules;
}

TEST(Mask, CleanLayoutPassesDrc) {
  const auto violations = run_drc(demo_mask(), demo_rules());
  EXPECT_TRUE(violations.empty());
}

TEST(Mask, NarrowChannelFlagged) {
  FluidicMask mask = demo_mask();
  mask.add_channel("too_narrow", {3.0_mm, 9.0_mm}, {5.0_mm, 9.0_mm}, 50.0_um, 0);
  const auto violations = run_drc(mask, demo_rules());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().rule, "min_feature");
  EXPECT_EQ(violations.front().feature_a, "too_narrow");
}

TEST(Mask, SpacingViolationBetweenUnconnectedFeatures) {
  FluidicMask mask = demo_mask();
  // 50 µm from the chamber edge: too close, not touching.
  mask.add_rect("stray", FeatureKind::kChamber,
                {{8.45_mm, 3.0_mm}, {9.0_mm, 4.0_mm}}, 0);
  const auto violations = run_drc(mask, demo_rules());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().rule, "min_spacing");
}

TEST(Mask, TouchingFeaturesAreConnectedNotViolating) {
  FluidicMask mask("touch");
  mask.add_rect("a", FeatureKind::kChamber, {{1.0_mm, 1.0_mm}, {2.0_mm, 2.0_mm}}, 0);
  mask.add_rect("b", FeatureKind::kChannel, {{1.9_mm, 1.4_mm}, {3.0_mm, 1.6_mm}}, 0);
  DesignRules rules = demo_rules();
  EXPECT_TRUE(run_drc(mask, rules).empty());
}

TEST(Mask, OutOfDieFlagged) {
  FluidicMask mask = demo_mask();
  mask.add_rect("overhang", FeatureKind::kChamber,
                {{9.0_mm, 9.0_mm}, {11.0_mm, 10.0_mm}}, 0);
  const auto violations = run_drc(mask, demo_rules());
  bool found = false;
  for (const auto& v : violations)
    if (v.rule == "die_bounds" && v.feature_a == "overhang") found = true;
  EXPECT_TRUE(found);
}

TEST(Mask, SmallPortFlagged) {
  FluidicMask mask = demo_mask();
  mask.add_port("pin_hole", {5.0_mm, 9.5_mm}, 200.0_um, 0);
  const auto violations = run_drc(mask, demo_rules());
  bool found = false;
  for (const auto& v : violations)
    if (v.rule == "min_port_size") found = true;
  EXPECT_TRUE(found);
}

TEST(Mask, LayerCountAndMaxLayers) {
  FluidicMask mask = demo_mask();
  EXPECT_EQ(mask.layer_count(), 1);
  mask.add_rect("lid_hole", FeatureKind::kPort, {{5.0_mm, 5.0_mm}, {5.6_mm, 5.6_mm}}, 1);
  mask.add_rect("extra", FeatureKind::kChamber, {{1.0_mm, 1.0_mm}, {2.0_mm, 2.0_mm}}, 2);
  EXPECT_EQ(mask.layer_count(), 3);
  const auto violations = run_drc(mask, demo_rules());
  bool found = false;
  for (const auto& v : violations)
    if (v.rule == "max_layers") found = true;
  EXPECT_TRUE(found);
}

TEST(Mask, DiagonalChannelRejected) {
  FluidicMask mask("diag");
  EXPECT_THROW(mask.add_channel("d", {0, 0}, {1.0_mm, 1.0_mm}, 100.0_um),
               PreconditionError);
}

TEST(Mask, SvgContainsAllFeatures) {
  const std::string svg = demo_mask().to_svg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("inlet_channel"), std::string::npos);
  EXPECT_NE(svg.find("outlet"), std::string::npos);
}

TEST(Mask, BoundingBoxAndArea) {
  const FluidicMask mask = demo_mask();
  const Rect bb = mask.bounding_box();
  EXPECT_LE(bb.min.x, 0.5_mm);
  EXPECT_GE(bb.max.x, 9.9_mm);
  EXPECT_GT(mask.feature_area(0), 0.0);
  EXPECT_DOUBLE_EQ(mask.feature_area(5), 0.0);
}

// ------------------------------------------------------------ fabrication ----

TEST(Fabrication, DryFilmMatchesPaperNumbers) {
  // Claim C6 anchors: 2-3 days, masks few €, setup tens of k€.
  const ProcessSpec p = dry_film_resist();
  EXPECT_GE(p.turnaround, 2.0_day);
  EXPECT_LE(p.turnaround, 3.0_day);
  EXPECT_LE(p.mask_cost, 10.0_eur);
  EXPECT_GE(p.setup_cost, 10.0_keur);
  EXPECT_LE(p.setup_cost, 100.0_keur);
  EXPECT_TRUE(p.cmos_compatible);
}

TEST(Fabrication, DryFilmIsFastestAndCheapestNre) {
  const auto catalog = process_catalog();
  const ProcessSpec dfr = dry_film_resist();
  for (const ProcessSpec& p : catalog) {
    EXPECT_LE(dfr.turnaround, p.turnaround) << p.name;
    EXPECT_LE(dfr.mask_cost, p.mask_cost) << p.name;
    EXPECT_LE(dfr.setup_cost, p.setup_cost) << p.name;
  }
}

TEST(Fabrication, PlanFeasibleForCleanMask) {
  const FabricationReport r =
      plan_fabrication(demo_mask(), dry_film_resist(), 10, 100.0_um, true);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.issues.empty());
  EXPECT_NEAR(r.turnaround, 2.5_day, 0.1_day);
  EXPECT_GT(r.nre_cost, dry_film_resist().setup_cost);
}

TEST(Fabrication, ResolutionInfeasibilityDetected) {
  FluidicMask mask = demo_mask();
  mask.add_channel("fine", {3.0_mm, 9.0_mm}, {5.0_mm, 9.0_mm}, 30.0_um, 0);
  const FabricationReport r =
      plan_fabrication(mask, dry_film_resist(), 10, 100.0_um, true);
  EXPECT_FALSE(r.feasible);
  // The same mask is feasible in PDMS (20 µm resolution) off-die.
  const FabricationReport r2 =
      plan_fabrication(mask, pdms_soft_lithography(), 10, 100.0_um, false);
  EXPECT_TRUE(r2.feasible);
}

TEST(Fabrication, CmosCompatibilityGate) {
  const FabricationReport r =
      plan_fabrication(demo_mask(), glass_etch(), 10, 50.0_um, /*on_cmos_die=*/true);
  EXPECT_FALSE(r.feasible);
  bool found = false;
  for (const auto& issue : r.issues)
    if (issue.find("CMOS") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Fabrication, ChamberHeightRangeChecked) {
  const FabricationReport r =
      plan_fabrication(demo_mask(), dry_film_resist(), 10, 500.0_um, true);
  EXPECT_FALSE(r.feasible);
}

TEST(Fabrication, AmortizationDropsWithVolume) {
  const FabricationReport r1 =
      plan_fabrication(demo_mask(), dry_film_resist(), 1, 100.0_um, true);
  const FabricationReport r1000 =
      plan_fabrication(demo_mask(), dry_film_resist(), 1000, 100.0_um, true);
  EXPECT_GT(r1.amortized_unit_cost, 100.0 * r1000.amortized_unit_cost);
  EXPECT_NEAR(r1000.amortized_unit_cost,
              r1000.unit_cost + r1000.nre_cost / 1000.0, 1e-9);
}

TEST(Fabrication, IterationsPerMonth) {
  // 2.5-day turnaround -> ~12 loops/month; glass etch -> ~1.4.
  EXPECT_NEAR(iterations_per_month(dry_film_resist()), 12.0, 1.0);
  EXPECT_LT(iterations_per_month(glass_etch()), 2.0);
}

// -------------------------------------------------------------- packaging ----

PackageSpec paper_package() {
  PackageSpec spec;
  spec.die_width = 8.0_mm;
  spec.die_height = 8.0_mm;
  spec.active_width = 6.4_mm;
  spec.active_height = 6.4_mm;
  spec.resist_thickness = 100.0_um;
  return spec;
}

TEST(Packaging, PaperStackAssembles) {
  const AssembledDevice dev = assemble(paper_package(), AssemblyYield{});
  EXPECT_TRUE(dev.feasible) << (dev.issues.empty() ? "" : dev.issues.front());
  EXPECT_NEAR(dev.chamber.volume(), 4.1e-9, 0.2e-9);
  EXPECT_GT(dev.yield, 0.8);
  EXPECT_LT(dev.yield, 1.0);
}

TEST(Packaging, OversizedActiveAreaRejected) {
  PackageSpec spec = paper_package();
  spec.active_width = 7.5_mm;
  spec.active_height = 7.5_mm;
  const AssembledDevice dev = assemble(spec, AssemblyYield{});
  EXPECT_FALSE(dev.feasible);
}

TEST(Packaging, CoarseAlignmentRejected) {
  PackageSpec spec = paper_package();
  spec.alignment_tolerance = 1.0_mm;
  const AssembledDevice dev = assemble(spec, AssemblyYield{});
  EXPECT_FALSE(dev.feasible);
}

TEST(Packaging, YieldIsProductOfSteps) {
  AssemblyYield y;
  EXPECT_NEAR(y.overall(),
              y.lamination * y.exposure * y.development * y.bonding * y.electrical,
              1e-12);
}

TEST(Packaging, ItoLidDropSmallVsDrive) {
  const AssembledDevice dev = assemble(paper_package(), AssemblyYield{});
  EXPECT_LT(dev.lid_voltage_drop, 0.1);  // IR drop negligible vs 3.3 V drive
}

}  // namespace
}  // namespace biochip::fluidic
