// Tests for the particle/cell library and synthetic population generation.

#include <gtest/gtest.h>

#include <map>

#include "cell/library.hpp"
#include "cell/particle.hpp"
#include "cell/population.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "physics/dep.hpp"

namespace biochip::cell {
namespace {

TEST(Particle, VolumeMatchesSphere) {
  ParticleSpec s = polystyrene_bead(5e-6);
  EXPECT_NEAR(s.volume(), (4.0 / 3.0) * constants::pi * 125e-18, 1e-20);
}

TEST(Particle, ValidationCatchesBadSpecs) {
  ParticleSpec s = viable_lymphocyte();
  EXPECT_NO_THROW(validate(s));
  s.radius = 0.0;
  EXPECT_THROW(validate(s), ConfigError);
  s = viable_lymphocyte();
  s.dielectric.shell_thickness = s.radius * 2.0;
  EXPECT_THROW(validate(s), ConfigError);
  s = viable_lymphocyte();
  s.density = -1.0;
  EXPECT_THROW(validate(s), ConfigError);
}

TEST(Particle, DepPrefactorTracksReK) {
  const physics::Medium m = physics::dep_buffer();
  const ParticleSpec cell = viable_lymphocyte();
  const double f = 100e3;
  const double re_k = cell.re_k(m, f);
  const double pref = cell.dep_prefactor(m, f);
  EXPECT_LT(re_k, 0.0);  // nDEP below crossover
  EXPECT_LT(pref, 0.0);
  EXPECT_NEAR(pref, physics::dep_prefactor(m, cell.radius, re_k), 1e-30);
}

// Parameterized sanity sweep across the whole library.
class LibraryTest : public ::testing::TestWithParam<ParticleSpec> {};

TEST_P(LibraryTest, SpecIsValid) { EXPECT_NO_THROW(validate(GetParam())); }

TEST_P(LibraryTest, DensityNearWater) {
  // All biological particles and beads are within 20% of water density.
  EXPECT_GT(GetParam().density, 900.0);
  EXPECT_LT(GetParam().density, 1300.0);
}

TEST_P(LibraryTest, CmFactorBoundedAcrossBand) {
  const physics::Medium m = physics::dep_buffer();
  for (double f = 1e4; f <= 1e8; f *= 10.0) {
    const double re = GetParam().re_k(m, f);
    EXPECT_GE(re, -0.5 - 1e-9) << GetParam().name << " @ " << f;
    EXPECT_LE(re, 1.0 + 1e-9) << GetParam().name << " @ " << f;
  }
}

TEST_P(LibraryTest, RadiusInMicrometerRange) {
  EXPECT_GE(GetParam().radius, 0.5e-6);
  EXPECT_LE(GetParam().radius, 50e-6);
}

INSTANTIATE_TEST_SUITE_P(StandardLibrary, LibraryTest,
                         ::testing::ValuesIn(standard_library()),
                         [](const ::testing::TestParamInfo<ParticleSpec>& info) {
                           return info.param.name;
                         });

TEST(Library, ViabilityContrastExists) {
  // There must be a frequency band where viable and non-viable cells have
  // opposite DEP signs (the sorting example's physical basis).
  const physics::Medium m = physics::dep_buffer();
  const ParticleSpec viable = viable_lymphocyte();
  const ParticleSpec dead = nonviable_lymphocyte();
  bool found = false;
  for (double f = 20e3; f <= 500e3; f *= 1.3) {
    if (viable.re_k(m, f) < -0.05 && dead.re_k(m, f) > 0.05) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Population, CountsAndLabels) {
  Rng rng(99);
  const Aabb region{{0, 0, 0}, {1e-3, 1e-3, 1e-4}};
  const auto pop = draw_population(
      {{viable_lymphocyte(), 20, 0.05}, {polystyrene_bead(), 10, 0.02}}, region,
      false, rng);
  ASSERT_EQ(pop.size(), 30u);
  std::map<std::string, int> counts;
  for (const Instance& i : pop) ++counts[i.label];
  EXPECT_EQ(counts["viable_lymphocyte"], 20);
  EXPECT_EQ(counts["polystyrene_bead"], 10);
  // Ids unique and dense.
  for (std::size_t i = 0; i < pop.size(); ++i)
    EXPECT_EQ(pop[i].id, static_cast<int>(i));
}

TEST(Population, PositionsInsideRegion) {
  Rng rng(100);
  const Aabb region{{1e-4, 2e-4, 0}, {9e-4, 8e-4, 1e-4}};
  const auto pop = draw_population({{k562_cell(), 200, 0.08}}, region, false, rng);
  for (const Instance& i : pop) {
    EXPECT_TRUE(region.contains(i.position)) << i.id;
    // And the whole sphere fits.
    EXPECT_GE(i.position.z, region.min.z + i.spec.radius - 1e-12);
  }
}

TEST(Population, SedimentedPlacesCellsAtFloor) {
  Rng rng(101);
  const Aabb region{{0, 0, 0}, {1e-3, 1e-3, 1e-4}};
  const auto pop = draw_population({{erythrocyte(), 50, 0.05}}, region, true, rng);
  for (const Instance& i : pop)
    EXPECT_LT(i.position.z, 2.0 * i.spec.radius);
}

TEST(Population, SizeDispersionMatchesCv) {
  Rng rng(102);
  const Aabb region{{0, 0, 0}, {1e-2, 1e-2, 1e-4}};
  const auto pop = draw_population({{viable_lymphocyte(), 4000, 0.10}}, region, false, rng);
  RunningStats r;
  for (const Instance& i : pop) r.add(i.spec.radius);
  EXPECT_NEAR(r.mean(), 5e-6, 0.05e-6);
  EXPECT_NEAR(r.stddev() / r.mean(), 0.10, 0.01);
}

TEST(Population, ZeroCvGivesIdenticalRadii) {
  Rng rng(103);
  const Aabb region{{0, 0, 0}, {1e-3, 1e-3, 1e-4}};
  const auto pop = draw_population({{yeast(), 10, 0.0}}, region, false, rng);
  for (const Instance& i : pop) EXPECT_DOUBLE_EQ(i.spec.radius, yeast().radius);
}

TEST(Population, ToBodiesCarriesDepPrefactor) {
  Rng rng(104);
  const physics::Medium m = physics::dep_buffer();
  const Aabb region{{0, 0, 0}, {1e-3, 1e-3, 1e-4}};
  const auto pop = draw_population({{viable_lymphocyte(), 5, 0.05}}, region, true, rng);
  const auto bodies = to_bodies(pop, m, 100e3);
  ASSERT_EQ(bodies.size(), pop.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(bodies[i].id, pop[i].id);
    EXPECT_EQ(bodies[i].position, pop[i].position);
    EXPECT_LT(bodies[i].dep_prefactor, 0.0);  // nDEP at 100 kHz
    EXPECT_DOUBLE_EQ(bodies[i].radius, pop[i].spec.radius);
  }
}

TEST(Population, EmptyRegionThrows) {
  Rng rng(105);
  const Aabb empty{{0, 0, 0}, {0, 0, 0}};
  EXPECT_THROW(draw_population({{yeast(), 1, 0.0}}, empty, false, rng), PreconditionError);
}

}  // namespace
}  // namespace biochip::cell
