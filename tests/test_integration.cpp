// Cross-module integration tests: full paper-claim scenarios wired through
// the public API, mirroring what the examples and benches do.

#include <gtest/gtest.h>

#include <cmath>

#include "cad/benchmarks.hpp"
#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/units.hpp"
#include "core/platform.hpp"
#include "flow/montecarlo.hpp"
#include "fluidic/fabrication.hpp"
#include "fluidic/packaging.hpp"
#include "physics/dep.hpp"
#include "physics/levitation.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/scan.hpp"

namespace biochip {
namespace {

using namespace biochip::units;

// C1: the full-scale device hosts a levitated cell in every lattice cage.
TEST(Integration, ClaimC1_PaperScaleDeviceLevitatesCells) {
  const chip::BiochipDevice dev = chip::paper_device();
  ASSERT_GT(dev.array().electrode_count(), 100000u);
  ASSERT_NEAR(dev.chamber_volume() * 1e9, 4.1, 0.3);  // µl
  ASSERT_GT(dev.cage_capacity(2), 20000u);

  const field::HarmonicCage cage = dev.calibrate_cage(5, 6);
  const physics::Medium medium = physics::dep_buffer();
  const cell::ParticleSpec cell = cell::viable_lymphocyte();
  const double prefactor = cell.dep_prefactor(medium, dev.config().drive_frequency);
  ASSERT_LT(prefactor, 0.0);
  const physics::LevitationResult lev =
      physics::levitation_equilibrium(cage, prefactor, medium, cell.radius, cell.density);
  EXPECT_TRUE(lev.stable);
  EXPECT_GT(lev.height, 10.0_um);
}

// C2: on the same floorplan, an older node out-pulls a newer one.
TEST(Integration, ClaimC2_OlderNodeYieldsStrongerTraps) {
  const chip::CmosNode old_node = chip::node_by_name("0.35um");
  const chip::CmosNode new_node = chip::node_by_name("0.13um");
  const chip::BiochipDevice old_dev(chip::paper_config_on_node(old_node));
  const chip::BiochipDevice new_dev(chip::paper_config_on_node(new_node));
  const field::HarmonicCage old_cage = old_dev.calibrate_cage(5, 6);
  const field::HarmonicCage new_cage = new_dev.calibrate_cage(5, 6);

  const physics::Medium medium = physics::dep_buffer();
  const cell::ParticleSpec cell = cell::viable_lymphocyte();
  const double pref = cell.dep_prefactor(medium, 100.0_kHz);
  const double v_old =
      physics::max_tow_speed(old_cage, pref, 30.0_um, medium, cell.radius);
  const double v_new =
      physics::max_tow_speed(new_cage, pref, 30.0_um, medium, cell.radius);
  // (3.3/1.2)² ≈ 7.6× stronger actuation on the older node.
  EXPECT_GT(v_old, 5.0 * v_new);
  // Both nodes fit the pixel easily — lithography is not the constraint.
  EXPECT_TRUE(old_dev.pixel_fits());
  EXPECT_TRUE(new_dev.pixel_fits());
}

// C3: electronics (program + scan) fit thousands of times into one
// cell-transit interval.
TEST(Integration, ClaimC3_ElectronicsVsMassTransfer) {
  const chip::BiochipDevice dev = chip::paper_device();
  const chip::ProgrammingModel pm = dev.config().programming;
  const sensor::ScanTiming scan;
  for (double speed : {10e-6, 100e-6}) {
    const double transit = chip::pitch_transit_time(dev.array().pitch(), speed);
    EXPECT_GT(transit / pm.full_program_time(dev.array()), 50.0);
    EXPECT_GT(transit / scan.frame_time(dev.array()), 10.0);
  }
}

// C4: averaging within the transit budget lifts a marginal cell above the
// detection threshold.
TEST(Integration, ClaimC4_AveragingBuysDetection) {
  const chip::BiochipDevice dev = chip::paper_device();
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  const sensor::ScanTiming scan;

  const double r = 2.5e-6, z = 2.6e-6, temp = 298.15;
  const double snr1 = px.single_frame_snr(r, z, temp);
  ASSERT_LT(snr1, 5.0);  // marginal single-frame
  const std::size_t budget = scan.max_frames_within_transit(dev.array(), 50e-6);
  ASSERT_GE(budget, 4u);
  const std::size_t needed = sensor::frames_for_snr(px, r, z, temp, 5.0);
  EXPECT_LE(needed, budget * 40);  // reachable while the cell crawls a few pitches
  EXPECT_GT(px.averaged_snr(r, z, temp, needed), 5.0 - 1e-9);
}

// C5: each habitat picks its own flow.
TEST(Integration, ClaimC5_FlowsWinInTheirHabitats) {
  const flow::FlowComparison cmos = flow::compare_flows(flow::cmos_flow_parameters(), 800, 3);
  const flow::FlowComparison fluid =
      flow::compare_flows(flow::fluidic_flow_parameters(), 800, 5);
  EXPECT_EQ(cmos.faster, flow::FlowKind::kSimulateFirst);
  EXPECT_EQ(fluid.faster, flow::FlowKind::kFabricateFirst);
}

// C6 + Fig. 3: the dry-film package assembles the paper's chamber and the
// process plan matches the published economics.
TEST(Integration, ClaimC6_DryFilmPackageOnCmosDie) {
  fluidic::PackageSpec spec;
  spec.die_width = 8.0_mm;
  spec.die_height = 8.0_mm;
  spec.active_width = 6.4_mm;
  spec.active_height = 6.4_mm;
  spec.resist_thickness = 100.0_um;
  const fluidic::AssembledDevice assembled =
      fluidic::assemble(spec, fluidic::AssemblyYield{});
  ASSERT_TRUE(assembled.feasible);

  fluidic::FluidicMask mask("paper_chamber");
  mask.add_rect("chamber", fluidic::FeatureKind::kChamber,
                {{0.8_mm, 0.8_mm}, {7.2_mm, 7.2_mm}}, 0);
  mask.add_port("inlet", {0.4_mm, 4.0_mm}, 600.0_um, 0);
  const fluidic::FabricationReport report = fluidic::plan_fabrication(
      mask, fluidic::dry_film_resist(), 20, spec.resist_thickness, /*on_cmos_die=*/true);
  EXPECT_TRUE(report.feasible);
  EXPECT_LE(report.turnaround, 3.0_day);
  // Masks are "few euros": NRE is dominated by the reusable setup.
  EXPECT_LT(report.nre_cost - fluidic::dry_film_resist().setup_cost, 20.0_eur);
}

// Platform-level single-cell workflow: load -> image -> trap -> move -> verify.
TEST(Integration, SingleCellWorkflowEndToEnd) {
  core::PlatformConfig cfg = core::PlatformConfig::paper_defaults();
  cfg.device.cols = 48;
  cfg.device.rows = 48;
  cfg.seed = 2024;
  core::LabOnChipPlatform lab(cfg);
  lab.load_sample({{cell::viable_lymphocyte(), 4, 0.05}});

  // Image with enough averaging for clean detection.
  const auto detections = lab.detect_cells(64);
  EXPECT_GE(detections.size(), 3u);

  // Trap every cell and park them on a 4-separated lattice row.
  int moved = 0;
  int lane = 4;
  for (const cell::Instance& inst : lab.sample()) {
    const auto cage = lab.trap_cell(inst.id);
    if (!cage) continue;
    const GridCoord dest{lane, 24};
    lane += 4;
    const core::MoveResult mv = lab.move_cell(*cage, dest);
    if (mv.success) ++moved;
  }
  EXPECT_GE(moved, 2);
}

// CAD + platform: an assay's transport clock is the cage speed, and the
// paper-scale array synthesizes the whole benchmark suite.
TEST(Integration, AssaySynthesisOnPaperArray) {
  core::PlatformConfig cfg = core::PlatformConfig::paper_defaults();
  cfg.device.cols = 128;  // quarter array keeps the test fast
  cfg.device.rows = 128;
  core::LabOnChipPlatform lab(cfg);
  for (const cad::AssayGraph& assay : cad::benchmark_suite()) {
    const cad::SynthesisResult r = lab.run_assay(assay, cad::ChipResources{6, 0, 4});
    EXPECT_TRUE(r.success) << assay.name();
    EXPECT_GT(r.total_time, r.processing_makespan) << assay.name();
  }
}

// Determinism across the whole stack: identical seeds, identical outcomes.
TEST(Integration, FullStackDeterminism) {
  auto run_once = []() {
    core::PlatformConfig cfg = core::PlatformConfig::paper_defaults();
    cfg.device.cols = 32;
    cfg.device.rows = 32;
    cfg.seed = 555;
    core::LabOnChipPlatform lab(cfg);
    lab.load_sample({{cell::viable_lymphocyte(), 3, 0.05}});
    const auto cage = lab.trap_cell(1);
    if (!cage) return Vec3{};
    const GridCoord from = lab.cages().site(*cage);
    const GridCoord to{from.col < 16 ? from.col + 6 : from.col - 6, from.row};
    lab.move_cell(*cage, to);
    return lab.bodies()[1].position;
  };
  const Vec3 a = run_once();
  const Vec3 b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace biochip
