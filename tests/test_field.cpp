// Tests for the quasi-electrostatic field solver: analytic reference cases,
// multilevel acceleration, boundary construction, phasor solutions,
// superposition cache, and cage calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "field/analytic.hpp"
#include "field/basis_cache.hpp"
#include "field/boundary.hpp"
#include "field/phasor.hpp"
#include "field/solver.hpp"
#include "field/stencil_kernel.hpp"

namespace biochip::field {
namespace {

using namespace biochip::units;

// Fix both z-planes to constants: the exact solution is linear in z.
DirichletBc plate_bc(const Grid3& g, double v_bottom, double v_top) {
  DirichletBc bc = DirichletBc::all_free(g);
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i) {
      bc.fixed[g.index(i, j, 0)] = 1;
      bc.value[g.index(i, j, 0)] = v_bottom;
      bc.fixed[g.index(i, j, g.nz() - 1)] = 1;
      bc.value[g.index(i, j, g.nz() - 1)] = v_top;
    }
  return bc;
}

TEST(Solver, ParallelPlatesGiveLinearPotential) {
  Grid3 phi(9, 9, 17, 1e-6);
  const DirichletBc bc = plate_bc(phi, 0.0, 3.3);
  SolverOptions opts;
  opts.tolerance = 1e-9;
  const SolveStats stats = solve_laplace(phi, bc, opts);
  EXPECT_TRUE(stats.converged);
  const double gap = 16.0 * phi.spacing();
  for (std::size_t k = 0; k < phi.nz(); ++k) {
    const double z = static_cast<double>(k) * phi.spacing();
    const double expect = parallel_plate_potential(0.0, 3.3, gap, z);
    EXPECT_NEAR(phi.at(4, 4, k), expect, 1e-5) << "k=" << k;
  }
}

TEST(Solver, MultilevelMatchesPlainSor) {
  Grid3 a(17, 17, 17, 1e-6), b(17, 17, 17, 1e-6);
  DirichletBc bc = plate_bc(a, -1.0, 2.0);
  // Pin one bottom node differently to break the trivial symmetry.
  bc.value[a.index(8, 8, 0)] = 1.0;
  SolverOptions plain;
  plain.multilevel = false;
  plain.tolerance = 1e-9;
  SolverOptions multi;
  multi.multilevel = true;
  multi.tolerance = 1e-9;
  const SolveStats sa = solve_laplace(a, bc, plain);
  const SolveStats sb = solve_laplace(b, bc, multi);
  EXPECT_TRUE(sa.converged);
  EXPECT_TRUE(sb.converged);
  for (std::size_t n = 0; n < a.size(); ++n)
    EXPECT_NEAR(a.data()[n], b.data()[n], 1e-5);
  // The cascade should not be slower on the fine grid.
  EXPECT_LE(sb.sweeps, sa.sweeps);
}

TEST(Solver, ResidualDropsBelowTolerance) {
  Grid3 phi(17, 17, 9, 1e-6);
  DirichletBc bc = plate_bc(phi, 0.0, 1.0);
  SolverOptions opts;
  opts.tolerance = 1e-8;
  solve_laplace(phi, bc, opts);
  EXPECT_LT(laplacian_residual(phi, bc), 1e-6);
}

TEST(Solver, ParallelSweepsMatchSerialReference) {
  // Red-black coloring makes same-color nodes independent, so the
  // plane-parallel checked-free sweep must converge to the same residual as
  // the serial reference on an analytic boundary-value problem — and in
  // fact reproduce the serial iterates exactly, for any thread count.
  // Non-cubic grid + an asymmetric pin exercise the edge/mirror paths.
  Grid3 serial(33, 17, 25, 1e-6), parallel(33, 17, 25, 1e-6);
  DirichletBc bc = plate_bc(serial, -1.5, 3.3);
  bc.value[serial.index(5, 11, 0)] = 2.0;
  SolverOptions opts;
  opts.multilevel = false;
  opts.tolerance = 1e-9;
  opts.threads = 1;
  const SolveStats ss = solve_laplace(serial, bc, opts);
  opts.threads = 4;
  const SolveStats sp = solve_laplace(parallel, bc, opts);
  EXPECT_TRUE(ss.converged);
  EXPECT_TRUE(sp.converged);
  EXPECT_EQ(ss.sweeps, sp.sweeps);
  EXPECT_LT(laplacian_residual(parallel, bc), 1e-7);
  EXPECT_EQ(laplacian_residual(parallel, bc), laplacian_residual(serial, bc));
  for (std::size_t n = 0; n < serial.size(); ++n)
    ASSERT_EQ(serial.data()[n], parallel.data()[n]) << "node " << n;
}

TEST(Solver, AutoThreadsAndMultilevelAgreeWithSerial) {
  // The auto-threaded (threads = 0) multilevel cascade must reproduce the
  // serial cascade and the analytic plate solution.
  Grid3 serial(17, 17, 17, 1e-6), parallel(17, 17, 17, 1e-6);
  const DirichletBc bc = plate_bc(serial, 0.0, 1.0);
  SolverOptions opts;
  opts.tolerance = 1e-9;
  opts.threads = 1;
  solve_laplace(serial, bc, opts);
  opts.threads = 0;  // one lane per hardware thread
  solve_laplace(parallel, bc, opts);
  const double gap = 16.0 * parallel.spacing();
  for (std::size_t k = 0; k < parallel.nz(); ++k)
    EXPECT_NEAR(parallel.at(8, 8, k),
                parallel_plate_potential(0.0, 1.0, gap,
                                         static_cast<double>(k) * parallel.spacing()),
                1e-5);
  for (std::size_t n = 0; n < serial.size(); ++n)
    ASSERT_EQ(serial.data()[n], parallel.data()[n]) << "node " << n;
}

TEST(Solver, MismatchedBcSizeThrows) {
  Grid3 phi(5, 5, 5, 1e-6);
  DirichletBc bc;  // wrong (empty) sizes
  EXPECT_THROW(solve_laplace(phi, bc), PreconditionError);
}

TEST(Solver, OptimalOmegaIncreasesWithGridSize) {
  EXPECT_GT(optimal_omega(64), optimal_omega(16));
  EXPECT_LT(optimal_omega(1024), 2.0);
  EXPECT_GE(optimal_omega(8), 1.0);
}

TEST(Solver, SolutionObeysMaximumPrinciple) {
  // Laplace solutions attain extrema on the boundary: interior must stay
  // within the prescribed range.
  Grid3 phi(17, 17, 9, 1e-6);
  DirichletBc bc = plate_bc(phi, -2.0, 5.0);
  SolverOptions opts;
  opts.tolerance = 1e-8;
  solve_laplace(phi, bc, opts);
  EXPECT_GE(phi.min(), -2.0 - 1e-6);
  EXPECT_LE(phi.max(), 5.0 + 1e-6);
}

TEST(Solver, FieldDecaysAboveStripeArray) {
  // ±V stripes of period 2·pitch: the dominant harmonic of the potential
  // decays like exp(-z/(λ/2π)). Sample low enough that the field is well
  // above the solver tolerance floor.
  const double pitch = 20.0_um;
  ChamberDomain domain{8.0 * pitch, 4.0 * pitch, 4.0 * pitch, pitch / 8.0};
  std::vector<ElectrodePatch> patches;
  for (int s = 0; s < 8; ++s) {
    const double x0 = s * pitch;
    patches.push_back({{{x0, 0.0}, {x0 + pitch, 4.0 * pitch}},
                       {(s % 2 == 0) ? 1.0 : -1.0, 0.0}});
  }
  SolverOptions opts;
  opts.tolerance = 1e-8;
  const PhasorSolution sol = solve_phasor(domain, patches, std::nullopt, opts);
  // Above the center of stripe 4, mid-domain in y.
  const double x = 4.5 * pitch, y = 2.0 * pitch;
  const double expected_decay = periodic_decay_length(2.0 * pitch);
  const double z1 = 10.0_um, z2 = 20.0_um;
  const double w1 = sol.erms2_at({x, y, z1});
  const double w2 = sol.erms2_at({x, y, z2});
  ASSERT_GT(w1, 0.0);
  ASSERT_GT(w2, 0.0);
  ASSERT_GT(w1, w2);
  // W = |E|² decays at twice the potential rate: ratio ≈ exp(-2Δz/λ_d).
  const double measured = std::log(w1 / w2) / (2.0 * (z2 - z1));
  EXPECT_NEAR(1.0 / measured, expected_decay, expected_decay * 0.30);
}

// ------------------------------------------------------------- multigrid ----

// The production-shaped cage workload lives in the library
// (cage_reference_bc, field/boundary.hpp) so the bench and these tests
// exercise the identical boundary condition.
DirichletBc cage_bc(const Grid3& g, double v) { return cage_reference_bc(g, v); }

// All-face homogeneous Dirichlet box with f = -3π² Π sin(πx_i): the exact
// solution is Π sin(πx_i).
struct SinePoisson {
  Grid3 f;
  DirichletBc bc;
  explicit SinePoisson(std::size_t n) : f(n, n, n, 1.0 / static_cast<double>(n - 1)) {
    bc = DirichletBc::all_free(f);
    const double h = f.spacing();
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) {
          if (i == 0 || j == 0 || k == 0 || i == n - 1 || j == n - 1 || k == n - 1)
            bc.fixed[f.index(i, j, k)] = 1;
          f.at(i, j, k) = -3.0 * constants::pi * constants::pi * exact(i, j, k, h);
        }
  }
  static double exact(std::size_t i, std::size_t j, std::size_t k, double h) {
    return std::sin(constants::pi * static_cast<double>(i) * h) *
           std::sin(constants::pi * static_cast<double>(j) * h) *
           std::sin(constants::pi * static_cast<double>(k) * h);
  }
};

TEST(Multigrid, ContractionFactorRoughlyGridIndependent) {
  // Per-cycle residual contraction, measured between cycles 2 and 4 so the
  // initial transient is excluded. O(N) multigrid means the factor must not
  // degrade as the grid is refined — the defining property the nested
  // cascade lacks.
  const auto contraction = [](std::size_t n) {
    SinePoisson prob(n);
    const auto residual_after = [&](std::size_t cycles) {
      Grid3 phi(n, n, n, prob.f.spacing());
      SolverOptions o;
      o.cycle = CycleType::vcycle;
      o.cycle_tolerance = 1e-300;  // never satisfied: run exactly max_cycles
      o.max_cycles = cycles;
      o.max_sweeps = 0;  // no SOR fallback work after the cycles
      return solve_poisson(phi, prob.f, prob.bc, o).final_residual;
    };
    return std::sqrt(residual_after(4) / residual_after(2));
  };
  const double rho33 = contraction(33);
  const double rho65 = contraction(65);
  EXPECT_LT(rho33, 0.25);
  EXPECT_LT(rho65, 0.25);
  EXPECT_NEAR(rho65, rho33, 0.10);
}

TEST(Multigrid, VcycleCascadeFmgAndSorAgreeOnCageBc) {
  Grid3 a(33, 33, 33, 1e-6), b(33, 33, 33, 1e-6), c(33, 33, 33, 1e-6),
      d(33, 33, 33, 1e-6);
  const DirichletBc bc = cage_bc(a, 3.3);
  SolverOptions plain;
  plain.multilevel = false;
  plain.tolerance = 1e-8;
  SolverOptions cascade;
  cascade.cycle = CycleType::cascade;
  cascade.tolerance = 1e-8;
  SolverOptions vcycle;
  vcycle.cycle = CycleType::vcycle;
  vcycle.tolerance = 1e-8;
  SolverOptions fmg;
  fmg.cycle = CycleType::fmg;
  fmg.tolerance = 1e-8;
  EXPECT_TRUE(solve_laplace(a, bc, plain).converged);
  EXPECT_TRUE(solve_laplace(b, bc, cascade).converged);
  EXPECT_TRUE(solve_laplace(c, bc, vcycle).converged);
  EXPECT_TRUE(solve_laplace(d, bc, fmg).converged);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_NEAR(a.data()[n], b.data()[n], 1e-5) << "node " << n;
    EXPECT_NEAR(a.data()[n], c.data()[n], 1e-5) << "node " << n;
    EXPECT_NEAR(a.data()[n], d.data()[n], 1e-5) << "node " << n;
  }
}

TEST(Multigrid, PoissonRecoversAnalyticSolution) {
  // Both multilevel Poisson paths — the V-cycle and FMG (which restricts
  // the load down the chain for its nested-iteration start) — must recover
  // the analytic solution to the discretization floor.
  const std::size_t n = 33;
  SinePoisson prob(n);
  const double h = prob.f.spacing();
  for (const CycleType ct : {CycleType::vcycle, CycleType::fmg}) {
    Grid3 phi(n, n, n, h);
    SolverOptions o;
    o.cycle = ct;
    o.tolerance = 1e-9;
    const SolveStats s = solve_poisson(phi, prob.f, prob.bc, o);
    EXPECT_TRUE(s.converged);
    EXPECT_LE(s.cycles, 15u);
    double err = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i)
          err = std::max(err,
                         std::fabs(phi.at(i, j, k) - SinePoisson::exact(i, j, k, h)));
    // Second-order discretization: the error floor is O(h²).
    EXPECT_LT(err, 2.0 * h * h);
    EXPECT_GT(err, 0.0);
  }
}

TEST(Multigrid, PoissonZeroRhsMatchesLaplaceBitwise) {
  const std::size_t n = 17;
  Grid3 a(n, n, n, 1e-6), b(n, n, n, 1e-6);
  Grid3 zero(n, n, n, 1e-6);
  DirichletBc bc = cage_bc(a, 2.2);
  const SolveStats sl = solve_laplace(a, bc);
  const SolveStats sp = solve_poisson(b, zero, bc);
  EXPECT_EQ(sl.cycles, sp.cycles);
  for (std::size_t m = 0; m < a.size(); ++m)
    ASSERT_EQ(a.data()[m], b.data()[m]) << "node " << m;
}

TEST(Multigrid, SimdAndScalarPathsBitIdentical) {
  // The AVX2/AVX-512 row kernels use the same IEEE operations in the same
  // order as the scalar loop (no FMA contraction), so the full V-cycle must
  // reproduce the scalar solve bit for bit on every dispatch path.
  Grid3 simd(33, 33, 33, 1e-6), scalar(33, 33, 33, 1e-6);
  DirichletBc bc = cage_bc(simd, 3.3);
  bc.value[simd.index(16, 16, 0)] = 1.1;  // break symmetry
  SolverOptions o;
  o.tolerance = 1e-8;
  stencil::force_scalar(false);
  solve_laplace(simd, bc, o);
  stencil::force_scalar(true);
  solve_laplace(scalar, bc, o);
  stencil::force_scalar(false);
  EXPECT_EQ(laplacian_residual(simd, bc), laplacian_residual(scalar, bc));
  for (std::size_t n = 0; n < simd.size(); ++n)
    ASSERT_EQ(simd.data()[n], scalar.data()[n]) << "node " << n;
}

TEST(Multigrid, WorkspaceReuseBitIdentical) {
  // A shared hierarchy (grids + restricted masks prepared once) must not
  // change any result: solves through a reused workspace reproduce solves
  // through fresh ones exactly, including after the drive values change.
  const std::size_t n = 17;
  const DirichletBc bc1 = cage_bc(Grid3(n, n, n, 1e-6), 3.3);
  DirichletBc bc2 = bc1;  // same mask, different values
  for (double& v : bc2.value) v *= -0.5;
  MultigridWorkspace shared;
  Grid3 a1(n, n, n, 1e-6), a2(n, n, n, 1e-6);
  solve_laplace(a1, bc1, {}, &shared);
  solve_laplace(a2, bc2, {}, &shared);  // reuses grids and masks
  Grid3 f1(n, n, n, 1e-6), f2(n, n, n, 1e-6);
  solve_laplace(f1, bc1);
  solve_laplace(f2, bc2);
  for (std::size_t m = 0; m < a1.size(); ++m) {
    ASSERT_EQ(a1.data()[m], f1.data()[m]) << "node " << m;
    ASSERT_EQ(a2.data()[m], f2.data()[m]) << "node " << m;
  }
}

TEST(Multigrid, ThinGapContractionGridIndependentWithoutFallback) {
  // The paper's calibration-patch geometry: 1-node electrode gaps that mask
  // injection erases on the first coarse level. With Galerkin (RAP) coarse
  // operators the V-cycle must converge WITHOUT any fallback at a
  // grid-independent contraction factor ≤ 0.15 (the injected-mask operator
  // stalled near the smoothing-only rate here and bailed to the cascade).
  const auto contraction = [](std::size_t n) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_thin_gap_bc(g, 3.3, 1);
    const auto residual_after = [&](std::size_t cycles) {
      Grid3 phi(n, n, n, 1e-6);
      SolverOptions o;
      o.cycle = CycleType::vcycle;
      o.cycle_tolerance = 1e-300;  // never satisfied: run exactly max_cycles
      o.max_cycles = cycles;
      o.max_sweeps = 0;  // no fallback budget
      return solve_laplace(phi, bc, o).final_residual;
    };
    return std::sqrt(residual_after(4) / residual_after(2));
  };
  const double rho33 = contraction(33);
  const double rho65 = contraction(65);
  EXPECT_LT(rho33, 0.15);
  EXPECT_LT(rho65, 0.15);
  EXPECT_NEAR(rho65, rho33, 0.05);
  // Full solve: converges within the cycle budget, and every fine smoothing
  // sweep is a cycle sweep (pre+post per cycle) — no fallback tail ran.
  Grid3 phi(33, 33, 33, 1e-6);
  const DirichletBc bc = cage_thin_gap_bc(phi, 3.3, 1);
  SolverOptions o;
  o.cycle = CycleType::vcycle;
  o.tolerance = 1e-8;
  const SolveStats s = solve_laplace(phi, bc, o);
  EXPECT_TRUE(s.converged);
  EXPECT_LE(s.cycles, 10u);
  EXPECT_EQ(s.sweeps, s.cycles * (o.pre_smooth + o.post_smooth));
}

TEST(Multigrid, FourStrategiesAgreeOnThinGapBc) {
  // Three-way agreement extended to FMG, on the hostile thin-gap geometry.
  const std::size_t n = 33;
  Grid3 a(n, n, n, 1e-6), b(n, n, n, 1e-6), c(n, n, n, 1e-6), d(n, n, n, 1e-6);
  const DirichletBc bc = cage_thin_gap_bc(a, 3.3, 1);
  SolverOptions plain;
  plain.multilevel = false;
  plain.tolerance = 1e-8;
  SolverOptions cascade;
  cascade.cycle = CycleType::cascade;
  cascade.tolerance = 1e-8;
  SolverOptions vcycle;
  vcycle.cycle = CycleType::vcycle;
  vcycle.tolerance = 1e-8;
  SolverOptions fmg;
  fmg.cycle = CycleType::fmg;
  fmg.tolerance = 1e-8;
  EXPECT_TRUE(solve_laplace(a, bc, plain).converged);
  EXPECT_TRUE(solve_laplace(b, bc, cascade).converged);
  EXPECT_TRUE(solve_laplace(c, bc, vcycle).converged);
  EXPECT_TRUE(solve_laplace(d, bc, fmg).converged);
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_NEAR(a.data()[m], b.data()[m], 1e-5) << "node " << m;
    EXPECT_NEAR(a.data()[m], c.data()[m], 1e-5) << "node " << m;
    EXPECT_NEAR(a.data()[m], d.data()[m], 1e-5) << "node " << m;
  }
}

TEST(Multigrid, FmgBeatsCascadeAndVcycleOnFineEquivalentWork) {
  // The FMG acceptance property: at the residual the cascade achieves, the
  // nested-iteration start plus per-level V-cycles costs less than both the
  // cascade and the plain V-cycle, on the thin-gap geometry.
  const std::size_t n = 33;
  Grid3 a(n, n, n, 1e-6), b(n, n, n, 1e-6), c(n, n, n, 1e-6);
  const DirichletBc bc = cage_thin_gap_bc(a, 3.3, 1);
  SolverOptions cascade;
  cascade.cycle = CycleType::cascade;
  const SolveStats sa = solve_laplace(a, bc, cascade);
  ASSERT_TRUE(sa.converged);
  const double match = laplacian_residual(a, bc);
  SolverOptions vcycle;
  vcycle.cycle = CycleType::vcycle;
  vcycle.cycle_tolerance = match;
  const SolveStats sb = solve_laplace(b, bc, vcycle);
  ASSERT_TRUE(sb.converged);
  SolverOptions fmg;
  fmg.cycle = CycleType::fmg;
  fmg.cycle_tolerance = match;
  const SolveStats sc = solve_laplace(c, bc, fmg);
  ASSERT_TRUE(sc.converged);
  EXPECT_LE(laplacian_residual(c, bc), match);
  EXPECT_LT(sc.fine_equiv_sweeps, sb.fine_equiv_sweeps);
  EXPECT_LT(sc.fine_equiv_sweeps, sa.fine_equiv_sweeps);
}

TEST(Multigrid, VarCoefficientKernelsBitIdenticalAcrossPaths) {
  // The thin-gap hierarchy smooths every coarse level with the 27-point
  // variable-coefficient kernels; SIMD vs scalar and serial vs threaded
  // must stay bit-identical there exactly as on the constant kernels.
  const std::size_t n = 33;
  Grid3 simd(n, n, n, 1e-6), scalar(n, n, n, 1e-6), threaded(n, n, n, 1e-6);
  DirichletBc bc = cage_thin_gap_bc(simd, 3.3, 1);
  bc.value[simd.index(16, 16, 0)] = 1.1;  // break symmetry
  for (const CycleType ct : {CycleType::vcycle, CycleType::fmg}) {
    SolverOptions o;
    o.cycle = ct;
    o.tolerance = 1e-8;
    stencil::force_scalar(false);
    solve_laplace(simd, bc, o);
    stencil::force_scalar(true);
    solve_laplace(scalar, bc, o);
    stencil::force_scalar(false);
    o.threads = 4;
    solve_laplace(threaded, bc, o);
    for (std::size_t m = 0; m < simd.size(); ++m) {
      ASSERT_EQ(simd.data()[m], scalar.data()[m]) << "node " << m;
      ASSERT_EQ(simd.data()[m], threaded.data()[m]) << "node " << m;
    }
  }
}

TEST(Multigrid, BroadcastSmootherBitIdenticalToVarOnUniformRows) {
  // The constant-stencil broadcast fast path (smooth_plane_var_bcast) must
  // reproduce smooth_plane_var bit for bit: the flagged rows' coefficients
  // are literal copies of the level's uniform interior stencil, so only the
  // memory traffic may differ — never a bit of the result.
  const std::size_t n = 33;
  Grid3 g(n, n, n, 1e-6);
  const DirichletBc bc = cage_bc(g, 3.3);
  MultigridWorkspace ws;
  ws.prepare(g, bc);
  ASSERT_FALSE(ws.levels().empty());

  bool any_uniform_row = false;
  for (MultigridWorkspace::Level& lev : ws.levels()) {
    const stencil::Dims dims{lev.e.nx(), lev.e.ny(), lev.e.nz()};
    std::size_t flagged = 0;
    for (const std::uint8_t u : lev.row_uniform) flagged += u;
    if (flagged > 0) any_uniform_row = true;

    // Deterministic non-trivial iterate and RHS.
    Grid3 a = lev.e;
    std::vector<double> rhs(lev.e.size());
    for (std::size_t m = 0; m < a.size(); ++m) {
      a.data()[m] = lev.fixed[m] ? 0.0 : 1e-3 * static_cast<double>(m % 89) - 0.04;
      rhs[m] = 2e-4 * static_cast<double>((m * 7) % 97) - 0.01;
    }
    Grid3 b = a;
    for (const bool scalar : {false, true}) {
      stencil::force_scalar(scalar);
      for (int color = 0; color < 2; ++color)
        for (std::size_t k = 0; k < dims.nz; ++k) {
          const double ua = stencil::smooth_plane_var(
              a.data().data(), lev.fixed.data(), lev.stencil.data(),
              lev.inv_diag.data(), rhs.data(), dims, 1.15, color, k);
          const double ub = stencil::smooth_plane_var_bcast(
              b.data().data(), lev.fixed.data(), lev.stencil.data(),
              lev.row_uniform.data(), lev.uniform_stencil.data(),
              lev.uniform_inv_diag, lev.inv_diag.data(), rhs.data(), dims, 1.15,
              color, k);
          ASSERT_EQ(ua, ub) << "color " << color << " plane " << k;
        }
      for (std::size_t m = 0; m < a.size(); ++m)
        ASSERT_EQ(a.data()[m], b.data()[m]) << "node " << m << " scalar=" << scalar;
    }
    stencil::force_scalar(false);
  }
  // The cage BC's coarse interior is translation-invariant away from the
  // electrodes: the fast path must actually trigger somewhere.
  EXPECT_TRUE(any_uniform_row);
}

TEST(Solver, AnisotropicAutoOmegaDoesNotRegress) {
  // Auto-omega derives the model-problem ω from per-axis dimensions; on an
  // elongated chamber grid the historical longest-side formula over-relaxes
  // the short axis. The per-axis choice must not need more sweeps.
  EXPECT_NEAR(optimal_omega(33, 33, 33), optimal_omega(33), 1e-12);
  EXPECT_LT(optimal_omega(65, 65, 9), optimal_omega(65));
  Grid3 a(65, 65, 9, 1e-6), b(65, 65, 9, 1e-6);
  const DirichletBc bc = plate_bc(a, 0.0, 3.3);
  SolverOptions auto_omega;
  auto_omega.multilevel = false;
  auto_omega.tolerance = 1e-8;
  SolverOptions longest;
  longest.multilevel = false;
  longest.tolerance = 1e-8;
  longest.omega = optimal_omega(65);  // the historical longest-side choice
  const SolveStats sa = solve_laplace(a, bc, auto_omega);
  const SolveStats sl = solve_laplace(b, bc, longest);
  EXPECT_TRUE(sa.converged);
  EXPECT_TRUE(sl.converged);
  EXPECT_LE(sa.sweeps, sl.sweeps);
}

TEST(Multigrid, VcycleBeatsCascadeOnFineEquivalentWork) {
  // The headline property: at matched achieved residual on the cage BC, the
  // V-cycle spends a small fraction of the cascade's fine-grid-equivalent
  // sweeps (the bench records the exact ratio; here we assert a safe 2x).
  Grid3 a(33, 33, 33, 1e-6), b(33, 33, 33, 1e-6);
  const DirichletBc bc = cage_bc(a, 3.3);
  SolverOptions cascade;
  cascade.cycle = CycleType::cascade;
  const SolveStats sc = solve_laplace(a, bc, cascade);
  ASSERT_TRUE(sc.converged);
  SolverOptions vcycle;
  vcycle.cycle = CycleType::vcycle;
  vcycle.cycle_tolerance = laplacian_residual(a, bc);  // match the cascade
  const SolveStats sv = solve_laplace(b, bc, vcycle);
  ASSERT_TRUE(sv.converged);
  EXPECT_LE(laplacian_residual(b, bc), laplacian_residual(a, bc));
  EXPECT_LT(sv.fine_equiv_sweeps * 2.0, sc.fine_equiv_sweeps);
}

// -------------------------------------------------------------- boundary ----

TEST(Boundary, NodesUnderElectrodeArePinned) {
  ChamberDomain domain{100.0_um, 100.0_um, 50.0_um, 10.0_um};
  std::vector<ElectrodePatch> patches{
      {{{20.0_um, 20.0_um}, {60.0_um, 60.0_um}}, {2.0, 1.0}}};
  const PhasorBc bc = build_boundary(domain, patches, std::nullopt);
  Grid3 probe = domain.make_grid();
  // Node at (40µm, 40µm, 0) lies inside the patch.
  const std::size_t inside = probe.index(4, 4, 0);
  EXPECT_EQ(bc.re.fixed[inside], 1);
  EXPECT_DOUBLE_EQ(bc.re.value[inside], 2.0);
  EXPECT_DOUBLE_EQ(bc.im.value[inside], 1.0);
  // Node at the far corner is free.
  const std::size_t outside = probe.index(9, 9, 0);
  EXPECT_EQ(bc.re.fixed[outside], 0);
}

TEST(Boundary, LidPinsTopPlane) {
  ChamberDomain domain{40.0_um, 40.0_um, 20.0_um, 10.0_um};
  std::vector<ElectrodePatch> patches{{{{0.0, 0.0}, {40.0_um, 40.0_um}}, {1.0, 0.0}}};
  const PhasorBc bc = build_boundary(domain, patches, std::complex<double>{-1.0, 0.0});
  Grid3 probe = domain.make_grid();
  for (std::size_t j = 0; j < probe.ny(); ++j)
    for (std::size_t i = 0; i < probe.nx(); ++i) {
      EXPECT_EQ(bc.re.fixed[probe.index(i, j, probe.nz() - 1)], 1);
      EXPECT_DOUBLE_EQ(bc.re.value[probe.index(i, j, probe.nz() - 1)], -1.0);
    }
}

TEST(Boundary, OverlappingElectrodesRejected) {
  ChamberDomain domain{100.0_um, 100.0_um, 50.0_um, 10.0_um};
  std::vector<ElectrodePatch> patches{
      {{{0.0, 0.0}, {50.0_um, 50.0_um}}, {1.0, 0.0}},
      {{{40.0_um, 40.0_um}, {90.0_um, 90.0_um}}, {-1.0, 0.0}}};
  EXPECT_THROW(build_boundary(domain, patches, std::nullopt), ConfigError);
}

TEST(Boundary, DomainNodeCounts) {
  ChamberDomain domain{100.0_um, 60.0_um, 40.0_um, 20.0_um};
  EXPECT_EQ(domain.nodes_x(), 6u);
  EXPECT_EQ(domain.nodes_y(), 4u);
  EXPECT_EQ(domain.nodes_z(), 3u);
}

// ---------------------------------------------------------------- phasor ----

TEST(Phasor, PureRealDriveHasZeroImaginaryPart) {
  ChamberDomain domain{80.0_um, 80.0_um, 40.0_um, 10.0_um};
  std::vector<ElectrodePatch> patches{
      {{{20.0_um, 20.0_um}, {60.0_um, 60.0_um}}, {1.0, 0.0}}};
  const PhasorSolution sol = solve_phasor(domain, patches, std::complex<double>{0.0, 0.0});
  EXPECT_NEAR(sol.phi_im().max(), 0.0, 1e-12);
  EXPECT_NEAR(sol.phi_im().min(), 0.0, 1e-12);
}

TEST(Phasor, QuadratureDriveSplitsAcrossParts) {
  ChamberDomain domain{80.0_um, 80.0_um, 40.0_um, 10.0_um};
  std::vector<ElectrodePatch> patches{
      {{{20.0_um, 20.0_um}, {60.0_um, 60.0_um}}, {0.0, 1.5}}};  // 90° drive
  const PhasorSolution sol = solve_phasor(domain, patches, std::complex<double>{0.0, 0.0});
  EXPECT_NEAR(sol.phi_re().max(), 0.0, 1e-12);
  EXPECT_GT(sol.phi_im().max(), 1.0);
}

TEST(Phasor, Erms2OfUniformFieldMatchesAnalytic) {
  // Whole bottom at +V, lid at -V: |E| = 2V/gap, E_rms² = |E|²/2.
  ChamberDomain domain{80.0_um, 80.0_um, 40.0_um, 5.0_um};
  std::vector<ElectrodePatch> patches{{{{0.0, 0.0}, {80.0_um, 80.0_um}}, {1.0, 0.0}}};
  SolverOptions opts;
  opts.tolerance = 1e-9;
  const PhasorSolution sol =
      solve_phasor(domain, patches, std::complex<double>{-1.0, 0.0}, opts);
  const double e_mag = 2.0 / 40.0_um;
  const double expect = 0.5 * e_mag * e_mag;
  EXPECT_NEAR(sol.erms2_at({40.0_um, 40.0_um, 20.0_um}), expect, expect * 0.01);
  EXPECT_NEAR(sol.erms_at({40.0_um, 40.0_um, 20.0_um}), e_mag / std::sqrt(2.0),
              e_mag * 0.01);
}

TEST(Phasor, MismatchedQuadratureGridsThrow) {
  Grid3 a(4, 4, 4, 1.0), b(5, 5, 5, 1.0);
  EXPECT_THROW(PhasorSolution(a, b), PreconditionError);
}

// ----------------------------------------------------------- basis cache ----

class BasisCacheTest : public ::testing::Test {
 protected:
  static constexpr double kPitch = 20.0e-6;
  ChamberDomain domain_{3 * kPitch, 3 * kPitch, 2 * kPitch, kPitch / 4.0};
  std::vector<Rect> footprints_ = [] {
    std::vector<Rect> f;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) {
        const double x0 = c * kPitch + 0.1 * kPitch;
        const double y0 = r * kPitch + 0.1 * kPitch;
        f.push_back({{x0, y0}, {x0 + 0.8 * kPitch, y0 + 0.8 * kPitch}});
      }
    return f;
  }();
};

TEST_F(BasisCacheTest, ComposeMatchesDirectSolve) {
  BasisCache cache(domain_, footprints_, /*lid_present=*/true);
  EXPECT_EQ(cache.solves_performed(), 10u);  // 9 electrodes + lid
  std::vector<std::complex<double>> drive(9, {-3.3, 0.0});
  drive[4] = {3.3, 0.0};  // center cage
  const PhasorSolution composed = cache.compose(drive, {3.3, 0.0});
  const PhasorSolution direct = cache.solve_direct(drive, {3.3, 0.0});
  double worst = 0.0;
  for (std::size_t n = 0; n < composed.phi_re().size(); ++n)
    worst = std::max(worst,
                     std::fabs(composed.phi_re().data()[n] - direct.phi_re().data()[n]));
  EXPECT_LT(worst, 5e-4 * 3.3);  // superposition exact up to solver tolerance
}

TEST_F(BasisCacheTest, LinearityInDriveAmplitude) {
  BasisCache cache(domain_, footprints_, true);
  std::vector<std::complex<double>> unit(9, {0.0, 0.0});
  unit[4] = {1.0, 0.0};
  std::vector<std::complex<double>> threex(9, {0.0, 0.0});
  threex[4] = {3.0, 0.0};
  const PhasorSolution a = cache.compose(unit, {0.0, 0.0});
  const PhasorSolution b = cache.compose(threex, {0.0, 0.0});
  // E_rms² scales as amplitude².
  const Vec3 p{1.5 * kPitch, 1.5 * kPitch, kPitch};
  EXPECT_NEAR(b.erms2_at(p), 9.0 * a.erms2_at(p), 9.0 * a.erms2_at(p) * 1e-6 + 1e-12);
}

TEST_F(BasisCacheTest, WrongDriveSizeThrows) {
  BasisCache cache(domain_, footprints_, false);
  std::vector<std::complex<double>> drive(4, {1.0, 0.0});
  EXPECT_THROW(cache.compose(drive), PreconditionError);
}

// -------------------------------------------------------------- analytic ----

TEST(Analytic, HarmonicCageFieldAndGradient) {
  HarmonicCage cage{{0, 0, 10e-6}, 100.0, 4.0e18, 8.0e18};
  EXPECT_DOUBLE_EQ(cage.erms2(cage.center), 100.0);
  const Vec3 p{1e-6, 0, 10e-6};
  EXPECT_NEAR(cage.erms2(p), 100.0 + 0.5 * 4.0e18 * 1e-12, 1e-3);
  const Vec3 g = cage.grad_erms2(p);
  EXPECT_NEAR(g.x, 4.0e18 * 1e-6, 1.0);
  EXPECT_DOUBLE_EQ(g.y, 0.0);
  EXPECT_DOUBLE_EQ(g.z, 0.0);
}

TEST(Analytic, MovedCageKeepsCurvatures) {
  HarmonicCage cage{{0, 0, 0}, 1.0, 2.0, 3.0};
  const HarmonicCage moved = cage.moved_to({5, 6, 7});
  EXPECT_EQ(moved.center, (Vec3{5, 6, 7}));
  EXPECT_DOUBLE_EQ(moved.c_r, 2.0);
  EXPECT_DOUBLE_EQ(moved.c_z, 3.0);
}

TEST(Analytic, CalibrationRecoversSyntheticQuadratic) {
  // Build a grid holding an exact quadratic bowl and calibrate against it.
  Grid3 re(33, 33, 33, 1e-6), im(33, 33, 33, 1e-6);
  // erms2_from_quadratures of a linear potential is constant; instead test
  // calibrate_cage through a hand-made PhasorSolution whose erms2 we control
  // is not possible without a solve, so validate on a synthetic solve:
  // a single in-phase electrode under counter-phase neighbours (as in the
  // device) must produce a closed cage — covered in test_chip. Here check
  // the error paths only.
  PhasorSolution sol(re, im);  // zero field everywhere
  const Aabb box{{5e-6, 5e-6, 5e-6}, {25e-6, 25e-6, 25e-6}};
  EXPECT_THROW(calibrate_cage(sol, box, 2e-6), NumericError);
}

TEST(Analytic, ParallelPlateHelperClamps) {
  EXPECT_DOUBLE_EQ(parallel_plate_potential(0.0, 10.0, 1e-4, 0.5e-4), 5.0);
  EXPECT_DOUBLE_EQ(parallel_plate_potential(0.0, 10.0, 1e-4, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(parallel_plate_potential(0.0, 10.0, 1e-4, 1.0), 10.0);
}

TEST(Analytic, DecayLengthFormula) {
  EXPECT_NEAR(periodic_decay_length(2.0 * constants::pi), 1.0, 1e-12);
  EXPECT_THROW(periodic_decay_length(0.0), PreconditionError);
}

}  // namespace
}  // namespace biochip::field
