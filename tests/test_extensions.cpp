// Tests for the extension modules: parallel multi-cage transport, defect /
// yield modeling, the hydraulic network solver, the two-shell cell model,
// optical frame synthesis, and design centering.

#include <gtest/gtest.h>

#include <cmath>

#include "cell/library.hpp"
#include "chip/defects.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/platform.hpp"
#include "flow/centering.hpp"
#include "fluidic/network.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"

namespace biochip {
namespace {

// ------------------------------------------------------ parallel transport ----

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest() {
    core::PlatformConfig cfg = core::PlatformConfig::paper_defaults();
    cfg.device.cols = 48;
    cfg.device.rows = 48;
    cfg.seed = 1234;
    lab_ = std::make_unique<core::LabOnChipPlatform>(cfg);
    lab_->load_sample({{cell::viable_lymphocyte(), 6, 0.0}});
    // Deterministic starting sites: a row of separated cells.
    for (std::size_t i = 0; i < lab_->bodies().size(); ++i) {
      lab_->bodies()[i].position = {(8.0 + 6.0 * static_cast<double>(i)) * 20e-6,
                                    10.5 * 20e-6, 6e-6};
    }
    for (const auto& inst : lab_->sample()) {
      auto cage = lab_->trap_cell(inst.id);
      if (cage.has_value()) cages_.push_back(*cage);
    }
  }

  void SetUp() override { ASSERT_EQ(cages_.size(), 6u); }
  std::unique_ptr<core::LabOnChipPlatform> lab_;
  std::vector<int> cages_;
};

TEST_F(ParallelTest, ConvoyMovesTogether) {
  // All six cages shift 10 rows north simultaneously.
  std::vector<core::ParallelMoveRequest> reqs;
  for (int id : cages_)
    reqs.push_back({id, {lab_->cages().site(id).col, lab_->cages().site(id).row + 10}});
  const core::ParallelMoveResult result = lab_->move_cells(reqs);
  EXPECT_TRUE(result.planned);
  EXPECT_TRUE(result.success) << result.lost_cage_ids.size() << " lost";
  for (const auto& req : reqs) EXPECT_EQ(lab_->cages().site(req.cage_id), req.destination);
  // Every particle arrived at its trap.
  for (int id : cages_) {
    const int bidx = *lab_->body_in_cage(id);
    const Vec3 trap{(lab_->cages().site(id).col + 0.5) * 20e-6,
                    (lab_->cages().site(id).row + 0.5) * 20e-6,
                    lab_->unit_cage().center.z};
    EXPECT_LT((lab_->bodies()[static_cast<std::size_t>(bidx)].position - trap).norm(),
              25e-6)
        << id;
  }
}

TEST_F(ParallelTest, CrossingPairResolvedAndExecuted) {
  // First and last cage swap columns — paths must weave around the others.
  const GridCoord a = lab_->cages().site(cages_.front());
  const GridCoord b = lab_->cages().site(cages_.back());
  const core::ParallelMoveResult result =
      lab_->move_cells({{cages_.front(), b}, {cages_.back(), a}});
  EXPECT_TRUE(result.planned);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(lab_->cages().site(cages_.front()), b);
  EXPECT_EQ(lab_->cages().site(cages_.back()), a);
}

TEST_F(ParallelTest, ElapsedMatchesStepsTimesPeriod) {
  std::vector<core::ParallelMoveRequest> reqs{
      {cages_[0], {lab_->cages().site(cages_[0]).col, 40}}};
  const core::ParallelMoveResult result = lab_->move_cells(reqs);
  ASSERT_TRUE(result.success);
  EXPECT_NEAR(result.elapsed,
              static_cast<double>(result.steps_executed) * lab_->site_period(), 1e-9);
}

TEST_F(ParallelTest, DestinationOutsideArrayThrows) {
  EXPECT_THROW(lab_->move_cells({{cages_[0], {100, 100}}}), PreconditionError);
}

// ------------------------------------------------------------------ defects ----

TEST(Defects, CleanMapFullyUsable) {
  const chip::ElectrodeArray array(32, 32, 20e-6);
  const chip::DefectMap map(array);
  EXPECT_EQ(map.defect_count(), 0u);
  EXPECT_DOUBLE_EQ(chip::usable_cage_fraction(array, map), 1.0);
}

TEST(Defects, SampleDensityMatchesProbability) {
  const chip::ElectrodeArray array(128, 128, 20e-6);
  Rng rng(5);
  const chip::DefectMap map = chip::sample_defects(array, 0.01, rng);
  const double rate =
      static_cast<double>(map.defect_count()) / static_cast<double>(array.electrode_count());
  EXPECT_NEAR(rate, 0.01, 0.003);
}

TEST(Defects, DefectKillsOnlyNeighborhood) {
  const chip::ElectrodeArray array(32, 32, 20e-6);
  chip::DefectMap map(array);
  map.set_state({16, 16}, chip::PixelState::kDead);
  EXPECT_FALSE(chip::site_usable(array, map, {16, 16}));
  EXPECT_FALSE(chip::site_usable(array, map, {17, 16}));  // ring touches defect
  EXPECT_TRUE(chip::site_usable(array, map, {18, 16}));
  EXPECT_TRUE(chip::site_usable(array, map, {16, 20}));
}

TEST(Defects, EdgeSitesNeedFullRing) {
  const chip::ElectrodeArray array(8, 8, 20e-6);
  const chip::DefectMap map(array);
  EXPECT_FALSE(chip::site_usable(array, map, {0, 0}));  // no closed wall at edge
  EXPECT_TRUE(chip::site_usable(array, map, {1, 1}));
}

TEST(Defects, GracefulDegradationBeatsAllGoodYield) {
  // The architectural point: at a defect rate that would yield ~0 perfect
  // dies, the array still offers >90% of its cage sites.
  const chip::ElectrodeArray array(320, 320, 20e-6);
  const double p = 1e-5;  // 1 defect per 100k pixels
  EXPECT_LT(chip::all_good_yield(array, p), 0.40);
  EXPECT_GT(chip::expected_usable_fraction(p), 0.9999);
  Rng rng(7);
  const chip::DefectMap map = chip::sample_defects(array, 1e-3, rng);
  const double usable = chip::usable_cage_fraction(array, map);
  EXPECT_NEAR(usable, chip::expected_usable_fraction(1e-3), 0.01);
}

TEST(Defects, ExpectedFractionMonotonicInRing) {
  EXPECT_GT(chip::expected_usable_fraction(0.01, 1),
            chip::expected_usable_fraction(0.01, 2));
}

// ---------------------------------------------------------- hydraulic network ----

class NetworkTest : public ::testing::Test {
 protected:
  physics::Medium medium_ = physics::dep_buffer();
};

TEST_F(NetworkTest, ChannelResistanceFormula) {
  // 1 mm x 300 µm x 100 µm channel in water-like medium.
  const double r = fluidic::channel_resistance(medium_, 1e-3, 300e-6, 100e-6);
  const double expect = 12.0 * medium_.viscosity * 1e-3 /
                        (300e-6 * 1e-12 * (1.0 - 0.63 * 100.0 / 300.0));
  EXPECT_NEAR(r, expect, expect * 1e-12);
  EXPECT_THROW(fluidic::channel_resistance(medium_, 1e-3, 100e-6, 300e-6),
               PreconditionError);  // height > width
}

TEST_F(NetworkTest, SeriesChannelsAddResistance) {
  fluidic::HydraulicNetwork net(medium_);
  const int in = net.add_node("in");
  const int mid = net.add_node("mid");
  const int out = net.add_node("out");
  net.add_channel(in, mid, 1e-3, 300e-6, 100e-6);
  net.add_channel(mid, out, 1e-3, 300e-6, 100e-6);
  net.set_pressure(in, 1000.0);
  net.set_pressure(out, 0.0);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.node_pressure[static_cast<std::size_t>(mid)], 500.0, 1e-6);
  EXPECT_NEAR(sol.channel_flow[0], sol.channel_flow[1], 1e-18);  // continuity
  const double r = fluidic::channel_resistance(medium_, 1e-3, 300e-6, 100e-6);
  EXPECT_NEAR(sol.channel_flow[0], 1000.0 / (2.0 * r), 1000.0 / (2.0 * r) * 1e-9);
}

TEST_F(NetworkTest, ParallelChannelsSplitFlowByConductance) {
  fluidic::HydraulicNetwork net(medium_);
  const int in = net.add_node("in");
  const int out = net.add_node("out");
  net.add_channel(in, out, 1e-3, 300e-6, 100e-6, "wide");
  net.add_channel(in, out, 1e-3, 300e-6, 50e-6, "thin");  // h³ → ~8x resistive
  net.set_pressure(in, 1000.0);
  net.set_pressure(out, 0.0);
  const auto sol = net.solve();
  EXPECT_GT(sol.channel_flow[0], 5.0 * sol.channel_flow[1]);
}

TEST_F(NetworkTest, FlowSourceRaisesPressure) {
  fluidic::HydraulicNetwork net(medium_);
  const int pump = net.add_node("pump");
  const int vent = net.add_node("vent");
  net.add_channel(pump, vent, 2e-3, 300e-6, 100e-6);
  net.set_pressure(vent, 0.0);
  const double q = 1e-9 / 60.0;  // 1 µl/min
  net.set_flow(pump, q);
  const auto sol = net.solve();
  const double r = fluidic::channel_resistance(medium_, 2e-3, 300e-6, 100e-6);
  EXPECT_NEAR(sol.node_pressure[static_cast<std::size_t>(pump)], q * r, q * r * 1e-9);
  EXPECT_NEAR(net.mean_velocity(sol, 0), q / (300e-6 * 100e-6), 1e-9);
}

TEST_F(NetworkTest, MassConservationOnBranchingNetwork) {
  // in → junction → two outlets; net flow at the junction must vanish.
  fluidic::HydraulicNetwork net(medium_);
  const int in = net.add_node("in");
  const int j = net.add_node("junction");
  const int o1 = net.add_node("out1");
  const int o2 = net.add_node("out2");
  net.add_channel(in, j, 1e-3, 300e-6, 100e-6);
  net.add_channel(j, o1, 2e-3, 300e-6, 100e-6);
  net.add_channel(j, o2, 3e-3, 300e-6, 80e-6);
  net.set_pressure(in, 500.0);
  net.set_pressure(o1, 0.0);
  net.set_pressure(o2, 0.0);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.channel_flow[0], sol.channel_flow[1] + sol.channel_flow[2],
              std::fabs(sol.channel_flow[0]) * 1e-9);
}

TEST_F(NetworkTest, MissingReferenceThrows) {
  fluidic::HydraulicNetwork net(medium_);
  const int a = net.add_node("a");
  const int b = net.add_node("b");
  net.add_channel(a, b, 1e-3, 300e-6, 100e-6);
  EXPECT_THROW(net.solve(), ConfigError);
}

// ------------------------------------------------------------ two-shell cell ----

TEST(TwoShell, TransparentNucleusMatchesSingleShell) {
  // Nucleus with cytoplasm properties must not change the spectrum.
  cell::ParticleSpec base = cell::viable_lymphocyte();
  cell::ParticleSpec nucleated = base;
  nucleated.dielectric.nucleus = nucleated.dielectric.body;
  nucleated.dielectric.nucleus_radius_fraction = 0.5;
  const physics::Medium m = physics::dep_buffer();
  for (double f = 1e4; f <= 1e8; f *= 10.0)
    EXPECT_NEAR(nucleated.re_k(m, f), base.re_k(m, f), 1e-9) << f;
}

TEST(TwoShell, NucleusShiftsHighFrequencyResponse) {
  const cell::ParticleSpec plain = cell::viable_lymphocyte();
  const cell::ParticleSpec nucleated = cell::nucleated_lymphocyte();
  const physics::Medium m = physics::dep_buffer();
  // Below the membrane crossover both look alike (membrane dominates)...
  EXPECT_NEAR(nucleated.re_k(m, 20e3), plain.re_k(m, 20e3), 0.05);
  // ...above it, the conductive nucleus raises Re K.
  bool differs = false;
  for (double f = 1e6; f <= 1e8; f *= 3.0)
    if (std::fabs(nucleated.re_k(m, f) - plain.re_k(m, f)) > 0.01) differs = true;
  EXPECT_TRUE(differs);
}

TEST(TwoShell, InvalidNucleusFractionThrows) {
  cell::ParticleSpec s = cell::nucleated_lymphocyte();
  s.dielectric.nucleus_radius_fraction = 1.5;
  const physics::Medium m = physics::dep_buffer();
  EXPECT_THROW(s.re_k(m, 1e6), PreconditionError);
}

TEST(TwoShell, NucleatedCellStillSortsViable) {
  // The viability sort frequency still sees the nucleated cell as nDEP.
  const physics::Medium m = physics::dep_buffer();
  EXPECT_LT(cell::nucleated_lymphocyte().re_k(m, 100e3), 0.0);
}

// ------------------------------------------------------------ optical frames ----

class OpticalFrameTest : public ::testing::Test {
 protected:
  chip::ElectrodeArray array_{32, 32, 20.0e-6};
  sensor::OpticalPixel pixel_ = [] {
    sensor::OpticalPixel px;
    px.photodiode_area = 10e-6 * 10e-6;
    return px;
  }();
  sensor::OpticalFrameSynthesizer synth_{array_, pixel_};
};

TEST_F(OpticalFrameTest, ShadowIsNegativeAtParticle) {
  const Grid2 f = synth_.ideal_frame({{{320e-6, 320e-6, 6e-6}, 5e-6}});
  const GridCoord at = array_.nearest({320e-6, 320e-6});
  EXPECT_LT(f.at(static_cast<std::size_t>(at.col), static_cast<std::size_t>(at.row)),
            0.0);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 0.0);
}

TEST_F(OpticalFrameTest, AveragingShrinksShotNoise) {
  Rng rng(3);
  RunningStats s1, s16;
  for (int rep = 0; rep < 6; ++rep) {
    // Bind the frames before iterating: ranging over `temporary.data()`
    // destroys the Grid2 after the range-init (pre-C++23 lifetime rules) —
    // a stack-use-after-scope the ASan CI job flagged.
    const Grid2 noisy = synth_.noisy_frame({}, rng);
    for (double v : noisy.data()) s1.add(v);
    const Grid2 averaged = synth_.averaged_frame({}, rng, 16);
    for (double v : averaged.data()) s16.add(v);
  }
  EXPECT_NEAR(s1.stddev() / s16.stddev(), 4.0, 0.6);
}

TEST_F(OpticalFrameTest, DetectorFindsShadowedCell) {
  Rng rng(4);
  const Grid2 frame = synth_.averaged_frame({{{320e-6, 320e-6, 6e-6}, 5e-6}}, rng, 16);
  const double sigma = synth_.noise_sigma() / 4.0;
  const auto dets = sensor::detect_threshold(frame, array_, 5.0 * sigma);
  const auto stats = sensor::match_detections({{320e-6, 320e-6}}, dets, 30e-6);
  EXPECT_EQ(stats.true_positives, 1);
}

// ---------------------------------------------------------------- centering ----

TEST(Centering, ExactEvaluatorConvergesToOptimum) {
  flow::CenteringProblem prob{0.0, 1.0, 0.37, 1.0};
  flow::EvaluatorModel exact{0.0, 0.0, 60.0, 1.0};
  Rng rng(1);
  const flow::CenteringOutcome out = flow::center_design(prob, exact, 30, rng);
  EXPECT_LT(out.design_error, 1e-3);
  EXPECT_EQ(out.evaluations, 30);
  EXPECT_NEAR(out.time, 30.0 * 60.0, 1e-9);
}

TEST(Centering, BiasedEvaluatorHitsErrorFloor) {
  flow::CenteringProblem prob{0.0, 1.0, 0.37, 1.0};
  flow::EvaluatorModel biased = flow::fluidic_simulation_evaluator();
  Rng rng(2);
  RunningStats err;
  for (int t = 0; t < 40; ++t) {
    Rng trial = rng.split();
    err.add(flow::center_design(prob, biased, 40, trial).design_error);
  }
  // Unlimited budget cannot beat the bias.
  EXPECT_NEAR(err.mean(), std::fabs(biased.bias), 0.04);
}

TEST(Centering, HybridBeatsEqualBuildCountAndEightBuilds) {
  // Well-conditioned problem (quality swing >> noise): at the same number of
  // experimental chip builds, pre-shrinking with biased simulation reduces
  // the residual error; it also beats 8 builds alone on wall time.
  flow::CenteringProblem prob{0.0, 1.0, 0.37, 10.0};
  const flow::EvaluatorModel sim = flow::fluidic_simulation_evaluator();
  const flow::EvaluatorModel exp_ev = flow::fluidic_experiment_evaluator();
  Rng rng(3);
  RunningStats err_hybrid, err_exp6, time_hybrid, time_exp8;
  for (int t = 0; t < 120; ++t) {
    Rng r1 = rng.split(), r2 = rng.split(), r3 = rng.split();
    const auto hybrid = flow::center_design_hybrid(prob, sim, exp_ev, 20, 6, r1);
    const auto exp6 = flow::center_design(prob, exp_ev, 6, r2);
    const auto exp8 = flow::center_design(prob, exp_ev, 8, r3);
    err_hybrid.add(hybrid.design_error);
    err_exp6.add(exp6.design_error);
    time_hybrid.add(hybrid.time);
    time_exp8.add(exp8.time);
  }
  EXPECT_LT(err_hybrid.mean(), err_exp6.mean());
  EXPECT_LT(time_hybrid.mean(), time_exp8.mean());
}

TEST(Centering, InvalidBudgetThrows) {
  flow::CenteringProblem prob{0.0, 1.0, 0.5, 1.0};
  Rng rng(4);
  EXPECT_THROW(flow::center_design(prob, {}, 1, rng), PreconditionError);
}

}  // namespace
}  // namespace biochip
