// Tests for the core simulation engine and the LabOnChipPlatform facade.

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "cad/benchmarks.hpp"
#include "cell/library.hpp"
#include "common/error.hpp"
#include "core/parallel.hpp"
#include "core/platform.hpp"
#include "core/simulation.hpp"

namespace biochip::core {
namespace {

field::HarmonicCage test_cage() {
  // Paper-scale calibrated values (see bench_field_solver for provenance).
  return {{50e-6, 50e-6, 21e-6}, 5.2e7, 1.2e19, 1.3e20};
}

// ------------------------------------------------------- cage field model ----

TEST(CageFieldModel, TrapCenterFollowsSite) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  const Vec3 c = model.trap_center({3, 7});
  EXPECT_NEAR(c.x, 70e-6, 1e-12);
  EXPECT_NEAR(c.y, 150e-6, 1e-12);
  EXPECT_NEAR(c.z, 21e-6, 1e-12);
}

TEST(CageFieldModel, GradientZeroOutsideCaptureRadius) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  model.set_sites({{5, 5}});
  const Vec3 far = model.trap_center({5, 5}) + Vec3{100e-6, 0, 0};
  EXPECT_EQ(model.grad_erms2(far), (Vec3{}));
}

TEST(CageFieldModel, GradientPointsAwayFromCenterInsideTrap) {
  // ∇W points up-gradient (away from the minimum); the nDEP force
  // (prefactor < 0) then points back toward the center.
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  model.set_sites({{5, 5}});
  const Vec3 center = model.trap_center({5, 5});
  const Vec3 g = model.grad_erms2(center + Vec3{5e-6, 0, 0});
  EXPECT_GT(g.x, 0.0);
  EXPECT_NEAR(g.y, 0.0, 1e-3);
}

TEST(CageFieldModel, NearestCageWins) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  model.set_sites({{2, 5}, {8, 5}});
  const Vec3 near_first = model.trap_center({2, 5}) + Vec3{4e-6, 0, 0};
  const Vec3 g = model.grad_erms2(near_first);
  EXPECT_GT(g.x, 0.0);  // curvature of cage at {2,5}, not pulled by {8,5}
}

TEST(CageFieldModel, SpatialHashMatchesLinearReference) {
  // The O(1) hash probe must reproduce the linear-scan oracle over
  // randomized active-site sets (dense, sparse, negative coords, duplicates)
  // and query points spread inside and outside the populated region.
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  Rng rng(20260730);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<GridCoord> sites;
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 60));
    for (std::size_t s = 0; s < count; ++s)
      sites.push_back({static_cast<int>(rng.uniform_int(-4, 24)),
                       static_cast<int>(rng.uniform_int(-4, 24))});
    if (trial % 3 == 0) sites.push_back(sites.front());  // duplicate site
    model.set_sites(sites);
    for (int q = 0; q < 200; ++q) {
      const Vec3 p{rng.uniform(-6 * 20e-6, 26 * 20e-6),
                   rng.uniform(-6 * 20e-6, 26 * 20e-6), rng.uniform(0.0, 60e-6)};
      EXPECT_EQ(model.grad_erms2(p), model.grad_erms2_linear(p))
          << "trial=" << trial << " q=" << q;
    }
  }
}

TEST(CageFieldModel, HashAgreesWithLinearAtTrapAndCaptureShell) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  model.set_sites({{0, 0}, {3, 3}, {7, 2}});
  for (const GridCoord site : model.sites()) {
    const Vec3 c = model.trap_center(site);
    for (const Vec3 offset :
         {Vec3{}, Vec3{5e-6, -3e-6, 2e-6}, Vec3{29.9e-6, 0, 0}, Vec3{0, 31e-6, 0}}) {
      const Vec3 p = c + offset;
      EXPECT_EQ(model.grad_erms2(p), model.grad_erms2_linear(p));
    }
  }
}

TEST(CageFieldModel, EmptySiteSetGivesZeroDrive) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  EXPECT_EQ(model.grad_erms2({50e-6, 50e-6, 21e-6}), (Vec3{}));
  model.set_sites({{1, 1}});
  model.set_sites({});
  EXPECT_EQ(model.grad_erms2(model.trap_center({1, 1})), (Vec3{}));
}

TEST(CageFieldModel, IncrementalSetSitesMatchesRebuildAndOracle) {
  // Same-length site updates take the incremental erase+insert path (the
  // one-cage-per-hop tow pattern). Every hop must leave the hash in exactly
  // the state a full rebuild would produce: compare against a fresh model
  // and against the linear-scan oracle, including duplicate sites and the
  // backward-shift deletion chains they exercise.
  CageFieldModel inc(test_cage(), 20e-6, 30e-6);
  Rng rng(20260731);
  std::vector<GridCoord> sites;
  for (int s = 0; s < 24; ++s)
    sites.push_back({static_cast<int>(rng.uniform_int(0, 15)),
                     static_cast<int>(rng.uniform_int(0, 15))});
  sites.push_back(sites.front());  // duplicate from the start
  inc.set_sites(sites);
  for (int hop = 0; hop < 50; ++hop) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1));
    sites[idx] = {static_cast<int>(rng.uniform_int(0, 15)),
                  static_cast<int>(rng.uniform_int(0, 15))};
    if (hop % 7 == 0)  // periodically create & later destroy duplicates
      sites[(idx + 3) % sites.size()] = sites[idx];
    inc.set_sites(sites);  // same length: incremental path
    CageFieldModel fresh(test_cage(), 20e-6, 30e-6);
    fresh.set_sites(sites);  // full rebuild
    for (int q = 0; q < 30; ++q) {
      const Vec3 p{rng.uniform(-2 * 20e-6, 18 * 20e-6),
                   rng.uniform(-2 * 20e-6, 18 * 20e-6), rng.uniform(0.0, 50e-6)};
      const Vec3 g = inc.grad_erms2(p);
      ASSERT_EQ(g, fresh.grad_erms2(p)) << "hop=" << hop << " q=" << q;
      ASSERT_EQ(g, inc.grad_erms2_linear(p)) << "hop=" << hop << " q=" << q;
    }
  }
}

TEST(CageFieldModel, IncrementalShrinkAndGrowFallsBackToRebuild) {
  CageFieldModel model(test_cage(), 20e-6, 30e-6);
  std::vector<GridCoord> sites{{1, 1}, {5, 5}, {9, 9}};
  model.set_sites(sites);
  sites.push_back({3, 7});  // length change: full rebuild path
  model.set_sites(sites);
  for (const GridCoord site : sites) {
    const Vec3 p = model.trap_center(site);
    EXPECT_EQ(model.grad_erms2(p + Vec3{4e-6, 0, 0}),
              model.grad_erms2_linear(p + Vec3{4e-6, 0, 0}));
  }
  sites.erase(sites.begin());
  model.set_sites(sites);
  EXPECT_EQ(model.grad_erms2(model.trap_center({1, 1})),
            model.grad_erms2_linear(model.trap_center({1, 1})));
}

TEST(CageFieldModel, HugeCaptureRadiusFallsBackToScan) {
  // Capture radius spanning far more candidate sites than live cages takes
  // the linear fallback; the answers must still agree.
  CageFieldModel model(test_cage(), 20e-6, 500e-6);
  model.set_sites({{1, 2}, {10, 10}});
  const Vec3 p{95e-6, 80e-6, 21e-6};
  EXPECT_EQ(model.grad_erms2(p), model.grad_erms2_linear(p));
}

// Exact-arithmetic geometry for tie tests: pitch 2 m puts trap centers at
// odd integers, so midpoints and their squared distances are binary-exact
// and equidistance is a true floating-point tie, not an approximate one.
CageFieldModel tie_model() {
  return CageFieldModel(field::HarmonicCage{{0, 0, 0}, 1.0, 2.0, 3.0},
                        /*pitch=*/2.0, /*capture_radius=*/3.0);
}

TEST(CageFieldModel, ExactDistanceTiesBreakIdenticallyOnBothPaths) {
  // Regression for the hashed/linear tie divergence: the box scan visits
  // candidates in row-major order while the oracle follows insertion order,
  // so with a last-tie-wins rule a body exactly equidistant between two
  // trap centers — the midpoint of every tow hop — could get different
  // drives on the two paths. The insertion order below is adversarial: the
  // historical rules picked {1,1} (hashed) versus {0,0} (linear) at the
  // block center. The fixed rule: smallest (row, col) wins on both paths.
  CageFieldModel model = tie_model();
  model.set_sites({{1, 1}, {1, 0}, {0, 1}, {0, 0}});  // 2×2 active block

  const auto winner_drive = [&](GridCoord site, Vec3 p) {
    CageFieldModel solo = tie_model();
    solo.set_sites({site});
    return solo.grad_erms2(p);
  };
  const auto expect_winner = [&](Vec3 p, GridCoord site, const char* what) {
    const Vec3 g = model.grad_erms2(p);
    EXPECT_EQ(g, model.grad_erms2_linear(p)) << what;
    EXPECT_EQ(g, winner_drive(site, p)) << what;
  };
  // Horizontal midpoint between {0,0} (center x=1) and {1,0} (x=3).
  expect_winner({2.0, 1.0, 0.0}, {0, 0}, "horizontal midpoint");
  // Vertical midpoint between {0,0} (center y=1) and {0,1} (y=3).
  expect_winner({1.0, 2.0, 0.0}, {0, 0}, "vertical midpoint");
  // Center of the 2×2 block: equidistant from all four corners.
  expect_winner({2.0, 2.0, 0.0}, {0, 0}, "block center (4-way tie)");
  // Midpoint between {1,0} and {1,1}: row tie at col 1, smaller row wins.
  expect_winner({3.0, 2.0, 0.0}, {1, 0}, "row tie at col 1");
  // Midpoint between {0,1} and {1,1}: col tie at row 1, smaller col wins.
  expect_winner({2.0, 3.0, 0.0}, {0, 1}, "col tie at row 1");
}

TEST(CageFieldModel, SetSitesFuzzHashedVsLinearEveryStep) {
  // Randomized workout of the incremental set_sites path: sequences of
  // single-site moves (the tow pattern), duplicate creation/destruction,
  // swaps, and occasional grow/shrink rebuilds. After every step the hashed
  // lookup must agree with the linear oracle and with a freshly rebuilt
  // model at random points, every trap center, and exact pair midpoints
  // (covers the backward-shift deletion and multiset slots).
  CageFieldModel inc = tie_model();
  Rng rng(424242);
  std::vector<GridCoord> sites;
  const auto rand_site = [&] {
    return GridCoord{static_cast<int>(rng.uniform_int(-2, 9)),
                     static_cast<int>(rng.uniform_int(-2, 9))};
  };
  for (int s = 0; s < 12; ++s) sites.push_back(rand_site());
  inc.set_sites(sites);
  for (int step = 0; step < 160; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    const auto idx = [&] {
      return static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1));
    };
    if (op < 5) {
      sites[idx()] = rand_site();  // single move: incremental erase+insert
    } else if (op < 7) {
      sites[idx()] = sites[idx()];  // duplicate an existing site
    } else if (op < 8) {
      std::swap(sites[idx()], sites[idx()]);  // reorder only
    } else if (op < 9 || sites.size() <= 2) {
      sites.push_back(rand_site());  // grow: full rebuild
    } else {
      sites.erase(sites.begin() + static_cast<std::ptrdiff_t>(idx()));  // shrink
    }
    inc.set_sites(sites);
    CageFieldModel fresh = tie_model();
    fresh.set_sites(sites);
    // Every trap center (membership through the drive field)...
    for (const GridCoord site : sites) {
      const Vec3 c = inc.trap_center(site);
      ASSERT_EQ(inc.grad_erms2(c), inc.grad_erms2_linear(c)) << "step=" << step;
      ASSERT_EQ(inc.grad_erms2(c), fresh.grad_erms2(c)) << "step=" << step;
    }
    // ...exact midpoints of site pairs (distance ties when equidistant)...
    for (int q = 0; q < 6; ++q) {
      const Vec3 a = inc.trap_center(sites[idx()]);
      const Vec3 b = inc.trap_center(sites[idx()]);
      const Vec3 mid{(a.x + b.x) * 0.5, (a.y + b.y) * 0.5, 0.0};
      ASSERT_EQ(inc.grad_erms2(mid), inc.grad_erms2_linear(mid)) << "step=" << step;
      ASSERT_EQ(inc.grad_erms2(mid), fresh.grad_erms2(mid)) << "step=" << step;
    }
    // ...and random probes in and around the populated region.
    for (int q = 0; q < 10; ++q) {
      const Vec3 p{rng.uniform(-8.0, 24.0), rng.uniform(-8.0, 24.0),
                   rng.uniform(-1.0, 1.0)};
      ASSERT_EQ(inc.grad_erms2(p), inc.grad_erms2_linear(p)) << "step=" << step;
      ASSERT_EQ(inc.grad_erms2(p), fresh.grad_erms2(p)) << "step=" << step;
    }
  }
}

// ---------------------------------------------------- manipulation engine ----

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
    cfg.cols = 32;
    cfg.rows = 32;
    device_ = std::make_unique<chip::BiochipDevice>(cfg);
    medium_ = physics::dep_buffer();
    cage_ = device_->calibrate_cage(5, 6);
    engine_ = std::make_unique<ManipulationEngine>(*device_, medium_, cage_, 30e-6);
  }

  physics::ParticleBody cell_at(GridCoord site) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const Vec3 trap = engine_->field_model().trap_center(site);
    return {trap, spec.radius, spec.density,
            spec.dep_prefactor(medium_, device_->config().drive_frequency), 0};
  }

  std::unique_ptr<chip::BiochipDevice> device_;
  physics::Medium medium_;
  field::HarmonicCage cage_;
  std::unique_ptr<ManipulationEngine> engine_;
};

TEST_F(EngineTest, TowAtPaperSpeedRetainsCell) {
  physics::ParticleBody cell = cell_at({5, 5});
  std::vector<GridCoord> path;
  for (int c = 5; c <= 15; ++c) path.push_back({c, 5});
  Rng rng(21);
  const TowReport report = engine_->tow(cell, path, 0.4, rng);  // 50 µm/s
  EXPECT_TRUE(report.retained);
  EXPECT_EQ(report.steps, path.size());
  const Vec3 target = engine_->field_model().trap_center({15, 5});
  EXPECT_LT((report.final_position - target).norm(), 25e-6);
}

TEST_F(EngineTest, TowTooFastLosesCell) {
  physics::ParticleBody cell = cell_at({5, 5});
  std::vector<GridCoord> path;
  for (int c = 5; c <= 20; ++c) path.push_back({c, 5});
  Rng rng(22);
  // 10 ms per 20 µm hop = 2 mm/s: far beyond the ~200 µm/s holding limit.
  const TowReport report = engine_->tow(cell, path, 0.01, rng);
  EXPECT_FALSE(report.retained);
  EXPECT_LT(report.steps, path.size());
}

TEST_F(EngineTest, SettlePullsCellIntoTrap) {
  const GridCoord site{8, 8};
  physics::ParticleBody cell = cell_at(site);
  // Start sedimented on the chip floor, one third of a pitch off-center.
  cell.position = engine_->field_model().trap_center(site) +
                  Vec3{7e-6, 0, 0};
  cell.position.z = cell.radius * 1.05;
  engine_->field_model().set_sites({site});
  Rng rng(23);
  engine_->settle(cell, 3.0, rng);
  const Vec3 trap = engine_->field_model().trap_center(site);
  EXPECT_LT((cell.position - trap).norm(), 6e-6);
  EXPECT_GT(cell.position.z, 10e-6);  // levitated off the floor
}

TEST_F(EngineTest, NonAdjacentPathRejected) {
  physics::ParticleBody cell = cell_at({5, 5});
  Rng rng(24);
  EXPECT_THROW(engine_->tow(cell, {{5, 5}, {7, 5}}, 0.4, rng), PreconditionError);
}

// ---------------------------------------------------- parallel transporter ----

TEST(ParallelTransporter, EpisodeFanOutBitwiseIdenticalToSerial) {
  // Independent transport batches fan out over the pool at the episode
  // level; per-episode counter-based RNG streams (Rng::fork) make every
  // trajectory bitwise identical no matter how the episodes are chunked.
  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = 16;
  cfg.rows = 16;
  const chip::BiochipDevice device(cfg);
  const physics::Medium medium = physics::dep_buffer();
  const field::HarmonicCage cage = device.calibrate_cage(5, 6);
  const cell::ParticleSpec spec = cell::viable_lymphocyte();

  struct World {
    std::unique_ptr<chip::CageController> cages;
    std::unique_ptr<ManipulationEngine> engine;
    std::unique_ptr<ParallelTransporter> transporter;
    std::vector<physics::ParticleBody> bodies;
    std::vector<std::pair<int, int>> cage_bodies;
    std::vector<ParallelMoveRequest> requests;
  };
  const auto make_worlds = [&] {
    std::vector<World> worlds(3);
    for (int w = 0; w < 3; ++w) {
      World& world = worlds[static_cast<std::size_t>(w)];
      world.cages = std::make_unique<chip::CageController>(device.array());
      world.engine = std::make_unique<ManipulationEngine>(device, medium, cage, 30e-6);
      world.transporter =
          std::make_unique<ParallelTransporter>(*world.cages, *world.engine, 0.4);
      const int id0 = world.cages->create({2, 2 + w});
      const int id1 = world.cages->create({10, 3 + w});
      for (const int id : {id0, id1})
        world.bodies.push_back({world.engine->field_model().trap_center(
                                    world.cages->site(id)),
                                spec.radius, spec.density,
                                spec.dep_prefactor(medium, cfg.drive_frequency), 0});
      world.cage_bodies = {{id0, 0}, {id1, 1}};
      world.requests = {{id0, {6, 2 + w}}, {id1, {10, 8}}};
    }
    return worlds;
  };

  const auto run = [&](std::size_t max_parts) {
    auto worlds = make_worlds();
    std::vector<ParallelTransporter::Episode> episodes;
    for (World& w : worlds)
      episodes.push_back({w.transporter.get(), w.requests, &w.bodies, w.cage_bodies});
    Rng rng(4242);
    const auto results = ParallelTransporter::execute_episodes(episodes, rng, max_parts);
    std::vector<Vec3> positions;
    for (const World& w : worlds)
      for (const physics::ParticleBody& b : w.bodies) positions.push_back(b.position);
    for (const ParallelMoveResult& r : results) EXPECT_TRUE(r.planned);
    return positions;
  };

  const std::vector<Vec3> serial = run(1);   // one chunk: the serial reference
  const std::vector<Vec3> fanned = run(0);   // pool-sized chunking
  ASSERT_EQ(serial.size(), fanned.size());
  ASSERT_FALSE(serial.empty());
  for (std::size_t n = 0; n < serial.size(); ++n)
    ASSERT_EQ(serial[n], fanned[n]) << "body " << n;
}

// ---------------------------------------------------------------- platform ----

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest() {
    PlatformConfig cfg = PlatformConfig::paper_defaults();
    cfg.device.cols = 48;
    cfg.device.rows = 48;
    cfg.seed = 7;
    lab_ = std::make_unique<LabOnChipPlatform>(cfg);
  }
  std::unique_ptr<LabOnChipPlatform> lab_;
};

TEST_F(PlatformTest, LoadSampleCreatesBodies) {
  lab_->load_sample({{cell::viable_lymphocyte(), 8, 0.05}});
  EXPECT_EQ(lab_->sample().size(), 8u);
  EXPECT_EQ(lab_->bodies().size(), 8u);
  for (const auto& b : lab_->bodies()) EXPECT_LT(b.dep_prefactor, 0.0);
}

TEST_F(PlatformTest, DetectFindsLoadedCells) {
  lab_->load_sample({{cell::viable_lymphocyte(), 6, 0.05}});
  const auto dets = lab_->detect_cells(64);
  EXPECT_GE(dets.size(), 5u);  // allow one cluster-merge of near neighbors
  EXPECT_LE(dets.size(), 7u);
}

TEST_F(PlatformTest, TrapThenMoveEndToEnd) {
  lab_->load_sample({{cell::viable_lymphocyte(), 3, 0.05}});
  const auto cage = lab_->trap_cell(0);
  ASSERT_TRUE(cage.has_value());
  const GridCoord from = lab_->cages().site(*cage);
  const GridCoord to{from.col < 24 ? from.col + 8 : from.col - 8, from.row};
  const MoveResult mv = lab_->move_cell(*cage, to);
  EXPECT_TRUE(mv.success);
  EXPECT_EQ(lab_->cages().site(*cage), to);
  // Claim C3 embodied: electronics time is negligible vs. the tow.
  EXPECT_LT(mv.electronics_time, 1e-3 * mv.tow.elapsed);
  // The physical cell arrived too.
  const int body = *lab_->body_in_cage(*cage);
  const Vec3 trap{(to.col + 0.5) * 20e-6, (to.row + 0.5) * 20e-6,
                  lab_->unit_cage().center.z};
  EXPECT_LT((lab_->bodies()[static_cast<std::size_t>(body)].position - trap).norm(),
            25e-6);
}

TEST_F(PlatformTest, PdepParticleNotTrappable) {
  // Polystyrene beads at 100 kHz in this buffer are still nDEP; use a
  // conductive particle instead (pDEP at low frequency).
  cell::ParticleSpec conductive = cell::polystyrene_bead();
  conductive.name = "conductive_bead";
  conductive.dielectric.body.conductivity = 1.0;  // >> medium
  lab_->load_sample({{conductive, 2, 0.02}});
  EXPECT_FALSE(lab_->trap_cell(0).has_value());
}

TEST_F(PlatformTest, SecondTrapRespectsSeparation) {
  lab_->load_sample({{cell::viable_lymphocyte(), 2, 0.0}});
  // Force both cells to almost the same spot.
  lab_->bodies()[0].position = {500e-6, 500e-6, 6e-6};
  lab_->bodies()[1].position = {510e-6, 505e-6, 6e-6};
  const auto first = lab_->trap_cell(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(lab_->trap_cell(1).has_value());  // same/adjacent site blocked
}

TEST_F(PlatformTest, SitePeriodMatchesTowSpeed) {
  EXPECT_NEAR(lab_->site_period(), 20e-6 / 50e-6, 1e-12);
}

TEST_F(PlatformTest, RunAssayUsesDeviceGeometry) {
  const auto result = lab_->run_assay(cad::pcr_mix(2), cad::ChipResources{});
  EXPECT_TRUE(result.success);
  EXPECT_NEAR(result.transport_time,
              static_cast<double>(result.transport_steps) * lab_->site_period(), 1e-9);
}

TEST_F(PlatformTest, MoveUnknownCageThrows) {
  lab_->load_sample({{cell::viable_lymphocyte(), 1, 0.0}});
  EXPECT_THROW(lab_->move_cell(123, {5, 5}), PreconditionError);
}

TEST(Platform, DeterministicAcrossRuns) {
  auto run_once = [] {
    PlatformConfig cfg = PlatformConfig::paper_defaults();
    cfg.device.cols = 32;
    cfg.device.rows = 32;
    cfg.seed = 99;
    LabOnChipPlatform lab(cfg);
    lab.load_sample({{cell::viable_lymphocyte(), 4, 0.05}});
    return lab.bodies()[2].position;
  };
  const Vec3 a = run_once();
  const Vec3 b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace biochip::core
