// Tests for the chip library: technology catalog, electrode array geometry,
// actuation patterns, programming timing, cage control, and the device
// facade (including the claim-C1 paper-scale checks).

#include <gtest/gtest.h>

#include <cmath>

#include "chip/actuation.hpp"
#include "chip/cage.hpp"
#include "chip/device.hpp"
#include "chip/electrode_array.hpp"
#include "chip/technology.hpp"
#include "chip/timing.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::chip {
namespace {

using namespace biochip::units;

// ------------------------------------------------------------ technology ----

TEST(Technology, CatalogOrderedAndMonotonic) {
  const auto nodes = node_catalog();
  ASSERT_GE(nodes.size(), 8u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature_size, nodes[i - 1].feature_size);
    EXPECT_LE(nodes[i].supply, nodes[i - 1].supply);        // supply shrinks
    EXPECT_LT(nodes[i].sram_bit_area, nodes[i - 1].sram_bit_area);
    EXPECT_GE(nodes[i].year, nodes[i - 1].year);
  }
}

TEST(Technology, PaperNodeIs035um) {
  const CmosNode n = paper_node();
  EXPECT_EQ(n.name, "0.35um");
  EXPECT_DOUBLE_EQ(n.supply, 3.3);
}

TEST(Technology, UnknownNodeThrows) {
  EXPECT_THROW(node_by_name("7nm"), ConfigError);
}

class NodeParamTest : public ::testing::TestWithParam<CmosNode> {};

TEST_P(NodeParamTest, PixelFitsUnder20umPitchFrom035umOn) {
  // The feasibility floor: from 0.35 µm on, the per-pixel latch + switches
  // fit under a 20 µm (cell-sized) electrode. Newer nodes gain nothing (the
  // pitch is set by the cell), older-than-0.6 µm nodes can't fit the pixel —
  // so the paper's chip sits exactly at the oldest feasible node (claim C2).
  const CmosNode& node = GetParam();
  if (node.feature_size <= 0.4e-6) {
    EXPECT_TRUE(pixel_fits(node, 20.0_um, 2)) << node.name;
  }
  if (node.feature_size >= 0.8e-6) {
    EXPECT_FALSE(pixel_fits(node, 20.0_um, 2)) << node.name;
  }
}

TEST_P(NodeParamTest, PixelLogicAreaPositiveAndGrowsWithBits) {
  const CmosNode& node = GetParam();
  EXPECT_GT(node.pixel_logic_area(1), 0.0);
  EXPECT_GT(node.pixel_logic_area(4), node.pixel_logic_area(1));
}

INSTANTIATE_TEST_SUITE_P(AllNodes, NodeParamTest, ::testing::ValuesIn(node_catalog()),
                         [](const ::testing::TestParamInfo<CmosNode>& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

// --------------------------------------------------------------- array ----

TEST(ElectrodeArray, GeometryAndIndexing) {
  ElectrodeArray a(320, 320, 20.0_um);
  EXPECT_EQ(a.electrode_count(), 102400u);
  EXPECT_TRUE(a.contains({0, 0}));
  EXPECT_TRUE(a.contains({319, 319}));
  EXPECT_FALSE(a.contains({320, 0}));
  EXPECT_FALSE(a.contains({-1, 0}));
  EXPECT_EQ(a.index({1, 0}), 1u);
  EXPECT_EQ(a.index({0, 1}), 320u);
}

TEST(ElectrodeArray, CentersAndFootprints) {
  ElectrodeArray a(4, 4, 20.0_um, 0.8);
  const Vec2 c = a.center({1, 2});
  EXPECT_NEAR(c.x, 30.0_um, 1e-12);
  EXPECT_NEAR(c.y, 50.0_um, 1e-12);
  const Rect f = a.footprint({1, 2});
  EXPECT_NEAR(f.width(), 16.0_um, 1e-12);  // 80% metal fill
  EXPECT_TRUE(f.contains(c));
}

TEST(ElectrodeArray, NearestClampsToEdges) {
  ElectrodeArray a(8, 8, 20.0_um);
  EXPECT_EQ(a.nearest({-5.0_um, -5.0_um}), (GridCoord{0, 0}));
  EXPECT_EQ(a.nearest({1.0_mm, 1.0_mm}), (GridCoord{7, 7}));
  EXPECT_EQ(a.nearest({30.0_um, 50.0_um}), (GridCoord{1, 2}));
}

TEST(ElectrodeArray, InvalidConstructionThrows) {
  EXPECT_THROW(ElectrodeArray(0, 4, 20.0_um), PreconditionError);
  EXPECT_THROW(ElectrodeArray(4, 4, 0.0), PreconditionError);
  EXPECT_THROW(ElectrodeArray(4, 4, 20.0_um, 1.5), PreconditionError);
}

// ------------------------------------------------------------- actuation ----

TEST(Actuation, BackgroundIsAllPhaseB) {
  ElectrodeArray a(8, 8, 20.0_um);
  const ActuationPattern p = background(a);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) EXPECT_EQ(p.get({c, r}), PhaseSel::kPhaseB);
}

TEST(Actuation, SingleCageSetsPhaseAIsland) {
  ElectrodeArray a(8, 8, 20.0_um);
  const ActuationPattern p = single_cage(a, {3, 4});
  EXPECT_EQ(p.get({3, 4}), PhaseSel::kPhaseA);
  EXPECT_EQ(p.get({2, 4}), PhaseSel::kPhaseB);
  EXPECT_EQ(p.diff_count(background(a)), 1u);
}

TEST(Actuation, CageSiteSizeExpandsIsland) {
  ElectrodeArray a(8, 8, 20.0_um);
  const ActuationPattern p = single_cage(a, {2, 2}, 2);
  EXPECT_EQ(p.diff_count(background(a)), 4u);
  EXPECT_EQ(p.get({3, 3}), PhaseSel::kPhaseA);
}

TEST(Actuation, PhasorsMapPhasesToSigns) {
  ElectrodeArray a(2, 1, 20.0_um);
  ActuationPattern p = background(a);
  p.set({0, 0}, PhaseSel::kPhaseA);
  p.set({1, 0}, PhaseSel::kGround);
  EXPECT_EQ(p.phasor({0, 0}, 3.3), (std::complex<double>{3.3, 0.0}));
  EXPECT_EQ(p.phasor({1, 0}, 3.3), (std::complex<double>{0.0, 0.0}));
  const auto all = p.phasors(2.0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].real(), 2.0);
}

TEST(Actuation, CageLatticeCapacityMatchesClaimC1) {
  // Paper: >100k electrodes host "tens of thousands" of cages.
  ElectrodeArray a(320, 320, 20.0_um);
  const CageLattice lattice = cage_lattice(a, 2);
  EXPECT_GT(lattice.sites.size(), 20000u);
  EXPECT_LT(lattice.sites.size(), 30000u);
  // All sites separated by >= 2 pitches (spot check a sample).
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(lattice.sites.size(), 200); ++i)
    EXPECT_GE(chebyshev(lattice.sites[i], lattice.sites[i + 1]), 2);
}

TEST(Actuation, MoveCageUpdatesPattern) {
  ElectrodeArray a(8, 8, 20.0_um);
  ActuationPattern p = single_cage(a, {3, 3});
  move_cage(p, {3, 3}, {4, 3});
  EXPECT_EQ(p.get({3, 3}), PhaseSel::kPhaseB);
  EXPECT_EQ(p.get({4, 3}), PhaseSel::kPhaseA);
  EXPECT_THROW(move_cage(p, {0, 0}, {1, 0}), PreconditionError);  // no cage there
}

// ---------------------------------------------------------------- timing ----

TEST(Timing, FullProgramTimeScalesWithArray) {
  ProgrammingModel pm;
  ElectrodeArray small(64, 64, 20.0_um), large(320, 320, 20.0_um);
  const double ts = pm.full_program_time(small);
  const double tl = pm.full_program_time(large);
  EXPECT_GT(tl, ts);
  // 320x320 at 10 MHz, 16 pixels/word: ~(320·(20+2))/1e7 ≈ 0.7 ms.
  EXPECT_LT(tl, 5e-3);
  EXPECT_GT(tl, 1e-4);
}

TEST(Timing, IncrementalCheaperThanFull) {
  ProgrammingModel pm;
  ElectrodeArray a(320, 320, 20.0_um);
  EXPECT_LT(pm.incremental_program_time(2), pm.full_program_time(a));
  EXPECT_GT(pm.pattern_rate(2), 1e5);  // >100k cage moves/s possible
}

TEST(Timing, HeadroomHugeAtCellSpeeds) {
  // Claim C3: electronics are orders of magnitude faster than cells.
  ProgrammingModel pm;
  ElectrodeArray a(320, 320, 20.0_um);
  for (double speed : {10e-6, 50e-6, 100e-6}) {
    EXPECT_GT(timing_headroom(a, pm, speed), 100.0) << speed;
  }
}

TEST(Timing, PatternMemorySize) {
  ProgrammingModel pm;
  ElectrodeArray a(320, 320, 20.0_um);
  EXPECT_EQ(pm.pattern_memory_bits(a), 204800u);  // 2 bits per pixel
}

TEST(Timing, TransitTimeValidation) {
  EXPECT_NEAR(pitch_transit_time(20.0_um, 50e-6), 0.4, 1e-12);
  EXPECT_THROW(pitch_transit_time(0.0, 1.0), PreconditionError);
  EXPECT_THROW(pitch_transit_time(1.0, 0.0), PreconditionError);
}

// ------------------------------------------------------------------ cage ----

class CageControllerTest : public ::testing::Test {
 protected:
  ElectrodeArray array_{16, 16, 20.0e-6};
  CageController ctl_{array_, 2};
};

TEST_F(CageControllerTest, CreateAndQuery) {
  const int id = ctl_.create({4, 4});
  EXPECT_EQ(ctl_.cage_count(), 1u);
  EXPECT_EQ(ctl_.site(id), (GridCoord{4, 4}));
  EXPECT_EQ(ctl_.cage_ids(), std::vector<int>{id});
}

TEST_F(CageControllerTest, SeparationEnforcedOnCreate) {
  ctl_.create({4, 4});
  EXPECT_FALSE(ctl_.can_place({5, 5}));   // Chebyshev 1 < 2
  EXPECT_TRUE(ctl_.can_place({6, 4}));    // Chebyshev 2
  EXPECT_THROW(ctl_.create({4, 5}), PreconditionError);
}

TEST_F(CageControllerTest, MoveRules) {
  const int id = ctl_.create({4, 4});
  ctl_.move(id, {5, 4});
  EXPECT_EQ(ctl_.site(id), (GridCoord{5, 4}));
  EXPECT_THROW(ctl_.move(id, {7, 4}), PreconditionError);   // 2 pitches
  EXPECT_THROW(ctl_.move(id, {5, 4 + 20}), PreconditionError);
  EXPECT_EQ(ctl_.moves_executed(), 1u);
}

TEST_F(CageControllerTest, MoveCannotApproachNeighbor) {
  const int a = ctl_.create({4, 4});
  ctl_.create({7, 4});
  // Chebyshev({5,4},{7,4}) = 2: still legal.
  ctl_.move(a, {5, 4});
  // Chebyshev({6,4},{7,4}) = 1: traps would merge — rejected.
  EXPECT_THROW(ctl_.move(a, {6, 4}), PreconditionError);
  EXPECT_EQ(ctl_.site(a), (GridCoord{5, 4}));
}

TEST_F(CageControllerTest, SimultaneousStepConvoy) {
  // A convoy of cages marching east together stays legal.
  const int a = ctl_.create({2, 2});
  const int b = ctl_.create({4, 2});
  const int c = ctl_.create({6, 2});
  ctl_.apply_step({{a, {3, 2}}, {b, {5, 2}}, {c, {7, 2}}});
  EXPECT_EQ(ctl_.site(a), (GridCoord{3, 2}));
  EXPECT_EQ(ctl_.site(c), (GridCoord{7, 2}));
  EXPECT_EQ(ctl_.moves_executed(), 3u);
  EXPECT_EQ(ctl_.steps_executed(), 1u);
}

TEST_F(CageControllerTest, SimultaneousStepCollisionRejectedAtomically) {
  const int a = ctl_.create({2, 2});
  const int b = ctl_.create({5, 2});
  // a moves toward b while b moves toward a -> separation 1: rejected.
  EXPECT_THROW(ctl_.apply_step({{a, {3, 2}}, {b, {4, 2}}}), PreconditionError);
  // State unchanged (atomicity).
  EXPECT_EQ(ctl_.site(a), (GridCoord{2, 2}));
  EXPECT_EQ(ctl_.site(b), (GridCoord{5, 2}));
}

TEST_F(CageControllerTest, DuplicateMoveInStepRejected) {
  const int a = ctl_.create({2, 2});
  EXPECT_THROW(ctl_.apply_step({{a, {3, 2}}, {a, {2, 3}}}), PreconditionError);
}

TEST_F(CageControllerTest, DestroyFreesSite) {
  const int a = ctl_.create({4, 4});
  ctl_.destroy(a);
  EXPECT_EQ(ctl_.cage_count(), 0u);
  EXPECT_TRUE(ctl_.can_place({4, 5}));
  EXPECT_THROW(ctl_.site(a), PreconditionError);  // stale id
}

TEST_F(CageControllerTest, PatternReflectsCages) {
  ctl_.create({4, 4});
  ctl_.create({8, 8});
  const ActuationPattern p = ctl_.pattern();
  EXPECT_EQ(p.get({4, 4}), PhaseSel::kPhaseA);
  EXPECT_EQ(p.get({8, 8}), PhaseSel::kPhaseA);
  EXPECT_EQ(p.diff_count(background(array_)), 2u);
}

// ---------------------------------------------------------------- device ----

TEST(Device, PaperScaleMatchesClaimC1) {
  const BiochipDevice dev = paper_device();
  EXPECT_GT(dev.array().electrode_count(), 100000u);       // ">100,000 electrodes"
  EXPECT_NEAR(dev.chamber_volume(), 4.1e-9, 0.2e-9);       // "~4 µl"
  EXPECT_GT(dev.cage_capacity(2), 20000u);                 // "tens of thousands"
  EXPECT_TRUE(dev.pixel_fits());
  EXPECT_DOUBLE_EQ(dev.drive_amplitude(), 3.3);
}

TEST(Device, CalibratedCageIsClosedAndCentered) {
  const BiochipDevice dev = paper_device();
  const field::HarmonicCage cage = dev.calibrate_cage(5, 6);
  // Centered above the middle electrode of a 5x5 patch: (2.5 pitch, 2.5 pitch).
  EXPECT_NEAR(cage.center.x, 2.5 * 20.0_um, 2.0_um);
  EXPECT_NEAR(cage.center.y, 2.5 * 20.0_um, 2.0_um);
  // Levitated at a height comparable to the pitch.
  EXPECT_GT(cage.center.z, 5.0_um);
  EXPECT_LT(cage.center.z, 60.0_um);
  EXPECT_GT(cage.c_r, 0.0);
  EXPECT_GT(cage.c_z, 0.0);
}

TEST(Device, CageStrengthScalesWithSupplySquared) {
  // Claim C2's physical core: curvature of E_rms² ∝ V².
  DeviceConfig hi = paper_config_on_node(paper_node());
  DeviceConfig lo = hi;
  lo.drive_amplitude = hi.technology.supply / 2.0;
  const field::HarmonicCage cage_hi = BiochipDevice(hi).calibrate_cage(5, 6);
  const field::HarmonicCage cage_lo = BiochipDevice(lo).calibrate_cage(5, 6);
  EXPECT_NEAR(cage_hi.c_r / cage_lo.c_r, 4.0, 0.2);
  EXPECT_NEAR(cage_hi.c_z / cage_lo.c_z, 4.0, 0.2);
}

TEST(Device, PowerIncreasesWithActivity) {
  const BiochipDevice dev = paper_device();
  const double idle = dev.actuation_power(0, 0.0);
  const double busy = dev.actuation_power(1000, 100.0);
  EXPECT_GT(busy, idle);
  EXPECT_LT(busy, 1.0);  // stays well under a watt
}

TEST(Device, ChamberBoundsMatchArrayAndGap) {
  const BiochipDevice dev = paper_device();
  const Aabb b = dev.chamber_bounds();
  EXPECT_NEAR(b.max.x, 320 * 20.0_um, 1e-9);
  EXPECT_NEAR(b.max.z, 100.0_um, 1e-12);
}

TEST(Device, InvalidConfigThrows) {
  DeviceConfig cfg = paper_config_on_node(paper_node());
  cfg.chamber_height = 0.0;
  EXPECT_THROW(BiochipDevice dev(cfg), PreconditionError);
  cfg = paper_config_on_node(paper_node());
  cfg.drive_frequency = 0.0;
  EXPECT_THROW(BiochipDevice dev(cfg), PreconditionError);
}

TEST(Device, LocalDomainResolution) {
  const BiochipDevice dev = paper_device();
  const field::ChamberDomain d = dev.local_domain(5, 8);
  EXPECT_NEAR(d.spacing, 2.5_um, 1e-12);
  EXPECT_EQ(d.nodes_x(), 41u);  // 5 pitches * 8 + 1
  EXPECT_THROW(dev.local_domain(4, 8), PreconditionError);  // even patch
}

}  // namespace
}  // namespace biochip::chip
