// Property-style randomized tests: invariants that must hold across random
// instances, seeds, and parameter sweeps (TEST_P suites).

#include <gtest/gtest.h>

#include <cmath>

#include "cad/route.hpp"
#include "cad/schedule.hpp"
#include "cad/synthesis.hpp"
#include "cell/library.hpp"
#include "chip/actuation.hpp"
#include "chip/defects.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "field/incremental.hpp"
#include "field/solver.hpp"
#include "fluidic/network.hpp"
#include "physics/dielectrics.hpp"

namespace biochip {
namespace {

// ------------------------------------------------------------- solver -----

class SolverGridProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverGridProperty, RandomDirichletObeysMaximumPrinciple) {
  // Random boundary values on both z-planes: the interior must stay within
  // the boundary extrema and converge for every grid size.
  const std::size_t n = GetParam();
  Grid3 phi(n, n, n, 1e-6);
  field::DirichletBc bc = field::DirichletBc::all_free(phi);
  Rng rng(n * 7919);
  double lo = 1e300, hi = -1e300;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k : {std::size_t{0}, n - 1}) {
        const double v = rng.uniform(-3.0, 3.0);
        bc.fixed[phi.index(i, j, k)] = 1;
        bc.value[phi.index(i, j, k)] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  field::SolverOptions opts;
  opts.tolerance = 1e-7;
  const field::SolveStats stats = field::solve_laplace(phi, bc, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(phi.min(), lo - 1e-5);
  EXPECT_LE(phi.max(), hi + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Grids, SolverGridProperty,
                         ::testing::Values(9u, 17u, 25u, 33u));

// ------------------------------------- incremental dirty-region windows ----

field::ChamberDomain property_tile_domain(int cols, int rows, int npp,
                                          double height_pitches) {
  constexpr double pitch = 20e-6;
  field::ChamberDomain d;
  d.spacing = pitch / static_cast<double>(npp);
  d.width_x = static_cast<double>(cols) * pitch;
  d.width_y = static_cast<double>(rows) * pitch;
  d.height = height_pitches * pitch;
  return d;
}

std::vector<Rect> property_tile_footprints(int cols, int rows) {
  constexpr double pitch = 20e-6;
  const double half = 0.5 * pitch * 0.8;
  std::vector<Rect> out;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const double cx = (static_cast<double>(c) + 0.5) * pitch;
      const double cy = (static_cast<double>(r) + 0.5) * pitch;
      out.push_back({{cx - half, cy - half}, {cx + half, cy + half}});
    }
  return out;
}

field::SolverOptions property_tracker_options() {
  field::SolverOptions opts;
  opts.tolerance = 1e-8;
  opts.incremental.tolerance = 1e-8;
  opts.incremental.window_radius_pitches = 1.5;
  opts.incremental.reanchor_period = 0;  // windowed path only
  return opts;
}

// GridBox algebra under random boxes: merge/touch/dilate/clamp invariants.
class GridBoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridBoxProperty, MergeTouchDilateClampInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  const std::size_t nx = 21, ny = 17, nz = 13;
  const auto random_box = [&] {
    field::GridBox b;
    b.i0 = static_cast<std::size_t>(rng.uniform_int(0, 20));
    b.i1 = static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(b.i0), 20));
    b.j0 = static_cast<std::size_t>(rng.uniform_int(0, 16));
    b.j1 = static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(b.j0), 16));
    b.k0 = static_cast<std::size_t>(rng.uniform_int(0, 12));
    b.k1 = static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(b.k0), 12));
    return b;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const field::GridBox a = random_box();
    const field::GridBox b = random_box();
    // touches is symmetric, and intersecting boxes always touch.
    EXPECT_EQ(a.touches(b), b.touches(a));
    if (a.intersects(b)) {
      EXPECT_TRUE(a.touches(b));
    }
    // The merge is a bounding box of both operands.
    const field::GridBox m = a.merged(b);
    EXPECT_TRUE(m.contains(a.i0, a.j0, a.k0) && m.contains(a.i1, a.j1, a.k1));
    EXPECT_TRUE(m.contains(b.i0, b.j0, b.k0) && m.contains(b.i1, b.j1, b.k1));
    // Merging with the empty box is the identity.
    EXPECT_TRUE(field::GridBox::none().merged(a) == a);
    EXPECT_TRUE(a.merged(field::GridBox::none()) == a);
    // Dilation clamped to the grid stays inside it and still covers `a`.
    const std::size_t r = static_cast<std::size_t>(rng.uniform_int(0, 7));
    const field::GridBox d = a.dilated(r).clamped(nx, ny, nz);
    EXPECT_FALSE(d.empty());
    EXPECT_LT(d.i1, nx);
    EXPECT_LT(d.j1, ny);
    EXPECT_LT(d.k1, nz);
    EXPECT_TRUE(d.contains(a.i0, a.j0, a.k0) && d.contains(a.i1, a.j1, a.k1));
    EXPECT_GE(d.volume(), a.volume());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridBoxProperty, ::testing::Range(1, 7));

// Electrode windows clamp correctly at faces, edges and corners of the tile:
// every window stays inside the grid, and windows of boundary electrodes
// saturate against the touched faces instead of wrapping or over-running.
TEST(IncrementalWindowProperty, WindowsClampAtFacesEdgesAndCorners) {
  const int cols = 5, rows = 4, npp = 3;
  field::IncrementalPotential inc(property_tile_domain(cols, rows, npp, 4.0),
                                  property_tile_footprints(cols, rows), false,
                                  20e-6, property_tracker_options());
  const std::size_t nx = inc.potential().nx();
  const std::size_t ny = inc.potential().ny();
  const std::size_t nz = inc.potential().nz();
  for (std::size_t e = 0; e < inc.electrode_count(); ++e) {
    const field::GridBox w = inc.electrode_window(e);
    EXPECT_FALSE(w.empty()) << "electrode " << e;
    EXPECT_LT(w.i1, nx) << "electrode " << e;
    EXPECT_LT(w.j1, ny) << "electrode " << e;
    EXPECT_LT(w.k1, nz) << "electrode " << e;
    EXPECT_EQ(w.k0, 0u) << "electrode " << e;  // anchored to the chip plane
  }
  // Corner electrode (0,0): the window saturates at both min faces; the far
  // corner electrode saturates at both max faces.
  EXPECT_EQ(inc.electrode_window(0).i0, 0u);
  EXPECT_EQ(inc.electrode_window(0).j0, 0u);
  const std::size_t far = inc.electrode_count() - 1;
  EXPECT_EQ(inc.electrode_window(far).i1, nx - 1);
  EXPECT_EQ(inc.electrode_window(far).j1, ny - 1);
  // Edge electrode (2,0): clamped in j only.
  const field::GridBox edge = inc.electrode_window(2);
  EXPECT_EQ(edge.j0, 0u);
  EXPECT_GT(edge.i0, 0u);
  EXPECT_LT(edge.i1, nx - 1);
}

// Overlapping (or stencil-adjacent) windows of one update merge into a
// single relaxed cluster; disjoint windows stay separate.
TEST(IncrementalWindowProperty, OverlappingWindowsMergeDisjointOnesDoNot) {
  const int cols = 10, rows = 3, npp = 3;
  field::IncrementalPotential inc(property_tile_domain(cols, rows, npp, 2.0),
                                  property_tile_footprints(cols, rows), false,
                                  20e-6, property_tracker_options());
  std::vector<double> drive(inc.electrode_count(), 0.0);
  inc.update(drive);  // prime (all grounded)

  ASSERT_TRUE(inc.electrode_window(0).touches(inc.electrode_window(1)));
  drive[0] = 1.0;
  drive[1] = 1.0;  // neighbor: windows overlap
  EXPECT_EQ(inc.update(drive).windows, 1u);

  ASSERT_FALSE(inc.electrode_window(4).touches(inc.electrode_window(9)));
  drive[4] = 1.0;
  drive[9] = 1.0;  // far apart: two independent clusters
  const auto rep = inc.update(drive);
  EXPECT_EQ(rep.changed, 2u);
  EXPECT_EQ(rep.windows, 2u);
}

// An empty window is a bitwise no-op on the grid and leaves the accounting
// untouched — the zero-change contract of the dirty-region API.
TEST(IncrementalWindowProperty, EmptyWindowIsBitwiseNoOp) {
  Grid3 phi(15, 15, 9, 1e-6);
  field::DirichletBc bc = field::DirichletBc::all_free(phi);
  Rng rng(31337);
  for (std::size_t n = 0; n < phi.size(); ++n) phi.data()[n] = rng.uniform(-1.0, 1.0);
  for (std::size_t j = 0; j < phi.ny(); ++j)
    for (std::size_t i = 0; i < phi.nx(); ++i) {
      bc.fixed[phi.index(i, j, 0)] = 1;
      bc.value[phi.index(i, j, 0)] = 0.5;
    }
  const std::vector<double> before = phi.data();
  field::MultigridWorkspace ws;
  const field::SolveStats stats = ws.solve_window(phi, bc, field::GridBox::none());
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_EQ(ws.accounting().window_solves, 0u);
  EXPECT_EQ(ws.accounting().solves, 0u);
  for (std::size_t n = 0; n < phi.size(); ++n)
    ASSERT_EQ(phi.data()[n], before[n]) << "node " << n;
}

// Relaxing a window never increases the residual inside the box, and a
// converged windowed solve leaves it near the sweep tolerance.
class WindowResidualProperty : public ::testing::TestWithParam<int> {};

TEST_P(WindowResidualProperty, ResidualDecreasesMonotonically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  const int cols = 6, rows = 5, npp = 3;
  field::SolverOptions opts = property_tracker_options();
  field::IncrementalPotential inc(property_tile_domain(cols, rows, npp, 3.0),
                                  property_tile_footprints(cols, rows), false,
                                  20e-6, opts);
  std::vector<double> drive(inc.electrode_count(), 0.0);
  const std::size_t hot = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(inc.electrode_count()) - 1));
  drive[hot] = 1.0;
  inc.update(drive);  // prime

  // Perturb the hot electrode; measure the residual of its window before and
  // after the windowed solve on a scratch copy of the cached state.
  drive[hot] = rng.uniform(0.2, 0.8);
  field::DirichletBc bc = inc.boundary();
  const field::GridBox box = inc.electrode_window(hot);
  Grid3 phi = inc.potential();
  field::MultigridWorkspace ws;
  // Write the new electrode value into the BC the way update() does, and
  // apply it to the grid so `before` sees the perturbation the solve starts
  // from (solve_window applies the Dirichlet data before sweeping).
  for (std::size_t n = 0; n < bc.fixed.size(); ++n)
    if (bc.fixed[n] && bc.value[n] == 1.0) {
      bc.value[n] = drive[hot];
      phi.data()[n] = drive[hot];
    }
  const double before = ws.window_residual(phi, bc, box);
  EXPECT_GT(before, opts.incremental.tolerance);  // the perturbation is visible
  const field::SolveStats stats = ws.solve_window(phi, bc, box, opts);
  const double after = ws.window_residual(phi, bc, box);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(after, before);
  EXPECT_LT(after, 64.0 * opts.incremental.tolerance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowResidualProperty, ::testing::Range(1, 9));

// -------------------------------------------------------- dielectrics -----

class RandomParticleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomParticleProperty, CmBoundsAndHighFrequencyLimit) {
  // Random shelled particles: Re K bounded; at high frequency K approaches
  // the pure permittivity contrast.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u);
  const physics::Medium medium = physics::dep_buffer();
  physics::ParticleDielectric p;
  p.body = {rng.uniform(2.0, 80.0), rng.uniform(1e-6, 2.0)};
  if (rng.bernoulli(0.5)) {
    p.shell = physics::DielectricMaterial{rng.uniform(2.0, 60.0), rng.uniform(1e-8, 0.1)};
    p.shell_thickness = rng.uniform(4e-9, 100e-9);
  }
  const double radius = rng.uniform(1e-6, 15e-6);
  for (double f = 1e3; f <= 1e9; f *= 10.0) {
    const auto k = physics::cm_factor(p, radius, medium, f);
    EXPECT_GE(k.real(), -0.5 - 1e-9) << f;
    EXPECT_LE(k.real(), 1.0 + 1e-9) << f;
  }
  // High-frequency limit (1 GHz): conductivities negligible.
  const double eps_body = p.body.rel_permittivity;
  const double expect =
      (eps_body - medium.rel_permittivity) / (eps_body + 2.0 * medium.rel_permittivity);
  if (!p.shell.has_value()) {
    EXPECT_NEAR(physics::cm_factor(p, radius, medium, 1e9).real(), expect, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParticleProperty, ::testing::Range(1, 13));

// ------------------------------------------------------------- router -----

struct RouterCase {
  int seed;
  bool astar;
};

class RouterProperty : public ::testing::TestWithParam<RouterCase> {};

TEST_P(RouterProperty, AnySuccessfulResultVerifies) {
  // For both routers: whatever they return, successful results must verify,
  // and failed results must list the failing ids.
  const RouterCase param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.seed) * 31337u);
  cad::RouteConfig cfg;
  cfg.cols = 32;
  cfg.rows = 32;
  std::vector<cad::RouteRequest> reqs;
  std::vector<GridCoord> froms, tos;
  for (int i = 0; i < 10; ++i) {
    const GridCoord from{static_cast<int>(rng.uniform_int(0, 31)),
                         static_cast<int>(rng.uniform_int(0, 31))};
    const GridCoord to{static_cast<int>(rng.uniform_int(0, 31)),
                       static_cast<int>(rng.uniform_int(0, 31))};
    bool ok = true;
    for (const GridCoord f : froms)
      if (chebyshev(from, f) < 2) ok = false;
    for (const GridCoord t : tos)
      if (chebyshev(to, t) < 2) ok = false;
    if (!ok) continue;
    froms.push_back(from);
    tos.push_back(to);
    reqs.push_back({static_cast<int>(reqs.size()), from, to});
  }
  const cad::RouteResult result =
      param.astar ? cad::route_astar(reqs, cfg) : cad::route_greedy(reqs, cfg);
  if (result.success) {
    EXPECT_TRUE(result.failed_ids.empty());
    EXPECT_NO_THROW(cad::verify_routes(reqs, result, cfg));
  } else {
    EXPECT_FALSE(result.failed_ids.empty());
  }
  // A* on separated random instances of this density should always succeed.
  if (param.astar) {
    EXPECT_TRUE(result.success);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RouterProperty,
                         ::testing::Values(RouterCase{1, true}, RouterCase{2, true},
                                           RouterCase{3, true}, RouterCase{4, true},
                                           RouterCase{1, false}, RouterCase{2, false},
                                           RouterCase{3, false}, RouterCase{4, false}),
                         [](const ::testing::TestParamInfo<RouterCase>& info) {
                           return std::string(info.param.astar ? "astar" : "greedy") +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// ----------------------------------------------------------- schedule -----

class RandomAssayProperty : public ::testing::TestWithParam<int> {};

cad::AssayGraph random_assay(Rng& rng) {
  // Random well-formed assay: chains of inputs merged by mixes, each sink
  // detected and wasted.
  cad::AssayGraph g("random");
  std::vector<int> open_tokens;
  const int n_inputs = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < n_inputs; ++i)
    open_tokens.push_back(g.add(cad::OpKind::kInput, {}, rng.uniform(1.0, 3.0)));
  while (open_tokens.size() > 1) {
    // Merge two random tokens.
    const auto pick = [&]() {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(open_tokens.size()) - 1));
      const int token = open_tokens[idx];
      open_tokens.erase(open_tokens.begin() + static_cast<std::ptrdiff_t>(idx));
      return token;
    };
    const int a = pick();
    const int b = pick();
    int merged = g.add(cad::OpKind::kMix, {a, b}, rng.uniform(5.0, 15.0));
    if (rng.bernoulli(0.3))
      merged = g.add(cad::OpKind::kIncubate, {merged}, rng.uniform(10.0, 40.0));
    open_tokens.push_back(merged);
  }
  const int det = g.add(cad::OpKind::kDetect, {open_tokens.front()}, 5.0);
  g.add(cad::OpKind::kOutput, {det}, 2.0);
  g.validate();
  return g;
}

TEST_P(RandomAssayProperty, SchedulersValidAndOrdered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537u);
  const cad::AssayGraph g = random_assay(rng);
  for (int mixers : {1, 2, 4}) {
    const cad::ChipResources res{mixers, 0, 2};
    const cad::Schedule lst = cad::list_schedule(g, res);
    const cad::Schedule fifo = cad::fifo_schedule(g, res);
    EXPECT_NO_THROW(cad::check_schedule(g, lst, res));
    EXPECT_NO_THROW(cad::check_schedule(g, fifo, res));
    EXPECT_GE(lst.makespan, g.critical_path() - 1e-9);
    // Unconstrained list scheduling must reach the critical path.
    const cad::Schedule free = cad::list_schedule(g, {0, 0, 0});
    EXPECT_NEAR(free.makespan, g.critical_path(), 1e-9);
  }
}

TEST_P(RandomAssayProperty, SynthesisInvariantsWhenSuccessful) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 99991u);
  const cad::AssayGraph g = random_assay(rng);
  cad::SynthesisConfig cfg;
  cfg.dims = {96, 96};
  cfg.resources = {4, 0, 2};
  const cad::SynthesisResult r = cad::synthesize(g, cfg);
  if (!r.success) {
    EXPECT_FALSE(r.issues.empty());
    return;
  }
  // Episode transfers cover every data edge exactly once.
  std::size_t edges = 0;
  for (const cad::Operation& op : g.operations()) edges += op.inputs.size();
  std::size_t transfers = 0;
  for (const cad::TransferEpisode& e : r.episodes) transfers += e.transfers.size();
  EXPECT_EQ(transfers, edges);
  EXPECT_NEAR(r.total_time, r.processing_makespan + r.transport_time, 1e-9);
  EXPECT_GE(r.processing_makespan, g.critical_path() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssayProperty, ::testing::Range(1, 11));

// ------------------------------------------------------------ defects -----

class DefectDensityProperty : public ::testing::TestWithParam<double> {};

TEST_P(DefectDensityProperty, SampledUsableFractionTracksAnalytic) {
  const double p = GetParam();
  const chip::ElectrodeArray array(256, 256, 20e-6);
  Rng rng(static_cast<std::uint64_t>(p * 1e7) + 3);
  const chip::DefectMap map = chip::sample_defects(array, p, rng);
  const double sampled = chip::usable_cage_fraction(array, map);
  const double analytic = chip::expected_usable_fraction(p);
  EXPECT_NEAR(sampled, analytic, 0.02) << p;
  // All-good yield is always <= per-site usable fraction.
  EXPECT_LE(chip::all_good_yield(array, p), analytic + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, DefectDensityProperty,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 5e-3, 2e-2));

// ---------------------------------------------------- hydraulic network ----

class LadderNetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(LadderNetworkProperty, RandomLadderConservesMassEverywhere) {
  // Random two-rail ladder network: at every interior node the signed sum of
  // channel flows vanishes (Kirchhoff), and total inflow equals total
  // outflow at the pressure pins.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  const physics::Medium medium = physics::dep_buffer();
  fluidic::HydraulicNetwork net(medium);
  const int rungs = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<int> top, bottom;
  for (int i = 0; i <= rungs; ++i) {
    top.push_back(net.add_node("t" + std::to_string(i)));
    bottom.push_back(net.add_node("b" + std::to_string(i)));
  }
  struct Edge {
    int ch;
    int a;
    int b;
  };
  std::vector<Edge> edges;
  auto channel = [&](int a, int b) {
    const double len = rng.uniform(0.5e-3, 3e-3);
    const double width = rng.uniform(200e-6, 600e-6);
    const double height = rng.uniform(40e-6, 150e-6);
    edges.push_back({net.add_channel(a, b, len, width, std::min(height, width)), a, b});
  };
  for (int i = 0; i < rungs; ++i) {
    channel(top[static_cast<std::size_t>(i)], top[static_cast<std::size_t>(i) + 1]);
    channel(bottom[static_cast<std::size_t>(i)], bottom[static_cast<std::size_t>(i) + 1]);
  }
  for (int i = 0; i <= rungs; ++i)
    channel(top[static_cast<std::size_t>(i)], bottom[static_cast<std::size_t>(i)]);
  net.set_pressure(top.front(), rng.uniform(100.0, 2000.0));
  net.set_pressure(bottom.back(), 0.0);

  const auto sol = net.solve();
  // Net flow per node.
  std::vector<double> net_flow(net.node_count(), 0.0);
  double flow_scale = 0.0;
  for (const Edge& e : edges) {
    const double q = sol.channel_flow[static_cast<std::size_t>(e.ch)];
    net_flow[static_cast<std::size_t>(e.a)] -= q;
    net_flow[static_cast<std::size_t>(e.b)] += q;
    flow_scale = std::max(flow_scale, std::fabs(q));
  }
  for (std::size_t nidx = 0; nidx < net.node_count(); ++nidx) {
    const bool pinned = (static_cast<int>(nidx) == top.front()) ||
                        (static_cast<int>(nidx) == bottom.back());
    if (!pinned) {
      EXPECT_NEAR(net_flow[nidx], 0.0, flow_scale * 1e-9) << "node " << nidx;
    }
  }
  // Source inflow equals sink outflow.
  EXPECT_NEAR(net_flow[static_cast<std::size_t>(top.front())],
              -net_flow[static_cast<std::size_t>(bottom.back())], flow_scale * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderNetworkProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------- actuation -----

class PatternProperty : public ::testing::TestWithParam<int> {};

TEST_P(PatternProperty, DiffCountIsSymmetricAndTriangleBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709u);
  const chip::ElectrodeArray array(24, 24, 20e-6);
  auto random_pattern = [&]() {
    chip::ActuationPattern p = chip::background(array);
    const int flips = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < flips; ++i)
      p.set({static_cast<int>(rng.uniform_int(0, 23)),
             static_cast<int>(rng.uniform_int(0, 23))},
            rng.bernoulli(0.5) ? chip::PhaseSel::kPhaseA : chip::PhaseSel::kGround);
    return p;
  };
  const chip::ActuationPattern a = random_pattern();
  const chip::ActuationPattern b = random_pattern();
  const chip::ActuationPattern c = random_pattern();
  EXPECT_EQ(a.diff_count(b), b.diff_count(a));
  EXPECT_EQ(a.diff_count(a), 0u);
  EXPECT_LE(a.diff_count(c), a.diff_count(b) + b.diff_count(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty, ::testing::Range(1, 7));

// ------------------------------------------------------------- stats ------

TEST(StatsProperty, WelfordMatchesDirectComputation) {
  Rng rng(42424242);
  for (int trial = 0; trial < 10; ++trial) {
    RunningStats rs;
    std::vector<double> data;
    const int n = static_cast<int>(rng.uniform_int(2, 500));
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal(rng.uniform(-5, 5), rng.uniform(0.1, 3.0));
      rs.add(v);
      data.push_back(v);
    }
    double mean = 0.0;
    for (double v : data) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : data) var += (v - mean) * (v - mean);
    var /= static_cast<double>(n - 1);
    EXPECT_NEAR(rs.mean(), mean, 1e-9 * (1.0 + std::fabs(mean)));
    EXPECT_NEAR(rs.variance(), var, 1e-9 * (1.0 + var));
  }
}

}  // namespace
}  // namespace biochip
