// Property-style randomized tests: invariants that must hold across random
// instances, seeds, and parameter sweeps (TEST_P suites).

#include <gtest/gtest.h>

#include <cmath>

#include "cad/route.hpp"
#include "cad/schedule.hpp"
#include "cad/synthesis.hpp"
#include "cell/library.hpp"
#include "chip/actuation.hpp"
#include "chip/defects.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "field/solver.hpp"
#include "fluidic/network.hpp"
#include "physics/dielectrics.hpp"

namespace biochip {
namespace {

// ------------------------------------------------------------- solver -----

class SolverGridProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverGridProperty, RandomDirichletObeysMaximumPrinciple) {
  // Random boundary values on both z-planes: the interior must stay within
  // the boundary extrema and converge for every grid size.
  const std::size_t n = GetParam();
  Grid3 phi(n, n, n, 1e-6);
  field::DirichletBc bc = field::DirichletBc::all_free(phi);
  Rng rng(n * 7919);
  double lo = 1e300, hi = -1e300;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k : {std::size_t{0}, n - 1}) {
        const double v = rng.uniform(-3.0, 3.0);
        bc.fixed[phi.index(i, j, k)] = 1;
        bc.value[phi.index(i, j, k)] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  field::SolverOptions opts;
  opts.tolerance = 1e-7;
  const field::SolveStats stats = field::solve_laplace(phi, bc, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(phi.min(), lo - 1e-5);
  EXPECT_LE(phi.max(), hi + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Grids, SolverGridProperty,
                         ::testing::Values(9u, 17u, 25u, 33u));

// -------------------------------------------------------- dielectrics -----

class RandomParticleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomParticleProperty, CmBoundsAndHighFrequencyLimit) {
  // Random shelled particles: Re K bounded; at high frequency K approaches
  // the pure permittivity contrast.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u);
  const physics::Medium medium = physics::dep_buffer();
  physics::ParticleDielectric p;
  p.body = {rng.uniform(2.0, 80.0), rng.uniform(1e-6, 2.0)};
  if (rng.bernoulli(0.5)) {
    p.shell = physics::DielectricMaterial{rng.uniform(2.0, 60.0), rng.uniform(1e-8, 0.1)};
    p.shell_thickness = rng.uniform(4e-9, 100e-9);
  }
  const double radius = rng.uniform(1e-6, 15e-6);
  for (double f = 1e3; f <= 1e9; f *= 10.0) {
    const auto k = physics::cm_factor(p, radius, medium, f);
    EXPECT_GE(k.real(), -0.5 - 1e-9) << f;
    EXPECT_LE(k.real(), 1.0 + 1e-9) << f;
  }
  // High-frequency limit (1 GHz): conductivities negligible.
  const double eps_body = p.body.rel_permittivity;
  const double expect =
      (eps_body - medium.rel_permittivity) / (eps_body + 2.0 * medium.rel_permittivity);
  if (!p.shell.has_value()) {
    EXPECT_NEAR(physics::cm_factor(p, radius, medium, 1e9).real(), expect, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParticleProperty, ::testing::Range(1, 13));

// ------------------------------------------------------------- router -----

struct RouterCase {
  int seed;
  bool astar;
};

class RouterProperty : public ::testing::TestWithParam<RouterCase> {};

TEST_P(RouterProperty, AnySuccessfulResultVerifies) {
  // For both routers: whatever they return, successful results must verify,
  // and failed results must list the failing ids.
  const RouterCase param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.seed) * 31337u);
  cad::RouteConfig cfg;
  cfg.cols = 32;
  cfg.rows = 32;
  std::vector<cad::RouteRequest> reqs;
  std::vector<GridCoord> froms, tos;
  for (int i = 0; i < 10; ++i) {
    const GridCoord from{static_cast<int>(rng.uniform_int(0, 31)),
                         static_cast<int>(rng.uniform_int(0, 31))};
    const GridCoord to{static_cast<int>(rng.uniform_int(0, 31)),
                       static_cast<int>(rng.uniform_int(0, 31))};
    bool ok = true;
    for (const GridCoord f : froms)
      if (chebyshev(from, f) < 2) ok = false;
    for (const GridCoord t : tos)
      if (chebyshev(to, t) < 2) ok = false;
    if (!ok) continue;
    froms.push_back(from);
    tos.push_back(to);
    reqs.push_back({static_cast<int>(reqs.size()), from, to});
  }
  const cad::RouteResult result =
      param.astar ? cad::route_astar(reqs, cfg) : cad::route_greedy(reqs, cfg);
  if (result.success) {
    EXPECT_TRUE(result.failed_ids.empty());
    EXPECT_NO_THROW(cad::verify_routes(reqs, result, cfg));
  } else {
    EXPECT_FALSE(result.failed_ids.empty());
  }
  // A* on separated random instances of this density should always succeed.
  if (param.astar) {
    EXPECT_TRUE(result.success);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RouterProperty,
                         ::testing::Values(RouterCase{1, true}, RouterCase{2, true},
                                           RouterCase{3, true}, RouterCase{4, true},
                                           RouterCase{1, false}, RouterCase{2, false},
                                           RouterCase{3, false}, RouterCase{4, false}),
                         [](const ::testing::TestParamInfo<RouterCase>& info) {
                           return std::string(info.param.astar ? "astar" : "greedy") +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// ----------------------------------------------------------- schedule -----

class RandomAssayProperty : public ::testing::TestWithParam<int> {};

cad::AssayGraph random_assay(Rng& rng) {
  // Random well-formed assay: chains of inputs merged by mixes, each sink
  // detected and wasted.
  cad::AssayGraph g("random");
  std::vector<int> open_tokens;
  const int n_inputs = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < n_inputs; ++i)
    open_tokens.push_back(g.add(cad::OpKind::kInput, {}, rng.uniform(1.0, 3.0)));
  while (open_tokens.size() > 1) {
    // Merge two random tokens.
    const auto pick = [&]() {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(open_tokens.size()) - 1));
      const int token = open_tokens[idx];
      open_tokens.erase(open_tokens.begin() + static_cast<std::ptrdiff_t>(idx));
      return token;
    };
    const int a = pick();
    const int b = pick();
    int merged = g.add(cad::OpKind::kMix, {a, b}, rng.uniform(5.0, 15.0));
    if (rng.bernoulli(0.3))
      merged = g.add(cad::OpKind::kIncubate, {merged}, rng.uniform(10.0, 40.0));
    open_tokens.push_back(merged);
  }
  const int det = g.add(cad::OpKind::kDetect, {open_tokens.front()}, 5.0);
  g.add(cad::OpKind::kOutput, {det}, 2.0);
  g.validate();
  return g;
}

TEST_P(RandomAssayProperty, SchedulersValidAndOrdered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537u);
  const cad::AssayGraph g = random_assay(rng);
  for (int mixers : {1, 2, 4}) {
    const cad::ChipResources res{mixers, 0, 2};
    const cad::Schedule lst = cad::list_schedule(g, res);
    const cad::Schedule fifo = cad::fifo_schedule(g, res);
    EXPECT_NO_THROW(cad::check_schedule(g, lst, res));
    EXPECT_NO_THROW(cad::check_schedule(g, fifo, res));
    EXPECT_GE(lst.makespan, g.critical_path() - 1e-9);
    // Unconstrained list scheduling must reach the critical path.
    const cad::Schedule free = cad::list_schedule(g, {0, 0, 0});
    EXPECT_NEAR(free.makespan, g.critical_path(), 1e-9);
  }
}

TEST_P(RandomAssayProperty, SynthesisInvariantsWhenSuccessful) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 99991u);
  const cad::AssayGraph g = random_assay(rng);
  cad::SynthesisConfig cfg;
  cfg.dims = {96, 96};
  cfg.resources = {4, 0, 2};
  const cad::SynthesisResult r = cad::synthesize(g, cfg);
  if (!r.success) {
    EXPECT_FALSE(r.issues.empty());
    return;
  }
  // Episode transfers cover every data edge exactly once.
  std::size_t edges = 0;
  for (const cad::Operation& op : g.operations()) edges += op.inputs.size();
  std::size_t transfers = 0;
  for (const cad::TransferEpisode& e : r.episodes) transfers += e.transfers.size();
  EXPECT_EQ(transfers, edges);
  EXPECT_NEAR(r.total_time, r.processing_makespan + r.transport_time, 1e-9);
  EXPECT_GE(r.processing_makespan, g.critical_path() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssayProperty, ::testing::Range(1, 11));

// ------------------------------------------------------------ defects -----

class DefectDensityProperty : public ::testing::TestWithParam<double> {};

TEST_P(DefectDensityProperty, SampledUsableFractionTracksAnalytic) {
  const double p = GetParam();
  const chip::ElectrodeArray array(256, 256, 20e-6);
  Rng rng(static_cast<std::uint64_t>(p * 1e7) + 3);
  const chip::DefectMap map = chip::sample_defects(array, p, rng);
  const double sampled = chip::usable_cage_fraction(array, map);
  const double analytic = chip::expected_usable_fraction(p);
  EXPECT_NEAR(sampled, analytic, 0.02) << p;
  // All-good yield is always <= per-site usable fraction.
  EXPECT_LE(chip::all_good_yield(array, p), analytic + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, DefectDensityProperty,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 5e-3, 2e-2));

// ---------------------------------------------------- hydraulic network ----

class LadderNetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(LadderNetworkProperty, RandomLadderConservesMassEverywhere) {
  // Random two-rail ladder network: at every interior node the signed sum of
  // channel flows vanishes (Kirchhoff), and total inflow equals total
  // outflow at the pressure pins.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  const physics::Medium medium = physics::dep_buffer();
  fluidic::HydraulicNetwork net(medium);
  const int rungs = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<int> top, bottom;
  for (int i = 0; i <= rungs; ++i) {
    top.push_back(net.add_node("t" + std::to_string(i)));
    bottom.push_back(net.add_node("b" + std::to_string(i)));
  }
  struct Edge {
    int ch;
    int a;
    int b;
  };
  std::vector<Edge> edges;
  auto channel = [&](int a, int b) {
    const double len = rng.uniform(0.5e-3, 3e-3);
    const double width = rng.uniform(200e-6, 600e-6);
    const double height = rng.uniform(40e-6, 150e-6);
    edges.push_back({net.add_channel(a, b, len, width, std::min(height, width)), a, b});
  };
  for (int i = 0; i < rungs; ++i) {
    channel(top[static_cast<std::size_t>(i)], top[static_cast<std::size_t>(i) + 1]);
    channel(bottom[static_cast<std::size_t>(i)], bottom[static_cast<std::size_t>(i) + 1]);
  }
  for (int i = 0; i <= rungs; ++i)
    channel(top[static_cast<std::size_t>(i)], bottom[static_cast<std::size_t>(i)]);
  net.set_pressure(top.front(), rng.uniform(100.0, 2000.0));
  net.set_pressure(bottom.back(), 0.0);

  const auto sol = net.solve();
  // Net flow per node.
  std::vector<double> net_flow(net.node_count(), 0.0);
  double flow_scale = 0.0;
  for (const Edge& e : edges) {
    const double q = sol.channel_flow[static_cast<std::size_t>(e.ch)];
    net_flow[static_cast<std::size_t>(e.a)] -= q;
    net_flow[static_cast<std::size_t>(e.b)] += q;
    flow_scale = std::max(flow_scale, std::fabs(q));
  }
  for (std::size_t nidx = 0; nidx < net.node_count(); ++nidx) {
    const bool pinned = (static_cast<int>(nidx) == top.front()) ||
                        (static_cast<int>(nidx) == bottom.back());
    if (!pinned) {
      EXPECT_NEAR(net_flow[nidx], 0.0, flow_scale * 1e-9) << "node " << nidx;
    }
  }
  // Source inflow equals sink outflow.
  EXPECT_NEAR(net_flow[static_cast<std::size_t>(top.front())],
              -net_flow[static_cast<std::size_t>(bottom.back())], flow_scale * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderNetworkProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------- actuation -----

class PatternProperty : public ::testing::TestWithParam<int> {};

TEST_P(PatternProperty, DiffCountIsSymmetricAndTriangleBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709u);
  const chip::ElectrodeArray array(24, 24, 20e-6);
  auto random_pattern = [&]() {
    chip::ActuationPattern p = chip::background(array);
    const int flips = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < flips; ++i)
      p.set({static_cast<int>(rng.uniform_int(0, 23)),
             static_cast<int>(rng.uniform_int(0, 23))},
            rng.bernoulli(0.5) ? chip::PhaseSel::kPhaseA : chip::PhaseSel::kGround);
    return p;
  };
  const chip::ActuationPattern a = random_pattern();
  const chip::ActuationPattern b = random_pattern();
  const chip::ActuationPattern c = random_pattern();
  EXPECT_EQ(a.diff_count(b), b.diff_count(a));
  EXPECT_EQ(a.diff_count(a), 0u);
  EXPECT_LE(a.diff_count(c), a.diff_count(b) + b.diff_count(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty, ::testing::Range(1, 7));

// ------------------------------------------------------------- stats ------

TEST(StatsProperty, WelfordMatchesDirectComputation) {
  Rng rng(42424242);
  for (int trial = 0; trial < 10; ++trial) {
    RunningStats rs;
    std::vector<double> data;
    const int n = static_cast<int>(rng.uniform_int(2, 500));
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal(rng.uniform(-5, 5), rng.uniform(0.1, 3.0));
      rs.add(v);
      data.push_back(v);
    }
    double mean = 0.0;
    for (double v : data) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : data) var += (v - mean) * (v - mean);
    var /= static_cast<double>(n - 1);
    EXPECT_NEAR(rs.mean(), mean, 1e-9 * (1.0 + std::fabs(mean)));
    EXPECT_NEAR(rs.variance(), var, 1e-9 * (1.0 + var));
  }
}

}  // namespace
}  // namespace biochip
