// Tests for module binding (HLS-style module selection) and ROC utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "cad/benchmarks.hpp"
#include "cad/binding.hpp"
#include "common/error.hpp"
#include "sensor/frame.hpp"
#include "sensor/roc.hpp"

namespace biochip {
namespace {

// ----------------------------------------------------------------- binding ----

TEST(Binding, DefaultLibrarySane) {
  const cad::ModuleLibrary lib = cad::default_module_library();
  ASSERT_GE(lib.types.size(), 2u);
  for (const cad::ModuleType& t : lib.types) {
    EXPECT_GT(t.side, 0);
    EXPECT_GT(t.duration_factor, 0.0);
    EXPECT_GE(t.count, 1);
  }
}

TEST(Binding, BoundScheduleValidOnSuite) {
  const cad::ModuleLibrary lib = cad::default_module_library();
  for (const cad::AssayGraph& g : cad::benchmark_suite()) {
    const cad::BoundSchedule bound = cad::bind_list_schedule(g, lib);
    EXPECT_NO_THROW(cad::check_bound_schedule(g, lib, bound)) << g.name();
    EXPECT_GT(bound.makespan, 0.0);
  }
}

TEST(Binding, ProcessingOpsGetModulesOthersDoNot) {
  const cad::AssayGraph g = cad::pcr_mix(2);
  const cad::BoundSchedule bound =
      cad::bind_list_schedule(g, cad::default_module_library());
  for (const cad::Operation& op : g.operations()) {
    const int type = bound.binding[static_cast<std::size_t>(op.id)];
    if (op.kind == cad::OpKind::kMix) {
      EXPECT_GE(type, 0) << op.label;
    }
    else
      EXPECT_EQ(type, -1) << op.label;
  }
}

TEST(Binding, FastModulesShortenMakespan) {
  const cad::AssayGraph g = cad::pcr_mix(3);
  cad::ModuleLibrary slow;
  slow.types = {{"std", 6, 1.0, 4}};
  cad::ModuleLibrary fast;
  fast.types = {{"fast", 8, 0.5, 4}};
  const double m_slow = cad::bind_list_schedule(g, slow).makespan;
  const double m_fast = cad::bind_list_schedule(g, fast).makespan;
  EXPECT_LT(m_fast, m_slow);
  // All mixes halved: mixing part of the critical path halves too.
  EXPECT_NEAR(m_slow - m_fast, 3 * 10.0 * 0.5, 1e-9);  // 3 mix levels on CP
}

TEST(Binding, ScarceFastModulesStillBeatUniformSlow) {
  // 2 fast + many compact beats all-compact on a wide assay.
  const cad::AssayGraph g = cad::invitro_diagnostics(3, 3);
  cad::ModuleLibrary compact;
  compact.types = {{"compact", 4, 1.6, 8}};
  const cad::ModuleLibrary mixed = cad::default_module_library();
  const double m_compact = cad::bind_list_schedule(g, compact).makespan;
  const double m_mixed = cad::bind_list_schedule(g, mixed).makespan;
  EXPECT_LT(m_mixed, m_compact);
}

TEST(Binding, EmptyLibraryThrows) {
  EXPECT_THROW(cad::bind_list_schedule(cad::pcr_mix(2), cad::ModuleLibrary{}),
               ConfigError);
}

TEST(Binding, CheckCatchesTampering) {
  const cad::AssayGraph g = cad::pcr_mix(2);
  const cad::ModuleLibrary lib = cad::default_module_library();
  cad::BoundSchedule bound = cad::bind_list_schedule(g, lib);
  cad::BoundSchedule broken = bound;
  // Claim a mix ran at fast speed while bound to a slow type.
  for (const cad::Operation& op : g.operations()) {
    if (op.kind != cad::OpKind::kMix) continue;
    broken.schedule.ops[static_cast<std::size_t>(op.id)].end -= 1.0;
    break;
  }
  EXPECT_THROW(cad::check_bound_schedule(g, lib, broken), PreconditionError);
}

// --------------------------------------------------------------------- roc ----

class RocTest : public ::testing::Test {
 protected:
  chip::ElectrodeArray array_{32, 32, 20.0e-6};
  sensor::CapacitivePixel pixel_ = [] {
    sensor::CapacitivePixel px;
    px.electrode_area = 16.0e-6 * 16.0e-6;
    px.chamber_height = 100.0e-6;
    px.sense_voltage = 3.3;
    return px;
  }();
  sensor::FrameSynthesizer synth_{array_, pixel_, 298.15, 2024};
  std::vector<sensor::FrameTarget> targets_ = {
      {{120.0e-6, 120.0e-6, 5.5e-6}, 5.0e-6},
      {{420.0e-6, 200.0e-6, 5.5e-6}, 5.0e-6},
      {{280.0e-6, 500.0e-6, 5.5e-6}, 5.0e-6},
  };
  std::vector<Vec2> truth_ = {{120.0e-6, 120.0e-6}, {420.0e-6, 200.0e-6},
                              {280.0e-6, 500.0e-6}};
};

TEST_F(RocTest, LogThresholdsDescendingAndBounded) {
  const auto th = sensor::log_thresholds(1e-18, 1e-15, 7);
  ASSERT_EQ(th.size(), 7u);
  EXPECT_NEAR(th.front(), 1e-15, 1e-18);
  EXPECT_NEAR(th.back(), 1e-18, 1e-21);
  for (std::size_t i = 1; i < th.size(); ++i) EXPECT_LT(th[i], th[i - 1]);
}

TEST_F(RocTest, RecallMonotonicAboveNoiseFloor) {
  // Monotonicity holds in the clean regime (threshold >= ~3 sigma of the
  // averaged frame). Below the floor, clusters merge and recall collapses —
  // that flood regime is exercised in FloodRegimeMergesClusters.
  Rng rng(5);
  const Grid2 frame = synth_.averaged_frame(targets_, rng, 64);
  const double sigma = synth_.cds_noise_sigma() / 8.0;  // N=64 averaging
  const auto sweep = sensor::roc_sweep(
      frame, array_, truth_, sensor::log_thresholds(3.0 * sigma, 100.0 * sigma, 9),
      40e-6);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_GE(sweep[i].recall, sweep[i - 1].recall - 1e-12);
  EXPECT_DOUBLE_EQ(sweep.back().recall, 1.0);  // all cells found at 3 sigma
}

TEST_F(RocTest, FloodRegimeMergesClusters) {
  // Far below the noise floor every pixel fires, clusters merge, and the
  // detector degenerates to ~one giant detection: recall collapses.
  Rng rng(15);
  const Grid2 frame = synth_.averaged_frame(targets_, rng, 64);
  const double sigma = synth_.cds_noise_sigma() / 8.0;
  const auto flood = sensor::roc_sweep(frame, array_, truth_, {sigma / 50.0}, 40e-6);
  EXPECT_LT(flood.front().recall, 1.0);
}

TEST_F(RocTest, HighSnrFrameHasPerfectOperatingPoint) {
  Rng rng(6);
  const Grid2 frame = synth_.averaged_frame(targets_, rng, 256);
  const double sigma = synth_.cds_noise_sigma() / 16.0;
  const auto sweep =
      sensor::roc_sweep(frame, array_, truth_, {5.0 * sigma}, 40e-6);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep.front().recall, 1.0);
  EXPECT_DOUBLE_EQ(sweep.front().precision, 1.0);
}

TEST_F(RocTest, AveragePrecisionImprovesWithAveraging) {
  Rng rng(7);
  auto ap_at = [&](std::size_t n_frames) {
    const Grid2 frame = synth_.averaged_frame(targets_, rng, n_frames);
    // Sweep relative to the frame's actual (averaged) noise level.
    const double sigma =
        synth_.cds_noise_sigma() / std::sqrt(static_cast<double>(n_frames));
    const auto sweep = sensor::roc_sweep(
        frame, array_, truth_, sensor::log_thresholds(2.0 * sigma, 200.0 * sigma, 15),
        40e-6);
    return sensor::average_precision(sweep);
  };
  // Average over a few frames to damp luck.
  double ap1 = 0.0, ap64 = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    ap1 += ap_at(1);
    ap64 += ap_at(64);
  }
  EXPECT_GT(ap64, ap1);
  EXPECT_GT(ap64 / 5.0, 0.9);
}

TEST_F(RocTest, Validation) {
  EXPECT_THROW(sensor::log_thresholds(0.0, 1.0, 5), PreconditionError);
  EXPECT_THROW(sensor::average_precision({}), PreconditionError);
  Grid2 empty(4, 4, 20e-6);
  EXPECT_THROW(sensor::roc_sweep(empty, array_, truth_, {}, 1e-6), PreconditionError);
}

}  // namespace
}  // namespace biochip
