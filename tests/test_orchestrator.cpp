// Tests for the multi-chamber orchestration layer: ChamberNetwork topology,
// end-to-end cross-chamber handoff, admission denial + backoff under
// destination congestion, defect-blocked ports failing explicitly, and
// pooled-vs-serial bitwise identity with >= 3 chambers.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/error.hpp"
#include "control/orchestrator.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "physics/medium.hpp"

namespace biochip::control {
namespace {

// ------------------------------------------------------- chamber network ----

fluidic::Microchamber chamber_geometry(const chip::DeviceConfig& cfg) {
  fluidic::Microchamber c;
  c.length = cfg.cols * cfg.pitch;
  c.width = cfg.rows * cfg.pitch;
  c.height = cfg.chamber_height;
  return c;
}

TEST(ChamberNetworkTest, TopologyQueriesAndValidation) {
  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = 16;
  cfg.rows = 16;
  const fluidic::Microchamber geo = chamber_geometry(cfg);

  fluidic::ChamberNetwork net;
  const int a = net.add_chamber(geo, 16, 16);
  const int b = net.add_chamber(geo, 16, 16);
  const int c = net.add_chamber(geo, 16, 16);
  const int p0 = net.add_port(a, {14, 8}, b, {1, 8}, 500e-6, 60e-6);
  const int p1 = net.add_port(b, {14, 8}, c, {1, 8}, 500e-6, 60e-6);

  EXPECT_EQ(net.chamber_count(), 3u);
  EXPECT_EQ(net.port_count(), 2u);
  EXPECT_TRUE(net.connected(a, b));
  EXPECT_TRUE(net.connected(b, a));  // ports are bidirectional
  EXPECT_FALSE(net.connected(a, c));
  ASSERT_TRUE(net.port_between(b, c).has_value());
  EXPECT_EQ(*net.port_between(b, c), p1);
  EXPECT_EQ(net.port_site(p0, a), (GridCoord{14, 8}));
  EXPECT_EQ(net.port_site(p0, b), (GridCoord{1, 8}));
  EXPECT_EQ(net.ports_of(b), (std::vector<int>{p0, p1}));
  EXPECT_THROW(net.port_site(p0, c), PreconditionError);

  // Invalid elements are rejected up front.
  EXPECT_THROW(net.add_port(a, {20, 8}, b, {1, 8}, 500e-6, 60e-6), Error);
  EXPECT_THROW(net.add_port(a, {14, 8}, a, {1, 8}, 500e-6, 60e-6), Error);
  EXPECT_THROW(net.add_chamber(geo, 0, 16), ConfigError);

  // The topology doubles as a hydraulic circuit: node ids = chamber ids.
  fluidic::HydraulicNetwork hyd = net.hydraulics(physics::dep_buffer());
  EXPECT_EQ(hyd.node_count(), 3u);
  EXPECT_EQ(hyd.channel_count(), 2u);
  hyd.set_pressure(a, 200.0);
  hyd.set_pressure(c, 0.0);
  const auto sol = hyd.solve();
  EXPECT_GT(sol.channel_flow[0], 0.0);  // a → b → c
  EXPECT_NEAR(sol.channel_flow[0], sol.channel_flow[1], 1e-18);
}

// ------------------------------------------------------ episode fixtures ----

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  // A caged cell without an intra-chamber goal (transfer cages get their
  // port goal from the orchestrator).
  int add_cell(GridCoord site) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius,
                      spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    return id;
  }

  ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

class OrchestratorTest : public ::testing::Test {
 protected:
  OrchestratorTest() {
    cfg_ = chip::paper_config_on_node(chip::paper_node());
    cfg_.cols = 16;
    cfg_.rows = 16;
    cage_ = chip::BiochipDevice(cfg_).calibrate_cage(5, 6);
  }

  std::unique_ptr<World> make_world() const {
    return std::make_unique<World>(cfg_, cage_);
  }

  /// a → b → c chain with ports at {14,8} / {1,8} on each side.
  fluidic::ChamberNetwork chain(std::size_t n) const {
    fluidic::ChamberNetwork net;
    const fluidic::Microchamber geo = chamber_geometry(cfg_);
    for (std::size_t c = 0; c < n; ++c) net.add_chamber(geo, 16, 16);
    for (std::size_t c = 0; c + 1 < n; ++c)
      net.add_port(static_cast<int>(c), {14, 8}, static_cast<int>(c) + 1, {1, 8},
                   500e-6, 60e-6);
    return net;
  }

  chip::DeviceConfig cfg_;
  field::HarmonicCage cage_;
};

// A cell caged in chamber 0 is towed to the port, handed off on a
// TransferRequest, admitted and routed by chamber 1's supervisor through its
// own reservation table, and delivered at the final goal — end to end.
TEST_F(OrchestratorTest, HandoffDeliversEndToEnd) {
  fluidic::ChamberNetwork net = chain(2);
  auto w0 = make_world();
  auto w1 = make_world();
  const int cage = w0->add_cell({10, 8});

  OrchestratorConfig config;
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage, 1, {12, 8}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(2026), nullptr);

  ASSERT_TRUE(report.planned);
  ASSERT_EQ(report.transfers.size(), 1u);
  const TransferOutcome& out = report.transfers[0];
  EXPECT_EQ(out.phase, TransferPhase::kDelivered);
  EXPECT_EQ(report.delivered_transfers, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(report.failed_transfers.empty());
  EXPECT_GE(out.handoff_tick, 1);
  ASSERT_GE(out.dest_cage_id, 0);

  // Audit trail: request in the source chamber, admission + delivery in the
  // destination chamber.
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kTransferRequested), 1u);
  EXPECT_EQ(count_events(report.chambers[1].events, EventKind::kTransferAdmitted), 1u);
  EXPECT_EQ(report.transfer_requests, 1u);
  EXPECT_EQ(report.admissions, 1u);

  // The transfer is accounted exactly once, globally: neither chamber's
  // intra-chamber books mention the handed-off cage.
  EXPECT_TRUE(report.chambers[1].delivered_ids.empty());
  EXPECT_TRUE(report.chambers[0].delivered_ids.empty());
  EXPECT_TRUE(report.chambers[0].failed_ids.empty());
  // The cell physically sits in the destination trap basin.
  const Vec3 trap = w1->engine.field_model().trap_center({12, 8});
  ASSERT_FALSE(w1->bodies.empty());
  EXPECT_LE((w1->bodies.back().position - trap).norm(),
            w1->engine.field_model().capture_radius());
}

// Two transfers from different source chambers converge on adjacent port
// sites of one destination: the second admission finds the first cage still
// inside the separation ring and is denied, backs off, and is admitted once
// the first cage moves on. Both deliver.
TEST_F(OrchestratorTest, CongestedDestinationDeniesThenAdmits) {
  fluidic::ChamberNetwork net;
  const fluidic::Microchamber geo = chamber_geometry(cfg_);
  for (int c = 0; c < 3; ++c) net.add_chamber(geo, 16, 16);
  net.add_port(0, {14, 8}, 2, {1, 8}, 500e-6, 60e-6);
  net.add_port(1, {14, 8}, 2, {1, 9}, 500e-6, 60e-6);

  auto w0 = make_world();
  auto w1 = make_world();
  auto w2 = make_world();
  const int cage_a = w0->add_cell({10, 8});
  const int cage_b = w1->add_cell({10, 8});

  OrchestratorConfig config;
  config.transfer_backoff = 4;
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup(), w2->setup()};
  const std::vector<TransferGoal> transfers{{0, cage_a, 2, {12, 6}},
                                            {1, cage_b, 2, {12, 10}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(31), nullptr);

  ASSERT_TRUE(report.planned);
  // Both cages reach their ports on the same tick; transfer 0 is admitted
  // first, so transfer 1's port site {1,9} is chebyshev-1 from the fresh
  // cage at {1,8} and must be denied at least once.
  EXPECT_GE(report.denials, 1u);
  EXPECT_GE(report.transfers[1].denials, 1);
  EXPECT_EQ(count_events(report.chambers[1].events, EventKind::kTransferDenied),
            static_cast<std::size_t>(report.transfers[1].denials));
  // Backoff: retries are spaced, not hammered every tick.
  EXPECT_LE(report.transfers[1].requests, 1 + report.transfers[1].denials);
  EXPECT_GE(report.transfers[1].handoff_tick,
            report.transfers[0].handoff_tick + config.transfer_backoff);
  // Congestion is transient: both transfers deliver.
  EXPECT_EQ(report.delivered_transfers, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(report.transfers[0].phase, TransferPhase::kDelivered);
  EXPECT_EQ(report.transfers[1].phase, TransferPhase::kDelivered);
}

// A port whose destination neighborhood fails `site_usable` can never hold
// the receiving cage: the transfer fails explicitly (event + global failure
// accounting), nothing crashes, and unrelated goals still deliver.
TEST_F(OrchestratorTest, DefectBlockedPortFailsExplicitly) {
  fluidic::ChamberNetwork net = chain(2);
  auto w0 = make_world();
  auto w1 = make_world();
  const int cage = w0->add_cell({10, 8});
  // An intra-chamber goal in the destination keeps working throughout.
  const int local = w1->add_cell({4, 3});
  w1->goals.push_back({local, {12, 3}});
  // Kill the destination port pixel: {1,8} fails site_usable.
  w1->defects.set_state({1, 8}, chip::PixelState::kDead);

  OrchestratorConfig config;
  Orchestrator orch(net, config);
  std::vector<ChamberSetup> chambers{w0->setup(), w1->setup()};
  const std::vector<TransferGoal> transfers{{0, cage, 1, {12, 8}}};
  const OrchestratorReport report =
      orch.run(chambers, transfers, Rng(77), nullptr);

  ASSERT_TRUE(report.planned);
  EXPECT_EQ(report.transfers[0].phase, TransferPhase::kFailed);
  EXPECT_EQ(report.failed_transfers, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(report.delivered_transfers.empty());
  EXPECT_EQ(report.admissions, 0u);
  // The failure is an explicit event in the source chamber, and the port
  // leg is not double-counted as an intra-chamber delivery there.
  EXPECT_EQ(count_events(report.chambers[0].events, EventKind::kDeliveryFailed), 1u);
  EXPECT_TRUE(report.chambers[0].delivered_ids.empty());
  // The unrelated local goal in the destination chamber still delivered.
  EXPECT_EQ(report.chambers[1].delivered_ids, std::vector<int>{local});

  // Same explicit fail-fast when the *final destination* (not the port) is
  // defect-blocked: no admission can ever route there, so the transfer must
  // not burn the budget in deny/backoff cycles.
  auto w2 = make_world();
  auto w3 = make_world();
  const int cage2 = w2->add_cell({10, 8});
  w3->defects.set_state({12, 8}, chip::PixelState::kDead);
  std::vector<ChamberSetup> chambers2{w2->setup(), w3->setup()};
  const OrchestratorReport report2 =
      orch.run(chambers2, {{0, cage2, 1, {12, 8}}}, Rng(78), nullptr);
  ASSERT_TRUE(report2.planned);
  EXPECT_EQ(report2.transfers[0].phase, TransferPhase::kFailed);
  EXPECT_EQ(report2.failed_transfers, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report2.denials, 0u);  // fail-fast, not deny/backoff
}

// Bitwise identity of the pooled chamber fan-out vs the serial reference on
// a 3-chamber chain with transfers, intra-chamber goals, scripted and
// random escapes: same trajectories, same event logs, same accounting.
TEST_F(OrchestratorTest, PooledBitwiseIdenticalToSerialWithThreeChambers) {
  const auto run_once = [&](std::size_t max_parts) {
    fluidic::ChamberNetwork net = chain(3);
    auto w0 = make_world();
    auto w1 = make_world();
    auto w2 = make_world();
    const int cage_a = w0->add_cell({10, 8});   // transfer 0 → chamber 1
    const int cage_b = w1->add_cell({3, 12});   // transfer 1 → chamber 2
    const int local = w2->add_cell({4, 3});     // intra-chamber goal
    w2->goals.push_back({local, {12, 3}});

    OrchestratorConfig config;
    config.control.escape_rate = 0.002;
    config.control.forced_escapes = {{3, cage_a}};
    Orchestrator orch(net, config);
    std::vector<ChamberSetup> chambers{w0->setup(), w1->setup(), w2->setup()};
    const std::vector<TransferGoal> transfers{{0, cage_a, 1, {12, 8}},
                                              {1, cage_b, 2, {12, 10}}};
    Rng rng(90210);
    const OrchestratorReport report = core::ClosedLoopTransporter::execute_orchestrated(
        orch, chambers, transfers, rng, max_parts);

    std::vector<Vec3> positions;
    for (const World* w : {w0.get(), w1.get(), w2.get()})
      for (const physics::ParticleBody& b : w->bodies) positions.push_back(b.position);
    return std::make_pair(report, positions);
  };

  const auto [serial, serial_pos] = run_once(1);
  const auto [pooled, pooled_pos] = run_once(0);

  ASSERT_TRUE(serial.planned);
  ASSERT_EQ(serial_pos.size(), pooled_pos.size());
  for (std::size_t n = 0; n < serial_pos.size(); ++n)
    ASSERT_EQ(serial_pos[n], pooled_pos[n]) << "body " << n;

  EXPECT_EQ(serial.ticks, pooled.ticks);
  EXPECT_EQ(serial.transfer_requests, pooled.transfer_requests);
  EXPECT_EQ(serial.admissions, pooled.admissions);
  EXPECT_EQ(serial.denials, pooled.denials);
  EXPECT_EQ(serial.delivered_transfers, pooled.delivered_transfers);
  EXPECT_EQ(serial.failed_transfers, pooled.failed_transfers);
  ASSERT_EQ(serial.chambers.size(), pooled.chambers.size());
  for (std::size_t c = 0; c < serial.chambers.size(); ++c) {
    const EpisodeReport& a = serial.chambers[c];
    const EpisodeReport& b = pooled.chambers[c];
    EXPECT_EQ(a.delivered_ids, b.delivered_ids) << "chamber " << c;
    EXPECT_EQ(a.failed_ids, b.failed_ids) << "chamber " << c;
    ASSERT_EQ(a.events.size(), b.events.size()) << "chamber " << c;
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].tick, b.events[e].tick);
      EXPECT_EQ(a.events[e].kind, b.events[e].kind);
      EXPECT_EQ(a.events[e].cage_id, b.events[e].cage_id);
    }
  }
  // The episode actually exercised the cross-chamber machinery.
  EXPECT_EQ(serial.transfer_requests, 2u);
  EXPECT_EQ(serial.admissions, 2u);
}

}  // namespace
}  // namespace biochip::control
