// Edge-case tests for utility corners not covered elsewhere: logging,
// table/SI formatting, geometry printing, timing and scan boundaries.

#include <gtest/gtest.h>

#include <sstream>

#include "chip/timing.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/scan.hpp"

namespace biochip {
namespace {

using namespace biochip::units;

TEST(Log, LevelGateIsRespected) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  BIOCHIP_LOG(kDebug) << "suppressed";  // must not crash, must not emit
  set_log_level(LogLevel::kOff);
  BIOCHIP_LOG(kError) << "also suppressed";
  set_log_level(prev);
}

TEST(Log, GeometryStreamOperators) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0} << " " << Vec3{1, 2, 3} << " " << GridCoord{4, 5};
  EXPECT_EQ(os.str(), "(1.5, -2) (1, 2, 3) [4, 5]");
}

TEST(Table, SiFormatHandlesZeroNegativeAndExtremes) {
  EXPECT_EQ(si_format(0.0, "V"), "0 V");
  EXPECT_EQ(si_format(-2e-5, "m", 3), "-20 um");
  // Below all prefixes: falls back to scientific notation.
  const std::string tiny = si_format(1e-21, "F", 2);
  EXPECT_NE(tiny.find("e-"), std::string::npos);
}

TEST(Table, FmtSwitchesToScientificOutsideComfortRange) {
  EXPECT_NE(fmt(1.23e8, 3).find("e+"), std::string::npos);
  EXPECT_NE(fmt(1.23e-7, 3).find("e-"), std::string::npos);
  EXPECT_EQ(fmt(12.5, 2), "12.50");
}

TEST(Table, EmptyHeaderListRejected) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, CellBeforeRowRejected) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), PreconditionError);
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "hello");
  EXPECT_NE(os.str().find("hello"), std::string::npos);
}

TEST(Timing, PatternRateDegenerateInputs) {
  chip::ProgrammingModel pm;
  // Zero dirty pixels: rate saturates at the clock itself.
  EXPECT_DOUBLE_EQ(pm.pattern_rate(0), pm.clock_frequency);
  EXPECT_GT(pm.incremental_program_time(1), 0.0);
}

TEST(Scan, SingleFrameBudgetAtHighSpeed) {
  // Very fast cells leave no time for even one frame on a huge array.
  sensor::ScanTiming scan;
  chip::ElectrodeArray huge(1024, 1024, 20.0_um);
  EXPECT_EQ(scan.max_frames_within_transit(huge, 1000e-6), 0u);
}

TEST(Capacitive, SensingDepthScalesWithPixel) {
  sensor::CapacitivePixel small;
  small.electrode_area = 8.0_um * 8.0_um;
  small.chamber_height = 100.0_um;
  sensor::CapacitivePixel big = small;
  big.electrode_area = 32.0_um * 32.0_um;
  EXPECT_NEAR(big.sensing_depth() / small.sensing_depth(), 4.0, 1e-9);
}

TEST(Capacitive, FillFactorSaturatesForGiantParticles) {
  sensor::CapacitivePixel px;
  px.electrode_area = 16.0_um * 16.0_um;
  px.chamber_height = 100.0_um;
  // A particle far larger than the sensing volume cannot displace more than
  // all of it: |dC| is bounded by baseline * contrast.
  const double bound = px.baseline_capacitance() *
                       (px.medium_eps_r - px.particle_eps_r) / px.medium_eps_r;
  EXPECT_LE(std::fabs(px.delta_c(100.0_um, 100.0_um, 0.0)), bound + 1e-21);
}

TEST(Units, CurrencyAndForceLiterals) {
  EXPECT_DOUBLE_EQ(2.5_keur, 2500.0);
  EXPECT_DOUBLE_EQ(3.0_pN, 3e-12);
  EXPECT_DOUBLE_EQ(1.0_fN, 1e-15);
}

}  // namespace
}  // namespace biochip
