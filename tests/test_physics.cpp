// Tests for the physics substrate: media, dielectric spectra, DEP forces,
// hydrodynamics, Brownian motion, electro-thermal screens, overdamped
// dynamics, and levitation equilibria.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/threadpool.hpp"
#include "physics/brownian.hpp"
#include "physics/dep.hpp"
#include "physics/dielectrics.hpp"
#include "physics/drag.hpp"
#include "physics/dynamics.hpp"
#include "physics/levitation.hpp"
#include "physics/medium.hpp"
#include "physics/thermal.hpp"

namespace biochip::physics {
namespace {

using namespace biochip::units;

// ---------------------------------------------------------------- medium ----

TEST(Medium, PresetsAreValid) {
  for (const Medium& m : {dep_buffer(), physiological_saline(), deionized_water()})
    EXPECT_NO_THROW(validate(m));
}

TEST(Medium, ConductivityOrdering) {
  EXPECT_LT(deionized_water().conductivity, dep_buffer().conductivity);
  EXPECT_LT(dep_buffer().conductivity, physiological_saline().conductivity);
}

TEST(Medium, PermittivityIsAbsolute) {
  const Medium m = dep_buffer();
  EXPECT_NEAR(m.permittivity(), m.rel_permittivity * constants::epsilon0, 1e-20);
}

TEST(Medium, InvalidMediumThrows) {
  Medium m = dep_buffer();
  m.viscosity = 0.0;
  EXPECT_THROW(validate(m), ConfigError);
  m = dep_buffer();
  m.temperature = -1.0;
  EXPECT_THROW(validate(m), ConfigError);
}

// ----------------------------------------------------------- dielectrics ----

TEST(Dielectrics, CmFactorBounds) {
  // Re K is bounded in [-0.5, 1] for any passive particle/medium pair.
  const Medium medium = dep_buffer();
  const ParticleDielectric insulator{{2.5, 1e-6}, {}, 0.0, {}, 0.0};
  const ParticleDielectric conductor{{80.0, 5.0}, {}, 0.0, {}, 0.0};
  for (double f = 1e3; f <= 1e9; f *= 3.0) {
    for (const auto& p : {insulator, conductor}) {
      const double re = cm_factor(p, 5e-6, medium, f).real();
      EXPECT_GE(re, -0.5 - 1e-9);
      EXPECT_LE(re, 1.0 + 1e-9);
    }
  }
}

TEST(Dielectrics, ConductiveParticleLowFrequencyLimit) {
  // σ_p >> σ_m at low frequency → K → +1... (σp-σm)/(σp+2σm) actually.
  const Medium medium = dep_buffer();  // 30 mS/m
  const ParticleDielectric p{{60.0, 3.0}, {}, 0.0, {}, 0.0};
  const double k = cm_factor(p, 5e-6, medium, 1e3).real();
  const double expect = (3.0 - 0.03) / (3.0 + 2 * 0.03);
  EXPECT_NEAR(k, expect, 0.01);
}

TEST(Dielectrics, InsulatingBeadLowFrequencyIsNegative) {
  const Medium medium = dep_buffer();
  const ParticleDielectric p{{2.55, 1e-7}, {}, 0.0, {}, 0.0};
  EXPECT_LT(cm_factor(p, 5e-6, medium, 1e4).real(), -0.4);
}

TEST(Dielectrics, HighFrequencyLimitIsPermittivityContrast) {
  const Medium medium = dep_buffer();
  const ParticleDielectric p{{2.55, 1e-4}, {}, 0.0, {}, 0.0};
  const double k = cm_factor(p, 5e-6, medium, 5e8).real();
  const double expect = (2.55 - 78.5) / (2.55 + 2 * 78.5);
  EXPECT_NEAR(k, expect, 0.02);
}

TEST(Dielectrics, ShellModelReducesToCoreWhenShellMatches) {
  // Shell with identical properties to the core must be transparent.
  const DielectricMaterial mat{50.0, 0.1};
  const double omega = 2.0 * constants::pi * 1e6;
  const std::complex<double> shelled =
      shelled_sphere_permittivity(mat, mat, 5e-6, 50e-9, omega);
  const std::complex<double> plain = complex_permittivity(mat, omega);
  EXPECT_NEAR(shelled.real(), plain.real(), std::abs(plain.real()) * 1e-9);
  EXPECT_NEAR(shelled.imag(), plain.imag(), std::abs(plain.imag()) * 1e-9);
}

TEST(Dielectrics, ShellThicknessValidation) {
  const DielectricMaterial a{5.0, 1e-7}, b{60.0, 0.5};
  const double omega = 1e7;
  EXPECT_THROW(shelled_sphere_permittivity(a, b, 5e-6, 0.0, omega), PreconditionError);
  EXPECT_THROW(shelled_sphere_permittivity(a, b, 5e-6, 5e-6, omega), PreconditionError);
}

TEST(Dielectrics, ViableCellHasCrossoverInBuffer) {
  // Intact membrane: nDEP at low f, pDEP above the first crossover.
  const Medium medium = dep_buffer();
  const ParticleDielectric cell{
      {60.0, 0.50}, DielectricMaterial{6.0, 1e-7}, 7e-9, {}, 0.0};
  const double radius = 5e-6;
  EXPECT_LT(cm_factor(cell, radius, medium, 20e3).real(), 0.0);
  EXPECT_GT(cm_factor(cell, radius, medium, 2e6).real(), 0.0);
  const auto fx = crossover_frequency(cell, radius, medium);
  ASSERT_TRUE(fx.has_value());
  EXPECT_GT(*fx, 50e3);
  EXPECT_LT(*fx, 1e6);
}

TEST(Dielectrics, CrossoverScalesWithMediumConductivity) {
  // First crossover f_x ∝ σ_m for membrane-limited cells.
  const ParticleDielectric cell{
      {60.0, 0.50}, DielectricMaterial{6.0, 1e-7}, 7e-9, {}, 0.0};
  Medium lo = dep_buffer();
  lo.conductivity = 0.02;
  Medium hi = dep_buffer();
  hi.conductivity = 0.08;
  const auto f_lo = crossover_frequency(cell, 5e-6, lo);
  const auto f_hi = crossover_frequency(cell, 5e-6, hi);
  ASSERT_TRUE(f_lo && f_hi);
  EXPECT_NEAR(*f_hi / *f_lo, 4.0, 0.8);
}

TEST(Dielectrics, NoCrossoverInSalineForViableCell) {
  // In high-σ medium the cell is nDEP through the whole manipulation band.
  const Medium medium = physiological_saline();
  const ParticleDielectric cell{
      {60.0, 0.50}, DielectricMaterial{6.0, 1e-7}, 7e-9, {}, 0.0};
  const auto fx = crossover_frequency(cell, 5e-6, medium, 1e3, 5e6);
  EXPECT_FALSE(fx.has_value());
  EXPECT_LT(cm_factor(cell, 5e-6, medium, 100e3).real(), -0.3);
}

TEST(Dielectrics, SpectrumIsLogSpacedAndOrdered) {
  const Medium medium = dep_buffer();
  const ParticleDielectric p{{2.55, 2e-4}, {}, 0.0, {}, 0.0};
  const auto spec = cm_spectrum(p, 5e-6, medium, 1e4, 1e8, 9);
  ASSERT_EQ(spec.size(), 9u);
  EXPECT_NEAR(spec.front().frequency, 1e4, 1.0);
  EXPECT_NEAR(spec.back().frequency, 1e8, 1e4);
  for (std::size_t i = 1; i < spec.size(); ++i)
    EXPECT_GT(spec[i].frequency, spec[i - 1].frequency);
}

// ------------------------------------------------------------------- dep ----

TEST(Dep, PrefactorSignFollowsReK) {
  const Medium m = dep_buffer();
  EXPECT_GT(dep_prefactor(m, 5e-6, 0.5), 0.0);
  EXPECT_LT(dep_prefactor(m, 5e-6, -0.5), 0.0);
}

TEST(Dep, PrefactorScalesWithRadiusCubed) {
  const Medium m = dep_buffer();
  const double p1 = dep_prefactor(m, 5e-6, -0.4);
  const double p2 = dep_prefactor(m, 10e-6, -0.4);
  EXPECT_NEAR(p2 / p1, 8.0, 1e-9);
}

TEST(Dep, ForceIsPrefactorTimesGradient) {
  const Vec3 grad{1e12, -2e12, 0.5e12};
  const Vec3 f = dep_force(-2e-25, grad);
  EXPECT_DOUBLE_EQ(f.x, -2e-25 * 1e12);
  EXPECT_DOUBLE_EQ(f.y, 4e-13);
}

TEST(Dep, TrapStiffnessPositiveForNdepInMinimum) {
  const field::HarmonicCage cage{{0, 0, 20e-6}, 1e7, 1e19, 5e19};
  const TrapStiffness k = trap_stiffness(cage, -1.5e-25);
  EXPECT_GT(k.radial, 0.0);
  EXPECT_GT(k.vertical, 0.0);
  // pDEP particle in the same cage is anti-trapped.
  const TrapStiffness kp = trap_stiffness(cage, +1.5e-25);
  EXPECT_LT(kp.radial, 0.0);
}

TEST(Dep, HoldingForceZeroForAntiTrap) {
  const field::HarmonicCage cage{{0, 0, 20e-6}, 1e7, 1e19, 5e19};
  EXPECT_GT(holding_force(cage, -1e-25, 10e-6), 0.0);
  EXPECT_DOUBLE_EQ(holding_force(cage, +1e-25, 10e-6), 0.0);
}

TEST(Dep, MaxTowSpeedInPaperRange) {
  // Paper-scale cage and cell: the bound must land in (or above) the
  // 10-100 µm/s band the paper quotes for cell motion.
  const Medium m = dep_buffer();
  const field::HarmonicCage cage{{0, 0, 20e-6}, 5e7, 1.2e19, 1.2e20};
  const double prefactor = dep_prefactor(m, 5e-6, -0.27);
  const double vmax = max_tow_speed(cage, prefactor, 20e-6, m, 5e-6);
  EXPECT_GT(vmax, 10e-6);
  EXPECT_LT(vmax, 2000e-6);
}

// ------------------------------------------------------------------ drag ----

TEST(Drag, StokesCoefficient) {
  const Medium m = dep_buffer();
  EXPECT_NEAR(stokes_drag_coefficient(m, 5e-6),
              6.0 * constants::pi * m.viscosity * 5e-6, 1e-15);
}

TEST(Drag, FaxenCorrectionIncreasesNearWall) {
  EXPECT_NEAR(faxen_wall_correction(5e-6, 1.0), 1.0, 1e-5);  // far away
  const double near = faxen_wall_correction(5e-6, 6e-6);
  const double touching = faxen_wall_correction(5e-6, 5e-6);
  EXPECT_GT(near, 1.3);
  EXPECT_GT(touching, near);
  EXPECT_LT(touching, 25.0);  // guarded divergence
}

TEST(Drag, SedimentationSignAndMagnitude) {
  const Medium m = dep_buffer();
  // Cell slightly denser than buffer sinks at ~µm/s scale.
  const double v = sedimentation_velocity(m, 5e-6, 1070.0);
  EXPECT_LT(v, 0.0);
  EXPECT_GT(v, -20e-6);
  // Neutrally buoyant particle does not move.
  EXPECT_NEAR(sedimentation_velocity(m, 5e-6, m.density), 0.0, 1e-12);
}

TEST(Drag, ReynoldsIsTinyAtCellScale) {
  const Medium m = dep_buffer();
  EXPECT_LT(particle_reynolds(m, 10e-6, 100e-6), 1e-2);
}

// -------------------------------------------------------------- brownian ----

TEST(Brownian, StokesEinsteinDiffusion) {
  const Medium m = dep_buffer();
  const double d = diffusion_coefficient(m, 5e-6);
  // ~5e-14 m²/s for a 5 µm-radius sphere in water at 298 K.
  EXPECT_GT(d, 1e-14);
  EXPECT_LT(d, 1e-13);
}

TEST(Brownian, RmsStepScalesWithSqrtTime) {
  const Medium m = dep_buffer();
  EXPECT_NEAR(rms_step(m, 5e-6, 4.0) / rms_step(m, 5e-6, 1.0), 2.0, 1e-9);
}

TEST(Brownian, KickStatisticsMatchTheory) {
  const Medium m = dep_buffer();
  Rng rng(51);
  RunningStats x2;
  const double dt = 0.01;
  for (int i = 0; i < 30000; ++i) {
    const Vec3 k = brownian_kick(m, 5e-6, dt, rng);
    x2.add(k.x * k.x);
  }
  EXPECT_NEAR(x2.mean(), 2.0 * diffusion_coefficient(m, 5e-6) * dt,
              0.05 * 2.0 * diffusion_coefficient(m, 5e-6) * dt);
}

TEST(Brownian, EscapeRatioSmallForRealisticTrap) {
  // k ~ 1e-6 N/m, x_max ~ 10 µm → depth ~ 5e-17 J >> kT ~ 4e-21 J.
  const Medium m = dep_buffer();
  EXPECT_LT(thermal_escape_ratio(m, 1e-6, 10e-6), 1e-3);
  EXPECT_GT(thermal_escape_ratio(m, 0.0, 10e-6), 1e6);  // no trap
}

// --------------------------------------------------------------- thermal ----

TEST(Thermal, JouleRiseScalesWithSigmaAndV2) {
  const Medium lo = dep_buffer();
  Medium hi = lo;
  hi.conductivity = 2.0 * lo.conductivity;
  EXPECT_NEAR(joule_temperature_rise(hi, 3.3) / joule_temperature_rise(lo, 3.3), 2.0,
              1e-9);
  EXPECT_NEAR(joule_temperature_rise(lo, 6.6) / joule_temperature_rise(lo, 3.3), 4.0,
              1e-9);
}

TEST(Thermal, LowSigmaBufferStaysCool) {
  // The design point of the paper's chip: mK-scale heating at 3.3 V.
  EXPECT_LT(joule_temperature_rise(dep_buffer(), 3.3), 0.1);
  // Saline at the same drive heats ~50x more.
  EXPECT_GT(joule_temperature_rise(physiological_saline(), 3.3), 1.0);
}

TEST(Thermal, ChargeRelaxationFrequency) {
  const Medium m = dep_buffer();
  const double fc = charge_relaxation_frequency(m);
  EXPECT_NEAR(fc, m.conductivity / (2.0 * constants::pi * m.permittivity()), 1.0);
  EXPECT_GT(fc, 1e6);  // 30 mS/m → ~6.9 MHz
}

TEST(Thermal, AceoVelocityScaleReasonable) {
  const double u = aceo_velocity_scale(dep_buffer(), 1.0, 20e-6);
  EXPECT_GT(u, 1e-6);
  EXPECT_LT(u, 1.0);
}

// -------------------------------------------------------------- dynamics ----

class DynamicsTest : public ::testing::Test {
 protected:
  Medium medium_ = dep_buffer();
  DynamicsOptions opts_ = {
      .dt = 1e-3,
      .brownian = false,
      .gravity = false,
      .wall_correction = false,
      .bounds = {{0, 0, 0}, {1e-3, 1e-3, 1e-4}},
  };
};

TEST_F(DynamicsTest, RelaxationIntoHarmonicTrap) {
  // Overdamped relaxation: x(t) = x0 exp(-k t / γ).
  const field::HarmonicCage cage{{5e-4, 5e-4, 5e-5}, 0.0, 1e19, 1e19};
  const double prefactor = -1.5e-25;
  OverdampedIntegrator integ(medium_, opts_);
  ParticleBody p{{5e-4 + 10e-6, 5e-4, 5e-5}, 5e-6, medium_.density, prefactor, 0};
  Rng rng(1);
  const double gamma = stokes_drag_coefficient(medium_, p.radius);
  const double k = -prefactor * cage.c_r;
  const double steps = 200.0;
  std::vector<ParticleBody> swarm{p};
  integ.advance(swarm, [&](Vec3 q) { return cage.grad_erms2(q); }, rng,
                static_cast<std::size_t>(steps));
  p = swarm.front();
  const double expect =
      10e-6 * std::exp(-k * opts_.dt * steps / gamma);
  EXPECT_NEAR(p.position.x - 5e-4, expect, 0.15 * 10e-6);
}

TEST_F(DynamicsTest, ParallelAdvanceIsChunkingInvariant) {
  // The pooled advance fans particles out on counter-based streams, so the
  // same seed must give bit-identical trajectories for any pool size.
  const field::HarmonicCage cage{{5e-4, 5e-4, 5e-5}, 0.0, 1e19, 1e19};
  OverdampedIntegrator integ(medium_, opts_);
  auto make_swarm = [&] {
    std::vector<ParticleBody> swarm;
    for (int n = 0; n < 17; ++n)
      swarm.push_back({{5e-4 + 1e-6 * n, 5e-4 - 2e-6 * n, 5e-5}, 5e-6,
                       medium_.density + 50.0, -1.5e-25, n});
    return swarm;
  };
  auto grad = [&](Vec3 q) { return cage.grad_erms2(q); };

  std::vector<ParticleBody> one = make_swarm(), four = make_swarm();
  core::ThreadPool pool1(1), pool4(4);
  Rng rng1(77), rng4(77);
  integ.advance(one, grad, rng1, 50, pool1);
  integ.advance(four, grad, rng4, 50, pool4);
  for (std::size_t n = 0; n < one.size(); ++n) {
    EXPECT_EQ(one[n].position, four[n].position) << "particle " << n;
  }
  // Both overloads leave the caller's generator in the same state.
  EXPECT_EQ(rng1(), rng4());
}

TEST_F(DynamicsTest, GravityOnlySedimentation) {
  DynamicsOptions opts = opts_;
  opts.gravity = true;
  OverdampedIntegrator integ(medium_, opts);
  ParticleBody p{{5e-4, 5e-4, 5e-5}, 5e-6, 1070.0, 0.0, 0};
  Rng rng(2);
  const double z0 = p.position.z;
  for (int i = 0; i < 1000; ++i)
    integ.step(p, [](Vec3) { return Vec3{}; }, rng);
  const double v_expected = sedimentation_velocity(medium_, p.radius, p.density);
  EXPECT_NEAR((p.position.z - z0) / (1000 * opts.dt), v_expected,
              std::fabs(v_expected) * 0.05);
}

TEST_F(DynamicsTest, BoundsConfinement) {
  OverdampedIntegrator integ(medium_, opts_);
  // Huge downward force: particle must stop at radius above the floor.
  ParticleBody p{{5e-4, 5e-4, 5e-5}, 5e-6, 5000.0, -1e-20, 0};
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    integ.step(p, [](Vec3) { return Vec3{0.0, 0.0, 1e15}; }, rng);
  EXPECT_GE(p.position.z, p.radius - 1e-12);
}

TEST_F(DynamicsTest, BrownianMsdMatchesDiffusion) {
  DynamicsOptions opts = opts_;
  opts.brownian = true;
  OverdampedIntegrator integ(medium_, opts);
  Rng rng(4);
  RunningStats msd;
  const int kSteps = 100;
  for (int trial = 0; trial < 400; ++trial) {
    ParticleBody p{{5e-4, 5e-4, 5e-5}, 2e-6, medium_.density, 0.0, 0};
    const Vec3 start = p.position;
    for (int s = 0; s < kSteps; ++s)
      integ.step(p, [](Vec3) { return Vec3{}; }, rng);
    const Vec3 d = p.position - start;
    msd.add(d.x * d.x + d.y * d.y);  // xy only: z hits walls
  }
  const double d_coef = diffusion_coefficient(medium_, 2e-6);
  const double expect = 4.0 * d_coef * kSteps * opts.dt;
  EXPECT_NEAR(msd.mean(), expect, expect * 0.15);
}

TEST_F(DynamicsTest, SuggestedDtIsFractionOfRelaxation) {
  OverdampedIntegrator integ(medium_, opts_);
  const double gamma = stokes_drag_coefficient(medium_, 5e-6);
  const double k = 1e-6;
  EXPECT_NEAR(integ.suggested_dt(k, 5e-6, 10.0), gamma / k / 10.0, 1e-12);
}

TEST_F(DynamicsTest, InvalidOptionsThrow) {
  DynamicsOptions bad = opts_;
  bad.dt = 0.0;
  EXPECT_THROW(OverdampedIntegrator(medium_, bad), PreconditionError);
  DynamicsOptions empty = opts_;
  empty.bounds = {{0, 0, 0}, {0, 0, 0}};
  EXPECT_THROW(OverdampedIntegrator(medium_, empty), PreconditionError);
}

// ------------------------------------------------------------ levitation ----

TEST(Levitation, StableEquilibriumBelowCageCenter) {
  const Medium m = dep_buffer();
  const field::HarmonicCage cage{{0, 0, 21e-6}, 5e7, 1.2e19, 1.2e20};
  const double prefactor = dep_prefactor(m, 5e-6, -0.27);
  const LevitationResult lev = levitation_equilibrium(cage, prefactor, m, 5e-6, 1070.0);
  EXPECT_TRUE(lev.stable);
  EXPECT_LT(lev.height, cage.center.z);  // denser cell sags below the minimum
  EXPECT_GT(lev.height, 5e-6);           // but stays clear of the chip
  EXPECT_GT(lev.stiffness_z, 0.0);
  EXPECT_GT(lev.sag, 0.0);
}

TEST(Levitation, PdepParticleNotLevitated) {
  const Medium m = dep_buffer();
  const field::HarmonicCage cage{{0, 0, 21e-6}, 5e7, 1.2e19, 1.2e20};
  const LevitationResult lev =
      levitation_equilibrium(cage, +1.5e-25, m, 5e-6, 1070.0);
  EXPECT_FALSE(lev.stable);
}

TEST(Levitation, WeakCageDropsHeavyParticle) {
  const Medium m = dep_buffer();
  const field::HarmonicCage cage{{0, 0, 21e-6}, 5e7, 1.2e16, 1.2e16};  // 1000x weaker
  const double prefactor = dep_prefactor(m, 5e-6, -0.05);
  const LevitationResult lev = levitation_equilibrium(cage, prefactor, m, 5e-6, 2500.0);
  EXPECT_FALSE(lev.stable);  // sag exceeds the clearance
}

TEST(Levitation, BuoyantParticleRisesAboveCenter) {
  const Medium m = dep_buffer();  // density 1020
  const field::HarmonicCage cage{{0, 0, 21e-6}, 5e7, 1.2e19, 1.2e20};
  const double prefactor = dep_prefactor(m, 5e-6, -0.27);
  const LevitationResult lev = levitation_equilibrium(cage, prefactor, m, 5e-6, 950.0);
  EXPECT_TRUE(lev.stable);
  EXPECT_GT(lev.height, cage.center.z);
}

}  // namespace
}  // namespace biochip::physics
