// Tests for the design-flow models (claim C5): flow mechanics, presets,
// Monte-Carlo statistics, and the crossover between Fig. 1 and Fig. 2.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "flow/designflow.hpp"
#include "flow/montecarlo.hpp"

namespace biochip::flow {
namespace {

using namespace biochip::units;

TEST(DesignFlow, StageSamplesPositiveWithRequestedMean) {
  StageModel stage{10.0_day, 0.3, 1.0_keur};
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(stage.sample_duration(rng));
  EXPECT_NEAR(s.mean(), 10.0_day, 0.2_day);
  EXPECT_GT(s.min(), 0.0);
}

TEST(DesignFlow, OutcomeAccountingConsistent) {
  const FlowParameters p = fluidic_flow_parameters();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const FlowOutcome out = run_flow(FlowKind::kFabricateFirst, p, rng);
    EXPECT_GT(out.time, 0.0);
    EXPECT_GT(out.cost, 0.0);
    EXPECT_GE(out.design_spins, 1);
    if (out.converged) {
      EXPECT_GE(out.fabrications, 1);
      EXPECT_EQ(out.tests, out.fabrications);  // every prototype gets tested
    }
  }
}

TEST(DesignFlow, SimulateFirstRunsSimulationsBeforeFab) {
  const FlowParameters p = cmos_flow_parameters();
  Rng rng(3);
  const FlowOutcome out = run_flow(FlowKind::kSimulateFirst, p, rng);
  EXPECT_GE(out.simulations, out.fabrications);
}

TEST(DesignFlow, PerfectDesignConvergesImmediately) {
  FlowParameters p = fluidic_flow_parameters();
  p.initial_flaw_probability = 0.0;
  p.fidelity.false_alarm = 0.0;
  Rng rng(4);
  const FlowOutcome sim = run_flow(FlowKind::kSimulateFirst, p, rng);
  EXPECT_TRUE(sim.converged);
  EXPECT_EQ(sim.fabrications, 1);
  EXPECT_EQ(sim.simulations, 1);
  const FlowOutcome fab = run_flow(FlowKind::kFabricateFirst, p, rng);
  EXPECT_TRUE(fab.converged);
  EXPECT_EQ(fab.fabrications, 1);
  EXPECT_EQ(fab.simulations, 0);  // never needed insight
}

TEST(DesignFlow, PresetsMatchPaperEconomics) {
  const FlowParameters cmos = cmos_flow_parameters();
  const FlowParameters fluidic = fluidic_flow_parameters();
  // CMOS: fab turnaround months, masks ~100 k€; "accurate models".
  EXPECT_GT(cmos.fabricate.duration_mean, 30.0_day);
  EXPECT_GT(cmos.fabricate.cost, 50.0_keur);
  EXPECT_GT(cmos.fidelity.coverage, 0.85);
  // Fluidic: 2-3 day fab, tens of €; simulation "a research topic".
  EXPECT_LT(fluidic.fabricate.duration_mean, 4.0_day);
  EXPECT_LT(fluidic.fabricate.cost, 100.0_eur);
  EXPECT_LT(fluidic.fidelity.coverage, 0.6);
  EXPECT_GT(fluidic.simulate.duration_mean, fluidic.fabricate.duration_mean);
}

TEST(MonteCarlo, StatisticsAreReproducible) {
  const FlowParameters p = fluidic_flow_parameters();
  const FlowStats a = evaluate_flow(FlowKind::kFabricateFirst, p, 500, 7);
  const FlowStats b = evaluate_flow(FlowKind::kFabricateFirst, p, 500, 7);
  EXPECT_DOUBLE_EQ(a.time.mean(), b.time.mean());
  EXPECT_DOUBLE_EQ(a.cost.mean(), b.cost.mean());
}

TEST(MonteCarlo, ConvergenceRateHighForBothPresets) {
  for (const FlowParameters& p : {cmos_flow_parameters(), fluidic_flow_parameters()}) {
    for (FlowKind kind : {FlowKind::kSimulateFirst, FlowKind::kFabricateFirst}) {
      const FlowStats s = evaluate_flow(kind, p, 400, 11);
      EXPECT_GT(s.convergence_rate, 0.99) << p.name << " " << to_string(kind);
    }
  }
}

TEST(MonteCarlo, PercentilesOrdered) {
  const FlowStats s =
      evaluate_flow(FlowKind::kSimulateFirst, cmos_flow_parameters(), 400, 13);
  EXPECT_LE(s.time_p50, s.time_p90);
  EXPECT_LE(s.time.min(), s.time_p50);
}

// --- The paper's claim C5 in its two habitats -----------------------------

TEST(MonteCarlo, CmosRegimeFavorsSimulateFirst) {
  // Fig. 1 is the right flow for CMOS: every avoided re-spin saves ~70 days
  // and ~110 k€, and the models are accurate enough to catch most flaws.
  const FlowComparison cmp = compare_flows(cmos_flow_parameters(), 2000, 17);
  EXPECT_EQ(cmp.faster, FlowKind::kSimulateFirst);
  EXPECT_EQ(cmp.cheaper, FlowKind::kSimulateFirst);
  EXPECT_GT(cmp.time_ratio, 1.05);
}

TEST(MonteCarlo, FluidicRegimeFavorsFabricateFirst) {
  // Fig. 2 is the right flow for dry-film fluidics: "it is often faster to
  // build and test a prototype than to simulate it".
  const FlowComparison cmp = compare_flows(fluidic_flow_parameters(), 2000, 19);
  EXPECT_EQ(cmp.faster, FlowKind::kFabricateFirst);
  EXPECT_GT(cmp.time_ratio, 1.5);
}

TEST(MonteCarlo, CrossoverSweepFlipsPreference) {
  // Sweeping fab turnaround from hours to quarters must flip the winner
  // from fabricate-first to simulate-first exactly once (monotone regimes).
  FlowParameters base = fluidic_flow_parameters();
  std::vector<double> turnarounds;
  for (double d = 0.5; d <= 128.0; d *= 2.0) turnarounds.push_back(d * 86400.0);
  const auto sweep = crossover_sweep(base, turnarounds, 1500, 23);
  ASSERT_EQ(sweep.size(), turnarounds.size());
  EXPECT_EQ(sweep.front().faster, FlowKind::kFabricateFirst);
  EXPECT_EQ(sweep.back().faster, FlowKind::kSimulateFirst);
  // Count flips: allow at most 2 (Monte-Carlo noise near the boundary).
  int flips = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    if (sweep[i].faster != sweep[i - 1].faster) ++flips;
  EXPECT_GE(flips, 1);
  EXPECT_LE(flips, 3);
}

TEST(MonteCarlo, BetterSimFidelityHelpsSimulateFirst) {
  FlowParameters lo = fluidic_flow_parameters();
  FlowParameters hi = lo;
  hi.fidelity.coverage = 0.95;
  hi.fidelity.false_alarm = 0.02;
  const FlowStats s_lo = evaluate_flow(FlowKind::kSimulateFirst, lo, 1500, 29);
  const FlowStats s_hi = evaluate_flow(FlowKind::kSimulateFirst, hi, 1500, 29);
  EXPECT_LT(s_hi.fabrications.mean(), s_lo.fabrications.mean());
}

TEST(MonteCarlo, InsightAcceleratesFabricateFirst) {
  FlowParameters with = fluidic_flow_parameters();
  FlowParameters without = with;
  without.fidelity.insight = 0.0;
  const FlowStats s_with = evaluate_flow(FlowKind::kFabricateFirst, with, 1500, 31);
  const FlowStats s_without =
      evaluate_flow(FlowKind::kFabricateFirst, without, 1500, 31);
  EXPECT_LT(s_with.fabrications.mean(), s_without.fabrications.mean());
}

TEST(MonteCarlo, InvalidTrialCountThrows) {
  EXPECT_THROW(evaluate_flow(FlowKind::kSimulateFirst, cmos_flow_parameters(), 0, 1),
               PreconditionError);
}

}  // namespace
}  // namespace biochip::flow
