#!/usr/bin/env python3
"""Summarize a Chrome-trace phase-span file from the telemetry layer.

Reads the PREFIX.trace.json an `obs::Observer` writes (complete "X" spans:
driver phases on tid 0, per-chamber control phases on tid = chamber + 1) and
prints per-phase wall-clock totals — count, total/mean/max span duration and
the share of the summed recorded time. The timing plane is explicitly
nondeterministic (docs/observability.md), so these numbers are for profiling
and regression eyeballing, never for simulation assertions.

Usage:
  tools/trace_report.py PREFIX.trace.json [--by-lane]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=Path, help="Chrome-trace JSON file")
    ap.add_argument(
        "--by-lane",
        action="store_true",
        help="break phases out per lane (tid) instead of aggregating",
    )
    args = ap.parse_args()

    obj = json.loads(args.trace.read_text(encoding="utf-8"))
    events = obj.get("traceEvents", [])
    if not events:
        print(f"{args.trace}: no spans recorded")
        return 1

    totals: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    ticks = set()
    for e in events:
        if e.get("ph") != "X":
            continue
        key = e["name"]
        if args.by_lane:
            key = f"{e['name']} (lane {e.get('tid', 0) - 1})"
        stat = totals[key]
        stat[0] += 1
        stat[1] += e.get("dur", 0.0)
        stat[2] = max(stat[2], e.get("dur", 0.0))
        tick = e.get("args", {}).get("tick")
        if isinstance(tick, int):
            ticks.add(tick)

    grand = sum(stat[1] for stat in totals.values()) or 1.0
    print(
        f"{args.trace.name}: {sum(int(s[0]) for s in totals.values())} spans, "
        f"{len(totals)} phases, {len(ticks)} ticks, "
        f"{grand / 1000.0:.2f} ms recorded"
    )
    print(f"{'phase':<28} {'count':>8} {'total ms':>10} {'mean us':>9} "
          f"{'max us':>9} {'share':>7}")
    for name, (count, total, peak) in sorted(
        totals.items(), key=lambda kv: -kv[1][1]
    ):
        print(
            f"{name:<28} {int(count):>8} {total / 1000.0:>10.2f} "
            f"{total / count:>9.1f} {peak:>9.1f} {100.0 * total / grand:>6.1f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
