#!/usr/bin/env python3
"""Docs consistency check: stale docs fail CI, not a reader.

Over README.md and every docs/*.md this verifies that
  1. every relative markdown link [text](target) resolves to a real file
     (anchors are stripped; http(s)/mailto links are skipped);
  2. every backtick code span that names a repo file (src/..., docs/...,
     examples/..., bench/..., tests/..., tools/..., .github/..., or a bare
     *.md/*.json/*.sh at the root) exists;
  3. every backtick code span that names a C++ symbol path (foo::Bar,
     chip::DefectMap, Replanner::park, ...) still exists in the sources:
     each `::`-component must appear as an identifier somewhere under src/,
     tests/, bench/ or examples/.

Exit code 0 = clean, 1 = stale references (each one listed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
SOURCE_DIRS = ["src", "tests", "bench", "examples"]
PATH_PREFIXES = ("src/", "docs/", "examples/", "bench/", "tests/", "tools/", ".github/")
ROOT_FILE_SUFFIXES = (".md", ".json", ".sh", ".py", ".yml")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCED_BLOCK = re.compile(r"^```.*?^```", re.S | re.M)
CODE_SPAN = re.compile(r"`([^`\n]+)`")
SYMBOL = re.compile(r"^~?[A-Za-z_][A-Za-z0-9_]*(::~?[A-Za-z_][A-Za-z0-9_]*)+$")


def source_corpus() -> str:
    chunks = []
    for d in SOURCE_DIRS:
        for path in sorted((REPO / d).rglob("*")):
            if path.suffix in (".hpp", ".cpp", ".h"):
                chunks.append(path.read_text(encoding="utf-8", errors="replace"))
    return "\n".join(chunks)


def check_file(doc: Path, identifiers: set[str]) -> list[str]:
    errors = []
    # Fenced code blocks are shell/ASCII art, not references; strip them so
    # the inline-span parser cannot pair a fence with a later inline tick.
    text = FENCED_BLOCK.sub("", doc.read_text(encoding="utf-8"))
    rel = doc.relative_to(REPO)

    for m in MD_LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link `{target}`")

    for m in CODE_SPAN.finditer(text):
        span = m.group(1).strip()
        # File references.
        candidate = span.split(":", 1)[0]  # allow `src/foo.cpp:12`
        if "*" not in candidate and (
            candidate.startswith(PATH_PREFIXES)
            or ("/" not in candidate and candidate.endswith(ROOT_FILE_SUFFIXES))
        ):
            if not (REPO / candidate).exists():
                errors.append(f"{rel}: referenced file `{candidate}` does not exist")
            continue
        # Symbol references: every :: component must still be an identifier
        # somewhere in the sources.
        if SYMBOL.match(span):
            for part in span.replace("~", "").split("::"):
                if part not in identifiers:
                    errors.append(
                        f"{rel}: symbol `{span}` — identifier `{part}` "
                        "not found in the sources"
                    )
                    break
    return errors


def main() -> int:
    identifiers = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", source_corpus()))
    errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"missing required doc: {doc.relative_to(REPO)}")
            continue
        errors.extend(check_file(doc, identifiers))
    if errors:
        print(f"check_docs: {len(errors)} stale reference(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_docs: {len(DOC_FILES)} docs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
