#!/usr/bin/env python3
"""Schema validator for the telemetry exporters (docs/observability.md).

Validates the three artifacts an `obs::Observer` writes for a run prefix:

  PREFIX.metrics.jsonl   one counting+execution-plane snapshot per line:
                         {"schema":"biochip.metrics.v1","tick":T,"metrics":[...]}
                         Ticks must be nondecreasing (the final snapshot may
                         repeat the last periodic tick) and the metric set —
                         the ordered (name, index, kind, plane) tuples — must
                         be identical on every line: drivers pre-register the
                         full catalog, so the snapshot shape never drifts.
  PREFIX.trace.json      Chrome-trace JSON: complete "X" phase spans with
                         microsecond ts/dur, tid = lane + 1 (0 = the serial
                         driver), args.tick. Load it at chrome://tracing.
  PREFIX.summary.json    {"context":{schema,label,tick},"metrics":[...]} —
                         the BENCH_*.json-style final state.

Usage:
  tools/check_obs.py PREFIX [--require-phases faults,arrivals,...]
Exit 1 with a findings list on any schema violation (run by the obs smoke
test and the CI streaming-smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "biochip.metrics.v1"
KINDS = {"counter", "gauge", "real_gauge", "histogram"}
PLANES = {"counting", "execution"}


def check_metric(m: object, where: str, errors: list[str]) -> tuple | None:
    """Validate one metric entry; returns its shape tuple on success."""
    if not isinstance(m, dict):
        errors.append(f"{where}: metric entry is not an object")
        return None
    for key in ("name", "index", "kind", "plane"):
        if key not in m:
            errors.append(f"{where}: metric missing '{key}'")
            return None
    if m["kind"] not in KINDS:
        errors.append(f"{where}: unknown kind '{m['kind']}'")
        return None
    if m["plane"] not in PLANES:
        errors.append(f"{where}: unknown plane '{m['plane']}'")
        return None
    name = f"{where}: {m['name']}[{m['index']}]"
    if m["kind"] == "histogram":
        bounds, buckets = m.get("bounds"), m.get("buckets")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            errors.append(f"{name}: histogram needs bounds + buckets arrays")
        elif len(buckets) != len(bounds) + 1:
            errors.append(
                f"{name}: {len(buckets)} buckets for {len(bounds)} bounds "
                "(want bounds + overflow)"
            )
        elif bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{name}: bounds not strictly ascending")
        elif any(not isinstance(b, int) or b < 0 for b in buckets):
            errors.append(f"{name}: bucket counts must be non-negative ints")
    else:
        if "value" not in m:
            errors.append(f"{name}: missing 'value'")
        elif m["kind"] in ("counter",) and (
            not isinstance(m["value"], int) or m["value"] < 0
        ):
            errors.append(f"{name}: counter value must be a non-negative int")
    return (m["name"], m["index"], m["kind"], m["plane"])


def check_snapshot(obj: object, where: str, errors: list[str]) -> tuple | None:
    """Validate one snapshot; returns (tick, shape) on success."""
    if not isinstance(obj, dict):
        errors.append(f"{where}: snapshot is not an object")
        return None
    if obj.get("schema") != SCHEMA:
        errors.append(f"{where}: schema is {obj.get('schema')!r}, want {SCHEMA!r}")
        return None
    if not isinstance(obj.get("tick"), int):
        errors.append(f"{where}: tick is not an int")
        return None
    metrics = obj.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append(f"{where}: metrics must be a non-empty array")
        return None
    shape = []
    for m in metrics:
        s = check_metric(m, where, errors)
        if s is not None:
            shape.append(s)
    return obj["tick"], tuple(shape)


def check_metrics_jsonl(path: Path, errors: list[str]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        errors.append(f"{path.name}: empty")
        return
    last_tick, shape = None, None
    for n, line in enumerate(lines, 1):
        where = f"{path.name}:{n}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: invalid JSON ({e})")
            continue
        res = check_snapshot(obj, where, errors)
        if res is None:
            continue
        tick, line_shape = res
        if last_tick is not None and tick < last_tick:
            errors.append(f"{where}: tick {tick} < previous {last_tick}")
        last_tick = tick
        if shape is None:
            shape = line_shape
        elif line_shape != shape:
            errors.append(
                f"{where}: metric set differs from line 1 "
                "(snapshot shape must not drift)"
            )


def check_trace(path: Path, require_phases: list[str], errors: list[str]) -> None:
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as e:
        errors.append(f"{path.name}: invalid JSON ({e})")
        return
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append(f"{path.name}: traceEvents must be a non-empty array")
        return
    seen = set()
    for n, e in enumerate(events):
        where = f"{path.name}: traceEvents[{n}]"
        if e.get("ph") != "X":
            errors.append(f"{where}: ph must be 'X' (complete spans only)")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            errors.append(f"{where}: missing span name")
            continue
        if not isinstance(e.get("tid"), int) or e["tid"] < 0:
            errors.append(f"{where}: tid must be a non-negative lane + 1")
        for key in ("ts", "dur"):
            if not isinstance(e.get(key), (int, float)) or e[key] < 0:
                errors.append(f"{where}: {key} must be a non-negative number")
        if not isinstance(e.get("args", {}).get("tick"), int):
            errors.append(f"{where}: args.tick must be an int")
        seen.add(e["name"])
    for phase in require_phases:
        if phase not in seen:
            errors.append(f"{path.name}: required phase '{phase}' has no span")


def check_summary(path: Path, errors: list[str]) -> None:
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as e:
        errors.append(f"{path.name}: invalid JSON ({e})")
        return
    ctx = obj.get("context")
    if not isinstance(ctx, dict):
        errors.append(f"{path.name}: missing context object")
        return
    check_snapshot(
        {"schema": ctx.get("schema"), "tick": ctx.get("tick"),
         "metrics": obj.get("metrics")},
        path.name,
        errors,
    )
    if not isinstance(ctx.get("label"), str) or not ctx["label"]:
        errors.append(f"{path.name}: context.label must be a non-empty string")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("prefix", help="artifact prefix (PREFIX.metrics.jsonl etc.)")
    ap.add_argument(
        "--require-phases",
        default="",
        help="comma-separated span names the trace must contain",
    )
    args = ap.parse_args()

    errors: list[str] = []
    checked = 0
    for suffix, check in (
        (".metrics.jsonl", check_metrics_jsonl),
        (
            ".trace.json",
            lambda p, e: check_trace(
                p, [s for s in args.require_phases.split(",") if s], e
            ),
        ),
        (".summary.json", check_summary),
    ):
        path = Path(args.prefix + suffix)
        if not path.exists():
            errors.append(f"{path.name}: missing")
            continue
        check(path, errors)
        checked += 1

    if errors:
        print(f"check_obs: {len(errors)} violation(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_obs: {checked} artifact(s) schema-valid for {args.prefix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
