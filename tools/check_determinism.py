#!/usr/bin/env python3
"""Determinism-contract linter: nondeterminism sources fail CI, not a soak run.

Everything concurrent in this codebase must be bitwise-identical to its serial
counterpart (docs/architecture.md, "Determinism contract"). The runtime
identity tests enforce that on the hardware they run on; this linter enforces
the *sources* of nondeterminism statically, so a violation is caught on a
1-core CI box even when it could only misbehave on 64 cores.

Rules (docs/static-analysis.md has the rationale table):

  banned-source        rand() and std::random_device anywhere under src/:
                       unseeded state. Use common::Rng streams instead.
  clock-outside-obs    Wall/steady-clock ::now() reads outside src/obs/.
                       Clocks feed timing-dependent behavior; the one
                       sanctioned read is the timing-plane shim
                       obs/clock.hpp (docs/observability.md), so simulation
                       code uses tick counters and everything wall-clock
                       goes through the explicitly nondeterministic plane.
  unordered-iteration  Iterating a std::unordered_{map,set} yields a
                       hash-seed- and insertion-order-dependent sequence. In
                       files that emit ControlEvents or accounting totals,
                       even *declaring* one needs a justification; elsewhere,
                       only iteration over one is flagged (membership tests
                       are order-free).
  raw-thread           std::thread / std::jthread / std::async outside
                       core/threadpool: ad-hoc concurrency bypasses the
                       pool's chunking contract that the identity tests pin.
  rng-bypass           Direct Rng construction inside pooled code paths
                       (src/control/, src/core/): per-worker streams must
                       come from Rng::fork stream spaces keyed on stable ids,
                       never from locally invented seeds.

Escape hatch: a `// det-ok: <reason>` comment on the flagged line or the line
above suppresses the finding. The reason is mandatory and should state the
ordering/independence argument (e.g. "membership-only, never iterated").

Usage:
  tools/check_determinism.py              # lint src/, exit 1 on findings
  tools/check_determinism.py --self-test  # prove each rule fires on its
                                          # fixture and stays quiet on the
                                          # clean twin (run by ctest)
  tools/check_determinism.py --root DIR   # lint an arbitrary tree (fixtures)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tools" / "determinism_fixtures"

DET_OK = re.compile(r"//\s*det-ok:\s*(\S.*)")
LINE_COMMENT = re.compile(r"//.*$")

BANNED_SOURCE = re.compile(r"(?<![\w:])rand\s*\(|std::random_device")
CLOCK_SOURCE = re.compile(
    r"(?:system_clock|steady_clock|high_resolution_clock)::now\s*\("
)
UNORDERED_DECL = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_VAR = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;({=]"
)
RAW_THREAD = re.compile(r"std::(?:jthread\b|async\b|thread\b(?!::))")
RNG_CONSTRUCT = re.compile(r"(?<![\w.:])Rng\s+\w+\s*[({]|(?<![\w.:])Rng\s*[({]")

# Files allowed to own these primitives: the pool owns std::thread, the Rng
# implementation owns raw construction, the timing plane owns the clock.
THREAD_OWNERS = ("core/threadpool.hpp", "core/threadpool.cpp")
RNG_OWNERS = ("common/rng.hpp", "common/rng.cpp")
CLOCK_OWNER_DIR = "obs/"
# Pooled code paths where an Rng must come from a fork stream space.
POOLED_DIRS = ("control/", "core/")
# Event emitters / accounting surfaces get the strict unordered rule.
EVENT_MARKERS = re.compile(r"\bControlEvent\b|\bemit_event\b|\baccounting\b")


def is_suppressed(lines: list[str], idx: int) -> bool:
    """det-ok with a reason on the flagged line or the line above."""
    if DET_OK.search(lines[idx]):
        return True
    return idx > 0 and DET_OK.search(lines[idx - 1]) is not None


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


def lint_file(path: Path, rel: str) -> list[tuple[str, int, str, str]]:
    """Returns (rule, 1-based line, rel path, excerpt) findings."""
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    findings = []
    emits_events = EVENT_MARKERS.search(text) is not None or rel.startswith(
        "control/"
    )
    pooled = any(rel.startswith(d) for d in POOLED_DIRS)

    unordered_vars: set[str] = set()
    for i, raw in enumerate(lines):
        line = strip_comment(raw)
        if not line.strip():
            continue

        if BANNED_SOURCE.search(line) and not is_suppressed(lines, i):
            findings.append(("banned-source", i + 1, rel, raw.strip()))

        if (
            CLOCK_SOURCE.search(line)
            and not rel.startswith(CLOCK_OWNER_DIR)
            and not is_suppressed(lines, i)
        ):
            findings.append(("clock-outside-obs", i + 1, rel, raw.strip()))

        if rel not in THREAD_OWNERS and RAW_THREAD.search(line):
            if not is_suppressed(lines, i):
                findings.append(("raw-thread", i + 1, rel, raw.strip()))

        if UNORDERED_DECL.search(line):
            for m in UNORDERED_VAR.finditer(line):
                unordered_vars.add(m.group(1))
            if emits_events and not is_suppressed(lines, i):
                findings.append(("unordered-iteration", i + 1, rel, raw.strip()))

        if unordered_vars:
            it = re.search(
                r"for\s*\([^)]*:\s*(\w+)\s*\)|(\w+)\s*\.\s*begin\s*\(", line
            )
            if it:
                name = it.group(1) or it.group(2)
                if name in unordered_vars and not is_suppressed(lines, i):
                    findings.append(
                        ("unordered-iteration", i + 1, rel, raw.strip())
                    )

        if pooled and rel not in RNG_OWNERS and RNG_CONSTRUCT.search(line):
            # Type/alias declarations are not constructions.
            is_decl = re.match(r"\s*(?:struct|class|using|typedef)\b", line)
            if not is_decl and ".fork" not in line and not is_suppressed(lines, i):
                findings.append(("rng-bypass", i + 1, rel, raw.strip()))

    return findings


def lint_tree(root: Path) -> list[tuple[str, int, str, str]]:
    findings = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h"):
            continue
        rel = str(path.relative_to(root)).replace("\\", "/")
        findings.extend(lint_file(path, rel))
    return findings


def self_test() -> int:
    """Each violations/ fixture declares the rules it must trip via
    `// expect: <rule>` headers; clean/ fixtures must produce nothing."""
    failures = []
    vio_dir = FIXTURES / "violations"
    for fixture in sorted(vio_dir.glob("*.cpp")) + sorted(vio_dir.glob("*.hpp")):
        text = fixture.read_text(encoding="utf-8")
        expected = set(re.findall(r"//\s*expect:\s*([\w-]+)", text))
        rel = re.search(r"//\s*as-path:\s*(\S+)", text)
        rel_path = rel.group(1) if rel else fixture.name
        got = {rule for rule, _, _, _ in lint_file(fixture, rel_path)}
        if got != expected:
            failures.append(
                f"{fixture.name}: expected rules {sorted(expected)}, got {sorted(got)}"
            )
    clean_dir = FIXTURES / "clean"
    for fixture in sorted(clean_dir.glob("*.cpp")) + sorted(clean_dir.glob("*.hpp")):
        text = fixture.read_text(encoding="utf-8")
        rel = re.search(r"//\s*as-path:\s*(\S+)", text)
        rel_path = rel.group(1) if rel else fixture.name
        got = lint_file(fixture, rel_path)
        if got:
            failures.append(f"{fixture.name}: expected clean, got {got}")
    if failures:
        print(f"check_determinism --self-test: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    n = len(list(vio_dir.glob("*.[ch]pp"))) + len(list(clean_dir.glob("*.[ch]pp")))
    print(f"check_determinism --self-test: {n} fixtures behave as declared")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=REPO / "src")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    if findings:
        print(f"check_determinism: {len(findings)} violation(s):")
        for rule, line, rel, excerpt in findings:
            print(f"  [{rule}] {rel}:{line}: {excerpt}")
        print(
            "fix the nondeterminism source, or annotate the line with "
            "`// det-ok: <ordering argument>` (docs/static-analysis.md)"
        )
        return 1
    print("check_determinism: src tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
