#!/usr/bin/env bash
# clang-tidy driver for the static-analysis CI job and local use.
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Configures `build-dir` (default build-tidy) with CMAKE_EXPORT_COMPILE_COMMANDS
# (already the repo default) if it has no compilation database yet, then runs
# clang-tidy over every src/**/*.cpp against the committed .clang-tidy, with
# all enabled warnings promoted to errors. Headers under src/ are covered via
# HeaderFilterRegex. Exits nonzero on any finding.
#
# The container this repo grows in ships no clang-tidy; the script degrades to
# a loud skip (exit 0) when the binary is absent so local tier-1 workflows
# keep working — CI installs clang-tidy and is the enforcement point.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"
shift || true
[ "${1:-}" = "--" ] && shift

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy: '$TIDY' not found on PATH — skipping (CI enforces this check)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DBIOCHIP_EXAMPLES=OFF >/dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "run_tidy: $TIDY over ${#SOURCES[@]} files (db: $BUILD_DIR/compile_commands.json)"

FAILED=0
for f in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "$@" "$f"; then
    FAILED=1
    echo "run_tidy: FINDINGS in $f" >&2
  fi
done

if [ "$FAILED" -ne 0 ]; then
  echo "run_tidy: clang-tidy findings above — fix them or (rarely) add a justified NOLINT; see docs/static-analysis.md" >&2
  exit 1
fi
echo "run_tidy: clean"
