// Fixture: every banned nondeterminism source fires, annotated or not.
// expect: banned-source
// expect: clock-outside-obs
#include <chrono>
#include <cstdlib>
#include <random>

int jitter() {
  std::random_device rd;            // hardware entropy: unseeded state
  const int a = rand() % 7;         // C PRNG: process-global hidden state
  const auto t = std::chrono::steady_clock::now();  // wall-time dependence
  (void)t;
  return a + static_cast<int>(rd());
}
