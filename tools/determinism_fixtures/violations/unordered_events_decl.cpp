// Fixture: in an event-emitting file even declaring an unordered container
// needs a det-ok ordering argument.
// expect: unordered-iteration
// as-path: control/fixture_emitter.cpp
#include <unordered_map>

struct ControlEvent { int kind; };

int count_events() {
  std::unordered_map<int, int> per_site;
  per_site[3] = 1;
  return static_cast<int>(per_site.size());
}
