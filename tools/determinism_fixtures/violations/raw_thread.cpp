// Fixture: ad-hoc std::thread outside core/threadpool bypasses the pool's
// chunking contract.
// expect: raw-thread
// as-path: flow/fixture_campaign.cpp
#include <thread>

void fan_out() {
  std::thread worker([] {});
  worker.join();
}
