// Fixture: direct Rng construction in a pooled code path invents a stream
// outside the fork stream space.
// expect: rng-bypass
// as-path: control/fixture_ticker.cpp
struct Rng { explicit Rng(unsigned seed); };

void tick_chamber(unsigned chamber) {
  Rng rng(1234u + chamber);  // seed arithmetic instead of fork
  (void)rng;
}
