// Fixture: iterating an unordered container outside the event-emitting set
// still fires — the visit order is hash-seed-dependent.
// expect: unordered-iteration
// as-path: cad/fixture_router.cpp
#include <unordered_set>

int total(const int* xs, int n) {
  std::unordered_set<int> seen;
  for (int i = 0; i < n; ++i) seen.insert(xs[i]);
  int sum = 0;
  for (int v : seen) sum = sum * 31 + v;  // order-sensitive fold
  return sum;
}
