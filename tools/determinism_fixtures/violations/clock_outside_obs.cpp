// Fixture: a wall-clock read in simulation code fires even when the file is
// otherwise clean — only the obs/ timing plane may touch the clock.
// expect: clock-outside-obs
// as-path: control/timing_hack.cpp
#include <chrono>

int adaptive_budget(int base) {
  const auto t0 = std::chrono::steady_clock::now();
  return base + static_cast<int>(t0.time_since_epoch().count() % 2);
}
