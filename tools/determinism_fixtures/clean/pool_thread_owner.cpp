// Fixture: core/threadpool owns std::thread; hardware_concurrency and
// this_thread are free everywhere.
// as-path: core/threadpool.cpp
#include <thread>

unsigned lanes() { return std::thread::hardware_concurrency(); }
void pause_lane() { std::this_thread::yield(); }
