// Fixture: an event-emitting file may keep an unordered container with an
// explicit ordering argument.
// as-path: control/fixture_emitter_ok.cpp
#include <unordered_map>

struct ControlEvent { int kind; };

int lookup(int site) {
  // det-ok: keyed lookups only; events are emitted in sorted-site order
  std::unordered_map<int, int> per_site;
  per_site[3] = 1;
  return per_site.count(site) != 0U ? per_site.at(site) : 0;
}
