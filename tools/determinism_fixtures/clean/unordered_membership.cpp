// Fixture: membership-only unordered_set use outside the event-emitting set
// is order-free and stays clean without annotation.
// as-path: cad/fixture_visited.cpp
#include <unordered_set>

bool saw_twice(const int* xs, int n) {
  std::unordered_set<int> seen;
  for (int i = 0; i < n; ++i)
    if (!seen.insert(xs[i]).second) return true;
  return false;
}
