// Fixture: a justified det-ok on the banned source suppresses the finding.
#include <chrono>

double bench_window() {
  // det-ok: timing feeds a perf report only, never a simulation result
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
