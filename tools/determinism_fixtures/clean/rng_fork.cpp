// Fixture: pooled code drawing its stream from the fork stream space is the
// contract-conformant pattern.
// as-path: control/fixture_ticker_ok.cpp
struct Rng;

void tick_chamber(const Rng& base, unsigned chamber);

void tick_all(const Rng& base, unsigned chambers) {
  for (unsigned c = 0; c < chambers; ++c) tick_chamber(base, c);
}
