// Fixture: the timing plane owns the clock — a ::now() read under obs/ is
// allowed by path with no det-ok annotation needed.
// as-path: obs/span_clock.hpp
#include <chrono>
#include <cstdint>

std::uint64_t span_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
