#pragma once
/// \file optical.hpp
/// \brief Per-pixel optical (photodiode) sensing model — the alternative
/// detector the paper associates with each electrode.
///
/// Trans-illuminated chamber: a cell above the pixel shadows part of the
/// photodiode, reducing photocurrent. Noise is shot noise on the photo- and
/// dark currents over the integration time.

#include <cstddef>

namespace biochip::sensor {

struct OpticalPixel {
  double photodiode_area = 0.0;      ///< [m²]
  double responsivity = 0.3;         ///< [A/W] (junction photodiode, visible)
  double irradiance = 10.0;          ///< illumination at the chip [W/m²]
  double dark_current_density = 1e-6;  ///< [A/m²]
  double integration_time = 1e-3;    ///< per-frame integration [s]
  double shadow_contrast = 0.35;     ///< fractional irradiance loss under a cell

  /// Baseline photocurrent with no particle [A].
  double baseline_current() const;
  /// Photocurrent reduction caused by a particle of radius r centered at
  /// lateral offset `lateral` above the pixel (geometric shading) [A].
  double delta_current(double particle_radius, double lateral) const;
  /// Integrated charge noise (shot on photo+dark current) [C rms].
  double charge_noise() const;
  /// Single-frame SNR (signal charge over noise charge).
  double single_frame_snr(double particle_radius) const;
  /// SNR after n averaged frames.
  double averaged_snr(double particle_radius, std::size_t n_frames) const;
};

}  // namespace biochip::sensor
