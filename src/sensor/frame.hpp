#pragma once
/// \file frame.hpp
/// \brief Synthesis of (noisy) sensor frames from the physical scene.
///
/// A frame is a Grid2 of ΔC values (capacitance change vs. dry baseline),
/// one node per pixel, spacing = electrode pitch. The synthesizer owns the
/// per-pixel fixed-pattern offsets so raw vs. CDS readout can be compared.

#include <cstdint>
#include <vector>

#include "chip/defects.hpp"
#include "chip/electrode_array.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/optical.hpp"

namespace biochip::sensor {

/// Minimal particle description for imaging.
struct FrameTarget {
  Vec3 position;        ///< center [m] (chip-plane x,y; z above surface)
  double radius = 0.0;  ///< [m]
};

class FrameSynthesizer {
 public:
  /// `seed` fixes the per-pixel fixed-pattern offsets (a property of the
  /// chip, not of the frame).
  FrameSynthesizer(chip::ElectrodeArray array, CapacitivePixel pixel, double temperature,
                   std::uint64_t seed);

  const chip::ElectrodeArray& array() const { return array_; }
  const CapacitivePixel& pixel() const { return pixel_; }
  /// The chip's fixed-pattern offset map [F].
  const Grid2& offsets() const { return offsets_; }

  /// Noiseless ΔC image of the scene.
  Grid2 ideal_frame(const std::vector<FrameTarget>& targets) const;
  /// Single raw read: ideal + fixed-pattern offsets + random noise.
  Grid2 raw_frame(const std::vector<FrameTarget>& targets, Rng& rng) const;
  /// Correlated-double-sampled read: offsets cancel, random noise ×√2
  /// (two samples are differenced).
  Grid2 cds_frame(const std::vector<FrameTarget>& targets, Rng& rng) const;
  /// Mean of n CDS frames (the claim-C4 averaging path).
  Grid2 averaged_frame(const std::vector<FrameTarget>& targets, Rng& rng,
                       std::size_t n_frames) const;

  /// Per-frame random-noise σ of a CDS read [F].
  double cds_noise_sigma() const;

 private:
  chip::ElectrodeArray array_;
  CapacitivePixel pixel_;
  double temperature_;
  Grid2 offsets_;
};

/// Overlay manufacturing pixel faults on a synthesized ΔC frame (the sensor
/// side of `chip::DefectMap`): dead and stuck-background pixels read no
/// signal (ΔC = 0 — their readout or CDS chain is broken), stuck-cage pixels
/// read the constant `stuck_cage_dc` (a large negative ΔC that mimics a
/// permanently parked particle — the false-positive source a closed-loop
/// tracker must reject via DefectMap lookups). Frame and map must share the
/// array shape.
void apply_pixel_faults(Grid2& frame, const chip::DefectMap& defects,
                        double stuck_cage_dc);

/// Optical counterpart: frames of photocurrent *change* ΔI per pixel
/// (negative under a shadowing particle, so the same detectors apply).
/// Noise is shot noise on the baseline photo+dark current.
class OpticalFrameSynthesizer {
 public:
  OpticalFrameSynthesizer(chip::ElectrodeArray array, OpticalPixel pixel);

  const chip::ElectrodeArray& array() const { return array_; }
  const OpticalPixel& pixel() const { return pixel_; }

  /// Noiseless ΔI image of the scene [A].
  Grid2 ideal_frame(const std::vector<FrameTarget>& targets) const;
  /// Single integration with shot noise.
  Grid2 noisy_frame(const std::vector<FrameTarget>& targets, Rng& rng) const;
  /// Mean of n frames (shot noise averages down by √n).
  Grid2 averaged_frame(const std::vector<FrameTarget>& targets, Rng& rng,
                       std::size_t n_frames) const;

  /// Per-frame current-referred noise σ [A].
  double noise_sigma() const;

 private:
  chip::ElectrodeArray array_;
  OpticalPixel pixel_;
};

}  // namespace biochip::sensor
