#pragma once
/// \file capacitive.hpp
/// \brief Per-pixel capacitive sensing model (after Romani et al., ISSCC
/// 2004, ref [4] of the paper).
///
/// Each electrode doubles as a capacitance probe: the pixel senses the
/// electrode-to-lid capacitance through the liquid. A cell (ε_eff ~ 5 at the
/// sense frequency, vs. ~78.5 for the buffer) displacing liquid above the
/// electrode *reduces* the capacitance. The per-frame noise is kT/C sampling
/// noise plus an amplifier floor; correlated double sampling removes the
/// per-pixel offset, and N-frame averaging buys √N SNR — the paper's
/// "trade time of execution for quality of the results" (claim C4).

#include <cstddef>

#include "common/geometry.hpp"

namespace biochip::sensor {

/// Static electrical model of the capacitive pixel.
struct CapacitivePixel {
  double electrode_area = 0.0;       ///< metal area [m²]
  double chamber_height = 0.0;       ///< electrode-to-lid liquid gap [m]
  double passivation_thickness = 0.3e-6;  ///< dielectric over the metal [m]
  double passivation_eps_r = 7.0;    ///< Si3N4-class passivation
  double medium_eps_r = 78.5;        ///< buffer relative permittivity
  double particle_eps_r = 5.0;       ///< effective cell permittivity at sense freq
  double sense_voltage = 1.0;        ///< sampling reference [V]
  /// Amplifier input noise floor, *charge*-referred [C rms]. The ΔC-referred
  /// noise is this divided by the sense voltage — which is why sensing
  /// dynamic range "benefits from a larger supply voltage" (paper §2).
  double amp_noise_charge = 100e-18;
  double offset_sigma_farads = 3e-15;  ///< per-pixel fixed-pattern offset σ [F]
  double sensing_depth_factor = 0.5;   ///< λ = factor · sqrt(area) fringing depth

  /// Baseline (no particle) pixel capacitance: passivation in series with
  /// the liquid column [F].
  double baseline_capacitance() const;

  /// Characteristic vertical sensing depth λ [m].
  double sensing_depth() const;

  /// Capacitance change for a sphere of radius r whose center sits at height
  /// z above the chip surface and lateral offset `lateral` from the pixel
  /// center [F]. Negative (cell displaces high-ε liquid).
  double delta_c(double particle_radius, double z, double lateral) const;

  /// Per-frame random noise σ (kT/C sampling + amplifier floor), ΔC-referred
  /// [F rms] at temperature T [K].
  double frame_noise_sigma(double temperature) const;

  /// SNR of a single-frame detection of the given particle (CDS assumed:
  /// offset removed, random noise remains).
  double single_frame_snr(double particle_radius, double z, double temperature) const;

  /// SNR after averaging n frames (√n improvement on random noise).
  double averaged_snr(double particle_radius, double z, double temperature,
                      std::size_t n_frames) const;
};

/// Frames needed to reach `target_snr` for the given particle (claim C4's
/// time-for-quality trade; rounds up, minimum 1).
std::size_t frames_for_snr(const CapacitivePixel& pixel, double particle_radius, double z,
                           double temperature, double target_snr);

}  // namespace biochip::sensor
