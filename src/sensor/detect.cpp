#include "sensor/detect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace biochip::sensor {

namespace {

// 8-connected flood fill collecting cluster pixels (values already flagged).
struct Cluster {
  double weight_sum = 0.0;
  Vec2 weighted_pos{};
  double peak = 0.0;
  int count = 0;
};

std::vector<Detection> cluster_map(const Grid2& map, const chip::ElectrodeArray& array,
                                   double threshold, bool negative_signal) {
  const std::size_t nx = map.nx(), ny = map.ny();
  std::vector<std::uint8_t> visited(nx * ny, 0);
  auto flagged = [&](std::size_t i, std::size_t j) {
    const double v = map.at(i, j);
    return negative_signal ? (v <= -threshold) : (v >= threshold);
  };
  std::vector<Detection> out;
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t j0 = 0; j0 < ny; ++j0)
    for (std::size_t i0 = 0; i0 < nx; ++i0) {
      if (visited[j0 * nx + i0] || !flagged(i0, j0)) continue;
      Cluster cl;
      stack.clear();
      stack.emplace_back(i0, j0);
      visited[j0 * nx + i0] = 1;
      while (!stack.empty()) {
        const auto [i, j] = stack.back();
        stack.pop_back();
        const double mag = std::fabs(map.at(i, j));
        const Vec2 ctr = array.center({static_cast<int>(i), static_cast<int>(j)});
        cl.weight_sum += mag;
        cl.weighted_pos += ctr * mag;
        cl.peak = std::max(cl.peak, mag);
        ++cl.count;
        for (int dj = -1; dj <= 1; ++dj)
          for (int di = -1; di <= 1; ++di) {
            if (di == 0 && dj == 0) continue;
            const std::ptrdiff_t ni = static_cast<std::ptrdiff_t>(i) + di;
            const std::ptrdiff_t nj = static_cast<std::ptrdiff_t>(j) + dj;
            if (ni < 0 || nj < 0 || ni >= static_cast<std::ptrdiff_t>(nx) ||
                nj >= static_cast<std::ptrdiff_t>(ny))
              continue;
            const std::size_t ui = static_cast<std::size_t>(ni);
            const std::size_t uj = static_cast<std::size_t>(nj);
            if (visited[uj * nx + ui] || !flagged(ui, uj)) continue;
            visited[uj * nx + ui] = 1;
            stack.emplace_back(ui, uj);
          }
      }
      Detection d;
      d.position = cl.weighted_pos / cl.weight_sum;
      d.score = cl.peak;
      d.pixel_count = cl.count;
      out.push_back(d);
    }
  return out;
}

}  // namespace

std::vector<Detection> detect_threshold(const Grid2& frame,
                                        const chip::ElectrodeArray& array,
                                        double threshold) {
  BIOCHIP_REQUIRE(threshold > 0.0, "threshold must be positive");
  return cluster_map(frame, array, threshold, /*negative_signal=*/true);
}

std::vector<double> matched_kernel(const CapacitivePixel& pixel,
                                   const chip::ElectrodeArray& array,
                                   double particle_radius, double z, int half_extent) {
  BIOCHIP_REQUIRE(half_extent >= 0, "half extent must be >= 0");
  const int n = 2 * half_extent + 1;
  std::vector<double> kernel(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  double energy = 0.0;
  for (int dj = -half_extent; dj <= half_extent; ++dj)
    for (int di = -half_extent; di <= half_extent; ++di) {
      const double lateral = std::hypot(static_cast<double>(di), static_cast<double>(dj)) *
                             array.pitch();
      const double v = pixel.delta_c(particle_radius, z, lateral);
      kernel[static_cast<std::size_t>((dj + half_extent) * n + (di + half_extent))] = v;
      energy += v * v;
    }
  BIOCHIP_REQUIRE(energy > 0.0, "kernel has no energy");
  const double inv = 1.0 / std::sqrt(energy);
  for (double& v : kernel) v *= inv;
  return kernel;
}

Grid2 correlate(const Grid2& frame, const std::vector<double>& kernel, int half_extent) {
  const int n = 2 * half_extent + 1;
  BIOCHIP_REQUIRE(kernel.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  "kernel size does not match half extent");
  Grid2 out(frame.nx(), frame.ny(), frame.spacing());
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(frame.nx());
  const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(frame.ny());
  for (std::ptrdiff_t j = 0; j < ny; ++j)
    for (std::ptrdiff_t i = 0; i < nx; ++i) {
      double acc = 0.0;
      for (int dj = -half_extent; dj <= half_extent; ++dj)
        for (int di = -half_extent; di <= half_extent; ++di) {
          const std::ptrdiff_t si = i + di, sj = j + dj;
          if (si < 0 || sj < 0 || si >= nx || sj >= ny) continue;
          acc += frame.at(static_cast<std::size_t>(si), static_cast<std::size_t>(sj)) *
                 kernel[static_cast<std::size_t>((dj + half_extent) * n +
                                                 (di + half_extent))];
        }
      out.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = acc;
    }
  return out;
}

std::vector<Detection> detect_matched(const Grid2& frame, const chip::ElectrodeArray& array,
                                      const CapacitivePixel& pixel, double particle_radius,
                                      double z, double threshold) {
  BIOCHIP_REQUIRE(threshold > 0.0, "threshold must be positive");
  constexpr int kHalf = 1;
  const std::vector<double> kernel = matched_kernel(pixel, array, particle_radius, z, kHalf);
  Grid2 corr = correlate(frame, kernel, kHalf);
  // Kernel entries are negative (ΔC), so particle sites correlate to
  // negative peaks; flip for positive-peak clustering.
  for (double& v : corr.data()) v = -v;
  return cluster_map(corr, array, threshold, /*negative_signal=*/false);
}

std::vector<int> associate_detections(const std::vector<Vec2>& expected,
                                      const std::vector<Detection>& detections,
                                      double gate) {
  BIOCHIP_REQUIRE(gate > 0.0, "association gate must be positive");
  std::vector<int> assignment(expected.size(), -1);
  std::vector<std::uint8_t> det_used(detections.size(), 0);
  // Greedy nearest-pair assignment, the same scheme as match_detections:
  // strict < keeps the first (lowest-index) pair at equal distance.
  for (std::size_t round = 0; round < expected.size(); ++round) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t be = 0, bd = 0;
    bool found = false;
    for (std::size_t e = 0; e < expected.size(); ++e) {
      if (assignment[e] >= 0) continue;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (det_used[d]) continue;
        const double dist = (expected[e] - detections[d].position).norm();
        if (dist <= gate && dist < best) {
          best = dist;
          be = e;
          bd = d;
          found = true;
        }
      }
    }
    if (!found) break;
    assignment[be] = static_cast<int>(bd);
    det_used[bd] = 1;
  }
  return assignment;
}

double MatchStats::recall() const {
  const int denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double MatchStats::precision() const {
  const int denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

MatchStats match_detections(const std::vector<Vec2>& truth,
                            const std::vector<Detection>& detections, double tolerance) {
  BIOCHIP_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  MatchStats stats;
  std::vector<std::uint8_t> truth_used(truth.size(), 0);
  std::vector<std::uint8_t> det_used(detections.size(), 0);

  // Greedy nearest-pair matching.
  while (true) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bt = 0, bd = 0;
    bool found = false;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (truth_used[t]) continue;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (det_used[d]) continue;
        const double dist = (truth[t] - detections[d].position).norm();
        if (dist <= tolerance && dist < best) {
          best = dist;
          bt = t;
          bd = d;
          found = true;
        }
      }
    }
    if (!found) break;
    truth_used[bt] = 1;
    det_used[bd] = 1;
    ++stats.true_positives;
    stats.mean_localization_error += best;
  }
  if (stats.true_positives > 0) stats.mean_localization_error /= stats.true_positives;
  for (std::size_t t = 0; t < truth.size(); ++t)
    if (!truth_used[t]) ++stats.false_negatives;
  for (std::size_t d = 0; d < detections.size(); ++d)
    if (!det_used[d]) ++stats.false_positives;
  return stats;
}

}  // namespace biochip::sensor
