#include "sensor/roc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip::sensor {

std::vector<RocPoint> roc_sweep(const Grid2& frame, const chip::ElectrodeArray& array,
                                const std::vector<Vec2>& truth,
                                const std::vector<double>& thresholds,
                                double match_tolerance) {
  BIOCHIP_REQUIRE(!thresholds.empty(), "threshold list is empty");
  std::vector<RocPoint> out;
  out.reserve(thresholds.size());
  for (double th : thresholds) {
    const auto dets = detect_threshold(frame, array, th);
    const MatchStats stats = match_detections(truth, dets, match_tolerance);
    out.push_back({th, stats.recall(), stats.precision(), stats.false_positives});
  }
  return out;
}

double average_precision(const std::vector<RocPoint>& roc) {
  BIOCHIP_REQUIRE(!roc.empty(), "empty ROC");
  // Sort by recall and integrate precision d(recall).
  std::vector<RocPoint> pts = roc;
  std::sort(pts.begin(), pts.end(),
            [](const RocPoint& a, const RocPoint& b) { return a.recall < b.recall; });
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const RocPoint& p : pts) {
    ap += p.precision * (p.recall - prev_recall);
    prev_recall = p.recall;
  }
  return clamp(ap, 0.0, 1.0);
}

std::vector<double> log_thresholds(double lo, double hi, std::size_t points) {
  BIOCHIP_REQUIRE(lo > 0.0 && hi > lo && points >= 2, "invalid threshold sweep");
  std::vector<double> out;
  out.reserve(points);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(points - 1));
  for (std::size_t i = 0; i < points; ++i)
    out.push_back(hi / std::pow(ratio, static_cast<double>(i)));  // descending
  return out;
}

}  // namespace biochip::sensor
