#pragma once
/// \file scan.hpp
/// \brief Array readout timing (frame rate vs. array size — claims C3/C4).

#include <cstddef>

#include "chip/electrode_array.hpp"

namespace biochip::sensor {

/// Readout chain timing: row-select, column-parallel sampling, shared ADCs.
struct ScanTiming {
  double adc_rate = 1e6;       ///< conversions per second per ADC [Hz]
  int adc_channels = 8;        ///< parallel ADCs
  double row_settle_time = 2e-6;  ///< row select + front-end settle [s]

  /// Time to read every pixel once [s].
  double frame_time(const chip::ElectrodeArray& array) const;
  /// Frames per second for the array.
  double frame_rate(const chip::ElectrodeArray& array) const;
  /// Time to acquire n averaged frames [s].
  double acquisition_time(const chip::ElectrodeArray& array, std::size_t n_frames) const;
  /// Maximum averaging depth while keeping total acquisition below the time
  /// a cell needs to cross one pitch at `cell_speed` (the C3/C4 coupling:
  /// averaging must fit in the mass-transfer timescale).
  std::size_t max_frames_within_transit(const chip::ElectrodeArray& array,
                                        double cell_speed) const;
};

}  // namespace biochip::sensor
