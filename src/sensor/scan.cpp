#include "sensor/scan.hpp"

#include <cmath>

#include "chip/timing.hpp"
#include "common/error.hpp"

namespace biochip::sensor {

double ScanTiming::frame_time(const chip::ElectrodeArray& array) const {
  BIOCHIP_REQUIRE(adc_rate > 0.0 && adc_channels >= 1, "invalid ADC configuration");
  const double conversions = static_cast<double>(array.electrode_count());
  const double adc_time = conversions / (adc_rate * static_cast<double>(adc_channels));
  const double settle = static_cast<double>(array.rows()) * row_settle_time;
  return adc_time + settle;
}

double ScanTiming::frame_rate(const chip::ElectrodeArray& array) const {
  return 1.0 / frame_time(array);
}

double ScanTiming::acquisition_time(const chip::ElectrodeArray& array,
                                    std::size_t n_frames) const {
  BIOCHIP_REQUIRE(n_frames >= 1, "need at least one frame");
  return static_cast<double>(n_frames) * frame_time(array);
}

std::size_t ScanTiming::max_frames_within_transit(const chip::ElectrodeArray& array,
                                                  double cell_speed) const {
  const double budget = chip::pitch_transit_time(array.pitch(), cell_speed);
  const double per_frame = frame_time(array);
  const double n = std::floor(budget / per_frame);
  return n < 1.0 ? 0 : static_cast<std::size_t>(n);
}

}  // namespace biochip::sensor
