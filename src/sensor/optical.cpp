#include "sensor/optical.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::sensor {

double OpticalPixel::baseline_current() const {
  BIOCHIP_REQUIRE(photodiode_area > 0.0, "photodiode area must be positive");
  return responsivity * irradiance * photodiode_area +
         dark_current_density * photodiode_area;
}

double OpticalPixel::delta_current(double particle_radius, double lateral) const {
  BIOCHIP_REQUIRE(particle_radius > 0.0, "particle radius must be positive");
  // Shadow area: overlap of the particle's disc with the pixel, approximated
  // by the full disc attenuated with a Gaussian lateral falloff.
  const double disc = constants::pi * particle_radius * particle_radius;
  const double overlap = std::min(disc, photodiode_area);
  const double half_width = 0.5 * std::sqrt(photodiode_area);
  const double lat = std::exp(-0.5 * (lateral / half_width) * (lateral / half_width));
  return responsivity * irradiance * overlap * shadow_contrast * lat;
}

double OpticalPixel::charge_noise() const {
  BIOCHIP_REQUIRE(integration_time > 0.0, "integration time must be positive");
  const double i_total = baseline_current();
  // Shot noise: σ_q = sqrt(2 q I B) · T_int with B = 1/(2 T_int).
  return std::sqrt(2.0 * constants::qe * i_total * integration_time / 2.0);
}

double OpticalPixel::single_frame_snr(double particle_radius) const {
  const double signal_charge = delta_current(particle_radius, 0.0) * integration_time;
  return signal_charge / charge_noise();
}

double OpticalPixel::averaged_snr(double particle_radius, std::size_t n_frames) const {
  BIOCHIP_REQUIRE(n_frames >= 1, "need at least one frame");
  return single_frame_snr(particle_radius) * std::sqrt(static_cast<double>(n_frames));
}

}  // namespace biochip::sensor
