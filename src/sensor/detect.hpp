#pragma once
/// \file detect.hpp
/// \brief Particle detection and localization on sensor frames.
///
/// Two detectors:
///  * threshold: flag pixels with ΔC below −threshold, cluster 8-connected,
///    report |ΔC|-weighted centroids;
///  * matched filter: correlate with the expected particle footprint first
///    (optimal for white noise), then threshold the correlation map.
/// Scoring helpers compare detections against ground truth and sweep ROC
/// curves for claim C4.

#include <vector>

#include "chip/electrode_array.hpp"
#include "common/grid.hpp"
#include "sensor/capacitive.hpp"

namespace biochip::sensor {

/// One reported particle.
struct Detection {
  Vec2 position;       ///< centroid in chip coordinates [m]
  double score = 0.0;  ///< peak |signal| of the cluster [F or correlation units]
  int pixel_count = 0; ///< cluster size
};

/// Threshold detector. `threshold` is a positive ΔC magnitude [F]; pixels
/// with value <= -threshold participate.
std::vector<Detection> detect_threshold(const Grid2& frame,
                                        const chip::ElectrodeArray& array,
                                        double threshold);

/// Expected-footprint kernel (normalized to unit energy) for a particle of
/// the given radius resting at height z, sampled on the pixel lattice.
/// `half_extent` pixels on each side (kernel is (2h+1)²).
std::vector<double> matched_kernel(const CapacitivePixel& pixel,
                                   const chip::ElectrodeArray& array,
                                   double particle_radius, double z, int half_extent = 1);

/// Correlate the frame with a kernel (zero-padded borders). Output units:
/// noise-normalized if the caller divides by σ√E; here raw correlation.
Grid2 correlate(const Grid2& frame, const std::vector<double>& kernel, int half_extent);

/// Matched-filter detector: correlation map thresholded at `threshold`
/// (note the map flips sign, so peaks are positive).
std::vector<Detection> detect_matched(const Grid2& frame, const chip::ElectrodeArray& array,
                                      const CapacitivePixel& pixel, double particle_radius,
                                      double z, double threshold);

/// Ground-truth match result.
struct MatchStats {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double mean_localization_error = 0.0;  ///< over TPs [m]

  double recall() const;
  double precision() const;
};

/// Greedy nearest-first matching of detections to truth within `tolerance`.
MatchStats match_detections(const std::vector<Vec2>& truth,
                            const std::vector<Detection>& detections, double tolerance);

/// Detection→track adapter for closed-loop supervision: greedy nearest-first
/// assignment of detections to `expected` positions (per-cage trap centers)
/// within `gate`. Returns, per expected position, the index of its matched
/// detection or -1; each detection is used at most once. Ties and order are
/// deterministic (nearest pair first; lower indices win at equal distance),
/// so the tracker built on top stays bitwise reproducible.
std::vector<int> associate_detections(const std::vector<Vec2>& expected,
                                      const std::vector<Detection>& detections,
                                      double gate);

}  // namespace biochip::sensor
