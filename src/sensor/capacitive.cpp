#include "sensor/capacitive.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::sensor {

double CapacitivePixel::baseline_capacitance() const {
  BIOCHIP_REQUIRE(electrode_area > 0.0, "electrode area must be positive");
  BIOCHIP_REQUIRE(chamber_height > 0.0, "chamber height must be positive");
  const double c_pass =
      passivation_eps_r * constants::epsilon0 * electrode_area / passivation_thickness;
  const double c_liquid = medium_eps_r * constants::epsilon0 * electrode_area / chamber_height;
  return c_pass * c_liquid / (c_pass + c_liquid);
}

double CapacitivePixel::sensing_depth() const {
  return sensing_depth_factor * std::sqrt(electrode_area);
}

double CapacitivePixel::delta_c(double particle_radius, double z, double lateral) const {
  BIOCHIP_REQUIRE(particle_radius > 0.0, "particle radius must be positive");
  const double lambda = sensing_depth();
  // Fraction of the fringing sensing volume (area × λ) displaced by the
  // sphere, attenuated exponentially with the gap below the sphere and
  // with a Gaussian lateral falloff over the electrode half-width.
  const double v_sphere =
      (4.0 / 3.0) * constants::pi * particle_radius * particle_radius * particle_radius;
  const double v_sense = electrode_area * lambda;
  double fill = v_sphere / v_sense;
  if (fill > 1.0) fill = 1.0;
  const double gap = std::max(z - particle_radius, 0.0);
  const double vertical = std::exp(-gap / lambda);
  const double half_width = 0.5 * std::sqrt(electrode_area);
  const double lat = std::exp(-0.5 * (lateral / half_width) * (lateral / half_width));
  const double contrast = (medium_eps_r - particle_eps_r) / medium_eps_r;
  return -baseline_capacitance() * contrast * fill * vertical * lat;
}

double CapacitivePixel::frame_noise_sigma(double temperature) const {
  BIOCHIP_REQUIRE(temperature > 0.0, "temperature must be positive");
  BIOCHIP_REQUIRE(sense_voltage > 0.0, "sense voltage must be positive");
  // Both noise sources live in charge: kT/C sampling noise and the amplifier
  // floor. Referring to capacitance divides by the sense voltage, so a
  // higher supply directly buys SNR (paper §2).
  const double c = baseline_capacitance();
  const double q_ktc = std::sqrt(constants::kB * temperature * c);
  const double q_total = std::sqrt(q_ktc * q_ktc + amp_noise_charge * amp_noise_charge);
  return q_total / sense_voltage;
}

double CapacitivePixel::single_frame_snr(double particle_radius, double z,
                                         double temperature) const {
  return std::fabs(delta_c(particle_radius, z, 0.0)) / frame_noise_sigma(temperature);
}

double CapacitivePixel::averaged_snr(double particle_radius, double z, double temperature,
                                     std::size_t n_frames) const {
  BIOCHIP_REQUIRE(n_frames >= 1, "need at least one frame");
  return single_frame_snr(particle_radius, z, temperature) *
         std::sqrt(static_cast<double>(n_frames));
}

std::size_t frames_for_snr(const CapacitivePixel& pixel, double particle_radius, double z,
                           double temperature, double target_snr) {
  BIOCHIP_REQUIRE(target_snr > 0.0, "target SNR must be positive");
  const double single = pixel.single_frame_snr(particle_radius, z, temperature);
  if (single <= 0.0) throw NumericError("particle produces no signal");
  const double n = (target_snr / single) * (target_snr / single);
  return n <= 1.0 ? 1 : static_cast<std::size_t>(std::ceil(n));
}

}  // namespace biochip::sensor
