#include "sensor/frame.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip::sensor {

FrameSynthesizer::FrameSynthesizer(chip::ElectrodeArray array, CapacitivePixel pixel,
                                   double temperature, std::uint64_t seed)
    : array_(array), pixel_(pixel), temperature_(temperature),
      offsets_(static_cast<std::size_t>(array.cols()), static_cast<std::size_t>(array.rows()),
               array.pitch()) {
  BIOCHIP_REQUIRE(temperature > 0.0, "temperature must be positive");
  Rng rng(seed);
  for (double& v : offsets_.data()) v = rng.normal(0.0, pixel_.offset_sigma_farads);
}

Grid2 FrameSynthesizer::ideal_frame(const std::vector<FrameTarget>& targets) const {
  Grid2 frame(static_cast<std::size_t>(array_.cols()),
              static_cast<std::size_t>(array_.rows()), array_.pitch());
  // Each particle contributes to pixels within a 2-pitch lateral window.
  const double window = 2.0 * array_.pitch();
  for (const FrameTarget& t : targets) {
    BIOCHIP_REQUIRE(t.radius > 0.0, "target radius must be positive");
    const GridCoord lo = array_.nearest({t.position.x - window, t.position.y - window});
    const GridCoord hi = array_.nearest({t.position.x + window, t.position.y + window});
    for (int r = lo.row; r <= hi.row; ++r)
      for (int c = lo.col; c <= hi.col; ++c) {
        const Vec2 ctr = array_.center({c, r});
        const double lateral = (ctr - Vec2{t.position.x, t.position.y}).norm();
        frame.at(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) +=
            pixel_.delta_c(t.radius, t.position.z, lateral);
      }
  }
  return frame;
}

Grid2 FrameSynthesizer::raw_frame(const std::vector<FrameTarget>& targets, Rng& rng) const {
  Grid2 frame = ideal_frame(targets);
  const double sigma = pixel_.frame_noise_sigma(temperature_);
  for (std::size_t n = 0; n < frame.size(); ++n)
    frame.data()[n] += offsets_.data()[n] + rng.normal(0.0, sigma);
  return frame;
}

Grid2 FrameSynthesizer::cds_frame(const std::vector<FrameTarget>& targets, Rng& rng) const {
  Grid2 frame = ideal_frame(targets);
  const double sigma = cds_noise_sigma();
  for (double& v : frame.data()) v += rng.normal(0.0, sigma);
  return frame;
}

Grid2 FrameSynthesizer::averaged_frame(const std::vector<FrameTarget>& targets, Rng& rng,
                                       std::size_t n_frames) const {
  BIOCHIP_REQUIRE(n_frames >= 1, "need at least one frame");
  Grid2 acc = ideal_frame(targets);
  // Equivalent to averaging n CDS frames: noise σ scales by 1/√n.
  const double sigma = cds_noise_sigma() / std::sqrt(static_cast<double>(n_frames));
  for (double& v : acc.data()) v += rng.normal(0.0, sigma);
  return acc;
}

double FrameSynthesizer::cds_noise_sigma() const {
  return pixel_.frame_noise_sigma(temperature_) * std::sqrt(2.0);
}

void apply_pixel_faults(Grid2& frame, const chip::DefectMap& defects,
                        double stuck_cage_dc) {
  BIOCHIP_REQUIRE(frame.nx() == static_cast<std::size_t>(defects.cols()) &&
                      frame.ny() == static_cast<std::size_t>(defects.rows()),
                  "frame and defect map shapes differ");
  for (int r = 0; r < defects.rows(); ++r)
    for (int c = 0; c < defects.cols(); ++c) {
      const chip::PixelState s = defects.state({c, r});
      if (s == chip::PixelState::kOk) continue;
      frame.at(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) =
          s == chip::PixelState::kStuckCage ? stuck_cage_dc : 0.0;
    }
}

OpticalFrameSynthesizer::OpticalFrameSynthesizer(chip::ElectrodeArray array,
                                                 OpticalPixel pixel)
    : array_(array), pixel_(pixel) {
  BIOCHIP_REQUIRE(pixel.photodiode_area > 0.0, "photodiode area must be positive");
}

Grid2 OpticalFrameSynthesizer::ideal_frame(const std::vector<FrameTarget>& targets) const {
  Grid2 frame(static_cast<std::size_t>(array_.cols()),
              static_cast<std::size_t>(array_.rows()), array_.pitch());
  const double window = 2.0 * array_.pitch();
  for (const FrameTarget& t : targets) {
    BIOCHIP_REQUIRE(t.radius > 0.0, "target radius must be positive");
    const GridCoord lo = array_.nearest({t.position.x - window, t.position.y - window});
    const GridCoord hi = array_.nearest({t.position.x + window, t.position.y + window});
    for (int r = lo.row; r <= hi.row; ++r)
      for (int c = lo.col; c <= hi.col; ++c) {
        const Vec2 ctr = array_.center({c, r});
        const double lateral = (ctr - Vec2{t.position.x, t.position.y}).norm();
        frame.at(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) -=
            pixel_.delta_current(t.radius, lateral);
      }
  }
  return frame;
}

Grid2 OpticalFrameSynthesizer::noisy_frame(const std::vector<FrameTarget>& targets,
                                           Rng& rng) const {
  Grid2 frame = ideal_frame(targets);
  const double sigma = noise_sigma();
  for (double& v : frame.data()) v += rng.normal(0.0, sigma);
  return frame;
}

Grid2 OpticalFrameSynthesizer::averaged_frame(const std::vector<FrameTarget>& targets,
                                              Rng& rng, std::size_t n_frames) const {
  BIOCHIP_REQUIRE(n_frames >= 1, "need at least one frame");
  Grid2 frame = ideal_frame(targets);
  const double sigma = noise_sigma() / std::sqrt(static_cast<double>(n_frames));
  for (double& v : frame.data()) v += rng.normal(0.0, sigma);
  return frame;
}

double OpticalFrameSynthesizer::noise_sigma() const {
  // Charge noise over the integration time, referred back to current.
  return pixel_.charge_noise() / pixel_.integration_time;
}

}  // namespace biochip::sensor
