#pragma once
/// \file roc.hpp
/// \brief Receiver-operating-characteristic sweeps for the detectors.

#include <vector>

#include "chip/electrode_array.hpp"
#include "common/grid.hpp"
#include "sensor/detect.hpp"

namespace biochip::sensor {

/// One ROC operating point.
struct RocPoint {
  double threshold = 0.0;  ///< absolute |ΔC| (or |ΔI|) threshold
  double recall = 0.0;     ///< TP / (TP + FN)
  double precision = 0.0;  ///< TP / (TP + FP)
  int false_positives = 0;
};

/// Sweep the threshold detector over `thresholds` (descending recommended)
/// against ground truth on a single frame.
std::vector<RocPoint> roc_sweep(const Grid2& frame, const chip::ElectrodeArray& array,
                                const std::vector<Vec2>& truth,
                                const std::vector<double>& thresholds,
                                double match_tolerance);

/// Area under the recall-vs-threshold-normalized curve via trapezoids over
/// the precision-recall points (average precision flavored; in [0,1]).
double average_precision(const std::vector<RocPoint>& roc);

/// Log-spaced thresholds from lo to hi (inclusive), descending.
std::vector<double> log_thresholds(double lo, double hi, std::size_t points);

}  // namespace biochip::sensor
