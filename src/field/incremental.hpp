#pragma once
/// \file incremental.hpp
/// \brief Incremental local field updates: cached global solution plus
/// windowed dirty-region corrections, re-anchored by a periodic full solve.
///
/// The chip moves one cage a few pitch lengths per actuation step, so
/// consecutive drive patterns differ at O(moved cages) electrodes while the
/// whole-array solve the pattern nominally requires is O(grid). This class
/// exploits that locality: it caches the global Laplace solution for the
/// current drive vector and, when a drive update changes only a few
/// electrodes, relaxes a region-of-influence window around each changed
/// footprint (`MultigridWorkspace::solve_window`) instead of re-solving the
/// array. Windows that overlap or are stencil-adjacent merge into one box
/// before relaxing. The neglected exterior correction decays like a dipole
/// field past the window edge; a periodic full solve (the configured cycle,
/// FMG in the production wiring) re-anchors the cached solution and bounds
/// the accumulated drift. Re-anchor solves restart from a zeroed interior,
/// so their result is bitwise identical to a cold full solve of the same
/// boundary data — which is exactly the equivalence oracle the test harness
/// compares against (`tests/test_field_incremental.cpp`).
///
/// Determinism: updates are a pure function of the drive sequence — changed
/// electrodes are detected by exact comparison, window clusters merge and
/// relax in ascending electrode order, and the windowed kernel is bitwise
/// identical serial vs pooled for every `SolverOptions::threads`.

#include <cstddef>
#include <vector>

#include "common/grid.hpp"
#include "field/boundary.hpp"
#include "field/solver.hpp"

namespace biochip::field {

/// Tracks the real (single-quadrature) chamber potential for a fixed
/// electrode layout under a changing per-electrode drive vector.
class IncrementalPotential {
 public:
  /// What one `update` call did.
  struct UpdateReport {
    bool reanchored = false;       ///< ran the full-solve oracle this update
    std::size_t changed = 0;       ///< electrodes whose drive changed
    std::size_t windows = 0;       ///< merged window clusters relaxed
    double window_fraction = 0.0;  ///< summed window volume / grid volume
    SolveStats stats;              ///< summed stats of the passes executed
  };

  /// `pitch` is the electrode pitch [m] the window-radius policy
  /// (`opts.incremental.window_radius_pitches`) is quoted in. All electrode
  /// nodes stay Dirichlet for every drive (undriven metal is grounded), so
  /// the fixed mask — and with it the multigrid hierarchy — never changes.
  IncrementalPotential(const ChamberDomain& domain, std::vector<Rect> footprints,
                       bool lid_present, double pitch, const SolverOptions& opts = {});

  std::size_t electrode_count() const { return footprints_.size(); }
  /// The cached global solution for the current drive vector.
  const Grid3& potential() const { return phi_; }
  /// The current boundary condition (mask fixed for the layout's lifetime).
  const DirichletBc& boundary() const { return bc_; }
  /// Cumulative work counters (full vs window solves, window volume
  /// trajectory) — feeds `obs::fold_solver`.
  const SolveAccounting& accounting() const { return workspace_.accounting(); }

  /// Set the per-electrode drives [V] (+ lid drive when a lid is present).
  /// The first call runs a full solve; later calls relax only merged windows
  /// around changed electrodes. Every `opts.incremental.reanchor_period`-th
  /// effective (non-no-op) update — and any lid change, which perturbs the
  /// whole top plane — runs the full solve instead. A call with no changes
  /// is a bitwise no-op and does not advance the re-anchor cadence.
  UpdateReport update(const std::vector<double>& drive, double lid_drive = 0.0);

  /// Force a full re-anchor solve of the current boundary data now.
  SolveStats reanchor();

  /// Independent full solve of the current boundary data from a cold start —
  /// the equivalence oracle. Bitwise equal to the cached solution right
  /// after a re-anchor; within the window policy's tolerance everywhere
  /// else.
  Grid3 oracle() const;

  /// Region-of-influence window of electrode `e`: its footprint's node box,
  /// dilated laterally by the policy radius and extended the same distance
  /// up from the chip plane, clamped to the grid. Exposed for the property
  /// and fuzz suites.
  GridBox electrode_window(std::size_t e) const;

 private:
  SolveStats full_solve();

  ChamberDomain domain_;
  std::vector<Rect> footprints_;
  bool lid_present_;
  SolverOptions opts_;
  std::size_t radius_nodes_;              ///< window dilation radius [nodes]
  Grid3 phi_;                             ///< cached global solution
  DirichletBc bc_;                        ///< current boundary data
  std::vector<std::vector<std::size_t>> nodes_;  ///< chip-plane nodes per electrode
  std::vector<GridBox> footprint_box_;    ///< chip-plane node box per electrode
  std::vector<double> last_drive_;
  double last_lid_ = 0.0;
  bool primed_ = false;                   ///< first full solve done
  std::size_t since_anchor_ = 0;          ///< effective updates since re-anchor
  MultigridWorkspace workspace_;
};

}  // namespace biochip::field
