#pragma once
/// \file boundary.hpp
/// \brief Maps chip electrodes and the chamber lid onto solver boundary
/// conditions.
///
/// The simulated domain is a box of liquid: the chip surface is the z=0
/// plane, the (optionally conductive, e.g. ITO-coated glass) lid is the top
/// plane. Electrodes are rectangular metal patches on z=0 driven with AC
/// phasors; the passivation between them is insulating (Neumann).

#include <complex>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/grid.hpp"
#include "field/solver.hpp"

namespace biochip::field {

/// One driven metal patch on the chip surface.
struct ElectrodePatch {
  Rect footprint;                      ///< extent in the chip plane [m]
  std::complex<double> phasor{0.0, 0.0};  ///< amplitude & phase of drive [V]
};

/// The discretized fluid chamber above the chip.
struct ChamberDomain {
  double width_x = 0.0;   ///< chamber extent along x [m]
  double width_y = 0.0;   ///< chamber extent along y [m]
  double height = 0.0;    ///< lid gap [m]
  double spacing = 0.0;   ///< grid node pitch [m]

  std::size_t nodes_x() const;
  std::size_t nodes_y() const;
  std::size_t nodes_z() const;
  /// Construct an empty potential grid for this domain.
  Grid3 make_grid() const;
};

/// Real and imaginary Dirichlet BC pair for a phasor solve.
struct PhasorBc {
  DirichletBc re;
  DirichletBc im;
};

/// Build BCs: every node under an electrode footprint is pinned to that
/// electrode's phasor; if `lid` is set, every node of the top plane is pinned
/// to the lid phasor. Overlapping electrodes are a configuration error.
PhasorBc build_boundary(const ChamberDomain& domain,
                        const std::vector<ElectrodePatch>& electrodes,
                        std::optional<std::complex<double>> lid);

/// Reference cage-electrode boundary condition on an n×n×nz grid: a 3×3
/// electrode patch layout with 10% inter-electrode gaps on the chip plane
/// (center patch at +v, neighbors at -v) and a conductive lid at +v. The
/// canonical production-shaped workload shared by the solver benchmarks and
/// the multigrid tests, with gaps wide enough that every coarse level still
/// resolves them.
DirichletBc cage_reference_bc(const Grid3& grid, double v);

/// Thin-gap variant of the cage-electrode BC: a 3×3 patch layout on the
/// chip plane whose inter-electrode gaps are exactly `gap_nodes` grid nodes
/// wide (plus the conductive lid at +v). This is the low nodes-per-pitch
/// calibration-patch geometry of the paper's chip: with 1–2-node gaps, mask
/// injection erases the gap on the first coarse level, which is the case
/// the Galerkin (RAP) coarse operators exist to handle. Center patch at +v,
/// neighbors at −v.
DirichletBc cage_thin_gap_bc(const Grid3& grid, double v, std::size_t gap_nodes = 1);

}  // namespace biochip::field
