#pragma once
/// \file solver.hpp
/// \brief Finite-difference Laplace/Poisson solver on a regular 3D grid.
///
/// Discretizes ∇²φ = f with a 7-point stencil. Boundary handling:
///  * nodes flagged in the Dirichlet mask hold their prescribed value
///    (electrode metal, lid plane);
///  * all other boundary faces are homogeneous Neumann (mirror symmetry),
///    which models the insulating chip passivation between electrodes and
///    the fluid-chamber side walls.
///
/// Four solution strategies are provided:
///  * red-black successive over-relaxation (SOR);
///  * multilevel nested iteration (coarse-to-fine SOR cascade), kept as the
///    equivalence/regression oracle for the cycles below;
///  * a true multigrid V-cycle (CycleType::vcycle, the production path):
///    pre-smoothing, residual restriction by full weighting, recursive
///    coarse-grid correction of the error equation ∇²e = r, trilinear
///    prolongation with correction and post-smoothing. Coarse-level
///    operators are Galerkin (RAP) products — 27-point variable-coefficient
///    stencils that keep sub-coarse-grid boundary features (1–2-node
///    electrode gaps) represented on every level, so the cycle contracts at
///    a grid-independent rate on every boundary geometry the chip model
///    produces. Solve cost is effectively linear in node count;
///  * full multigrid (CycleType::fmg): nested iteration through the same
///    Galerkin hierarchy — coarsest-level solve, prolongate, one or two
///    V-cycles per level — combining the cascade's cheap initial guess with
///    the V-cycle's O(N) error correction.
///
/// Every operator (smoothing, residual, restriction, prolongation) runs on
/// the shared plane-wise stencil kernel (`field/stencil_kernel.hpp`):
/// checked-free strided layout, AVX2-vectorized stride-1 row loops with a
/// bit-identical scalar fallback, and z-plane fan-out over the worker pool
/// that is bitwise-identical to serial execution for every thread count.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/grid.hpp"

namespace biochip::field {

/// Dirichlet boundary specification: `fixed[n] != 0` pins node n to `value[n]`.
struct DirichletBc {
  std::vector<std::uint8_t> fixed;  ///< one flag per grid node
  std::vector<double> value;        ///< prescribed potential per node [V]

  /// Construct an all-free BC sized for the given grid.
  static DirichletBc all_free(const Grid3& grid);
};

/// Multilevel strategy selector.
enum class CycleType {
  cascade,  ///< coarse-to-fine nested iteration (initial-guess improvement only)
  vcycle,   ///< residual-restricting V-cycle (coarse-grid error correction)
  fmg,      ///< full multigrid: nested-iteration start + V-cycles per level
};

/// Axis-aligned, inclusive node-index box — the region of influence of a
/// localized boundary change, used by the dirty-region (windowed) solver
/// API. All helpers are value-returning and total: dilation saturates at the
/// lower grid corner, clamping never produces indices past the grid, and an
/// empty box (any hi < lo) stays empty through every operation.
struct GridBox {
  std::size_t i0 = 1, j0 = 1, k0 = 1;  ///< inclusive low corner
  std::size_t i1 = 0, j1 = 0, k1 = 0;  ///< inclusive high corner

  /// Canonical empty box (default-constructed state).
  static GridBox none() { return {}; }
  /// The whole grid as one box.
  static GridBox all(const Grid3& g) {
    return {0, 0, 0, g.nx() - 1, g.ny() - 1, g.nz() - 1};
  }

  bool empty() const { return i1 < i0 || j1 < j0 || k1 < k0; }
  std::size_t volume() const {
    return empty() ? 0 : (i1 - i0 + 1) * (j1 - j0 + 1) * (k1 - k0 + 1);
  }
  bool contains(std::size_t i, std::size_t j, std::size_t k) const {
    return !empty() && i0 <= i && i <= i1 && j0 <= j && j <= j1 && k0 <= k && k <= k1;
  }
  /// True when the boxes share at least one node.
  bool intersects(const GridBox& o) const {
    return !empty() && !o.empty() && i0 <= o.i1 && o.i0 <= i1 && j0 <= o.j1 &&
           o.j0 <= j1 && k0 <= o.k1 && o.k0 <= k1;
  }
  /// True when the boxes overlap or are stencil-coupled (within one node of
  /// each other on every axis) — the merge criterion for window clustering:
  /// adjacent windows exchange information through shared 7-point neighbors,
  /// so they must relax as one box.
  bool touches(const GridBox& o) const { return dilated(1).intersects(o); }
  /// Bounding-box union; merging with an empty box returns the other box.
  GridBox merged(const GridBox& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(i0, o.i0), std::min(j0, o.j0), std::min(k0, o.k0),
            std::max(i1, o.i1), std::max(j1, o.j1), std::max(k1, o.k1)};
  }
  /// Grow by r nodes on every side (saturating at index 0; the caller clamps
  /// the high side against the grid).
  GridBox dilated(std::size_t r) const {
    if (empty()) return *this;
    return {i0 > r ? i0 - r : 0, j0 > r ? j0 - r : 0, k0 > r ? k0 - r : 0,
            i1 + r, j1 + r, k1 + r};
  }
  /// Intersect with the grid's index range [0, n-1] per axis; a box entirely
  /// outside the grid becomes empty.
  GridBox clamped(std::size_t nx, std::size_t ny, std::size_t nz) const {
    if (empty()) return none();
    GridBox b = *this;
    b.i1 = std::min(b.i1, nx - 1);
    b.j1 = std::min(b.j1, ny - 1);
    b.k1 = std::min(b.k1, nz - 1);
    return b.empty() ? none() : b;
  }
  bool operator==(const GridBox& o) const = default;
};

/// Policy block for incremental local field updates (the dirty-region path:
/// windowed corrections stitched into a cached global solution, re-anchored
/// by a periodic full solve — see `field/incremental.hpp` and docs/perf.md,
/// "Incremental field updates").
struct IncrementalOptions {
  /// Region-of-influence radius around a changed electrode, in electrode
  /// pitch lengths. The induced potential change decays like a dipole field
  /// past the electrode edge, so ~1.5 pitches bounds the neglected exterior
  /// correction at roughly the solver tolerance for chamber-scale drives.
  double window_radius_pitches = 1.5;
  /// Windowed-correction convergence target on the max node update [V].
  double tolerance = 1e-6;
  /// Hard sweep cap per windowed correction (windows are tiny, so this is a
  /// runaway guard, not a tuning knob).
  std::size_t max_sweeps = 512;
  /// Full-solve re-anchor cadence: every N-th update runs the complete FMG
  /// oracle instead of a windowed correction, discarding any accumulated
  /// exterior drift. 0 = never re-anchor.
  std::size_t reanchor_period = 64;
};

/// Solver configuration.
struct SolverOptions {
  double tolerance = 1e-6;       ///< max node update [V] at which to stop
  std::size_t max_sweeps = 20000;  ///< hard iteration cap per level
  double omega = 0.0;            ///< SOR factor; 0 = auto (optimal for plain SOR,
                                 ///< 1.15 for V-cycle smoothing sweeps)
  bool multilevel = true;        ///< use the grid hierarchy when the grid allows
  CycleType cycle = CycleType::vcycle;  ///< hierarchy strategy when multilevel
  std::size_t pre_smooth = 2;    ///< V-cycle smoothing sweeps before restriction
  std::size_t post_smooth = 2;   ///< V-cycle smoothing sweeps after correction
  std::size_t max_cycles = 60;   ///< V-cycle cap
  std::size_t fmg_level_cycles = 1;  ///< FMG: V-cycles per level on the way up
  /// V-cycle convergence target on the residual norm max|Σnb/6 − φ −
  /// h²f/6| (the `laplacian_residual` units); 0 = use `tolerance`.
  double cycle_tolerance = 0.0;
  /// Sweep parallelism: 1 = serial (default), N > 1 = fan z-planes over N
  /// pool lanes, 0 = one lane per hardware thread. Every operator is
  /// plane-decomposed so the result is bitwise identical to the serial
  /// solve for every thread count.
  std::size_t threads = 1;
  /// Dirty-region policy consumed by `MultigridWorkspace::solve_window` and
  /// the incremental trackers built on it.
  IncrementalOptions incremental;
};

/// Convergence report.
struct SolveStats {
  std::size_t sweeps = 0;        ///< fine-grid smoothing sweeps executed
  std::size_t total_sweeps = 0;  ///< smoothing sweeps across all levels
  /// Work in fine-grid-sweep equivalents: every smoothing sweep, residual,
  /// restriction, prolongation and norm pass weighted by its level's node
  /// count relative to the finest grid. The honest cross-strategy cost
  /// metric (see docs/perf.md).
  double fine_equiv_sweeps = 0.0;
  std::size_t cycles = 0;        ///< V-cycles executed (0 for SOR/cascade)
  double final_update = 0.0;     ///< last max-update norm [V]
  double final_residual = 0.0;   ///< last residual norm [V] (V-cycle path)
  bool converged = false;
};

/// Cumulative solver work across every `solve_laplace` / `solve_poisson`
/// call that used one `MultigridWorkspace` — the counting-plane telemetry
/// source (`obs::fold_solver`). Sums of the per-call `SolveStats` by
/// construction, so registry metrics reconcile exactly with the counters
/// the benches accumulate themselves (tests/test_obs.cpp pins this).
struct SolveAccounting {
  std::uint64_t solves = 0;  ///< full-grid solves (the oracle / re-anchor path)
  std::uint64_t cycles = 0;
  std::uint64_t total_sweeps = 0;
  double fine_equiv_sweeps = 0.0;
  double last_residual = 0.0;  ///< final_residual of the most recent solve
  /// Incremental (dirty-region) corrections routed through `solve_window`.
  std::uint64_t window_solves = 0;
  /// Summed window volume over fine-grid volume across window solves; the
  /// mean window fraction is `window_fraction_sum / window_solves`.
  double window_fraction_sum = 0.0;

  void account(const SolveStats& stats) {
    ++solves;
    cycles += stats.cycles;
    total_sweeps += stats.total_sweeps;
    fine_equiv_sweeps += stats.fine_equiv_sweeps;
    last_residual = stats.final_residual;
  }

  /// Windowed corrections do not count as full solves: they contribute their
  /// (box-weighted) sweep work plus the window-volume trajectory.
  void account_window(const SolveStats& stats, double volume_fraction) {
    ++window_solves;
    window_fraction_sum += volume_fraction;
    total_sweeps += stats.total_sweeps;
    fine_equiv_sweeps += stats.fine_equiv_sweeps;
    last_residual = stats.final_residual;
  }
};

/// Reusable multigrid hierarchy: coarse-level error grids, restricted
/// Dirichlet masks, Galerkin (RAP) coarse-operator stencils and residual
/// scratch, allocated once and shared across solves on the same grid shape
/// (e.g. the per-electrode basis solves of a BasisCache). `prepare` is cheap
/// when shape and mask are unchanged.
class MultigridWorkspace {
 public:
  struct Level {
    Grid3 e;                          ///< error grid (zeroed per cycle)
    std::vector<double> rhs;          ///< restricted residual (physical units)
    std::vector<double> res;          ///< this level's own residual scratch
    std::vector<std::uint8_t> fixed;  ///< restricted Dirichlet mask (e = 0 there)
    std::vector<std::uint8_t> plane_fixed;  ///< per-plane any-Dirichlet flags
    /// Galerkin coarse operator A_l = R·A_{l-1}·P as a 27-point stencil with
    /// per-node coefficients, structure-of-arrays: coefficient of offset m
    /// for node n at stencil[m * e.size() + n] (see stencil_kernel.hpp).
    std::vector<double> stencil;
    std::vector<double> inv_diag;  ///< 1/diagonal per node; 0 at fixed nodes
    /// Per-row ((k·ny + j)) flag: every interior node of the row holds the
    /// level's translation-invariant interior stencil (build_rap's per-node
    /// uniformity, chained level to level), so the smoother may broadcast
    /// `uniform_stencil` instead of streaming 27 coefficient planes.
    std::vector<std::uint8_t> row_uniform;
    std::array<double, 27> uniform_stencil{};  ///< interior constant (uniform_rap)
    double uniform_inv_diag = 0.0;  ///< 1/uniform_stencil[13]; 0 when degenerate
  };

  /// (Re)derive the hierarchy for `fine` + `bc`: reuses every allocation
  /// when the shape matches the previous call and skips mask restriction
  /// and the RAP rebuild when the fixed mask is byte-identical.
  void prepare(const Grid3& fine, const DirichletBc& bc);

  std::vector<Level>& levels() { return levels_; }
  std::vector<double>& fine_residual() { return fine_residual_; }
  std::vector<std::uint8_t>& fine_plane_fixed() { return fine_plane_fixed_; }
  std::vector<double>& plane_scratch() { return plane_scratch_; }

  /// Cumulative work of every solve routed through this workspace
  /// (solve_laplace / solve_poisson accumulate it on return).
  const SolveAccounting& accounting() const { return accounting_; }
  SolveAccounting& accounting() { return accounting_; }

  // ---- dirty-region API -------------------------------------------------
  // Windowed correction passes for incremental local field updates: when an
  // actuation change perturbs a few electrodes, the caller updates the
  // Dirichlet values, seeds `phi` with the cached global solution, and
  // relaxes only a region-of-influence box. Nodes outside the box are read
  // but never written (the box boundary freezes at the cached solution), so
  // the correction is exact inside the box up to the frozen-boundary error —
  // which the periodic full-solve re-anchor discards. Pure fine-grid
  // red-black SOR through the box-clamped scalar kernels of
  // `field/stencil_kernel.hpp`; no hierarchy required, so `prepare` need not
  // have run. Deterministic and bitwise-identical serial vs pooled for every
  // `opts.threads` (per-color plane fan-out of an odd/even-independent
  // stencil, plane-ordered max reduction).

  /// Relax the free nodes of `box` (clamped against the grid) toward the
  /// Laplace solution, keeping everything outside the box frozen. Dirichlet
  /// values inside the box are applied first. Converges on
  /// `opts.incremental.tolerance` (max node update) with the sweep cap
  /// `opts.incremental.max_sweeps`; `opts.omega` 0 selects the box-sized
  /// optimal SOR factor. An empty or fully-fixed box is a bitwise no-op that
  /// reports zero work. Accounts into `accounting()` as a window solve.
  SolveStats solve_window(Grid3& phi, const DirichletBc& bc, const GridBox& box,
                          const SolverOptions& opts = {});

  /// Max |(Σnb − h²·rhs)/6 − φ| over the free nodes of `box` (clamped) — the
  /// same update-units diagnostic norm as `laplacian_residual`, restricted
  /// to the window. Read-only; 0 for an empty or fully-fixed box.
  double window_residual(const Grid3& phi, const DirichletBc& bc,
                         const GridBox& box) const;

 private:
  std::vector<Level> levels_;
  std::vector<double> fine_residual_;
  std::vector<std::uint8_t> fine_plane_fixed_;
  std::vector<double> plane_scratch_;  ///< per-plane reduction slots (max nz)
  std::size_t fnx_ = 0, fny_ = 0, fnz_ = 0;
  double fspacing_ = 0.0;
  std::vector<std::uint8_t> mask_copy_;  ///< fingerprint of the last fine mask
  SolveAccounting accounting_;
};

/// Solve Laplace's equation in-place on `phi` subject to `bc`.
/// `phi` provides the initial guess for free nodes; Dirichlet nodes are
/// overwritten with their prescribed values before iterating.
/// `workspace` (optional) caches the multigrid hierarchy across solves on
/// the same grid shape.
/// Throws PreconditionError if `bc` sizes don't match the grid.
SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts = {},
                         MultigridWorkspace* workspace = nullptr);

/// Solve the Poisson problem ∇²φ = f (f per node, physical units 1/m² × V).
/// Same boundary handling and options as solve_laplace.
SolveStats solve_poisson(Grid3& phi, const Grid3& f, const DirichletBc& bc,
                         const SolverOptions& opts = {},
                         MultigridWorkspace* workspace = nullptr);

/// Compute the residual ‖∇²φ‖_inf over free nodes (diagnostic; h²-scaled).
/// Routed through the same stencil kernel as the smoother, so the
/// diagnostic and the solver agree on boundary handling by construction.
double laplacian_residual(const Grid3& phi, const DirichletBc& bc);

/// The SOR factor that is optimal for the model Poisson problem on an
/// n-node-per-side grid: ω* = 2 / (1 + sin(π/n)).
double optimal_omega(std::size_t n);

/// Anisotropic-grid generalization: the model-problem Jacobi spectral radius
/// is the per-axis mean ρ = (cos(π/nx) + cos(π/ny) + cos(π/nz))/3 and
/// ω* = 2 / (1 + sqrt(1 − ρ²)). Equal to optimal_omega(n) when nx=ny=nz=n;
/// strictly smaller on elongated grids (e.g. 129×129×9), where the
/// longest-side formula over-relaxes the short axis.
double optimal_omega(std::size_t nx, std::size_t ny, std::size_t nz);

}  // namespace biochip::field
