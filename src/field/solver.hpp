#pragma once
/// \file solver.hpp
/// \brief Finite-difference Laplace solver on a regular 3D grid.
///
/// Discretizes ∇²φ = 0 with a 7-point stencil. Boundary handling:
///  * nodes flagged in the Dirichlet mask hold their prescribed value
///    (electrode metal, lid plane);
///  * all other boundary faces are homogeneous Neumann (mirror symmetry),
///    which models the insulating chip passivation between electrodes and
///    the fluid-chamber side walls.
///
/// Two solution strategies are provided:
///  * red-black successive over-relaxation (SOR), and
///  * multilevel nested iteration (coarse-to-fine SOR cascade), which is the
///    fast path benchmarked in `bench_field_solver`.
///
/// The sweep kernel runs checked-free over the grid interior (unchecked
/// accessors + precomputed strides; boundary mirrors hoisted to the plane
/// and row edges) and can fan same-parity z-planes out over the shared
/// worker pool — red-black coloring makes same-color nodes independent, so
/// parallel sweeps are bitwise-identical to serial ones.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/grid.hpp"

namespace biochip::field {

/// Dirichlet boundary specification: `fixed[n] != 0` pins node n to `value[n]`.
struct DirichletBc {
  std::vector<std::uint8_t> fixed;  ///< one flag per grid node
  std::vector<double> value;        ///< prescribed potential per node [V]

  /// Construct an all-free BC sized for the given grid.
  static DirichletBc all_free(const Grid3& grid);
};

/// Solver configuration.
struct SolverOptions {
  double tolerance = 1e-6;       ///< max node update [V] at which to stop
  std::size_t max_sweeps = 20000;  ///< hard iteration cap per level
  double omega = 0.0;            ///< SOR factor; 0 = auto (optimal for Poisson)
  bool multilevel = true;        ///< coarse-to-fine cascade when grid allows
  /// Sweep parallelism: 1 = serial (default), N > 1 = sweep z-planes of
  /// matching red-black parity over N pool lanes, 0 = one lane per hardware
  /// thread. Same-color nodes are independent, so the result is identical
  /// to the serial sweep for every thread count.
  std::size_t threads = 1;
};

/// Convergence report.
struct SolveStats {
  std::size_t sweeps = 0;        ///< fine-grid sweeps executed
  std::size_t total_sweeps = 0;  ///< sweeps across all levels
  double final_update = 0.0;     ///< last max-update norm [V]
  bool converged = false;
};

/// Solve Laplace's equation in-place on `phi` subject to `bc`.
/// `phi` provides the initial guess for free nodes; Dirichlet nodes are
/// overwritten with their prescribed values before iterating.
/// Throws PreconditionError if `bc` sizes don't match the grid.
SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts = {});

/// Compute the residual ‖∇²φ‖_inf over free nodes (diagnostic; h²-scaled).
double laplacian_residual(const Grid3& phi, const DirichletBc& bc);

/// The SOR factor that is optimal for the model Poisson problem on an
/// n-node-per-side grid: ω* = 2 / (1 + sin(π/n)).
double optimal_omega(std::size_t n);

}  // namespace biochip::field
