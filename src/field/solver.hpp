#pragma once
/// \file solver.hpp
/// \brief Finite-difference Laplace/Poisson solver on a regular 3D grid.
///
/// Discretizes ∇²φ = f with a 7-point stencil. Boundary handling:
///  * nodes flagged in the Dirichlet mask hold their prescribed value
///    (electrode metal, lid plane);
///  * all other boundary faces are homogeneous Neumann (mirror symmetry),
///    which models the insulating chip passivation between electrodes and
///    the fluid-chamber side walls.
///
/// Four solution strategies are provided:
///  * red-black successive over-relaxation (SOR);
///  * multilevel nested iteration (coarse-to-fine SOR cascade), kept as the
///    equivalence/regression oracle for the cycles below;
///  * a true multigrid V-cycle (CycleType::vcycle, the production path):
///    pre-smoothing, residual restriction by full weighting, recursive
///    coarse-grid correction of the error equation ∇²e = r, trilinear
///    prolongation with correction and post-smoothing. Coarse-level
///    operators are Galerkin (RAP) products — 27-point variable-coefficient
///    stencils that keep sub-coarse-grid boundary features (1–2-node
///    electrode gaps) represented on every level, so the cycle contracts at
///    a grid-independent rate on every boundary geometry the chip model
///    produces. Solve cost is effectively linear in node count;
///  * full multigrid (CycleType::fmg): nested iteration through the same
///    Galerkin hierarchy — coarsest-level solve, prolongate, one or two
///    V-cycles per level — combining the cascade's cheap initial guess with
///    the V-cycle's O(N) error correction.
///
/// Every operator (smoothing, residual, restriction, prolongation) runs on
/// the shared plane-wise stencil kernel (`field/stencil_kernel.hpp`):
/// checked-free strided layout, AVX2-vectorized stride-1 row loops with a
/// bit-identical scalar fallback, and z-plane fan-out over the worker pool
/// that is bitwise-identical to serial execution for every thread count.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/grid.hpp"

namespace biochip::field {

/// Dirichlet boundary specification: `fixed[n] != 0` pins node n to `value[n]`.
struct DirichletBc {
  std::vector<std::uint8_t> fixed;  ///< one flag per grid node
  std::vector<double> value;        ///< prescribed potential per node [V]

  /// Construct an all-free BC sized for the given grid.
  static DirichletBc all_free(const Grid3& grid);
};

/// Multilevel strategy selector.
enum class CycleType {
  cascade,  ///< coarse-to-fine nested iteration (initial-guess improvement only)
  vcycle,   ///< residual-restricting V-cycle (coarse-grid error correction)
  fmg,      ///< full multigrid: nested-iteration start + V-cycles per level
};

/// Solver configuration.
struct SolverOptions {
  double tolerance = 1e-6;       ///< max node update [V] at which to stop
  std::size_t max_sweeps = 20000;  ///< hard iteration cap per level
  double omega = 0.0;            ///< SOR factor; 0 = auto (optimal for plain SOR,
                                 ///< 1.15 for V-cycle smoothing sweeps)
  bool multilevel = true;        ///< use the grid hierarchy when the grid allows
  CycleType cycle = CycleType::vcycle;  ///< hierarchy strategy when multilevel
  std::size_t pre_smooth = 2;    ///< V-cycle smoothing sweeps before restriction
  std::size_t post_smooth = 2;   ///< V-cycle smoothing sweeps after correction
  std::size_t max_cycles = 60;   ///< V-cycle cap
  std::size_t fmg_level_cycles = 1;  ///< FMG: V-cycles per level on the way up
  /// V-cycle convergence target on the residual norm max|Σnb/6 − φ −
  /// h²f/6| (the `laplacian_residual` units); 0 = use `tolerance`.
  double cycle_tolerance = 0.0;
  /// Sweep parallelism: 1 = serial (default), N > 1 = fan z-planes over N
  /// pool lanes, 0 = one lane per hardware thread. Every operator is
  /// plane-decomposed so the result is bitwise identical to the serial
  /// solve for every thread count.
  std::size_t threads = 1;
};

/// Convergence report.
struct SolveStats {
  std::size_t sweeps = 0;        ///< fine-grid smoothing sweeps executed
  std::size_t total_sweeps = 0;  ///< smoothing sweeps across all levels
  /// Work in fine-grid-sweep equivalents: every smoothing sweep, residual,
  /// restriction, prolongation and norm pass weighted by its level's node
  /// count relative to the finest grid. The honest cross-strategy cost
  /// metric (see docs/perf.md).
  double fine_equiv_sweeps = 0.0;
  std::size_t cycles = 0;        ///< V-cycles executed (0 for SOR/cascade)
  double final_update = 0.0;     ///< last max-update norm [V]
  double final_residual = 0.0;   ///< last residual norm [V] (V-cycle path)
  bool converged = false;
};

/// Cumulative solver work across every `solve_laplace` / `solve_poisson`
/// call that used one `MultigridWorkspace` — the counting-plane telemetry
/// source (`obs::fold_solver`). Sums of the per-call `SolveStats` by
/// construction, so registry metrics reconcile exactly with the counters
/// the benches accumulate themselves (tests/test_obs.cpp pins this).
struct SolveAccounting {
  std::uint64_t solves = 0;
  std::uint64_t cycles = 0;
  std::uint64_t total_sweeps = 0;
  double fine_equiv_sweeps = 0.0;
  double last_residual = 0.0;  ///< final_residual of the most recent solve

  void account(const SolveStats& stats) {
    ++solves;
    cycles += stats.cycles;
    total_sweeps += stats.total_sweeps;
    fine_equiv_sweeps += stats.fine_equiv_sweeps;
    last_residual = stats.final_residual;
  }
};

/// Reusable multigrid hierarchy: coarse-level error grids, restricted
/// Dirichlet masks, Galerkin (RAP) coarse-operator stencils and residual
/// scratch, allocated once and shared across solves on the same grid shape
/// (e.g. the per-electrode basis solves of a BasisCache). `prepare` is cheap
/// when shape and mask are unchanged.
class MultigridWorkspace {
 public:
  struct Level {
    Grid3 e;                          ///< error grid (zeroed per cycle)
    std::vector<double> rhs;          ///< restricted residual (physical units)
    std::vector<double> res;          ///< this level's own residual scratch
    std::vector<std::uint8_t> fixed;  ///< restricted Dirichlet mask (e = 0 there)
    std::vector<std::uint8_t> plane_fixed;  ///< per-plane any-Dirichlet flags
    /// Galerkin coarse operator A_l = R·A_{l-1}·P as a 27-point stencil with
    /// per-node coefficients, structure-of-arrays: coefficient of offset m
    /// for node n at stencil[m * e.size() + n] (see stencil_kernel.hpp).
    std::vector<double> stencil;
    std::vector<double> inv_diag;  ///< 1/diagonal per node; 0 at fixed nodes
    /// Per-row ((k·ny + j)) flag: every interior node of the row holds the
    /// level's translation-invariant interior stencil (build_rap's per-node
    /// uniformity, chained level to level), so the smoother may broadcast
    /// `uniform_stencil` instead of streaming 27 coefficient planes.
    std::vector<std::uint8_t> row_uniform;
    std::array<double, 27> uniform_stencil{};  ///< interior constant (uniform_rap)
    double uniform_inv_diag = 0.0;  ///< 1/uniform_stencil[13]; 0 when degenerate
  };

  /// (Re)derive the hierarchy for `fine` + `bc`: reuses every allocation
  /// when the shape matches the previous call and skips mask restriction
  /// and the RAP rebuild when the fixed mask is byte-identical.
  void prepare(const Grid3& fine, const DirichletBc& bc);

  std::vector<Level>& levels() { return levels_; }
  std::vector<double>& fine_residual() { return fine_residual_; }
  std::vector<std::uint8_t>& fine_plane_fixed() { return fine_plane_fixed_; }
  std::vector<double>& plane_scratch() { return plane_scratch_; }

  /// Cumulative work of every solve routed through this workspace
  /// (solve_laplace / solve_poisson accumulate it on return).
  const SolveAccounting& accounting() const { return accounting_; }
  SolveAccounting& accounting() { return accounting_; }

 private:
  std::vector<Level> levels_;
  std::vector<double> fine_residual_;
  std::vector<std::uint8_t> fine_plane_fixed_;
  std::vector<double> plane_scratch_;  ///< per-plane reduction slots (max nz)
  std::size_t fnx_ = 0, fny_ = 0, fnz_ = 0;
  double fspacing_ = 0.0;
  std::vector<std::uint8_t> mask_copy_;  ///< fingerprint of the last fine mask
  SolveAccounting accounting_;
};

/// Solve Laplace's equation in-place on `phi` subject to `bc`.
/// `phi` provides the initial guess for free nodes; Dirichlet nodes are
/// overwritten with their prescribed values before iterating.
/// `workspace` (optional) caches the multigrid hierarchy across solves on
/// the same grid shape.
/// Throws PreconditionError if `bc` sizes don't match the grid.
SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts = {},
                         MultigridWorkspace* workspace = nullptr);

/// Solve the Poisson problem ∇²φ = f (f per node, physical units 1/m² × V).
/// Same boundary handling and options as solve_laplace.
SolveStats solve_poisson(Grid3& phi, const Grid3& f, const DirichletBc& bc,
                         const SolverOptions& opts = {},
                         MultigridWorkspace* workspace = nullptr);

/// Compute the residual ‖∇²φ‖_inf over free nodes (diagnostic; h²-scaled).
/// Routed through the same stencil kernel as the smoother, so the
/// diagnostic and the solver agree on boundary handling by construction.
double laplacian_residual(const Grid3& phi, const DirichletBc& bc);

/// The SOR factor that is optimal for the model Poisson problem on an
/// n-node-per-side grid: ω* = 2 / (1 + sin(π/n)).
double optimal_omega(std::size_t n);

/// Anisotropic-grid generalization: the model-problem Jacobi spectral radius
/// is the per-axis mean ρ = (cos(π/nx) + cos(π/ny) + cos(π/nz))/3 and
/// ω* = 2 / (1 + sqrt(1 − ρ²)). Equal to optimal_omega(n) when nx=ny=nz=n;
/// strictly smaller on elongated grids (e.g. 129×129×9), where the
/// longest-side formula over-relaxes the short axis.
double optimal_omega(std::size_t nx, std::size_t ny, std::size_t nz);

}  // namespace biochip::field
