#pragma once
/// \file basis_cache.hpp
/// \brief Superposition cache of per-electrode basis solutions.
///
/// Laplace's equation is linear in the boundary data, so for a *fixed* set
/// of Dirichlet nodes the solution for any drive vector is a weighted sum of
/// per-electrode basis solutions (electrode k at 1 V, all others and the lid
/// at 0 V). Re-programming the actuation pattern then costs one weighted grid
/// sum instead of a fresh iterative solve — the key optimization that makes
/// whole-array, many-pattern simulation tractable (ablated in
/// `bench_field_solver`).

#include <complex>
#include <vector>

#include "common/geometry.hpp"
#include "field/phasor.hpp"

namespace biochip::field {

class BasisCache {
 public:
  /// Solves one basis problem per electrode footprint (plus one for the lid
  /// when `lid_present`). All electrode nodes stay Dirichlet in every basis
  /// problem, which is what makes superposition exact.
  BasisCache(ChamberDomain domain, std::vector<Rect> footprints, bool lid_present,
             const SolverOptions& opts = {});

  std::size_t electrode_count() const { return footprints_.size(); }
  bool lid_present() const { return lid_present_; }
  /// Number of Laplace solves performed when building the cache.
  std::size_t solves_performed() const { return solves_; }

  /// Compose the phasor solution for the given per-electrode drive phasors
  /// (size must equal electrode_count) and lid phasor (ignored when no lid).
  PhasorSolution compose(const std::vector<std::complex<double>>& drive,
                         std::complex<double> lid_drive = {0.0, 0.0}) const;

  /// Change-tracking composition: maintains the last drive vector and the
  /// accumulated quadrature sum, and applies only (drive − previous) deltas
  /// over the changed electrodes — O(changed electrodes) grid passes per
  /// call instead of the full O(electrodes) rebuild of `compose`. Every
  /// `opts.incremental.reanchor_period`-th delta call rebuilds the sum from
  /// scratch, discarding the float drift that delta accumulation admits; a
  /// rebuild (and the first call) is bitwise identical to `compose`, delta
  /// steps agree to rounding. Not thread-safe (mutates the cached state).
  PhasorSolution compose_incremental(const std::vector<std::complex<double>>& drive,
                                     std::complex<double> lid_drive = {0.0, 0.0});

  /// How many compose_incremental calls took the delta path / the full
  /// rebuild path (first call and cadence rebuilds).
  std::size_t delta_composes() const { return delta_composes_; }
  std::size_t full_composes() const { return full_composes_; }

  /// Direct (non-cached) solve of the same problem, for validation/ablation.
  PhasorSolution solve_direct(const std::vector<std::complex<double>>& drive,
                              std::complex<double> lid_drive = {0.0, 0.0}) const;

 private:
  ChamberDomain domain_;
  std::vector<Rect> footprints_;
  bool lid_present_;
  SolverOptions opts_;
  std::vector<Grid3> basis_;  ///< electrode bases, then (optionally) the lid basis
  std::size_t solves_ = 0;
  // compose_incremental state: the accumulated quadrature sum for
  // `last_drive_` / `last_lid_`, plus the rebuild cadence counters.
  Grid3 acc_re_, acc_im_;
  std::vector<std::complex<double>> last_drive_;
  std::complex<double> last_lid_{0.0, 0.0};
  bool acc_primed_ = false;
  std::size_t since_rebuild_ = 0;
  std::size_t delta_composes_ = 0;
  std::size_t full_composes_ = 0;
  /// One multigrid hierarchy (coarse grids + restricted BC masks) shared by
  /// every per-electrode basis solve of the constructor: the domain shape
  /// and the Dirichlet mask are identical across all of them, so the coarse
  /// problem is derived once instead of per basis solve. The const methods
  /// do not touch it, so they remain safe to call concurrently.
  MultigridWorkspace workspace_;
};

}  // namespace biochip::field
