#pragma once
/// \file phasor.hpp
/// \brief AC (phasor) field solution and derived DEP drive quantities.
///
/// For electrodes driven at a common angular frequency with per-electrode
/// amplitude and phase, the potential is the real part of a complex phasor
/// field Φ(x)e^{jωt}. We solve Laplace for Re Φ and Im Φ independently
/// (the medium is treated as homogeneous at drive frequencies of interest),
/// then derive:
///   E_rms²(x) = ½ (|∇Re Φ|² + |∇Im Φ|²)
/// whose gradient drives the time-averaged DEP force
///   F = 2π ε_m R³ Re[K(ω)] ∇E_rms².

#include <complex>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/grid.hpp"
#include "field/boundary.hpp"
#include "field/solver.hpp"

namespace biochip::field {

/// Solved phasor potential with lazily derived E_rms² grid.
class PhasorSolution {
 public:
  PhasorSolution(Grid3 phi_re, Grid3 phi_im);

  const Grid3& phi_re() const { return phi_re_; }
  const Grid3& phi_im() const { return phi_im_; }

  /// E_rms² at each node [V²/m²] (central differences; cached on first use).
  const Grid3& erms2() const;

  /// Sampled E_rms² at a physical point.
  double erms2_at(Vec3 p) const { return erms2().sample(p); }

  /// ∇E_rms² at a physical point [V²/m³] — the DEP drive vector.
  Vec3 grad_erms2_at(Vec3 p) const { return erms2().gradient(p); }

  /// RMS field magnitude [V/m].
  double erms_at(Vec3 p) const;

  /// Instantaneous complex field vector Ẽ = -∇Φ at a point (re, im parts).
  std::pair<Vec3, Vec3> complex_field_at(Vec3 p) const;

 private:
  Grid3 phi_re_;
  Grid3 phi_im_;
  mutable Grid3 erms2_;
  mutable bool erms2_ready_ = false;
};

/// Combined convergence report for the two quadrature solves.
struct PhasorStats {
  SolveStats re;
  SolveStats im;
};

/// Solve the phasor problem for the given domain/electrodes/lid.
/// `workspace` (optional) caches the multigrid hierarchy across solves on
/// the same grid shape — the two quadrature solves share it, and callers
/// performing many solves on one domain (BasisCache) reuse it throughout.
PhasorSolution solve_phasor(const ChamberDomain& domain,
                            const std::vector<ElectrodePatch>& electrodes,
                            std::optional<std::complex<double>> lid,
                            const SolverOptions& opts = {}, PhasorStats* stats = nullptr,
                            MultigridWorkspace* workspace = nullptr);

/// Compute the E_rms² grid from a pair of quadrature potentials.
Grid3 erms2_from_quadratures(const Grid3& phi_re, const Grid3& phi_im);

}  // namespace biochip::field
