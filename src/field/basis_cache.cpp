#include "field/basis_cache.hpp"

#include "common/error.hpp"

namespace biochip::field {

namespace {
std::vector<ElectrodePatch> make_patches(const std::vector<Rect>& footprints,
                                         const std::vector<std::complex<double>>& drive) {
  std::vector<ElectrodePatch> patches(footprints.size());
  for (std::size_t i = 0; i < footprints.size(); ++i)
    patches[i] = {footprints[i], drive[i]};
  return patches;
}
}  // namespace

BasisCache::BasisCache(ChamberDomain domain, std::vector<Rect> footprints, bool lid_present,
                       const SolverOptions& opts)
    : domain_(domain), footprints_(std::move(footprints)), lid_present_(lid_present),
      opts_(opts) {
  BIOCHIP_REQUIRE(!footprints_.size() == false, "BasisCache needs at least one electrode");
  const std::size_t n = footprints_.size();
  basis_.reserve(n + (lid_present_ ? 1 : 0));
  std::vector<std::complex<double>> unit(n, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    unit[k] = {1.0, 0.0};
    PhasorSolution sol = solve_phasor(
        domain_, make_patches(footprints_, unit),
        lid_present_ ? std::optional<std::complex<double>>{{0.0, 0.0}} : std::nullopt,
        opts_, nullptr, &workspace_);
    // Basis drives are purely real, so only the real quadrature is non-zero.
    basis_.push_back(sol.phi_re());
    unit[k] = {0.0, 0.0};
    ++solves_;
  }
  if (lid_present_) {
    PhasorSolution sol = solve_phasor(domain_, make_patches(footprints_, unit),
                                      std::optional<std::complex<double>>{{1.0, 0.0}},
                                      opts_, nullptr, &workspace_);
    basis_.push_back(sol.phi_re());
    ++solves_;
  }
}

PhasorSolution BasisCache::compose(const std::vector<std::complex<double>>& drive,
                                   std::complex<double> lid_drive) const {
  BIOCHIP_REQUIRE(drive.size() == footprints_.size(),
                  "drive vector size must equal electrode count");
  Grid3 re = domain_.make_grid();
  Grid3 im = domain_.make_grid();
  auto accumulate = [&](const Grid3& b, std::complex<double> a) {
    if (a.real() == 0.0 && a.imag() == 0.0) return;
    const std::vector<double>& src = b.data();
    std::vector<double>& dre = re.data();
    std::vector<double>& dim = im.data();
    for (std::size_t n = 0; n < src.size(); ++n) {
      dre[n] += a.real() * src[n];
      dim[n] += a.imag() * src[n];
    }
  };
  for (std::size_t k = 0; k < footprints_.size(); ++k) accumulate(basis_[k], drive[k]);
  if (lid_present_) accumulate(basis_.back(), lid_drive);
  return PhasorSolution(std::move(re), std::move(im));
}

PhasorSolution BasisCache::compose_incremental(
    const std::vector<std::complex<double>>& drive, std::complex<double> lid_drive) {
  BIOCHIP_REQUIRE(drive.size() == footprints_.size(),
                  "drive vector size must equal electrode count");
  const std::size_t period = opts_.incremental.reanchor_period;
  const bool rebuild =
      !acc_primed_ || (period != 0 && since_rebuild_ + 1 >= period);
  if (rebuild) {
    // Full rebuild: identical association order to compose(), so the result
    // is bitwise equal to the from-scratch composition.
    PhasorSolution sol = compose(drive, lid_drive);
    acc_re_ = sol.phi_re();
    acc_im_ = sol.phi_im();
    last_drive_ = drive;
    last_lid_ = lid_drive;
    acc_primed_ = true;
    since_rebuild_ = 0;
    ++full_composes_;
    return sol;
  }

  // Delta path: superpose only the changed electrodes' basis responses,
  // weighted by the drive change — O(changed) grid passes.
  auto accumulate = [&](const Grid3& b, std::complex<double> a) {
    if (a.real() == 0.0 && a.imag() == 0.0) return;
    const std::vector<double>& src = b.data();
    std::vector<double>& dre = acc_re_.data();
    std::vector<double>& dim = acc_im_.data();
    for (std::size_t n = 0; n < src.size(); ++n) {
      dre[n] += a.real() * src[n];
      dim[n] += a.imag() * src[n];
    }
  };
  for (std::size_t k = 0; k < footprints_.size(); ++k)
    if (drive[k] != last_drive_[k]) accumulate(basis_[k], drive[k] - last_drive_[k]);
  if (lid_present_ && lid_drive != last_lid_)
    accumulate(basis_.back(), lid_drive - last_lid_);
  last_drive_ = drive;
  last_lid_ = lid_drive;
  ++since_rebuild_;
  ++delta_composes_;
  return PhasorSolution(acc_re_, acc_im_);
}

PhasorSolution BasisCache::solve_direct(const std::vector<std::complex<double>>& drive,
                                        std::complex<double> lid_drive) const {
  BIOCHIP_REQUIRE(drive.size() == footprints_.size(),
                  "drive vector size must equal electrode count");
  // Deliberately NOT routed through workspace_: solve_direct is const and
  // must stay safe to call concurrently; the validation path can afford to
  // derive its own hierarchy.
  return solve_phasor(domain_, make_patches(footprints_, drive),
                      lid_present_ ? std::optional<std::complex<double>>{lid_drive}
                                   : std::nullopt,
                      opts_);
}

}  // namespace biochip::field
