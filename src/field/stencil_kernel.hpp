#pragma once
/// \file stencil_kernel.hpp
/// \brief Plane-wise 7-point stencil kernels shared by every multigrid
/// operator: red-black smoothing, residual evaluation, full-weighting
/// restriction and trilinear prolongation-with-correction.
///
/// All kernels operate on one z-plane of a checked-free strided layout
/// (node (i,j,k) at i + j*nx + k*nx*ny) so callers can fan planes out over
/// the worker pool: the smoother writes only nodes of one red-black color
/// (its reads land on the opposite color), the residual/restriction/
/// prolongation kernels write only their own plane and read other grids.
/// Every kernel therefore produces bitwise-identical results for any plane
/// partitioning.
///
/// Boundary handling is the single source of truth for the whole solver:
/// out-of-range neighbors mirror across the face (homogeneous Neumann,
/// `mirror_index`), Dirichlet nodes are skipped via the `fixed` mask. The
/// diagnostic residual and the smoother use the same code path, so they
/// agree on boundary handling by construction.
///
/// SIMD policy: the stride-1 interior row loop of the smoother and the
/// residual has an AVX2 path (compiled per-function via target attributes,
/// selected at runtime with __builtin_cpu_supports, scalar fallback
/// everywhere else). The vector code uses the same IEEE operations in the
/// same association order as the scalar loop, and the target attribute
/// deliberately excludes FMA: GCC contracts mul+add intrinsics into fused
/// ops whenever the ISA allows it (C++ defaults to -ffp-contract=fast), and
/// one fused rounding would break the bit-identity between the SIMD and
/// scalar paths that the solver's determinism tests assert via
/// `force_scalar`. The ~1 ulp FMA would buy is worth less than
/// reproducibility across every dispatch path.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <type_traits>

// 64-bit only: the AVX-512 row uses _mm_cvtsi64_si128, which does not
// exist in 32-bit mode.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BIOCHIP_STENCIL_X86 1
// GCC 12 reports spurious -Wmaybe-uninitialized from the AVX-512 intrinsic
// expansions (the _mm512_undefined_* idiom); scope the suppression to the
// intrinsic header so real warnings in this file stay visible.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif

namespace biochip::field::stencil {

/// Grid extents for a raw strided array.
struct Dims {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;
  std::size_t size() const { return nx * ny * nz; }
};

/// Mirror (homogeneous Neumann) index for out-of-range neighbors.
inline std::size_t mirror_index(std::ptrdiff_t idx, std::size_t n) {
  if (idx < 0) return 1;
  if (idx >= static_cast<std::ptrdiff_t>(n)) return n - 2;
  return static_cast<std::size_t>(idx);
}

namespace detail {

inline std::atomic<bool>& scalar_override() {
  static std::atomic<bool> forced{false};
  return forced;
}

int calibrate_simd_level(int best_supported);  // defined after the kernels

}  // namespace detail

/// Test hook: force the scalar row loop even when SIMD is available.
inline void force_scalar(bool on) { detail::scalar_override().store(on); }

/// Vector ISA selected at runtime: 0 = scalar, 1 = AVX2, 2 = AVX-512.
/// Every level computes bit-identical results, so the dispatcher is free to
/// pick by *measured speed* rather than by ISA flags: on first use it times
/// a short in-cache sweep per supported level and locks in the fastest
/// (virtualized hosts routinely advertise AVX-512 yet execute 512-bit ops
/// with no throughput advantage). `BIOCHIP_SIMD_LEVEL=<0|1|2>` skips the
/// calibration and caps the level (benchmarking / testing the fallbacks).
inline int simd_level() {
#if BIOCHIP_STENCIL_X86
  static const int level = [] {
    int best = 0;
    if (__builtin_cpu_supports("avx2")) best = 1;
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512bw"))
      best = 2;
    if (const char* cap = std::getenv("BIOCHIP_SIMD_LEVEL")) {
      char* end = nullptr;
      const long c = std::strtol(cap, &end, 10);
      if (end != cap && c >= 0 && c < best) return static_cast<int>(c);
      return best;
    }
    return best > 0 ? detail::calibrate_simd_level(best) : 0;
  }();
  return detail::scalar_override().load() ? 0 : level;
#else
  return 0;
#endif
}

/// True when a vectorized row loop will be used.
inline bool simd_active() { return simd_level() > 0; }

namespace detail {

#if BIOCHIP_STENCIL_X86

__attribute__((target("avx2"))) inline double hmax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return std::max(_mm_cvtsd_f64(m), _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
}

/// -1 in the lanes whose `fixed` byte is zero (free nodes), 0 elsewhere.
__attribute__((target("avx2"))) inline __m256i free_mask(const std::uint8_t* f,
                                                         std::size_t i) {
  std::uint32_t bytes;
  __builtin_memcpy(&bytes, f + i, sizeof bytes);
  const __m256i fq = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(bytes)));
  return _mm256_cmpeq_epi64(fq, _mm256_setzero_si256());
}

/// Vectorized interior of one red-black row. Instead of gathering the
/// stride-2 same-color nodes (shuffle-heavy), each 4-wide block loads the
/// row contiguously, computes the relaxation for every lane, and commits
/// only the two same-color, non-fixed lanes — the even/odd half-row trick
/// with the interleave done at the store. Free-interior blocks (the common
/// case) commit with two 64-bit scalar stores; blocks containing Dirichlet
/// nodes take a masked store (vmaskmovpd stalls store-to-load forwarding,
/// so it is kept off the hot path). The opposite-color and Dirichlet lanes
/// are never written, so concurrent sweeps of neighboring planes stay
/// race-free. Bit-identical to the scalar relax: same operation order, no
/// FMA (see file header).
template <bool HasRhs, bool HasFixed, bool TrackMax>
__attribute__((target("avx2"))) inline std::size_t smooth_row_avx2(
    double* r, const std::uint8_t* f, const double* rjm, const double* rjp,
    const double* rkm, const double* rkp, const double* rr, double h2, double omega,
    std::size_t i, std::size_t ilast, double& max_update) {
  const __m256d inv_six = _mm256_set1_pd(1.0 / 6.0);
  const __m256d omega_v = _mm256_set1_pd(omega);
  const __m256d h2_v = _mm256_set1_pd(h2);
  const __m256d absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  // Blocks start on the active parity, so the active lanes are always 0, 2.
  const __m256i colormask = _mm256_setr_epi64x(-1, 0, -1, 0);
  __m256d maxv = _mm256_setzero_pd();
  for (; i + 4 <= ilast; i += 4) {
    const __m256d center = _mm256_loadu_pd(r + i);
    // Same association order as the scalar loop: ((((l+r)+jm)+jp)+km)+kp.
    __m256d nb = _mm256_add_pd(_mm256_loadu_pd(r + i - 1), _mm256_loadu_pd(r + i + 1));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rjm + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rjp + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rkm + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rkp + i));
    if constexpr (HasRhs) {
      // Register barriers block FMA contraction: this row kernel also gets
      // inlined into the AVX-512 plane clone, whose target enables FMA.
      __m256d load = _mm256_mul_pd(h2_v, _mm256_loadu_pd(rr + i));
      asm("" : "+x"(load));
      nb = _mm256_sub_pd(nb, load);
    }
    __m256d q = _mm256_mul_pd(nb, inv_six);
    asm("" : "+x"(q));
    __m256d delta = _mm256_mul_pd(omega_v, _mm256_sub_pd(q, center));
    asm("" : "+x"(delta));
    const __m256d next = _mm256_add_pd(center, delta);
    if (!HasFixed || (f[i] | f[i + 2]) == 0) {
      if constexpr (TrackMax) {
        const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
        maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(colormask), diff));
      }
      _mm_storel_pd(r + i, _mm256_castpd256_pd128(next));
      _mm_storel_pd(r + i + 2, _mm256_extractf128_pd(next, 1));
      continue;
    }
    const __m256i smask = _mm256_and_si256(colormask, free_mask(f, i));
    if constexpr (TrackMax) {
      const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
      maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(smask), diff));
    }
    if (!_mm256_testz_si256(smask, smask)) _mm256_maskstore_pd(r + i, smask, next);
  }
  if constexpr (TrackMax) max_update = std::max(max_update, hmax(maxv));
  return i;
}

/// Vectorized interior of one residual row over contiguous i (the residual
/// is defined on both colors). Writes out[i] = rhs - (Σnb - 6φ)/h² when
/// `out` is non-null and accumulates the update-units diagnostic norm
/// |(Σnb - h²·rhs)/6 - φ|.
/// AVX-512 variant of the row smoother: 8 contiguous lanes per block (4
/// active), native k-register masked stores (which, unlike vmaskmovpd,
/// forward cleanly). Same IEEE operations in the same order as the scalar
/// and AVX2 paths — all three are bit-identical.
template <bool HasRhs, bool HasFixed, bool TrackMax>
__attribute__((target("avx512f,avx512dq,avx512vl,avx512bw"))) inline std::size_t
smooth_row_avx512(double* r, const std::uint8_t* f, const double* rjm,
                  const double* rjp, const double* rkm, const double* rkp,
                  const double* rr, double h2, double omega, std::size_t i,
                  std::size_t ilast, double& max_update) {
  const __m512d inv_six = _mm512_set1_pd(1.0 / 6.0);
  const __m512d omega_v = _mm512_set1_pd(omega);
  const __m512d h2_v = _mm512_set1_pd(h2);
  const __m512d absmask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFFFFFFFFFFFFFFll));
  __m512d maxv = _mm512_setzero_pd();
  for (; i + 8 <= ilast; i += 8) {
    const __m512d center = _mm512_loadu_pd(r + i);
    __m512d nb = _mm512_add_pd(_mm512_loadu_pd(r + i - 1), _mm512_loadu_pd(r + i + 1));
    nb = _mm512_add_pd(nb, _mm512_loadu_pd(rjm + i));
    nb = _mm512_add_pd(nb, _mm512_loadu_pd(rjp + i));
    nb = _mm512_add_pd(nb, _mm512_loadu_pd(rkm + i));
    nb = _mm512_add_pd(nb, _mm512_loadu_pd(rkp + i));
    if constexpr (HasRhs) {
      // The empty asm pins each product in a register so the compiler
      // cannot contract it with the following add/sub into an FMA: the
      // avx512f target implies FMA, and one fused rounding would break the
      // bit-identity with the scalar and AVX2 paths.
      __m512d load = _mm512_mul_pd(h2_v, _mm512_loadu_pd(rr + i));
      asm("" : "+v"(load));
      nb = _mm512_sub_pd(nb, load);
    }
    __m512d q = _mm512_mul_pd(nb, inv_six);
    asm("" : "+v"(q));
    __m512d delta = _mm512_mul_pd(omega_v, _mm512_sub_pd(q, center));
    asm("" : "+v"(delta));
    const __m512d next = _mm512_add_pd(center, delta);
    std::uint64_t bytes = 0;
    if constexpr (HasFixed) __builtin_memcpy(&bytes, f + i, sizeof bytes);
    if (!HasFixed || (bytes & 0x00FF00FF00FF00FFull) == 0) {
      // No Dirichlet node among the active lanes: commit the 4 same-color
      // lanes with plain 64-bit stores. Masked vector stores cannot
      // store-to-load forward, and the next block's row loads land in the
      // same cache lines, so a masked store here serializes the whole loop.
      if constexpr (TrackMax) {
        const __m512d diff = _mm512_and_pd(absmask, _mm512_sub_pd(next, center));
        maxv = _mm512_mask_max_pd(maxv, 0x55, maxv, diff);
      }
      const __m256d lo = _mm512_castpd512_pd256(next);
      const __m256d hi = _mm512_extractf64x4_pd(next, 1);
      _mm_storel_pd(r + i, _mm256_castpd256_pd128(lo));
      _mm_storel_pd(r + i + 2, _mm256_extractf128_pd(lo, 1));
      _mm_storel_pd(r + i + 4, _mm256_castpd256_pd128(hi));
      _mm_storel_pd(r + i + 6, _mm256_extractf128_pd(hi, 1));
      continue;
    }
    const __mmask8 free =
        _mm512_cmpeq_epi64_mask(_mm512_cvtepu8_epi64(_mm_cvtsi64_si128(
                                    static_cast<long long>(bytes))),
                                _mm512_setzero_si512());
    const __mmask8 active = free & 0x55;  // blocks start on the active parity
    if constexpr (TrackMax) {
      const __m512d diff = _mm512_and_pd(absmask, _mm512_sub_pd(next, center));
      maxv = _mm512_mask_max_pd(maxv, active, maxv, diff);
    }
    _mm512_mask_storeu_pd(r + i, active, next);
  }
  if constexpr (TrackMax)
    max_update = std::max(
        max_update, hmax(_mm256_max_pd(_mm512_castpd512_pd256(maxv),
                                       _mm512_extractf64x4_pd(maxv, 1))));
  return i;
}

template <bool HasRhs, bool HasOut>
__attribute__((target("avx2"))) inline std::size_t residual_row_avx2(
    const double* r, const std::uint8_t* f, const double* rjm, const double* rjp,
    const double* rkm, const double* rkp, const double* rr, double* out, double h2,
    std::size_t i, std::size_t iend, double& max_resid) {
  const __m256d six = _mm256_set1_pd(6.0);
  const __m256d inv_six = _mm256_set1_pd(1.0 / 6.0);
  const __m256d h2_v = _mm256_set1_pd(h2);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  __m256d maxv = _mm256_setzero_pd();
  for (; i + 4 <= iend; i += 4) {
    const __m256d center = _mm256_loadu_pd(r + i);
    __m256d nb = _mm256_add_pd(_mm256_loadu_pd(r + i - 1), _mm256_loadu_pd(r + i + 1));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rjm + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rjp + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rkm + i));
    nb = _mm256_add_pd(nb, _mm256_loadu_pd(rkp + i));
    const __m256d load = HasRhs ? _mm256_loadu_pd(rr + i) : zero;
    const __m256d keep = _mm256_castsi256_pd(free_mask(f, i));  // -1 where free
    // Diagnostic norm in update units, fixed lanes excluded.
    const __m256d q =
        _mm256_mul_pd(_mm256_sub_pd(nb, _mm256_mul_pd(h2_v, load)), inv_six);
    const __m256d dev = _mm256_and_pd(absmask, _mm256_sub_pd(q, center));
    maxv = _mm256_max_pd(maxv, _mm256_and_pd(keep, dev));
    if constexpr (HasOut) {
      // Physical residual rhs - (Σnb - 6φ)/h², zero at fixed nodes.
      const __m256d ap =
          _mm256_div_pd(_mm256_sub_pd(nb, _mm256_mul_pd(six, center)), h2_v);
      const __m256d res = _mm256_sub_pd(load, ap);
      _mm256_storeu_pd(out + i, _mm256_and_pd(keep, res));
    }
  }
  max_resid = std::max(max_resid, hmax(maxv));
  return i;
}

#endif  // BIOCHIP_STENCIL_X86

// Pins a scalar product in a register so the compiler cannot contract it
// with the following add/sub into an FMA — the per-ISA plane clones below
// compile their scalar edge/tail code under FMA-capable targets, and one
// fused rounding would break the cross-ISA bit-identity.
#if BIOCHIP_STENCIL_X86
#define BIOCHIP_NO_CONTRACT(v) asm("" : "+x"(v))
#else
#define BIOCHIP_NO_CONTRACT(v) (void)(v)
#endif

// One full-plane smoothing loop per ISA, stamped from a single body so each
// clone lives inside its row kernel's target region: the row kernel inlines
// into the j-loop and its constant broadcasts hoist out of it (the call per
// row and 6 broadcasts per row otherwise cost ~20% of a sweep).
// `BIOCHIP_SMOOTH_VEC_TAIL` is the ISA-specific interior-row call chain.
#define BIOCHIP_SMOOTH_PLANE_BODY(...)                                          \
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz;                            \
  const std::size_t km = (k == 0) ? 1 : k - 1;                                  \
  const std::size_t kp = (k + 1 == nz) ? nz - 2 : k + 1;                        \
  double max_update = 0.0;                                                      \
  for (std::size_t j = 0; j < ny; ++j) {                                        \
    const std::size_t jm = (j == 0) ? 1 : j - 1;                                \
    const std::size_t jp = (j + 1 == ny) ? ny - 2 : j + 1;                      \
    const std::size_t row = (k * ny + j) * nx;                                  \
    double* r = d + row;                                                        \
    const std::uint8_t* f = fixed + row;                                        \
    const double* rr = HasRhs ? rhs + row : nullptr;                            \
    const double* rjm = d + (k * ny + jm) * nx;                                 \
    const double* rjp = d + (k * ny + jp) * nx;                                 \
    const double* rkm = d + (km * ny + j) * nx;                                 \
    const double* rkp = d + (kp * ny + j) * nx;                                 \
    const auto relax = [&](std::size_t i, std::size_t im, std::size_t ip) {     \
      if (HasFixed && f[i]) return;                                             \
      double nb = r[im] + r[ip] + rjm[i] + rjp[i] + rkm[i] + rkp[i];            \
      if constexpr (HasRhs) {                                                   \
        double load = h2 * rr[i];                                               \
        BIOCHIP_NO_CONTRACT(load);                                              \
        nb -= load;                                                             \
      }                                                                         \
      const double old = r[i];                                                  \
      double q = nb * (1.0 / 6.0);                                              \
      BIOCHIP_NO_CONTRACT(q);                                                   \
      double delta = omega * (q - old);                                         \
      BIOCHIP_NO_CONTRACT(delta);                                               \
      const double next = old + delta;                                          \
      r[i] = next;                                                              \
      if constexpr (TrackMax)                                                   \
        max_update = std::max(max_update, std::fabs(next - old));               \
    };                                                                          \
    /* Start i at the right parity for this (j,k) row. */                       \
    std::size_t i = ((j + k) % 2 == static_cast<std::size_t>(color)) ? 0 : 1;   \
    if (i == 0) {                                                               \
      relax(0, 1, 1); /* x-mirror: both neighbors fold onto node 1 */           \
      i = 2;                                                                    \
    }                                                                           \
    const std::size_t ilast = nx - 1;                                           \
    __VA_ARGS__                                                                 \
    for (; i < ilast; i += 2) relax(i, i - 1, i + 1);                           \
    if (i == ilast) relax(ilast, ilast - 1, ilast - 1);                         \
  }                                                                             \
  return max_update;

template <bool HasRhs, bool HasFixed, bool TrackMax>
double smooth_plane_generic(double* d, const std::uint8_t* fixed, const double* rhs,
                            double h2, Dims g, double omega, int color, std::size_t k) {
  BIOCHIP_SMOOTH_PLANE_BODY()
}

#if BIOCHIP_STENCIL_X86
template <bool HasRhs, bool HasFixed, bool TrackMax>
__attribute__((target("avx2"))) double smooth_plane_x2(double* d,
                                                       const std::uint8_t* fixed,
                                                       const double* rhs, double h2,
                                                       Dims g, double omega, int color,
                                                       std::size_t k) {
  BIOCHIP_SMOOTH_PLANE_BODY(
      if (nx >= 32) i = smooth_row_avx2<HasRhs, HasFixed, TrackMax>(
          r, f, rjm, rjp, rkm, rkp, rr, h2, omega, i, ilast, max_update);)
}

template <bool HasRhs, bool HasFixed, bool TrackMax>
__attribute__((target("avx512f,avx512dq,avx512vl,avx512bw"))) double smooth_plane_x5(
    double* d, const std::uint8_t* fixed, const double* rhs, double h2, Dims g,
    double omega, int color, std::size_t k) {
  BIOCHIP_SMOOTH_PLANE_BODY(
      if (nx >= 32) {
        i = smooth_row_avx512<HasRhs, HasFixed, TrackMax>(
            r, f, rjm, rjp, rkm, rkp, rr, h2, omega, i, ilast, max_update);
        i = smooth_row_avx2<HasRhs, HasFixed, TrackMax>(
            r, f, rjm, rjp, rkm, rkp, rr, h2, omega, i, ilast, max_update);
      })
}
#endif

template <bool HasRhs, bool HasFixed, bool TrackMax>
double smooth_plane_impl(double* d, const std::uint8_t* fixed, const double* rhs,
                         double h2, Dims g, double omega, int color, std::size_t k) {
#if BIOCHIP_STENCIL_X86
  const int vec = simd_level();
  if (vec == 2)
    return smooth_plane_x5<HasRhs, HasFixed, TrackMax>(d, fixed, rhs, h2, g, omega,
                                                       color, k);
  if (vec == 1)
    return smooth_plane_x2<HasRhs, HasFixed, TrackMax>(d, fixed, rhs, h2, g, omega,
                                                       color, k);
#endif
  return smooth_plane_generic<HasRhs, HasFixed, TrackMax>(d, fixed, rhs, h2, g, omega,
                                                          color, k);
}

template <bool HasRhs, bool HasOut>
double residual_plane_impl(const double* d, const std::uint8_t* fixed, const double* rhs,
                           double* out, double h2, Dims g, std::size_t k) {
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz;
  const std::size_t km = (k == 0) ? 1 : k - 1;
  const std::size_t kp = (k + 1 == nz) ? nz - 2 : k + 1;
  double max_resid = 0.0;
#if BIOCHIP_STENCIL_X86
  const bool vec = simd_level() > 0 && nx >= 32;
#endif
  for (std::size_t j = 0; j < ny; ++j) {
    const std::size_t jm = (j == 0) ? 1 : j - 1;
    const std::size_t jp = (j + 1 == ny) ? ny - 2 : j + 1;
    const std::size_t row = (k * ny + j) * nx;
    const double* r = d + row;
    const std::uint8_t* f = fixed + row;
    const double* rr = HasRhs ? rhs + row : nullptr;
    double* ro = HasOut ? out + row : nullptr;
    const double* rjm = d + (k * ny + jm) * nx;
    const double* rjp = d + (k * ny + jp) * nx;
    const double* rkm = d + (km * ny + j) * nx;
    const double* rkp = d + (kp * ny + j) * nx;

    const auto node = [&](std::size_t i, std::size_t im, std::size_t ip) {
      if (f[i]) {
        if constexpr (HasOut) ro[i] = 0.0;
        return;
      }
      const double nb = r[im] + r[ip] + rjm[i] + rjp[i] + rkm[i] + rkp[i];
      const double load = HasRhs ? rr[i] : 0.0;
      max_resid =
          std::max(max_resid, std::fabs((nb - h2 * load) * (1.0 / 6.0) - r[i]));
      if constexpr (HasOut) ro[i] = load - (nb - 6.0 * r[i]) / h2;
    };

    node(0, 1, 1);
    std::size_t i = 1;
    const std::size_t ilast = nx - 1;
#if BIOCHIP_STENCIL_X86
    if (vec)
      i = residual_row_avx2<HasRhs, HasOut>(r, f, rjm, rjp, rkm, rkp, rr, ro, h2, i,
                                            ilast, max_resid);
#endif
    for (; i < ilast; ++i) node(i, i - 1, i + 1);
    if (ilast > 0) node(ilast, ilast - 1, ilast - 1);
  }
  return max_resid;
}

// Times one smoothing pass per supported ISA level over an in-cache slab
// and returns the fastest level. All levels are bit-identical, so this only
// chooses speed; results are unaffected.
inline int calibrate_simd_level(int best_supported) {
  constexpr Dims g{64, 32, 6};
  const std::size_t n = g.size();
  const std::unique_ptr<double[]> buf(new double[n]);
  const std::unique_ptr<std::uint8_t[]> fixed(new std::uint8_t[n]());
  for (std::size_t m = 0; m < n; ++m)
    buf[m] = 1.0 + 1e-3 * static_cast<double>(m % 97);
  const auto pass = [&](int level) {
    for (int color = 0; color < 2; ++color)
      for (std::size_t k = 0; k < g.nz; ++k) {
#if BIOCHIP_STENCIL_X86
        if (level == 2) {
          smooth_plane_x5<false, false, true>(buf.get(), fixed.get(), nullptr, 1.0, g,
                                              1.15, color, k);
          continue;
        }
        if (level == 1) {
          smooth_plane_x2<false, false, true>(buf.get(), fixed.get(), nullptr, 1.0, g,
                                              1.15, color, k);
          continue;
        }
#endif
        smooth_plane_generic<false, false, true>(buf.get(), fixed.get(), nullptr, 1.0, g,
                                                 1.15, color, k);
      }
  };
  int fastest = 0;
  double fastest_time = 1e300;
  for (int level = 0; level <= best_supported; ++level) {
    pass(level);  // warm the path (and the slab) before timing
    double best = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
      // Calibration picks which SIMD level runs, and every level is
      // bit-identical to the scalar kernel by contract (enforced by the
      // forced-scalar CI pass) — timing here cannot reach any result.
      // det-ok: selects among bit-identical kernels only
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < 4; ++rep) pass(level);
      const double t =  // det-ok: same calibration block as above
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      best = std::min(best, t);
    }
    if (best < fastest_time) {
      fastest_time = best;
      fastest = level;
    }
  }
  return fastest;
}

}  // namespace detail

/// Relax every node of red-black `color` ((i+j+k)%2) in plane k toward
/// (Σnb - h²·rhs)/6 (rhs may be null for the Laplace case); returns the max
/// absolute node update in the plane. Mirror branches are hoisted out of the
/// row loop exactly as in the reference kernel.
/// `plane_has_fixed = false` asserts no node of the plane is Dirichlet (the
/// caller classified planes once per solve), which removes every mask load
/// and branch from the hot loop. `track_update = false` skips the
/// max-update reduction (for sweeps whose norm nobody reads); it never
/// changes the relaxed values.
inline double smooth_plane(double* d, const std::uint8_t* fixed, const double* rhs,
                           double h2, Dims g, double omega, int color, std::size_t k,
                           bool plane_has_fixed = true, bool track_update = true) {
  const auto call = [&](auto hr, auto hf, auto tm) {
    return detail::smooth_plane_impl<hr.value, hf.value, tm.value>(d, fixed, rhs, h2, g,
                                                                   omega, color, k);
  };
  using T = std::true_type;
  using F = std::false_type;
  const auto with_tm = [&](auto hr, auto hf) {
    return track_update ? call(hr, hf, T{}) : call(hr, hf, F{});
  };
  const auto with_hf = [&](auto hr) {
    return plane_has_fixed ? with_tm(hr, T{}) : with_tm(hr, F{});
  };
  return rhs != nullptr ? with_hf(T{}) : with_hf(F{});
}

/// Evaluate the residual over plane k. Returns the plane max of
/// |(Σnb - h²·rhs)/6 - φ| over free nodes (the update-units diagnostic norm,
/// identical to the historical `laplacian_residual` definition). When `out`
/// is non-null, writes the physical-units residual rhs - ∇²φ (zero at fixed
/// nodes) for restriction to the next-coarser level.
inline double residual_plane(const double* d, const std::uint8_t* fixed,
                             const double* rhs, double* out, double h2, Dims g,
                             std::size_t k) {
  if (rhs != nullptr)
    return out != nullptr
               ? detail::residual_plane_impl<true, true>(d, fixed, rhs, out, h2, g, k)
               : detail::residual_plane_impl<true, false>(d, fixed, rhs, nullptr, h2, g, k);
  return out != nullptr
             ? detail::residual_plane_impl<false, true>(d, fixed, nullptr, out, h2, g, k)
             : detail::residual_plane_impl<false, false>(d, fixed, nullptr, nullptr, h2, g,
                                                         k);
}

/// Full-weighting restriction of the fine-grid residual into coarse plane kc
/// (coarse node (I,J,K) is fine node (2I,2J,2K); 27-point kernel with axis
/// weights {1,2,1}/4, mirrored at faces to match the Neumann boundary).
/// Coarse Dirichlet nodes get a zero right-hand side (the coarse-grid error
/// is pinned to zero there).
inline void restrict_plane(const double* fine, Dims f, double* coarse,
                           const std::uint8_t* coarse_fixed, Dims c, std::size_t kc) {
  const auto fidx = [&](std::size_t i, std::size_t j, std::size_t k) {
    return (k * f.ny + j) * f.nx + i;
  };
  const std::size_t fk = 2 * kc;
  const std::size_t kmm = mirror_index(static_cast<std::ptrdiff_t>(fk) - 1, f.nz);
  const std::size_t kpp = mirror_index(static_cast<std::ptrdiff_t>(fk) + 1, f.nz);
  const std::size_t ks[3] = {kmm, fk, kpp};
  const double wz[3] = {0.25, 0.5, 0.25};
  for (std::size_t jc = 0; jc < c.ny; ++jc) {
    const std::size_t fj = 2 * jc;
    const std::size_t js[3] = {mirror_index(static_cast<std::ptrdiff_t>(fj) - 1, f.ny), fj,
                               mirror_index(static_cast<std::ptrdiff_t>(fj) + 1, f.ny)};
    const double wy[3] = {0.25, 0.5, 0.25};
    for (std::size_t ic = 0; ic < c.nx; ++ic) {
      const std::size_t cn = (kc * c.ny + jc) * c.nx + ic;
      if (coarse_fixed[cn]) {
        coarse[cn] = 0.0;
        continue;
      }
      const std::size_t fi = 2 * ic;
      const std::size_t is[3] = {mirror_index(static_cast<std::ptrdiff_t>(fi) - 1, f.nx),
                                 fi,
                                 mirror_index(static_cast<std::ptrdiff_t>(fi) + 1, f.nx)};
      const double wx[3] = {0.25, 0.5, 0.25};
      double acc = 0.0;
      for (int dk = 0; dk < 3; ++dk)
        for (int dj = 0; dj < 3; ++dj)
          for (int di = 0; di < 3; ++di)
            acc += wz[dk] * wy[dj] * wx[di] *
                   fine[fidx(is[di], js[dj], ks[dk])];
      coarse[cn] = acc;
    }
  }
}

/// Trilinear prolongation of the coarse-grid error with correction:
/// phi_fine += P·e over the free nodes of fine plane kf. Coincident nodes
/// copy, in-between nodes average 2/4/8 coarse neighbors.
inline void prolong_correct_plane(const double* coarse, Dims c, double* fine,
                                  const std::uint8_t* fine_fixed, Dims f,
                                  std::size_t kf) {
  const auto cidx = [&](std::size_t i, std::size_t j, std::size_t k) {
    return (k * c.ny + j) * c.nx + i;
  };
  const std::size_t k0 = kf / 2;
  const std::size_t k1 = (kf % 2 != 0) ? k0 + 1 : k0;
  for (std::size_t jf = 0; jf < f.ny; ++jf) {
    const std::size_t j0 = jf / 2;
    const std::size_t j1 = (jf % 2 != 0) ? j0 + 1 : j0;
    for (std::size_t i = 0; i < f.nx; ++i) {
      const std::size_t n = (kf * f.ny + jf) * f.nx + i;
      if (fine_fixed[n]) continue;
      const std::size_t i0 = i / 2;
      const std::size_t i1 = (i % 2 != 0) ? i0 + 1 : i0;
      const double e =
          0.125 * (coarse[cidx(i0, j0, k0)] + coarse[cidx(i1, j0, k0)] +
                   coarse[cidx(i0, j1, k0)] + coarse[cidx(i1, j1, k0)] +
                   coarse[cidx(i0, j0, k1)] + coarse[cidx(i1, j0, k1)] +
                   coarse[cidx(i0, j1, k1)] + coarse[cidx(i1, j1, k1)]);
      fine[n] += e;
    }
  }
}

// ------------------------------------------------- variable-coefficient ----
//
// Galerkin (RAP) coarse operators are 27-point stencils with per-node
// coefficients: restricting the fine operator through full weighting and
// trilinear prolongation lets 1–2-node electrode gaps survive coarsening,
// which the injected-mask 7-point coarse operator cannot represent. The
// kernels below smooth and evaluate residuals for such operators with the
// same plane-wise layout and the same bit-identical SIMD/scalar contract as
// the constant-coefficient kernels above.
//
// Layout: `coef` is structure-of-arrays, coefficient of offset m for node n
// at coef[m * g.size() + n], where m = ((dk+1)*3 + (dj+1))*3 + (di+1) and
// m == 13 is the diagonal. Offsets that would leave the grid have zero
// coefficients by construction (the RAP product never accumulates them), so
// the kernels read a clamped in-range address for those lanes and the
// contribution is an exact ±0.0 on every path. `inv_diag` holds 1/a_diag at
// free nodes and 0.0 at Dirichlet nodes.
//
// NOTE on coloring: a 27-point stencil couples same-color nodes of adjacent
// planes (diagonal offsets), so unlike the 7-point kernels a red-black
// half-sweep is NOT plane-parallel safe on its own. Callers must sequence
// (color, plane-parity) subsweeps — planes of equal parity are >= 2 apart
// and therefore uncoupled — which keeps fan-out bitwise identical to serial.

/// Per-axis offsets of stencil slot m (see layout note above).
inline constexpr int var_off_i(int m) { return m % 3 - 1; }
inline constexpr int var_off_j(int m) { return (m / 3) % 3 - 1; }
inline constexpr int var_off_k(int m) { return m / 9 - 1; }

namespace detail {

// Clamp j/k neighbor indices into range: the matching coefficients are zero
// by construction, so the clamped load only ever contributes an exact ±0.0.
inline std::size_t clamp_index(std::ptrdiff_t idx, std::size_t n) {
  if (idx < 0) return 0;
  if (idx >= static_cast<std::ptrdiff_t>(n)) return n - 1;
  return static_cast<std::size_t>(idx);
}

#if BIOCHIP_STENCIL_X86

/// Vectorized interior of one red-black row of the 27-point var-coeff
/// smoother. Same even/odd half-row scheme as smooth_row_avx2: contiguous
/// 4-lane blocks, relaxation computed for every lane, only the two
/// same-color free lanes committed. `vrow[m]` is the j/k-offset row BASE of
/// slot m (never shifted by the i offset, so no before-the-array pointer is
/// ever formed); lane loads add `i + di` which is >= 0 for every interior i.
/// Accumulation order (m ascending, diagonal skipped, one mul then one add
/// per slot, no FMA) matches the scalar loop exactly.
template <bool TrackMax>
__attribute__((target("avx2"))) inline std::size_t smooth_row_var_avx2(
    double* r, const std::uint8_t* f, const double* const* vrow,
    const double* const* crow, const double* inv_row, const double* rr, double omega,
    std::size_t i, std::size_t ilast, double& max_update) {
  const __m256d omega_v = _mm256_set1_pd(omega);
  const __m256d absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m256i colormask = _mm256_setr_epi64x(-1, 0, -1, 0);
  __m256d maxv = _mm256_setzero_pd();
  for (; i + 4 <= ilast; i += 4) {
    const __m256d center = _mm256_loadu_pd(r + i);
    __m256d acc = _mm256_setzero_pd();
    for (int m = 0; m < 27; ++m) {
      if (m == 13) continue;
      const std::size_t ii =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + var_off_i(m));
      __m256d p = _mm256_mul_pd(_mm256_loadu_pd(crow[m] + i),
                                _mm256_loadu_pd(vrow[m] + ii));
      asm("" : "+x"(p));
      acc = _mm256_add_pd(acc, p);
    }
    __m256d q = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(rr + i), acc),
                              _mm256_loadu_pd(inv_row + i));
    asm("" : "+x"(q));
    __m256d delta = _mm256_mul_pd(omega_v, _mm256_sub_pd(q, center));
    asm("" : "+x"(delta));
    const __m256d next = _mm256_add_pd(center, delta);
    if ((f[i] | f[i + 2]) == 0) {
      if constexpr (TrackMax) {
        const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
        maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(colormask), diff));
      }
      _mm_storel_pd(r + i, _mm256_castpd256_pd128(next));
      _mm_storel_pd(r + i + 2, _mm256_extractf128_pd(next, 1));
      continue;
    }
    const __m256i smask = _mm256_and_si256(colormask, free_mask(f, i));
    if constexpr (TrackMax) {
      const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
      maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(smask), diff));
    }
    if (!_mm256_testz_si256(smask, smask)) _mm256_maskstore_pd(r + i, smask, next);
  }
  if constexpr (TrackMax) max_update = std::max(max_update, hmax(maxv));
  return i;
}

/// Broadcast-coefficient variant of smooth_row_var_avx2 for rows whose
/// interior nodes all hold the level's constant (uniform) Galerkin stencil:
/// the 27 coefficients broadcast from one cache line instead of streaming 27
/// grid-sized planes, which removes most of the coefficient traffic of a
/// var sweep. Bit-identical to the per-node kernel on such rows: the stored
/// per-node coefficients are exact copies of `uc` (see build_rap), and the
/// accumulation runs in the same order with the same values and no FMA.
template <bool TrackMax>
__attribute__((target("avx2"))) inline std::size_t smooth_row_var_bcast_avx2(
    double* r, const std::uint8_t* f, const double* const* vrow, const double* uc,
    double uinv, const double* rr, double omega, std::size_t i, std::size_t ilast,
    double& max_update) {
  const __m256d omega_v = _mm256_set1_pd(omega);
  const __m256d uinv_v = _mm256_set1_pd(uinv);
  const __m256d absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m256i colormask = _mm256_setr_epi64x(-1, 0, -1, 0);
  __m256d maxv = _mm256_setzero_pd();
  for (; i + 4 <= ilast; i += 4) {
    const __m256d center = _mm256_loadu_pd(r + i);
    __m256d acc = _mm256_setzero_pd();
    for (int m = 0; m < 27; ++m) {
      if (m == 13) continue;
      const std::size_t ii =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + var_off_i(m));
      __m256d p = _mm256_mul_pd(_mm256_set1_pd(uc[m]),
                                _mm256_loadu_pd(vrow[m] + ii));
      asm("" : "+x"(p));
      acc = _mm256_add_pd(acc, p);
    }
    __m256d q = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(rr + i), acc), uinv_v);
    asm("" : "+x"(q));
    __m256d delta = _mm256_mul_pd(omega_v, _mm256_sub_pd(q, center));
    asm("" : "+x"(delta));
    const __m256d next = _mm256_add_pd(center, delta);
    if ((f[i] | f[i + 2]) == 0) {
      if constexpr (TrackMax) {
        const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
        maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(colormask), diff));
      }
      _mm_storel_pd(r + i, _mm256_castpd256_pd128(next));
      _mm_storel_pd(r + i + 2, _mm256_extractf128_pd(next, 1));
      continue;
    }
    const __m256i smask = _mm256_and_si256(colormask, free_mask(f, i));
    if constexpr (TrackMax) {
      const __m256d diff = _mm256_and_pd(absmask, _mm256_sub_pd(next, center));
      maxv = _mm256_max_pd(maxv, _mm256_and_pd(_mm256_castsi256_pd(smask), diff));
    }
    if (!_mm256_testz_si256(smask, smask)) _mm256_maskstore_pd(r + i, smask, next);
  }
  if constexpr (TrackMax) max_update = std::max(max_update, hmax(maxv));
  return i;
}

/// Vectorized interior of one var-coeff residual row (contiguous i, all
/// lanes): out[i] = rhs[i] - Σ_m a_m·e, exact +0.0 at Dirichlet lanes.
__attribute__((target("avx2"))) inline std::size_t residual_row_var_avx2(
    const std::uint8_t* f, const double* const* vrow, const double* const* crow,
    const double* rr, double* out, std::size_t i, std::size_t iend) {
  for (; i + 4 <= iend; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int m = 0; m < 27; ++m) {
      const std::size_t ii =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + var_off_i(m));
      __m256d p = _mm256_mul_pd(_mm256_loadu_pd(crow[m] + i),
                                _mm256_loadu_pd(vrow[m] + ii));
      asm("" : "+x"(p));
      acc = _mm256_add_pd(acc, p);
    }
    const __m256d keep = _mm256_castsi256_pd(free_mask(f, i));  // -1 where free
    const __m256d res = _mm256_sub_pd(_mm256_loadu_pd(rr + i), acc);
    _mm256_storeu_pd(out + i, _mm256_and_pd(keep, res));
  }
  return i;
}

#endif  // BIOCHIP_STENCIL_X86

// One full-plane var-coeff smoothing loop, stamped per ISA like the
// constant-coefficient planes. `BIOCHIP_SMOOTH_VAR_TAIL` is the ISA-specific
// interior-row call.
#define BIOCHIP_SMOOTH_VAR_PLANE_BODY(...)                                       \
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz, n = g.size();               \
  double max_update = 0.0;                                                       \
  const double* vrow[27];                                                        \
  const double* crow[27];                                                        \
  for (std::size_t j = 0; j < ny; ++j) {                                         \
    const std::size_t row = (k * ny + j) * nx;                                   \
    double* r = d + row;                                                         \
    const std::uint8_t* f = fixed + row;                                         \
    const double* rr = rhs + row;                                                \
    const double* inv_row = inv_diag + row;                                      \
    for (int m = 0; m < 27; ++m) {                                               \
      const std::size_t jj =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(j) + var_off_j(m), ny);        \
      const std::size_t kk =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(k) + var_off_k(m), nz);        \
      vrow[m] = d + (kk * ny + jj) * nx;                                         \
      crow[m] = coef + static_cast<std::size_t>(m) * n + row;                    \
    }                                                                            \
    /* im/ip are the i-1/i+1 indices, clamped in range at the row ends          \
       (the matching coefficients are zero there by construction). */           \
    const auto relax = [&](std::size_t i, std::size_t im, std::size_t ip) {      \
      if (f[i]) return;                                                          \
      double acc = 0.0;                                                          \
      for (int m = 0; m < 27; ++m) {                                             \
        if (m == 13) continue;                                                   \
        const int di = var_off_i(m);                                             \
        const std::size_t ii = di < 0 ? im : (di > 0 ? ip : i);                  \
        double p = crow[m][i] * vrow[m][ii];                                     \
        BIOCHIP_NO_CONTRACT(p);                                                  \
        acc += p;                                                                \
      }                                                                          \
      const double old = r[i];                                                   \
      double q = (rr[i] - acc) * inv_row[i];                                     \
      BIOCHIP_NO_CONTRACT(q);                                                    \
      double delta = omega * (q - old);                                          \
      BIOCHIP_NO_CONTRACT(delta);                                                \
      const double next = old + delta;                                           \
      r[i] = next;                                                               \
      if constexpr (TrackMax)                                                    \
        max_update = std::max(max_update, std::fabs(next - old));                \
    };                                                                           \
    std::size_t i = ((j + k) % 2 == static_cast<std::size_t>(color)) ? 0 : 1;    \
    if (i == 0) {                                                                \
      relax(0, 0, nx > 1 ? 1 : 0);                                               \
      i = 2;                                                                     \
    }                                                                            \
    const std::size_t ilast = nx - 1;                                            \
    __VA_ARGS__                                                                  \
    for (; i < ilast; i += 2) relax(i, i - 1, i + 1);                            \
    if (i == ilast) relax(ilast, ilast - 1, ilast);                              \
  }                                                                              \
  return max_update;

template <bool TrackMax>
double smooth_plane_var_generic(double* d, const std::uint8_t* fixed, const double* coef,
                                const double* inv_diag, const double* rhs, Dims g,
                                double omega, int color, std::size_t k) {
  BIOCHIP_SMOOTH_VAR_PLANE_BODY()
}

#if BIOCHIP_STENCIL_X86
template <bool TrackMax>
__attribute__((target("avx2"))) double smooth_plane_var_x2(
    double* d, const std::uint8_t* fixed, const double* coef, const double* inv_diag,
    const double* rhs, Dims g, double omega, int color, std::size_t k) {
  BIOCHIP_SMOOTH_VAR_PLANE_BODY(
      if (nx >= 12) i = smooth_row_var_avx2<TrackMax>(r, f, vrow, crow, inv_row, rr,
                                                      omega, i, ilast, max_update);)
}
#endif

// Broadcast-dispatching var-coeff plane smoother: rows whose interior holds
// the level's constant stencil (per-row `row_uniform` flags derived from
// build_rap's per-node uniformity) relax against the 27 broadcast constants
// `uc` and the scalar `uinv`; other rows (and the i = 0 / i = nx-1 border
// nodes of every row, which mirror folding always de-uniformizes) run the
// per-node path. The stored coefficients of flagged nodes are exact copies
// of `uc` and inv_diag there is the same 1/uc[13] quotient, so the result is
// bit-identical to smooth_plane_var on every plane.
#define BIOCHIP_SMOOTH_VAR_BCAST_PLANE_BODY(...)                                 \
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz, n = g.size();               \
  double max_update = 0.0;                                                       \
  const double* vrow[27];                                                        \
  const double* crow[27];                                                        \
  for (std::size_t j = 0; j < ny; ++j) {                                         \
    const std::size_t row = (k * ny + j) * nx;                                   \
    double* r = d + row;                                                         \
    const std::uint8_t* f = fixed + row;                                         \
    const double* rr = rhs + row;                                                \
    const double* inv_row = inv_diag + row;                                      \
    const bool urow = row_uniform[k * ny + j] != 0;                              \
    for (int m = 0; m < 27; ++m) {                                               \
      const std::size_t jj =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(j) + var_off_j(m), ny);        \
      const std::size_t kk =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(k) + var_off_k(m), nz);        \
      vrow[m] = d + (kk * ny + jj) * nx;                                         \
      crow[m] = coef + static_cast<std::size_t>(m) * n + row;                    \
    }                                                                            \
    const auto relax = [&](std::size_t i, std::size_t im, std::size_t ip) {      \
      if (f[i]) return;                                                          \
      double acc = 0.0;                                                          \
      for (int m = 0; m < 27; ++m) {                                             \
        if (m == 13) continue;                                                   \
        const int di = var_off_i(m);                                             \
        const std::size_t ii = di < 0 ? im : (di > 0 ? ip : i);                  \
        double p = crow[m][i] * vrow[m][ii];                                     \
        BIOCHIP_NO_CONTRACT(p);                                                  \
        acc += p;                                                                \
      }                                                                          \
      const double old = r[i];                                                   \
      double q = (rr[i] - acc) * inv_row[i];                                     \
      BIOCHIP_NO_CONTRACT(q);                                                    \
      double delta = omega * (q - old);                                          \
      BIOCHIP_NO_CONTRACT(delta);                                                \
      const double next = old + delta;                                           \
      r[i] = next;                                                               \
      if constexpr (TrackMax)                                                    \
        max_update = std::max(max_update, std::fabs(next - old));                \
    };                                                                           \
    const auto relax_u = [&](std::size_t i, std::size_t im, std::size_t ip) {    \
      if (f[i]) return;                                                          \
      double acc = 0.0;                                                          \
      for (int m = 0; m < 27; ++m) {                                             \
        if (m == 13) continue;                                                   \
        const int di = var_off_i(m);                                             \
        const std::size_t ii = di < 0 ? im : (di > 0 ? ip : i);                  \
        double p = uc[m] * vrow[m][ii];                                          \
        BIOCHIP_NO_CONTRACT(p);                                                  \
        acc += p;                                                                \
      }                                                                          \
      const double old = r[i];                                                   \
      double q = (rr[i] - acc) * uinv;                                           \
      BIOCHIP_NO_CONTRACT(q);                                                    \
      double delta = omega * (q - old);                                          \
      BIOCHIP_NO_CONTRACT(delta);                                                \
      const double next = old + delta;                                           \
      r[i] = next;                                                               \
      if constexpr (TrackMax)                                                    \
        max_update = std::max(max_update, std::fabs(next - old));                \
    };                                                                           \
    std::size_t i = ((j + k) % 2 == static_cast<std::size_t>(color)) ? 0 : 1;    \
    if (i == 0) {                                                                \
      relax(0, 0, nx > 1 ? 1 : 0);                                               \
      i = 2;                                                                     \
    }                                                                            \
    const std::size_t ilast = nx - 1;                                            \
    __VA_ARGS__                                                                  \
    if (urow) {                                                                  \
      for (; i < ilast; i += 2) relax_u(i, i - 1, i + 1);                        \
    } else {                                                                     \
      for (; i < ilast; i += 2) relax(i, i - 1, i + 1);                          \
    }                                                                            \
    if (i == ilast) relax(ilast, ilast - 1, ilast);                              \
  }                                                                              \
  return max_update;

template <bool TrackMax>
double smooth_plane_var_bcast_generic(double* d, const std::uint8_t* fixed,
                                      const double* coef,
                                      const std::uint8_t* row_uniform, const double* uc,
                                      double uinv, const double* inv_diag,
                                      const double* rhs, Dims g, double omega, int color,
                                      std::size_t k) {
  BIOCHIP_SMOOTH_VAR_BCAST_PLANE_BODY()
}

#if BIOCHIP_STENCIL_X86
template <bool TrackMax>
__attribute__((target("avx2"))) double smooth_plane_var_bcast_x2(
    double* d, const std::uint8_t* fixed, const double* coef,
    const std::uint8_t* row_uniform, const double* uc, double uinv,
    const double* inv_diag, const double* rhs, Dims g, double omega, int color,
    std::size_t k) {
  BIOCHIP_SMOOTH_VAR_BCAST_PLANE_BODY(
      if (nx >= 12) {
        if (urow)
          i = smooth_row_var_bcast_avx2<TrackMax>(r, f, vrow, uc, uinv, rr, omega, i,
                                                  ilast, max_update);
        else
          i = smooth_row_var_avx2<TrackMax>(r, f, vrow, crow, inv_row, rr, omega, i,
                                            ilast, max_update);
      })
}
#endif

#define BIOCHIP_RESIDUAL_VAR_PLANE_BODY(...)                                     \
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz, n = g.size();               \
  const double* vrow[27];                                                        \
  const double* crow[27];                                                        \
  for (std::size_t j = 0; j < ny; ++j) {                                         \
    const std::size_t row = (k * ny + j) * nx;                                   \
    const std::uint8_t* f = fixed + row;                                         \
    const double* rr = rhs + row;                                                \
    double* ro = out + row;                                                      \
    for (int m = 0; m < 27; ++m) {                                               \
      const std::size_t jj =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(j) + var_off_j(m), ny);        \
      const std::size_t kk =                                                     \
          clamp_index(static_cast<std::ptrdiff_t>(k) + var_off_k(m), nz);        \
      vrow[m] = d + (kk * ny + jj) * nx;                                         \
      crow[m] = coef + static_cast<std::size_t>(m) * n + row;                    \
    }                                                                            \
    const auto node = [&](std::size_t i, std::size_t im, std::size_t ip) {       \
      if (f[i]) {                                                                \
        ro[i] = 0.0;                                                             \
        return;                                                                  \
      }                                                                          \
      double acc = 0.0;                                                          \
      for (int m = 0; m < 27; ++m) {                                             \
        const int di = var_off_i(m);                                             \
        const std::size_t ii = di < 0 ? im : (di > 0 ? ip : i);                  \
        double p = crow[m][i] * vrow[m][ii];                                     \
        BIOCHIP_NO_CONTRACT(p);                                                  \
        acc += p;                                                                \
      }                                                                          \
      ro[i] = rr[i] - acc;                                                       \
    };                                                                           \
    node(0, 0, nx > 1 ? 1 : 0);                                                  \
    std::size_t i = 1;                                                           \
    const std::size_t ilast = nx - 1;                                            \
    __VA_ARGS__                                                                  \
    for (; i < ilast; ++i) node(i, i - 1, i + 1);                                \
    if (ilast > 0) node(ilast, ilast - 1, ilast);                                \
  }

inline void residual_plane_var_generic(const double* d, const std::uint8_t* fixed,
                                       const double* coef, const double* rhs, double* out,
                                       Dims g, std::size_t k) {
  BIOCHIP_RESIDUAL_VAR_PLANE_BODY()
}

#if BIOCHIP_STENCIL_X86
__attribute__((target("avx2"))) inline void residual_plane_var_x2(
    const double* d, const std::uint8_t* fixed, const double* coef, const double* rhs,
    double* out, Dims g, std::size_t k) {
  BIOCHIP_RESIDUAL_VAR_PLANE_BODY(
      if (nx >= 12) i = residual_row_var_avx2(f, vrow, crow, rr, ro, i, ilast);)
}
#endif

}  // namespace detail

/// Relax every free node of red-black `color` in plane k of a 27-point
/// variable-coefficient (Galerkin) operator toward (rhs - Σ_offdiag)·inv_diag;
/// returns the plane max |update|. Callers must sequence (color, plane
/// parity) subsweeps for plane-parallel determinism (see note above). The
/// AVX2 path is bit-identical to the scalar loop (same order, no FMA).
template <bool TrackMax = true>
inline double smooth_plane_var(double* d, const std::uint8_t* fixed, const double* coef,
                               const double* inv_diag, const double* rhs, Dims g,
                               double omega, int color, std::size_t k) {
#if BIOCHIP_STENCIL_X86
  if (simd_level() > 0)
    return detail::smooth_plane_var_x2<TrackMax>(d, fixed, coef, inv_diag, rhs, g, omega,
                                                 color, k);
#endif
  return detail::smooth_plane_var_generic<TrackMax>(d, fixed, coef, inv_diag, rhs, g,
                                                    omega, color, k);
}

/// smooth_plane_var with the constant-stencil broadcast fast path: rows
/// flagged in `row_uniform` (one flag per (k·ny + j) row: every interior
/// node holds the level's uniform Galerkin stencil, see build_rap) read
/// their coefficients as the 27 broadcast constants `uc` and relax with the
/// scalar `uinv` = 1/uc[13], cutting the 27-stream coefficient traffic that
/// dominates a var sweep on uniform coarse planes. Bit-identical to
/// smooth_plane_var on every plane (the flagged nodes' stored coefficients
/// are exact copies of `uc`); callers keep the same (color, plane-parity)
/// sequencing contract.
template <bool TrackMax = true>
inline double smooth_plane_var_bcast(double* d, const std::uint8_t* fixed,
                                     const double* coef,
                                     const std::uint8_t* row_uniform, const double* uc,
                                     double uinv, const double* inv_diag,
                                     const double* rhs, Dims g, double omega, int color,
                                     std::size_t k) {
#if BIOCHIP_STENCIL_X86
  if (simd_level() > 0)
    return detail::smooth_plane_var_bcast_x2<TrackMax>(
        d, fixed, coef, row_uniform, uc, uinv, inv_diag, rhs, g, omega, color, k);
#endif
  return detail::smooth_plane_var_bcast_generic<TrackMax>(
      d, fixed, coef, row_uniform, uc, uinv, inv_diag, rhs, g, omega, color, k);
}

/// Residual of the 27-point variable-coefficient operator over plane k:
/// out = rhs - A·e (exact 0.0 at Dirichlet nodes), for restriction to the
/// next-coarser level. Reads other planes only; safe to fan over planes.
inline void residual_plane_var(const double* d, const std::uint8_t* fixed,
                               const double* coef, const double* rhs, double* out,
                               Dims g, std::size_t k) {
#if BIOCHIP_STENCIL_X86
  if (simd_level() > 0) {
    detail::residual_plane_var_x2(d, fixed, coef, rhs, out, g, k);
    return;
  }
#endif
  detail::residual_plane_var_generic(d, fixed, coef, rhs, out, g, k);
}

// ------------------------------------------------------ box-clamped kernels

/// smooth_plane restricted to i ∈ [bi0, bi1], j ∈ [bj0, bj1] (inclusive,
/// caller-clamped to the grid) of plane k — the dirty-region correction
/// kernel. Same relax formula, association order, ascending-i traversal and
/// x/y/z mirror handling as smooth_plane, so a box spanning the whole plane
/// reproduces it node for node. Nodes outside the box are read as stencil
/// neighbors but never written, which freezes the box boundary at the
/// caller's cached global solution. Deliberately scalar: windows are a few
/// dozen nodes per side — below the vector kernels' profitable range — and a
/// scalar-only path is identical across SIMD levels with no dispatch.
/// Returns the max absolute node update inside the box-plane.
inline double smooth_plane_box(double* d, const std::uint8_t* fixed, const double* rhs,
                               double h2, Dims g, double omega, int color, std::size_t k,
                               std::size_t bi0, std::size_t bi1, std::size_t bj0,
                               std::size_t bj1) {
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz;
  const std::size_t km = (k == 0) ? 1 : k - 1;
  const std::size_t kp = (k + 1 == nz) ? nz - 2 : k + 1;
  const std::size_t ilast = nx - 1;
  double max_update = 0.0;
  for (std::size_t j = bj0; j <= bj1; ++j) {
    const std::size_t jm = (j == 0) ? 1 : j - 1;
    const std::size_t jp = (j + 1 == ny) ? ny - 2 : j + 1;
    const std::size_t row = (k * ny + j) * nx;
    double* r = d + row;
    const std::uint8_t* f = fixed + row;
    const double* rr = (rhs != nullptr) ? rhs + row : nullptr;
    const double* rjm = d + (k * ny + jm) * nx;
    const double* rjp = d + (k * ny + jp) * nx;
    const double* rkm = d + (km * ny + j) * nx;
    const double* rkp = d + (kp * ny + j) * nx;
    const auto relax = [&](std::size_t i, std::size_t im, std::size_t ip) {
      if (f[i]) return;
      double nb = r[im] + r[ip] + rjm[i] + rjp[i] + rkm[i] + rkp[i];
      if (rr != nullptr) {
        double load = h2 * rr[i];
        BIOCHIP_NO_CONTRACT(load);
        nb -= load;
      }
      const double old = r[i];
      double q = nb * (1.0 / 6.0);
      BIOCHIP_NO_CONTRACT(q);
      double delta = omega * (q - old);
      BIOCHIP_NO_CONTRACT(delta);
      const double next = old + delta;
      r[i] = next;
      max_update = std::max(max_update, std::fabs(next - old));
    };
    // First node of this row at the right parity for (j, k) and color.
    std::size_t i = bi0 + (((bi0 + j + k) % 2 == static_cast<std::size_t>(color)) ? 0 : 1);
    for (; i <= bi1; i += 2) {
      if (i == 0)
        relax(0, 1, 1);  // x-mirror: both neighbors fold onto node 1
      else if (i == ilast)
        relax(ilast, ilast - 1, ilast - 1);
      else
        relax(i, i - 1, i + 1);
    }
  }
  return max_update;
}

/// residual_plane restricted to the same inclusive box: returns the max of
/// |(Σnb - h²·rhs)/6 - φ| over the box-plane's free nodes (the update-units
/// diagnostic norm, identical to the full-plane definition). Scalar for the
/// same reasons as smooth_plane_box; read-only, safe to fan over planes.
inline double residual_plane_box(const double* d, const std::uint8_t* fixed,
                                 const double* rhs, double h2, Dims g, std::size_t k,
                                 std::size_t bi0, std::size_t bi1, std::size_t bj0,
                                 std::size_t bj1) {
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz;
  const std::size_t km = (k == 0) ? 1 : k - 1;
  const std::size_t kp = (k + 1 == nz) ? nz - 2 : k + 1;
  const std::size_t ilast = nx - 1;
  double max_resid = 0.0;
  for (std::size_t j = bj0; j <= bj1; ++j) {
    const std::size_t jm = (j == 0) ? 1 : j - 1;
    const std::size_t jp = (j + 1 == ny) ? ny - 2 : j + 1;
    const std::size_t row = (k * ny + j) * nx;
    const double* r = d + row;
    const std::uint8_t* f = fixed + row;
    const double* rr = (rhs != nullptr) ? rhs + row : nullptr;
    const double* rjm = d + (k * ny + jm) * nx;
    const double* rjp = d + (k * ny + jp) * nx;
    const double* rkm = d + (km * ny + j) * nx;
    const double* rkp = d + (kp * ny + j) * nx;
    const auto node = [&](std::size_t i, std::size_t im, std::size_t ip) {
      if (f[i]) return;
      const double nb = r[im] + r[ip] + rjm[i] + rjp[i] + rkm[i] + rkp[i];
      const double load = (rr != nullptr) ? rr[i] : 0.0;
      max_resid =
          std::max(max_resid, std::fabs((nb - h2 * load) * (1.0 / 6.0) - r[i]));
    };
    for (std::size_t i = bi0; i <= bi1; ++i) {
      if (i == 0)
        node(0, 1, 1);
      else if (i == ilast)
        node(ilast, ilast - 1, ilast - 1);
      else
        node(i, i - 1, i + 1);
    }
  }
  return max_resid;
}

}  // namespace biochip::field::stencil
