#include "field/analytic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::field {

double parallel_plate_potential(double v_bottom, double v_top, double gap, double z) {
  BIOCHIP_REQUIRE(gap > 0.0, "plate gap must be positive");
  const double t = clamp(z / gap, 0.0, 1.0);
  return lerp(v_bottom, v_top, t);
}

double periodic_decay_length(double period) {
  BIOCHIP_REQUIRE(period > 0.0, "period must be positive");
  return period / (2.0 * constants::pi);
}

double HarmonicCage::erms2(Vec3 p) const {
  const Vec3 d = p - center;
  return w_min + 0.5 * c_r * (d.x * d.x + d.y * d.y) + 0.5 * c_z * d.z * d.z;
}

Vec3 HarmonicCage::grad_erms2(Vec3 p) const {
  const Vec3 d = p - center;
  return {c_r * d.x, c_r * d.y, c_z * d.z};
}

HarmonicCage HarmonicCage::moved_to(Vec3 new_center) const {
  HarmonicCage c = *this;
  c.center = new_center;
  return c;
}

HarmonicCage calibrate_cage(const PhasorSolution& solution, const Aabb& search, double probe) {
  BIOCHIP_REQUIRE(probe > 0.0, "probe distance must be positive");
  const Grid3& w = solution.erms2();
  const double h = w.spacing();

  // Coarse scan for the minimum over grid nodes inside the search box.
  Vec3 best{};
  double best_w = 0.0;
  bool found = false;
  for (std::size_t k = 0; k < w.nz(); ++k)
    for (std::size_t j = 0; j < w.ny(); ++j)
      for (std::size_t i = 0; i < w.nx(); ++i) {
        const Vec3 p{static_cast<double>(i) * h, static_cast<double>(j) * h,
                     static_cast<double>(k) * h};
        if (!search.contains(p)) continue;
        const double v = w.at(i, j, k);
        if (!found || v < best_w) {
          best = p;
          best_w = v;
          found = true;
        }
      }
  if (!found) throw NumericError("calibrate_cage: search box contains no grid nodes");

  // Reject minima on the search boundary: the trap is not enclosed.
  const Vec3 margin = search.extent() * 0.05;
  if (best.x - search.min.x < margin.x || search.max.x - best.x < margin.x ||
      best.y - search.min.y < margin.y || search.max.y - best.y < margin.y ||
      best.z - search.min.z < margin.z || search.max.z - best.z < margin.z)
    throw NumericError("calibrate_cage: E_rms^2 minimum lies on the search boundary");

  // One Newton-style refinement per axis using quadratic interpolation.
  auto refine_axis = [&](Vec3 p, Vec3 dir) {
    const double wm = w.sample(p - dir * h);
    const double w0 = w.sample(p);
    const double wp = w.sample(p + dir * h);
    const double denom = wm - 2.0 * w0 + wp;
    if (std::fabs(denom) < 1e-300) return p;
    const double shift = 0.5 * (wm - wp) / denom * h;
    return p + dir * clamp(shift, -h, h);
  };
  best = refine_axis(best, {1, 0, 0});
  best = refine_axis(best, {0, 1, 0});
  best = refine_axis(best, {0, 0, 1});

  HarmonicCage cage;
  cage.center = best;
  cage.w_min = w.sample(best);
  auto curvature = [&](Vec3 dir) {
    const double wm = w.sample(best - dir * probe);
    const double wp = w.sample(best + dir * probe);
    return (wm - 2.0 * cage.w_min + wp) / (probe * probe);
  };
  cage.c_r = 0.5 * (curvature({1, 0, 0}) + curvature({0, 1, 0}));
  cage.c_z = curvature({0, 0, 1});
  if (!(cage.c_r > 0.0) || !(cage.c_z > 0.0))
    throw NumericError("calibrate_cage: non-positive curvature — not a closed cage");
  return cage;
}

}  // namespace biochip::field
