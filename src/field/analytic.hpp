#pragma once
/// \file analytic.hpp
/// \brief Closed-form reference fields and the calibrated harmonic-cage
/// surrogate.
///
/// The reference solutions validate the grid solver; the `HarmonicCage`
/// surrogate — a quadratic expansion of E_rms² around a cage minimum,
/// calibrated once from a full solve — is what makes simulating thousands of
/// simultaneous cages on a >100k-electrode array tractable.

#include "common/geometry.hpp"
#include "field/phasor.hpp"

namespace biochip::field {

/// Potential between two infinite parallel plates: bottom at v_bottom (z=0),
/// top at v_top (z=gap). Reference for solver validation.
double parallel_plate_potential(double v_bottom, double v_top, double gap, double z);

/// Decay length of the dominant field harmonic above a periodic electrode
/// pattern of spatial period `period`: λ/(2π). Potentials above such a
/// pattern fall off as exp(-z/decay_length).
double periodic_decay_length(double period);

/// Quadratic (harmonic) model of a closed DEP cage:
///   W(x) ≈ w_min + ½ c_r [(x-x₀)² + (y-y₀)²] + ½ c_z (z-z₀)²
/// where W = E_rms². For nDEP (Re K < 0) this is a stable trap at (x₀,y₀,z₀).
struct HarmonicCage {
  Vec3 center;        ///< field minimum (trap site) [m]
  double w_min = 0.0; ///< E_rms² at the minimum [V²/m²]
  double c_r = 0.0;   ///< radial curvature of E_rms² [V²/m⁴]
  double c_z = 0.0;   ///< vertical curvature of E_rms² [V²/m⁴]

  /// Model E_rms² at a point.
  double erms2(Vec3 p) const;
  /// Model ∇E_rms² at a point.
  Vec3 grad_erms2(Vec3 p) const;
  /// Return a copy of this cage translated to a new center (same curvatures:
  /// the cage shape is translation-invariant across a uniform array).
  HarmonicCage moved_to(Vec3 new_center) const;
};

/// Calibrate a HarmonicCage from a solved field: locates the E_rms² minimum
/// inside `search`, then fits curvatures by central differences at distance
/// `probe` from the minimum. Throws NumericError if the minimum hugs the
/// search-box boundary (no enclosed trap).
HarmonicCage calibrate_cage(const PhasorSolution& solution, const Aabb& search, double probe);

}  // namespace biochip::field
