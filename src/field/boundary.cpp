#include "field/boundary.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip::field {

namespace {
std::size_t axis_nodes(double extent, double spacing) {
  BIOCHIP_REQUIRE(extent > 0.0 && spacing > 0.0, "domain extent/spacing must be positive");
  return static_cast<std::size_t>(std::llround(extent / spacing)) + 1;
}
}  // namespace

std::size_t ChamberDomain::nodes_x() const { return axis_nodes(width_x, spacing); }
std::size_t ChamberDomain::nodes_y() const { return axis_nodes(width_y, spacing); }
std::size_t ChamberDomain::nodes_z() const { return axis_nodes(height, spacing); }

Grid3 ChamberDomain::make_grid() const { return Grid3(nodes_x(), nodes_y(), nodes_z(), spacing); }

PhasorBc build_boundary(const ChamberDomain& domain,
                        const std::vector<ElectrodePatch>& electrodes,
                        std::optional<std::complex<double>> lid) {
  for (std::size_t a = 0; a < electrodes.size(); ++a)
    for (std::size_t b = a + 1; b < electrodes.size(); ++b)
      if (electrodes[a].footprint.overlaps(electrodes[b].footprint))
        throw ConfigError("electrode footprints overlap");

  Grid3 probe = domain.make_grid();
  PhasorBc bc{DirichletBc::all_free(probe), DirichletBc::all_free(probe)};
  const double h = domain.spacing;
  const std::size_t nx = probe.nx(), ny = probe.ny(), nz = probe.nz();

  // Chip surface: pin nodes whose (x,y) lie inside an electrode footprint.
  // A half-spacing tolerance snaps footprints that end between nodes.
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const Vec2 p{static_cast<double>(i) * h, static_cast<double>(j) * h};
      for (const ElectrodePatch& e : electrodes) {
        const Rect grown{{e.footprint.min.x - 0.25 * h, e.footprint.min.y - 0.25 * h},
                         {e.footprint.max.x + 0.25 * h, e.footprint.max.y + 0.25 * h}};
        if (!grown.contains(p)) continue;
        const std::size_t n = probe.index(i, j, 0);
        bc.re.fixed[n] = 1;
        bc.re.value[n] = e.phasor.real();
        bc.im.fixed[n] = 1;
        bc.im.value[n] = e.phasor.imag();
        break;
      }
    }
  }

  if (lid.has_value()) {
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t n = probe.index(i, j, nz - 1);
        bc.re.fixed[n] = 1;
        bc.re.value[n] = lid->real();
        bc.im.fixed[n] = 1;
        bc.im.value[n] = lid->imag();
      }
  }
  return bc;
}

DirichletBc cage_reference_bc(const Grid3& grid, double v) {
  DirichletBc bc = DirichletBc::all_free(grid);
  const std::size_t n = grid.nx();
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / static_cast<double>(n - 1) * 3.0;
      const double y = static_cast<double>(j) / static_cast<double>(n - 1) * 3.0;
      const int pc = static_cast<int>(x), pr = static_cast<int>(y);
      const double fx = x - pc, fy = y - pr;
      if (!(pc > 2 || pr > 2 || fx < 0.1 || fx > 0.9 || fy < 0.1 || fy > 0.9)) {
        bc.fixed[grid.index(i, j, 0)] = 1;
        bc.value[grid.index(i, j, 0)] = (pc == 1 && pr == 1) ? v : -v;
      }
      bc.fixed[grid.index(i, j, grid.nz() - 1)] = 1;
      bc.value[grid.index(i, j, grid.nz() - 1)] = v;
    }
  return bc;
}

DirichletBc cage_thin_gap_bc(const Grid3& grid, double v, std::size_t gap_nodes) {
  BIOCHIP_REQUIRE(gap_nodes >= 1, "thin-gap BC needs at least a one-node gap");
  DirichletBc bc = DirichletBc::all_free(grid);
  const std::size_t nx = grid.nx(), ny = grid.ny();
  // Three tiles per axis; the first `gap_nodes` nodes of each tile are the
  // passivation gap, the rest is electrode metal, so every interior gap is
  // exactly `gap_nodes` nodes wide regardless of grid size.
  const std::size_t tx = nx / 3, ty = ny / 3;
  BIOCHIP_REQUIRE(tx > gap_nodes && ty > gap_nodes,
                  "grid too small for the requested gap width");
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t tc = std::min<std::size_t>(i / tx, 2);
      const std::size_t tr = std::min<std::size_t>(j / ty, 2);
      const bool metal = i - tc * tx >= gap_nodes && j - tr * ty >= gap_nodes;
      if (metal) {
        bc.fixed[grid.index(i, j, 0)] = 1;
        bc.value[grid.index(i, j, 0)] = (tc == 1 && tr == 1) ? v : -v;
      }
      bc.fixed[grid.index(i, j, grid.nz() - 1)] = 1;
      bc.value[grid.index(i, j, grid.nz() - 1)] = v;
    }
  return bc;
}

}  // namespace biochip::field
