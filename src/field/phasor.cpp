#include "field/phasor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip::field {

namespace {
// Node-centered gradient with one-sided differences at the domain faces.
Vec3 node_gradient(const Grid3& g, std::size_t i, std::size_t j, std::size_t k) {
  const double h = g.spacing();
  auto diff = [&](std::size_t lo_i, std::size_t lo_j, std::size_t lo_k, std::size_t hi_i,
                  std::size_t hi_j, std::size_t hi_k, double span) {
    return (g.at(hi_i, hi_j, hi_k) - g.at(lo_i, lo_j, lo_k)) / span;
  };
  Vec3 grad;
  grad.x = (i == 0)            ? diff(0, j, k, 1, j, k, h)
           : (i == g.nx() - 1) ? diff(i - 1, j, k, i, j, k, h)
                               : diff(i - 1, j, k, i + 1, j, k, 2.0 * h);
  grad.y = (j == 0)            ? diff(i, 0, k, i, 1, k, h)
           : (j == g.ny() - 1) ? diff(i, j - 1, k, i, j, k, h)
                               : diff(i, j - 1, k, i, j + 1, k, 2.0 * h);
  grad.z = (k == 0)            ? diff(i, j, 0, i, j, 1, h)
           : (k == g.nz() - 1) ? diff(i, j, k - 1, i, j, k, h)
                               : diff(i, j, k - 1, i, j, k + 1, 2.0 * h);
  return grad;
}
}  // namespace

PhasorSolution::PhasorSolution(Grid3 phi_re, Grid3 phi_im)
    : phi_re_(std::move(phi_re)), phi_im_(std::move(phi_im)) {
  BIOCHIP_REQUIRE(phi_re_.nx() == phi_im_.nx() && phi_re_.ny() == phi_im_.ny() &&
                      phi_re_.nz() == phi_im_.nz(),
                  "quadrature grids differ in shape");
}

const Grid3& PhasorSolution::erms2() const {
  if (!erms2_ready_) {
    erms2_ = erms2_from_quadratures(phi_re_, phi_im_);
    erms2_ready_ = true;
  }
  return erms2_;
}

double PhasorSolution::erms_at(Vec3 p) const { return std::sqrt(std::max(0.0, erms2_at(p))); }

std::pair<Vec3, Vec3> PhasorSolution::complex_field_at(Vec3 p) const {
  return {phi_re_.gradient(p) * -1.0, phi_im_.gradient(p) * -1.0};
}

Grid3 erms2_from_quadratures(const Grid3& phi_re, const Grid3& phi_im) {
  BIOCHIP_REQUIRE(phi_re.nx() == phi_im.nx() && phi_re.ny() == phi_im.ny() &&
                      phi_re.nz() == phi_im.nz(),
                  "quadrature grids differ in shape");
  Grid3 w(phi_re.nx(), phi_re.ny(), phi_re.nz(), phi_re.spacing());
  for (std::size_t k = 0; k < w.nz(); ++k)
    for (std::size_t j = 0; j < w.ny(); ++j)
      for (std::size_t i = 0; i < w.nx(); ++i) {
        const Vec3 er = node_gradient(phi_re, i, j, k);
        const Vec3 ei = node_gradient(phi_im, i, j, k);
        w.at(i, j, k) = 0.5 * (er.norm2() + ei.norm2());
      }
  return w;
}

PhasorSolution solve_phasor(const ChamberDomain& domain,
                            const std::vector<ElectrodePatch>& electrodes,
                            std::optional<std::complex<double>> lid,
                            const SolverOptions& opts, PhasorStats* stats,
                            MultigridWorkspace* workspace) {
  const PhasorBc bc = build_boundary(domain, electrodes, lid);
  Grid3 re = domain.make_grid();
  Grid3 im = domain.make_grid();
  // Both quadratures pin the same nodes, so the hierarchy prepared for the
  // real solve is reused as-is by the imaginary one.
  const SolveStats sre = solve_laplace(re, bc.re, opts, workspace);
  const SolveStats sim = solve_laplace(im, bc.im, opts, workspace);
  if (stats != nullptr) *stats = {sre, sim};
  return PhasorSolution(std::move(re), std::move(im));
}

}  // namespace biochip::field
