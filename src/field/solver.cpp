#include "field/solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/threadpool.hpp"

namespace biochip::field {

namespace {

// Mirror (homogeneous Neumann) index for out-of-range neighbors.
inline std::size_t mirror(std::ptrdiff_t idx, std::size_t n) {
  if (idx < 0) return 1;
  if (idx >= static_cast<std::ptrdiff_t>(n)) return n - 2;
  return static_cast<std::size_t>(idx);
}

// Relax every node of red-black `color` ((i+j+k)%2) in plane k; returns the
// max absolute node update. The mirror branches of the reference kernel are
// hoisted out of the i-loop: z- and y-mirrors are folded into the row base
// pointers, x-mirrors into the first/last node of each row, so the interior
// runs on raw strides with no bounds checks and no per-node branching beyond
// the Dirichlet mask.
double sweep_plane(double* d, const std::uint8_t* fixed, std::size_t nx, std::size_t ny,
                   std::size_t nz, double omega, int color, std::size_t k) {
  const std::size_t km = (k == 0) ? 1 : k - 1;
  const std::size_t kp = (k + 1 == nz) ? nz - 2 : k + 1;
  double max_update = 0.0;
  for (std::size_t j = 0; j < ny; ++j) {
    const std::size_t jm = (j == 0) ? 1 : j - 1;
    const std::size_t jp = (j + 1 == ny) ? ny - 2 : j + 1;
    const std::size_t row = (k * ny + j) * nx;
    double* r = d + row;
    const std::uint8_t* f = fixed + row;
    const double* rjm = d + (k * ny + jm) * nx;
    const double* rjp = d + (k * ny + jp) * nx;
    const double* rkm = d + (km * ny + j) * nx;
    const double* rkp = d + (kp * ny + j) * nx;

    const auto relax = [&](std::size_t i, std::size_t im, std::size_t ip) {
      if (f[i]) return;
      const double nb = r[im] + r[ip] + rjm[i] + rjp[i] + rkm[i] + rkp[i];
      const double old = r[i];
      const double next = old + omega * (nb / 6.0 - old);
      r[i] = next;
      max_update = std::max(max_update, std::fabs(next - old));
    };

    // Start i at the right parity for this (j,k) row.
    std::size_t i = ((j + k) % 2 == static_cast<std::size_t>(color)) ? 0 : 1;
    if (i == 0) {
      relax(0, 1, 1);  // x-mirror: both neighbors fold onto node 1
      i = 2;
    }
    const std::size_t ilast = nx - 1;
    for (; i < ilast; i += 2) relax(i, i - 1, i + 1);
    if (i == ilast) relax(ilast, ilast - 1, ilast - 1);
  }
  return max_update;
}

// Grow-only pool for explicit `threads = N` requests; `threads = 0` uses the
// process-global hardware-sized pool instead. Returned as shared_ptr so a
// solve keeps its pool alive even if a concurrent solve grows the cache and
// swaps the shared instance out from under it.
std::shared_ptr<core::ThreadPool> solver_pool(std::size_t threads) {
  static std::mutex m;
  static std::shared_ptr<core::ThreadPool> pool;
  std::lock_guard lk(m);
  if (!pool || pool->size() < threads) pool = std::make_shared<core::ThreadPool>(threads);
  return pool;
}

// One red-black half-sweep; returns the max absolute node update. Same-color
// nodes never neighbor each other, so z-planes can relax concurrently: every
// read a colored node makes lands on the opposite color, which this half
// sweep does not write. `plane_update` is caller-owned scratch (>= nz slots)
// so the convergence loop does not allocate per sweep.
double half_sweep(Grid3& phi, const DirichletBc& bc, double omega, int color,
                  core::ThreadPool* pool, std::size_t max_parts,
                  std::vector<double>& plane_update) {
  const std::size_t nx = phi.nx(), ny = phi.ny(), nz = phi.nz();
  double* d = phi.data().data();
  const std::uint8_t* fixed = bc.fixed.data();
  if (pool == nullptr || nz < 2) {
    double max_update = 0.0;
    for (std::size_t k = 0; k < nz; ++k)
      max_update = std::max(max_update, sweep_plane(d, fixed, nx, ny, nz, omega, color, k));
    return max_update;
  }
  pool->parallel_for(
      0, nz,
      [&](std::size_t kb, std::size_t ke) {
        for (std::size_t k = kb; k < ke; ++k)
          plane_update[k] = sweep_plane(d, fixed, nx, ny, nz, omega, color, k);
      },
      max_parts);
  return *std::max_element(plane_update.begin(), plane_update.begin() +
                                                     static_cast<std::ptrdiff_t>(nz));
}

void apply_dirichlet(Grid3& phi, const DirichletBc& bc) {
  for (std::size_t n = 0; n < phi.size(); ++n)
    if (bc.fixed[n]) phi.data()[n] = bc.value[n];
}

SolveStats sor_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts) {
  const std::size_t longest = std::max({phi.nx(), phi.ny(), phi.nz()});
  const double omega = opts.omega > 0.0 ? opts.omega : optimal_omega(longest);
  apply_dirichlet(phi, bc);
  // Resolve the worker pool and the per-plane reduction scratch once per
  // solve; the sweep loop itself must stay allocation-free.
  core::ThreadPool* pool = nullptr;
  std::shared_ptr<core::ThreadPool> owned;
  if (opts.threads == 0) {
    pool = &core::ThreadPool::global();
  } else if (opts.threads > 1) {
    owned = solver_pool(opts.threads);
    pool = owned.get();
  }
  std::vector<double> plane_update(pool != nullptr ? phi.nz() : 0, 0.0);
  SolveStats stats;
  for (std::size_t s = 0; s < opts.max_sweeps; ++s) {
    const double u0 = half_sweep(phi, bc, omega, 0, pool, opts.threads, plane_update);
    const double u1 = half_sweep(phi, bc, omega, 1, pool, opts.threads, plane_update);
    ++stats.sweeps;
    stats.final_update = std::max(u0, u1);
    if (stats.final_update < opts.tolerance) {
      stats.converged = true;
      break;
    }
  }
  stats.total_sweeps = stats.sweeps;
  return stats;
}

bool can_coarsen(const Grid3& g) {
  auto ok = [](std::size_t n) { return n >= 5 && (n - 1) % 2 == 0; };
  return ok(g.nx()) && ok(g.ny()) && ok(g.nz());
}

// Restrict BC by injection at coincident nodes.
void restrict_bc(const Grid3& fine, const DirichletBc& fine_bc, const Grid3& coarse,
                 DirichletBc& coarse_bc) {
  for (std::size_t k = 0; k < coarse.nz(); ++k)
    for (std::size_t j = 0; j < coarse.ny(); ++j)
      for (std::size_t i = 0; i < coarse.nx(); ++i) {
        const std::size_t fn = fine.index_unchecked(2 * i, 2 * j, 2 * k);
        const std::size_t cn = coarse.index_unchecked(i, j, k);
        coarse_bc.fixed[cn] = fine_bc.fixed[fn];
        coarse_bc.value[cn] = fine_bc.value[fn];
      }
}

SolveStats multilevel_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                            std::size_t& total_sweeps) {
  if (can_coarsen(phi)) {
    Grid3 coarse((phi.nx() - 1) / 2 + 1, (phi.ny() - 1) / 2 + 1, (phi.nz() - 1) / 2 + 1,
                 phi.spacing() * 2.0);
    DirichletBc coarse_bc = DirichletBc::all_free(coarse);
    restrict_bc(phi, bc, coarse, coarse_bc);
    // Inject current fine values as the coarse initial guess.
    for (std::size_t k = 0; k < coarse.nz(); ++k)
      for (std::size_t j = 0; j < coarse.ny(); ++j)
        for (std::size_t i = 0; i < coarse.nx(); ++i)
          coarse.at_unchecked(i, j, k) = phi.at_unchecked(2 * i, 2 * j, 2 * k);
    multilevel_solve(coarse, coarse_bc, opts, total_sweeps);
    // Prolong: trilinear interpolation of the coarse solution as the fine guess.
    const double h = phi.spacing();
    for (std::size_t k = 0; k < phi.nz(); ++k)
      for (std::size_t j = 0; j < phi.ny(); ++j)
        for (std::size_t i = 0; i < phi.nx(); ++i) {
          const std::size_t n = phi.index_unchecked(i, j, k);
          if (bc.fixed[n]) continue;
          phi.data()[n] = coarse.sample({static_cast<double>(i) * h,
                                         static_cast<double>(j) * h,
                                         static_cast<double>(k) * h});
        }
  }
  SolveStats stats = sor_solve(phi, bc, opts);
  total_sweeps += stats.sweeps;
  return stats;
}

}  // namespace

DirichletBc DirichletBc::all_free(const Grid3& grid) {
  DirichletBc bc;
  bc.fixed.assign(grid.size(), 0);
  bc.value.assign(grid.size(), 0.0);
  return bc;
}

double optimal_omega(std::size_t n) {
  if (n < 3) return 1.0;
  return 2.0 / (1.0 + std::sin(constants::pi / static_cast<double>(n)));
}

SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  if (opts.multilevel && can_coarsen(phi)) {
    std::size_t total = 0;
    SolveStats stats = multilevel_solve(phi, bc, opts, total);
    stats.total_sweeps = total;
    return stats;
  }
  return sor_solve(phi, bc, opts);
}

double laplacian_residual(const Grid3& phi, const DirichletBc& bc) {
  const std::size_t nx = phi.nx(), ny = phi.ny(), nz = phi.nz();
  double worst = 0.0;
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t n = phi.index_unchecked(i, j, k);
        if (bc.fixed[n]) continue;
        const double nb =
            phi.at_unchecked(mirror(static_cast<std::ptrdiff_t>(i) - 1, nx), j, k) +
            phi.at_unchecked(mirror(static_cast<std::ptrdiff_t>(i) + 1, nx), j, k) +
            phi.at_unchecked(i, mirror(static_cast<std::ptrdiff_t>(j) - 1, ny), k) +
            phi.at_unchecked(i, mirror(static_cast<std::ptrdiff_t>(j) + 1, ny), k) +
            phi.at_unchecked(i, j, mirror(static_cast<std::ptrdiff_t>(k) - 1, nz)) +
            phi.at_unchecked(i, j, mirror(static_cast<std::ptrdiff_t>(k) + 1, nz));
        worst = std::max(worst, std::fabs(nb / 6.0 - phi.data()[n]));
      }
  return worst;
}

}  // namespace biochip::field
