#include "field/solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/threadpool.hpp"
#include "field/stencil_kernel.hpp"

namespace biochip::field {

namespace {

// Grow-only pool for explicit `threads = N` requests; `threads = 0` uses the
// process-global hardware-sized pool instead. Returned as shared_ptr so a
// solve keeps its pool alive even if a concurrent solve grows the cache and
// swaps the shared instance out from under it.
std::shared_ptr<core::ThreadPool> solver_pool(std::size_t threads) {
  static std::mutex m;
  static std::shared_ptr<core::ThreadPool> pool;
  std::lock_guard lk(m);
  if (!pool || pool->size() < threads) pool = std::make_shared<core::ThreadPool>(threads);
  return pool;
}

core::ThreadPool* resolve_pool(const SolverOptions& opts,
                               std::shared_ptr<core::ThreadPool>& owned) {
  if (opts.threads == 0) return &core::ThreadPool::global();
  if (opts.threads > 1) {
    owned = solver_pool(opts.threads);
    return owned.get();
  }
  return nullptr;
}

// Fans plane indices [0, nz) over the pool (serial when pool is null) and
// max-reduces the per-plane results through caller-owned scratch, so the
// iteration loops stay allocation-free.
struct PlaneRunner {
  core::ThreadPool* pool = nullptr;
  std::size_t max_parts = 0;
  std::vector<double>* scratch = nullptr;

  template <typename Fn>
  double run_max(std::size_t nz, const Fn& fn) const {
    if (pool == nullptr || nz < 2) {
      double worst = 0.0;
      for (std::size_t k = 0; k < nz; ++k) worst = std::max(worst, fn(k));
      return worst;
    }
    std::vector<double>& out = *scratch;
    pool->parallel_for(
        0, nz,
        [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) out[k] = fn(k);
        },
        max_parts);
    return *std::max_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(nz));
  }

  template <typename Fn>
  void run(std::size_t nz, const Fn& fn) const {
    if (pool == nullptr || nz < 2) {
      for (std::size_t k = 0; k < nz; ++k) fn(k);
      return;
    }
    pool->parallel_for(
        0, nz,
        [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) fn(k);
        },
        max_parts);
  }
};

void apply_dirichlet(Grid3& phi, const DirichletBc& bc) {
  for (std::size_t n = 0; n < phi.size(); ++n)
    if (bc.fixed[n]) phi.data()[n] = bc.value[n];
}

// Serial red-black sweep with the two colors fused into one plane-pipelined
// pass: color 1 of plane k-1 relaxes immediately after color 0 of plane k,
// while the three-plane window is still cache-resident. Every read each
// relax makes sees exactly the value it would in the two-pass ordering
// (color 0 of plane k runs before color 1 of planes >= k-1; color 1 of
// plane k runs after color 0 of planes <= k+1), so the result is bitwise
// identical to the half-sweep pair — at half the DRAM traffic, which is
// what bounds large grids.
double fused_sweep(double* d, const std::uint8_t* fixed, const std::uint8_t* plane_fixed,
                   const double* rhs, double h2, stencil::Dims dims, double omega) {
  const auto has = [&](std::size_t k) { return plane_fixed == nullptr || plane_fixed[k] != 0; };
  double worst = stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, 0, has(0));
  for (std::size_t k = 1; k < dims.nz; ++k) {
    worst = std::max(worst,
                     stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, k, has(k)));
    worst = std::max(worst, stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1,
                                                  k - 1, has(k - 1)));
  }
  return std::max(worst, stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1,
                                               dims.nz - 1, has(dims.nz - 1)));
}

// Two full sweeps pipelined through one memory pass (temporal blocking).
// Four stages trail each other down the plane axis — A1 = sweep s color 0,
// B1 = sweep s color 1, A2 = sweep s+1 color 0, B2 = sweep s+1 color 1 —
// in the order A1(k), B1(k-1), A2(k-2), B2(k-3). Each stage finds every
// neighbor value in exactly the state the sequential four-half-sweep order
// would produce (the trailing stage at plane p runs only after the leading
// stage has cleared p+1), so the result is bitwise identical while the
// grid streams through the cache once instead of twice.
// Only the second sweep's update norm is tracked — the first one's is never
// consulted by any caller, and skipping the reduction trims the hot loop.
double fused_sweep_pair(double* d, const std::uint8_t* fixed,
                        const std::uint8_t* plane_fixed, const double* rhs, double h2,
                        stencil::Dims dims, double omega) {
  const auto nz = static_cast<std::ptrdiff_t>(dims.nz);
  double u2 = 0.0;
  const auto stage = [&](int color, std::ptrdiff_t k, bool track) {
    if (k < 0 || k >= nz) return;
    const auto ku = static_cast<std::size_t>(k);
    const bool has = plane_fixed == nullptr || plane_fixed[ku] != 0;
    const double u =
        stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, color, ku, has, track);
    if (track) u2 = std::max(u2, u);
  };
  for (std::ptrdiff_t kk = 0; kk < nz + 3; ++kk) {
    stage(0, kk, false);
    stage(1, kk - 1, false);
    stage(0, kk - 2, true);
    stage(1, kk - 3, true);
  }
  return u2;
}

// Per-plane Dirichlet classification: flags[k] != 0 when plane k holds any
// fixed node. Costs one pass over the mask; saves the mask loads and
// branches on every subsequent sweep of the (usually all-free) interior.
std::vector<std::uint8_t> classify_planes(const std::uint8_t* fixed, stencil::Dims dims) {
  std::vector<std::uint8_t> flags(dims.nz, 0);
  const std::size_t stride = dims.nx * dims.ny;
  for (std::size_t k = 0; k < dims.nz; ++k) {
    const std::uint8_t* p = fixed + k * stride;
    for (std::size_t n = 0; n < stride; ++n)
      if (p[n] != 0) {
        flags[k] = 1;
        break;
      }
  }
  return flags;
}

// Residual norm in laplacian_residual units, honouring a Poisson RHS.
double residual_norm(const Grid3& phi, const DirichletBc& bc, const double* rhs) {
  const stencil::Dims dims{phi.nx(), phi.ny(), phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  double worst = 0.0;
  for (std::size_t k = 0; k < dims.nz; ++k)
    worst = std::max(worst, stencil::residual_plane(phi.data().data(), bc.fixed.data(),
                                                    rhs, nullptr, h2, dims, k));
  return worst;
}

// Red-black SOR on ∇²φ = rhs (rhs null = Laplace). `ratio` is this grid's
// node count relative to the finest grid of the enclosing solve, for the
// fine-equivalent work accounting.
SolveStats sor_solve(Grid3& phi, const DirichletBc& bc, const double* rhs,
                     const SolverOptions& opts, double ratio) {
  const std::size_t longest = std::max({phi.nx(), phi.ny(), phi.nz()});
  const double omega = opts.omega > 0.0 ? opts.omega : optimal_omega(longest);
  apply_dirichlet(phi, bc);
  std::shared_ptr<core::ThreadPool> owned;
  core::ThreadPool* pool = resolve_pool(opts, owned);
  std::vector<double> plane_scratch(pool != nullptr ? phi.nz() : 0, 0.0);
  const PlaneRunner planes{pool, opts.threads, &plane_scratch};
  const stencil::Dims dims{phi.nx(), phi.ny(), phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  double* d = phi.data().data();
  const std::uint8_t* fixed = bc.fixed.data();

  // Convergence is tested every second sweep on both the serial and the
  // threaded path: identical stopping schedules keep sweep counts and
  // results bitwise equal across thread counts, and the pairing lets the
  // serial path pipeline two sweeps through one memory pass.
  const std::vector<std::uint8_t> plane_fixed = classify_planes(fixed, dims);
  const std::uint8_t* pf = plane_fixed.data();
  const auto parallel_sweep = [&](bool track) {
    const double u0 = planes.run_max(dims.nz, [&](std::size_t k) {
      return stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, k, pf[k] != 0,
                                   track);
    });
    const double u1 = planes.run_max(dims.nz, [&](std::size_t k) {
      return stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1, k, pf[k] != 0,
                                   track);
    });
    return std::max(u0, u1);
  };
  SolveStats stats;
  std::size_t s = 0;
  while (s < opts.max_sweeps) {
    if (s + 2 <= opts.max_sweeps) {
      double u2;
      if (pool == nullptr) {
        u2 = fused_sweep_pair(d, fixed, pf, rhs, h2, dims, omega);
      } else {
        parallel_sweep(false);
        u2 = parallel_sweep(true);
      }
      s += 2;
      stats.sweeps = s;
      stats.final_update = u2;
    } else {
      stats.final_update = pool == nullptr
                               ? fused_sweep(d, fixed, pf, rhs, h2, dims, omega)
                               : parallel_sweep(true);
      ++s;
      stats.sweeps = s;
    }
    if (stats.final_update < opts.tolerance) {
      stats.converged = true;
      break;
    }
  }
  stats.total_sweeps = stats.sweeps;
  stats.fine_equiv_sweeps = static_cast<double>(stats.sweeps) * ratio;
  return stats;
}

bool can_coarsen_dims(std::size_t nx, std::size_t ny, std::size_t nz) {
  auto ok = [](std::size_t n) { return n >= 5 && (n - 1) % 2 == 0; };
  return ok(nx) && ok(ny) && ok(nz);
}

bool can_coarsen(const Grid3& g) { return can_coarsen_dims(g.nx(), g.ny(), g.nz()); }

// Restrict BC by injection at coincident nodes.
void restrict_bc(const Grid3& fine, const DirichletBc& fine_bc, const Grid3& coarse,
                 DirichletBc& coarse_bc) {
  for (std::size_t k = 0; k < coarse.nz(); ++k)
    for (std::size_t j = 0; j < coarse.ny(); ++j)
      for (std::size_t i = 0; i < coarse.nx(); ++i) {
        const std::size_t fn = fine.index_unchecked(2 * i, 2 * j, 2 * k);
        const std::size_t cn = coarse.index_unchecked(i, j, k);
        coarse_bc.fixed[cn] = fine_bc.fixed[fn];
        coarse_bc.value[cn] = fine_bc.value[fn];
      }
}

// ------------------------------------------------------- cascade (oracle) ----

// Coarse-to-fine nested iteration: improves the initial guess only, never
// corrects fine-grid error on a coarse grid. Kept as the equivalence and
// regression oracle for the V-cycle.
SolveStats multilevel_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                            std::size_t& total_sweeps, double& fine_equiv, double ratio) {
  if (can_coarsen(phi)) {
    Grid3 coarse((phi.nx() - 1) / 2 + 1, (phi.ny() - 1) / 2 + 1, (phi.nz() - 1) / 2 + 1,
                 phi.spacing() * 2.0);
    DirichletBc coarse_bc = DirichletBc::all_free(coarse);
    restrict_bc(phi, bc, coarse, coarse_bc);
    // Inject current fine values as the coarse initial guess.
    for (std::size_t k = 0; k < coarse.nz(); ++k)
      for (std::size_t j = 0; j < coarse.ny(); ++j)
        for (std::size_t i = 0; i < coarse.nx(); ++i)
          coarse.at_unchecked(i, j, k) = phi.at_unchecked(2 * i, 2 * j, 2 * k);
    multilevel_solve(coarse, coarse_bc, opts, total_sweeps, fine_equiv, ratio / 8.0);
    // Prolong: trilinear interpolation of the coarse solution as the fine guess.
    const double h = phi.spacing();
    for (std::size_t k = 0; k < phi.nz(); ++k)
      for (std::size_t j = 0; j < phi.ny(); ++j)
        for (std::size_t i = 0; i < phi.nx(); ++i) {
          const std::size_t n = phi.index_unchecked(i, j, k);
          if (bc.fixed[n]) continue;
          phi.data()[n] = coarse.sample({static_cast<double>(i) * h,
                                         static_cast<double>(j) * h,
                                         static_cast<double>(k) * h});
        }
  }
  SolveStats stats = sor_solve(phi, bc, nullptr, opts, ratio);
  total_sweeps += stats.sweeps;
  fine_equiv += stats.fine_equiv_sweeps;
  return stats;
}

// ----------------------------------------------------------------- V-cycle ----

// One level of the V-cycle as raw views over either the caller's fine grid
// or a workspace level.
struct LevelView {
  double* phi = nullptr;
  const std::uint8_t* fixed = nullptr;
  const double* rhs = nullptr;   // null on the fine Laplace level
  double* rhs_store = nullptr;   // restriction target (workspace levels only)
  double* res = nullptr;         // residual scratch (unused at the coarsest level)
  const std::uint8_t* plane_fixed = nullptr;  // per-plane any-Dirichlet flags
  double* corr = nullptr;        // correction direction P·e
  double* acorr = nullptr;       // -A·corr scratch
  stencil::Dims dims;
  double h2 = 0.0;
  double ratio = 1.0;  // node-count ratio vs the finest level
};

class VcycleDriver {
 public:
  VcycleDriver(std::vector<LevelView> views, PlaneRunner planes, std::vector<double>& dots,
               const SolverOptions& opts, SolveStats& stats)
      : views_(std::move(views)), planes_(planes), dots_(&dots), opts_(opts),
        stats_(stats),
        // Smoothing wants mild over-relaxation, not the near-2 plain-SOR
        // optimum (which barely damps high frequencies): 1.15 measured best
        // on the cage-electrode workload across 33³..65³.
        omega_(opts.omega > 0.0 ? opts.omega : 1.15) {}

  // Runs one V-cycle from the finest level; returns the last fine max update.
  double cycle() { return descend(0); }

  // Switch every subsequent coarse-grid correction to minimal-residual
  // damping (see descend); called by the driver loop on residual growth.
  void enable_damping() { damp_ = true; }

  // Residual norm of the finest level (update units; no residual store).
  double fine_residual_norm() {
    const LevelView& v = views_.front();
    stats_.fine_equiv_sweeps += v.ratio;
    return planes_.run_max(v.dims.nz, [&](std::size_t k) {
      return stencil::residual_plane(v.phi, v.fixed, v.rhs, nullptr, v.h2, v.dims, k);
    });
  }

 private:
  double smooth(const LevelView& v, std::size_t sweeps, double omega, bool count_fine) {
    double update = 0.0;
    std::size_t s = 0;
    while (s < sweeps) {
      if (planes_.pool == nullptr && s + 2 <= sweeps) {
        update = fused_sweep_pair(v.phi, v.fixed, v.plane_fixed, v.rhs, v.h2, v.dims,
                                  omega);
        s += 2;
      } else if (planes_.pool == nullptr) {
        update = fused_sweep(v.phi, v.fixed, v.plane_fixed, v.rhs, v.h2, v.dims, omega);
        ++s;
      } else {
        for (int color = 0; color < 2; ++color) {
          const double u = planes_.run_max(v.dims.nz, [&](std::size_t k) {
            return stencil::smooth_plane(v.phi, v.fixed, v.rhs, v.h2, v.dims, omega,
                                         color, k, v.plane_fixed[k] != 0);
          });
          update = std::max(color == 0 ? 0.0 : update, u);
        }
        ++s;
      }
    }
    stats_.total_sweeps += sweeps;
    if (count_fine) stats_.sweeps += sweeps;
    stats_.fine_equiv_sweeps += static_cast<double>(sweeps) * v.ratio;
    return update;
  }

  // Solve the coarsest level nearly exactly: it is a few thousand nodes at
  // most, so the cost is negligible next to one fine sweep.
  void solve_coarsest(const LevelView& v) {
    const std::size_t longest = std::max({v.dims.nx, v.dims.ny, v.dims.nz});
    const double omega = optimal_omega(longest);
    double first = -1.0;
    for (std::size_t s = 0; s < 100; ++s) {
      const double u = smooth(v, 1, omega, false);
      if (first < 0.0) first = u;
      if (u == 0.0 || u < 1e-10 * first) break;
    }
  }

  double descend(std::size_t l) {
    const LevelView& v = views_[l];
    if (l + 1 == views_.size()) {
      solve_coarsest(v);
      return 0.0;
    }
    const LevelView& c = views_[l + 1];
    smooth(v, opts_.pre_smooth, omega_, l == 0);
    // Residual, restricted by full weighting, becomes the coarse RHS of the
    // error equation ∇²e = r with e = 0 at restricted Dirichlet nodes.
    planes_.run(v.dims.nz, [&](std::size_t k) {
      stencil::residual_plane(v.phi, v.fixed, v.rhs, v.res, v.h2, v.dims, k);
    });
    stats_.fine_equiv_sweeps += v.ratio;
    planes_.run(c.dims.nz, [&](std::size_t kc) {
      stencil::restrict_plane(v.res, v.dims, c.rhs_store, c.fixed, c.dims, kc);
    });
    std::fill_n(c.phi, c.dims.size(), 0.0);
    stats_.fine_equiv_sweeps += c.ratio;
    descend(l + 1);
    if (!damp_) {
      // Plain multigrid correction: phi += P·e.
      planes_.run(v.dims.nz, [&](std::size_t kf) {
        stencil::prolong_correct_plane(c.phi, c.dims, v.phi, v.fixed, v.dims, kf);
      });
      stats_.fine_equiv_sweeps += v.ratio;
      return smooth(v, opts_.post_smooth, omega_, l == 0);
    }
    // Minimal-residual damped correction, enabled by the driver after an
    // observed residual increase: the injected coarse masks cannot represent
    // sub-coarse-grid boundary features (thin electrode gaps), and the plain
    // correction can then overshoot enough to diverge. Scaling the
    // correction direction d = P·e by β = argmin‖r − β·A·d‖₂ makes the
    // correction step non-increasing in the L2 residual by construction.
    planes_.run(v.dims.nz, [&](std::size_t kf) {
      std::fill_n(v.corr + kf * v.dims.nx * v.dims.ny, v.dims.nx * v.dims.ny, 0.0);
      stencil::prolong_correct_plane(c.phi, c.dims, v.corr, v.fixed, v.dims, kf);
    });
    // acorr = -A·d via the residual kernel (zero RHS, zero at fixed nodes).
    planes_.run(v.dims.nz, [&](std::size_t k) {
      stencil::residual_plane(v.corr, v.fixed, nullptr, v.acorr, v.h2, v.dims, k);
    });
    // Deterministic dots: per-plane partials, fixed-order accumulation.
    const std::size_t plane_nodes = v.dims.nx * v.dims.ny;
    std::vector<double>& dots = *dots_;
    planes_.run(v.dims.nz, [&](std::size_t k) {
      const double* r = v.res + k * plane_nodes;
      const double* s = v.acorr + k * plane_nodes;
      double num = 0.0, den = 0.0;
      for (std::size_t n = 0; n < plane_nodes; ++n) {
        num += r[n] * s[n];
        den += s[n] * s[n];
      }
      dots[k] = num;
      dots[v.dims.nz + k] = den;
    });
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < v.dims.nz; ++k) {
      num += dots[k];
      den += dots[v.dims.nz + k];
    }
    // r' = r + β·s with s = -A·d, so the minimizer is β = -<r,s>/<s,s>.
    const double beta = den > 0.0 ? -num / den : 0.0;
    planes_.run(v.dims.nz, [&](std::size_t k) {
      double* p = v.phi + k * plane_nodes;
      const double* dcorr = v.corr + k * plane_nodes;
      for (std::size_t n = 0; n < plane_nodes; ++n) p[n] += beta * dcorr[n];
    });
    stats_.fine_equiv_sweeps += 3.0 * v.ratio;
    return smooth(v, opts_.post_smooth, omega_, l == 0);
  }

  std::vector<LevelView> views_;
  PlaneRunner planes_;
  std::vector<double>* dots_;
  const SolverOptions& opts_;
  SolveStats& stats_;
  double omega_;
  bool damp_ = false;
};

SolveStats vcycle_solve(Grid3& phi, const DirichletBc& bc, const double* fine_rhs,
                        const SolverOptions& opts, MultigridWorkspace* workspace) {
  MultigridWorkspace local;
  MultigridWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.prepare(phi, bc);
  if (ws.levels().empty())  // hierarchy degenerate (mask vanished on coarse grid)
    return sor_solve(phi, bc, fine_rhs, opts, 1.0);

  std::shared_ptr<core::ThreadPool> owned;
  core::ThreadPool* pool = resolve_pool(opts, owned);
  const PlaneRunner planes{pool, opts.threads, &ws.plane_scratch()};

  std::vector<LevelView> views;
  views.reserve(ws.levels().size() + 1);
  const double fine_nodes = static_cast<double>(phi.size());
  views.push_back({phi.data().data(), bc.fixed.data(), fine_rhs, nullptr,
                   ws.fine_residual().data(), ws.fine_plane_fixed().data(),
                   ws.fine_corr().data(), ws.fine_acorr().data(),
                   {phi.nx(), phi.ny(), phi.nz()},
                   phi.spacing() * phi.spacing(), 1.0});
  for (MultigridWorkspace::Level& lev : ws.levels())
    views.push_back({lev.e.data().data(), lev.fixed.data(), lev.rhs.data(),
                     lev.rhs.data(), lev.res.data(), lev.plane_fixed.data(),
                     lev.corr.data(), lev.acorr.data(),
                     {lev.e.nx(), lev.e.ny(), lev.e.nz()},
                     lev.e.spacing() * lev.e.spacing(),
                     static_cast<double>(lev.e.size()) / fine_nodes});

  SolveStats stats;
  VcycleDriver driver(std::move(views), planes, ws.dot_scratch(), opts, stats);
  const double target = opts.cycle_tolerance > 0.0 ? opts.cycle_tolerance : opts.tolerance;
  // A V-cycle earns its ~7-sweep-equivalent cost only while it contracts the
  // residual far faster than SOR does per sweep. Boundary features thinner
  // than the coarse spacing (electrode gaps at low nodes-per-pitch) cap the
  // per-cycle contraction near the smoothing-only rate; cycling past that
  // point is wasted work, so the driver bails out to the nested-iteration
  // cascade, which is the better algorithm in exactly that regime.
  constexpr double kBailContraction = 0.6;
  double prev_norm = 0.0;
  bool damping = false;
  int weak_cycles = 0;
  for (std::size_t c = 0; c < opts.max_cycles; ++c) {
    stats.final_update = driver.cycle();
    ++stats.cycles;
    stats.final_residual = driver.fine_residual_norm();
    if (stats.final_residual < target) {
      stats.converged = true;
      break;
    }
    if (c > 0) {
      if (stats.final_residual >= prev_norm && !damping) {
        // Plain correction overshot (coarse masks cannot represent the
        // geometry): damp subsequent corrections instead of giving up.
        driver.enable_damping();
        damping = true;
      } else if (stats.final_residual > kBailContraction * prev_norm) {
        // The ∞-norm wobbles cycle to cycle, so one weak contraction is not
        // evidence; two consecutive ones are.
        if (++weak_cycles >= 2) break;
      } else {
        weak_cycles = 0;
      }
    }
    prev_norm = stats.final_residual;
  }
  if (!stats.converged) {
    if (fine_rhs == nullptr) {
      std::size_t total = 0;
      double fine_equiv = 0.0;
      const SolveStats tail = multilevel_solve(phi, bc, opts, total, fine_equiv, 1.0);
      stats.sweeps += tail.sweeps;
      stats.total_sweeps += total;
      stats.fine_equiv_sweeps += fine_equiv;
      stats.final_update = tail.final_update;
      stats.converged = tail.converged;
    } else {
      // The cascade is Laplace-only; Poisson problems finish on plain SOR.
      const SolveStats tail = sor_solve(phi, bc, fine_rhs, opts, 1.0);
      stats.sweeps += tail.sweeps;
      stats.total_sweeps += tail.total_sweeps;
      stats.fine_equiv_sweeps += tail.fine_equiv_sweeps;
      stats.final_update = tail.final_update;
      stats.converged = tail.converged;
    }
    stats.final_residual = residual_norm(phi, bc, fine_rhs);
  }
  return stats;
}

}  // namespace

// --------------------------------------------------------------- workspace ----

void MultigridWorkspace::prepare(const Grid3& fine, const DirichletBc& bc) {
  const bool same_shape = fine.nx() == fnx_ && fine.ny() == fny_ && fine.nz() == fnz_ &&
                          fine.spacing() == fspacing_;
  if (same_shape && mask_copy_ == bc.fixed) return;  // fully reusable as-is
  if (!same_shape) {
    levels_.clear();
    fnx_ = fine.nx();
    fny_ = fine.ny();
    fnz_ = fine.nz();
    fspacing_ = fine.spacing();
    fine_residual_.assign(fine.size(), 0.0);
    fine_corr_.assign(fine.size(), 0.0);
    fine_acorr_.assign(fine.size(), 0.0);
    plane_scratch_.assign(fine.nz(), 0.0);
    dot_scratch_.assign(2 * fine.nz(), 0.0);
  }

  // Build (or re-mask) the level chain; a level whose restricted mask has no
  // fixed node would make the coarse error equation singular, so the chain
  // stops there.
  std::size_t nx = fine.nx(), ny = fine.ny(), nz = fine.nz();
  double spacing = fine.spacing();
  const std::uint8_t* parent_fixed = bc.fixed.data();
  std::size_t parent_nx = nx, parent_ny = ny;
  std::size_t depth = 0;
  while (can_coarsen_dims(nx, ny, nz)) {
    const std::size_t cnx = (nx - 1) / 2 + 1, cny = (ny - 1) / 2 + 1,
                      cnz = (nz - 1) / 2 + 1;
    spacing *= 2.0;
    if (levels_.size() <= depth) {
      Level lev;
      lev.e = Grid3(cnx, cny, cnz, spacing);
      lev.rhs.assign(lev.e.size(), 0.0);
      lev.res.assign(lev.e.size(), 0.0);
      lev.corr.assign(lev.e.size(), 0.0);
      lev.acorr.assign(lev.e.size(), 0.0);
      lev.fixed.assign(lev.e.size(), 0);
      lev.plane_fixed.assign(cnz, 0);
      levels_.push_back(std::move(lev));
    }
    Level& lev = levels_[depth];
    // Mask restriction by injection: a coarse node is pinned (e = 0) exactly
    // when its coincident fine node is pinned. Geometry thinner than the
    // coarse spacing then mismatches the fine problem, which the damped
    // coarse-grid correction and the contraction bail-out absorb.
    std::size_t fixed_count = 0;
    for (std::size_t k = 0; k < cnz; ++k)
      for (std::size_t j = 0; j < cny; ++j)
        for (std::size_t i = 0; i < cnx; ++i) {
          const std::uint8_t fx =
              parent_fixed[(2 * k * parent_ny + 2 * j) * parent_nx + 2 * i];
          lev.fixed[(k * cny + j) * cnx + i] = fx;
          fixed_count += fx != 0 ? 1u : 0u;
        }
    lev.plane_fixed =
        classify_planes(lev.fixed.data(), {lev.e.nx(), lev.e.ny(), lev.e.nz()});
    // A level with no pinned node would be singular; one with every node
    // pinned contributes no correction. Stop the chain at either.
    if (fixed_count == 0 || fixed_count == lev.e.size()) break;
    parent_fixed = lev.fixed.data();
    parent_nx = cnx;
    parent_ny = cny;
    nx = cnx;
    ny = cny;
    nz = cnz;
    ++depth;
  }
  levels_.resize(depth);
  fine_plane_fixed_ = classify_planes(bc.fixed.data(), {fine.nx(), fine.ny(), fine.nz()});
  mask_copy_ = bc.fixed;
}

// -------------------------------------------------------------- public API ----

DirichletBc DirichletBc::all_free(const Grid3& grid) {
  DirichletBc bc;
  bc.fixed.assign(grid.size(), 0);
  bc.value.assign(grid.size(), 0.0);
  return bc;
}

double optimal_omega(std::size_t n) {
  if (n < 3) return 1.0;
  return 2.0 / (1.0 + std::sin(constants::pi / static_cast<double>(n)));
}

SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                         MultigridWorkspace* workspace) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  if (opts.multilevel && can_coarsen(phi)) {
    if (opts.cycle == CycleType::vcycle)
      return vcycle_solve(phi, bc, nullptr, opts, workspace);
    std::size_t total = 0;
    double fine_equiv = 0.0;
    SolveStats stats = multilevel_solve(phi, bc, opts, total, fine_equiv, 1.0);
    stats.total_sweeps = total;
    stats.fine_equiv_sweeps = fine_equiv;
    return stats;
  }
  return sor_solve(phi, bc, nullptr, opts, 1.0);
}

SolveStats solve_poisson(Grid3& phi, const Grid3& f, const DirichletBc& bc,
                         const SolverOptions& opts, MultigridWorkspace* workspace) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(f.same_shape(phi), "Poisson RHS shape does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  // The cascade is a Laplace-only oracle; any multilevel Poisson solve goes
  // through the V-cycle (the error equation needs a true residual cycle).
  if (opts.multilevel && can_coarsen(phi))
    return vcycle_solve(phi, bc, f.data().data(), opts, workspace);
  return sor_solve(phi, bc, f.data().data(), opts, 1.0);
}

double laplacian_residual(const Grid3& phi, const DirichletBc& bc) {
  return residual_norm(phi, bc, nullptr);
}

}  // namespace biochip::field
