#include "field/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::field {

namespace {

// Mirror (homogeneous Neumann) index for out-of-range neighbors.
inline std::size_t mirror(std::ptrdiff_t idx, std::size_t n) {
  if (idx < 0) return 1;
  if (idx >= static_cast<std::ptrdiff_t>(n)) return n - 2;
  return static_cast<std::size_t>(idx);
}

// One red-black half-sweep; returns the max absolute node update.
double half_sweep(Grid3& phi, const DirichletBc& bc, double omega, int parity) {
  const std::size_t nx = phi.nx(), ny = phi.ny(), nz = phi.nz();
  double max_update = 0.0;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      // Start i at the right parity for this (j,k) plane.
      std::size_t i = ((j + k) % 2 == static_cast<std::size_t>(parity)) ? 0 : 1;
      for (; i < nx; i += 2) {
        const std::size_t n = phi.index(i, j, k);
        if (bc.fixed[n]) continue;
        const double nb =
            phi.at(mirror(static_cast<std::ptrdiff_t>(i) - 1, nx), j, k) +
            phi.at(mirror(static_cast<std::ptrdiff_t>(i) + 1, nx), j, k) +
            phi.at(i, mirror(static_cast<std::ptrdiff_t>(j) - 1, ny), k) +
            phi.at(i, mirror(static_cast<std::ptrdiff_t>(j) + 1, ny), k) +
            phi.at(i, j, mirror(static_cast<std::ptrdiff_t>(k) - 1, nz)) +
            phi.at(i, j, mirror(static_cast<std::ptrdiff_t>(k) + 1, nz));
        const double gauss_seidel = nb / 6.0;
        const double old = phi.at(i, j, k);
        const double next = old + omega * (gauss_seidel - old);
        phi.at(i, j, k) = next;
        max_update = std::max(max_update, std::fabs(next - old));
      }
    }
  }
  return max_update;
}

void apply_dirichlet(Grid3& phi, const DirichletBc& bc) {
  for (std::size_t n = 0; n < phi.size(); ++n)
    if (bc.fixed[n]) phi.data()[n] = bc.value[n];
}

SolveStats sor_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts) {
  const std::size_t longest = std::max({phi.nx(), phi.ny(), phi.nz()});
  const double omega = opts.omega > 0.0 ? opts.omega : optimal_omega(longest);
  apply_dirichlet(phi, bc);
  SolveStats stats;
  for (std::size_t s = 0; s < opts.max_sweeps; ++s) {
    const double u0 = half_sweep(phi, bc, omega, 0);
    const double u1 = half_sweep(phi, bc, omega, 1);
    ++stats.sweeps;
    stats.final_update = std::max(u0, u1);
    if (stats.final_update < opts.tolerance) {
      stats.converged = true;
      break;
    }
  }
  stats.total_sweeps = stats.sweeps;
  return stats;
}

bool can_coarsen(const Grid3& g) {
  auto ok = [](std::size_t n) { return n >= 5 && (n - 1) % 2 == 0; };
  return ok(g.nx()) && ok(g.ny()) && ok(g.nz());
}

// Restrict BC by injection at coincident nodes.
void restrict_bc(const Grid3& fine, const DirichletBc& fine_bc, const Grid3& coarse,
                 DirichletBc& coarse_bc) {
  for (std::size_t k = 0; k < coarse.nz(); ++k)
    for (std::size_t j = 0; j < coarse.ny(); ++j)
      for (std::size_t i = 0; i < coarse.nx(); ++i) {
        const std::size_t fn = fine.index(2 * i, 2 * j, 2 * k);
        const std::size_t cn = coarse.index(i, j, k);
        coarse_bc.fixed[cn] = fine_bc.fixed[fn];
        coarse_bc.value[cn] = fine_bc.value[fn];
      }
}

SolveStats multilevel_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                            std::size_t& total_sweeps) {
  if (can_coarsen(phi)) {
    Grid3 coarse((phi.nx() - 1) / 2 + 1, (phi.ny() - 1) / 2 + 1, (phi.nz() - 1) / 2 + 1,
                 phi.spacing() * 2.0);
    DirichletBc coarse_bc = DirichletBc::all_free(coarse);
    restrict_bc(phi, bc, coarse, coarse_bc);
    // Inject current fine values as the coarse initial guess.
    for (std::size_t k = 0; k < coarse.nz(); ++k)
      for (std::size_t j = 0; j < coarse.ny(); ++j)
        for (std::size_t i = 0; i < coarse.nx(); ++i)
          coarse.at(i, j, k) = phi.at(2 * i, 2 * j, 2 * k);
    multilevel_solve(coarse, coarse_bc, opts, total_sweeps);
    // Prolong: trilinear interpolation of the coarse solution as the fine guess.
    const double h = phi.spacing();
    for (std::size_t k = 0; k < phi.nz(); ++k)
      for (std::size_t j = 0; j < phi.ny(); ++j)
        for (std::size_t i = 0; i < phi.nx(); ++i) {
          const std::size_t n = phi.index(i, j, k);
          if (bc.fixed[n]) continue;
          phi.at(i, j, k) = coarse.sample({static_cast<double>(i) * h,
                                           static_cast<double>(j) * h,
                                           static_cast<double>(k) * h});
        }
  }
  SolveStats stats = sor_solve(phi, bc, opts);
  total_sweeps += stats.sweeps;
  return stats;
}

}  // namespace

DirichletBc DirichletBc::all_free(const Grid3& grid) {
  DirichletBc bc;
  bc.fixed.assign(grid.size(), 0);
  bc.value.assign(grid.size(), 0.0);
  return bc;
}

double optimal_omega(std::size_t n) {
  if (n < 3) return 1.0;
  return 2.0 / (1.0 + std::sin(constants::pi / static_cast<double>(n)));
}

SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  if (opts.multilevel && can_coarsen(phi)) {
    std::size_t total = 0;
    SolveStats stats = multilevel_solve(phi, bc, opts, total);
    stats.total_sweeps = total;
    return stats;
  }
  return sor_solve(phi, bc, opts);
}

double laplacian_residual(const Grid3& phi, const DirichletBc& bc) {
  const std::size_t nx = phi.nx(), ny = phi.ny(), nz = phi.nz();
  double worst = 0.0;
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t n = phi.index(i, j, k);
        if (bc.fixed[n]) continue;
        const double nb =
            phi.at(mirror(static_cast<std::ptrdiff_t>(i) - 1, nx), j, k) +
            phi.at(mirror(static_cast<std::ptrdiff_t>(i) + 1, nx), j, k) +
            phi.at(i, mirror(static_cast<std::ptrdiff_t>(j) - 1, ny), k) +
            phi.at(i, mirror(static_cast<std::ptrdiff_t>(j) + 1, ny), k) +
            phi.at(i, j, mirror(static_cast<std::ptrdiff_t>(k) - 1, nz)) +
            phi.at(i, j, mirror(static_cast<std::ptrdiff_t>(k) + 1, nz));
        worst = std::max(worst, std::fabs(nb / 6.0 - phi.at(i, j, k)));
      }
  return worst;
}

}  // namespace biochip::field
