#include "field/solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/threadpool.hpp"
#include "field/stencil_kernel.hpp"

namespace biochip::field {

namespace {

// Grow-only pool for explicit `threads = N` requests; `threads = 0` uses the
// process-global hardware-sized pool instead. Returned as shared_ptr so a
// solve keeps its pool alive even if a concurrent solve grows the cache and
// swaps the shared instance out from under it.
std::shared_ptr<core::ThreadPool> solver_pool(std::size_t threads) {
  static std::mutex m;
  static std::shared_ptr<core::ThreadPool> pool;
  std::lock_guard lk(m);
  if (!pool || pool->size() < threads) pool = std::make_shared<core::ThreadPool>(threads);
  return pool;
}

core::ThreadPool* resolve_pool(const SolverOptions& opts,
                               std::shared_ptr<core::ThreadPool>& owned) {
  if (opts.threads == 0) return &core::ThreadPool::global();
  if (opts.threads > 1) {
    owned = solver_pool(opts.threads);
    return owned.get();
  }
  return nullptr;
}

// Fans plane indices [0, nz) over the pool (serial when pool is null) and
// max-reduces the per-plane results through caller-owned scratch, so the
// iteration loops stay allocation-free.
struct PlaneRunner {
  core::ThreadPool* pool = nullptr;
  std::size_t max_parts = 0;
  std::vector<double>* scratch = nullptr;

  template <typename Fn>
  double run_max(std::size_t nz, const Fn& fn) const {
    if (pool == nullptr || nz < 2) {
      double worst = 0.0;
      for (std::size_t k = 0; k < nz; ++k) worst = std::max(worst, fn(k));
      return worst;
    }
    std::vector<double>& out = *scratch;
    pool->parallel_for(
        0, nz,
        [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) out[k] = fn(k);
        },
        max_parts);
    return *std::max_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(nz));
  }

  template <typename Fn>
  void run(std::size_t nz, const Fn& fn) const {
    if (pool == nullptr || nz < 2) {
      for (std::size_t k = 0; k < nz; ++k) fn(k);
      return;
    }
    pool->parallel_for(
        0, nz,
        [&](std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) fn(k);
        },
        max_parts);
  }
};

void apply_dirichlet(Grid3& phi, const DirichletBc& bc) {
  for (std::size_t n = 0; n < phi.size(); ++n)
    if (bc.fixed[n]) phi.data()[n] = bc.value[n];
}

// Serial red-black sweep with the two colors fused into one plane-pipelined
// pass: color 1 of plane k-1 relaxes immediately after color 0 of plane k,
// while the three-plane window is still cache-resident. Every read each
// relax makes sees exactly the value it would in the two-pass ordering
// (color 0 of plane k runs before color 1 of planes >= k-1; color 1 of
// plane k runs after color 0 of planes <= k+1), so the result is bitwise
// identical to the half-sweep pair — at half the DRAM traffic, which is
// what bounds large grids.
double fused_sweep(double* d, const std::uint8_t* fixed, const std::uint8_t* plane_fixed,
                   const double* rhs, double h2, stencil::Dims dims, double omega) {
  const auto has = [&](std::size_t k) { return plane_fixed == nullptr || plane_fixed[k] != 0; };
  double worst = stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, 0, has(0));
  for (std::size_t k = 1; k < dims.nz; ++k) {
    worst = std::max(worst,
                     stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, k, has(k)));
    worst = std::max(worst, stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1,
                                                  k - 1, has(k - 1)));
  }
  return std::max(worst, stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1,
                                               dims.nz - 1, has(dims.nz - 1)));
}

// Two full sweeps pipelined through one memory pass (temporal blocking).
// Four stages trail each other down the plane axis — A1 = sweep s color 0,
// B1 = sweep s color 1, A2 = sweep s+1 color 0, B2 = sweep s+1 color 1 —
// in the order A1(k), B1(k-1), A2(k-2), B2(k-3). Each stage finds every
// neighbor value in exactly the state the sequential four-half-sweep order
// would produce (the trailing stage at plane p runs only after the leading
// stage has cleared p+1), so the result is bitwise identical while the
// grid streams through the cache once instead of twice.
// Only the second sweep's update norm is tracked — the first one's is never
// consulted by any caller, and skipping the reduction trims the hot loop.
double fused_sweep_pair(double* d, const std::uint8_t* fixed,
                        const std::uint8_t* plane_fixed, const double* rhs, double h2,
                        stencil::Dims dims, double omega) {
  const auto nz = static_cast<std::ptrdiff_t>(dims.nz);
  double u2 = 0.0;
  const auto stage = [&](int color, std::ptrdiff_t k, bool track) {
    if (k < 0 || k >= nz) return;
    const auto ku = static_cast<std::size_t>(k);
    const bool has = plane_fixed == nullptr || plane_fixed[ku] != 0;
    const double u =
        stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, color, ku, has, track);
    if (track) u2 = std::max(u2, u);
  };
  for (std::ptrdiff_t kk = 0; kk < nz + 3; ++kk) {
    stage(0, kk, false);
    stage(1, kk - 1, false);
    stage(0, kk - 2, true);
    stage(1, kk - 3, true);
  }
  return u2;
}

// Per-plane Dirichlet classification: flags[k] != 0 when plane k holds any
// fixed node. Costs one pass over the mask; saves the mask loads and
// branches on every subsequent sweep of the (usually all-free) interior.
std::vector<std::uint8_t> classify_planes(const std::uint8_t* fixed, stencil::Dims dims) {
  std::vector<std::uint8_t> flags(dims.nz, 0);
  const std::size_t stride = dims.nx * dims.ny;
  for (std::size_t k = 0; k < dims.nz; ++k) {
    const std::uint8_t* p = fixed + k * stride;
    for (std::size_t n = 0; n < stride; ++n)
      if (p[n] != 0) {
        flags[k] = 1;
        break;
      }
  }
  return flags;
}

// Residual norm in laplacian_residual units, honouring a Poisson RHS.
double residual_norm(const Grid3& phi, const DirichletBc& bc, const double* rhs) {
  const stencil::Dims dims{phi.nx(), phi.ny(), phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  double worst = 0.0;
  for (std::size_t k = 0; k < dims.nz; ++k)
    worst = std::max(worst, stencil::residual_plane(phi.data().data(), bc.fixed.data(),
                                                    rhs, nullptr, h2, dims, k));
  return worst;
}

// Red-black SOR on ∇²φ = rhs (rhs null = Laplace). `ratio` is this grid's
// node count relative to the finest grid of the enclosing solve, for the
// fine-equivalent work accounting.
SolveStats sor_solve(Grid3& phi, const DirichletBc& bc, const double* rhs,
                     const SolverOptions& opts, double ratio) {
  // Auto-omega honours the actual per-axis dimensions: on anisotropic
  // chamber grids (129×129×9) the longest-side model formula over-relaxes
  // the short axis and slows convergence.
  const double omega =
      opts.omega > 0.0 ? opts.omega : optimal_omega(phi.nx(), phi.ny(), phi.nz());
  apply_dirichlet(phi, bc);
  std::shared_ptr<core::ThreadPool> owned;
  core::ThreadPool* pool = resolve_pool(opts, owned);
  std::vector<double> plane_scratch(pool != nullptr ? phi.nz() : 0, 0.0);
  const PlaneRunner planes{pool, opts.threads, &plane_scratch};
  const stencil::Dims dims{phi.nx(), phi.ny(), phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  double* d = phi.data().data();
  const std::uint8_t* fixed = bc.fixed.data();

  // Convergence is tested every second sweep on both the serial and the
  // threaded path: identical stopping schedules keep sweep counts and
  // results bitwise equal across thread counts, and the pairing lets the
  // serial path pipeline two sweeps through one memory pass.
  const std::vector<std::uint8_t> plane_fixed = classify_planes(fixed, dims);
  const std::uint8_t* pf = plane_fixed.data();
  const auto parallel_sweep = [&](bool track) {
    const double u0 = planes.run_max(dims.nz, [&](std::size_t k) {
      return stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 0, k, pf[k] != 0,
                                   track);
    });
    const double u1 = planes.run_max(dims.nz, [&](std::size_t k) {
      return stencil::smooth_plane(d, fixed, rhs, h2, dims, omega, 1, k, pf[k] != 0,
                                   track);
    });
    return std::max(u0, u1);
  };
  SolveStats stats;
  std::size_t s = 0;
  while (s < opts.max_sweeps) {
    if (s + 2 <= opts.max_sweeps) {
      double u2;
      if (pool == nullptr) {
        u2 = fused_sweep_pair(d, fixed, pf, rhs, h2, dims, omega);
      } else {
        parallel_sweep(false);
        u2 = parallel_sweep(true);
      }
      s += 2;
      stats.sweeps = s;
      stats.final_update = u2;
    } else {
      stats.final_update = pool == nullptr
                               ? fused_sweep(d, fixed, pf, rhs, h2, dims, omega)
                               : parallel_sweep(true);
      ++s;
      stats.sweeps = s;
    }
    if (stats.final_update < opts.tolerance) {
      stats.converged = true;
      break;
    }
  }
  stats.total_sweeps = stats.sweeps;
  stats.fine_equiv_sweeps = static_cast<double>(stats.sweeps) * ratio;
  return stats;
}

bool can_coarsen_dims(std::size_t nx, std::size_t ny, std::size_t nz) {
  auto ok = [](std::size_t n) { return n >= 5 && (n - 1) % 2 == 0; };
  return ok(nx) && ok(ny) && ok(nz);
}

bool can_coarsen(const Grid3& g) { return can_coarsen_dims(g.nx(), g.ny(), g.nz()); }

// Restrict BC by injection at coincident nodes.
void restrict_bc(const Grid3& fine, const DirichletBc& fine_bc, const Grid3& coarse,
                 DirichletBc& coarse_bc) {
  for (std::size_t k = 0; k < coarse.nz(); ++k)
    for (std::size_t j = 0; j < coarse.ny(); ++j)
      for (std::size_t i = 0; i < coarse.nx(); ++i) {
        const std::size_t fn = fine.index_unchecked(2 * i, 2 * j, 2 * k);
        const std::size_t cn = coarse.index_unchecked(i, j, k);
        coarse_bc.fixed[cn] = fine_bc.fixed[fn];
        coarse_bc.value[cn] = fine_bc.value[fn];
      }
}

// ------------------------------------------------------- cascade (oracle) ----

// Coarse-to-fine nested iteration: improves the initial guess only, never
// corrects fine-grid error on a coarse grid. Kept as the equivalence and
// regression oracle for the V-cycle.
SolveStats multilevel_solve(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                            std::size_t& total_sweeps, double& fine_equiv, double ratio) {
  if (can_coarsen(phi)) {
    Grid3 coarse((phi.nx() - 1) / 2 + 1, (phi.ny() - 1) / 2 + 1, (phi.nz() - 1) / 2 + 1,
                 phi.spacing() * 2.0);
    DirichletBc coarse_bc = DirichletBc::all_free(coarse);
    restrict_bc(phi, bc, coarse, coarse_bc);
    // Inject current fine values as the coarse initial guess.
    for (std::size_t k = 0; k < coarse.nz(); ++k)
      for (std::size_t j = 0; j < coarse.ny(); ++j)
        for (std::size_t i = 0; i < coarse.nx(); ++i)
          coarse.at_unchecked(i, j, k) = phi.at_unchecked(2 * i, 2 * j, 2 * k);
    multilevel_solve(coarse, coarse_bc, opts, total_sweeps, fine_equiv, ratio / 8.0);
    // Prolong: trilinear interpolation of the coarse solution as the fine guess.
    const double h = phi.spacing();
    for (std::size_t k = 0; k < phi.nz(); ++k)
      for (std::size_t j = 0; j < phi.ny(); ++j)
        for (std::size_t i = 0; i < phi.nx(); ++i) {
          const std::size_t n = phi.index_unchecked(i, j, k);
          if (bc.fixed[n]) continue;
          phi.data()[n] = coarse.sample({static_cast<double>(i) * h,
                                         static_cast<double>(j) * h,
                                         static_cast<double>(k) * h});
        }
  }
  SolveStats stats = sor_solve(phi, bc, nullptr, opts, ratio);
  total_sweeps += stats.sweeps;
  fine_equiv += stats.fine_equiv_sweeps;
  return stats;
}

// ----------------------------------------------------------------- V-cycle ----

// A 27-point variable-coefficient smoothing sweep touches ~27/7 of the
// memory/flops of a fine 7-point sweep per node; weight its work accordingly
// in the fine-equivalent accounting (see docs/perf.md).
constexpr double kVarSweepCost = 27.0 / 7.0;

// FMG prolongation: tricubic interpolation of the coarse-level solution
// REPLACING the free nodes of fine plane kf (nested iteration overwrites
// the finer level's initial guess, exactly like the cascade). The upward
// FMG transfer is higher order than the V-cycle's correction transfer
// (trilinear) so the interpolation error of the start does not dominate the
// first fine cycles; 4-tap cubic weights (-1, 9, 9, -1)/16 per odd axis,
// mirrored across faces to match the Neumann symmetry. Writes only plane kf,
// reads the coarse grid: safe to fan over planes.
void fmg_prolong_plane(const double* coarse, stencil::Dims c, double* fine,
                       const std::uint8_t* fine_fixed, stencil::Dims f, std::size_t kf) {
  const auto taps = [](std::size_t gf, std::size_t n, std::size_t idx[4],
                       double w[4]) -> int {
    if (gf % 2 == 0) {
      idx[0] = gf / 2;
      w[0] = 1.0;
      return 1;
    }
    const std::ptrdiff_t i0 = static_cast<std::ptrdiff_t>((gf - 1) / 2);
    idx[0] = stencil::mirror_index(i0 - 1, n);
    idx[1] = static_cast<std::size_t>(i0);
    idx[2] = static_cast<std::size_t>(i0) + 1;
    idx[3] = stencil::mirror_index(i0 + 2, n);
    w[0] = w[3] = -1.0 / 16.0;
    w[1] = w[2] = 9.0 / 16.0;
    return 4;
  };
  std::size_t ks[4], js[4], is[4];
  double wk[4], wj[4], wi[4];
  const int nk = taps(kf, c.nz, ks, wk);
  for (std::size_t jf = 0; jf < f.ny; ++jf) {
    const int nj = taps(jf, c.ny, js, wj);
    for (std::size_t i = 0; i < f.nx; ++i) {
      const std::size_t n = (kf * f.ny + jf) * f.nx + i;
      if (fine_fixed[n]) continue;
      const int ni = taps(i, c.nx, is, wi);
      double acc = 0.0;
      for (int a = 0; a < nk; ++a)
        for (int b = 0; b < nj; ++b) {
          const double* row = coarse + (ks[a] * c.ny + js[b]) * c.nx;
          double part = 0.0;
          for (int d = 0; d < ni; ++d) part += wi[d] * row[is[d]];
          acc += wk[a] * wj[b] * part;
        }
      fine[n] = acc;
    }
  }
}

// One level of the V-cycle as raw views over either the caller's fine grid
// or a workspace level.
struct LevelView {
  double* phi = nullptr;
  const std::uint8_t* fixed = nullptr;
  const double* rhs = nullptr;   // null on the fine Laplace level
  double* rhs_store = nullptr;   // restriction target (workspace levels only)
  double* res = nullptr;         // residual scratch (unused at the coarsest level)
  const std::uint8_t* plane_fixed = nullptr;  // per-plane any-Dirichlet flags
  const double* coef = nullptr;      // Galerkin 27-point stencil (coarse levels)
  const double* inv_diag = nullptr;  // 1/diagonal (coarse levels)
  stencil::Dims dims;
  double h2 = 0.0;
  double ratio = 1.0;  // node-count ratio vs the finest level
  // Broadcast fast path for uniform coarse rows (null = plain var smoothing).
  const std::uint8_t* row_uniform = nullptr;
  const double* ustencil = nullptr;
  double uinv = 0.0;
};

class VcycleDriver {
 public:
  VcycleDriver(std::vector<LevelView> views, PlaneRunner planes,
               const SolverOptions& opts, SolveStats& stats)
      : views_(std::move(views)), planes_(planes), opts_(opts), stats_(stats),
        // Smoothing wants mild over-relaxation, not the near-2 plain-SOR
        // optimum (which barely damps high frequencies): 1.15 measured best
        // on the cage-electrode workload across 33³..65³.
        omega_(opts.omega > 0.0 ? opts.omega : 1.15) {}

  // Runs one V-cycle from the finest level; returns the last fine max update.
  double cycle() { return cycle_at(views_[0], 0); }

  // Full-multigrid start: nested iteration in the injected-BC frame.
  // The fine problem (Dirichlet values and all) is injected down the level
  // chain, the coarsest level is solved nearly exactly, and on the way up
  // each level gets `opts.fmg_level_cycles` V-cycles — the level itself
  // smoothing with the injected-BC 7-point operator, its error corrections
  // running down the regular Galerkin sub-hierarchy — before its solution is
  // prolonged (tricubic) to the next finer level. Keeping the Dirichlet
  // VALUES on every level is what makes the start effective: an error-frame
  // (residual-restriction) start must reconstruct the boundary layers from
  // restricted single-node source layers, which full weighting smears — the
  // measured head start was ~1.6×, versus several cycles for this frame.
  // `cviews` are the per-level injected-BC views (index 0 = the fine view).
  void fmg_start(const std::vector<LevelView>& cviews) {
    const std::size_t last = views_.size() - 1;
    // Inject the problem down the chain: node (i,j,k) of level l coincides
    // with node (2i,2j,2k) of level l-1, so values (boundary and initial
    // guess alike) inject level by level.
    for (std::size_t l = 1; l <= last; ++l) {
      const LevelView& c = cviews[l];
      const LevelView& p = cviews[l - 1];
      planes_.run(c.dims.nz, [&](std::size_t k) {
        for (std::size_t j = 0; j < c.dims.ny; ++j)
          for (std::size_t i = 0; i < c.dims.nx; ++i)
            c.phi[(k * c.dims.ny + j) * c.dims.nx + i] =
                p.phi[(2 * k * p.dims.ny + 2 * j) * p.dims.nx + 2 * i];
      });
      if (c.rhs != nullptr) {
        // Poisson: restrict the load down the chain by full weighting.
        planes_.run(c.dims.nz, [&](std::size_t kc) {
          stencil::restrict_plane(l == 1 ? views_[0].rhs : cviews[l - 1].rhs_store,
                                  p.dims, c.rhs_store, c.fixed, c.dims, kc);
        });
      }
      stats_.fine_equiv_sweeps += c.ratio;
    }
    for (std::size_t l = last; l >= 1; --l) {
      const LevelView& v = cviews[l];
      if (l == last)
        solve_coarsest(v);
      else
        for (std::size_t n = 0; n < opts_.fmg_level_cycles; ++n) cycle_at(v, l);
      const LevelView& up = cviews[l - 1];
      planes_.run(up.dims.nz, [&](std::size_t kf) {
        fmg_prolong_plane(v.phi, v.dims, up.phi, up.fixed, up.dims, kf);
      });
      stats_.fine_equiv_sweeps += up.ratio;
    }
  }

  // Residual norm of the finest level (update units; no residual store).
  double fine_residual_norm() {
    const LevelView& v = views_.front();
    stats_.fine_equiv_sweeps += v.ratio;
    return planes_.run_max(v.dims.nz, [&](std::size_t k) {
      return stencil::residual_plane(v.phi, v.fixed, v.rhs, nullptr, v.h2, v.dims, k);
    });
  }

 private:
  // Constant-coefficient smoothing for the finest (7-point Laplacian) level.
  double smooth_const(const LevelView& v, std::size_t sweeps, double omega,
                      bool count_fine) {
    double update = 0.0;
    std::size_t s = 0;
    while (s < sweeps) {
      if (planes_.pool == nullptr && s + 2 <= sweeps) {
        update = fused_sweep_pair(v.phi, v.fixed, v.plane_fixed, v.rhs, v.h2, v.dims,
                                  omega);
        s += 2;
      } else if (planes_.pool == nullptr) {
        update = fused_sweep(v.phi, v.fixed, v.plane_fixed, v.rhs, v.h2, v.dims, omega);
        ++s;
      } else {
        for (int color = 0; color < 2; ++color) {
          const double u = planes_.run_max(v.dims.nz, [&](std::size_t k) {
            return stencil::smooth_plane(v.phi, v.fixed, v.rhs, v.h2, v.dims, omega,
                                         color, k, v.plane_fixed[k] != 0);
          });
          update = std::max(color == 0 ? 0.0 : update, u);
        }
        ++s;
      }
    }
    stats_.total_sweeps += sweeps;
    if (count_fine) stats_.sweeps += sweeps;
    stats_.fine_equiv_sweeps += static_cast<double>(sweeps) * v.ratio;
    return update;
  }

  // Variable-coefficient (Galerkin) smoothing for coarse levels. The
  // 27-point stencil couples same-color nodes of adjacent planes, so each
  // half-sweep is split into (plane parity) subsweeps — equal-parity planes
  // are uncoupled, keeping the plane fan-out bitwise identical to serial.
  double smooth_var(const LevelView& v, std::size_t sweeps, double omega) {
    double update = 0.0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      update = 0.0;
      for (int color = 0; color < 2; ++color)
        for (std::size_t parity = 0; parity < 2; ++parity) {
          const double u = planes_.run_max(v.dims.nz, [&](std::size_t k) {
            if (k % 2 != parity) return 0.0;
            // Uniform coarse rows take the broadcast-coefficient fast path
            // (bit-identical; see smooth_plane_var_bcast).
            if (v.row_uniform != nullptr)
              return stencil::smooth_plane_var_bcast(v.phi, v.fixed, v.coef,
                                                     v.row_uniform, v.ustencil, v.uinv,
                                                     v.inv_diag, v.rhs, v.dims, omega,
                                                     color, k);
            return stencil::smooth_plane_var(v.phi, v.fixed, v.coef, v.inv_diag, v.rhs,
                                             v.dims, omega, color, k);
          });
          update = std::max(update, u);
        }
    }
    stats_.total_sweeps += sweeps;
    stats_.fine_equiv_sweeps += static_cast<double>(sweeps) * v.ratio * kVarSweepCost;
    return update;
  }

  double smooth(const LevelView& v, std::size_t sweeps, double omega, bool count_fine) {
    if (v.coef != nullptr) return smooth_var(v, sweeps, omega);
    return smooth_const(v, sweeps, omega, count_fine);
  }

  // Solve the coarsest level nearly exactly: it is a few thousand nodes at
  // most, so the cost is negligible next to one fine sweep.
  void solve_coarsest(const LevelView& v) {
    const double omega = optimal_omega(v.dims.nx, v.dims.ny, v.dims.nz);
    double first = -1.0;
    for (std::size_t s = 0; s < 100; ++s) {
      const double u = smooth(v, 1, omega, false);
      if (first < 0.0) first = u;
      if (u == 0.0 || u < 1e-10 * first) break;
    }
  }

  // One V-cycle rooted at level l, smoothing the given view at the root
  // (the regular Galerkin view, or an injected-BC 7-point view during the
  // FMG upward pass); sub-level corrections always run the Galerkin chain.
  double cycle_at(const LevelView& v, std::size_t l) {
    if (l + 1 == views_.size()) {
      solve_coarsest(v);
      return 0.0;
    }
    const LevelView& c = views_[l + 1];
    smooth(v, opts_.pre_smooth, omega_, l == 0);
    // Residual, restricted by full weighting, becomes the coarse RHS of the
    // error equation A_{l+1} e = R r with e = 0 at restricted Dirichlet
    // nodes. A_{l+1} is the Galerkin product R·A_l·P, so features thinner
    // than the coarse spacing stay represented in its coefficients and the
    // correction needs no damping safeguards.
    if (v.coef != nullptr) {
      planes_.run(v.dims.nz, [&](std::size_t k) {
        stencil::residual_plane_var(v.phi, v.fixed, v.coef, v.rhs, v.res, v.dims, k);
      });
      stats_.fine_equiv_sweeps += v.ratio * kVarSweepCost;
    } else {
      planes_.run(v.dims.nz, [&](std::size_t k) {
        stencil::residual_plane(v.phi, v.fixed, v.rhs, v.res, v.h2, v.dims, k);
      });
      stats_.fine_equiv_sweeps += v.ratio;
    }
    planes_.run(c.dims.nz, [&](std::size_t kc) {
      stencil::restrict_plane(v.res, v.dims, c.rhs_store, c.fixed, c.dims, kc);
    });
    std::fill_n(c.phi, c.dims.size(), 0.0);
    stats_.fine_equiv_sweeps += c.ratio;
    cycle_at(c, l + 1);
    // Plain multigrid correction: phi += P·e.
    planes_.run(v.dims.nz, [&](std::size_t kf) {
      stencil::prolong_correct_plane(c.phi, c.dims, v.phi, v.fixed, v.dims, kf);
    });
    stats_.fine_equiv_sweeps += v.ratio;
    return smooth(v, opts_.post_smooth, omega_, l == 0);
  }

  std::vector<LevelView> views_;
  PlaneRunner planes_;
  const SolverOptions& opts_;
  SolveStats& stats_;
  double omega_;
};

SolveStats vcycle_solve(Grid3& phi, const DirichletBc& bc, const double* fine_rhs,
                        const SolverOptions& opts, MultigridWorkspace* workspace,
                        bool fmg) {
  MultigridWorkspace local;
  MultigridWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.prepare(phi, bc);
  if (ws.levels().empty())  // hierarchy degenerate (no Dirichlet node at all)
    return sor_solve(phi, bc, fine_rhs, opts, 1.0);

  std::shared_ptr<core::ThreadPool> owned;
  core::ThreadPool* pool = resolve_pool(opts, owned);
  const PlaneRunner planes{pool, opts.threads, &ws.plane_scratch()};

  std::vector<LevelView> views;
  views.reserve(ws.levels().size() + 1);
  const double fine_nodes = static_cast<double>(phi.size());
  views.push_back({phi.data().data(), bc.fixed.data(), fine_rhs, nullptr,
                   ws.fine_residual().data(), ws.fine_plane_fixed().data(), nullptr,
                   nullptr,
                   {phi.nx(), phi.ny(), phi.nz()},
                   phi.spacing() * phi.spacing(), 1.0});
  for (MultigridWorkspace::Level& lev : ws.levels()) {
    LevelView lv{lev.e.data().data(), lev.fixed.data(), lev.rhs.data(),
                 lev.rhs.data(), lev.res.data(), lev.plane_fixed.data(),
                 lev.stencil.data(), lev.inv_diag.data(),
                 {lev.e.nx(), lev.e.ny(), lev.e.nz()},
                 lev.e.spacing() * lev.e.spacing(),
                 static_cast<double>(lev.e.size()) / fine_nodes};
    if (lev.uniform_inv_diag != 0.0 && !lev.row_uniform.empty()) {
      lv.row_uniform = lev.row_uniform.data();
      lv.ustencil = lev.uniform_stencil.data();
      lv.uinv = lev.uniform_inv_diag;
    }
    views.push_back(lv);
  }

  // Injected-BC views for the FMG upward pass: same storage, but each level
  // smooths its own 7-point re-discretization (coef = null) — the Galerkin
  // stencils eliminate the Dirichlet columns, so they cannot see the
  // injected boundary VALUES the nested-iteration start relies on. For the
  // Laplace case the level rhs is null (the same array later serves as the
  // restriction target of the cycle phase).
  std::vector<LevelView> cviews;
  if (fmg) {
    cviews = views;
    for (std::size_t l = 1; l < cviews.size(); ++l) {
      cviews[l].coef = nullptr;
      cviews[l].inv_diag = nullptr;
      if (fine_rhs == nullptr) cviews[l].rhs = nullptr;
    }
  }

  SolveStats stats;
  VcycleDriver driver(std::move(views), planes, opts, stats);
  const double target = opts.cycle_tolerance > 0.0 ? opts.cycle_tolerance : opts.tolerance;
  if (fmg) {
    // Nested-iteration start; the fine grid may already be inside tolerance
    // before the first full cycle.
    driver.fmg_start(cviews);
    stats.final_residual = driver.fine_residual_norm();
    stats.converged = stats.final_residual < target;
  }
  // With Galerkin (RAP) coarse operators the coarse-grid correction is
  // variationally consistent with the fine operator on every geometry —
  // including boundary features thinner than the coarse spacing — so the
  // cycle contracts at a grid-independent rate and needs none of the
  // damped-correction/bail-out machinery the injected-mask operators
  // required (see docs/perf.md history).
  for (std::size_t c = 0; c < opts.max_cycles && !stats.converged; ++c) {
    stats.final_update = driver.cycle();
    ++stats.cycles;
    stats.final_residual = driver.fine_residual_norm();
    if (stats.final_residual < target) stats.converged = true;
  }
  // Terminal safety net only (max_cycles exhausted): with RAP coarse
  // operators the cycle no longer stalls on representable geometry, so this
  // is not a mid-flight bail-out. Skipped when the caller left no sweep
  // budget (max_sweeps = 0): the cascade's prolongation without any
  // smoothing would only corrupt the cycle's iterate.
  if (!stats.converged && opts.max_sweeps > 0) {
    if (fine_rhs == nullptr) {
      std::size_t total = 0;
      double fine_equiv = 0.0;
      const SolveStats tail = multilevel_solve(phi, bc, opts, total, fine_equiv, 1.0);
      stats.sweeps += tail.sweeps;
      stats.total_sweeps += total;
      stats.fine_equiv_sweeps += fine_equiv;
      stats.final_update = tail.final_update;
      stats.converged = tail.converged;
    } else {
      // The cascade is Laplace-only; Poisson problems finish on plain SOR.
      const SolveStats tail = sor_solve(phi, bc, fine_rhs, opts, 1.0);
      stats.sweeps += tail.sweeps;
      stats.total_sweeps += tail.total_sweeps;
      stats.fine_equiv_sweeps += tail.fine_equiv_sweeps;
      stats.final_update = tail.final_update;
      stats.converged = tail.converged;
    }
    stats.final_residual = residual_norm(phi, bc, fine_rhs);
  }
  return stats;
}

// ---------------------------------------------------------- Galerkin (RAP) ----

// Per-axis transfer support of one fine index: at most two coarse taps.
// For R (full weighting) the table is built by inverting the forward map —
// each coarse I reads fine mirror_index(2I+r), so folded boundary weights
// merge into the same tap. For P (trilinear) even fine indices map to their
// coincident coarse node, odd ones to the two flanking nodes at 1/2.
struct AxisTaps {
  int count = 0;
  std::int32_t idx[2] = {0, 0};
  double w[2] = {0.0, 0.0};

  void add(std::size_t coarse, double weight) {
    for (int t = 0; t < count; ++t)
      if (idx[t] == static_cast<std::int32_t>(coarse)) {
        w[t] += weight;
        return;
      }
    idx[count] = static_cast<std::int32_t>(coarse);
    w[count] = weight;
    ++count;
  }
};

// Single source of the trilinear P tap rule (even fine index → coincident
// coarse node, odd → the two flanking nodes at 1/2), shared by the absolute
// per-axis tables and uniform_rap's relative composition so the Galerkin
// build can never drift from prolong_correct_plane's weights. Signed so
// relative indices work; truncating division is exact for every branch.
inline int prolong_taps(std::ptrdiff_t g, std::ptrdiff_t idx[2], double w[2]) {
  if (g % 2 == 0) {
    idx[0] = g / 2;
    w[0] = 1.0;
    return 1;
  }
  idx[0] = (g - 1) / 2;
  idx[1] = (g + 1) / 2;
  w[0] = w[1] = 0.5;
  return 2;
}

std::vector<AxisTaps> prolong_axis_taps(std::size_t fn) {
  std::vector<AxisTaps> taps(fn);
  for (std::size_t g = 0; g < fn; ++g) {
    std::ptrdiff_t idx[2];
    double w[2];
    const int count = prolong_taps(static_cast<std::ptrdiff_t>(g), idx, w);
    for (int t = 0; t < count; ++t)
      taps[g].add(static_cast<std::size_t>(idx[t]), w[t]);
  }
  return taps;
}

// Interior constant stencil of the next-coarser level: the Galerkin product
// evaluated in relative coordinates around a reference coarse node far from
// every boundary and mask (where the product is translation invariant).
// `parent` is the parent level's interior stencil (27 entries), or null for
// the unmasked 7-point Laplacian with inv_h2 = 1/h².
std::array<double, 27> uniform_rap(const double* parent, double inv_h2) {
  std::array<double, 27> out{};
  const double wr[3] = {0.25, 0.5, 0.25};
  const auto accumulate = [&](int fx, int fy, int fz, double wR) {
    const auto entry = [&](int dx, int dy, int dz, double a) {
      std::ptrdiff_t is[2], js[2], ks[2];
      double wi[2], wj[2], wk[2];
      const int ni = prolong_taps(fx + dx, is, wi);
      const int nj = prolong_taps(fy + dy, js, wj);
      const int nk = prolong_taps(fz + dz, ks, wk);
      for (int a3 = 0; a3 < nk; ++a3)
        for (int b3 = 0; b3 < nj; ++b3)
          for (int c3 = 0; c3 < ni; ++c3) {
            const int m = ((ks[a3] + 1) * 3 + (js[b3] + 1)) * 3 + (is[c3] + 1);
            out[static_cast<std::size_t>(m)] += wR * a * wk[a3] * wj[b3] * wi[c3];
          }
    };
    if (parent == nullptr) {
      entry(0, 0, 0, -6.0 * inv_h2);
      entry(-1, 0, 0, inv_h2);
      entry(1, 0, 0, inv_h2);
      entry(0, -1, 0, inv_h2);
      entry(0, 1, 0, inv_h2);
      entry(0, 0, -1, inv_h2);
      entry(0, 0, 1, inv_h2);
      return;
    }
    for (int m = 0; m < 27; ++m)
      entry(stencil::var_off_i(m), stencil::var_off_j(m), stencil::var_off_k(m),
            parent[m]);
  };
  for (int rz = -1; rz <= 1; ++rz)
    for (int ry = -1; ry <= 1; ++ry)
      for (int rx = -1; rx <= 1; ++rx)
        accumulate(rx, ry, rz, wr[rz + 1] * wr[ry + 1] * wr[rx + 1]);
  return out;
}

// Accumulate the Galerkin product A_c = R·A_f·P for one coarse level into
// `coef` (27-slot SoA layout, see stencil_kernel.hpp). `fine_row(fi, fj, fk,
// emit)` enumerates the nonzero entries of the fine operator's row at a free
// fine node as emit(gi, gj, gk, a); entries landing on fixed fine nodes are
// dropped (Dirichlet elimination of the error equation, e = 0 there).
// R is full weighting with face mirroring (restrict_plane's geometry), P is
// trilinear (prolong_correct_plane's weights), so the coarse operator is
// variationally consistent with the transfers the cycle actually applies —
// this is what keeps 1–2-node electrode gaps represented after coarsening,
// where mask injection erases them.
//
// Cost control for the cold-start (no-workspace) solve: the Galerkin product
// is translation invariant wherever the fine operator is unmasked AND
// itself uniform, so "regular" coarse nodes — per-axis index in [1, cn-2]
// (no mirror anywhere in the R/A/P chain), an all-free 5³ fine support, and
// (for variable-coefficient sources) a uniform parent stencil over the 3³
// R-support rows — just copy `uniform` (the interior constant stencil,
// composed per level in uniform_rap). Only nodes near Dirichlet masks or
// domain faces run the full triple product. `parent_uniform` flags which
// parent nodes hold the parent's constant stencil (null for the 7-point
// source, where the mask check alone decides); `uniform_out`, when given,
// records the same flag for this level so the next build can chain it —
// without it a feature thinner than the coarse spacing (the thin gap whose
// mask injection already erased) would silently re-uniformize one level
// down and the operator would lose exactly the structure RAP exists to keep.
template <typename RowFn>
void build_rap(const RowFn& fine_row, stencil::Dims fd, const std::uint8_t* ffixed,
               stencil::Dims cd, const std::uint8_t* cfixed, double* coef,
               const double* uniform, const std::uint8_t* parent_uniform,
               std::uint8_t* uniform_out) {
  const std::size_t cn = cd.size();
  std::fill_n(coef, 27 * cn, 0.0);
  if (uniform_out != nullptr) std::fill_n(uniform_out, cn, 0);
  const std::vector<AxisTaps> px = prolong_axis_taps(fd.nx);
  const std::vector<AxisTaps> py = prolong_axis_taps(fd.ny);
  const std::vector<AxisTaps> pz = prolong_axis_taps(fd.nz);
  const double wr[3] = {0.25, 0.5, 0.25};

  for (std::size_t K = 0; K < cd.nz; ++K)
    for (std::size_t J = 0; J < cd.ny; ++J)
      for (std::size_t I = 0; I < cd.nx; ++I) {
        const std::size_t cidx = (K * cd.ny + J) * cd.nx + I;
        if (cfixed[cidx]) continue;
        // Regularity probe: interior per axis, an all-free 5³ fine support,
        // and uniform parent rows across the 3³ R-support.
        if (uniform != nullptr && I >= 1 && I + 2 <= cd.nx && J >= 1 && J + 2 <= cd.ny &&
            K >= 1 && K + 2 <= cd.nz) {
          bool regular = true;
          for (std::size_t fk = 2 * K - 2; regular && fk <= 2 * K + 2; ++fk)
            for (std::size_t fj = 2 * J - 2; regular && fj <= 2 * J + 2; ++fj) {
              const std::uint8_t* fr = ffixed + (fk * fd.ny + fj) * fd.nx + 2 * I - 2;
              regular = (fr[0] | fr[1] | fr[2] | fr[3] | fr[4]) == 0;
            }
          if (regular && parent_uniform != nullptr)
            for (std::size_t fk = 2 * K - 1; regular && fk <= 2 * K + 1; ++fk)
              for (std::size_t fj = 2 * J - 1; regular && fj <= 2 * J + 1; ++fj) {
                const std::uint8_t* fr =
                    parent_uniform + (fk * fd.ny + fj) * fd.nx + 2 * I - 1;
                regular = (fr[0] & fr[1] & fr[2]) != 0;
              }
          if (regular) {
            for (int m = 0; m < 27; ++m)
              coef[static_cast<std::size_t>(m) * cn + cidx] = uniform[m];
            if (uniform_out != nullptr) uniform_out[cidx] = 1;
            continue;
          }
        }
        for (int rz = -1; rz <= 1; ++rz) {
          const std::size_t fz =
              stencil::mirror_index(static_cast<std::ptrdiff_t>(2 * K) + rz, fd.nz);
          for (int ry = -1; ry <= 1; ++ry) {
            const std::size_t fy =
                stencil::mirror_index(static_cast<std::ptrdiff_t>(2 * J) + ry, fd.ny);
            for (int rx = -1; rx <= 1; ++rx) {
              const std::size_t fx =
                  stencil::mirror_index(static_cast<std::ptrdiff_t>(2 * I) + rx, fd.nx);
              if (ffixed[(fz * fd.ny + fy) * fd.nx + fx]) continue;
              const double wR = wr[rz + 1] * wr[ry + 1] * wr[rx + 1];
              fine_row(fx, fy, fz, [&](std::size_t gi, std::size_t gj, std::size_t gk,
                                       double aval) {
                if (ffixed[(gk * fd.ny + gj) * fd.nx + gi]) return;
                const AxisTaps& pi = px[gi];
                const AxisTaps& pj = py[gj];
                const AxisTaps& pk = pz[gk];
                const double wa = wR * aval;
                for (int a = 0; a < pk.count; ++a)
                  for (int b = 0; b < pj.count; ++b)
                    for (int c = 0; c < pi.count; ++c) {
                      const std::size_t c2 =
                          (static_cast<std::size_t>(pk.idx[a]) * cd.ny +
                           static_cast<std::size_t>(pj.idx[b])) *
                              cd.nx +
                          static_cast<std::size_t>(pi.idx[c]);
                      if (cfixed[c2]) continue;
                      // |offset| <= 1 per axis by construction: R spans fine
                      // nodes 2I±1, the operator reaches one further, and P
                      // maps that back into [I-1, I+1].
                      const int oi = pi.idx[c] - static_cast<int>(I);
                      const int oj = pj.idx[b] - static_cast<int>(J);
                      const int ok = pk.idx[a] - static_cast<int>(K);
                      const int m = ((ok + 1) * 3 + (oj + 1)) * 3 + (oi + 1);
                      coef[static_cast<std::size_t>(m) * cn + cidx] +=
                          wa * pk.w[a] * pj.w[b] * pi.w[c];
                    }
              });
            }
          }
        }
      }
}

}  // namespace

// --------------------------------------------------------------- workspace ----

void MultigridWorkspace::prepare(const Grid3& fine, const DirichletBc& bc) {
  const bool same_shape = fine.nx() == fnx_ && fine.ny() == fny_ && fine.nz() == fnz_ &&
                          fine.spacing() == fspacing_;
  if (same_shape && mask_copy_ == bc.fixed) return;  // fully reusable as-is
  if (!same_shape) {
    levels_.clear();
    fnx_ = fine.nx();
    fny_ = fine.ny();
    fnz_ = fine.nz();
    fspacing_ = fine.spacing();
    fine_residual_.assign(fine.size(), 0.0);
    plane_scratch_.assign(fine.nz(), 0.0);
  }

  // A fine mask with no Dirichlet node at all makes the error equation
  // singular on every level; leave the hierarchy empty (the caller falls
  // back to plain SOR, matching the historical behaviour).
  bool any_fixed = false;
  for (const std::uint8_t f : bc.fixed)
    if (f != 0) {
      any_fixed = true;
      break;
    }

  // Build (or re-derive) the level chain. Masks restrict by injection; the
  // coarse OPERATORS are Galerkin products A_{l+1} = R·A_l·P, so geometry
  // thinner than the coarse spacing — 1–2-node electrode gaps that injection
  // erases from the mask — survives in the variable coefficients, and the
  // chain no longer has to stop when a coarse mask loses its pinned nodes
  // (the eliminated-neighbor diagonal strengthening keeps A_{l+1} regular).
  std::size_t nx = fine.nx(), ny = fine.ny(), nz = fine.nz();
  double spacing = fine.spacing();
  const std::uint8_t* parent_fixed = bc.fixed.data();
  stencil::Dims parent_dims{nx, ny, nz};
  const double* parent_coef = nullptr;  // null = 7-point fine Laplacian
  const double fine_inv_h2 = 1.0 / (fine.spacing() * fine.spacing());
  // Interior constant stencil of the level being built (regular-node fast
  // path in build_rap); recomposed level to level, with per-node uniformity
  // flags chained so sub-coarse-spacing features never re-uniformize.
  std::array<double, 27> uniform = uniform_rap(nullptr, fine_inv_h2);
  std::vector<std::uint8_t> parent_uniform;  // empty = 7-point source level
  std::vector<std::uint8_t> level_uniform;
  std::size_t depth = 0;
  while (any_fixed && can_coarsen_dims(nx, ny, nz)) {
    const std::size_t cnx = (nx - 1) / 2 + 1, cny = (ny - 1) / 2 + 1,
                      cnz = (nz - 1) / 2 + 1;
    spacing *= 2.0;
    if (levels_.size() <= depth) {
      Level lev;
      lev.e = Grid3(cnx, cny, cnz, spacing);
      lev.rhs.assign(lev.e.size(), 0.0);
      lev.res.assign(lev.e.size(), 0.0);
      lev.fixed.assign(lev.e.size(), 0);
      lev.plane_fixed.assign(cnz, 0);
      lev.stencil.assign(27 * lev.e.size(), 0.0);
      lev.inv_diag.assign(lev.e.size(), 0.0);
      levels_.push_back(std::move(lev));
    }
    Level& lev = levels_[depth];
    // Mask restriction by injection: a coarse node is pinned (e = 0) exactly
    // when its coincident fine node is pinned.
    for (std::size_t k = 0; k < cnz; ++k)
      for (std::size_t j = 0; j < cny; ++j)
        for (std::size_t i = 0; i < cnx; ++i)
          lev.fixed[(k * cny + j) * cnx + i] =
              parent_fixed[(2 * k * parent_dims.ny + 2 * j) * parent_dims.nx + 2 * i];

    const stencil::Dims cdims{cnx, cny, cnz};
    if (parent_coef == nullptr) {
      // Fine operator: 7-point Laplacian with Neumann mirror folding (a
      // folded edge emits the same interior target twice, matching the
      // smoother's doubled neighbor read) and Dirichlet elimination.
      const auto row7 = [&](std::size_t fi, std::size_t fj, std::size_t fk,
                            const auto& emit) {
        emit(fi, fj, fk, -6.0 * fine_inv_h2);
        const auto p = [](std::size_t v) { return static_cast<std::ptrdiff_t>(v); };
        emit(stencil::mirror_index(p(fi) - 1, parent_dims.nx), fj, fk, fine_inv_h2);
        emit(stencil::mirror_index(p(fi) + 1, parent_dims.nx), fj, fk, fine_inv_h2);
        emit(fi, stencil::mirror_index(p(fj) - 1, parent_dims.ny), fk, fine_inv_h2);
        emit(fi, stencil::mirror_index(p(fj) + 1, parent_dims.ny), fk, fine_inv_h2);
        emit(fi, fj, stencil::mirror_index(p(fk) - 1, parent_dims.nz), fine_inv_h2);
        emit(fi, fj, stencil::mirror_index(p(fk) + 1, parent_dims.nz), fine_inv_h2);
      };
      level_uniform.assign(lev.e.size(), 0);
      build_rap(row7, parent_dims, parent_fixed, cdims, lev.fixed.data(),
                lev.stencil.data(), uniform.data(), nullptr, level_uniform.data());
    } else {
      const std::size_t pn = parent_dims.size();
      const auto rowvar = [&](std::size_t fi, std::size_t fj, std::size_t fk,
                              const auto& emit) {
        const std::size_t idx = (fk * parent_dims.ny + fj) * parent_dims.nx + fi;
        for (int m = 0; m < 27; ++m) {
          const double a = parent_coef[static_cast<std::size_t>(m) * pn + idx];
          if (a == 0.0) continue;  // includes every out-of-range offset
          emit(static_cast<std::size_t>(static_cast<std::ptrdiff_t>(fi) +
                                        stencil::var_off_i(m)),
               static_cast<std::size_t>(static_cast<std::ptrdiff_t>(fj) +
                                        stencil::var_off_j(m)),
               static_cast<std::size_t>(static_cast<std::ptrdiff_t>(fk) +
                                        stencil::var_off_k(m)),
               a);
        }
      };
      level_uniform.assign(lev.e.size(), 0);
      build_rap(rowvar, parent_dims, parent_fixed, cdims, lev.fixed.data(),
                lev.stencil.data(), uniform.data(), parent_uniform.data(),
                level_uniform.data());
    }

    // inv_diag + degenerate-node fixup: a free coarse node whose entire R
    // support is fixed has an all-zero row (and zero diagonal); pin it so
    // the smoother keeps e = 0 there. Columns pointing at such nodes are
    // harmless — e is zeroed per cycle and never written at fixed nodes —
    // and the next level's RAP build drops them explicitly.
    const std::size_t cn = lev.e.size();
    std::size_t fixed_count = 0;
    for (std::size_t n = 0; n < cn; ++n) {
      if (lev.fixed[n]) {
        lev.inv_diag[n] = 0.0;
        ++fixed_count;
        continue;
      }
      const double diag = lev.stencil[13 * cn + n];
      if (diag == 0.0) {
        lev.fixed[n] = 1;
        lev.inv_diag[n] = 0.0;
        ++fixed_count;
        continue;
      }
      lev.inv_diag[n] = 1.0 / diag;
    }
    // Per-row broadcast eligibility for the smoother: a row may use the
    // constant-stencil fast path when every interior node ([1, cnx-2]; the
    // two border nodes are always de-uniformized by mirror folding) carries
    // the uniformity flag. The constants are the very values build_rap
    // copied into the stencil, so broadcasting them is bit-identical.
    lev.uniform_stencil = uniform;
    lev.uniform_inv_diag = uniform[13] != 0.0 ? 1.0 / uniform[13] : 0.0;
    lev.row_uniform.assign(cny * cnz, 0);
    if (cnx >= 4 && lev.uniform_inv_diag != 0.0) {
      for (std::size_t kk = 0; kk < cnz; ++kk)
        for (std::size_t jj = 0; jj < cny; ++jj) {
          const std::uint8_t* u = level_uniform.data() + (kk * cny + jj) * cnx;
          bool all = true;
          for (std::size_t ii = 1; ii + 1 < cnx && all; ++ii) all = u[ii] != 0;
          lev.row_uniform[kk * cny + jj] = all ? 1 : 0;
        }
    }
    lev.plane_fixed = classify_planes(lev.fixed.data(), cdims);
    // A level with every node pinned contributes no correction; stop there.
    if (fixed_count == cn) break;
    uniform = uniform_rap(uniform.data(), 0.0);
    parent_uniform = std::move(level_uniform);
    level_uniform.clear();
    parent_fixed = lev.fixed.data();
    parent_coef = lev.stencil.data();
    parent_dims = cdims;
    nx = cnx;
    ny = cny;
    nz = cnz;
    ++depth;
  }
  levels_.resize(depth);
  fine_plane_fixed_ = classify_planes(bc.fixed.data(), {fine.nx(), fine.ny(), fine.nz()});
  mask_copy_ = bc.fixed;
}

// -------------------------------------------------------------- public API ----

DirichletBc DirichletBc::all_free(const Grid3& grid) {
  DirichletBc bc;
  bc.fixed.assign(grid.size(), 0);
  bc.value.assign(grid.size(), 0.0);
  return bc;
}

double optimal_omega(std::size_t n) {
  if (n < 3) return 1.0;
  return 2.0 / (1.0 + std::sin(constants::pi / static_cast<double>(n)));
}

double optimal_omega(std::size_t nx, std::size_t ny, std::size_t nz) {
  if (std::max({nx, ny, nz}) < 3) return 1.0;
  const auto c = [](std::size_t m) {
    return std::cos(constants::pi / static_cast<double>(m));
  };
  // Model-problem Jacobi spectral radius with per-axis dimensions: the
  // short axes lower ρ, so elongated grids get less over-relaxation than
  // the longest-side formula would apply.
  const double rho = (c(nx) + c(ny) + c(nz)) / 3.0;
  if (rho <= 0.0) return 1.0;
  return 2.0 / (1.0 + std::sqrt(std::max(0.0, 1.0 - rho * rho)));
}

SolveStats solve_laplace(Grid3& phi, const DirichletBc& bc, const SolverOptions& opts,
                         MultigridWorkspace* workspace) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  // Every exit funnels through the accounting fold so a shared workspace's
  // cumulative counters stay an exact sum of the returned SolveStats.
  const auto finish = [workspace](SolveStats stats) {
    if (workspace != nullptr) workspace->accounting().account(stats);
    return stats;
  };
  if (opts.multilevel && can_coarsen(phi)) {
    if (opts.cycle != CycleType::cascade)
      return finish(vcycle_solve(phi, bc, nullptr, opts, workspace,
                                 opts.cycle == CycleType::fmg));
    std::size_t total = 0;
    double fine_equiv = 0.0;
    SolveStats stats = multilevel_solve(phi, bc, opts, total, fine_equiv, 1.0);
    stats.total_sweeps = total;
    stats.fine_equiv_sweeps = fine_equiv;
    return finish(stats);
  }
  return finish(sor_solve(phi, bc, nullptr, opts, 1.0));
}

SolveStats solve_poisson(Grid3& phi, const Grid3& f, const DirichletBc& bc,
                         const SolverOptions& opts, MultigridWorkspace* workspace) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  BIOCHIP_REQUIRE(f.same_shape(phi), "Poisson RHS shape does not match grid");
  BIOCHIP_REQUIRE(phi.nx() >= 2 && phi.ny() >= 2 && phi.nz() >= 2,
                  "solver needs at least 2 nodes per axis");
  apply_dirichlet(phi, bc);
  const auto finish = [workspace](SolveStats stats) {
    if (workspace != nullptr) workspace->accounting().account(stats);
    return stats;
  };
  // The cascade is a Laplace-only oracle; any multilevel Poisson solve goes
  // through the V-cycle (the error equation needs a true residual cycle).
  if (opts.multilevel && can_coarsen(phi))
    return finish(vcycle_solve(phi, bc, f.data().data(), opts, workspace,
                               opts.cycle == CycleType::fmg));
  return finish(sor_solve(phi, bc, f.data().data(), opts, 1.0));
}

double laplacian_residual(const Grid3& phi, const DirichletBc& bc) {
  return residual_norm(phi, bc, nullptr);
}

// ------------------------------------------------------ dirty-region passes ----

SolveStats MultigridWorkspace::solve_window(Grid3& phi, const DirichletBc& bc,
                                            const GridBox& box,
                                            const SolverOptions& opts) {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  SolveStats stats;
  const GridBox b = box.clamped(phi.nx(), phi.ny(), phi.nz());
  // The zero-change contract: an empty window touches nothing (no Dirichlet
  // re-apply, no sweep, no accounting), so the cached solution survives
  // bitwise.
  if (b.empty()) return stats;

  const std::size_t nx = phi.nx(), ny = phi.ny();
  double* d = phi.data().data();
  // Apply the (possibly updated) Dirichlet values inside the window; track
  // whether the window has any free node at all.
  bool any_free = false;
  for (std::size_t k = b.k0; k <= b.k1; ++k)
    for (std::size_t j = b.j0; j <= b.j1; ++j) {
      const std::size_t row = (k * ny + j) * nx;
      for (std::size_t i = b.i0; i <= b.i1; ++i) {
        if (bc.fixed[row + i])
          d[row + i] = bc.value[row + i];
        else
          any_free = true;
      }
    }
  const double box_ratio =
      static_cast<double>(b.volume()) / static_cast<double>(phi.size());
  if (!any_free) {
    // All-metal window: the Dirichlet apply above is the whole correction.
    stats.converged = true;
    accounting_.account_window(stats, box_ratio);
    return stats;
  }

  const stencil::Dims dims{nx, ny, phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  const std::size_t bnx = b.i1 - b.i0 + 1;
  const std::size_t bny = b.j1 - b.j0 + 1;
  const std::size_t bnz = b.k1 - b.k0 + 1;
  // Auto-omega sized for the *window*, not the grid: the frozen box boundary
  // makes the correction a Dirichlet problem of the box's own dimensions.
  const double omega = opts.omega > 0.0 ? opts.omega : optimal_omega(bnx, bny, bnz);
  std::shared_ptr<core::ThreadPool> owned;
  core::ThreadPool* pool = resolve_pool(opts, owned);
  if (pool != nullptr && plane_scratch_.size() < bnz) plane_scratch_.resize(bnz);
  const PlaneRunner planes{pool, opts.threads, &plane_scratch_};
  const std::uint8_t* fixed = bc.fixed.data();

  // Box-restricted red-black SOR. Same-color nodes of different planes are
  // independent under the 7-point stencil, so the per-color plane fan-out is
  // race-free and bitwise identical to the serial loop for every thread
  // count; convergence is tested every sweep on both paths (the windowed
  // kernel has no fused serial pair, so the schedules already match).
  const double tol = opts.incremental.tolerance;
  const std::size_t cap = std::max<std::size_t>(std::size_t{1}, opts.incremental.max_sweeps);
  while (stats.sweeps < cap) {
    double update = 0.0;
    for (int color = 0; color < 2; ++color) {
      const double u = planes.run_max(bnz, [&](std::size_t kk) {
        return stencil::smooth_plane_box(d, fixed, nullptr, h2, dims, omega, color,
                                         b.k0 + kk, b.i0, b.i1, b.j0, b.j1);
      });
      update = std::max(update, u);
    }
    ++stats.sweeps;
    stats.final_update = update;
    if (update < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.total_sweeps = stats.sweeps;
  stats.fine_equiv_sweeps = static_cast<double>(stats.sweeps) * box_ratio;
  stats.final_residual = window_residual(phi, bc, b);
  accounting_.account_window(stats, box_ratio);
  return stats;
}

double MultigridWorkspace::window_residual(const Grid3& phi, const DirichletBc& bc,
                                           const GridBox& box) const {
  BIOCHIP_REQUIRE(bc.fixed.size() == phi.size() && bc.value.size() == phi.size(),
                  "Dirichlet BC size does not match grid");
  const GridBox b = box.clamped(phi.nx(), phi.ny(), phi.nz());
  if (b.empty()) return 0.0;
  const stencil::Dims dims{phi.nx(), phi.ny(), phi.nz()};
  const double h2 = phi.spacing() * phi.spacing();
  double worst = 0.0;
  for (std::size_t k = b.k0; k <= b.k1; ++k)
    worst = std::max(worst,
                     stencil::residual_plane_box(phi.data().data(), bc.fixed.data(),
                                                 nullptr, h2, dims, k, b.i0, b.i1,
                                                 b.j0, b.j1));
  return worst;
}

}  // namespace biochip::field
