#include "field/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip::field {

IncrementalPotential::IncrementalPotential(const ChamberDomain& domain,
                                           std::vector<Rect> footprints,
                                           bool lid_present, double pitch,
                                           const SolverOptions& opts)
    : domain_(domain), footprints_(std::move(footprints)), lid_present_(lid_present),
      opts_(opts) {
  BIOCHIP_REQUIRE(!footprints_.empty(), "IncrementalPotential needs electrodes");
  BIOCHIP_REQUIRE(pitch > 0.0, "electrode pitch must be positive");
  BIOCHIP_REQUIRE(opts_.incremental.window_radius_pitches > 0.0,
                  "window radius must be positive");
  radius_nodes_ = static_cast<std::size_t>(std::ceil(
      opts_.incremental.window_radius_pitches * pitch / domain_.spacing));
  phi_ = domain_.make_grid();
  bc_ = DirichletBc::all_free(phi_);
  last_drive_.assign(footprints_.size(), 0.0);

  // Pin electrode and lid nodes with the exact containment rule of
  // build_boundary (grown-rect snap, first matching footprint wins), and
  // record each electrode's node list + chip-plane bounding box so drive
  // updates poke O(footprint) values instead of rebuilding the BC.
  const double h = domain_.spacing;
  const std::size_t nx = phi_.nx(), ny = phi_.ny(), nz = phi_.nz();
  nodes_.resize(footprints_.size());
  footprint_box_.assign(footprints_.size(), GridBox::none());
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const Vec2 p{static_cast<double>(i) * h, static_cast<double>(j) * h};
      for (std::size_t e = 0; e < footprints_.size(); ++e) {
        const Rect& fp = footprints_[e];
        const Rect grown{{fp.min.x - 0.25 * h, fp.min.y - 0.25 * h},
                         {fp.max.x + 0.25 * h, fp.max.y + 0.25 * h}};
        if (!grown.contains(p)) continue;
        const std::size_t n = phi_.index(i, j, 0);
        bc_.fixed[n] = 1;
        nodes_[e].push_back(n);
        footprint_box_[e] = footprint_box_[e].merged({i, j, 0, i, j, 0});
        break;
      }
    }
  for (std::size_t e = 0; e < footprints_.size(); ++e)
    BIOCHIP_REQUIRE(!nodes_[e].empty(), "electrode footprint covers no grid node");
  if (lid_present_)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) bc_.fixed[phi_.index(i, j, nz - 1)] = 1;
}

GridBox IncrementalPotential::electrode_window(std::size_t e) const {
  BIOCHIP_REQUIRE(e < footprints_.size(), "electrode index out of range");
  GridBox b = footprint_box_[e].dilated(radius_nodes_);
  // The footprint sits on the chip plane; the region of influence extends
  // the same radius up into the fluid.
  b.k0 = 0;
  b.k1 = radius_nodes_;
  return b.clamped(phi_.nx(), phi_.ny(), phi_.nz());
}

SolveStats IncrementalPotential::full_solve() {
  // Cold start on purpose: re-anchors must be bitwise reproducible from the
  // boundary data alone, independent of the incremental history, so they
  // equal the oracle exactly (not merely within tolerance).
  phi_.fill(0.0);
  return solve_laplace(phi_, bc_, opts_, &workspace_);
}

Grid3 IncrementalPotential::oracle() const {
  Grid3 g = domain_.make_grid();
  solve_laplace(g, bc_, opts_);
  return g;
}

SolveStats IncrementalPotential::reanchor() {
  const SolveStats stats = full_solve();
  since_anchor_ = 0;
  return stats;
}

IncrementalPotential::UpdateReport IncrementalPotential::update(
    const std::vector<double>& drive, double lid_drive) {
  BIOCHIP_REQUIRE(drive.size() == footprints_.size(),
                  "drive vector size must equal electrode count");
  UpdateReport report;

  std::vector<std::size_t> changed;
  for (std::size_t e = 0; e < drive.size(); ++e)
    if (drive[e] != last_drive_[e]) changed.push_back(e);
  const bool lid_changed = lid_present_ && lid_drive != last_lid_;
  if (primed_ && changed.empty() && !lid_changed) {
    // Bitwise no-op: no BC write, no sweep, no cadence advance. Trivially
    // converged — the cached solution already satisfies the unchanged data.
    report.stats.converged = true;
    return report;
  }
  report.changed = changed.size();

  // Write the new boundary values (only where they changed).
  for (const std::size_t e : changed)
    for (const std::size_t n : nodes_[e]) bc_.value[n] = drive[e];
  if (lid_changed || (!primed_ && lid_present_)) {
    const std::size_t nx = phi_.nx(), ny = phi_.ny(), nz = phi_.nz();
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i)
        bc_.value[phi_.index(i, j, nz - 1)] = lid_drive;
  }
  for (const std::size_t e : changed) last_drive_[e] = drive[e];
  last_lid_ = lid_drive;

  const std::size_t period = opts_.incremental.reanchor_period;
  ++since_anchor_;
  const bool anchor = !primed_ || lid_changed || (period != 0 && since_anchor_ >= period);
  if (anchor) {
    report.reanchored = true;
    report.stats = full_solve();
    report.window_fraction = 1.0;
    primed_ = true;
    since_anchor_ = 0;
    return report;
  }

  // Cluster the changed electrodes' windows: overlapping or stencil-adjacent
  // boxes merge (they exchange information through shared neighbors), in
  // ascending electrode order so the pass sequence is deterministic.
  std::vector<GridBox> clusters;
  for (const std::size_t e : changed) {
    GridBox cur = electrode_window(e);
    for (bool merged = true; merged;) {
      merged = false;
      for (std::size_t c = 0; c < clusters.size(); ++c)
        if (clusters[c].touches(cur)) {
          cur = cur.merged(clusters[c]);
          clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(c));
          merged = true;
          break;
        }
    }
    clusters.push_back(cur);
  }

  report.stats.converged = true;  // AND over clusters below
  for (const GridBox& box : clusters) {
    const SolveStats s = workspace_.solve_window(phi_, bc_, box, opts_);
    report.stats.sweeps += s.sweeps;
    report.stats.total_sweeps += s.total_sweeps;
    report.stats.fine_equiv_sweeps += s.fine_equiv_sweeps;
    report.stats.final_update = std::max(report.stats.final_update, s.final_update);
    report.stats.final_residual = std::max(report.stats.final_residual, s.final_residual);
    report.stats.converged = report.stats.converged && s.converged;
    report.window_fraction +=
        static_cast<double>(box.clamped(phi_.nx(), phi_.ny(), phi_.nz()).volume()) /
        static_cast<double>(phi_.size());
  }
  report.windows = clusters.size();
  return report;
}

}  // namespace biochip::field
