#pragma once
/// \file assay.hpp
/// \brief Assay sequencing graphs — the behavioural input to biochip
/// synthesis.
///
/// An assay is a DAG of fluidic operations on discrete packets (droplets or
/// caged cells). This mirrors the sequencing-graph front end of the early
/// DMFB CAD flows (MFSim / the UCR framework referenced in DESIGN.md) that
/// the paper's "Wild West" landscape alludes to; no canonical benchmark
/// format existed in 2005, so `benchmarks.{hpp,cpp}` reconstructs the
/// standard suites from the literature.

#include <string>
#include <vector>

namespace biochip::cad {

/// Operation kinds. kInput/kOutput touch chip ports; kMix/kSplit/kIncubate/
/// kDetect occupy an on-array module for their duration.
enum class OpKind { kInput, kMix, kSplit, kIncubate, kDetect, kOutput };

const char* to_string(OpKind kind);

/// Expected in-degree per kind (split has 1 input, 2 outputs; mix 2 and 1).
int expected_inputs(OpKind kind);
/// Maximum out-degree (inputs of other ops fed by this one); 0 = unlimited.
int max_outputs(OpKind kind);

/// One node of the sequencing graph.
struct Operation {
  int id = 0;
  OpKind kind = OpKind::kMix;
  std::string label;
  double duration = 0.0;       ///< processing time once placed [s]
  std::vector<int> inputs;     ///< producing operation ids
};

/// Immutable-after-build DAG of operations.
class AssayGraph {
 public:
  explicit AssayGraph(std::string name);

  const std::string& name() const { return name_; }
  const std::vector<Operation>& operations() const { return ops_; }
  const Operation& op(int id) const;
  std::size_t size() const { return ops_.size(); }

  /// Append an operation; `inputs` must reference existing ids.
  int add(OpKind kind, std::vector<int> inputs, double duration,
          const std::string& label = "");

  /// Consumers of op id.
  std::vector<int> successors(int id) const;

  /// Validate structure: acyclic (by construction), correct in-degrees,
  /// split fan-out <= 2, terminal ops are outputs/detects.
  /// Throws ConfigError with a description on the first violation.
  void validate() const;

  /// Topological order (ids ascending already satisfy it by construction,
  /// returned explicitly for clarity).
  std::vector<int> topo_order() const;

  /// Critical-path duration ignoring resource limits and transport [s].
  double critical_path() const;

  /// Number of operations of a given kind.
  std::size_t count(OpKind kind) const;

 private:
  std::string name_;
  std::vector<Operation> ops_;
};

}  // namespace biochip::cad
