#pragma once
/// \file synthesis.hpp
/// \brief End-to-end assay synthesis: schedule → place → route.
///
/// The output binds every operation to a time slot and array region and
/// every data edge to a collision-free cage route. Total assay time =
/// processing makespan + transport time, where each transfer episode's step
/// count is multiplied by the physical actuation step period (pitch / tow
/// speed — mass transfer, not electronics, is the clock here: claim C3).

#include <cstdint>
#include <string>
#include <vector>

#include "cad/assay.hpp"
#include "cad/place.hpp"
#include "cad/route.hpp"
#include "cad/schedule.hpp"

namespace biochip::cad {

struct SynthesisConfig {
  ArrayDims dims{64, 64};
  ChipResources resources;
  int module_size = 6;
  int halo = 2;
  int min_separation = 2;
  double step_period = 0.4;   ///< s per cage step (20 µm / 50 µm/s)
  bool list_scheduler = true; ///< false = FIFO baseline
  bool astar_router = true;   ///< false = greedy baseline
  bool anneal_placement = false;
  std::uint64_t seed = 1;
};

/// One simultaneous-transfer routing episode (all edges departing together).
struct TransferEpisode {
  double depart = 0.0;  ///< schedule time at which the packets leave
  std::vector<RouteRequest> transfers;
  RouteResult routes;
};

struct SynthesisResult {
  bool success = false;
  std::vector<std::string> issues;
  Schedule schedule;
  Placement placement;
  std::vector<TransferEpisode> episodes;
  std::size_t transport_steps = 0;  ///< summed episode makespans [steps]
  std::size_t transport_moves = 0;  ///< summed cage moves
  double processing_makespan = 0.0; ///< schedule makespan [s]
  double transport_time = 0.0;      ///< steps × step_period [s]
  double total_time = 0.0;          ///< processing + transport [s]
};

/// Run the full flow. Never throws on capacity/congestion failures — these
/// are reported via `success`/`issues` so benches can chart feasibility
/// boundaries; configuration errors (malformed graph) still throw.
SynthesisResult synthesize(const AssayGraph& graph, const SynthesisConfig& config);

}  // namespace biochip::cad
