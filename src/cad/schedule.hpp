#pragma once
/// \file schedule.hpp
/// \brief Resource-constrained operation scheduling.
///
/// Schedulers bind each assay operation to a start time under precedence and
/// resource constraints. Two algorithms:
///  * `list_schedule` — priority list scheduling, priority = longest path to
///    a sink (the standard DMFB scheduling heuristic);
///  * `fifo_schedule` — in-id-order baseline (what a naive executor does),
///    the ablation reference for `bench_cad_synthesis`.

#include <vector>

#include "cad/assay.hpp"

namespace biochip::cad {

/// Concurrency limits of the chip. A value of 0 means unlimited.
struct ChipResources {
  int mixers = 4;     ///< simultaneous mix/split/incubate modules
  int detectors = 0;  ///< simultaneous detects (per-pixel sensors: unlimited)
  int io_ports = 2;   ///< simultaneous input/output transfers
};

/// One scheduled operation.
struct ScheduledOp {
  int op = 0;
  double start = 0.0;
  double end = 0.0;
};

/// A complete schedule.
struct Schedule {
  std::vector<ScheduledOp> ops;  ///< indexed by operation id
  double makespan = 0.0;

  const ScheduledOp& at(int op_id) const;
};

/// Unconstrained as-soon-as-possible schedule (lower bound; equals the
/// critical path).
Schedule asap_schedule(const AssayGraph& graph);

/// As-late-as-possible schedule against `deadline` (for slack analysis).
/// Throws PreconditionError if deadline < critical path.
Schedule alap_schedule(const AssayGraph& graph, double deadline);

/// Critical-path list scheduling under resource constraints.
Schedule list_schedule(const AssayGraph& graph, const ChipResources& resources);

/// Baseline: dispatch ready ops in id order under the same constraints.
Schedule fifo_schedule(const AssayGraph& graph, const ChipResources& resources);

/// Verify a schedule respects precedence and resource limits; throws on
/// violation (used by tests and as a post-condition in synthesis).
void check_schedule(const AssayGraph& graph, const Schedule& schedule,
                    const ChipResources& resources);

}  // namespace biochip::cad
