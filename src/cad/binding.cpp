#include "cad/binding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

bool needs_module(OpKind kind) {
  return kind == OpKind::kMix || kind == OpKind::kSplit || kind == OpKind::kIncubate;
}

bool is_io(OpKind kind) { return kind == OpKind::kInput || kind == OpKind::kOutput; }

std::vector<double> downstream_weight(const AssayGraph& graph) {
  const auto& ops = graph.operations();
  std::vector<double> weight(ops.size(), 0.0);
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    double best = 0.0;
    for (int succ : graph.successors(it->id))
      best = std::max(best, weight[static_cast<std::size_t>(succ)]);
    weight[static_cast<std::size_t>(it->id)] = best + it->duration;
  }
  return weight;
}

}  // namespace

ModuleLibrary default_module_library() {
  ModuleLibrary lib;
  lib.types = {
      {"fast_8x8", 8, 0.5, 2},      // big region, parallel mixing motion
      {"standard_6x6", 6, 1.0, 4},
      {"compact_4x4", 4, 1.6, 8},   // slow but plentiful
  };
  lib.io_ports = 2;
  return lib;
}

BoundSchedule bind_list_schedule(const AssayGraph& graph, const ModuleLibrary& library) {
  if (library.types.empty()) throw ConfigError("module library has no types");
  const auto& ops = graph.operations();
  const std::size_t n = ops.size();
  const std::vector<double> priority = downstream_weight(graph);

  BoundSchedule bound;
  bound.schedule.ops.resize(n);
  bound.binding.assign(n, -1);

  std::vector<std::uint8_t> done(n, 0), started(n, 0);
  std::vector<int> type_in_use(library.types.size(), 0);
  int io_in_use = 0;

  struct Running {
    int op;
    double end;
    int type;  ///< -2 io, -1 none, >=0 module type
  };
  std::vector<Running> running;
  double now = 0.0;
  std::size_t finished = 0;

  auto ready = [&](const Operation& o) {
    if (started[static_cast<std::size_t>(o.id)]) return false;
    for (int in : o.inputs)
      if (!done[static_cast<std::size_t>(in)]) return false;
    return true;
  };

  while (finished < n) {
    std::vector<int> queue;
    for (const Operation& o : ops)
      if (ready(o)) queue.push_back(o.id);
    std::sort(queue.begin(), queue.end(), [&](int a, int b) {
      const double pa = priority[static_cast<std::size_t>(a)];
      const double pb = priority[static_cast<std::size_t>(b)];
      if (pa != pb) return pa > pb;
      return a < b;
    });

    for (int id : queue) {
      const Operation& op = ops[static_cast<std::size_t>(id)];
      double duration = op.duration;
      int chosen = -1;
      if (needs_module(op.kind)) {
        // Earliest-finish selection among types with a free instance.
        double best_finish = std::numeric_limits<double>::infinity();
        for (std::size_t t = 0; t < library.types.size(); ++t) {
          if (type_in_use[t] >= library.types[t].count) continue;
          const double finish = now + op.duration * library.types[t].duration_factor;
          if (finish < best_finish) {
            best_finish = finish;
            chosen = static_cast<int>(t);
          }
        }
        if (chosen < 0) continue;  // all module instances busy
        duration = op.duration * library.types[static_cast<std::size_t>(chosen)]
                                     .duration_factor;
        ++type_in_use[static_cast<std::size_t>(chosen)];
      } else if (is_io(op.kind)) {
        if (library.io_ports > 0 && io_in_use >= library.io_ports) continue;
        ++io_in_use;
      }
      started[static_cast<std::size_t>(id)] = 1;
      bound.binding[static_cast<std::size_t>(id)] = chosen;
      bound.schedule.ops[static_cast<std::size_t>(id)] = {id, now, now + duration};
      running.push_back({id, now + duration, is_io(op.kind) ? -2 : chosen});
    }

    BIOCHIP_REQUIRE(!running.empty(), "binding scheduler deadlock");
    double next = std::numeric_limits<double>::infinity();
    for (const Running& r : running) next = std::min(next, r.end);
    now = next;
    for (auto it = running.begin(); it != running.end();) {
      if (it->end <= now + 1e-12) {
        done[static_cast<std::size_t>(it->op)] = 1;
        if (it->type >= 0) --type_in_use[static_cast<std::size_t>(it->type)];
        if (it->type == -2) --io_in_use;
        ++finished;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const ScheduledOp& so : bound.schedule.ops)
    bound.makespan = std::max(bound.makespan, so.end);
  bound.schedule.makespan = bound.makespan;
  return bound;
}

void check_bound_schedule(const AssayGraph& graph, const ModuleLibrary& library,
                          const BoundSchedule& bound) {
  const auto& ops = graph.operations();
  BIOCHIP_REQUIRE(bound.schedule.ops.size() == ops.size() &&
                      bound.binding.size() == ops.size(),
                  "bound schedule size mismatch");
  for (const Operation& o : ops) {
    const ScheduledOp& so = bound.schedule.at(o.id);
    const int type = bound.binding[static_cast<std::size_t>(o.id)];
    double expected = o.duration;
    if (needs_module(o.kind)) {
      BIOCHIP_REQUIRE(type >= 0 && type < static_cast<int>(library.types.size()),
                      "processing op without a bound module: " + o.label);
      expected *= library.types[static_cast<std::size_t>(type)].duration_factor;
    } else {
      BIOCHIP_REQUIRE(type == -1, "non-processing op bound to a module: " + o.label);
    }
    BIOCHIP_REQUIRE(std::fabs((so.end - so.start) - expected) < 1e-9,
                    "bound duration mismatch for " + o.label);
    for (int in : o.inputs)
      BIOCHIP_REQUIRE(bound.schedule.at(in).end <= so.start + 1e-9,
                      "precedence violated at " + o.label);
  }
  // Per-type concurrency sweep.
  struct Event {
    double t;
    int delta;
    int type;
  };
  std::vector<Event> events;
  for (const Operation& o : ops) {
    const int type = bound.binding[static_cast<std::size_t>(o.id)];
    if (type < 0) continue;
    const ScheduledOp& so = bound.schedule.at(o.id);
    events.push_back({so.start, +1, type});
    events.push_back({so.end, -1, type});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  std::vector<int> in_use(library.types.size(), 0);
  for (const Event& e : events) {
    in_use[static_cast<std::size_t>(e.type)] += e.delta;
    BIOCHIP_REQUIRE(in_use[static_cast<std::size_t>(e.type)] <=
                        library.types[static_cast<std::size_t>(e.type)].count,
                    "module-type concurrency exceeded");
  }
}

}  // namespace biochip::cad
