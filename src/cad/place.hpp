#pragma once
/// \file place.hpp
/// \brief Module placement: binding scheduled operations to array regions.
///
/// Processing operations (mix/split/incubate/detect) each occupy a square
/// region of cage sites for their scheduled interval; I/O operations bind to
/// edge ports. Placement must keep time-overlapping modules disjoint (with a
/// halo so routed cages can pass between them) and wants producer/consumer
/// pairs close (transport cost). Two placers: greedy first-fit (baseline)
/// and simulated annealing on top of it.

#include <optional>
#include <string>
#include <vector>

#include "cad/assay.hpp"
#include "cad/schedule.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace biochip::cad {

/// Site-grid dimensions (= electrode grid for this chip).
struct ArrayDims {
  int cols = 0;
  int rows = 0;
};

/// A placed module (or port) for one operation.
struct PlacedModule {
  int op = 0;
  GridCoord origin;  ///< lower-left site
  int width = 1;
  int height = 1;

  GridCoord center() const {
    return {origin.col + width / 2, origin.row + height / 2};
  }
};

/// Placement result; `modules` is indexed by operation id.
struct Placement {
  std::vector<std::optional<PlacedModule>> modules;
  bool valid = false;
  std::vector<std::string> issues;

  const PlacedModule& at(int op_id) const;
};

/// Placer configuration.
struct PlacerConfig {
  ArrayDims dims;
  int module_size = 6;  ///< processing-module side [sites]
  int halo = 2;         ///< clearance between concurrent modules [sites]
};

/// Greedy first-fit placement in schedule-start order, preferring sites near
/// the centroid of already-placed producers.
Placement greedy_place(const AssayGraph& graph, const Schedule& schedule,
                       const PlacerConfig& config);

/// Simulated-annealing refinement of a greedy seed, minimizing total
/// producer→consumer Manhattan transport distance.
Placement annealed_place(const AssayGraph& graph, const Schedule& schedule,
                         const PlacerConfig& config, Rng& rng,
                         std::size_t iterations = 4000);

/// Total Manhattan distance between producer and consumer module centers
/// over all data edges [site steps].
double transport_cost(const AssayGraph& graph, const Placement& placement);

/// Verify geometric legality (bounds, temporal non-overlap with halo);
/// throws PreconditionError on violation.
void check_placement(const AssayGraph& graph, const Schedule& schedule,
                     const Placement& placement, const PlacerConfig& config);

}  // namespace biochip::cad
