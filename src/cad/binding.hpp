#pragma once
/// \file binding.hpp
/// \brief Module selection ("binding"): scheduling against a library of
/// heterogeneous mixer modules.
///
/// A processing operation can run on different module implementations — a
/// large 8×8-site region mixes faster (more parallel cage motion) than a
/// compact 4×4 one. Binding picks an implementation per operation while
/// scheduling under per-type availability, the classic area/latency trade of
/// high-level synthesis transplanted to the biochip (as the early DMFB
/// synthesis papers did).

#include <string>
#include <vector>

#include "cad/assay.hpp"
#include "cad/schedule.hpp"

namespace biochip::cad {

/// One module implementation option for processing ops.
struct ModuleType {
  std::string name;
  int side = 6;                  ///< region side [sites] (placement footprint)
  double duration_factor = 1.0;  ///< op duration multiplier (speed/area trade)
  int count = 1;                 ///< simultaneous instances available
};

/// The chip's module library. Applies to mix/split/incubate; detect and I/O
/// are bound implicitly (per-pixel sensors, edge ports).
struct ModuleLibrary {
  std::vector<ModuleType> types;
  int io_ports = 2;
};

/// Standard library: a couple of fast large mixers, several standard ones,
/// and many compact slow ones.
ModuleLibrary default_module_library();

/// Schedule with an explicit type choice per processing operation.
struct BoundSchedule {
  Schedule schedule;
  /// Module-type index per operation id; -1 for ops that need no module.
  std::vector<int> binding;
  double makespan = 0.0;
};

/// List scheduling with earliest-finish module selection: among free module
/// types, a ready operation takes the one minimizing its finish time;
/// ready ops are prioritized by critical path (computed with nominal
/// durations). Throws ConfigError if the library has no types.
BoundSchedule bind_list_schedule(const AssayGraph& graph, const ModuleLibrary& library);

/// Validate a bound schedule: durations scaled by the bound type, per-type
/// concurrency within counts, precedence respected. Throws on violation.
void check_bound_schedule(const AssayGraph& graph, const ModuleLibrary& library,
                          const BoundSchedule& bound);

}  // namespace biochip::cad
