#pragma once
/// \file route.hpp
/// \brief Collision-free multi-cage routing on the site grid.
///
/// Cages carry cells between modules. Per actuation step a cage moves one
/// site (4-neighbourhood) or stays; any two cages must keep Chebyshev
/// distance >= min_separation at *every* step or their traps merge (the
/// fluidic constraint of DMFB routing, adapted to DEP cages). Routers:
///  * `route_greedy` — each cage steps toward its target, stalling when
///    blocked; cheap, prone to gridlock (the baseline);
///  * `route_astar` — prioritized planning: time-expanded A* per cage
///    against a reservation table of previously committed paths.

#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace biochip::cad {

/// One cage transfer request (all requests start simultaneously at t=0).
struct RouteRequest {
  int id = 0;
  GridCoord from;
  GridCoord to;
};

/// Static obstacle (an active module region cages must not enter).
struct RouteObstacle {
  GridCoord origin;
  int width = 0;
  int height = 0;

  bool contains(GridCoord c) const {
    return c.col >= origin.col && c.col < origin.col + width && c.row >= origin.row &&
           c.row < origin.row + height;
  }
};

struct RouteConfig {
  int cols = 0;
  int rows = 0;
  int min_separation = 2;  ///< Chebyshev cage spacing
  int max_steps = 0;       ///< 0 = auto horizon
  std::vector<RouteObstacle> obstacles;
};

/// Per-cage routed path: position at each step t = 0..makespan (inclusive;
/// cages park at their destination once arrived).
struct RoutedPath {
  int id = 0;
  std::vector<GridCoord> waypoints;
};

struct RouteResult {
  bool success = false;
  int makespan_steps = 0;      ///< steps until the last cage arrives
  std::size_t total_moves = 0; ///< site-to-site moves (excludes stalls)
  std::vector<RoutedPath> paths;
  std::vector<int> failed_ids; ///< requests that could not be routed
};

RouteResult route_greedy(const std::vector<RouteRequest>& requests,
                         const RouteConfig& config);

RouteResult route_astar(const std::vector<RouteRequest>& requests,
                        const RouteConfig& config);

/// Verify a result against the constraints (endpoints, unit steps, pairwise
/// separation at every t, obstacle avoidance); throws on violation.
void verify_routes(const std::vector<RouteRequest>& requests, const RouteResult& result,
                   const RouteConfig& config);

}  // namespace biochip::cad
