#pragma once
/// \file route.hpp
/// \brief Collision-free multi-cage routing on the site grid.
///
/// Cages carry cells between modules. Per actuation step a cage moves one
/// site (4-neighbourhood) or stays; any two cages must keep Chebyshev
/// distance >= min_separation at *every* step or their traps merge (the
/// fluidic constraint of DMFB routing, adapted to DEP cages). Routers:
///  * `route_greedy` — each cage steps toward its target, stalling when
///    blocked; cheap, prone to gridlock (the baseline);
///  * `route_astar` — prioritized planning: time-expanded A* per cage
///    against a reservation table of previously committed paths.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace biochip::cad {

/// One cage transfer request (all requests start simultaneously at t=0).
struct RouteRequest {
  int id = 0;
  GridCoord from;
  GridCoord to;
};

/// Static obstacle (an active module region cages must not enter).
struct RouteObstacle {
  GridCoord origin;
  int width = 0;
  int height = 0;

  bool contains(GridCoord c) const {
    return c.col >= origin.col && c.col < origin.col + width && c.row >= origin.row &&
           c.row < origin.row + height;
  }
};

struct RouteConfig {
  int cols = 0;
  int rows = 0;
  int min_separation = 2;  ///< Chebyshev cage spacing
  int max_steps = 0;       ///< 0 = auto horizon
  std::vector<RouteObstacle> obstacles;
  /// Per-site blocked mask, row-major (row * cols + col); empty = nothing
  /// blocked. Built e.g. from `chip::blocked_site_mask` (defective sites a
  /// cage must never traverse — the trap cannot hold there). Both routers
  /// refuse to ENTER a blocked site: a path may start on one (the cage can
  /// leave), but a blocked destination makes the request unroutable.
  std::vector<std::uint8_t> blocked;

  bool is_blocked(GridCoord c) const {
    return !blocked.empty() &&
           blocked[static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols) +
                   static_cast<std::size_t>(c.col)] != 0;
  }
};

/// Per-cage routed path: position at each step t = start..start+makespan
/// (inclusive; cages park at their destination once arrived).
struct RoutedPath {
  int id = 0;
  std::vector<GridCoord> waypoints;
  /// Absolute step of `waypoints[0]`. Batch plans use 0; paths committed
  /// mid-run (hand-off admissions) or compacted by a streaming replanner
  /// carry the tick their first retained waypoint belongs to, so indefinite
  /// runs keep O(horizon) waypoints instead of O(elapsed ticks).
  int start = 0;

  /// Position at absolute step t, clamped into the waypoint range: a path
  /// holds its first waypoint before `start` and parks at its final waypoint
  /// forever after. This is THE parking rule every reservation-table check
  /// (planning, replanning, verification, execution) indexes time with —
  /// keep it single-sourced. An empty path has no position and returns {}.
  GridCoord position_at(int t) const {
    if (waypoints.empty()) return {};
    const int rel = t - start;
    std::size_t idx = static_cast<std::size_t>(rel < 0 ? 0 : rel);
    if (idx >= waypoints.size()) idx = waypoints.size() - 1;
    return waypoints[idx];
  }

  /// Last absolute step at which the path can still move.
  int last_step() const {
    return start + (waypoints.empty() ? 0 : static_cast<int>(waypoints.size()) - 1);
  }
};

struct RouteResult {
  bool success = false;
  int makespan_steps = 0;      ///< steps until the last cage arrives
  std::size_t total_moves = 0; ///< site-to-site moves (excludes stalls)
  std::vector<RoutedPath> paths;
  std::vector<int> failed_ids; ///< requests that could not be routed
};

RouteResult route_greedy(const std::vector<RouteRequest>& requests,
                         const RouteConfig& config);

RouteResult route_astar(const std::vector<RouteRequest>& requests,
                        const RouteConfig& config);

/// Incremental re-routing entry point for closed-loop supervision: plan ONE
/// cage through a reservation table of already-committed paths, starting at
/// absolute step `t0` (the cage sits at `request.from` at t0). `committed`
/// paths are indexed in the same absolute time frame (waypoint t of each
/// path is its position at step t; paths park at their last waypoint), so a
/// supervisor can keep every still-valid plan live and re-plan only the
/// deviating cage. Returns the new path as positions at t0, t0+1, ... (with
/// `start = t0`, so `position_at` works in the same absolute frame) or
/// nullopt when no conflict-free path exists within the horizon.
std::optional<RoutedPath> route_astar_reserved(const RouteRequest& request,
                                               const RouteConfig& config,
                                               const std::vector<RoutedPath>& committed,
                                               int t0);

/// Verify a result against the constraints (endpoints, unit steps, pairwise
/// separation at every t, obstacle avoidance); throws on violation.
void verify_routes(const std::vector<RouteRequest>& requests, const RouteResult& result,
                   const RouteConfig& config);

}  // namespace biochip::cad
