#include "cad/benchmarks.hpp"

#include "common/error.hpp"

namespace biochip::cad {

AssayGraph pcr_mix(int levels, const OpDurations& d) {
  BIOCHIP_REQUIRE(levels >= 1 && levels <= 10, "pcr_mix levels must be in [1,10]");
  AssayGraph g("pcr_mix_l" + std::to_string(levels));
  std::vector<int> frontier;
  const int inputs = 1 << levels;
  frontier.reserve(static_cast<std::size_t>(inputs));
  for (int i = 0; i < inputs; ++i)
    frontier.push_back(g.add(OpKind::kInput, {}, d.input, "reagent_" + std::to_string(i)));
  int level = 0;
  while (frontier.size() > 1) {
    ++level;
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2)
      next.push_back(g.add(OpKind::kMix, {frontier[i], frontier[i + 1]}, d.mix,
                           "mix_l" + std::to_string(level) + "_" + std::to_string(i / 2)));
    frontier = std::move(next);
  }
  g.add(OpKind::kOutput, {frontier.front()}, d.output, "pcr_product");
  g.validate();
  return g;
}

AssayGraph invitro_diagnostics(int samples, int reagents, const OpDurations& d) {
  BIOCHIP_REQUIRE(samples >= 1 && reagents >= 1, "need at least one sample and reagent");
  AssayGraph g("ivd_s" + std::to_string(samples) + "r" + std::to_string(reagents));
  // Each (sample, reagent) pair gets its own dispense pair: on a cell-array
  // chip a packet cannot fan out without a split, and IVD assays dispense
  // fresh aliquots per test.
  for (int s = 0; s < samples; ++s)
    for (int r = 0; r < reagents; ++r) {
      const std::string tag = "_s" + std::to_string(s) + "r" + std::to_string(r);
      const int in_s = g.add(OpKind::kInput, {}, d.input, "sample" + tag);
      const int in_r = g.add(OpKind::kInput, {}, d.input, "reagent" + tag);
      const int mix = g.add(OpKind::kMix, {in_s, in_r}, d.mix, "mix" + tag);
      const int inc = g.add(OpKind::kIncubate, {mix}, d.incubate, "incubate" + tag);
      const int det = g.add(OpKind::kDetect, {inc}, d.detect, "detect" + tag);
      g.add(OpKind::kOutput, {det}, d.output, "waste" + tag);
    }
  g.validate();
  return g;
}

AssayGraph serial_dilution(int stages, const OpDurations& d) {
  BIOCHIP_REQUIRE(stages >= 1 && stages <= 64, "stages must be in [1,64]");
  AssayGraph g("dilution_" + std::to_string(stages));
  int carry = g.add(OpKind::kInput, {}, d.input, "sample");
  for (int s = 0; s < stages; ++s) {
    const std::string tag = "_d" + std::to_string(s);
    const int buffer = g.add(OpKind::kInput, {}, d.input, "buffer" + tag);
    const int mix = g.add(OpKind::kMix, {carry, buffer}, d.mix, "mix" + tag);
    const int split = g.add(OpKind::kSplit, {mix}, d.split, "split" + tag);
    const int det = g.add(OpKind::kDetect, {split}, d.detect, "assay" + tag);
    g.add(OpKind::kOutput, {det}, d.output, "well" + tag);
    carry = split;  // second half continues down the ladder
  }
  g.add(OpKind::kOutput, {carry}, d.output, "residue");
  g.validate();
  return g;
}

AssayGraph dep_cell_sort(int cells, const OpDurations& d) {
  BIOCHIP_REQUIRE(cells >= 1 && cells <= 4096, "cells must be in [1,4096]");
  AssayGraph g("cell_sort_" + std::to_string(cells));
  for (int c = 0; c < cells; ++c) {
    const std::string tag = "_c" + std::to_string(c);
    const int in = g.add(OpKind::kInput, {}, d.input, "cell" + tag);
    const int det = g.add(OpKind::kDetect, {in}, d.detect, "classify" + tag);
    g.add(OpKind::kOutput, {det}, d.output, "sort" + tag);
  }
  g.validate();
  return g;
}

std::vector<AssayGraph> benchmark_suite() {
  return {pcr_mix(), invitro_diagnostics(), serial_dilution(), dep_cell_sort()};
}

}  // namespace biochip::cad
