#include "cad/route.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

GridCoord pos_at(const RoutedPath& path, int t) {
  if (path.waypoints.empty()) return {};
  const std::size_t idx =
      std::min(static_cast<std::size_t>(std::max(t, 0)), path.waypoints.size() - 1);
  return path.waypoints[idx];
}

int auto_horizon(const RouteConfig& config, std::size_t n_requests) {
  return 3 * (config.cols + config.rows) + 8 * static_cast<int>(n_requests) + 20;
}

bool in_bounds(const RouteConfig& config, GridCoord c) {
  return c.col >= 0 && c.col < config.cols && c.row >= 0 && c.row < config.rows;
}

bool hits_obstacle(const RouteConfig& config, GridCoord c) {
  for (const RouteObstacle& ob : config.obstacles)
    if (ob.contains(c)) return true;
  return false;
}

std::size_t count_moves(const RoutedPath& path) {
  std::size_t moves = 0;
  for (std::size_t t = 1; t < path.waypoints.size(); ++t)
    if (!(path.waypoints[t] == path.waypoints[t - 1])) ++moves;
  return moves;
}

void finalize(RouteResult& result) {
  result.makespan_steps = 0;
  result.total_moves = 0;
  for (const RoutedPath& p : result.paths) {
    result.makespan_steps =
        std::max(result.makespan_steps, static_cast<int>(p.waypoints.size()) - 1);
    result.total_moves += count_moves(p);
  }
}

}  // namespace

RouteResult route_greedy(const std::vector<RouteRequest>& requests,
                         const RouteConfig& config) {
  BIOCHIP_REQUIRE(config.cols >= 1 && config.rows >= 1, "routing grid must be non-empty");
  const int horizon = config.max_steps > 0 ? config.max_steps
                                           : auto_horizon(config, requests.size());
  const std::size_t n = requests.size();
  RouteResult result;
  result.paths.resize(n);
  std::vector<GridCoord> pos(n);
  std::vector<std::uint8_t> arrived(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = requests[i].from;
    result.paths[i] = {requests[i].id, {requests[i].from}};
    arrived[i] = (requests[i].from == requests[i].to) ? 1 : 0;
  }

  int stall_rounds = 0;
  for (int t = 0; t < horizon; ++t) {
    if (std::all_of(arrived.begin(), arrived.end(), [](auto a) { return a != 0; })) break;
    std::vector<GridCoord> next = pos;
    bool any_movement = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (arrived[i]) continue;
      // Candidate moves ordered by distance-to-target improvement; stay last.
      const GridCoord cur = pos[i];
      const GridCoord tgt = requests[i].to;
      std::vector<GridCoord> candidates = {{cur.col + 1, cur.row},
                                           {cur.col - 1, cur.row},
                                           {cur.col, cur.row + 1},
                                           {cur.col, cur.row - 1}};
      std::sort(candidates.begin(), candidates.end(), [&](GridCoord a, GridCoord b) {
        return manhattan(a, tgt) < manhattan(b, tgt);
      });
      candidates.push_back(cur);  // stalling is always a fallback
      for (const GridCoord cand : candidates) {
        if (!(cand == cur)) {
          if (manhattan(cand, tgt) >= manhattan(cur, tgt)) continue;  // no detours
          if (!in_bounds(config, cand) || hits_obstacle(config, cand)) continue;
        }
        bool clash = false;
        for (std::size_t j = 0; j < n && !clash; ++j) {
          if (j == i) continue;
          // Cages processed earlier this step are at next[j], later at pos[j].
          const GridCoord other = (j < i) ? next[j] : pos[j];
          if (chebyshev(cand, other) < config.min_separation) clash = true;
        }
        if (clash) continue;
        next[i] = cand;
        if (!(cand == cur)) any_movement = true;
        break;
      }
    }
    pos = next;
    for (std::size_t i = 0; i < n; ++i) {
      result.paths[i].waypoints.push_back(pos[i]);
      if (pos[i] == requests[i].to) arrived[i] = 1;
    }
    stall_rounds = any_movement ? 0 : stall_rounds + 1;
    if (stall_rounds >= 8) break;  // gridlock: nobody can improve
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!arrived[i]) result.failed_ids.push_back(requests[i].id);
    // Trim the parked tail so makespan reflects the true arrival.
    auto& wp = result.paths[i].waypoints;
    while (wp.size() >= 2 && wp.back() == wp[wp.size() - 2]) wp.pop_back();
  }
  result.success = result.failed_ids.empty();
  finalize(result);
  return result;
}

RouteResult route_astar(const std::vector<RouteRequest>& requests,
                        const RouteConfig& config) {
  BIOCHIP_REQUIRE(config.cols >= 1 && config.rows >= 1, "routing grid must be non-empty");
  const int horizon = config.max_steps > 0 ? config.max_steps
                                           : auto_horizon(config, requests.size());
  RouteResult result;
  result.paths.reserve(requests.size());

  // Prioritized planning: stationary (from==to) requests first — a parked
  // cage holds a cell and must not be evicted, so it becomes a standing
  // reservation that traffic plans around — then longest transfers first.
  auto rank = [&](const RouteRequest& r) {
    const int d = manhattan(r.from, r.to);
    return d == 0 ? std::numeric_limits<int>::max() : d;
  };
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int da = rank(requests[a]);
    const int db = rank(requests[b]);
    if (da != db) return da > db;
    return requests[a].id < requests[b].id;
  });

  // Prioritized planning: each cage avoids all previously committed paths.
  // Cages not yet planned are NOT treated as obstacles — they will, in turn,
  // plan around every committed path (including transiting near their own
  // start), which keeps swap/rotation instances solvable. The final
  // verify_routes() in callers guarantees global pairwise separation.
  auto conflicts = [&](GridCoord p, int t) {
    for (const RoutedPath& committed : result.paths)
      if (chebyshev(p, pos_at(committed, t)) < config.min_separation) return true;
    return false;
  };
  auto parking_ok = [&](GridCoord target, int t_arrive) {
    for (const RoutedPath& committed : result.paths) {
      const int last = static_cast<int>(committed.waypoints.size()) - 1;
      for (int t = t_arrive; t <= std::max(last, t_arrive); ++t)
        if (chebyshev(target, pos_at(committed, t)) < config.min_separation) return false;
    }
    return true;
  };

  struct Node {
    int f;
    int h;
    int t;
    GridCoord pos;
    std::size_t parent;  ///< index into the closed list
  };
  struct NodeCmp {
    bool operator()(const Node& a, const Node& b) const {
      if (a.f != b.f) return a.f > b.f;
      return a.h > b.h;
    }
  };

  for (std::size_t oi : order) {
    const RouteRequest& req = requests[oi];
    BIOCHIP_REQUIRE(in_bounds(config, req.from) && in_bounds(config, req.to),
                    "route endpoints outside the grid");

    std::priority_queue<Node, std::vector<Node>, NodeCmp> open;
    std::vector<Node> closed;
    std::unordered_set<long long> visited;
    auto key = [&](GridCoord p, int t) {
      return (static_cast<long long>(t) * config.rows + p.row) * config.cols + p.col;
    };

    const int h0 = manhattan(req.from, req.to);
    open.push({h0, h0, 0, req.from, static_cast<std::size_t>(-1)});
    bool found = false;
    std::size_t goal_index = 0;

    while (!open.empty()) {
      const Node node = open.top();
      open.pop();
      if (!visited.insert(key(node.pos, node.t)).second) continue;
      closed.push_back(node);
      const std::size_t my_index = closed.size() - 1;

      if (node.pos == req.to && parking_ok(req.to, node.t)) {
        found = true;
        goal_index = my_index;
        break;
      }
      if (node.t >= horizon) continue;
      const GridCoord cur = node.pos;
      const GridCoord moves[5] = {{cur.col, cur.row},
                                  {cur.col + 1, cur.row},
                                  {cur.col - 1, cur.row},
                                  {cur.col, cur.row + 1},
                                  {cur.col, cur.row - 1}};
      for (const GridCoord nxt : moves) {
        if (!in_bounds(config, nxt)) continue;
        if (hits_obstacle(config, nxt) && !(nxt == req.to) && !(nxt == req.from)) continue;
        const int nt = node.t + 1;
        if (visited.count(key(nxt, nt)) != 0) continue;
        if (conflicts(nxt, nt)) continue;
        const int h = manhattan(nxt, req.to);
        open.push({nt + h, h, nt, nxt, my_index});
      }
    }

    if (!found) {
      result.failed_ids.push_back(req.id);
      // Park the failed cage at its source so later plans still avoid it.
      result.paths.push_back({req.id, {req.from}});
      continue;
    }
    // Reconstruct.
    std::vector<GridCoord> rev;
    for (std::size_t idx = goal_index; idx != static_cast<std::size_t>(-1);
         idx = closed[idx].parent)
      rev.push_back(closed[idx].pos);
    std::reverse(rev.begin(), rev.end());
    result.paths.push_back({req.id, std::move(rev)});
  }

  // Restore request order in the output.
  std::sort(result.paths.begin(), result.paths.end(),
            [](const RoutedPath& a, const RoutedPath& b) { return a.id < b.id; });
  result.success = result.failed_ids.empty();
  finalize(result);
  return result;
}

void verify_routes(const std::vector<RouteRequest>& requests, const RouteResult& result,
                   const RouteConfig& config) {
  BIOCHIP_REQUIRE(result.paths.size() == requests.size(),
                  "route result does not cover all requests");
  auto path_for = [&](int id) -> const RoutedPath& {
    for (const RoutedPath& p : result.paths)
      if (p.id == id) return p;
    throw PreconditionError("missing path for request " + std::to_string(id));
  };
  auto failed = [&](int id) {
    return std::find(result.failed_ids.begin(), result.failed_ids.end(), id) !=
           result.failed_ids.end();
  };

  int horizon = 0;
  for (const RoutedPath& p : result.paths)
    horizon = std::max(horizon, static_cast<int>(p.waypoints.size()) - 1);

  for (const RouteRequest& req : requests) {
    const RoutedPath& p = path_for(req.id);
    BIOCHIP_REQUIRE(!p.waypoints.empty(), "empty path");
    BIOCHIP_REQUIRE(p.waypoints.front() == req.from, "path does not start at the source");
    if (!failed(req.id))
      BIOCHIP_REQUIRE(p.waypoints.back() == req.to, "path does not end at the target");
    for (std::size_t t = 1; t < p.waypoints.size(); ++t)
      BIOCHIP_REQUIRE(manhattan(p.waypoints[t], p.waypoints[t - 1]) <= 1,
                      "cage jumped more than one site");
    for (const GridCoord w : p.waypoints) {
      BIOCHIP_REQUIRE(in_bounds(config, w), "path leaves the grid");
      if (!(w == req.from) && !(w == req.to))
        BIOCHIP_REQUIRE(!hits_obstacle(config, w), "path crosses an active module");
    }
  }
  for (std::size_t a = 0; a < result.paths.size(); ++a)
    for (std::size_t b = a + 1; b < result.paths.size(); ++b)
      for (int t = 0; t <= horizon; ++t)
        BIOCHIP_REQUIRE(chebyshev(pos_at(result.paths[a], t), pos_at(result.paths[b], t)) >=
                            config.min_separation,
                        "cage separation violated at step " + std::to_string(t));
}

}  // namespace biochip::cad
