#include "cad/route.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

int auto_horizon(const RouteConfig& config, std::size_t n_requests) {
  return 3 * (config.cols + config.rows) + 8 * static_cast<int>(n_requests) + 20;
}

// Entry-point contract shared by every router: non-degenerate grid, and a
// blocked mask (when present) sized for it — is_blocked indexes the mask
// unchecked on the hot path.
void check_config(const RouteConfig& config) {
  BIOCHIP_REQUIRE(config.cols >= 1 && config.rows >= 1, "routing grid must be non-empty");
  BIOCHIP_REQUIRE(config.blocked.empty() ||
                      config.blocked.size() ==
                          static_cast<std::size_t>(config.cols) *
                              static_cast<std::size_t>(config.rows),
                  "blocked mask size does not match the routing grid");
}

bool in_bounds(const RouteConfig& config, GridCoord c) {
  return c.col >= 0 && c.col < config.cols && c.row >= 0 && c.row < config.rows;
}

bool hits_obstacle(const RouteConfig& config, GridCoord c) {
  for (const RouteObstacle& ob : config.obstacles)
    if (ob.contains(c)) return true;
  return false;
}

std::size_t count_moves(const RoutedPath& path) {
  std::size_t moves = 0;
  for (std::size_t t = 1; t < path.waypoints.size(); ++t)
    if (!(path.waypoints[t] == path.waypoints[t - 1])) ++moves;
  return moves;
}

void finalize(RouteResult& result) {
  result.makespan_steps = 0;
  result.total_moves = 0;
  for (const RoutedPath& p : result.paths) {
    result.makespan_steps =
        std::max(result.makespan_steps, static_cast<int>(p.waypoints.size()) - 1);
    result.total_moves += count_moves(p);
  }
}

}  // namespace

RouteResult route_greedy(const std::vector<RouteRequest>& requests,
                         const RouteConfig& config) {
  check_config(config);
  const int horizon = config.max_steps > 0 ? config.max_steps
                                           : auto_horizon(config, requests.size());
  const std::size_t n = requests.size();
  RouteResult result;
  result.paths.resize(n);
  std::vector<GridCoord> pos(n);
  std::vector<std::uint8_t> arrived(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = requests[i].from;
    result.paths[i] = {requests[i].id, {requests[i].from}};
    arrived[i] = (requests[i].from == requests[i].to) ? 1 : 0;
  }

  int stall_rounds = 0;
  for (int t = 0; t < horizon; ++t) {
    if (std::all_of(arrived.begin(), arrived.end(), [](auto a) { return a != 0; })) break;
    std::vector<GridCoord> next = pos;
    bool any_movement = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (arrived[i]) continue;
      // Candidate moves ordered by distance-to-target improvement; stay last.
      const GridCoord cur = pos[i];
      const GridCoord tgt = requests[i].to;
      std::vector<GridCoord> candidates = {{cur.col + 1, cur.row},
                                           {cur.col - 1, cur.row},
                                           {cur.col, cur.row + 1},
                                           {cur.col, cur.row - 1}};
      std::sort(candidates.begin(), candidates.end(), [&](GridCoord a, GridCoord b) {
        return manhattan(a, tgt) < manhattan(b, tgt);
      });
      candidates.push_back(cur);  // stalling is always a fallback
      for (const GridCoord cand : candidates) {
        if (!(cand == cur)) {
          if (manhattan(cand, tgt) >= manhattan(cur, tgt)) continue;  // no detours
          if (!in_bounds(config, cand) || hits_obstacle(config, cand)) continue;
          if (config.is_blocked(cand)) continue;  // never enter a defective site
        }
        bool clash = false;
        for (std::size_t j = 0; j < n && !clash; ++j) {
          if (j == i) continue;
          // Cages processed earlier this step are at next[j], later at pos[j].
          const GridCoord other = (j < i) ? next[j] : pos[j];
          if (chebyshev(cand, other) < config.min_separation) clash = true;
        }
        if (clash) continue;
        next[i] = cand;
        if (!(cand == cur)) any_movement = true;
        break;
      }
    }
    pos = next;
    for (std::size_t i = 0; i < n; ++i) {
      result.paths[i].waypoints.push_back(pos[i]);
      if (pos[i] == requests[i].to) arrived[i] = 1;
    }
    stall_rounds = any_movement ? 0 : stall_rounds + 1;
    if (stall_rounds >= 8) break;  // gridlock: nobody can improve
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!arrived[i]) result.failed_ids.push_back(requests[i].id);
    // Trim the parked tail so makespan reflects the true arrival.
    auto& wp = result.paths[i].waypoints;
    while (wp.size() >= 2 && wp.back() == wp[wp.size() - 2]) wp.pop_back();
  }
  result.success = result.failed_ids.empty();
  finalize(result);
  return result;
}

namespace {

// Time-expanded A* for ONE request against a set of committed paths, in an
// absolute time frame starting at `t0` (the cage sits at req.from at t0;
// committed paths park at their last waypoint). Returns the positions at
// t0, t0+1, ..., or nullopt when no conflict-free path reaches the target
// within `horizon` (an absolute step bound). Shared by the batch prioritized
// planner (t0 = 0) and the online replanner (route_astar_reserved).
// Static (time-free) reachability of req.to from req.from under the same
// obstacle/blocked passability rules as the time-expanded search. A relaxed
// superset of the real search space: if this says unreachable, so is every
// time-expanded path.
bool static_reachable(const RouteRequest& req, const RouteConfig& config) {
  if (req.from == req.to) return true;
  const auto idx = [&](GridCoord c) {
    return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(config.cols) +
           static_cast<std::size_t>(c.col);
  };
  const auto passable = [&](GridCoord c) {
    if (hits_obstacle(config, c) && !(c == req.to) && !(c == req.from)) return false;
    if (config.is_blocked(c) && !(c == req.from)) return false;
    return true;
  };
  std::vector<std::uint8_t> seen(
      static_cast<std::size_t>(config.cols) * static_cast<std::size_t>(config.rows), 0);
  std::vector<GridCoord> stack{req.from};
  seen[idx(req.from)] = 1;
  while (!stack.empty()) {
    const GridCoord cur = stack.back();
    stack.pop_back();
    const GridCoord nbs[4] = {{cur.col + 1, cur.row},
                              {cur.col - 1, cur.row},
                              {cur.col, cur.row + 1},
                              {cur.col, cur.row - 1}};
    for (const GridCoord nxt : nbs) {
      if (!in_bounds(config, nxt) || !passable(nxt)) continue;
      if (nxt == req.to) return true;
      if (seen[idx(nxt)]) continue;
      seen[idx(nxt)] = 1;
      stack.push_back(nxt);
    }
  }
  return false;
}

std::optional<std::vector<GridCoord>> plan_one(const RouteRequest& req,
                                               const RouteConfig& config,
                                               const std::vector<RoutedPath>& committed,
                                               int t0, int horizon) {
  BIOCHIP_REQUIRE(in_bounds(config, req.from) && in_bounds(config, req.to),
                  "route endpoints outside the grid");

  // Fast-fail prechecks: a hopeless request would otherwise exhaust the
  // whole (sites × horizon) time-expanded state space before reporting
  // failure — ruinous for a supervisor that retries replans online.
  //  * A committed path PARKED (its final waypoint, held forever) within the
  //    separation ring of the target makes parking permanently illegal; the
  //    check is exact, not heuristic.
  //  * Static unreachability (blocked/obstacle topology) implies
  //    time-expanded unreachability.
  for (const RoutedPath& c : committed)
    if (!c.waypoints.empty() &&
        chebyshev(c.waypoints.back(), req.to) < config.min_separation)
      return std::nullopt;
  if (!static_reachable(req, config)) return std::nullopt;

  // The planned cage avoids every committed path at every step. Cages not
  // yet planned are NOT treated as obstacles — they will, in turn, plan
  // around every committed path (including transiting near their own start),
  // which keeps swap/rotation instances solvable. The final verify_routes()
  // in callers guarantees global pairwise separation.
  auto conflicts = [&](GridCoord p, int t) {
    for (const RoutedPath& c : committed)
      if (chebyshev(p, c.position_at(t)) < config.min_separation) return true;
    return false;
  };
  auto parking_ok = [&](GridCoord target, int t_arrive) {
    for (const RoutedPath& c : committed) {
      const int last = c.last_step();
      for (int t = t_arrive; t <= std::max(last, t_arrive); ++t)
        if (chebyshev(target, c.position_at(t)) < config.min_separation) return false;
    }
    return true;
  };

  struct Node {
    int f;
    int h;
    int t;
    GridCoord pos;
    std::size_t parent;  ///< index into the closed list
  };
  struct NodeCmp {
    bool operator()(const Node& a, const Node& b) const {
      if (a.f != b.f) return a.f > b.f;
      return a.h > b.h;
    }
  };

  std::priority_queue<Node, std::vector<Node>, NodeCmp> open;
  std::vector<Node> closed;
  // det-ok: membership-only (insert/count, never iterated) — expansion order
  // comes from the priority queue's deterministic (f, h) tie-breaking, so the
  // hash layout cannot reach the returned path (pinned by
  // Route.AstarReservedRepeatedSearchesAreBitwiseIdentical).
  std::unordered_set<long long> visited;
  auto key = [&](GridCoord p, int t) {
    return (static_cast<long long>(t) * config.rows + p.row) * config.cols + p.col;
  };

  const int h0 = manhattan(req.from, req.to);
  open.push({t0 + h0, h0, t0, req.from, static_cast<std::size_t>(-1)});
  bool found = false;
  std::size_t goal_index = 0;

  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    if (!visited.insert(key(node.pos, node.t)).second) continue;
    closed.push_back(node);
    const std::size_t my_index = closed.size() - 1;

    if (node.pos == req.to && parking_ok(req.to, node.t)) {
      found = true;
      goal_index = my_index;
      break;
    }
    if (node.t >= horizon) continue;
    const GridCoord cur = node.pos;
    const GridCoord moves[5] = {{cur.col, cur.row},
                                {cur.col + 1, cur.row},
                                {cur.col - 1, cur.row},
                                {cur.col, cur.row + 1},
                                {cur.col, cur.row - 1}};
    for (const GridCoord nxt : moves) {
      if (!in_bounds(config, nxt)) continue;
      if (hits_obstacle(config, nxt) && !(nxt == req.to) && !(nxt == req.from)) continue;
      // Blocked (defective) sites are never entered — not even as endpoints;
      // a path may only sit on one it already starts from.
      if (config.is_blocked(nxt) && !(nxt == req.from)) continue;
      const int nt = node.t + 1;
      if (visited.count(key(nxt, nt)) != 0) continue;
      if (conflicts(nxt, nt)) continue;
      const int h = manhattan(nxt, req.to);
      open.push({nt + h, h, nt, nxt, my_index});
    }
  }

  if (!found) return std::nullopt;
  std::vector<GridCoord> rev;
  for (std::size_t idx = goal_index; idx != static_cast<std::size_t>(-1);
       idx = closed[idx].parent)
    rev.push_back(closed[idx].pos);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace

RouteResult route_astar(const std::vector<RouteRequest>& requests,
                        const RouteConfig& config) {
  check_config(config);
  const int horizon = config.max_steps > 0 ? config.max_steps
                                           : auto_horizon(config, requests.size());
  RouteResult result;
  result.paths.reserve(requests.size());

  // Prioritized planning: stationary (from==to) requests first — a parked
  // cage holds a cell and must not be evicted, so it becomes a standing
  // reservation that traffic plans around — then longest transfers first.
  auto rank = [&](const RouteRequest& r) {
    const int d = manhattan(r.from, r.to);
    return d == 0 ? std::numeric_limits<int>::max() : d;
  };
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int da = rank(requests[a]);
    const int db = rank(requests[b]);
    if (da != db) return da > db;
    return requests[a].id < requests[b].id;
  });

  for (std::size_t oi : order) {
    const RouteRequest& req = requests[oi];
    auto waypoints = plan_one(req, config, result.paths, 0, horizon);
    if (!waypoints) {
      result.failed_ids.push_back(req.id);
      // Park the failed cage at its source so later plans still avoid it.
      result.paths.push_back({req.id, {req.from}});
      continue;
    }
    result.paths.push_back({req.id, std::move(*waypoints)});
  }

  // Restore request order in the output.
  std::sort(result.paths.begin(), result.paths.end(),
            [](const RoutedPath& a, const RoutedPath& b) { return a.id < b.id; });
  result.success = result.failed_ids.empty();
  finalize(result);
  return result;
}

std::optional<RoutedPath> route_astar_reserved(const RouteRequest& request,
                                               const RouteConfig& config,
                                               const std::vector<RoutedPath>& committed,
                                               int t0) {
  check_config(config);
  BIOCHIP_REQUIRE(t0 >= 0, "reserved planning starts at a non-negative step");
  const int span = config.max_steps > 0 ? config.max_steps
                                        : auto_horizon(config, committed.size() + 1);
  auto waypoints = plan_one(request, config, committed, t0, t0 + span);
  if (!waypoints) return std::nullopt;
  return RoutedPath{request.id, std::move(*waypoints), t0};
}

void verify_routes(const std::vector<RouteRequest>& requests, const RouteResult& result,
                   const RouteConfig& config) {
  check_config(config);
  BIOCHIP_REQUIRE(result.paths.size() == requests.size(),
                  "route result does not cover all requests");
  auto path_for = [&](int id) -> const RoutedPath& {
    for (const RoutedPath& p : result.paths)
      if (p.id == id) return p;
    throw PreconditionError("missing path for request " + std::to_string(id));
  };
  auto failed = [&](int id) {
    return std::find(result.failed_ids.begin(), result.failed_ids.end(), id) !=
           result.failed_ids.end();
  };

  int horizon = 0;
  for (const RoutedPath& p : result.paths)
    horizon = std::max(horizon, static_cast<int>(p.waypoints.size()) - 1);

  for (const RouteRequest& req : requests) {
    const RoutedPath& p = path_for(req.id);
    BIOCHIP_REQUIRE(!p.waypoints.empty(), "empty path");
    BIOCHIP_REQUIRE(p.waypoints.front() == req.from, "path does not start at the source");
    if (!failed(req.id))
      BIOCHIP_REQUIRE(p.waypoints.back() == req.to, "path does not end at the target");
    for (std::size_t t = 1; t < p.waypoints.size(); ++t)
      BIOCHIP_REQUIRE(manhattan(p.waypoints[t], p.waypoints[t - 1]) <= 1,
                      "cage jumped more than one site");
    for (const GridCoord w : p.waypoints) {
      BIOCHIP_REQUIRE(in_bounds(config, w), "path leaves the grid");
      if (!(w == req.from) && !(w == req.to))
        BIOCHIP_REQUIRE(!hits_obstacle(config, w), "path crosses an active module");
      if (!(w == req.from))
        BIOCHIP_REQUIRE(!config.is_blocked(w), "path enters a blocked (defective) site");
    }
  }
  for (std::size_t a = 0; a < result.paths.size(); ++a)
    for (std::size_t b = a + 1; b < result.paths.size(); ++b)
      for (int t = 0; t <= horizon; ++t)
        BIOCHIP_REQUIRE(chebyshev(result.paths[a].position_at(t), result.paths[b].position_at(t)) >=
                            config.min_separation,
                        "cage separation violated at step " + std::to_string(t));
}

}  // namespace biochip::cad
