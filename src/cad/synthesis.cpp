#include "cad/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

/// Shift a coordinate until it is min_sep-clear of the ones already used in
/// the episode (packets sharing a module: split sources, mix destinations).
GridCoord deoverlap(GridCoord want, const std::vector<GridCoord>& used,
                    const SynthesisConfig& config) {
  GridCoord c = want;
  auto clashes = [&](GridCoord p) {
    for (const GridCoord u : used)
      if (chebyshev(p, u) < config.min_separation) return true;
    return false;
  };
  int attempt = 0;
  static constexpr GridCoord kOffsets[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  while (clashes(c)) {
    const GridCoord dir = kOffsets[attempt % 4];
    const int mag = config.min_separation * (attempt / 4 + 1);
    c = {want.col + dir.col * mag, want.row + dir.row * mag};
    c.col = std::clamp(c.col, 0, config.dims.cols - 1);
    c.row = std::clamp(c.row, 0, config.dims.rows - 1);
    if (++attempt > 64) break;  // give up; router will report the conflict
  }
  return c;
}

}  // namespace

SynthesisResult synthesize(const AssayGraph& graph, const SynthesisConfig& config) {
  graph.validate();
  SynthesisResult result;
  result.success = true;

  // 1. Schedule.
  result.schedule = config.list_scheduler ? list_schedule(graph, config.resources)
                                          : fifo_schedule(graph, config.resources);
  check_schedule(graph, result.schedule, config.resources);
  result.processing_makespan = result.schedule.makespan;

  // 2. Place.
  PlacerConfig pcfg{config.dims, config.module_size, config.halo};
  if (config.anneal_placement) {
    Rng rng(config.seed);
    result.placement = annealed_place(graph, result.schedule, pcfg, rng);
  } else {
    result.placement = greedy_place(graph, result.schedule, pcfg);
  }
  if (!result.placement.valid) {
    result.success = false;
    for (const std::string& s : result.placement.issues)
      result.issues.push_back("placement: " + s);
    return result;  // no geometry to route against
  }
  check_placement(graph, result.schedule, result.placement, pcfg);

  // 3. Route: group data edges into simultaneous-departure episodes.
  std::map<long long, std::vector<std::pair<int, int>>> by_departure;  // µs-quantized
  for (const Operation& o : graph.operations())
    for (int in : o.inputs) {
      const double depart = result.schedule.at(in).end;
      by_departure[static_cast<long long>(std::llround(depart * 1e6))].push_back(
          {in, o.id});
    }

  int next_transfer_id = 0;
  for (const auto& [quantized, edges] : by_departure) {
    TransferEpisode episode;
    episode.depart = static_cast<double>(quantized) * 1e-6;

    std::vector<GridCoord> used_sources, used_dests;
    for (const auto& [producer, consumer] : edges) {
      RouteRequest req;
      req.id = next_transfer_id++;
      req.from = deoverlap(result.placement.at(producer).center(), used_sources, config);
      req.to = deoverlap(result.placement.at(consumer).center(), used_dests, config);
      used_sources.push_back(req.from);
      used_dests.push_back(req.to);
      episode.transfers.push_back(req);
    }

    // Obstacles: modules of operations running at the departure instant that
    // are not endpoints of this episode.
    RouteConfig rcfg;
    rcfg.cols = config.dims.cols;
    rcfg.rows = config.dims.rows;
    rcfg.min_separation = config.min_separation;
    for (const Operation& o : graph.operations()) {
      const ScheduledOp& so = result.schedule.at(o.id);
      if (!(so.start < episode.depart - 1e-9 && so.end > episode.depart + 1e-9)) continue;
      bool endpoint = false;
      for (const auto& [producer, consumer] : edges)
        if (o.id == producer || o.id == consumer) endpoint = true;
      if (endpoint) continue;
      const PlacedModule& m = result.placement.at(o.id);
      rcfg.obstacles.push_back({m.origin, m.width, m.height});
    }

    episode.routes = config.astar_router ? route_astar(episode.transfers, rcfg)
                                         : route_greedy(episode.transfers, rcfg);
    if (!episode.routes.success) {
      result.success = false;
      result.issues.push_back("routing failed for " +
                              std::to_string(episode.routes.failed_ids.size()) +
                              " transfer(s) departing at t=" +
                              std::to_string(episode.depart));
    } else {
      verify_routes(episode.transfers, episode.routes, rcfg);
    }
    result.transport_steps += static_cast<std::size_t>(episode.routes.makespan_steps);
    result.transport_moves += episode.routes.total_moves;
    result.episodes.push_back(std::move(episode));
  }

  result.transport_time = static_cast<double>(result.transport_steps) * config.step_period;
  result.total_time = result.processing_makespan + result.transport_time;
  return result;
}

}  // namespace biochip::cad
