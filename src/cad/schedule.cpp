#include "cad/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

enum class ResourceClass { kMixer, kDetector, kIo };

ResourceClass resource_class(OpKind kind) {
  switch (kind) {
    case OpKind::kMix:
    case OpKind::kSplit:
    case OpKind::kIncubate: return ResourceClass::kMixer;
    case OpKind::kDetect: return ResourceClass::kDetector;
    case OpKind::kInput:
    case OpKind::kOutput: return ResourceClass::kIo;
  }
  return ResourceClass::kMixer;
}

int resource_limit(const ChipResources& r, ResourceClass c) {
  switch (c) {
    case ResourceClass::kMixer: return r.mixers;
    case ResourceClass::kDetector: return r.detectors;
    case ResourceClass::kIo: return r.io_ports;
  }
  return 0;
}

/// Longest path from each op (inclusive of its own duration) to any sink.
std::vector<double> downstream_weight(const AssayGraph& graph) {
  const auto& ops = graph.operations();
  std::vector<double> weight(ops.size(), 0.0);
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    double best = 0.0;
    for (int succ : graph.successors(it->id))
      best = std::max(best, weight[static_cast<std::size_t>(succ)]);
    weight[static_cast<std::size_t>(it->id)] = best + it->duration;
  }
  return weight;
}

/// Shared event-driven dispatcher; `priority` orders the ready queue
/// (higher first).
Schedule dispatch(const AssayGraph& graph, const ChipResources& resources,
                  const std::vector<double>& priority) {
  const auto& ops = graph.operations();
  const std::size_t n = ops.size();
  Schedule sched;
  sched.ops.resize(n);
  std::vector<std::uint8_t> done(n, 0), started(n, 0);
  std::vector<int> in_use{0, 0, 0};

  struct Running {
    int op;
    double end;
  };
  std::vector<Running> running;
  double now = 0.0;
  std::size_t finished = 0;

  auto ready = [&](const Operation& o) {
    if (started[static_cast<std::size_t>(o.id)]) return false;
    for (int in : o.inputs)
      if (!done[static_cast<std::size_t>(in)]) return false;
    return true;
  };

  while (finished < n) {
    // Start every ready op that can get its resource, best priority first.
    std::vector<int> queue;
    for (const Operation& o : ops)
      if (ready(o)) queue.push_back(o.id);
    std::sort(queue.begin(), queue.end(), [&](int a, int b) {
      const double pa = priority[static_cast<std::size_t>(a)];
      const double pb = priority[static_cast<std::size_t>(b)];
      if (pa != pb) return pa > pb;
      return a < b;
    });
    for (int id : queue) {
      const ResourceClass rc = resource_class(ops[static_cast<std::size_t>(id)].kind);
      const int limit = resource_limit(resources, rc);
      if (limit > 0 && in_use[static_cast<int>(rc)] >= limit) continue;
      ++in_use[static_cast<int>(rc)];
      started[static_cast<std::size_t>(id)] = 1;
      const double end = now + ops[static_cast<std::size_t>(id)].duration;
      sched.ops[static_cast<std::size_t>(id)] = {id, now, end};
      running.push_back({id, end});
    }
    BIOCHIP_REQUIRE(!running.empty(), "scheduler deadlock (no runnable operation)");
    // Advance to the earliest completion.
    double next = std::numeric_limits<double>::infinity();
    for (const Running& r : running) next = std::min(next, r.end);
    now = next;
    for (auto it = running.begin(); it != running.end();) {
      if (it->end <= now + 1e-12) {
        done[static_cast<std::size_t>(it->op)] = 1;
        const ResourceClass rc =
            resource_class(ops[static_cast<std::size_t>(it->op)].kind);
        --in_use[static_cast<int>(rc)];
        ++finished;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const ScheduledOp& so : sched.ops) sched.makespan = std::max(sched.makespan, so.end);
  return sched;
}

}  // namespace

const ScheduledOp& Schedule::at(int op_id) const {
  BIOCHIP_REQUIRE(op_id >= 0 && static_cast<std::size_t>(op_id) < ops.size(),
                  "unknown op id in schedule");
  return ops[static_cast<std::size_t>(op_id)];
}

Schedule asap_schedule(const AssayGraph& graph) {
  const auto& ops = graph.operations();
  Schedule sched;
  sched.ops.resize(ops.size());
  for (const Operation& o : ops) {
    double start = 0.0;
    for (int in : o.inputs)
      start = std::max(start, sched.ops[static_cast<std::size_t>(in)].end);
    sched.ops[static_cast<std::size_t>(o.id)] = {o.id, start, start + o.duration};
    sched.makespan = std::max(sched.makespan, start + o.duration);
  }
  return sched;
}

Schedule alap_schedule(const AssayGraph& graph, double deadline) {
  const double cp = graph.critical_path();
  BIOCHIP_REQUIRE(deadline + 1e-12 >= cp, "deadline shorter than the critical path");
  const auto& ops = graph.operations();
  Schedule sched;
  sched.ops.resize(ops.size());
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    double finish = deadline;
    for (int succ : graph.successors(it->id))
      finish = std::min(finish, sched.ops[static_cast<std::size_t>(succ)].start);
    sched.ops[static_cast<std::size_t>(it->id)] = {it->id, finish - it->duration, finish};
  }
  sched.makespan = deadline;
  return sched;
}

Schedule list_schedule(const AssayGraph& graph, const ChipResources& resources) {
  return dispatch(graph, resources, downstream_weight(graph));
}

Schedule fifo_schedule(const AssayGraph& graph, const ChipResources& resources) {
  // Priority = -id: strictly in submission order.
  std::vector<double> priority(graph.size());
  for (std::size_t i = 0; i < priority.size(); ++i)
    priority[i] = -static_cast<double>(i);
  return dispatch(graph, resources, priority);
}

void check_schedule(const AssayGraph& graph, const Schedule& schedule,
                    const ChipResources& resources) {
  const auto& ops = graph.operations();
  BIOCHIP_REQUIRE(schedule.ops.size() == ops.size(), "schedule is incomplete");
  for (const Operation& o : ops) {
    const ScheduledOp& so = schedule.at(o.id);
    BIOCHIP_REQUIRE(std::fabs((so.end - so.start) - o.duration) < 1e-9,
                    "scheduled duration mismatch for op " + o.label);
    for (int in : o.inputs)
      BIOCHIP_REQUIRE(schedule.at(in).end <= so.start + 1e-9,
                      "precedence violated at op " + o.label);
  }
  // Resource check: sweep start/end events per class.
  struct Event {
    double t;
    int delta;
    int cls;
  };
  std::vector<Event> events;
  for (const Operation& o : ops) {
    const ScheduledOp& so = schedule.at(o.id);
    const int cls = static_cast<int>(resource_class(o.kind));
    events.push_back({so.start, +1, cls});
    events.push_back({so.end, -1, cls});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // process releases before acquisitions
  });
  int use[3] = {0, 0, 0};
  const int limits[3] = {resources.mixers, resources.detectors, resources.io_ports};
  for (const Event& e : events) {
    use[e.cls] += e.delta;
    if (limits[e.cls] > 0)
      BIOCHIP_REQUIRE(use[e.cls] <= limits[e.cls], "resource limit exceeded");
  }
}

}  // namespace biochip::cad
