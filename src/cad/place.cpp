#include "cad/place.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace biochip::cad {

namespace {

bool is_port_op(OpKind kind) { return kind == OpKind::kInput || kind == OpKind::kOutput; }

/// Port site for the i-th input (west edge) or output (east edge).
GridCoord port_site(const ArrayDims& dims, OpKind kind, int ordinal) {
  const int usable = std::max(dims.rows - 2, 1);
  const int row = 1 + (ordinal * 5) % usable;  // spread ports down the edge
  return kind == OpKind::kInput ? GridCoord{0, row} : GridCoord{dims.cols - 1, row};
}

bool intervals_overlap(const ScheduledOp& a, const ScheduledOp& b) {
  return a.start < b.end - 1e-12 && b.start < a.end - 1e-12;
}

bool modules_clash(const PlacedModule& a, const PlacedModule& b, int halo) {
  // Expand a by halo and test rectangle overlap in site coordinates.
  const int ax0 = a.origin.col - halo, ay0 = a.origin.row - halo;
  const int ax1 = a.origin.col + a.width + halo, ay1 = a.origin.row + a.height + halo;
  return ax0 < b.origin.col + b.width && b.origin.col < ax1 &&
         ay0 < b.origin.row + b.height && b.origin.row < ay1;
}

bool in_bounds(const PlacedModule& m, const ArrayDims& dims) {
  return m.origin.col >= 0 && m.origin.row >= 0 && m.origin.col + m.width <= dims.cols &&
         m.origin.row + m.height <= dims.rows;
}

/// All ops whose scheduled interval overlaps `op` and that are already placed.
std::vector<int> concurrent_placed(const AssayGraph& graph, const Schedule& schedule,
                                   const Placement& placement, int op_id) {
  std::vector<int> out;
  for (const Operation& o : graph.operations()) {
    if (o.id == op_id) continue;
    if (!placement.modules[static_cast<std::size_t>(o.id)].has_value()) continue;
    if (intervals_overlap(schedule.at(op_id), schedule.at(o.id))) out.push_back(o.id);
  }
  return out;
}

bool legal_at(const AssayGraph& graph, const Schedule& schedule, const Placement& placement,
              const PlacerConfig& config, const PlacedModule& cand) {
  if (!in_bounds(cand, config.dims)) return false;
  for (int other : concurrent_placed(graph, schedule, placement, cand.op)) {
    const PlacedModule& m = *placement.modules[static_cast<std::size_t>(other)];
    const bool either_port =
        is_port_op(graph.op(cand.op).kind) || is_port_op(graph.op(other).kind);
    // Ports are single sites on the boundary; they only need non-identity.
    if (either_port) {
      if (modules_clash(cand, m, 0)) return false;
    } else if (modules_clash(cand, m, config.halo)) {
      return false;
    }
  }
  return true;
}

GridCoord producer_centroid(const AssayGraph& graph, const Placement& placement, int op_id,
                            const ArrayDims& dims) {
  const Operation& o = graph.op(op_id);
  long sum_c = 0, sum_r = 0;
  int n = 0;
  for (int in : o.inputs) {
    if (!placement.modules[static_cast<std::size_t>(in)].has_value()) continue;
    const GridCoord c = placement.modules[static_cast<std::size_t>(in)]->center();
    sum_c += c.col;
    sum_r += c.row;
    ++n;
  }
  if (n == 0) return {dims.cols / 2, dims.rows / 2};
  return {static_cast<int>(sum_c / n), static_cast<int>(sum_r / n)};
}

}  // namespace

const PlacedModule& Placement::at(int op_id) const {
  BIOCHIP_REQUIRE(op_id >= 0 && static_cast<std::size_t>(op_id) < modules.size() &&
                      modules[static_cast<std::size_t>(op_id)].has_value(),
                  "operation has no placed module");
  return *modules[static_cast<std::size_t>(op_id)];
}

Placement greedy_place(const AssayGraph& graph, const Schedule& schedule,
                       const PlacerConfig& config) {
  BIOCHIP_REQUIRE(config.dims.cols >= config.module_size + 2 &&
                      config.dims.rows >= config.module_size + 2,
                  "array too small for the module size");
  Placement placement;
  placement.modules.resize(graph.size());
  placement.valid = true;

  // Place in schedule-start order (ports get fixed edge sites).
  std::vector<int> order(graph.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = schedule.at(a).start, sb = schedule.at(b).start;
    if (sa != sb) return sa < sb;
    return a < b;
  });

  int input_ordinal = 0, output_ordinal = 0;
  for (int id : order) {
    const Operation& o = graph.op(id);
    if (is_port_op(o.kind)) {
      // Try successive port sites until one is free in this time window.
      for (int attempt = 0; attempt < config.dims.rows; ++attempt) {
        const int ordinal =
            (o.kind == OpKind::kInput ? input_ordinal : output_ordinal) + attempt;
        const PlacedModule cand{id, port_site(config.dims, o.kind, ordinal), 1, 1};
        if (legal_at(graph, schedule, placement, config, cand)) {
          placement.modules[static_cast<std::size_t>(id)] = cand;
          (o.kind == OpKind::kInput ? input_ordinal : output_ordinal) = ordinal + 1;
          break;
        }
      }
      if (!placement.modules[static_cast<std::size_t>(id)].has_value()) {
        placement.valid = false;
        placement.issues.push_back("no free port for op " + o.label);
      }
      continue;
    }
    // Processing module: spiral outward from the producer centroid.
    const GridCoord want = producer_centroid(graph, placement, id, config.dims);
    const int s = config.module_size;
    bool placed = false;
    const int max_radius = std::max(config.dims.cols, config.dims.rows);
    for (int radius = 0; radius <= max_radius && !placed; ++radius) {
      for (int dr = -radius; dr <= radius && !placed; ++dr) {
        for (int dc = -radius; dc <= radius && !placed; ++dc) {
          if (std::max(std::abs(dc), std::abs(dr)) != radius) continue;  // ring only
          const PlacedModule cand{
              id, {want.col - s / 2 + dc, want.row - s / 2 + dr}, s, s};
          if (legal_at(graph, schedule, placement, config, cand)) {
            placement.modules[static_cast<std::size_t>(id)] = cand;
            placed = true;
          }
        }
      }
    }
    if (!placed) {
      placement.valid = false;
      placement.issues.push_back("no legal region for op " + o.label);
    }
  }
  return placement;
}

Placement annealed_place(const AssayGraph& graph, const Schedule& schedule,
                         const PlacerConfig& config, Rng& rng, std::size_t iterations) {
  Placement best = greedy_place(graph, schedule, config);
  if (!best.valid) return best;

  Placement current = best;
  double current_cost = transport_cost(graph, current);
  double best_cost = current_cost;
  double temperature = std::max(current_cost * 0.2, 1.0);
  const double cooling = std::pow(0.01 / temperature, 1.0 / static_cast<double>(iterations));

  // Collect movable (non-port) ops.
  std::vector<int> movable;
  for (const Operation& o : graph.operations())
    if (!is_port_op(o.kind)) movable.push_back(o.id);
  if (movable.empty()) return best;

  for (std::size_t it = 0; it < iterations; ++it, temperature *= cooling) {
    const int id = movable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(movable.size()) - 1))];
    const PlacedModule old = current.at(id);
    PlacedModule cand = old;
    cand.origin = {static_cast<int>(rng.uniform_int(0, config.dims.cols - cand.width)),
                   static_cast<int>(rng.uniform_int(0, config.dims.rows - cand.height))};
    current.modules[static_cast<std::size_t>(id)].reset();
    const bool ok = legal_at(graph, schedule, current, config, cand);
    current.modules[static_cast<std::size_t>(id)] = ok ? cand : old;
    if (!ok) continue;
    const double cost = transport_cost(graph, current);
    const double delta = cost - current_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      current_cost = cost;
      if (cost < best_cost) {
        best = current;
        best_cost = cost;
      }
    } else {
      current.modules[static_cast<std::size_t>(id)] = old;  // revert
    }
  }
  return best;
}

double transport_cost(const AssayGraph& graph, const Placement& placement) {
  double cost = 0.0;
  for (const Operation& o : graph.operations())
    for (int in : o.inputs) {
      if (!placement.modules[static_cast<std::size_t>(o.id)].has_value() ||
          !placement.modules[static_cast<std::size_t>(in)].has_value())
        continue;
      cost += manhattan(placement.at(in).center(), placement.at(o.id).center());
    }
  return cost;
}

void check_placement(const AssayGraph& graph, const Schedule& schedule,
                     const Placement& placement, const PlacerConfig& config) {
  BIOCHIP_REQUIRE(placement.modules.size() == graph.size(), "placement size mismatch");
  for (const Operation& o : graph.operations()) {
    const PlacedModule& m = placement.at(o.id);
    BIOCHIP_REQUIRE(in_bounds(m, config.dims), "module out of bounds for op " + o.label);
  }
  for (const Operation& a : graph.operations())
    for (const Operation& b : graph.operations()) {
      if (a.id >= b.id) continue;
      if (!intervals_overlap(schedule.at(a.id), schedule.at(b.id))) continue;
      const bool either_port = is_port_op(a.kind) || is_port_op(b.kind);
      const int halo = either_port ? 0 : config.halo;
      BIOCHIP_REQUIRE(!modules_clash(placement.at(a.id), placement.at(b.id), halo),
                      "concurrent modules overlap: " + a.label + " / " + b.label);
    }
}

}  // namespace biochip::cad
