#include "cad/assay.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::cad {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kMix: return "mix";
    case OpKind::kSplit: return "split";
    case OpKind::kIncubate: return "incubate";
    case OpKind::kDetect: return "detect";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

int expected_inputs(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return 0;
    case OpKind::kMix: return 2;
    case OpKind::kSplit:
    case OpKind::kIncubate:
    case OpKind::kDetect:
    case OpKind::kOutput: return 1;
  }
  return 0;
}

int max_outputs(OpKind kind) {
  switch (kind) {
    case OpKind::kOutput: return 0;
    case OpKind::kSplit: return 2;
    case OpKind::kInput:
    case OpKind::kMix:
    case OpKind::kIncubate:
    case OpKind::kDetect: return 1;
  }
  return 0;
}

AssayGraph::AssayGraph(std::string name) : name_(std::move(name)) {}

const Operation& AssayGraph::op(int id) const {
  BIOCHIP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < ops_.size(),
                  "unknown operation id");
  return ops_[static_cast<std::size_t>(id)];
}

int AssayGraph::add(OpKind kind, std::vector<int> inputs, double duration,
                    const std::string& label) {
  const int id = static_cast<int>(ops_.size());
  for (int in : inputs)
    BIOCHIP_REQUIRE(in >= 0 && in < id, "operation input must reference an earlier op");
  BIOCHIP_REQUIRE(duration >= 0.0, "operation duration must be non-negative");
  Operation op;
  op.id = id;
  op.kind = kind;
  op.label = label.empty() ? std::string(to_string(kind)) + "_" + std::to_string(id) : label;
  op.duration = duration;
  op.inputs = std::move(inputs);
  ops_.push_back(std::move(op));
  return id;
}

std::vector<int> AssayGraph::successors(int id) const {
  op(id);  // bounds check
  std::vector<int> out;
  for (const Operation& o : ops_)
    if (std::find(o.inputs.begin(), o.inputs.end(), id) != o.inputs.end())
      out.push_back(o.id);
  return out;
}

void AssayGraph::validate() const {
  if (ops_.empty()) throw ConfigError("assay '" + name_ + "' is empty");
  for (const Operation& o : ops_) {
    const int want = expected_inputs(o.kind);
    if (static_cast<int>(o.inputs.size()) != want)
      throw ConfigError("op '" + o.label + "' needs " + std::to_string(want) +
                        " inputs, has " + std::to_string(o.inputs.size()));
    const int max_out = max_outputs(o.kind);
    const std::size_t succ = successors(o.id).size();
    if (max_out >= 0 && o.kind == OpKind::kOutput && succ != 0)
      throw ConfigError("output op '" + o.label + "' must be terminal");
    if (o.kind == OpKind::kSplit && succ > 2)
      throw ConfigError("split op '" + o.label + "' feeds more than two consumers");
    if (o.kind != OpKind::kOutput && o.kind != OpKind::kSplit && succ > 1)
      throw ConfigError("op '" + o.label + "' fans out more than once (insert split)");
    if (o.kind != OpKind::kOutput && o.kind != OpKind::kDetect && succ == 0)
      throw ConfigError("non-terminal op '" + o.label + "' has no consumer");
  }
}

std::vector<int> AssayGraph::topo_order() const {
  std::vector<int> order(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) order[i] = static_cast<int>(i);
  return order;  // ids are appended in dependency order by construction
}

double AssayGraph::critical_path() const {
  std::vector<double> finish(ops_.size(), 0.0);
  double best = 0.0;
  for (const Operation& o : ops_) {
    double start = 0.0;
    for (int in : o.inputs)
      start = std::max(start, finish[static_cast<std::size_t>(in)]);
    finish[static_cast<std::size_t>(o.id)] = start + o.duration;
    best = std::max(best, finish[static_cast<std::size_t>(o.id)]);
  }
  return best;
}

std::size_t AssayGraph::count(OpKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [kind](const Operation& o) { return o.kind == kind; }));
}

}  // namespace biochip::cad
