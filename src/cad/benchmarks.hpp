#pragma once
/// \file benchmarks.hpp
/// \brief Reconstructed benchmark assays.
///
/// The paper ships no benchmarks (nothing did, in 2005's "Wild West"); these
/// are reconstructions of the de-facto standard suites used by the early
/// DMFB CAD literature, plus DEP-array-native single-cell workloads:
///  * PCR mix stage — balanced binary mixing tree (8 reagents, 7 mixes);
///  * in-vitro diagnostics — S samples × R reagents, mix+detect per pair;
///  * interpolating serial dilution — mix/split chain to a target count;
///  * DEP cell sort — detect-then-route single-cell triage (this chip's
///    native workload).
/// Default durations are literature-typical module times.

#include <vector>

#include "cad/assay.hpp"

namespace biochip::cad {

/// Default operation durations [s].
struct OpDurations {
  double input = 2.0;
  double mix = 10.0;
  double split = 4.0;
  double incubate = 30.0;
  double detect = 5.0;
  double output = 2.0;
};

/// PCR mixing stage: 2^levels reagent inputs merged down a balanced binary
/// tree (levels=3 gives the classic 8-input / 7-mix PCR benchmark).
AssayGraph pcr_mix(int levels = 3, const OpDurations& d = {});

/// In-vitro diagnostics: every sample is mixed with every reagent, the
/// product incubated, detected, and sent to waste.
AssayGraph invitro_diagnostics(int samples = 3, int reagents = 3,
                               const OpDurations& d = {});

/// Interpolating serial dilution: repeatedly mix sample with buffer and
/// split, producing `stages` dilution levels (detect at each level).
AssayGraph serial_dilution(int stages = 7, const OpDurations& d = {});

/// DEP-array single-cell triage: `cells` cells are loaded, detected
/// (viability), and routed to one of two outputs.
AssayGraph dep_cell_sort(int cells = 8, const OpDurations& d = {});

/// The whole suite with default parameters (for parameterized tests/benches).
std::vector<AssayGraph> benchmark_suite();

}  // namespace biochip::cad
