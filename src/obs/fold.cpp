#include "obs/fold.hpp"

#include <string>

#include "core/threadpool.hpp"
#include "field/solver.hpp"

namespace biochip::obs {

void fold_admission(MetricsRegistry& registry,
                    const control::AdmissionStats& stats) {
  registry.set_counter(registry.counter("admission.offered"), stats.offered);
  registry.set_counter(registry.counter("admission.shed"), stats.shed);
  registry.set_counter(registry.counter("admission.deferrals"), stats.deferrals);
  registry.set_counter(registry.counter("admission.admitted"), stats.admitted);
  registry.set_counter(registry.counter("admission.queue_wait_ticks"),
                       stats.queue_wait_ticks);
}

MetricId event_metric(MetricsRegistry& registry, int chamber,
                      control::EventKind kind) {
  return registry.counter(std::string("event.") + control::to_string(kind),
                          chamber);
}

void fold_events(MetricsRegistry& registry, int chamber,
                 const std::vector<control::ControlEvent>& events) {
  for (const control::ControlEvent& e : events)
    registry.inc(event_metric(registry, chamber, e.kind));
}

void fold_health(MetricsRegistry& registry, int chamber,
                 control::HealthState state) {
  registry.set(registry.gauge("health.state", chamber),
               static_cast<std::int64_t>(state));
}

void fold_solver(MetricsRegistry& registry,
                 const field::SolveAccounting& accounting) {
  registry.set_counter(registry.counter("solver.solves"), accounting.solves);
  registry.set_counter(registry.counter("solver.cycles"), accounting.cycles);
  registry.set_counter(registry.counter("solver.sweeps"),
                       accounting.total_sweeps);
  registry.set_real(registry.real_gauge("solver.fe_sweeps"),
                    accounting.fine_equiv_sweeps);
  registry.set_real(registry.real_gauge("solver.final_residual"),
                    accounting.last_residual);
  // Incremental (dirty-region) path: windowed corrections vs full solves,
  // and the mean window-volume fraction of the windowed ones.
  registry.set_counter(registry.counter("solver.window_solves"),
                       accounting.window_solves);
  registry.set_real(registry.real_gauge("solver.window_fraction"),
                    accounting.window_solves > 0
                        ? accounting.window_fraction_sum /
                              static_cast<double>(accounting.window_solves)
                        : 0.0);
}

void fold_pool(MetricsRegistry& registry, const core::PoolStats& delta) {
  registry.set_counter(
      registry.counter("pool.jobs", -1, Plane::kExecution), delta.jobs);
  registry.set_counter(
      registry.counter("pool.chunks", -1, Plane::kExecution), delta.chunks);
  registry.set(registry.gauge("pool.max_parts", -1, Plane::kExecution),
               static_cast<std::int64_t>(delta.max_parts));
}

}  // namespace biochip::obs
