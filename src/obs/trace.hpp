#pragma once
/// \file trace.hpp
/// \brief Timing-plane telemetry: scoped phase spans into a bounded ring
/// buffer, exported as Chrome-trace JSON.
///
/// The timing plane answers "where did this tick's wall time go" — sense /
/// track / plan / actuate / arbitrate / admit phases per tick, per chamber.
/// It is **explicitly nondeterministic** (docs/observability.md): spans read
/// the wall clock through the `obs/clock.hpp` shim and never feed back into
/// simulation state, so enabling tracing cannot perturb the counting plane
/// or the bitwise identity contract.
///
/// Memory contract: the recorder is a fixed-capacity ring — a 200k-tick soak
/// holds the same span memory as a smoke run; older spans are overwritten
/// and counted (`dropped()`), never accumulated.
///
/// Thread safety: `record` takes a mutex — chamber ticks on worker threads
/// may record concurrently. The lock is on the nondeterministic plane only;
/// null-recorder paths (`ObsConfig` disabled) never touch clock or lock.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/clock.hpp"

namespace biochip::obs {

/// One completed phase span. `name` must point at a string literal (static
/// storage) — spans are recorded from hot paths and never own memory.
struct TraceSpan {
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< monotonic_ns at phase entry
  std::uint64_t dur_ns = 0;
  std::int32_t lane = -1;  ///< chamber index; -1 = the serial driver
  std::int32_t tick = 0;
};

/// Bounded ring buffer of spans + Chrome-trace exporter.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = std::size_t{1} << 16);

  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
              int lane, int tick);

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (>= spans().size()).
  std::uint64_t recorded() const;
  /// Spans lost to ring overwrite (= recorded - capacity when saturated).
  std::uint64_t dropped() const;
  /// Chronological copy of the retained spans (oldest first).
  std::vector<TraceSpan> spans() const;

  /// Chrome-trace / Perfetto JSON (`chrome://tracing`, `ui.perfetto.dev`):
  /// one complete ("ph":"X") event per span, lanes mapped to tids,
  /// timestamps in microseconds relative to the earliest retained span.
  void write_chrome_trace(std::ostream& os) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex m_;
  std::vector<TraceSpan> ring_;
  std::uint64_t total_ = 0;  ///< spans ever recorded; ring slot = total % cap
};

/// RAII span: times the enclosing scope. Null recorder = true no-op (no
/// clock read, no lock).
class PhaseSpan {
 public:
  PhaseSpan(TraceRecorder* recorder, const char* name, int lane, int tick)
      : recorder_(recorder), name_(name), lane_(lane), tick_(tick),
        start_ns_(recorder != nullptr ? monotonic_ns() : 0) {}
  ~PhaseSpan() {
    if (recorder_ != nullptr)
      recorder_->record(name_, start_ns_, monotonic_ns(), lane_, tick_);
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  int lane_;
  int tick_;
  std::uint64_t start_ns_;
};

/// Sequential phase timer for straight-line code: `begin("a") ... begin("b")`
/// closes span "a" and opens "b"; the destructor (or `end()`) closes the
/// last. Avoids restructuring long tick bodies into nested scopes.
class PhaseTicker {
 public:
  PhaseTicker(TraceRecorder* recorder, int lane, int tick)
      : recorder_(recorder), lane_(lane), tick_(tick) {}
  ~PhaseTicker() { end(); }
  PhaseTicker(const PhaseTicker&) = delete;
  PhaseTicker& operator=(const PhaseTicker&) = delete;

  void begin(const char* name) {
    if (recorder_ == nullptr) return;
    const std::uint64_t now = monotonic_ns();
    if (open_ != nullptr) recorder_->record(open_, start_ns_, now, lane_, tick_);
    open_ = name;
    start_ns_ = now;
  }
  void end() {
    if (recorder_ == nullptr || open_ == nullptr) return;
    recorder_->record(open_, start_ns_, monotonic_ns(), lane_, tick_);
    open_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  int lane_;
  int tick_;
  const char* open_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace biochip::obs
