#pragma once
/// \file fold.hpp
/// \brief Fold adapters: existing deterministic state → counting-plane
/// metrics.
///
/// The control stack already maintains exact, serial-vs-pooled-identical
/// accounting (`AdmissionStats`, drained `ControlEvent` streams,
/// `HealthMonitor` rungs, `SolveStats`). These adapters fold that state into
/// a `MetricsRegistry` instead of instrumenting hot paths twice — the
/// registry mirrors the sums the identity suites already pin, which is what
/// makes the accounting-closure cross-checks in tests/test_obs.cpp exact
/// (registry totals == report totals, not approximately).
///
/// Callers run every fold in a serial driver section; the adapters are not
/// thread-safe by design (docs/observability.md, "Counting plane").

#include <cstddef>
#include <vector>

#include "control/admission.hpp"
#include "control/events.hpp"
#include "control/health.hpp"
#include "obs/metrics.hpp"

namespace biochip::core {
struct PoolStats;
}
namespace biochip::field {
struct SolveAccounting;
}

namespace biochip::obs {

/// Absolute fold of the admission totals (idempotent per tick):
/// admission.{offered,shed,deferrals,admitted,queue_wait_ticks}.
void fold_admission(MetricsRegistry& registry,
                    const control::AdmissionStats& stats);

/// Pre-register (or look up) the per-chamber counter of one event kind:
/// `event.<slug>` at index `chamber`. Registering all kinds up front keeps
/// the snapshot shape identical whether or not a kind ever fires.
MetricId event_metric(MetricsRegistry& registry, int chamber,
                      control::EventKind kind);

/// Increment per-kind counters for a drained event batch of one chamber.
void fold_events(MetricsRegistry& registry, int chamber,
                 const std::vector<control::ControlEvent>& events);

/// Gauge `health.state` at index `chamber` (0 normal / 1 degraded /
/// 2 quarantined — the ladder rung as an integer).
void fold_health(MetricsRegistry& registry, int chamber,
                 control::HealthState state);

/// Solver accounting (MultigridWorkspace cumulative counters):
/// solver.{solves,cycles,sweeps}, solver.fe_sweeps (real),
/// solver.final_residual (real, last solve), plus the incremental
/// dirty-region path: solver.window_solves (counter) and
/// solver.window_fraction (real, mean window volume / grid volume). Values
/// reconcile exactly with summed `SolveStats` — the bench counters' source
/// of truth.
void fold_solver(MetricsRegistry& registry,
                 const field::SolveAccounting& accounting);

/// Execution-plane fold of a thread-pool stats delta:
/// pool.{jobs,chunks} counters + pool.max_parts gauge. Tagged
/// `Plane::kExecution` — a serial run dispatches no jobs, so these are
/// exempt from the serial-vs-pooled identity contract by construction.
void fold_pool(MetricsRegistry& registry, const core::PoolStats& delta);

}  // namespace biochip::obs
