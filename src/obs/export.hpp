#pragma once
/// \file export.hpp
/// \brief Counting-plane exporters: schema-versioned JSONL snapshots and a
/// BENCH_*.json-convention summary.
///
/// Two formats (schemas in docs/observability.md):
///
///  * **JSONL snapshots** — one self-contained JSON object per line,
///    `{"schema":"biochip.metrics.v1","tick":T,"metrics":[...]}`. Appending
///    a line allocates nothing that scales with the horizon, so a 200k-tick
///    soak can snapshot periodically with flat memory; downstream tooling
///    (`tools/check_obs.py`) streams the file line by line.
///  * **summary JSON** — the final snapshot in the `BENCH_*.json` convention
///    (a "context" object plus a flat array of named entries), so the same
///    scripts that diff bench trajectories can diff telemetry summaries.
///
/// Exported values are exact: counters and histogram buckets print as
/// integers, real gauges with max_digits10 round-trip precision.

#include <ostream>
#include <string_view>

#include "obs/metrics.hpp"

namespace biochip::obs {

/// One JSONL line (newline-terminated) holding the full snapshot.
void write_snapshot_jsonl(std::ostream& os, const MetricsSnapshot& snapshot);

/// BENCH-convention summary: {"context": {...}, "metrics": [...]}. `label`
/// names the run (mirrors google-benchmark's per-entry "name" keys).
void write_summary_json(std::ostream& os, const MetricsSnapshot& snapshot,
                        std::string_view label);

}  // namespace biochip::obs
