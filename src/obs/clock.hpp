#pragma once
/// \file clock.hpp
/// \brief The ONE wall-clock read in the library: the timing plane's shim.
///
/// The determinism contract (docs/architecture.md) bans clock reads from
/// src/ — timing-dependent behavior cannot be bitwise-reproduced — and
/// `tools/check_determinism.py` enforces the ban statically. The timing
/// plane of the observability layer (trace.hpp) is the single, explicit
/// exception: phase spans measure where wall time went, which is
/// *definitionally* nondeterministic, and nothing downstream of a span ever
/// feeds back into simulation state. The linter's `clock-outside-obs` rule
/// allows clock calls only under `src/obs/`; every other subsystem that
/// wants a duration must route through this shim by holding an
/// `obs::TraceRecorder*` (null = no clock is ever read).

#include <chrono>
#include <cstdint>

namespace biochip::obs {

/// Monotonic nanoseconds since an unspecified epoch. Timing plane only:
/// the returned value must never influence simulation state.
inline std::uint64_t monotonic_ns() {
  // det-ok: timing-plane shim — the one sanctioned clock read (docs/observability.md)
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace biochip::obs
