#include "obs/export.hpp"

#include <iomanip>
#include <limits>

namespace biochip::obs {

namespace {

/// Metric names are dotted identifiers and event slugs (snake_case); escape
/// defensively anyway so a hostile name cannot corrupt the stream.
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_metric(std::ostream& os, const Metric& m) {
  os << "{\"name\":";
  write_escaped(os, m.name);
  os << ",\"index\":" << m.index << ",\"kind\":\"" << to_string(m.kind)
     << "\",\"plane\":\"" << to_string(m.plane) << "\"";
  switch (m.kind) {
    case MetricKind::kCounter:
      os << ",\"value\":" << m.value;
      break;
    case MetricKind::kGauge:
      os << ",\"value\":" << m.ivalue;
      break;
    case MetricKind::kRealGauge:
      os << ",\"value\":" << m.rvalue;
      break;
    case MetricKind::kHistogram: {
      os << ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i)
        os << (i ? "," : "") << m.bounds[i];
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i)
        os << (i ? "," : "") << m.buckets[i];
      os << "]";
      break;
    }
  }
  os << "}";
}

}  // namespace

void write_snapshot_jsonl(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\"schema\":\"biochip.metrics.v" << snapshot.schema
     << "\",\"tick\":" << snapshot.tick << ",\"metrics\":[";
  for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
    if (i) os << ",";
    write_metric(os, snapshot.metrics[i]);
  }
  os << "]}\n";
}

void write_summary_json(std::ostream& os, const MetricsSnapshot& snapshot,
                        std::string_view label) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"context\": {\n    \"schema\": \"biochip.metrics.v"
     << snapshot.schema << "\",\n    \"label\": ";
  write_escaped(os, label);
  os << ",\n    \"tick\": " << snapshot.tick << "\n  },\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
    os << "    ";
    write_metric(os, snapshot.metrics[i]);
    os << (i + 1 < snapshot.metrics.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace biochip::obs
