#pragma once
/// \file metrics.hpp
/// \brief Counting-plane telemetry: a deterministic registry of counters,
/// gauges and fixed-bucket histograms.
///
/// The observability layer is split into two planes (docs/observability.md):
///
///  * the **counting plane** (this file) holds integer counters, gauges and
///    fixed-bucket histograms plus a handful of solver-derived real gauges.
///    Every update is driven from serial driver sections (arrival /
///    harvest / admission / arbitration passes, event drains) or from values
///    that are themselves bitwise-deterministic, so a `MetricsSnapshot` is
///    **bitwise identical** between serial and pooled runs — enforced by the
///    same identity suites that pin the streaming and orchestrator reports;
///  * the **timing plane** (trace.hpp) reads the wall clock and is
///    explicitly nondeterministic.
///
/// Metrics carry a `Plane` tag. `Plane::kCounting` metrics participate in
/// the serial-vs-pooled identity contract. `Plane::kExecution` metrics
/// (thread-pool job/chunk accounting) are deterministic for a *fixed*
/// worker configuration but legitimately differ between serial and pooled
/// runs (a serial run never dispatches pool jobs), so identity comparisons
/// use `snapshot(tick, /*counting_only=*/true)`.
///
/// Registration is find-or-create keyed on (name, index): folding the same
/// metric every tick touches one `std::map` lookup, and the registry's
/// iteration order is registration order — deterministic because all
/// registration happens in serial sections.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace biochip::obs {

/// Schema version stamped into every exported snapshot (export.hpp).
inline constexpr int kMetricsSchemaVersion = 1;

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone non-negative total
  kGauge,      ///< signed instantaneous value
  kRealGauge,  ///< double-valued gauge (solver residuals, fe-sweep work)
  kHistogram,  ///< fixed upper-bound buckets + one overflow bucket
};

enum class Plane : std::uint8_t {
  kCounting,   ///< deterministic; serial-vs-pooled identity enforced
  kExecution,  ///< worker-config dependent (pool stats); identity-exempt
};

const char* to_string(MetricKind kind);
const char* to_string(Plane plane);

/// Opaque handle returned by registration; cheap to copy and store.
struct MetricId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// One metric's full state. `index` scopes a metric to a chamber or inlet
/// (-1 = global); the catalog in docs/observability.md says which.
struct Metric {
  std::string name;
  int index = -1;
  MetricKind kind = MetricKind::kCounter;
  Plane plane = Plane::kCounting;
  std::uint64_t value = 0;               ///< kCounter
  std::int64_t ivalue = 0;               ///< kGauge
  double rvalue = 0.0;                   ///< kRealGauge
  std::vector<std::int64_t> bounds;      ///< kHistogram: ascending upper bounds
  std::vector<std::uint64_t> buckets;    ///< bounds.size() + 1 (last = overflow)

  bool operator==(const Metric&) const = default;
};

/// Comparable point-in-time copy of the registry (identity tests use `==`).
struct MetricsSnapshot {
  int schema = kMetricsSchemaVersion;
  int tick = 0;
  std::vector<Metric> metrics;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// Find-or-create. Re-registering the same (name, index) returns the same
  /// id and requires the same kind; a kind mismatch throws.
  MetricId counter(std::string_view name, int index = -1,
                   Plane plane = Plane::kCounting);
  MetricId gauge(std::string_view name, int index = -1,
                 Plane plane = Plane::kCounting);
  MetricId real_gauge(std::string_view name, int index = -1,
                      Plane plane = Plane::kCounting);
  /// `bounds` are ascending inclusive upper bounds; an observation above the
  /// last bound lands in the overflow bucket.
  MetricId histogram(std::string_view name, std::vector<std::int64_t> bounds,
                     int index = -1, Plane plane = Plane::kCounting);

  void inc(MetricId id, std::uint64_t delta = 1);
  /// Absolute fold of an externally maintained total (e.g. AdmissionStats).
  void set_counter(MetricId id, std::uint64_t value);
  void set(MetricId id, std::int64_t value);
  void set_real(MetricId id, double value);
  void add_real(MetricId id, double delta);
  /// Histogram observation: first bucket with `value <= bound`, else overflow.
  void observe(MetricId id, std::int64_t value);

  std::size_t size() const { return metrics_.size(); }
  const Metric& at(MetricId id) const;
  /// Lookup by (name, index); nullptr when never registered.
  const Metric* find(std::string_view name, int index = -1) const;

  /// Copy the registry in registration order. `counting_only` drops
  /// Plane::kExecution metrics — the form identity tests compare.
  MetricsSnapshot snapshot(int tick, bool counting_only = false) const;

 private:
  MetricId intern(std::string_view name, int index, MetricKind kind, Plane plane,
                  std::vector<std::int64_t> bounds);

  std::vector<Metric> metrics_;
  /// Deterministically ordered lookup (never iterated for output — the
  /// vector above owns the export order).
  std::map<std::pair<std::string, int>, std::size_t> by_name_;
};

}  // namespace biochip::obs
