#include "obs/obs.hpp"

#include <fstream>

#include "common/error.hpp"
#include "obs/export.hpp"

namespace biochip::obs {

Observer::Observer(ObsConfig config) : config_(std::move(config)) {
  if (!config_.enabled) return;
  if (config_.timing)
    trace_ = std::make_unique<TraceRecorder>(config_.trace_capacity);
  if (!config_.metrics_path.empty()) {
    auto out = std::make_unique<std::ofstream>(config_.metrics_path,
                                               std::ios::out | std::ios::trunc);
    BIOCHIP_REQUIRE(out->good(), "cannot open the metrics JSONL path");
    metrics_out_ = std::move(out);
  }
}

void Observer::snapshot_tick(int tick) {
  if (!config_.enabled || metrics_out_ == nullptr) return;
  if (config_.snapshot_period <= 0 || tick % config_.snapshot_period != 0)
    return;
  write_snapshot_jsonl(*metrics_out_, metrics_.snapshot(tick));
}

void Observer::finalize(int tick) {
  if (!config_.enabled) return;
  const MetricsSnapshot snap = metrics_.snapshot(tick);
  if (metrics_out_ != nullptr) {
    write_snapshot_jsonl(*metrics_out_, snap);
    metrics_out_->flush();
  }
  if (!config_.summary_path.empty()) {
    std::ofstream out(config_.summary_path, std::ios::out | std::ios::trunc);
    BIOCHIP_REQUIRE(out.good(), "cannot open the summary JSON path");
    write_summary_json(out, snap, config_.label);
  }
  if (!config_.trace_path.empty() && trace_ != nullptr) {
    std::ofstream out(config_.trace_path, std::ios::out | std::ios::trunc);
    BIOCHIP_REQUIRE(out.good(), "cannot open the Chrome-trace path");
    trace_->write_chrome_trace(out);
  }
}

}  // namespace biochip::obs
