#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kRealGauge: return "real_gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const char* to_string(Plane plane) {
  switch (plane) {
    case Plane::kCounting: return "counting";
    case Plane::kExecution: return "execution";
  }
  return "unknown";
}

MetricId MetricsRegistry::intern(std::string_view name, int index,
                                 MetricKind kind, Plane plane,
                                 std::vector<std::int64_t> bounds) {
  BIOCHIP_REQUIRE(!name.empty(), "metric name must be non-empty");
  const auto key = std::make_pair(std::string(name), index);
  const auto it = by_name_.find(key);
  if (it != by_name_.end()) {
    BIOCHIP_REQUIRE(metrics_[it->second].kind == kind,
                    "metric re-registered with a different kind");
    return {it->second};
  }
  Metric m;
  m.name = key.first;
  m.index = index;
  m.kind = kind;
  m.plane = plane;
  if (kind == MetricKind::kHistogram) {
    BIOCHIP_REQUIRE(!bounds.empty(), "histogram needs at least one bound");
    BIOCHIP_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                    "histogram bounds must ascend");
    m.bounds = std::move(bounds);
    m.buckets.assign(m.bounds.size() + 1, 0);
  }
  metrics_.push_back(std::move(m));
  by_name_.emplace(key, metrics_.size() - 1);
  return {metrics_.size() - 1};
}

MetricId MetricsRegistry::counter(std::string_view name, int index, Plane plane) {
  return intern(name, index, MetricKind::kCounter, plane, {});
}

MetricId MetricsRegistry::gauge(std::string_view name, int index, Plane plane) {
  return intern(name, index, MetricKind::kGauge, plane, {});
}

MetricId MetricsRegistry::real_gauge(std::string_view name, int index, Plane plane) {
  return intern(name, index, MetricKind::kRealGauge, plane, {});
}

MetricId MetricsRegistry::histogram(std::string_view name,
                                    std::vector<std::int64_t> bounds, int index,
                                    Plane plane) {
  return intern(name, index, MetricKind::kHistogram, plane, std::move(bounds));
}

const Metric& MetricsRegistry::at(MetricId id) const {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  return metrics_[id.index];
}

void MetricsRegistry::inc(MetricId id, std::uint64_t delta) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kCounter, "inc needs a counter");
  m.value += delta;
}

void MetricsRegistry::set_counter(MetricId id, std::uint64_t value) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kCounter, "set_counter needs a counter");
  m.value = value;
}

void MetricsRegistry::set(MetricId id, std::int64_t value) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kGauge, "set needs a gauge");
  m.ivalue = value;
}

void MetricsRegistry::set_real(MetricId id, double value) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kRealGauge, "set_real needs a real gauge");
  m.rvalue = value;
}

void MetricsRegistry::add_real(MetricId id, double delta) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kRealGauge, "add_real needs a real gauge");
  m.rvalue += delta;
}

void MetricsRegistry::observe(MetricId id, std::int64_t value) {
  BIOCHIP_REQUIRE(id.valid() && id.index < metrics_.size(), "invalid metric id");
  Metric& m = metrics_[id.index];
  BIOCHIP_REQUIRE(m.kind == MetricKind::kHistogram, "observe needs a histogram");
  const auto it = std::lower_bound(m.bounds.begin(), m.bounds.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(std::distance(m.bounds.begin(), it));
  ++m.buckets[bucket];
}

const Metric* MetricsRegistry::find(std::string_view name, int index) const {
  const auto it = by_name_.find(std::make_pair(std::string(name), index));
  return it == by_name_.end() ? nullptr : &metrics_[it->second];
}

MetricsSnapshot MetricsRegistry::snapshot(int tick, bool counting_only) const {
  MetricsSnapshot snap;
  snap.tick = tick;
  snap.metrics.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    if (counting_only && m.plane != Plane::kCounting) continue;
    snap.metrics.push_back(m);
  }
  return snap;
}

}  // namespace biochip::obs
