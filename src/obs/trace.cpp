#include "obs/trace.hpp"

#include <algorithm>
#include <iomanip>

#include "common/error.hpp"

namespace biochip::obs {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  BIOCHIP_REQUIRE(capacity_ >= 1, "trace ring needs capacity >= 1");
  ring_.reserve(std::min<std::size_t>(capacity_, std::size_t{1} << 12));
}

void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns, int lane, int tick) {
  const TraceSpan span{name, start_ns,
                       end_ns >= start_ns ? end_ns - start_ns : 0,
                       static_cast<std::int32_t>(lane),
                       static_cast<std::int32_t>(tick)};
  std::lock_guard lk(m_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = span;
  }
  ++total_;
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard lk(m_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lk(m_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard lk(m_);
  if (total_ <= capacity_) return ring_;
  // Saturated ring: the oldest retained span sits at the next write slot.
  std::vector<TraceSpan> out;
  out.reserve(capacity_);
  const std::size_t head = static_cast<std::size_t>(total_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceSpan> all = spans();
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const TraceSpan& s : all) epoch = std::min(epoch, s.start_ns);
  if (all.empty()) epoch = 0;
  // Fixed microsecond precision: default stream precision (6 significant
  // digits) would round timestamps past a few seconds into each other.
  os << std::fixed << std::setprecision(3);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : all) {
    if (!first) os << ",";
    first = false;
    // Chrome trace timestamps are microseconds (double). tid lanes: 0 = the
    // serial driver, chamber c = c + 1.
    os << "{\"name\":\"" << s.name << "\",\"cat\":\"obs\",\"ph\":\"X\""
       << ",\"pid\":0,\"tid\":" << (s.lane + 1)
       << ",\"ts\":" << static_cast<double>(s.start_ns - epoch) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1000.0
       << ",\"args\":{\"tick\":" << s.tick << "}}";
  }
  os << "]}\n";
}

}  // namespace biochip::obs
