#pragma once
/// \file obs.hpp
/// \brief `ObsConfig` + `Observer`: the one handle drivers thread through.
///
/// An `Observer` bundles the counting plane (`MetricsRegistry`), the timing
/// plane (`TraceRecorder`, optional) and the exporters (periodic JSONL
/// snapshots, final summary, Chrome trace). Drivers (`StreamingService`,
/// `Orchestrator`) hold a nullable `Observer*`:
///
///  * null, or `ObsConfig::enabled == false` → every hook is a
///    null-pointer-checked no-op: no clock read, no lock, no allocation —
///    the <2% `bm_streaming` overhead gate in docs/perf.md measures exactly
///    this path;
///  * enabled → counting-plane folds run in the drivers' serial sections
///    (arrivals / harvest / admission / arbitration / event drains), so the
///    `snapshot(t, /*counting_only=*/true)` of two runs is bitwise identical
///    serial vs pooled (tests/test_obs.cpp pins this under the hostile
///    fault schedule).
///
/// File IO happens only on `snapshot_tick` (period hit) and `finalize` —
/// both called from serial driver/caller code.

#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biochip::obs {

struct ObsConfig {
  /// Master switch. Disabled = the Observer is inert (hooks no-op).
  bool enabled = false;
  /// Record timing-plane phase spans (wall clock — nondeterministic).
  bool timing = true;
  /// Ticks between periodic JSONL snapshot lines (0 = final snapshot only).
  int snapshot_period = 0;
  /// Timing-plane ring capacity in spans (bounded memory on any horizon).
  std::size_t trace_capacity = std::size_t{1} << 16;
  /// Output paths; empty = that exporter is off. `metrics_path` appends one
  /// JSONL line per period + one final line; `summary_path` gets the
  /// BENCH-convention summary; `trace_path` the Chrome-trace JSON.
  std::string metrics_path;
  std::string trace_path;
  std::string summary_path;
  /// Label stamped into the summary context.
  std::string label = "biochip";
};

class Observer {
 public:
  /// Default = disabled: safe to pass anywhere, every hook no-ops.
  Observer() = default;
  explicit Observer(ObsConfig config);

  bool enabled() const { return config_.enabled; }
  const ObsConfig& config() const { return config_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Null when disabled or `timing == false` — spans then skip the clock.
  TraceRecorder* trace() { return trace_.get(); }

  /// Append a JSONL snapshot line when `snapshot_period` divides `tick`
  /// (drivers call once per tick; cheap no-op otherwise).
  void snapshot_tick(int tick);

  /// Write the final snapshot line, the summary JSON and the Chrome trace
  /// (each only where a path is configured). Idempotent per run; callers
  /// invoke it once after the driver returns.
  void finalize(int tick);

 private:
  ObsConfig config_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<std::ostream> metrics_out_;  ///< append stream (JSONL)
};

}  // namespace biochip::obs
