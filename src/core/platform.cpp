#include "core/platform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::core {

namespace {

sensor::CapacitivePixel pixel_for_device(const chip::BiochipDevice& device) {
  sensor::CapacitivePixel px;
  px.electrode_area = device.array().footprint({0, 0}).area();
  px.chamber_height = device.config().chamber_height;
  px.sense_voltage = device.drive_amplitude();
  return px;
}

}  // namespace

PlatformConfig PlatformConfig::paper_defaults() {
  PlatformConfig cfg;
  cfg.device = chip::paper_config_on_node(chip::paper_node());
  cfg.medium = physics::dep_buffer();
  cfg.scan = sensor::ScanTiming{};
  return cfg;
}

LabOnChipPlatform::LabOnChipPlatform(const PlatformConfig& config)
    : config_(config),
      device_(config.device),
      unit_cage_(device_.calibrate_cage()),
      cages_(device_.array(), config.cage_separation),
      engine_(device_, config.medium, unit_cage_,
              config.capture_radius_pitches * config.device.pitch),
      imager_(device_.array(), pixel_for_device(device_), config.medium.temperature,
              config.seed ^ 0xFEEDFACEull),
      rng_(config.seed) {
  physics::validate(config.medium);
  BIOCHIP_REQUIRE(config.tow_speed > 0.0, "tow speed must be positive");
}

double LabOnChipPlatform::site_period() const {
  return device_.array().pitch() / config_.tow_speed;
}

void LabOnChipPlatform::load_sample(const std::vector<cell::MixtureComponent>& mixture) {
  const Aabb region = device_.chamber_bounds();
  sample_ = cell::draw_population(mixture, region, /*sedimented=*/true, rng_);
  bodies_ = cell::to_bodies(sample_, config_.medium, config_.device.drive_frequency);
  cage_to_body_.clear();
}

std::vector<sensor::Detection> LabOnChipPlatform::detect_cells(std::size_t n_frames,
                                                               double threshold_sigma) {
  std::vector<sensor::FrameTarget> targets;
  targets.reserve(bodies_.size());
  for (const physics::ParticleBody& b : bodies_)
    targets.push_back({b.position, b.radius});
  const Grid2 frame = imager_.averaged_frame(targets, rng_, n_frames);
  const double sigma =
      imager_.cds_noise_sigma() / std::sqrt(static_cast<double>(n_frames));
  return sensor::detect_threshold(frame, device_.array(), threshold_sigma * sigma);
}

double LabOnChipPlatform::acquisition_time(std::size_t n_frames) const {
  return config_.scan.acquisition_time(device_.array(), n_frames);
}

physics::ParticleBody& LabOnChipPlatform::body_for_instance(int instance_id) {
  for (physics::ParticleBody& b : bodies_)
    if (b.id == instance_id) return b;
  throw PreconditionError("unknown sample instance id");
}

void LabOnChipPlatform::refresh_engine_sites() {
  std::vector<GridCoord> sites;
  for (int id : cages_.cage_ids()) sites.push_back(cages_.site(id));
  engine_.field_model().set_sites(std::move(sites));
}

std::optional<int> LabOnChipPlatform::trap_cell(int instance_id) {
  physics::ParticleBody& body = body_for_instance(instance_id);
  if (body.dep_prefactor >= 0.0) return std::nullopt;  // pDEP: no closed cage
  const GridCoord site = device_.array().nearest({body.position.x, body.position.y});
  if (!cages_.can_place(site)) return std::nullopt;
  const int cage_id = cages_.create(site);
  cage_to_body_.emplace_back(cage_id, static_cast<int>(&body - bodies_.data()));
  refresh_engine_sites();
  // Let the cell get pulled off the floor into the trap.
  engine_.settle(body, 4.0 * site_period(), rng_);
  return cage_id;
}

std::optional<int> LabOnChipPlatform::body_in_cage(int cage_id) const {
  for (const auto& [cid, bidx] : cage_to_body_)
    if (cid == cage_id) return bidx;
  return std::nullopt;
}

MoveResult LabOnChipPlatform::move_cell(int cage_id, GridCoord destination) {
  MoveResult result;
  const std::optional<int> body_idx = body_in_cage(cage_id);
  BIOCHIP_REQUIRE(body_idx.has_value(), "cage holds no tracked cell");
  BIOCHIP_REQUIRE(device_.array().contains(destination), "destination outside array");

  // Plan an L-shaped Manhattan path (single-cage; multi-cage planning goes
  // through cad::route_astar in run_assay). Both L orientations are tried:
  // one of them often clears obstacles the other grazes (e.g. a column of
  // parked cages at the destination).
  const GridCoord start = cages_.site(cage_id);
  auto make_l_path = [&](bool col_first) {
    GridCoord cur = start;
    std::vector<GridCoord> path{cur};
    auto walk_cols = [&] {
      while (cur.col != destination.col) {
        cur.col += (destination.col > cur.col) ? 1 : -1;
        path.push_back(cur);
      }
    };
    auto walk_rows = [&] {
      while (cur.row != destination.row) {
        cur.row += (destination.row > cur.row) ? 1 : -1;
        path.push_back(cur);
      }
    };
    if (col_first) {
      walk_cols();
      walk_rows();
    } else {
      walk_rows();
      walk_cols();
    }
    return path;
  };
  auto legal = [&](const std::vector<GridCoord>& path) {
    for (const GridCoord step : path)
      if (!cages_.can_place(step, cage_id)) return false;
    return true;
  };
  std::vector<GridCoord> path = make_l_path(/*col_first=*/true);
  if (!legal(path)) {
    path = make_l_path(/*col_first=*/false);
    if (!legal(path)) {
      result.success = false;
      return result;
    }
  }

  // Exclude the moving cage from the static site set during the tow.
  std::vector<GridCoord> static_sites;
  for (int id : cages_.cage_ids())
    if (id != cage_id) static_sites.push_back(cages_.site(id));
  engine_.field_model().set_sites(std::move(static_sites));

  result.tow = engine_.tow(bodies_[static_cast<std::size_t>(*body_idx)], path,
                           site_period(), rng_);
  result.pattern_updates = path.size() - 1;
  // Each hop rewrites two pixels (old site off, new site on).
  result.electronics_time = static_cast<double>(result.pattern_updates) *
                            config_.device.programming.incremental_program_time(2);
  if (result.tow.retained) {
    for (std::size_t i = 1; i < path.size(); ++i) cages_.move(cage_id, path[i]);
    result.success = true;
  }
  refresh_engine_sites();
  return result;
}

ParallelMoveResult LabOnChipPlatform::move_cells(
    const std::vector<ParallelMoveRequest>& requests) {
  ParallelTransporter transporter(cages_, engine_, site_period());
  ParallelMoveResult result =
      transporter.execute(requests, bodies_, cage_to_body_, rng_);
  refresh_engine_sites();
  return result;
}

cad::SynthesisResult LabOnChipPlatform::run_assay(const cad::AssayGraph& graph,
                                                  const cad::ChipResources& resources) const {
  cad::SynthesisConfig cfg;
  cfg.dims = {device_.array().cols(), device_.array().rows()};
  cfg.resources = resources;
  cfg.min_separation = config_.cage_separation;
  cfg.step_period = site_period();
  cfg.seed = config_.seed;
  return cad::synthesize(graph, cfg);
}

}  // namespace biochip::core
