#pragma once
/// \file threadpool.hpp
/// \brief Fixed worker pool with statically-chunked parallel_for.
///
/// The reusable parallelism layer for every compute subsystem: the field
/// solver sweeps z-planes over it, the dynamics engine fans particle
/// populations out over it, and future subsystems (sensor scans, Monte Carlo
/// flows) are expected to build on it rather than spawning ad-hoc threads.
///
/// Design rules:
///  * Workers are created once and parked on a condition variable between
///    jobs — parallel_for has no per-call thread spawn cost.
///  * Work is split into contiguous chunks (static chunking); the calling
///    thread participates, so a pool of W workers yields W+1-way parallelism.
///  * Chunks must be independent: parallel_for gives no ordering guarantee
///    between chunks. Deterministic results are the *caller's* contract
///    (red-black coloring, per-particle RNG streams, ...).
///  * Exceptions thrown inside a chunk are captured and rethrown on the
///    calling thread after all chunks finish.

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>

namespace biochip::core {

/// Lifetime execution counters of one pool (observability, execution plane:
/// deterministic for a fixed worker configuration, but a serial run
/// dispatches no jobs at all — so these are exempt from the serial-vs-pooled
/// identity contract; see docs/observability.md). Drivers fold the
/// before/after *delta* of a run, not the process-lifetime totals.
struct PoolStats {
  std::uint64_t jobs = 0;       ///< parallel_for calls that executed work
  std::uint64_t chunks = 0;     ///< chunks executed across all jobs
  std::uint64_t max_parts = 0;  ///< widest single-job chunk fan-out

  /// Counters since `earlier` (max_parts is a high-water mark, not summed).
  PoolStats since(const PoolStats& earlier) const {
    return {jobs - earlier.jobs, chunks - earlier.chunks, max_parts};
  }
};

/// Fixed-size worker pool. Thread-safe for one parallel_for at a time per
/// pool instance; concurrent parallel_for calls on the same pool serialize.
class ThreadPool {
 public:
  /// `threads`: total parallelism including the caller (so `threads - 1`
  /// workers are spawned). 0 = one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Invoke `chunk_fn(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end) into at most `max_parts` contiguous chunks (0 = pool
  /// size). Blocks until every chunk has finished; rethrows the first chunk
  /// exception. Runs inline on the caller when the range or pool is trivial.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                    std::size_t max_parts = 0);

  /// Shared process-wide pool (lazily constructed, hardware-sized). Intended
  /// for library hot paths so they don't each own a set of threads.
  static ThreadPool& global();

  /// Snapshot of the lifetime execution counters (monotone; relaxed loads —
  /// read from serial driver code between jobs).
  PoolStats stats() const {
    return {jobs_total_.load(std::memory_order_relaxed),
            chunks_total_.load(std::memory_order_relaxed),
            max_parts_.load(std::memory_order_relaxed)};
  }

 private:
  // Chunk claiming is a single 64-bit ticket counter whose upper bits carry
  // the job generation and whose lower kPartBits bits carry the next chunk
  // index; publishing a job stores (generation << kPartBits) with release
  // semantics, and every claim is an acq_rel fetch_add. A claim is valid only
  // while its generation matches gen_parts_ (generation << kPartBits | parts,
  // also atomic), so a stale worker draining the previous job's ticket space
  // can never mix an old chunk index with the next job's chunk count — the
  // race window between writing the job fields and resetting a bare counter
  // that the original protocol left open (double-claimed chunks, early
  // completion signal on hardware with real concurrency).
  static constexpr unsigned kPartBits = 20;  // 1M chunks/job, ~17T generations
  static constexpr std::uint64_t kPartMask = (std::uint64_t{1} << kPartBits) - 1;

  void worker_loop();
  void run_chunk(std::size_t part, std::size_t parts);

  std::vector<std::thread> workers_;

  // Job state, guarded by m_ for the wakeup handshake; chunk claiming and
  // completion counting are lock-free.
  std::mutex m_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  // Plain fields below are published by the release store of ticket_ and only
  // read under a generation-validated claim (see claim_chunk), so they need no
  // atomicity of their own.
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::atomic<std::uint64_t> ticket_{0};     // generation << kPartBits | next part
  std::atomic<std::uint64_t> gen_parts_{0};  // generation << kPartBits | part count
  std::atomic<std::size_t> parts_done_{0};
  std::exception_ptr first_error_;
  std::mutex error_m_;

  // Execution counters (stats()): bumped once per dispatching parallel_for
  // call, never per chunk claim — no hot-path contention.
  std::atomic<std::uint64_t> jobs_total_{0};
  std::atomic<std::uint64_t> chunks_total_{0};
  std::atomic<std::uint64_t> max_parts_{0};

  // Serializes parallel_for calls on this pool instance.
  std::mutex job_m_;
};

}  // namespace biochip::core
