#pragma once
/// \file closed_loop.hpp
/// \brief `ClosedLoopTransporter` — the closed-loop sibling of
/// `ParallelTransporter`.
///
/// Same episode surface as the open-loop transporter (plan, execute,
/// pooled `execute_episodes`), but each actuation step is a full supervisory
/// tick of the control engine: sense the scene, track per-cage occupancy,
/// re-plan around losses/defects/congestion, then actuate. Episodes fan out
/// over the shared worker pool on counter-based `Rng::fork` streams, so
/// every trajectory and every event log is bitwise identical for any worker
/// count — the same determinism contract `execute_episodes` established for
/// the open-loop path.

#include <utility>
#include <vector>

#include "chip/cage.hpp"
#include "chip/defects.hpp"
#include "common/rng.hpp"
#include "control/engine.hpp"
#include "control/orchestrator.hpp"
#include "control/streaming.hpp"
#include "core/simulation.hpp"
#include "physics/dynamics.hpp"
#include "sensor/frame.hpp"

namespace biochip::core {

class ThreadPool;

class ClosedLoopTransporter {
 public:
  /// All references must outlive the transporter; `defects` is the chip's
  /// self-test map (drives fault injection, sensing artifacts and the
  /// defect-aware routing mask alike).
  ClosedLoopTransporter(chip::CageController& cages, ManipulationEngine& engine,
                        const sensor::FrameSynthesizer& imager,
                        const chip::DefectMap& defects, double site_period,
                        control::ControlConfig config = {});

  const control::ControlConfig& config() const { return engine_.config(); }

  /// Run one closed-loop episode, fanning the per-body physics over the
  /// global worker pool.
  control::EpisodeReport execute(const std::vector<control::CageGoal>& goals,
                                 std::vector<physics::ParticleBody>& bodies,
                                 const std::vector<std::pair<int, int>>& cage_bodies,
                                 Rng& rng);

  /// One independent closed-loop episode for the pooled fan-out. Episodes
  /// must not share transporters (i.e. controllers/engines/defect maps) or
  /// body arrays: each one mutates its own chip state.
  struct Episode {
    ClosedLoopTransporter* transporter = nullptr;
    std::vector<control::CageGoal> goals;
    std::vector<physics::ParticleBody>* bodies = nullptr;
    std::vector<std::pair<int, int>> cage_bodies;
  };

  /// Execute many independent episodes concurrently over the shared worker
  /// pool. Episode n runs on `rng.split().fork(n)`; inside the fan-out each
  /// episode's body loop runs serially (nested parallel_for on one pool
  /// would deadlock), so results are bitwise identical for any `max_parts`
  /// (pass 1 for the serial reference).
  static std::vector<control::EpisodeReport> execute_episodes(
      std::vector<Episode>& episodes, Rng& rng, std::size_t max_parts = 0);

  /// Run one multi-chamber orchestrated episode: per-chamber supervisory
  /// ticks fan out across the global worker pool (the chamber-level sibling
  /// of the per-body and per-episode fan-outs above), with the orchestrator
  /// arbitrating cross-chamber transfers between ticks. Bitwise identical
  /// for any `max_parts` (1 = serial reference). `obs` (optional) attaches
  /// the telemetry layer for this run; callers own `Observer::finalize`.
  static control::OrchestratorReport execute_orchestrated(
      control::Orchestrator& orchestrator,
      std::vector<control::ChamberSetup>& chambers,
      const std::vector<control::TransferGoal>& transfers, Rng& rng,
      std::size_t max_parts = 0, obs::Observer* obs = nullptr);

  /// Run the open-system streaming mode (continuous arrivals + admission
  /// control, `control::StreamingService`) over the global worker pool.
  /// Bitwise identical for any `max_parts` (1 = serial reference). `obs`
  /// (optional) attaches the telemetry layer for this run; callers own
  /// `Observer::finalize`.
  static control::StreamingReport execute_streaming(
      control::StreamingService& service,
      std::vector<control::ChamberSetup>& chambers, Rng& rng,
      std::size_t max_parts = 0, obs::Observer* obs = nullptr);

 private:
  control::ClosedLoopEngine engine_;
};

}  // namespace biochip::core
