#include "core/parallel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/threadpool.hpp"

namespace biochip::core {

ParallelTransporter::ParallelTransporter(chip::CageController& cages,
                                         ManipulationEngine& engine, double site_period)
    : cages_(cages), engine_(engine), site_period_(site_period) {
  BIOCHIP_REQUIRE(site_period > 0.0, "site period must be positive");
}

cad::RouteResult ParallelTransporter::plan(
    const std::vector<ParallelMoveRequest>& requests) const {
  cad::RouteConfig cfg;
  cfg.cols = cages_.array().cols();
  cfg.rows = cages_.array().rows();
  cfg.min_separation = cages_.min_separation();

  std::vector<cad::RouteRequest> route_requests;
  std::vector<int> moving;
  for (const ParallelMoveRequest& req : requests) {
    BIOCHIP_REQUIRE(cages_.array().contains(req.destination),
                    "destination outside the array");
    route_requests.push_back({req.cage_id, cages_.site(req.cage_id), req.destination});
    moving.push_back(req.cage_id);
  }
  // Parked cages become zero-length routes: the planner must respect them.
  for (int id : cages_.cage_ids()) {
    if (std::find(moving.begin(), moving.end(), id) != moving.end()) continue;
    const GridCoord site = cages_.site(id);
    route_requests.push_back({id, site, site});
  }
  cad::RouteResult result = cad::route_astar(route_requests, cfg);
  if (result.success) cad::verify_routes(route_requests, result, cfg);
  return result;
}

ParallelMoveResult ParallelTransporter::execute(
    const std::vector<ParallelMoveRequest>& requests,
    std::vector<physics::ParticleBody>& bodies,
    const std::vector<std::pair<int, int>>& cage_bodies, Rng& rng) {
  return run(requests, bodies, cage_bodies, rng.split(), &core::ThreadPool::global());
}

std::vector<ParallelMoveResult> ParallelTransporter::execute_episodes(
    std::vector<Episode>& episodes, Rng& rng, std::size_t max_parts) {
  std::vector<ParallelMoveResult> results(episodes.size());
  // One counter-based stream per episode: results are independent of how
  // the pool chunks the episode range.
  const Rng base = rng.split();
  core::ThreadPool::global().parallel_for(
      0, episodes.size(),
      [&](std::size_t eb, std::size_t ee) {
        for (std::size_t n = eb; n < ee; ++n) {
          Episode& ep = episodes[n];
          BIOCHIP_REQUIRE(ep.transporter != nullptr && ep.bodies != nullptr,
                          "episode needs a transporter and a body array");
          // pool = nullptr: the per-body loop runs serially inside the
          // episode-level fan-out (nested parallel_for on the same pool
          // would deadlock).
          results[n] = ep.transporter->run(ep.requests, *ep.bodies, ep.cage_bodies,
                                           base.fork(n), nullptr);
        }
      },
      max_parts);
  return results;
}

ParallelMoveResult ParallelTransporter::run(
    const std::vector<ParallelMoveRequest>& requests,
    std::vector<physics::ParticleBody>& bodies,
    const std::vector<std::pair<int, int>>& cage_bodies, Rng stream_base,
    core::ThreadPool* pool) {
  ParallelMoveResult result;
  result.routes = plan(requests);
  result.planned = result.routes.success;
  if (!result.planned) return result;

  const double dt = engine_.integrator().options().dt;
  const auto substeps =
      static_cast<std::size_t>(std::max(1.0, std::round(site_period_ / dt)));
  const auto horizon = static_cast<std::size_t>(result.routes.makespan_steps);
  std::vector<std::uint8_t> lost(bodies.size(), 0);

  // One counter-based stream per (actuation step, tracked cage): trajectories
  // are independent of how the pool chunks the particle loop, so episodes
  // reproduce exactly for any worker count — and identically with no pool.
  const auto grad = [this](Vec3 p) { return engine_.field_model().grad_erms2(p); };
  const auto integrate_range = [&](std::size_t t, std::size_t nb, std::size_t ne) {
    for (std::size_t n = nb; n < ne; ++n) {
      const auto bidx = static_cast<std::size_t>(cage_bodies[n].second);
      if (lost[bidx]) continue;
      Rng stream = stream_base.fork(t * cage_bodies.size() + n);
      for (std::size_t s = 0; s < substeps; ++s)
        engine_.integrator().step(bodies[bidx], grad, stream);
    }
  };

  for (std::size_t t = 1; t <= horizon; ++t) {
    // One synchronized actuation step for every cage that moves at t.
    std::vector<chip::CageMove> moves;
    for (const cad::RoutedPath& p : result.routes.paths) {
      const GridCoord prev = p.position_at(static_cast<int>(t) - 1);
      const GridCoord next = p.position_at(static_cast<int>(t));
      if (!(prev == next)) moves.push_back({p.id, next});
    }
    cages_.apply_step(moves);
    ++result.steps_executed;

    // Physics: every tracked particle relaxes toward its (possibly moved)
    // trap for one site period. Each body integrates on its own stream over
    // a worker-pool lane; the field model is only read during the fan-out.
    std::vector<GridCoord> sites;
    for (int id : cages_.cage_ids()) sites.push_back(cages_.site(id));
    engine_.field_model().set_sites(sites);
    if (pool != nullptr) {
      pool->parallel_for(0, cage_bodies.size(), [&](std::size_t nb, std::size_t ne) {
        integrate_range(t, nb, ne);
      });
    } else {
      integrate_range(t, 0, cage_bodies.size());
    }
    result.elapsed += site_period_;

    // Containment audit per tracked cage.
    for (const auto& [cage_id, bidx] : cage_bodies) {
      if (lost[static_cast<std::size_t>(bidx)]) continue;
      const Vec3 trap = engine_.field_model().trap_center(cages_.site(cage_id));
      const double lag =
          (bodies[static_cast<std::size_t>(bidx)].position - trap).norm();
      if (lag > engine_.field_model().capture_radius()) {
        lost[static_cast<std::size_t>(bidx)] = 1;
        result.lost_cage_ids.push_back(cage_id);
      }
    }
  }
  result.success = result.planned && result.lost_cage_ids.empty();
  return result;
}

}  // namespace biochip::core
