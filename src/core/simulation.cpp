#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip::core {

CageFieldModel::CageFieldModel(const field::HarmonicCage& unit, double pitch,
                               double capture_radius)
    : unit_(unit), pitch_(pitch), capture_radius_(capture_radius) {
  BIOCHIP_REQUIRE(pitch > 0.0, "pitch must be positive");
  BIOCHIP_REQUIRE(capture_radius > 0.0, "capture radius must be positive");
}

Vec3 CageFieldModel::trap_center(GridCoord site) const {
  // The calibrated unit cage sits over the center electrode of its patch;
  // translate its z (and intra-pitch xy offset) onto the requested site.
  const double cx = (static_cast<double>(site.col) + 0.5) * pitch_;
  const double cy = (static_cast<double>(site.row) + 0.5) * pitch_;
  return {cx, cy, unit_.center.z};
}

void CageFieldModel::set_sites(std::vector<GridCoord> sites) { sites_ = std::move(sites); }

Vec3 CageFieldModel::grad_erms2(Vec3 p) const {
  // Nearest active trap wins; beyond the capture radius the background field
  // is laterally uniform and exerts no DEP drive.
  double best_d2 = capture_radius_ * capture_radius_;
  const field::HarmonicCage* best = nullptr;
  field::HarmonicCage moved;
  for (const GridCoord site : sites_) {
    const Vec3 c = trap_center(site);
    const Vec3 d = p - c;
    const double d2 = d.norm2();
    if (d2 <= best_d2) {
      best_d2 = d2;
      moved = unit_.moved_to(c);
      best = &moved;
    }
  }
  return best != nullptr ? best->grad_erms2(p) : Vec3{};
}

ManipulationEngine::ManipulationEngine(const chip::BiochipDevice& device,
                                       const physics::Medium& medium,
                                       const field::HarmonicCage& unit_cage,
                                       double capture_radius)
    : field_(unit_cage, device.array().pitch(), capture_radius),
      integrator_(medium,
                  physics::DynamicsOptions{
                      .dt = 1e-3,
                      .brownian = true,
                      .gravity = true,
                      .wall_correction = true,
                      .bounds = device.chamber_bounds(),
                  }) {}

TowReport ManipulationEngine::tow(physics::ParticleBody& particle,
                                  const std::vector<GridCoord>& path, double site_period,
                                  Rng& rng) {
  BIOCHIP_REQUIRE(!path.empty(), "tow path must be non-empty");
  BIOCHIP_REQUIRE(site_period > 0.0, "site period must be positive");
  for (std::size_t i = 1; i < path.size(); ++i)
    BIOCHIP_REQUIRE(manhattan(path[i], path[i - 1]) <= 1,
                    "tow path must step between adjacent sites");

  TowReport report;
  const double dt = integrator_.options().dt;
  const auto substeps =
      static_cast<std::size_t>(std::max(1.0, std::round(site_period / dt)));

  // The towed cage is prepended to the active set and updated per hop.
  std::vector<GridCoord> sites = field_.sites();
  sites.insert(sites.begin(), path.front());

  for (std::size_t hop = 0; hop < path.size(); ++hop) {
    sites.front() = path[hop];
    field_.set_sites(sites);
    const Vec3 trap = field_.trap_center(path[hop]);
    for (std::size_t s = 0; s < substeps; ++s) {
      integrator_.step(particle, [this](Vec3 p) { return field_.grad_erms2(p); }, rng);
      const double lag = (particle.position - trap).norm();
      report.max_lag = std::max(report.max_lag, lag);
    }
    report.elapsed += site_period;
    ++report.steps;
    if ((particle.position - trap).norm() > field_.capture_radius()) {
      report.retained = false;
      break;
    }
  }
  // Restore the caller's static cage set.
  sites.erase(sites.begin());
  field_.set_sites(sites);
  report.final_position = particle.position;
  return report;
}

void ManipulationEngine::settle(physics::ParticleBody& particle, double duration, Rng& rng) {
  BIOCHIP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  const double dt = integrator_.options().dt;
  const auto steps = static_cast<std::size_t>(std::round(duration / dt));
  for (std::size_t s = 0; s < steps; ++s)
    integrator_.step(particle, [this](Vec3 p) { return field_.grad_erms2(p); }, rng);
}

}  // namespace biochip::core
