#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip::core {

CageFieldModel::CageFieldModel(const field::HarmonicCage& unit, double pitch,
                               double capture_radius)
    : unit_(unit), pitch_(pitch), capture_radius_(capture_radius) {
  BIOCHIP_REQUIRE(pitch > 0.0, "pitch must be positive");
  BIOCHIP_REQUIRE(capture_radius > 0.0, "capture radius must be positive");
  rebuild_index();
}

Vec3 CageFieldModel::trap_center(GridCoord site) const {
  // The calibrated unit cage sits over the center electrode of its patch;
  // translate its z (and intra-pitch xy offset) onto the requested site.
  const double cx = (static_cast<double>(site.col) + 0.5) * pitch_;
  const double cy = (static_cast<double>(site.row) + 0.5) * pitch_;
  return {cx, cy, unit_.center.z};
}

namespace {

inline std::uint64_t pack_site(GridCoord site) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(site.col)) << 32) |
         static_cast<std::uint32_t>(site.row);
}

// splitmix64 finalizer: spreads the packed (col,row) key over the table.
inline std::uint64_t hash_site(std::uint64_t key) {
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  return key ^ (key >> 31);
}

// Shared nearest-trap ordering for the hashed box scan and the linear-scan
// oracle: nearer wins, and an EXACT distance tie goes to the smaller
// (row, col). The two paths visit candidates in different orders (row-major
// box vs insertion order), so without an explicit tie rule a body exactly
// equidistant between two trap centers — the midpoint of every tow hop —
// could receive different drives on the two paths.
inline bool closer_site(double d2, GridCoord site, double best_d2, GridCoord best) {
  if (d2 != best_d2) return d2 < best_d2;
  if (site.row != best.row) return site.row < best.row;
  return site.col < best.col;
}

}  // namespace

void CageFieldModel::set_sites(std::vector<GridCoord> sites) {
  // Same-length positional diff: tow and parallel transport move one cage
  // per hop and keep everyone else parked, so the new vector matches the
  // old one except in a handful of slots. Applying erase+insert for just
  // those entries keeps the per-hop cost O(changed) instead of O(live
  // cages). The table never needs to grow here — same length means the same
  // multiset size, and capacity was sized for it at the last rebuild.
  if (!slot_key_.empty() && !sites.empty() && sites.size() == sites_.size()) {
    const std::size_t limit = std::max<std::size_t>(4, sites.size() / 8);
    std::size_t changed = 0;
    for (std::size_t n = 0; n < sites.size() && changed <= limit; ++n)
      changed += sites[n] == sites_[n] ? 0u : 1u;
    if (changed <= limit) {
      for (std::size_t n = 0; n < sites.size(); ++n) {
        if (sites[n] == sites_[n]) continue;
        erase_key(pack_site(sites_[n]));
        insert_key(pack_site(sites[n]));
      }
      sites_ = std::move(sites);
      return;
    }
  }
  sites_ = std::move(sites);
  rebuild_index();
}

void CageFieldModel::rebuild_index() {
  std::size_t capacity = 16;
  while (capacity < 2 * sites_.size()) capacity *= 2;
  slot_key_.assign(capacity, 0);
  slot_count_.assign(capacity, 0);
  slot_used_.assign(capacity, 0);
  slot_mask_ = capacity - 1;
  for (const GridCoord site : sites_) insert_key(pack_site(site));
}

void CageFieldModel::insert_key(std::uint64_t key) {
  std::size_t slot = hash_site(key) & slot_mask_;
  while (slot_used_[slot]) {
    if (slot_key_[slot] == key) {
      ++slot_count_[slot];  // duplicate site
      return;
    }
    slot = (slot + 1) & slot_mask_;
  }
  slot_used_[slot] = 1;
  slot_key_[slot] = key;
  slot_count_[slot] = 1;
}

void CageFieldModel::erase_key(std::uint64_t key) {
  std::size_t slot = hash_site(key) & slot_mask_;
  while (slot_used_[slot]) {
    if (slot_key_[slot] != key) {
      slot = (slot + 1) & slot_mask_;
      continue;
    }
    if (--slot_count_[slot] > 0) return;
    // Backward-shift deletion: walk the probe chain after the hole and move
    // back every entry whose home slot lies at or before the hole, so
    // lookups never need tombstones.
    std::size_t hole = slot;
    std::size_t next = (hole + 1) & slot_mask_;
    while (slot_used_[next]) {
      const std::size_t home = hash_site(slot_key_[next]) & slot_mask_;
      if (((next - home) & slot_mask_) >= ((next - hole) & slot_mask_)) {
        slot_key_[hole] = slot_key_[next];
        slot_count_[hole] = slot_count_[next];
        hole = next;
      }
      next = (next + 1) & slot_mask_;
    }
    slot_used_[hole] = 0;
    slot_count_[hole] = 0;
    return;
  }
  // The positional diff only erases keys it previously inserted, so a miss
  // here would be a bookkeeping bug; tolerate it silently in release.
}

bool CageFieldModel::site_active(GridCoord site) const {
  const std::uint64_t key = pack_site(site);
  std::size_t slot = hash_site(key) & slot_mask_;
  while (slot_used_[slot]) {
    if (slot_key_[slot] == key) return true;
    slot = (slot + 1) & slot_mask_;
  }
  return false;
}

Vec3 CageFieldModel::drive_from(Vec3 center, Vec3 p) const {
  return unit_.moved_to(center).grad_erms2(p);
}

Vec3 CageFieldModel::grad_erms2(Vec3 p) const {
  // Nearest active trap wins; beyond the capture radius the background field
  // is laterally uniform and exerts no DEP drive.
  if (sites_.empty()) return {};
  const double cap2 = capture_radius_ * capture_radius_;
  const double dz = p.z - unit_.center.z;  // all traps share the cage height
  if (dz * dz > cap2) return {};

  // Candidate sites: those whose center (site + 0.5)·pitch lies within the
  // capture radius of p on each axis — a constant-size box independent of
  // the active cage count.
  const double lo_c = (p.x - capture_radius_) / pitch_ - 0.5;
  const double hi_c = (p.x + capture_radius_) / pitch_ - 0.5;
  const double lo_r = (p.y - capture_radius_) / pitch_ - 0.5;
  const double hi_r = (p.y + capture_radius_) / pitch_ - 0.5;
  // Queries so far out (or radii so large) that site indices leave the int
  // range cannot use the rounding trick; the scan handles them correctly.
  const double coord_limit = 2147483000.0;
  if (!(std::fabs(lo_c) < coord_limit && std::fabs(hi_c) < coord_limit &&
        std::fabs(lo_r) < coord_limit && std::fabs(hi_r) < coord_limit))
    return grad_erms2_linear(p);
  const auto cmin = static_cast<std::int64_t>(std::ceil(lo_c));
  const auto cmax = static_cast<std::int64_t>(std::floor(hi_c));
  const auto rmin = static_cast<std::int64_t>(std::ceil(lo_r));
  const auto rmax = static_cast<std::int64_t>(std::floor(hi_r));
  if (cmax < cmin || rmax < rmin) return {};

  // Degenerate configuration (capture radius spanning more candidate sites
  // than there are live cages): the scan is the cheaper probe.
  const std::uint64_t box_cells = static_cast<std::uint64_t>(cmax - cmin + 1) *
                                  static_cast<std::uint64_t>(rmax - rmin + 1);
  if (box_cells > sites_.size()) return grad_erms2_linear(p);

  double best_d2 = cap2;
  bool found = false;
  GridCoord best_site;
  Vec3 best_center;
  for (std::int64_t r = rmin; r <= rmax; ++r)
    for (std::int64_t c = cmin; c <= cmax; ++c) {
      const GridCoord site{static_cast<int>(c), static_cast<int>(r)};
      if (!site_active(site)) continue;
      const Vec3 center = trap_center(site);
      const double d2 = (p - center).norm2();
      if (d2 > best_d2) continue;
      if (found && !closer_site(d2, site, best_d2, best_site)) continue;
      best_d2 = d2;
      best_site = site;
      best_center = center;
      found = true;
    }
  return found ? drive_from(best_center, p) : Vec3{};
}

Vec3 CageFieldModel::grad_erms2_linear(Vec3 p) const {
  double best_d2 = capture_radius_ * capture_radius_;
  bool found = false;
  GridCoord best_site;
  Vec3 best_center;
  for (const GridCoord site : sites_) {
    const Vec3 center = trap_center(site);
    const double d2 = (p - center).norm2();
    if (d2 > best_d2) continue;
    if (found && !closer_site(d2, site, best_d2, best_site)) continue;
    best_d2 = d2;
    best_site = site;
    best_center = center;
    found = true;
  }
  return found ? drive_from(best_center, p) : Vec3{};
}

ManipulationEngine::ManipulationEngine(const chip::BiochipDevice& device,
                                       const physics::Medium& medium,
                                       const field::HarmonicCage& unit_cage,
                                       double capture_radius)
    : field_(unit_cage, device.array().pitch(), capture_radius),
      integrator_(medium,
                  physics::DynamicsOptions{
                      .dt = 1e-3,
                      .brownian = true,
                      .gravity = true,
                      .wall_correction = true,
                      .bounds = device.chamber_bounds(),
                  }) {}

TowReport ManipulationEngine::tow(physics::ParticleBody& particle,
                                  const std::vector<GridCoord>& path, double site_period,
                                  Rng& rng) {
  BIOCHIP_REQUIRE(!path.empty(), "tow path must be non-empty");
  BIOCHIP_REQUIRE(site_period > 0.0, "site period must be positive");
  for (std::size_t i = 1; i < path.size(); ++i)
    BIOCHIP_REQUIRE(manhattan(path[i], path[i - 1]) <= 1,
                    "tow path must step between adjacent sites");

  TowReport report;
  const double dt = integrator_.options().dt;
  const auto substeps =
      static_cast<std::size_t>(std::max(1.0, std::round(site_period / dt)));

  // The towed cage is prepended to the active set and updated per hop.
  std::vector<GridCoord> sites = field_.sites();
  sites.insert(sites.begin(), path.front());

  for (std::size_t hop = 0; hop < path.size(); ++hop) {
    sites.front() = path[hop];
    field_.set_sites(sites);
    const Vec3 trap = field_.trap_center(path[hop]);
    for (std::size_t s = 0; s < substeps; ++s) {
      integrator_.step(particle, [this](Vec3 p) { return field_.grad_erms2(p); }, rng);
      const double lag = (particle.position - trap).norm();
      report.max_lag = std::max(report.max_lag, lag);
    }
    report.elapsed += site_period;
    ++report.steps;
    if ((particle.position - trap).norm() > field_.capture_radius()) {
      report.retained = false;
      break;
    }
  }
  // Restore the caller's static cage set.
  sites.erase(sites.begin());
  field_.set_sites(sites);
  report.final_position = particle.position;
  return report;
}

void ManipulationEngine::settle(physics::ParticleBody& particle, double duration, Rng& rng) {
  BIOCHIP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  const double dt = integrator_.options().dt;
  const auto steps = static_cast<std::size_t>(std::round(duration / dt));
  for (std::size_t s = 0; s < steps; ++s)
    integrator_.step(particle, [this](Vec3 p) { return field_.grad_erms2(p); }, rng);
}

}  // namespace biochip::core
