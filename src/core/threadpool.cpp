#include "core/threadpool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::core {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t total = threads;
  if (total == 0) total = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // The caller is one lane of parallelism; spawn the rest.
  workers_.reserve(total - 1);
  for (std::size_t w = 0; w + 1 < total; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(std::size_t part) {
  const std::size_t n = job_end_ - job_begin_;
  const std::size_t chunk = (n + job_parts_ - 1) / job_parts_;
  const std::size_t b = job_begin_ + part * chunk;
  const std::size_t e = std::min(job_end_, b + chunk);
  if (b >= e) return;
  try {
    (*job_)(b, e);
  } catch (...) {
    std::lock_guard lk(error_m_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(m_);
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    for (;;) {
      // acq_rel pairs with the release store in parallel_for: a stale worker
      // racing into the next job's counter still sees that job's state.
      const std::size_t part = next_part_.fetch_add(1, std::memory_order_acq_rel);
      if (part >= job_parts_) break;
      run_chunk(part);
      if (parts_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == job_parts_) {
        std::lock_guard lk(m_);
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn,
    std::size_t max_parts) {
  BIOCHIP_REQUIRE(begin <= end, "parallel_for range inverted");
  const std::size_t n = end - begin;
  if (n == 0) return;
  std::size_t parts = max_parts == 0 ? size() : std::min(max_parts, size());
  parts = std::min(parts, n);
  if (parts <= 1) {
    chunk_fn(begin, end);
    return;
  }

  std::lock_guard job_lk(job_m_);
  {
    std::lock_guard lk(m_);
    job_ = &chunk_fn;
    job_begin_ = begin;
    job_end_ = end;
    job_parts_ = parts;
    parts_done_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
    // Release-publish the job state: workers claim chunks with an acquire RMW
    // on this counter, so even one racing in from a previous generation sees
    // the fields written above.
    next_part_.store(0, std::memory_order_release);
  }
  wake_cv_.notify_all();

  // The calling thread claims chunks alongside the workers.
  for (;;) {
    const std::size_t part = next_part_.fetch_add(1, std::memory_order_acq_rel);
    if (part >= job_parts_) break;
    run_chunk(part);
    parts_done_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock lk(m_);
    done_cv_.wait(lk, [&] {
      return parts_done_.load(std::memory_order_acquire) == job_parts_;
    });
    job_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace biochip::core
