#include "core/threadpool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::core {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t total = threads;
  if (total == 0) total = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // The caller is one lane of parallelism; spawn the rest.
  workers_.reserve(total - 1);
  for (std::size_t w = 0; w + 1 < total; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(std::size_t part, std::size_t parts) {
  const std::size_t n = job_end_ - job_begin_;
  const std::size_t chunk = (n + parts - 1) / parts;
  const std::size_t b = job_begin_ + part * chunk;
  const std::size_t e = std::min(job_end_, b + chunk);
  if (b >= e) return;
  try {
    (*job_)(b, e);
  } catch (...) {
    std::lock_guard lk(error_m_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(m_);
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    for (;;) {
      // The acq_rel RMW pairs with the release store in parallel_for, so a
      // claim whose generation matches gen_parts_ has synchronized with that
      // job's publish and may read the plain job fields. A ticket drawn from
      // an older generation's space (this worker raced ahead of the reset, or
      // slept through a whole job) is detected by the generation mismatch and
      // discarded — that job is already complete, so no chunk is lost.
      const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_acq_rel);
      const std::uint64_t gp = gen_parts_.load(std::memory_order_acquire);
      if ((t >> kPartBits) != (gp >> kPartBits)) break;
      const std::size_t part = static_cast<std::size_t>(t & kPartMask);
      const std::size_t parts = static_cast<std::size_t>(gp & kPartMask);
      if (part >= parts) break;
      run_chunk(part, parts);
      if (parts_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == parts) {
        std::lock_guard lk(m_);
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn,
    std::size_t max_parts) {
  BIOCHIP_REQUIRE(begin <= end, "parallel_for range inverted");
  const std::size_t n = end - begin;
  if (n == 0) return;
  std::size_t parts = max_parts == 0 ? size() : std::min(max_parts, size());
  parts = std::min(parts, n);
  jobs_total_.fetch_add(1, std::memory_order_relaxed);
  chunks_total_.fetch_add(parts <= 1 ? 1 : parts, std::memory_order_relaxed);
  std::uint64_t prev_max = max_parts_.load(std::memory_order_relaxed);
  while (prev_max < parts &&
         !max_parts_.compare_exchange_weak(prev_max, parts,
                                           std::memory_order_relaxed)) {
  }
  if (parts <= 1) {
    chunk_fn(begin, end);
    return;
  }
  BIOCHIP_REQUIRE(parts <= kPartMask, "parallel_for chunk count overflows ticket space");

  std::lock_guard job_lk(job_m_);
  std::uint64_t gen = 0;
  {
    std::lock_guard lk(m_);
    job_ = &chunk_fn;
    job_begin_ = begin;
    job_end_ = end;
    gen = ++generation_;
    parts_done_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    gen_parts_.store((gen << kPartBits) | parts, std::memory_order_release);
    // Release-publish the job state: claimers validate their ticket's
    // generation against gen_parts_ before touching any of the fields above,
    // so a stale worker can never act on a mixed old/new view of the job.
    ticket_.store(gen << kPartBits, std::memory_order_release);
  }
  wake_cv_.notify_all();

  // The calling thread claims chunks alongside the workers. Tickets it draws
  // are always from its own generation: only parallel_for advances the
  // generation, and job_m_ makes this the sole active call.
  for (;;) {
    const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t part = static_cast<std::size_t>(t & kPartMask);
    if (part >= parts) break;
    run_chunk(part, parts);
    parts_done_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock lk(m_);
    done_cv_.wait(lk, [&] {
      return parts_done_.load(std::memory_order_acquire) == parts;
    });
    job_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace biochip::core
