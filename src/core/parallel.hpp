#pragma once
/// \file parallel.hpp
/// \brief Parallel multi-cage transport: plan with the CAD router, execute
/// with the cage controller, verify with physics.
///
/// The whole point of a 100k-electrode array (claim C1) is *simultaneous*
/// manipulation: thousands of cages moving in one actuation step. This
/// module bridges the CAD layer (collision-free time-expanded routing) and
/// the physical layer (per-step cage moves plus overdamped particle
/// dynamics for every trapped cell).

#include <vector>

#include "cad/route.hpp"
#include "chip/cage.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "core/simulation.hpp"
#include "physics/dynamics.hpp"

namespace biochip::core {

class ThreadPool;

/// One cage-to-destination request.
struct ParallelMoveRequest {
  int cage_id = 0;
  GridCoord destination;
};

/// Outcome of a parallel transport episode.
struct ParallelMoveResult {
  bool planned = false;      ///< router found collision-free paths for all
  bool success = false;      ///< planned && no particle lost during execution
  cad::RouteResult routes;   ///< the committed plan (ids = cage ids)
  std::size_t steps_executed = 0;
  std::vector<int> lost_cage_ids;  ///< cages whose particle escaped en route
  double elapsed = 0.0;      ///< physical time of the episode [s]
};

/// Plans and executes a simultaneous transport of several cages.
///
/// * Non-moving cages are registered as zero-length routes so the planner
///   keeps everyone separated from them.
/// * Execution advances one actuation step (one site hop per cage) at a
///   time through the CageController (which re-validates every step) and
///   integrates every tracked particle with the manipulation engine's
///   dynamics between hops.
/// * Particles are matched to cages by `bodies_in_cages` index pairs.
class ParallelTransporter {
 public:
  ParallelTransporter(chip::CageController& cages, ManipulationEngine& engine,
                      double site_period);

  /// Plan only (no physics): returns the route plan, ids = cage ids.
  cad::RouteResult plan(const std::vector<ParallelMoveRequest>& requests) const;

  /// Plan and execute with physics-in-the-loop.
  /// `bodies`: the platform's particle array. `cage_bodies`: (cage id, index
  /// into bodies) for every tracked cage (moving or not).
  ParallelMoveResult execute(const std::vector<ParallelMoveRequest>& requests,
                             std::vector<physics::ParticleBody>& bodies,
                             const std::vector<std::pair<int, int>>& cage_bodies,
                             Rng& rng);

  /// One independent transport batch for episode-level fan-out. Episodes
  /// must not share transporters (i.e. controllers/engines) or body arrays:
  /// each one mutates its own chip state.
  struct Episode {
    ParallelTransporter* transporter = nullptr;
    std::vector<ParallelMoveRequest> requests;
    std::vector<physics::ParticleBody>* bodies = nullptr;
    std::vector<std::pair<int, int>> cage_bodies;
  };

  /// Execute many independent episodes concurrently over the shared worker
  /// pool — the coarse-grained parallelism level above the per-substep
  /// particle loop. Episode n integrates on `rng.split().fork(n)`:
  /// counter-based streams make every trajectory bitwise identical for any
  /// `max_parts` (pass 1 for the serial reference). Inside the fan-out each
  /// episode runs its body loop serially (nested parallel_for on one pool
  /// would deadlock), so per-episode results also match what `execute`
  /// produces when the pool has a single lane.
  static std::vector<ParallelMoveResult> execute_episodes(std::vector<Episode>& episodes,
                                                          Rng& rng,
                                                          std::size_t max_parts = 0);

 private:
  ParallelMoveResult run(const std::vector<ParallelMoveRequest>& requests,
                         std::vector<physics::ParticleBody>& bodies,
                         const std::vector<std::pair<int, int>>& cage_bodies,
                         Rng stream_base, core::ThreadPool* pool);

  chip::CageController& cages_;
  ManipulationEngine& engine_;
  double site_period_;
};

}  // namespace biochip::core
