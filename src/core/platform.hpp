#pragma once
/// \file platform.hpp
/// \brief `LabOnChipPlatform` — the top-level public API: device + physics +
/// sensing + CAD glued into load / detect / trap / move / report.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cad/synthesis.hpp"
#include "cell/population.hpp"
#include "chip/cage.hpp"
#include "chip/device.hpp"
#include "core/parallel.hpp"
#include "core/simulation.hpp"
#include "physics/medium.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"
#include "sensor/scan.hpp"

namespace biochip::core {

/// Platform-wide configuration.
struct PlatformConfig {
  chip::DeviceConfig device;        ///< chip build (see chip::paper_config_on_node)
  physics::Medium medium;           ///< suspending buffer
  sensor::ScanTiming scan;          ///< readout chain
  double tow_speed = 50e-6;         ///< cage drag speed [m/s] (paper: 10-100 µm/s)
  /// Trap basin extent in pitches. Must exceed 1.0: a one-pitch cage hop
  /// momentarily leaves the particle a full pitch from the new trap center,
  /// which must still be inside the basin for the tow to work.
  double capture_radius_pitches = 1.5;
  int cage_separation = 2;          ///< min cage spacing [pitches]
  std::uint64_t seed = 42;          ///< master seed (offsets, dynamics, sampling)

  static PlatformConfig paper_defaults();
};

/// Result of one platform-level cell move.
struct MoveResult {
  bool success = false;
  TowReport tow;
  std::size_t pattern_updates = 0;  ///< actuation reprogramming events
  double electronics_time = 0.0;    ///< total programming time [s]
};

/// The assembled lab-on-chip: one instance per experiment.
class LabOnChipPlatform {
 public:
  explicit LabOnChipPlatform(const PlatformConfig& config);

  const PlatformConfig& config() const { return config_; }
  const chip::BiochipDevice& device() const { return device_; }
  const field::HarmonicCage& unit_cage() const { return unit_cage_; }
  chip::CageController& cages() { return cages_; }
  const std::vector<cell::Instance>& sample() const { return sample_; }
  std::vector<physics::ParticleBody>& bodies() { return bodies_; }

  /// Pipette a sample into the chamber: draws the mixture, sediments it,
  /// converts to dynamics bodies at the device drive frequency.
  void load_sample(const std::vector<cell::MixtureComponent>& mixture);

  /// Acquire an n-frame-averaged capacitance image of the current scene and
  /// run threshold detection at `threshold_sigma` × the averaged noise.
  std::vector<sensor::Detection> detect_cells(std::size_t n_frames,
                                              double threshold_sigma = 5.0);

  /// Time spent acquiring those frames [s].
  double acquisition_time(std::size_t n_frames) const;

  /// Create a cage over the sample instance with the given id and pull the
  /// cell into the trap (settle). Returns the cage id, or nullopt if the
  /// site is unavailable (separation) or the cell's DEP is not trapping.
  std::optional<int> trap_cell(int instance_id);

  /// Move a trapped cell to a destination site: routes a single-cage path
  /// (Manhattan), executes it physics-in-the-loop, updates the cage state.
  MoveResult move_cell(int cage_id, GridCoord destination);

  /// Move many trapped cells *simultaneously*: collision-free multi-cage
  /// routing (time-expanded A*) executed one actuation step at a time with
  /// full particle dynamics. The chip's signature parallel operation.
  ParallelMoveResult move_cells(const std::vector<ParallelMoveRequest>& requests);

  /// Synthesize an assay onto this chip (dims/step period derived from the
  /// device and tow speed).
  cad::SynthesisResult run_assay(const cad::AssayGraph& graph,
                                 const cad::ChipResources& resources) const;

  /// Index of the body trapped in a cage (tracked by trap_cell/move_cell).
  std::optional<int> body_in_cage(int cage_id) const;

  /// Seconds a cage takes to hop one pitch at the configured tow speed.
  double site_period() const;

 private:
  physics::ParticleBody& body_for_instance(int instance_id);
  void refresh_engine_sites();

  PlatformConfig config_;
  chip::BiochipDevice device_;
  field::HarmonicCage unit_cage_;
  chip::CageController cages_;
  ManipulationEngine engine_;
  sensor::FrameSynthesizer imager_;
  std::vector<cell::Instance> sample_;
  std::vector<physics::ParticleBody> bodies_;
  std::vector<std::pair<int, int>> cage_to_body_;  ///< (cage id, body index)
  Rng rng_;
};

}  // namespace biochip::core
