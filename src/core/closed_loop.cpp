#include "core/closed_loop.hpp"

#include "common/error.hpp"
#include "core/threadpool.hpp"

namespace biochip::core {

ClosedLoopTransporter::ClosedLoopTransporter(chip::CageController& cages,
                                             ManipulationEngine& engine,
                                             const sensor::FrameSynthesizer& imager,
                                             const chip::DefectMap& defects,
                                             double site_period,
                                             control::ControlConfig config)
    : engine_(cages, engine, imager, defects, site_period, std::move(config)) {}

control::EpisodeReport ClosedLoopTransporter::execute(
    const std::vector<control::CageGoal>& goals,
    std::vector<physics::ParticleBody>& bodies,
    const std::vector<std::pair<int, int>>& cage_bodies, Rng& rng) {
  return engine_.run(goals, bodies, cage_bodies, rng.split(), &ThreadPool::global());
}

std::vector<control::EpisodeReport> ClosedLoopTransporter::execute_episodes(
    std::vector<Episode>& episodes, Rng& rng, std::size_t max_parts) {
  std::vector<control::EpisodeReport> results(episodes.size());
  // One counter-based stream per episode: results are independent of how
  // the pool chunks the episode range.
  const Rng base = rng.split();
  ThreadPool::global().parallel_for(
      0, episodes.size(),
      [&](std::size_t eb, std::size_t ee) {
        for (std::size_t n = eb; n < ee; ++n) {
          Episode& ep = episodes[n];
          BIOCHIP_REQUIRE(ep.transporter != nullptr && ep.bodies != nullptr,
                          "episode needs a transporter and a body array");
          // pool = nullptr: the per-body loop runs serially inside the
          // episode-level fan-out (nested parallel_for on the same pool
          // would deadlock).
          results[n] = ep.transporter->engine_.run(ep.goals, *ep.bodies,
                                                   ep.cage_bodies, base.fork(n),
                                                   nullptr);
        }
      },
      max_parts);
  return results;
}

control::OrchestratorReport ClosedLoopTransporter::execute_orchestrated(
    control::Orchestrator& orchestrator, std::vector<control::ChamberSetup>& chambers,
    const std::vector<control::TransferGoal>& transfers, Rng& rng,
    std::size_t max_parts, obs::Observer* obs) {
  orchestrator.set_observer(obs);
  return orchestrator.run(chambers, transfers, rng.split(), &ThreadPool::global(),
                          max_parts);
}

control::StreamingReport ClosedLoopTransporter::execute_streaming(
    control::StreamingService& service,
    std::vector<control::ChamberSetup>& chambers, Rng& rng,
    std::size_t max_parts, obs::Observer* obs) {
  service.set_observer(obs);
  return service.run(chambers, rng.split(), &ThreadPool::global(), max_parts);
}

}  // namespace biochip::core
