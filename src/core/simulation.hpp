#pragma once
/// \file simulation.hpp
/// \brief Coupled actuation ↔ particle-dynamics simulation.
///
/// Whole-array field solves per actuation step are intractable at 100k
/// electrodes, and unnecessary: a cage's near field is translation-invariant
/// across the uniform array. The engine therefore calibrates the harmonic
/// cage surrogate once (full local solve, see BiochipDevice::calibrate_cage)
/// and evaluates every active cage as a translated copy; outside all cages
/// the background field is laterally uniform (zero DEP drive, gravity only).
/// The surrogate-vs-solver error is quantified in `bench_field_solver`.

#include <vector>

#include "chip/cage.hpp"
#include "chip/device.hpp"
#include "common/rng.hpp"
#include "field/analytic.hpp"
#include "physics/dynamics.hpp"
#include "physics/medium.hpp"

namespace biochip::core {

/// ∇E_rms² field assembled from translated copies of a calibrated unit cage.
class CageFieldModel {
 public:
  /// `unit`: calibrated cage (its center defines the per-site offset).
  /// `pitch`: electrode pitch; `capture_radius`: quadratic-region extent.
  CageFieldModel(const field::HarmonicCage& unit, double pitch, double capture_radius);

  const field::HarmonicCage& unit() const { return unit_; }
  double capture_radius() const { return capture_radius_; }

  /// Trap center (in chamber coordinates) for a cage parked at `site`.
  Vec3 trap_center(GridCoord site) const;

  /// Replace the active cage site list (one entry per live cage).
  void set_sites(std::vector<GridCoord> sites);
  const std::vector<GridCoord>& sites() const { return sites_; }

  /// ∇E_rms² at p: the nearest active cage within the capture radius
  /// dominates; elsewhere the drive is zero (uniform background field).
  Vec3 grad_erms2(Vec3 p) const;

 private:
  field::HarmonicCage unit_;
  double pitch_;
  double capture_radius_;
  std::vector<GridCoord> sites_;
};

/// Outcome of dragging one cage (with its trapped particle) along a path.
struct TowReport {
  bool retained = true;        ///< particle stayed within the capture radius
  double max_lag = 0.0;        ///< worst particle-to-trap distance [m]
  double elapsed = 0.0;        ///< wall-clock time of the manipulation [s]
  std::size_t steps = 0;       ///< cage steps executed
  Vec3 final_position;         ///< particle position at the end
};

/// Physics-in-the-loop cage tow: advance the cage one site at a time at
/// `site_period` per step, integrating the particle between steps.
class ManipulationEngine {
 public:
  ManipulationEngine(const chip::BiochipDevice& device, const physics::Medium& medium,
                     const field::HarmonicCage& unit_cage, double capture_radius);

  const CageFieldModel& field_model() const { return field_; }
  physics::OverdampedIntegrator& integrator() { return integrator_; }

  /// Tow a particle along a site path (adjacent sites). The cage dwells
  /// `site_period` seconds per hop; the particle is integrated with the
  /// engine's dt. Other active cages (field_model().sites()) stay static.
  TowReport tow(physics::ParticleBody& particle, const std::vector<GridCoord>& path,
                double site_period, Rng& rng);

  /// Let a free (untrapped) particle settle for `duration` seconds.
  void settle(physics::ParticleBody& particle, double duration, Rng& rng);

 private:
  CageFieldModel field_;
  physics::OverdampedIntegrator integrator_;
};

}  // namespace biochip::core
