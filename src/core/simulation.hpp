#pragma once
/// \file simulation.hpp
/// \brief Coupled actuation ↔ particle-dynamics simulation.
///
/// Whole-array field solves per actuation step are intractable at 100k
/// electrodes, and unnecessary: a cage's near field is translation-invariant
/// across the uniform array. The engine therefore calibrates the harmonic
/// cage surrogate once (full local solve, see BiochipDevice::calibrate_cage)
/// and evaluates every active cage as a translated copy; outside all cages
/// the background field is laterally uniform (zero DEP drive, gravity only).
/// The surrogate-vs-solver error is quantified in `bench_field_solver`.

#include <cstdint>
#include <vector>

#include "chip/cage.hpp"
#include "chip/device.hpp"
#include "common/rng.hpp"
#include "field/analytic.hpp"
#include "physics/dynamics.hpp"
#include "physics/medium.hpp"

namespace biochip::core {

/// ∇E_rms² field assembled from translated copies of a calibrated unit cage.
///
/// Traps sit on the regular electrode pitch grid, so the nearest active cage
/// is found by rounding the query position to site coordinates and probing
/// the few sites whose centers can lie within the capture radius against a
/// flat hash set of active sites — O(1) per query, independent of how many
/// cages are live. That is what keeps whole-array episodes (thousands of
/// simultaneous cages, claim C1) linear in cage count.
class CageFieldModel {
 public:
  /// `unit`: calibrated cage (its center defines the per-site offset).
  /// `pitch`: electrode pitch; `capture_radius`: quadratic-region extent.
  CageFieldModel(const field::HarmonicCage& unit, double pitch, double capture_radius);

  const field::HarmonicCage& unit() const { return unit_; }
  double capture_radius() const { return capture_radius_; }

  /// Trap center (in chamber coordinates) for a cage parked at `site`.
  Vec3 trap_center(GridCoord site) const;

  /// Replace the active cage site list (one entry per live cage). When the
  /// new list has the same length as the current one and differs in only a
  /// few positions (the tow / parallel-transport pattern: one cage moves per
  /// hop, everyone else stays parked), the spatial index is updated
  /// incrementally — one erase + one insert per changed entry — instead of
  /// being rebuilt, so per-hop cost stops scaling with the live cage count.
  /// Any other change falls back to a full O(sites) rebuild.
  void set_sites(std::vector<GridCoord> sites);
  const std::vector<GridCoord>& sites() const { return sites_; }

  /// ∇E_rms² at p: the nearest active cage within the capture radius
  /// dominates; elsewhere the drive is zero (uniform background field).
  /// O(1): probes the spatial hash around p. Exact distance ties go to the
  /// smallest (row, col) site — the same deterministic rule on every path,
  /// so the hashed scan and the linear oracle agree even at midpoints
  /// exactly equidistant between trap centers.
  Vec3 grad_erms2(Vec3 p) const;

  /// Reference implementation: linear scan over the active site list. Same
  /// field as grad_erms2, including tie-breaking; kept as the equivalence
  /// oracle for tests and as the fallback when the capture radius spans more
  /// candidate sites than there are active cages.
  Vec3 grad_erms2_linear(Vec3 p) const;

 private:
  /// O(1) membership probe of the active-site hash set.
  bool site_active(GridCoord site) const;
  /// Drive field of the cage parked at `center`, evaluated at p.
  Vec3 drive_from(Vec3 center, Vec3 p) const;
  void rebuild_index();
  void insert_key(std::uint64_t key);
  void erase_key(std::uint64_t key);

  field::HarmonicCage unit_;
  double pitch_;
  double capture_radius_;
  std::vector<GridCoord> sites_;

  // Flat open-addressed hash multiset of active sites (power-of-two slots,
  // linear probing; load factor <= 0.5). Each slot carries the multiplicity
  // of its key (duplicate sites in the list are legal), and deletion uses
  // backward shifting so probe chains never need tombstones.
  std::vector<std::uint64_t> slot_key_;
  std::vector<std::uint32_t> slot_count_;
  std::vector<std::uint8_t> slot_used_;
  std::size_t slot_mask_ = 0;
};

/// Outcome of dragging one cage (with its trapped particle) along a path.
struct TowReport {
  bool retained = true;        ///< particle stayed within the capture radius
  double max_lag = 0.0;        ///< worst particle-to-trap distance [m]
  double elapsed = 0.0;        ///< wall-clock time of the manipulation [s]
  std::size_t steps = 0;       ///< cage steps executed
  Vec3 final_position;         ///< particle position at the end
};

/// Physics-in-the-loop cage tow: advance the cage one site at a time at
/// `site_period` per step, integrating the particle between steps.
class ManipulationEngine {
 public:
  ManipulationEngine(const chip::BiochipDevice& device, const physics::Medium& medium,
                     const field::HarmonicCage& unit_cage, double capture_radius);

  const CageFieldModel& field_model() const { return field_; }
  /// Mutable access for callers that manage the active cage set themselves
  /// (e.g. ParallelTransporter synchronizing sites with its CageController).
  CageFieldModel& field_model() { return field_; }
  physics::OverdampedIntegrator& integrator() { return integrator_; }

  /// Tow a particle along a site path (adjacent sites). The cage dwells
  /// `site_period` seconds per hop; the particle is integrated with the
  /// engine's dt. Other active cages (field_model().sites()) stay static.
  TowReport tow(physics::ParticleBody& particle, const std::vector<GridCoord>& path,
                double site_period, Rng& rng);

  /// Let a free (untrapped) particle settle for `duration` seconds.
  void settle(physics::ParticleBody& particle, double duration, Rng& rng);

 private:
  CageFieldModel field_;
  physics::OverdampedIntegrator integrator_;
};

}  // namespace biochip::core
