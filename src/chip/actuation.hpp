#pragma once
/// \file actuation.hpp
/// \brief Per-electrode phase programming (the chip's actuation state).
///
/// Each pixel latch selects one of: in-phase drive (PhaseA), counter-phase
/// drive (PhaseB), or ground. With the conductive lid driven at PhaseA and
/// the background electrodes at PhaseB, a near-uniform field (~2V/gap) fills
/// the chamber; switching one electrode to PhaseA (in phase with the lid)
/// pinches that field off above it, leaving a closed field minimum — the
/// levitated nDEP cage (Medoro et al., IEDM 2000; Manaresi et al., JSSC
/// 2003). Convention here: background = PhaseB, cage sites = PhaseA,
/// lid = PhaseA.

#include <complex>
#include <cstdint>
#include <vector>

#include "chip/electrode_array.hpp"
#include "common/geometry.hpp"

namespace biochip::chip {

/// Pixel drive selection held in the per-pixel latch.
enum class PhaseSel : std::uint8_t {
  kGround = 0,
  kPhaseA = 1,  ///< +V·cos(ωt)
  kPhaseB = 2,  ///< −V·cos(ωt) (180° counter-phase)
};

/// Whole-array actuation state. Value type: cheap to copy for small arrays,
/// and diffable so the programming model can count dirty pixels.
class ActuationPattern {
 public:
  /// All electrodes initialized to `fill`.
  ActuationPattern(const ElectrodeArray& array, PhaseSel fill = PhaseSel::kPhaseB);

  int cols() const { return cols_; }
  int rows() const { return rows_; }

  PhaseSel get(GridCoord c) const;
  void set(GridCoord c, PhaseSel phase);

  /// Number of pixels whose state differs from `other` (reprogram cost).
  std::size_t diff_count(const ActuationPattern& other) const;

  /// Complex drive phasor of electrode c for amplitude `v` [V].
  std::complex<double> phasor(GridCoord c, double v) const;

  /// Drive phasors for every electrode, row-major (for the field solver).
  std::vector<std::complex<double>> phasors(double v) const;

  bool operator==(const ActuationPattern& other) const = default;

 private:
  std::size_t index(GridCoord c) const;
  int cols_;
  int rows_;
  std::vector<PhaseSel> state_;
};

/// Background pattern: everything PhaseB (no cages; uniform field with the
/// PhaseA lid).
ActuationPattern background(const ElectrodeArray& array);

/// Single closed cage at `site` (PhaseA island on PhaseB background).
/// `site_size` electrodes per side (1 for bead-scale, 2-3 for large cells).
ActuationPattern single_cage(const ElectrodeArray& array, GridCoord site, int site_size = 1);

/// Regular lattice of cages spaced `spacing` pitches apart (claim C1's
/// "tens of thousands of DEP cages"). Returns the pattern and cage sites.
struct CageLattice {
  ActuationPattern pattern;
  std::vector<GridCoord> sites;
};
CageLattice cage_lattice(const ElectrodeArray& array, int spacing);

/// Apply a one-electrode cage move to a pattern (old site back to PhaseB
/// background, new site to PhaseA). Both sites must be in the array.
void move_cage(ActuationPattern& pattern, GridCoord from, GridCoord to);

}  // namespace biochip::chip
