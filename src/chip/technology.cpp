#include "chip/technology.hpp"

#include "common/error.hpp"

namespace biochip::chip {

double CmosNode::pixel_logic_area(int bits_per_pixel) const {
  BIOCHIP_REQUIRE(bits_per_pixel >= 1, "pixel needs at least one state bit");
  // State bits plus an empirical 12x-SRAM-bit equivalent for the actuation
  // switch pair, sensor front-end device, and local decode.
  constexpr double kOverheadBits = 12.0;
  return sram_bit_area * (static_cast<double>(bits_per_pixel) + kOverheadBits);
}

std::vector<CmosNode> node_catalog() {
  // name, L [m], VDD, VDD_io, metals, SRAM bit [m²] (~100-150 F²), €/mm², year
  return {
      {"2.0um", 2.0e-6, 5.0, 5.0, 2, 4.0e-10, 0.020, 1985},
      {"1.2um", 1.2e-6, 5.0, 5.0, 2, 1.5e-10, 0.025, 1989},
      {"0.8um", 0.8e-6, 5.0, 5.0, 3, 7.0e-11, 0.030, 1992},
      {"0.6um", 0.6e-6, 5.0, 5.0, 3, 4.0e-11, 0.035, 1994},
      {"0.35um", 0.35e-6, 3.3, 5.0, 4, 1.5e-11, 0.045, 1996},
      {"0.25um", 0.25e-6, 2.5, 3.3, 5, 8.0e-12, 0.060, 1998},
      {"0.18um", 0.18e-6, 1.8, 3.3, 6, 4.5e-12, 0.080, 2000},
      {"0.13um", 0.13e-6, 1.2, 2.5, 7, 2.5e-12, 0.110, 2002},
      {"90nm", 0.09e-6, 1.0, 2.5, 8, 1.0e-12, 0.150, 2004},
  };
}

CmosNode node_by_name(const std::string& name) {
  for (const CmosNode& n : node_catalog())
    if (n.name == name) return n;
  throw ConfigError("unknown CMOS node: " + name);
}

CmosNode paper_node() { return node_by_name("0.35um"); }

bool pixel_fits(const CmosNode& node, double pitch, int bits_per_pixel) {
  BIOCHIP_REQUIRE(pitch > 0.0, "pitch must be positive");
  return node.pixel_logic_area(bits_per_pixel) <= pitch * pitch;
}

}  // namespace biochip::chip
