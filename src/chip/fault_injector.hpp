#pragma once
/// \file fault_injector.hpp
/// \brief Deterministic runtime fault schedule for live episodes.
///
/// Every defect in `chip/defects` used to be frozen at episode start; real
/// chips misbehave *while they run* — electrodes die mid-assay, sensor rows
/// drop out, transfer ports jam. The injector turns that into a seeded,
/// tick-driven schedule: scripted faults fire at their exact tick, and
/// Poisson-arrival faults are drawn from counter-based `Rng::fork` streams
/// keyed (chamber | port, tick), so the schedule is bitwise identical for any
/// execution order or worker count — the same determinism contract the rest
/// of the control stack honors (docs/architecture.md).
///
/// The injector only *decides* what fails when; it owns no chip state.
/// The caller (`control::Orchestrator`, or a test driving a single
/// `control::EpisodeRuntime`) applies each returned `FaultEvent` to the live
/// world — defect-map mutation, sensor overlay, port health — and records it
/// as a typed `control::ControlEvent`, so tests can account injected vs
/// observed exactly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace biochip::chip {

/// What failed. Electrode faults are permanent; sensor and intermittent port
/// faults carry a duration; `kPortFailed` is permanent.
enum class FaultKind : std::uint8_t {
  kElectrodeDead,        ///< self-test catches it: appended to the defect map
  kElectrodeStuckCage,   ///< latch stuck in-phase, announced via the defect map
  kElectrodeSilentDead,  ///< ground truth only — the controller must discover it
  kSensorRowDropout,     ///< one sensor row reads zero for `duration` ticks
  kSensorPixelBurst,     ///< a pixel tile reads phantom ΔC for `duration` ticks
  kPortIntermittent,     ///< transfer port down for `duration` ticks
  kPortFailed,           ///< transfer port down permanently
};

const char* to_string(FaultKind kind);

/// One fully resolved injection. Scripted entries use the same struct (with
/// `tick` = fire tick); sampled entries are resolved by the injector.
struct FaultEvent {
  int tick = 0;
  FaultKind kind = FaultKind::kElectrodeDead;
  int chamber = -1;  ///< -1 for port faults
  GridCoord site;    ///< electrode / tile origin / {0, row} for row dropouts
  int port = -1;     ///< -1 for chamber faults
  int duration = 0;  ///< ticks a transient fault lasts (0 = permanent)
};

/// Poisson arrival rates, per chamber-tick (electrode/sensor kinds) or
/// per port-tick (port kinds). 0 disables a kind.
struct FaultRates {
  double electrode_dead = 0.0;
  double electrode_stuck_cage = 0.0;
  double electrode_silent_dead = 0.0;
  double sensor_row_dropout = 0.0;
  double sensor_pixel_burst = 0.0;
  double port_intermittent = 0.0;
  double port_failed = 0.0;
};

struct FaultScheduleConfig {
  std::vector<FaultEvent> scripted;  ///< fired at their exact tick, in order
  FaultRates rates;
  int sensor_dropout_duration = 4;  ///< ticks a sampled row dropout lasts
  int sensor_burst_duration = 2;    ///< ticks a sampled pixel burst lasts
  int burst_tile = 3;               ///< tile side of a sampled pixel burst
  int port_down_duration = 25;      ///< ticks a sampled intermittent outage lasts
  /// Cap on sampled *electrode* faults per chamber (scripted ones always
  /// fire); 0 = unbounded. Lets a soak accumulate defects to a target
  /// density and then hold it.
  std::size_t max_electrode_faults_per_chamber = 0;
};

/// Per-chamber site-grid shape the injector samples sites from.
struct ChamberShape {
  int cols = 0;
  int rows = 0;
};

/// Seeded, tick-driven fault schedule over a multi-chamber world.
///
/// `tick(t)` returns every fault firing at supervisory tick t: scripted
/// entries first (input order), then sampled ones in ascending (chamber,
/// kind) / (port, kind) order. Sampling draws from
/// `stream.fork(chamber).fork(t)` (chambers) and
/// `stream.fork(n_chambers + port).fork(t)` (ports): the result depends only
/// on (config, shapes, seed, t), never on call interleaving, so serial and
/// pooled runs see the identical schedule. Ticks must be queried in
/// strictly increasing order (the electrode-fault cap counts fired faults).
class FaultInjector {
 public:
  FaultInjector(FaultScheduleConfig config, std::vector<ChamberShape> chambers,
                std::size_t n_ports, Rng stream);

  const FaultScheduleConfig& config() const { return config_; }

  /// All faults firing at tick t (strictly increasing t across calls).
  std::vector<FaultEvent> tick(int t);

  /// Total faults fired so far.
  std::size_t injected() const { return injected_; }
  /// Sampled electrode faults fired so far in one chamber (cap bookkeeping).
  std::size_t electrode_faults(int chamber) const;

 private:
  FaultScheduleConfig config_;
  std::vector<ChamberShape> chambers_;
  std::size_t n_ports_;
  Rng stream_;
  std::size_t next_scripted_ = 0;
  int last_tick_ = 0;
  std::size_t injected_ = 0;
  std::vector<std::size_t> electrode_fired_;  ///< per chamber, sampled only
};

}  // namespace biochip::chip
