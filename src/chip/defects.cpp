#include "chip/defects.hpp"

#include <cmath>

#include "common/error.hpp"
#include "chip/actuation.hpp"

namespace biochip::chip {

DefectMap::DefectMap(const ElectrodeArray& array)
    : cols_(array.cols()), rows_(array.rows()),
      states_(array.electrode_count(), PixelState::kOk) {}

PixelState DefectMap::state(GridCoord c) const {
  BIOCHIP_REQUIRE(c.col >= 0 && c.col < cols_ && c.row >= 0 && c.row < rows_,
                  "defect map coordinate out of range");
  return states_[static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c.col)];
}

void DefectMap::set_state(GridCoord c, PixelState s) {
  BIOCHIP_REQUIRE(c.col >= 0 && c.col < cols_ && c.row >= 0 && c.row < rows_,
                  "defect map coordinate out of range");
  states_[static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
          static_cast<std::size_t>(c.col)] = s;
}

std::size_t DefectMap::defect_count() const {
  std::size_t n = 0;
  for (PixelState s : states_)
    if (s != PixelState::kOk) ++n;
  return n;
}

DefectMap sample_defects(const ElectrodeArray& array, double defect_probability,
                         Rng& rng) {
  BIOCHIP_REQUIRE(defect_probability >= 0.0 && defect_probability <= 1.0,
                  "defect probability must be in [0,1]");
  DefectMap map(array);
  static constexpr PixelState kKinds[3] = {
      PixelState::kStuckBackground, PixelState::kStuckCage, PixelState::kDead};
  for (int r = 0; r < array.rows(); ++r)
    for (int c = 0; c < array.cols(); ++c)
      if (rng.bernoulli(defect_probability))
        map.set_state({c, r},
                      kKinds[static_cast<std::size_t>(rng.uniform_int(0, 2))]);
  return map;
}

bool site_usable(const ElectrodeArray& array, const DefectMap& defects, GridCoord site,
                 int ring) {
  BIOCHIP_REQUIRE(ring >= 0, "ring must be non-negative");
  for (int dr = -ring; dr <= ring; ++dr)
    for (int dc = -ring; dc <= ring; ++dc) {
      const GridCoord c{site.col + dc, site.row + dr};
      if (!array.contains(c)) return false;  // edge sites have no closed wall
      if (defects.state(c) != PixelState::kOk) return false;
    }
  return true;
}

double usable_cage_fraction(const ElectrodeArray& array, const DefectMap& defects,
                            int spacing, int ring) {
  const CageLattice lattice = cage_lattice(array, spacing);
  if (lattice.sites.empty()) return 0.0;
  std::size_t usable = 0;
  for (const GridCoord site : lattice.sites)
    if (site_usable(array, defects, site, ring)) ++usable;
  return static_cast<double>(usable) / static_cast<double>(lattice.sites.size());
}

std::vector<std::uint8_t> blocked_site_mask(const ElectrodeArray& array,
                                            const DefectMap& defects, int ring) {
  std::vector<std::uint8_t> mask(array.electrode_count(), 0);
  for (int r = 0; r < array.rows(); ++r)
    for (int c = 0; c < array.cols(); ++c)
      mask[static_cast<std::size_t>(r) * static_cast<std::size_t>(array.cols()) +
           static_cast<std::size_t>(c)] =
          site_usable(array, defects, {c, r}, ring) ? 0 : 1;
  return mask;
}

double all_good_yield(const ElectrodeArray& array, double defect_probability) {
  BIOCHIP_REQUIRE(defect_probability >= 0.0 && defect_probability <= 1.0,
                  "defect probability must be in [0,1]");
  // P(zero defects among N pixels) with small-p Poisson equivalence.
  return std::pow(1.0 - defect_probability,
                  static_cast<double>(array.electrode_count()));
}

double expected_usable_fraction(double defect_probability, int ring) {
  BIOCHIP_REQUIRE(ring >= 0, "ring must be non-negative");
  const double pixels = std::pow(2.0 * ring + 1.0, 2.0);
  return std::pow(1.0 - defect_probability, pixels);
}

}  // namespace biochip::chip
