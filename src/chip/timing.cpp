#include "chip/timing.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip::chip {

double ProgrammingModel::full_program_time(const ElectrodeArray& array) const {
  BIOCHIP_REQUIRE(clock_frequency > 0.0, "clock frequency must be positive");
  BIOCHIP_REQUIRE(word_bits >= 1, "word width must be >= 1");
  const double pixels_per_word =
      static_cast<double>(word_bits) / static_cast<double>(state_bits_per_pixel);
  const double words_per_row = std::ceil(static_cast<double>(array.cols()) / pixels_per_word);
  const double cycles =
      static_cast<double>(array.rows()) * (words_per_row + row_overhead_cycles);
  return cycles / clock_frequency;
}

double ProgrammingModel::incremental_program_time(std::size_t dirty_pixels) const {
  BIOCHIP_REQUIRE(clock_frequency > 0.0, "clock frequency must be positive");
  // Worst case: every dirty pixel lands in its own word, one row-addressed
  // write each.
  const double cycles = static_cast<double>(dirty_pixels) * (1.0 + row_overhead_cycles);
  return cycles / clock_frequency;
}

double ProgrammingModel::pattern_rate(std::size_t dirty_pixels) const {
  const double t = incremental_program_time(dirty_pixels);
  return t > 0.0 ? 1.0 / t : clock_frequency;
}

std::size_t ProgrammingModel::pattern_memory_bits(const ElectrodeArray& array) const {
  return array.electrode_count() * static_cast<std::size_t>(state_bits_per_pixel);
}

double pitch_transit_time(double pitch, double speed) {
  BIOCHIP_REQUIRE(pitch > 0.0, "pitch must be positive");
  BIOCHIP_REQUIRE(speed > 0.0, "speed must be positive");
  return pitch / speed;
}

double timing_headroom(const ElectrodeArray& array, const ProgrammingModel& model,
                       double cell_speed) {
  return pitch_transit_time(array.pitch(), cell_speed) / model.full_program_time(array);
}

}  // namespace biochip::chip
