#include "chip/electrode_array.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip::chip {

ElectrodeArray::ElectrodeArray(int cols, int rows, double pitch, double metal_fill)
    : cols_(cols), rows_(rows), pitch_(pitch), metal_fill_(metal_fill) {
  BIOCHIP_REQUIRE(cols >= 1 && rows >= 1, "array needs at least one electrode");
  BIOCHIP_REQUIRE(pitch > 0.0, "pitch must be positive");
  BIOCHIP_REQUIRE(metal_fill > 0.0 && metal_fill <= 1.0, "metal fill must be in (0,1]");
}

std::size_t ElectrodeArray::index(GridCoord c) const {
  BIOCHIP_REQUIRE(contains(c), "electrode coordinate out of array");
  return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(c.col);
}

Vec2 ElectrodeArray::center(GridCoord c) const {
  BIOCHIP_REQUIRE(contains(c), "electrode coordinate out of array");
  return {(static_cast<double>(c.col) + 0.5) * pitch_,
          (static_cast<double>(c.row) + 0.5) * pitch_};
}

Rect ElectrodeArray::footprint(GridCoord c) const {
  const Vec2 ctr = center(c);
  const double half = 0.5 * pitch_ * metal_fill_;
  return {{ctr.x - half, ctr.y - half}, {ctr.x + half, ctr.y + half}};
}

GridCoord ElectrodeArray::nearest(Vec2 p) const {
  auto clamp_axis = [](double v, int n) {
    const int i = static_cast<int>(std::floor(v));
    return i < 0 ? 0 : (i >= n ? n - 1 : i);
  };
  return {clamp_axis(p.x / pitch_, cols_), clamp_axis(p.y / pitch_, rows_)};
}

Rect ElectrodeArray::extent() const {
  return {{0.0, 0.0},
          {static_cast<double>(cols_) * pitch_, static_cast<double>(rows_) * pitch_}};
}

}  // namespace biochip::chip
