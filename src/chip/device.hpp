#pragma once
/// \file device.hpp
/// \brief The assembled biochip device: CMOS die + electrode array + fluidic
/// chamber + AC drive. Facade used by examples, benches, and the platform.

#include <cstddef>

#include "chip/actuation.hpp"
#include "chip/electrode_array.hpp"
#include "chip/technology.hpp"
#include "chip/timing.hpp"
#include "common/geometry.hpp"
#include "field/analytic.hpp"
#include "field/basis_cache.hpp"
#include "field/phasor.hpp"

namespace biochip::chip {

/// Static description of a device build.
struct DeviceConfig {
  CmosNode technology;
  int cols = 0;
  int rows = 0;
  double pitch = 0.0;           ///< electrode pitch [m]
  double metal_fill = 0.8;      ///< electrode metal fraction of pitch
  double chamber_height = 0.0;  ///< lid gap [m]
  double drive_frequency = 0.0; ///< AC drive [Hz]
  double drive_amplitude = 0.0; ///< 0 = use technology core supply [V]
  ProgrammingModel programming; ///< digital interface timing
};

/// Assembled device. Owns geometry and derived electrical models; the
/// mutable actuation state lives in CageController / ActuationPattern.
class BiochipDevice {
 public:
  explicit BiochipDevice(const DeviceConfig& config);

  const DeviceConfig& config() const { return config_; }
  const ElectrodeArray& array() const { return array_; }
  double drive_amplitude() const;  ///< actual actuation amplitude [V]

  /// Fluid volume over the array [m³] (claim C1's ~4 µl drop).
  double chamber_volume() const;
  /// Chamber interior as dynamics bounds (z=0 chip surface to lid).
  Aabb chamber_bounds() const;
  /// Cage capacity at a given lattice spacing (claim C1's "tens of
  /// thousands of DEP cages").
  std::size_t cage_capacity(int spacing) const;

  /// Parallel-plate estimate of one electrode's capacitance to the liquid
  /// (through the chamber, to the lid) [F].
  double electrode_capacitance() const;
  /// Dynamic actuation power when `dirty_pixels` switch at `pattern_rate`
  /// plus array leakage floor [W].
  double actuation_power(std::size_t dirty_pixels, double pattern_rate) const;
  /// Die area of the array core [m²].
  double core_area() const;
  /// Whether the per-pixel circuits fit under the electrode pitch.
  bool pixel_fits() const;

  /// Local simulation domain: a patch of `patch` × `patch` electrodes with
  /// `nodes_per_pitch` grid nodes per pitch, full chamber height.
  field::ChamberDomain local_domain(int patch, int nodes_per_pitch) const;

  /// Electrode footprints of the local patch, row-major.
  std::vector<Rect> local_footprints(int patch) const;

  /// Solve the field of a single centered cage on a local patch and calibrate
  /// the harmonic cage surrogate. `nodes_per_pitch` trades accuracy for time.
  /// `workspace` (optional) caches the multigrid hierarchy across calls: a
  /// whole-array calibration sweep (c1–c6 benches, design-flow explorations)
  /// re-solves the same patch shape per device, so sharing one workspace
  /// stops every device from re-deriving the coarse hierarchy and RAP
  /// operators from scratch.
  field::HarmonicCage calibrate_cage(int patch = 5, int nodes_per_pitch = 8,
                                     field::MultigridWorkspace* workspace = nullptr) const;

 private:
  DeviceConfig config_;
  ElectrodeArray array_;
};

/// The paper's case-study device: 0.35 µm CMOS, 320×320 electrodes at 20 µm
/// pitch (102,400 electrodes), 100 µm lid gap (~4.1 µl), 100 kHz drive
/// (below the viable-cell crossover, so cages act by negative DEP).
BiochipDevice paper_device();

/// Same floorplan on a different node (claim C2 sweeps).
DeviceConfig paper_config_on_node(const CmosNode& node);

}  // namespace biochip::chip
