#include "chip/fault_injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::chip {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kElectrodeDead: return "electrode_dead";
    case FaultKind::kElectrodeStuckCage: return "electrode_stuck_cage";
    case FaultKind::kElectrodeSilentDead: return "electrode_silent_dead";
    case FaultKind::kSensorRowDropout: return "sensor_row_dropout";
    case FaultKind::kSensorPixelBurst: return "sensor_pixel_burst";
    case FaultKind::kPortIntermittent: return "port_intermittent";
    case FaultKind::kPortFailed: return "port_failed";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultScheduleConfig config,
                             std::vector<ChamberShape> chambers, std::size_t n_ports,
                             Rng stream)
    : config_(std::move(config)), chambers_(std::move(chambers)), n_ports_(n_ports),
      stream_(stream), electrode_fired_(chambers_.size(), 0) {
  for (const ChamberShape& shape : chambers_)
    BIOCHIP_REQUIRE(shape.cols >= 1 && shape.rows >= 1,
                    "fault injector needs positive chamber site grids");
  for (const FaultEvent& f : config_.scripted) {
    const bool port_fault =
        f.kind == FaultKind::kPortIntermittent || f.kind == FaultKind::kPortFailed;
    if (port_fault) {
      BIOCHIP_REQUIRE(f.port >= 0 && static_cast<std::size_t>(f.port) < n_ports_,
                      "scripted port fault names an unknown port");
    } else {
      BIOCHIP_REQUIRE(f.chamber >= 0 &&
                          static_cast<std::size_t>(f.chamber) < chambers_.size(),
                      "scripted chamber fault names an unknown chamber");
    }
  }
  // Scripted entries must already be in firing order (keeps tick() a linear
  // scan and the emitted order the documented one).
  BIOCHIP_REQUIRE(
      std::is_sorted(config_.scripted.begin(), config_.scripted.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.tick < b.tick;
                     }),
      "scripted faults must be sorted by tick");
}

std::size_t FaultInjector::electrode_faults(int chamber) const {
  BIOCHIP_REQUIRE(chamber >= 0 &&
                      static_cast<std::size_t>(chamber) < electrode_fired_.size(),
                  "unknown chamber");
  return electrode_fired_[static_cast<std::size_t>(chamber)];
}

std::vector<FaultEvent> FaultInjector::tick(int t) {
  BIOCHIP_REQUIRE(t > last_tick_, "fault schedule ticks must strictly increase");
  last_tick_ = t;
  std::vector<FaultEvent> fired;

  // ---- scripted faults, input order.
  while (next_scripted_ < config_.scripted.size() &&
         config_.scripted[next_scripted_].tick <= t) {
    FaultEvent f = config_.scripted[next_scripted_++];
    f.tick = t;
    fired.push_back(f);
  }

  // ---- sampled faults: per-chamber streams keyed (chamber, t). Each kind
  // draws in a fixed order from the same stream, so the schedule is a pure
  // function of (seed, chamber, t).
  const FaultRates& rates = config_.rates;
  for (std::size_t c = 0; c < chambers_.size(); ++c) {
    const ChamberShape& shape = chambers_[c];
    Rng rng = stream_.fork(c).fork(static_cast<std::uint64_t>(t));
    const auto sample_site = [&]() -> GridCoord {
      return {static_cast<int>(rng.uniform_int(0, shape.cols - 1)),
              static_cast<int>(rng.uniform_int(0, shape.rows - 1))};
    };
    const auto electrode_ok = [&]() {
      return config_.max_electrode_faults_per_chamber == 0 ||
             electrode_fired_[c] < config_.max_electrode_faults_per_chamber;
    };
    const auto emit_electrode = [&](FaultKind kind) {
      // The site draw always happens so the stream position never depends on
      // the cap; the cap only suppresses the emission (counters are a pure
      // function of earlier ticks, so the schedule stays order-independent).
      const GridCoord site = sample_site();
      if (!electrode_ok()) return;
      ++electrode_fired_[c];
      fired.push_back({t, kind, static_cast<int>(c), site, -1, 0});
    };
    if (rates.electrode_dead > 0.0 && rng.bernoulli(rates.electrode_dead))
      emit_electrode(FaultKind::kElectrodeDead);
    if (rates.electrode_stuck_cage > 0.0 && rng.bernoulli(rates.electrode_stuck_cage))
      emit_electrode(FaultKind::kElectrodeStuckCage);
    if (rates.electrode_silent_dead > 0.0 &&
        rng.bernoulli(rates.electrode_silent_dead))
      emit_electrode(FaultKind::kElectrodeSilentDead);
    if (rates.sensor_row_dropout > 0.0 && rng.bernoulli(rates.sensor_row_dropout)) {
      const int row = static_cast<int>(rng.uniform_int(0, shape.rows - 1));
      fired.push_back({t, FaultKind::kSensorRowDropout, static_cast<int>(c),
                       {0, row}, -1, config_.sensor_dropout_duration});
    }
    if (rates.sensor_pixel_burst > 0.0 && rng.bernoulli(rates.sensor_pixel_burst)) {
      const int tile = std::max(1, config_.burst_tile);
      const GridCoord origin{
          static_cast<int>(rng.uniform_int(0, std::max(0, shape.cols - tile))),
          static_cast<int>(rng.uniform_int(0, std::max(0, shape.rows - tile)))};
      fired.push_back({t, FaultKind::kSensorPixelBurst, static_cast<int>(c), origin,
                       -1, config_.sensor_burst_duration});
    }
  }

  // ---- sampled port faults: per-port streams keyed (n_chambers + port, t).
  for (std::size_t p = 0; p < n_ports_; ++p) {
    Rng rng = stream_.fork(chambers_.size() + p).fork(static_cast<std::uint64_t>(t));
    if (rates.port_intermittent > 0.0 && rng.bernoulli(rates.port_intermittent))
      fired.push_back({t, FaultKind::kPortIntermittent, -1, {}, static_cast<int>(p),
                       config_.port_down_duration});
    if (rates.port_failed > 0.0 && rng.bernoulli(rates.port_failed))
      fired.push_back({t, FaultKind::kPortFailed, -1, {}, static_cast<int>(p), 0});
  }

  injected_ += fired.size();
  return fired;
}

}  // namespace biochip::chip
