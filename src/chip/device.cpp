#include "chip/device.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::chip {

BiochipDevice::BiochipDevice(const DeviceConfig& config)
    : config_(config),
      array_(config.cols, config.rows, config.pitch, config.metal_fill) {
  BIOCHIP_REQUIRE(config.chamber_height > 0.0, "chamber height must be positive");
  BIOCHIP_REQUIRE(config.drive_frequency > 0.0, "drive frequency must be positive");
  if (config.drive_amplitude < 0.0) throw ConfigError("drive amplitude must be >= 0");
}

double BiochipDevice::drive_amplitude() const {
  return config_.drive_amplitude > 0.0 ? config_.drive_amplitude : config_.technology.supply;
}

double BiochipDevice::chamber_volume() const {
  const Rect e = array_.extent();
  return e.area() * config_.chamber_height;
}

Aabb BiochipDevice::chamber_bounds() const {
  const Rect e = array_.extent();
  return {{e.min.x, e.min.y, 0.0}, {e.max.x, e.max.y, config_.chamber_height}};
}

std::size_t BiochipDevice::cage_capacity(int spacing) const {
  return cage_lattice(array_, spacing).sites.size();
}

double BiochipDevice::electrode_capacitance() const {
  const double metal_area = array_.footprint({0, 0}).area();
  return constants::eps_r_water * constants::epsilon0 * metal_area / config_.chamber_height;
}

double BiochipDevice::actuation_power(std::size_t dirty_pixels, double pattern_rate) const {
  // Each switching pixel swings its electrode by 2V across C_elec, plus the
  // AC drive continuously displaces charge: P_ac ≈ C V² f_drive per driven
  // electrode (upper bound; the liquid is mostly reactive).
  const double c = electrode_capacitance();
  const double v = drive_amplitude();
  const double p_program = static_cast<double>(dirty_pixels) * c * 4.0 * v * v * pattern_rate;
  const double p_leak = 1e-9 * static_cast<double>(array_.electrode_count());  // 1 nW/pixel
  return p_program + p_leak;
}

double BiochipDevice::core_area() const {
  const Rect e = array_.extent();
  return e.area();
}

bool BiochipDevice::pixel_fits() const {
  return chip::pixel_fits(config_.technology, config_.pitch,
                          config_.programming.state_bits_per_pixel);
}

field::ChamberDomain BiochipDevice::local_domain(int patch, int nodes_per_pitch) const {
  BIOCHIP_REQUIRE(patch >= 3 && patch % 2 == 1, "patch must be odd and >= 3");
  BIOCHIP_REQUIRE(nodes_per_pitch >= 2, "need at least 2 nodes per pitch");
  field::ChamberDomain d;
  d.spacing = config_.pitch / static_cast<double>(nodes_per_pitch);
  d.width_x = static_cast<double>(patch) * config_.pitch;
  d.width_y = d.width_x;
  d.height = config_.chamber_height;
  return d;
}

std::vector<Rect> BiochipDevice::local_footprints(int patch) const {
  // A standalone patch-sized array reuses the footprint geometry.
  const ElectrodeArray local(patch, patch, config_.pitch, config_.metal_fill);
  std::vector<Rect> out;
  out.reserve(static_cast<std::size_t>(patch) * static_cast<std::size_t>(patch));
  for (int r = 0; r < patch; ++r)
    for (int c = 0; c < patch; ++c) out.push_back(local.footprint({c, r}));
  return out;
}

field::HarmonicCage BiochipDevice::calibrate_cage(int patch, int nodes_per_pitch,
                                                  field::MultigridWorkspace* workspace) const {
  const field::ChamberDomain domain = local_domain(patch, nodes_per_pitch);
  const double v = drive_amplitude();
  const int center = patch / 2;
  const ElectrodeArray local(patch, patch, config_.pitch, config_.metal_fill);
  std::vector<field::ElectrodePatch> patches;
  patches.reserve(local.electrode_count());
  for (int r = 0; r < patch; ++r)
    for (int c = 0; c < patch; ++c) {
      const bool is_cage = (r == center && c == center);
      // Background counter-phase (-V), cage site and lid in-phase (+V).
      patches.push_back({local.footprint({c, r}),
                         is_cage ? std::complex<double>{v, 0.0}
                                 : std::complex<double>{-v, 0.0}});
    }
  field::SolverOptions opts;
  opts.tolerance = 1e-5 * v;
  const field::PhasorSolution sol = field::solve_phasor(
      domain, patches, std::complex<double>{v, 0.0}, opts, nullptr, workspace);

  const Vec2 cage_xy = local.center({center, center});
  const Aabb search{{cage_xy.x - 0.9 * config_.pitch, cage_xy.y - 0.9 * config_.pitch,
                     0.10 * config_.chamber_height},
                    {cage_xy.x + 0.9 * config_.pitch, cage_xy.y + 0.9 * config_.pitch,
                     0.92 * config_.chamber_height}};
  return field::calibrate_cage(sol, search, 0.5 * config_.pitch);
}

BiochipDevice paper_device() {
  using namespace units;
  return BiochipDevice(paper_config_on_node(paper_node()));
}

DeviceConfig paper_config_on_node(const CmosNode& node) {
  using namespace units;
  DeviceConfig cfg;
  cfg.technology = node;
  cfg.cols = 320;
  cfg.rows = 320;
  cfg.pitch = 20.0_um;
  cfg.metal_fill = 0.8;
  cfg.chamber_height = 100.0_um;
  // Below the viable-cell first crossover (~180 kHz in 30 mS/m buffer) so
  // cells experience negative DEP and the closed cages levitate them.
  cfg.drive_frequency = 100.0_kHz;
  cfg.drive_amplitude = 0.0;  // node supply
  cfg.programming = ProgrammingModel{};
  return cfg;
}

}  // namespace biochip::chip
