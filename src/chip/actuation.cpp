#include "chip/actuation.hpp"

#include "common/error.hpp"

namespace biochip::chip {

ActuationPattern::ActuationPattern(const ElectrodeArray& array, PhaseSel fill)
    : cols_(array.cols()), rows_(array.rows()),
      state_(array.electrode_count(), fill) {}

std::size_t ActuationPattern::index(GridCoord c) const {
  BIOCHIP_REQUIRE(c.col >= 0 && c.col < cols_ && c.row >= 0 && c.row < rows_,
                  "pattern coordinate out of array");
  return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(c.col);
}

PhaseSel ActuationPattern::get(GridCoord c) const { return state_[index(c)]; }

void ActuationPattern::set(GridCoord c, PhaseSel phase) { state_[index(c)] = phase; }

std::size_t ActuationPattern::diff_count(const ActuationPattern& other) const {
  BIOCHIP_REQUIRE(cols_ == other.cols_ && rows_ == other.rows_,
                  "diff between different array shapes");
  std::size_t n = 0;
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (state_[i] != other.state_[i]) ++n;
  return n;
}

std::complex<double> ActuationPattern::phasor(GridCoord c, double v) const {
  switch (get(c)) {
    case PhaseSel::kGround: return {0.0, 0.0};
    case PhaseSel::kPhaseA: return {v, 0.0};
    case PhaseSel::kPhaseB: return {-v, 0.0};
  }
  return {0.0, 0.0};
}

std::vector<std::complex<double>> ActuationPattern::phasors(double v) const {
  std::vector<std::complex<double>> out;
  out.reserve(state_.size());
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) out.push_back(phasor({c, r}, v));
  return out;
}

ActuationPattern background(const ElectrodeArray& array) {
  return ActuationPattern(array, PhaseSel::kPhaseB);
}

ActuationPattern single_cage(const ElectrodeArray& array, GridCoord site, int site_size) {
  BIOCHIP_REQUIRE(site_size >= 1, "cage site size must be >= 1");
  ActuationPattern p = background(array);
  for (int dr = 0; dr < site_size; ++dr)
    for (int dc = 0; dc < site_size; ++dc) {
      const GridCoord c{site.col + dc, site.row + dr};
      BIOCHIP_REQUIRE(array.contains(c), "cage site outside array");
      p.set(c, PhaseSel::kPhaseA);
    }
  return p;
}

CageLattice cage_lattice(const ElectrodeArray& array, int spacing) {
  BIOCHIP_REQUIRE(spacing >= 2, "cage lattice spacing must be >= 2 pitches");
  CageLattice out{background(array), {}};
  // Keep one spacing's margin to the array edge so every cage is closed.
  for (int r = spacing; r < array.rows() - spacing; r += spacing)
    for (int c = spacing; c < array.cols() - spacing; c += spacing) {
      out.pattern.set({c, r}, PhaseSel::kPhaseA);
      out.sites.push_back({c, r});
    }
  return out;
}

void move_cage(ActuationPattern& pattern, GridCoord from, GridCoord to) {
  BIOCHIP_REQUIRE(pattern.get(from) == PhaseSel::kPhaseA, "no cage at source electrode");
  pattern.set(from, PhaseSel::kPhaseB);
  pattern.set(to, PhaseSel::kPhaseA);
}

}  // namespace biochip::chip
