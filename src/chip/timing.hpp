#pragma once
/// \file timing.hpp
/// \brief Array programming/readout timing — the electronics side of claim
/// C3: "cells move at 10-100 µm/s, so there is plenty of time to program the
/// actuator array and scan sensor output".

#include <cstddef>

#include "chip/electrode_array.hpp"

namespace biochip::chip {

/// Digital interface timing model (SRAM-style row/column access).
struct ProgrammingModel {
  double clock_frequency = 10e6;  ///< interface clock [Hz]
  int word_bits = 32;             ///< pixels written per write cycle
  double row_overhead_cycles = 2; ///< address/decode overhead per row
  int state_bits_per_pixel = 2;   ///< PhaseSel needs 2 bits

  /// Time to program the full array [s].
  double full_program_time(const ElectrodeArray& array) const;

  /// Time to update `dirty_pixels` scattered pixels (word-granular writes,
  /// worst case one word per dirty pixel) [s].
  double incremental_program_time(std::size_t dirty_pixels) const;

  /// Pattern update rate achievable when each update touches
  /// `dirty_pixels` pixels [patterns/s].
  double pattern_rate(std::size_t dirty_pixels) const;

  /// On-chip pattern memory size [bits].
  std::size_t pattern_memory_bits(const ElectrodeArray& array) const;
};

/// Mass-transfer timescale: time for a cell dragged at `speed` to cross one
/// electrode pitch [s]. The paper's cells: speed in 10-100 µm/s.
double pitch_transit_time(double pitch, double speed);

/// Headroom factor (claim C3): transit time over full-array reprogram time.
/// >> 1 means electronics are never the bottleneck.
double timing_headroom(const ElectrodeArray& array, const ProgrammingModel& model,
                       double cell_speed);

}  // namespace biochip::chip
