#pragma once
/// \file defects.hpp
/// \brief Manufacturing-defect and yield modeling for the electrode array.
///
/// A classic consequence of the array architecture (and a reason the
/// "cheaper, better, faster" economics of §1 work): a defective pixel does
/// not kill the die. A cage site only needs its own pixel and the
/// surrounding ring functional, and a defective site can be side-stepped by
/// the CAD layer. This module quantifies that graceful degradation against
/// the classic Poisson die-yield model that would apply if every pixel had
/// to work.

#include <cstdint>
#include <vector>

#include "chip/electrode_array.hpp"
#include "common/rng.hpp"

namespace biochip::chip {

/// Per-pixel manufacturing state.
enum class PixelState : std::uint8_t {
  kOk = 0,
  kStuckBackground,  ///< latch stuck: always counter-phase (no cage here)
  kStuckCage,        ///< latch stuck: always in-phase (permanent local trap)
  kDead,             ///< open/short: electrode floating or grounded
};

/// Defect map over an array.
class DefectMap {
 public:
  explicit DefectMap(const ElectrodeArray& array);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  PixelState state(GridCoord c) const;
  void set_state(GridCoord c, PixelState s);
  /// Number of non-OK pixels.
  std::size_t defect_count() const;

 private:
  int cols_;
  int rows_;
  std::vector<PixelState> states_;
};

/// Sample a defect map with the given defect probability per pixel
/// (defect kind chosen uniformly among the three failure modes).
DefectMap sample_defects(const ElectrodeArray& array, double defect_probability,
                         Rng& rng);

/// A cage site is usable iff its own pixel and the full ring of neighbors
/// within `ring` pitches are OK (the cage needs its counter-phase wall).
bool site_usable(const ElectrodeArray& array, const DefectMap& defects, GridCoord site,
                 int ring = 1);

/// Usable fraction of the standard cage lattice under a defect map.
double usable_cage_fraction(const ElectrodeArray& array, const DefectMap& defects,
                            int spacing = 2, int ring = 1);

/// Row-major (row · cols + col) mask of sites a cage must not occupy under
/// the defect map: 1 where `site_usable` is false. Same semantics as
/// site_usable, so edge sites (no closed counter-phase wall) are blocked
/// too. Ready to drop into `cad::RouteConfig::blocked` — the seam that makes
/// the CAD layer side-step defective sites.
std::vector<std::uint8_t> blocked_site_mask(const ElectrodeArray& array,
                                            const DefectMap& defects, int ring = 1);

/// Poisson yield if the die required *every* pixel functional:
/// Y = exp(-p_defect · N_pixels). This is the classic memory-without-repair
/// bound the array architecture escapes.
double all_good_yield(const ElectrodeArray& array, double defect_probability);

/// Expected usable cage fraction (analytic): each site needs (2·ring+1)²
/// OK pixels ⇒ E[usable] = (1-p)^((2r+1)²).
double expected_usable_fraction(double defect_probability, int ring = 1);

}  // namespace biochip::chip
