#pragma once
/// \file electrode_array.hpp
/// \brief Geometry and addressing of the on-chip electrode array.

#include <cstddef>

#include "common/geometry.hpp"

namespace biochip::chip {

/// Rectangular array of square surface electrodes at uniform pitch.
/// The electrode metal occupies `metal_fill` of the pitch in each direction;
/// the remainder is passivated gap.
class ElectrodeArray {
 public:
  ElectrodeArray(int cols, int rows, double pitch, double metal_fill = 0.8);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  double pitch() const { return pitch_; }
  double metal_fill() const { return metal_fill_; }
  std::size_t electrode_count() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  bool contains(GridCoord c) const {
    return c.col >= 0 && c.col < cols_ && c.row >= 0 && c.row < rows_;
  }

  /// Flat index for per-electrode storage. Requires contains(c).
  std::size_t index(GridCoord c) const;

  /// Center of electrode c in chip coordinates (origin at array corner) [m].
  Vec2 center(GridCoord c) const;

  /// Metal footprint of electrode c [m].
  Rect footprint(GridCoord c) const;

  /// Electrode whose tile contains point p (clamped to the array edge).
  GridCoord nearest(Vec2 p) const;

  /// Total array extent [m].
  Rect extent() const;

 private:
  int cols_;
  int rows_;
  double pitch_;
  double metal_fill_;
};

}  // namespace biochip::chip
