#include "chip/cage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::chip {

CageController::CageController(ElectrodeArray array, int min_separation)
    : array_(array), min_separation_(min_separation) {
  BIOCHIP_REQUIRE(min_separation >= 1, "cage separation must be >= 1");
}

std::size_t CageController::cage_count() const {
  return static_cast<std::size_t>(
      std::count_if(cages_.begin(), cages_.end(), [](const auto& c) { return c.has_value(); }));
}

std::vector<int> CageController::cage_ids() const {
  std::vector<int> ids;
  for (std::size_t i = 0; i < cages_.size(); ++i)
    if (cages_[i].has_value()) ids.push_back(static_cast<int>(i));
  return ids;
}

GridCoord CageController::site(int cage_id) const {
  BIOCHIP_REQUIRE(cage_id >= 0 && static_cast<std::size_t>(cage_id) < cages_.size() &&
                      cages_[static_cast<std::size_t>(cage_id)].has_value(),
                  "stale or unknown cage id");
  return *cages_[static_cast<std::size_t>(cage_id)];
}

bool CageController::separated(GridCoord a, GridCoord b) const {
  return chebyshev(a, b) >= min_separation_;
}

bool CageController::can_place(GridCoord site, int ignore_id) const {
  if (!array_.contains(site)) return false;
  for (std::size_t i = 0; i < cages_.size(); ++i) {
    if (!cages_[i].has_value() || static_cast<int>(i) == ignore_id) continue;
    if (!separated(site, *cages_[i])) return false;
  }
  return true;
}

int CageController::create(GridCoord site) {
  BIOCHIP_REQUIRE(can_place(site), "illegal cage placement");
  if (recycle_ids_) {
    for (std::size_t i = 0; i < cages_.size(); ++i)
      if (!cages_[i].has_value()) {
        cages_[i] = site;
        return static_cast<int>(i);
      }
  }
  cages_.emplace_back(site);
  return static_cast<int>(cages_.size() - 1);
}

void CageController::destroy(int cage_id) {
  site(cage_id);  // validates
  cages_[static_cast<std::size_t>(cage_id)].reset();
}

void CageController::check_target(GridCoord to) const {
  BIOCHIP_REQUIRE(array_.contains(to), "cage move target outside array");
}

void CageController::move(int cage_id, GridCoord to) {
  const GridCoord from = site(cage_id);
  check_target(to);
  BIOCHIP_REQUIRE(manhattan(from, to) <= 1, "cage moves at most one pitch per step");
  BIOCHIP_REQUIRE(can_place(to, cage_id), "cage move violates separation");
  cages_[static_cast<std::size_t>(cage_id)] = to;
  if (!(from == to)) ++moves_executed_;
  ++steps_executed_;
}

void CageController::apply_step(const std::vector<CageMove>& moves) {
  // Validate without mutating: build the post-move site table first.
  std::vector<std::optional<GridCoord>> next = cages_;
  std::vector<std::uint8_t> moved(cages_.size(), 0);
  for (const CageMove& m : moves) {
    const GridCoord from = site(m.cage_id);
    check_target(m.to);
    BIOCHIP_REQUIRE(manhattan(from, m.to) <= 1, "cage moves at most one pitch per step");
    BIOCHIP_REQUIRE(!moved[static_cast<std::size_t>(m.cage_id)],
                    "duplicate move for one cage in a step");
    moved[static_cast<std::size_t>(m.cage_id)] = 1;
    next[static_cast<std::size_t>(m.cage_id)] = m.to;
  }
  for (std::size_t a = 0; a < next.size(); ++a) {
    if (!next[a].has_value()) continue;
    for (std::size_t b = a + 1; b < next.size(); ++b) {
      if (!next[b].has_value()) continue;
      BIOCHIP_REQUIRE(separated(*next[a], *next[b]),
                      "simultaneous moves violate cage separation");
    }
  }
  std::size_t actual_moves = 0;
  for (const CageMove& m : moves)
    if (!(site(m.cage_id) == m.to)) ++actual_moves;
  cages_ = std::move(next);
  moves_executed_ += actual_moves;
  ++steps_executed_;
}

ActuationPattern CageController::pattern() const {
  ActuationPattern p = background(array_);
  for (const auto& c : cages_)
    if (c.has_value()) p.set(*c, PhaseSel::kPhaseA);
  return p;
}

}  // namespace biochip::chip
