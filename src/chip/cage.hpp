#pragma once
/// \file cage.hpp
/// \brief DEP cage bookkeeping and legal-move enforcement.
///
/// A cage is a mobile trap site on the electrode grid. The controller owns
/// the mapping cage-id → site and enforces the manipulation rules the field
/// physics imposes:
///   * cages must stay `min_separation` pitches apart (Chebyshev), or their
///     field minima merge and the trapped cells are co-captured;
///   * a cage moves at most one pitch per actuation step (the cell must be
///     dragged along, claim C3's 10-100 µm/s);
/// The controller is the execution back-end for CAD-routed plans and the
/// source of actuation patterns for the physics simulation.

#include <optional>
#include <utility>
#include <vector>

#include "chip/actuation.hpp"
#include "chip/electrode_array.hpp"

namespace biochip::chip {

/// One cage move request: cage id and destination site.
struct CageMove {
  int cage_id = 0;
  GridCoord to;
};

class CageController {
 public:
  /// `min_separation`: minimum Chebyshev distance between cages (>= 1; 2 is
  /// the physical default — adjacent cages merge).
  explicit CageController(ElectrodeArray array, int min_separation = 2);

  const ElectrodeArray& array() const { return array_; }
  int min_separation() const { return min_separation_; }

  /// Number of live cages.
  std::size_t cage_count() const;
  /// Ids of live cages, ascending.
  std::vector<int> cage_ids() const;
  /// Site of a live cage. Throws if the id is stale.
  GridCoord site(int cage_id) const;

  /// True if a new cage at `site` would be legal (in-array and separated
  /// from every live cage except `ignore_id`).
  bool can_place(GridCoord site, int ignore_id = -1) const;

  /// Create a cage; returns its id. Throws PreconditionError on illegal site.
  /// Ids are fresh slot indices; with `set_recycle_ids(true)` the lowest
  /// destroyed slot is reused instead, keeping the slot table bounded by the
  /// peak live cage count under open-ended create/destroy churn.
  int create(GridCoord site);
  /// Remove a cage (e.g. cell recovered at an output port).
  void destroy(int cage_id);

  /// Reuse destroyed cage slots (lowest id first) in `create`. Off by
  /// default: episode drivers rely on ids growing monotonically; streaming
  /// services opt in for bounded memory. Deterministic either way.
  void set_recycle_ids(bool on) { recycle_ids_ = on; }
  bool recycle_ids() const { return recycle_ids_; }
  /// Slots ever allocated (live + destroyed) — the memory-bound metric
  /// streaming regression tests gate on.
  std::size_t slot_count() const { return cages_.size(); }

  /// Move one cage by at most one pitch. Throws on illegal move.
  void move(int cage_id, GridCoord to);

  /// Apply a set of simultaneous single-step moves (one actuation step).
  /// All-or-nothing: throws without mutating state if any rule is violated.
  void apply_step(const std::vector<CageMove>& moves);

  /// Actuation pattern realizing the current cage set.
  ActuationPattern pattern() const;

  /// Total single-cage moves executed.
  std::size_t moves_executed() const { return moves_executed_; }
  /// Total actuation steps applied (apply_step calls + individual moves).
  std::size_t steps_executed() const { return steps_executed_; }

 private:
  bool separated(GridCoord a, GridCoord b) const;
  void check_target(GridCoord to) const;

  ElectrodeArray array_;
  int min_separation_;
  bool recycle_ids_ = false;
  std::vector<std::optional<GridCoord>> cages_;
  std::size_t moves_executed_ = 0;
  std::size_t steps_executed_ = 0;
};

}  // namespace biochip::chip
