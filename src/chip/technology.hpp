#pragma once
/// \file technology.hpp
/// \brief CMOS technology-node descriptors and the node catalog.
///
/// The paper's claim C2: biochip actuation wants *voltage* (DEP force ∝ V²)
/// and the pitch is set by cell size (20-30 µm cells), not by lithography —
/// so "older generation technologies may best fit your purpose". The catalog
/// captures the supply-voltage / density / cost trajectory across nodes so
/// benches can sweep it.

#include <string>
#include <vector>

namespace biochip::chip {

/// One CMOS technology node. Values are representative of foundry offerings
/// of the era (supply from JESD scaling, densities from ITRS-era reports).
struct CmosNode {
  std::string name;          ///< e.g. "0.35um"
  double feature_size = 0;   ///< drawn gate length [m]
  double supply = 0;         ///< nominal core VDD [V] (max actuation amplitude)
  double io_supply = 0;      ///< thick-oxide I/O VDD [V] (HV option)
  int metal_layers = 0;      ///< typical metal stack
  double sram_bit_area = 0;  ///< 6T SRAM bit cell area [m²]
  double wafer_cost_per_mm2 = 0;  ///< processed-silicon cost [€/mm²]
  int year = 0;              ///< approximate production year

  /// Area of an N-bit per-pixel latch plus decode/switch overhead [m²].
  double pixel_logic_area(int bits_per_pixel) const;
};

/// All catalog nodes, newest last (2.0 µm ... 90 nm).
std::vector<CmosNode> node_catalog();

/// Look up a node by name; throws ConfigError if unknown.
CmosNode node_by_name(const std::string& name);

/// The node used in the paper's case-study chip (0.35 µm, 3.3 V).
CmosNode paper_node();

/// True if the per-pixel circuitry (bits_per_pixel of state + actuation
/// switch + sensor front-end) fits under an electrode of the given pitch.
bool pixel_fits(const CmosNode& node, double pitch, int bits_per_pixel);

}  // namespace biochip::chip
