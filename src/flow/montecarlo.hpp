#pragma once
/// \file montecarlo.hpp
/// \brief Monte-Carlo comparison of the two design flows (claim C5).

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "flow/designflow.hpp"

namespace biochip::flow {

/// Aggregated outcome distribution for one (flow, parameters) pair.
struct FlowStats {
  FlowKind kind = FlowKind::kSimulateFirst;
  std::size_t trials = 0;
  double convergence_rate = 0.0;  ///< fraction of trials that converged
  RunningStats time;              ///< [s]
  RunningStats cost;              ///< [€]
  RunningStats fabrications;
  RunningStats simulations;
  double time_p50 = 0.0;
  double time_p90 = 0.0;
};

/// Run `trials` independent trials of the flow.
FlowStats evaluate_flow(FlowKind kind, const FlowParameters& params, std::size_t trials,
                        std::uint64_t seed);

/// Which flow wins on expected time-to-spec for the given parameters.
struct FlowComparison {
  FlowStats simulate_first;
  FlowStats fabricate_first;
  FlowKind faster = FlowKind::kSimulateFirst;
  FlowKind cheaper = FlowKind::kSimulateFirst;
  double time_ratio = 1.0;  ///< slower mean time / faster mean time
};
FlowComparison compare_flows(const FlowParameters& params, std::size_t trials,
                             std::uint64_t seed);

/// Sweep fabrication turnaround (scaling the preset's fabricate stage) and
/// record where the preferred flow flips — the claim-C5 crossover.
struct CrossoverPoint {
  double fab_turnaround = 0.0;  ///< [s]
  double time_simulate_first = 0.0;
  double time_fabricate_first = 0.0;
  FlowKind faster = FlowKind::kSimulateFirst;
};
std::vector<CrossoverPoint> crossover_sweep(const FlowParameters& base,
                                            const std::vector<double>& turnarounds,
                                            std::size_t trials, std::uint64_t seed);

}  // namespace biochip::flow
