#include "flow/montecarlo.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip::flow {

FlowStats evaluate_flow(FlowKind kind, const FlowParameters& params, std::size_t trials,
                        std::uint64_t seed) {
  BIOCHIP_REQUIRE(trials >= 1, "need at least one trial");
  FlowStats stats;
  stats.kind = kind;
  stats.trials = trials;
  Rng rng(seed);
  Percentiles times;
  std::size_t converged = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng trial_rng = rng.split();
    const FlowOutcome out = run_flow(kind, params, trial_rng);
    if (out.converged) ++converged;
    stats.time.add(out.time);
    stats.cost.add(out.cost);
    stats.fabrications.add(static_cast<double>(out.fabrications));
    stats.simulations.add(static_cast<double>(out.simulations));
    times.add(out.time);
  }
  stats.convergence_rate = static_cast<double>(converged) / static_cast<double>(trials);
  stats.time_p50 = times.percentile(50.0);
  stats.time_p90 = times.percentile(90.0);
  return stats;
}

FlowComparison compare_flows(const FlowParameters& params, std::size_t trials,
                             std::uint64_t seed) {
  FlowComparison cmp;
  cmp.simulate_first = evaluate_flow(FlowKind::kSimulateFirst, params, trials, seed);
  cmp.fabricate_first = evaluate_flow(FlowKind::kFabricateFirst, params, trials, seed + 1);
  const double ts = cmp.simulate_first.time.mean();
  const double tf = cmp.fabricate_first.time.mean();
  cmp.faster = ts <= tf ? FlowKind::kSimulateFirst : FlowKind::kFabricateFirst;
  cmp.cheaper = cmp.simulate_first.cost.mean() <= cmp.fabricate_first.cost.mean()
                    ? FlowKind::kSimulateFirst
                    : FlowKind::kFabricateFirst;
  const double lo = std::min(ts, tf), hi = std::max(ts, tf);
  cmp.time_ratio = lo > 0.0 ? hi / lo : 1.0;
  return cmp;
}

std::vector<CrossoverPoint> crossover_sweep(const FlowParameters& base,
                                            const std::vector<double>& turnarounds,
                                            std::size_t trials, std::uint64_t seed) {
  std::vector<CrossoverPoint> out;
  out.reserve(turnarounds.size());
  for (std::size_t i = 0; i < turnarounds.size(); ++i) {
    BIOCHIP_REQUIRE(turnarounds[i] > 0.0, "turnaround must be positive");
    FlowParameters p = base;
    // Scale fabrication cost with turnaround^0.5: slower processes in this
    // domain are also the expensive ones (glass/silicon vs dry film).
    const double scale = turnarounds[i] / base.fabricate.duration_mean;
    p.fabricate.duration_mean = turnarounds[i];
    p.fabricate.cost = base.fabricate.cost * std::sqrt(scale);
    const FlowComparison cmp = compare_flows(p, trials, seed + i * 7919);
    out.push_back({turnarounds[i], cmp.simulate_first.time.mean(),
                   cmp.fabricate_first.time.mean(), cmp.faster});
  }
  return out;
}

}  // namespace biochip::flow
