#include "flow/centering.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::flow {

namespace {

constexpr double kGolden = 0.6180339887498949;

/// One noisy, biased quality measurement.
double evaluate(const CenteringProblem& problem, const EvaluatorModel& ev, double x,
                Rng& rng) {
  const double perceived_opt = problem.optimum + ev.bias;
  const double d = x - perceived_opt;
  return -problem.curvature * d * d + rng.normal(0.0, ev.noise);
}

/// Golden-section interval shrink using noisy comparisons.
void golden_search(const CenteringProblem& problem, const EvaluatorModel& ev, int budget,
                   Rng& rng, double& lo, double& hi, CenteringOutcome& out) {
  if (budget <= 0) return;
  double a = lo, b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = evaluate(problem, ev, x1, rng);
  double f2 = evaluate(problem, ev, x2, rng);
  out.evaluations += 2;
  out.time += 2.0 * ev.time_per_eval;
  out.cost += 2.0 * ev.cost_per_eval;
  for (int it = 2; it < budget; ++it) {
    if (f1 >= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = evaluate(problem, ev, x1, rng);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = evaluate(problem, ev, x2, rng);
    }
    ++out.evaluations;
    out.time += ev.time_per_eval;
    out.cost += ev.cost_per_eval;
  }
  lo = a;
  hi = b;
}

}  // namespace

CenteringOutcome center_design(const CenteringProblem& problem,
                               const EvaluatorModel& evaluator, int budget, Rng& rng) {
  BIOCHIP_REQUIRE(problem.hi > problem.lo, "search interval inverted");
  BIOCHIP_REQUIRE(budget >= 2, "need at least two evaluations");
  CenteringOutcome out;
  double lo = problem.lo, hi = problem.hi;
  golden_search(problem, evaluator, budget, rng, lo, hi, out);
  out.chosen = 0.5 * (lo + hi);
  out.design_error = std::fabs(out.chosen - problem.optimum);
  return out;
}

CenteringOutcome center_design_hybrid(const CenteringProblem& problem,
                                      const EvaluatorModel& simulation,
                                      const EvaluatorModel& experiment, int sim_budget,
                                      int exp_budget, Rng& rng) {
  BIOCHIP_REQUIRE(problem.hi > problem.lo, "search interval inverted");
  BIOCHIP_REQUIRE(sim_budget >= 2 && exp_budget >= 2, "need >=2 evals per phase");
  CenteringOutcome out;
  double lo = problem.lo, hi = problem.hi;
  golden_search(problem, simulation, sim_budget, rng, lo, hi, out);
  // Re-open the interval by the worst-case simulation bias so the true
  // optimum is inside before the experimental phase.
  const double guard = std::fabs(simulation.bias) * 1.5 + 0.05 * (problem.hi - problem.lo);
  lo = std::max(problem.lo, lo - guard);
  hi = std::min(problem.hi, hi + guard);
  golden_search(problem, experiment, exp_budget, rng, lo, hi, out);
  out.chosen = 0.5 * (lo + hi);
  out.design_error = std::fabs(out.chosen - problem.optimum);
  return out;
}

EvaluatorModel fluidic_simulation_evaluator() {
  using namespace units;
  // "a lot of input parameters which are uncertain" (§3): strong bias,
  // modest noise, hours per campaign point.
  return {.bias = 0.12, .noise = 0.02, .time_per_eval = 4.0_hour,
          .cost_per_eval = 50.0_eur};
}

EvaluatorModel fluidic_experiment_evaluator() {
  using namespace units;
  // Unbiased but a dry-film build-and-test cycle per point.
  return {.bias = 0.0, .noise = 0.05, .time_per_eval = 2.5_day,
          .cost_per_eval = 60.0_eur};
}

}  // namespace biochip::flow
