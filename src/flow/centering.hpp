#pragma once
/// \file centering.hpp
/// \brief Design centering with noisy/biased evaluators — the dashed
/// "optimization" arcs of the paper's Figs. 1 and 2.
///
/// Both flows use feedback to *center* a design parameter (electrode pitch,
/// chamber height, exposure dose...). The evaluators differ:
///  * simulation — cheap and fast, but *biased* (unmodeled physics shifts
///    the predicted optimum) and mildly noisy;
///  * experiment — unbiased but slow, costly, and noisier per trial.
/// This module runs a golden-section-style search with either evaluator (or
/// a sim-then-experiment hybrid) and reports the residual design error vs.
/// spent time/cost, quantifying §3's "simulation ... is also useful to
/// optimize the design".

#include "common/rng.hpp"

namespace biochip::flow {

/// A (possibly biased, noisy, costly) evaluator of design quality.
/// True quality is the negative quadratic -(x - optimum)²; higher is better.
struct EvaluatorModel {
  double bias = 0.0;        ///< shift of the *perceived* optimum [param units]
  double noise = 0.0;       ///< σ of measurement noise on the quality value
  double time_per_eval = 0.0;  ///< [s]
  double cost_per_eval = 0.0;  ///< [€]
};

/// Search configuration over a scalar design parameter.
struct CenteringProblem {
  double lo = 0.0;          ///< search interval
  double hi = 1.0;
  double optimum = 0.5;     ///< true best parameter value
  double curvature = 1.0;   ///< quality = -curvature (x-x*)²
};

/// Result of one centering campaign.
struct CenteringOutcome {
  double chosen = 0.0;         ///< final parameter choice
  double design_error = 0.0;   ///< |chosen - optimum|
  int evaluations = 0;
  double time = 0.0;           ///< [s]
  double cost = 0.0;           ///< [€]
};

/// Golden-section search with `budget` evaluations of one evaluator.
/// Noise is sampled per evaluation; bias shifts the perceived optimum.
CenteringOutcome center_design(const CenteringProblem& problem,
                               const EvaluatorModel& evaluator, int budget, Rng& rng);

/// Hybrid (the Fig. 2 pattern): spend `sim_budget` simulated evaluations to
/// shrink the interval, then `exp_budget` experimental evaluations to kill
/// the simulation bias.
CenteringOutcome center_design_hybrid(const CenteringProblem& problem,
                                      const EvaluatorModel& simulation,
                                      const EvaluatorModel& experiment, int sim_budget,
                                      int exp_budget, Rng& rng);

/// Typical evaluators for the paper's fluidic habitat (biased multi-physics
/// sim vs. day-scale dry-film experiment).
EvaluatorModel fluidic_simulation_evaluator();
EvaluatorModel fluidic_experiment_evaluator();

}  // namespace biochip::flow
