#pragma once
/// \file designflow.hpp
/// \brief Stochastic models of the paper's two design work-flows.
///
/// Fig. 1 (electronic / simulate-first): iterate design↔simulation until the
/// model passes, then fabricate and test once — justified when prototypes
/// are slow and expensive and models are accurate.
///
/// Fig. 2 (fluidic / fabricate-first): fabricate and test every iteration —
/// "it is often faster to build and test a prototype than to simulate it";
/// simulation runs on the side, interpreting test data and improving the
/// next rework.
///
/// Both flows share the same underlying design difficulty so the comparison
/// isolates loop structure, stage economics, and model fidelity (claim C5).

#include <string>

#include "common/rng.hpp"

namespace biochip::flow {

/// One pipeline stage: lognormal duration, fixed cost per execution.
struct StageModel {
  double duration_mean = 0.0;  ///< [s]
  double duration_cv = 0.3;    ///< lognormal coefficient of variation
  double cost = 0.0;           ///< [€] per execution

  double sample_duration(Rng& rng) const;
};

/// How well simulation predicts reality.
struct FidelityModel {
  double coverage = 0.9;      ///< P(sim flags flaw | design flawed)
  double false_alarm = 0.05;  ///< P(sim flags flaw | design OK)
  double insight = 0.35;      ///< fractional reduction of the rework flaw
                              ///< probability per post-test simulation (Fig 2's
                              ///< "interpretation of experimental data")
};

/// Complete flow parameterization.
struct FlowParameters {
  std::string name;
  StageModel design;     ///< initial design or rework effort
  StageModel simulate;   ///< one simulation campaign
  StageModel fabricate;  ///< one prototype run (masks + fab + packaging)
  StageModel test;       ///< one experimental characterization
  double initial_flaw_probability = 0.7;  ///< fresh design is flawed
  double rework_flaw_probability = 0.35;  ///< a rework is still/again flawed
  FidelityModel fidelity;
  int max_iterations = 200;  ///< safety bound per trial
};

enum class FlowKind { kSimulateFirst, kFabricateFirst };

const char* to_string(FlowKind kind);

/// Result of one flow execution (a single Monte-Carlo trial).
struct FlowOutcome {
  double time = 0.0;   ///< design start → validated device [s]
  double cost = 0.0;   ///< total spend [€]
  int design_spins = 0;
  int simulations = 0;
  int fabrications = 0;
  int tests = 0;
  bool converged = false;  ///< reached a validated device within max_iterations
};

/// Execute one stochastic trial of the given flow.
FlowOutcome run_flow(FlowKind kind, const FlowParameters& params, Rng& rng);

/// Parameter preset: CMOS electronic design (the paper's Fig. 1 habitat) —
/// multi-week fab, 100 k€-class masks, accurate models.
FlowParameters cmos_flow_parameters();

/// Parameter preset: dry-film fluidic packaging (Fig. 2 habitat, ref [5]) —
/// 2-3 day fab, few-euro masks, uncertain multi-physics models.
FlowParameters fluidic_flow_parameters();

}  // namespace biochip::flow
