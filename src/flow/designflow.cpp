#include "flow/designflow.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"
#include "fluidic/fabrication.hpp"

namespace biochip::flow {

using namespace units;

double StageModel::sample_duration(Rng& rng) const {
  BIOCHIP_REQUIRE(duration_mean > 0.0, "stage duration must be positive");
  return rng.lognormal_mean_cv(duration_mean, duration_cv);
}

const char* to_string(FlowKind kind) {
  return kind == FlowKind::kSimulateFirst ? "simulate_first" : "fabricate_first";
}

namespace {

void charge(FlowOutcome& out, const StageModel& stage, Rng& rng) {
  out.time += stage.sample_duration(rng);
  out.cost += stage.cost;
}

}  // namespace

FlowOutcome run_flow(FlowKind kind, const FlowParameters& params, Rng& rng) {
  FlowOutcome out;
  bool flawed = rng.bernoulli(params.initial_flaw_probability);
  charge(out, params.design, rng);
  ++out.design_spins;

  double rework_flaw_p = params.rework_flaw_probability;

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    if (kind == FlowKind::kSimulateFirst) {
      // Fig. 1 inner loop: simulate until the model passes.
      charge(out, params.simulate, rng);
      ++out.simulations;
      const bool sim_flags = flawed ? rng.bernoulli(params.fidelity.coverage)
                                    : rng.bernoulli(params.fidelity.false_alarm);
      if (sim_flags) {
        charge(out, params.design, rng);
        ++out.design_spins;
        flawed = rng.bernoulli(rework_flaw_p);
        continue;
      }
      // Model passed: fabricate and test (the expensive outer arc).
      charge(out, params.fabricate, rng);
      ++out.fabrications;
      charge(out, params.test, rng);
      ++out.tests;
      if (!flawed) {
        out.converged = true;
        return out;
      }
      // Silicon/fluidics came back broken (Fig. 1's dotted line): rework.
      charge(out, params.design, rng);
      ++out.design_spins;
      flawed = rng.bernoulli(rework_flaw_p);
    } else {
      // Fig. 2: fabricate-and-test every turn of the loop.
      charge(out, params.fabricate, rng);
      ++out.fabrications;
      charge(out, params.test, rng);
      ++out.tests;
      if (!flawed) {
        out.converged = true;
        return out;
      }
      // Simulation interprets the failing experiment and sharpens the rework
      // (Fig. 2's side arcs); each pass multiplies the flaw probability down.
      charge(out, params.simulate, rng);
      ++out.simulations;
      rework_flaw_p *= (1.0 - params.fidelity.insight);
      charge(out, params.design, rng);
      ++out.design_spins;
      flawed = rng.bernoulli(rework_flaw_p);
    }
  }
  return out;  // converged == false
}

FlowParameters cmos_flow_parameters() {
  FlowParameters p;
  p.name = "cmos_0.35um";
  p.design = {10.0_day, 0.4, 15.0_keur};       // engineer-time valued in €
  p.simulate = {3.0_day, 0.3, 2.0_keur};       // SPICE/layout verification
  p.fabricate = {70.0_day, 0.15, 110.0_keur};  // MPW masks + fab + package
  p.test = {7.0_day, 0.3, 5.0_keur};
  p.initial_flaw_probability = 0.7;
  p.rework_flaw_probability = 0.35;
  // "availability of accurate models" (paper §2): high coverage.
  p.fidelity = {.coverage = 0.92, .false_alarm = 0.05, .insight = 0.35};
  return p;
}

FlowParameters fluidic_flow_parameters() {
  const fluidic::ProcessSpec dfr = fluidic::dry_film_resist();
  FlowParameters p;
  p.name = "fluidic_dry_film";
  p.design = {1.0_day, 0.4, 1.0_keur};
  // "simulation pretty much a research topic in itself" (paper §3): slow
  // campaigns, low coverage of the real failure modes.
  p.simulate = {10.0_day, 0.5, 3.0_keur};
  p.fabricate = {dfr.turnaround, 0.2,
                 (dfr.mask_cost * 2.0 + dfr.unit_cost * 5.0) / 1.0};  // 2 masks + 5 devices
  p.test = {1.0_day, 0.3, 0.5_keur};
  p.initial_flaw_probability = 0.7;
  p.rework_flaw_probability = 0.35;
  p.fidelity = {.coverage = 0.45, .false_alarm = 0.20, .insight = 0.35};
  return p;
}

}  // namespace biochip::flow
