#include "fluidic/packaging.hpp"

#include "common/error.hpp"

namespace biochip::fluidic {

double AssemblyYield::overall() const {
  return lamination * exposure * development * bonding * electrical;
}

AssembledDevice assemble(const PackageSpec& spec, const AssemblyYield& yields) {
  BIOCHIP_REQUIRE(spec.die_width > 0.0 && spec.die_height > 0.0, "die size must be set");
  BIOCHIP_REQUIRE(spec.active_width > 0.0 && spec.active_height > 0.0,
                  "active area must be set");
  AssembledDevice out;

  // The active area, chamber walls (one alignment tolerance each side), and
  // the wirebond shelf must all fit on the die.
  const double wall_margin = 2.0 * spec.alignment_tolerance;
  const double needed_w = spec.active_width + wall_margin + spec.wirebond_shelf;
  const double needed_h = spec.active_height + wall_margin + spec.wirebond_shelf;
  if (needed_w > spec.die_width || needed_h > spec.die_height) {
    out.feasible = false;
    out.issues.push_back("active area + walls + wirebond shelf exceed the die");
  }
  if (spec.resist_thickness <= 0.0) {
    out.feasible = false;
    out.issues.push_back("resist thickness must be positive");
  }
  if (spec.alignment_tolerance > 0.5 * spec.wirebond_shelf) {
    out.feasible = false;
    out.issues.push_back("alignment tolerance too coarse for the wirebond shelf");
  }

  out.chamber = Microchamber{spec.active_height, spec.active_width, spec.resist_thickness};
  // Lid counter-electrode IR drop at a representative 1 mA AC drive current,
  // across half the active width (squares = 0.5 * aspect ratio).
  const double squares = 0.5 * spec.active_height / spec.active_width;
  out.lid_voltage_drop = spec.ito_sheet_resistance * squares * 1e-3;
  out.yield = yields.overall();
  return out;
}

}  // namespace biochip::fluidic
