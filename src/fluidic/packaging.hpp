#pragma once
/// \file packaging.hpp
/// \brief Hybrid fluidic packaging of the CMOS die (the paper's Fig. 3):
/// dry-resist spacer patterned on the die, ITO-coated glass lid double-bonded
/// on top, wirebond shelf kept clear.

#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "fluidic/chamber.hpp"

namespace biochip::fluidic {

/// Package build parameters.
struct PackageSpec {
  double resist_thickness = 100e-6;   ///< spacer = chamber height [m]
  double lid_thickness = 700e-6;      ///< glass lid [m]
  double ito_sheet_resistance = 100.0;  ///< lid counter-electrode [Ω/sq]
  double alignment_tolerance = 25e-6; ///< lid-to-die placement accuracy [m]
  double wirebond_shelf = 1.2e-3;     ///< die edge reserved for bond pads [m]
  double die_width = 0.0;             ///< CMOS die [m]
  double die_height = 0.0;            ///< CMOS die [m]
  double active_width = 0.0;          ///< electrode array extent [m]
  double active_height = 0.0;         ///< electrode array extent [m]
};

/// Per-step assembly yields of the double-bonding flow.
struct AssemblyYield {
  double lamination = 0.97;  ///< dry film onto die
  double exposure = 0.98;    ///< chamber walls patterned
  double development = 0.97; ///< walls released cleanly
  double bonding = 0.95;     ///< lid bonded without leaks
  double electrical = 0.98;  ///< wirebonds intact after packaging

  double overall() const;
};

/// Assembled-device report.
struct AssembledDevice {
  bool feasible = true;
  std::vector<std::string> issues;
  Microchamber chamber;         ///< fluid volume over the active area
  double lid_voltage_drop = 0;  ///< IR drop across the ITO lid at 1 mA [V]
  double yield = 0.0;           ///< expected assembly yield
};

/// Check geometry (active area + shelf fits the die, alignment tolerance
/// compatible with the chamber walls) and derive the chamber.
AssembledDevice assemble(const PackageSpec& spec, const AssemblyYield& yields);

}  // namespace biochip::fluidic
