#pragma once
/// \file mask.hpp
/// \brief Fluidic mask layout and design-rule checking.
///
/// The paper (§3): fluidic circuits need only "a simple mask layout (one or
/// two layers)" with features in the order of a hundred microns. The layout
/// model here is deliberately rectangle-based — that is what dry-film-resist
/// chambers and channels look like — with a DRC tuned to the coarse
/// photolithography of ref [5].

#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace biochip::fluidic {

enum class FeatureKind { kChannel, kChamber, kPort, kSpacerWall, kAlignmentMark };

const char* to_string(FeatureKind kind);

/// One rectangular mask feature.
struct MaskFeature {
  std::string name;
  FeatureKind kind = FeatureKind::kChannel;
  Rect shape;
  int layer = 0;
};

/// A fluidic mask set (1-2 layers in practice).
class FluidicMask {
 public:
  explicit FluidicMask(std::string name);

  const std::string& name() const { return name_; }
  const std::vector<MaskFeature>& features() const { return features_; }

  /// Add an arbitrary rectangular feature.
  void add_rect(const std::string& name, FeatureKind kind, Rect shape, int layer = 0);
  /// Add an axis-aligned channel of the given width between two points
  /// (throws unless the run is axis-aligned).
  void add_channel(const std::string& name, Vec2 from, Vec2 to, double width,
                   int layer = 0);
  /// Add a square port centered at p.
  void add_port(const std::string& name, Vec2 center, double size, int layer = 0);

  int layer_count() const;
  Rect bounding_box() const;
  /// Total feature area on a layer [m²] (overlaps double-counted).
  double feature_area(int layer) const;

  /// Minimal SVG rendering (one color per kind) for documentation.
  std::string to_svg(double scale = 1e5) const;

 private:
  std::string name_;
  std::vector<MaskFeature> features_;
};

/// Design rules for the coarse fluidic lithography.
struct DesignRules {
  double min_feature = 100e-6;   ///< minimum feature width/height [m]
  double min_spacing = 100e-6;   ///< minimum gap between unconnected features [m]
  double min_port_size = 400e-6; ///< ports must admit tubing/pipette [m]
  Rect die;                      ///< allowed layout region
  int max_layers = 2;            ///< the paper's "one or two layers"
};

/// One DRC finding.
struct DrcViolation {
  std::string rule;
  std::string feature_a;
  std::string feature_b;  ///< empty for single-feature rules
  std::string detail;
};

/// Run all checks; empty result = clean.
std::vector<DrcViolation> run_drc(const FluidicMask& mask, const DesignRules& rules);

}  // namespace biochip::fluidic
