#include "fluidic/network.hpp"

#include "common/error.hpp"
#include "common/linalg.hpp"

namespace biochip::fluidic {

double channel_resistance(const physics::Medium& medium, double length, double width,
                          double height) {
  BIOCHIP_REQUIRE(length > 0.0 && width > 0.0 && height > 0.0,
                  "channel dimensions must be positive");
  BIOCHIP_REQUIRE(height <= width, "convention: height <= width");
  const double correction = 1.0 - 0.63 * height / width;
  return 12.0 * medium.viscosity * length /
         (width * height * height * height * correction);
}

HydraulicNetwork::HydraulicNetwork(const physics::Medium& medium) : medium_(medium) {
  physics::validate(medium);
}

int HydraulicNetwork::add_node(const std::string& name) {
  node_names_.push_back(name);
  return static_cast<int>(node_names_.size()) - 1;
}

int HydraulicNetwork::add_channel(int node_a, int node_b, double length, double width,
                                  double height, const std::string& name) {
  BIOCHIP_REQUIRE(node_a >= 0 && static_cast<std::size_t>(node_a) < node_names_.size() &&
                      node_b >= 0 &&
                      static_cast<std::size_t>(node_b) < node_names_.size(),
                  "channel endpoints must be existing nodes");
  BIOCHIP_REQUIRE(node_a != node_b, "channel endpoints must differ");
  channels_.push_back({node_a, node_b,
                       channel_resistance(medium_, length, width, height), width, height,
                       name.empty() ? "ch" + std::to_string(channels_.size()) : name});
  return static_cast<int>(channels_.size()) - 1;
}

void HydraulicNetwork::set_pressure(int node, double pressure) {
  BIOCHIP_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < node_names_.size(),
                  "unknown node");
  pressure_pins_.emplace_back(node, pressure);
}

void HydraulicNetwork::set_flow(int node, double flow) {
  BIOCHIP_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < node_names_.size(),
                  "unknown node");
  flow_sources_.emplace_back(node, flow);
}

HydraulicNetwork::Solution HydraulicNetwork::solve() const {
  const std::size_t n = node_names_.size();
  if (pressure_pins_.empty())
    throw ConfigError("hydraulic network needs at least one pressure reference");
  BIOCHIP_REQUIRE(n >= 1, "empty network");

  // Nodal analysis: G·p = q, then overwrite pinned rows with identities.
  Matrix g(n, n);
  std::vector<double> q(n, 0.0);
  for (const Channel& ch : channels_) {
    const double cond = 1.0 / ch.resistance;
    const auto a = static_cast<std::size_t>(ch.a);
    const auto b = static_cast<std::size_t>(ch.b);
    g.at(a, a) += cond;
    g.at(b, b) += cond;
    g.at(a, b) -= cond;
    g.at(b, a) -= cond;
  }
  for (const auto& [node, flow] : flow_sources_) q[static_cast<std::size_t>(node)] += flow;
  for (const auto& [node, pressure] : pressure_pins_) {
    const auto r = static_cast<std::size_t>(node);
    for (std::size_t c = 0; c < n; ++c) g.at(r, c) = (r == c) ? 1.0 : 0.0;
    q[r] = pressure;
  }

  Solution sol;
  sol.node_pressure = solve_dense(g, q);
  sol.channel_flow.reserve(channels_.size());
  for (const Channel& ch : channels_) {
    const double dp = sol.node_pressure[static_cast<std::size_t>(ch.a)] -
                      sol.node_pressure[static_cast<std::size_t>(ch.b)];
    sol.channel_flow.push_back(dp / ch.resistance);
  }
  return sol;
}

double HydraulicNetwork::mean_velocity(const Solution& sol, int channel_id) const {
  BIOCHIP_REQUIRE(channel_id >= 0 &&
                      static_cast<std::size_t>(channel_id) < channels_.size(),
                  "unknown channel");
  BIOCHIP_REQUIRE(sol.channel_flow.size() == channels_.size(),
                  "solution does not match this network");
  const Channel& ch = channels_[static_cast<std::size_t>(channel_id)];
  return sol.channel_flow[static_cast<std::size_t>(channel_id)] / (ch.width * ch.height);
}

}  // namespace biochip::fluidic
