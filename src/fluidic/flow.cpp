#include "fluidic/flow.hpp"

#include <cmath>

#include "common/error.hpp"
#include "physics/drag.hpp"

namespace biochip::fluidic {

SlotFlow::SlotFlow(const Microchamber& chamber, const physics::Medium& medium,
                   double mean_velocity)
    : chamber_(chamber), medium_(medium), mean_velocity_(mean_velocity) {
  validate(chamber);
  physics::validate(medium);
  BIOCHIP_REQUIRE(mean_velocity >= 0.0, "mean velocity must be non-negative");
}

double SlotFlow::velocity_at(double z) const {
  const double h = chamber_.height;
  if (z <= 0.0 || z >= h) return 0.0;
  // u(z) = 6 u_mean (z/h)(1 - z/h)
  const double zeta = z / h;
  return 6.0 * mean_velocity_ * zeta * (1.0 - zeta);
}

double SlotFlow::peak_velocity() const { return 1.5 * mean_velocity_; }

double SlotFlow::flow_rate() const {
  return mean_velocity_ * chamber_.width * chamber_.height;
}

double SlotFlow::reynolds() const {
  return medium_.density * mean_velocity_ * chamber_.hydraulic_diameter() /
         medium_.viscosity;
}

double SlotFlow::wall_shear_stress() const {
  // τ_wall = η du/dz|_{z=0} = 6 η u_mean / h.
  return 6.0 * medium_.viscosity * mean_velocity_ / chamber_.height;
}

double SlotFlow::pressure_gradient() const {
  // dp/dx = 12 η u_mean / h².
  return 12.0 * medium_.viscosity * mean_velocity_ / (chamber_.height * chamber_.height);
}

double SlotFlow::drag_on_held_particle(double radius, double z) const {
  const double u = velocity_at(z);
  const double gamma = physics::stokes_drag_coefficient(medium_, radius) *
                       physics::faxen_wall_correction(radius, std::max(z, radius));
  return gamma * u;
}

}  // namespace biochip::fluidic
