#include "fluidic/mask.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace biochip::fluidic {

const char* to_string(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kChannel: return "channel";
    case FeatureKind::kChamber: return "chamber";
    case FeatureKind::kPort: return "port";
    case FeatureKind::kSpacerWall: return "spacer_wall";
    case FeatureKind::kAlignmentMark: return "alignment_mark";
  }
  return "?";
}

FluidicMask::FluidicMask(std::string name) : name_(std::move(name)) {}

void FluidicMask::add_rect(const std::string& name, FeatureKind kind, Rect shape,
                           int layer) {
  BIOCHIP_REQUIRE(shape.width() > 0.0 && shape.height() > 0.0,
                  "mask feature must have positive extent: " + name);
  BIOCHIP_REQUIRE(layer >= 0, "layer must be non-negative");
  features_.push_back({name, kind, shape, layer});
}

void FluidicMask::add_channel(const std::string& name, Vec2 from, Vec2 to, double width,
                              int layer) {
  BIOCHIP_REQUIRE(width > 0.0, "channel width must be positive");
  const bool horizontal = std::fabs(from.y - to.y) < 1e-12;
  const bool vertical = std::fabs(from.x - to.x) < 1e-12;
  BIOCHIP_REQUIRE(horizontal || vertical, "channel runs must be axis-aligned: " + name);
  const double half = 0.5 * width;
  Rect r;
  if (horizontal) {
    r = {{std::min(from.x, to.x), from.y - half}, {std::max(from.x, to.x), from.y + half}};
  } else {
    r = {{from.x - half, std::min(from.y, to.y)}, {from.x + half, std::max(from.y, to.y)}};
  }
  add_rect(name, FeatureKind::kChannel, r, layer);
}

void FluidicMask::add_port(const std::string& name, Vec2 center, double size, int layer) {
  BIOCHIP_REQUIRE(size > 0.0, "port size must be positive");
  const double half = 0.5 * size;
  add_rect(name, FeatureKind::kPort,
           {{center.x - half, center.y - half}, {center.x + half, center.y + half}}, layer);
}

int FluidicMask::layer_count() const {
  std::set<int> layers;
  for (const MaskFeature& f : features_) layers.insert(f.layer);
  return static_cast<int>(layers.size());
}

Rect FluidicMask::bounding_box() const {
  if (features_.empty()) return {};
  Rect bb = features_.front().shape;
  for (const MaskFeature& f : features_) {
    bb.min.x = std::min(bb.min.x, f.shape.min.x);
    bb.min.y = std::min(bb.min.y, f.shape.min.y);
    bb.max.x = std::max(bb.max.x, f.shape.max.x);
    bb.max.y = std::max(bb.max.y, f.shape.max.y);
  }
  return bb;
}

double FluidicMask::feature_area(int layer) const {
  double area = 0.0;
  for (const MaskFeature& f : features_)
    if (f.layer == layer) area += f.shape.area();
  return area;
}

std::string FluidicMask::to_svg(double scale) const {
  const Rect bb = bounding_box();
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << (bb.width() * scale) << "\" height=\"" << (bb.height() * scale) << "\">\n";
  auto color = [](FeatureKind kind) {
    switch (kind) {
      case FeatureKind::kChannel: return "#4a90d9";
      case FeatureKind::kChamber: return "#7bc96f";
      case FeatureKind::kPort: return "#e8a33d";
      case FeatureKind::kSpacerWall: return "#888888";
      case FeatureKind::kAlignmentMark: return "#d04437";
    }
    return "#000000";
  };
  for (const MaskFeature& f : features_) {
    svg << "  <rect x=\"" << ((f.shape.min.x - bb.min.x) * scale) << "\" y=\""
        << ((f.shape.min.y - bb.min.y) * scale) << "\" width=\"" << (f.shape.width() * scale)
        << "\" height=\"" << (f.shape.height() * scale) << "\" fill=\"" << color(f.kind)
        << "\" fill-opacity=\"0.6\"><title>" << f.name << " (" << to_string(f.kind)
        << ", layer " << f.layer << ")</title></rect>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

namespace {
double rect_gap(const Rect& a, const Rect& b) {
  const double dx = std::max({a.min.x - b.max.x, b.min.x - a.max.x, 0.0});
  const double dy = std::max({a.min.y - b.max.y, b.min.y - a.max.y, 0.0});
  return std::hypot(dx, dy);
}
}  // namespace

std::vector<DrcViolation> run_drc(const FluidicMask& mask, const DesignRules& rules) {
  std::vector<DrcViolation> out;
  const auto& fs = mask.features();

  for (const MaskFeature& f : fs) {
    const double min_dim = std::min(f.shape.width(), f.shape.height());
    if (f.kind == FeatureKind::kPort) {
      if (min_dim < rules.min_port_size)
        out.push_back({"min_port_size", f.name, "",
                       "port smaller than minimum pipette/tubing size"});
    } else if (min_dim < rules.min_feature) {
      out.push_back({"min_feature", f.name, "",
                     "feature below process minimum width"});
    }
    if (!(rules.die.contains(f.shape.min) && rules.die.contains(f.shape.max)))
      out.push_back({"die_bounds", f.name, "", "feature extends outside the die"});
  }

  // Spacing between non-overlapping features on the same layer. Overlapping
  // or touching features are treated as intentionally connected.
  for (std::size_t a = 0; a < fs.size(); ++a)
    for (std::size_t b = a + 1; b < fs.size(); ++b) {
      if (fs[a].layer != fs[b].layer) continue;
      if (fs[a].shape.overlaps(fs[b].shape)) continue;
      const double gap = rect_gap(fs[a].shape, fs[b].shape);
      if (gap > 0.0 && gap < rules.min_spacing)
        out.push_back({"min_spacing", fs[a].name, fs[b].name,
                       "unconnected features closer than minimum spacing"});
    }

  if (mask.layer_count() > rules.max_layers)
    out.push_back({"max_layers", mask.name(), "",
                   "mask uses more layers than the process supports"});
  return out;
}

}  // namespace biochip::fluidic
