#pragma once
/// \file fabrication.hpp
/// \brief Fluidic fabrication process models and cost/turnaround planning
/// (claim C6).
///
/// Anchored on the paper's numbers for the dry-film-resist process (ref [5]):
/// "two-three days from design to device", "masks (few euros)", "overall
/// set-up ... (tens of thousands euros)". Alternative processes are included
/// so the bench can reproduce the paper's implied comparison.

#include <string>
#include <vector>

#include "fluidic/mask.hpp"

namespace biochip::fluidic {

/// A fluidic fabrication process.
struct ProcessSpec {
  std::string name;
  double min_feature = 0.0;      ///< resolvable feature [m]
  double mask_cost = 0.0;        ///< per mask layer [€]
  double setup_cost = 0.0;       ///< one-time equipment/infrastructure [€]
  double turnaround = 0.0;       ///< design → tested device [s]
  double unit_cost = 0.0;        ///< consumables per device [€]
  int max_layers = 1;            ///< structural layers per device
  double thickness_min = 0.0;    ///< achievable layer thickness range [m]
  double thickness_max = 0.0;
  bool cmos_compatible = false;  ///< can be built directly on a CMOS die
};

/// Dry-film resist lamination on glass/CMOS (the paper's process, ref [5]).
ProcessSpec dry_film_resist();
/// PDMS soft lithography (SU-8 master + casting).
ProcessSpec pdms_soft_lithography();
/// Wet-etched glass with thermally bonded lid.
ProcessSpec glass_etch();
/// Deep-reactive-ion-etched silicon with anodic bonding.
ProcessSpec silicon_drie();

std::vector<ProcessSpec> process_catalog();

/// Feasibility + economics of fabricating `mask` in `process` at `volume`
/// devices (setup amortized across the volume).
struct FabricationReport {
  bool feasible = true;
  std::vector<std::string> issues;   ///< violated process constraints
  double nre_cost = 0.0;             ///< masks + setup [€]
  double unit_cost = 0.0;            ///< per device, consumables only [€]
  double amortized_unit_cost = 0.0;  ///< (NRE + volume·unit) / volume [€]
  double turnaround = 0.0;           ///< first-device latency [s]
};

FabricationReport plan_fabrication(const FluidicMask& mask, const ProcessSpec& process,
                                   int volume, double chamber_height,
                                   bool on_cmos_die);

/// Iterations per month a team can run with the process (the Fig. 2 loop
/// rate): working-seconds-per-month / turnaround.
double iterations_per_month(const ProcessSpec& process);

}  // namespace biochip::fluidic
