#include "fluidic/fabrication.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::fluidic {

using namespace units;

ProcessSpec dry_film_resist() {
  return ProcessSpec{
      .name = "dry_film_resist",
      .min_feature = 100.0_um,
      .mask_cost = 5.0_eur,          // printed transparency
      .setup_cost = 30.0_keur,       // laminator, UV unit, hotplates (paper: "tens of k€")
      .turnaround = 2.5_day,         // paper: "two-three days from design to device"
      .unit_cost = 8.0_eur,          // film, ITO glass, consumables
      .max_layers = 2,
      .thickness_min = 15.0_um,
      .thickness_max = 150.0_um,     // laminatable film stack
      .cmos_compatible = true,       // low-temperature, die-level
  };
}

ProcessSpec pdms_soft_lithography() {
  return ProcessSpec{
      .name = "pdms_soft_litho",
      .min_feature = 20.0_um,
      .mask_cost = 150.0_eur,        // film photoplot for SU-8 master
      .setup_cost = 80.0_keur,       // spinner, mask aligner, ovens
      .turnaround = 5.0_day,         // master + casting + plasma bond
      .unit_cost = 4.0_eur,
      .max_layers = 2,
      .thickness_min = 10.0_um,
      .thickness_max = 250.0_um,
      .cmos_compatible = false,      // plasma bonding to a diced die is fragile
  };
}

ProcessSpec glass_etch() {
  return ProcessSpec{
      .name = "glass_etch",
      .min_feature = 50.0_um,        // isotropic HF undercut limited
      .mask_cost = 800.0_eur,        // chrome mask
      .setup_cost = 400.0_keur,      // wet bench, aligner, bonding furnace
      .turnaround = 21.0_day,
      .unit_cost = 25.0_eur,
      .max_layers = 1,
      .thickness_min = 10.0_um,
      .thickness_max = 100.0_um,
      .cmos_compatible = false,      // thermal bonding far above BEOL limits
  };
}

ProcessSpec silicon_drie() {
  return ProcessSpec{
      .name = "silicon_drie",
      .min_feature = 5.0_um,
      .mask_cost = 1200.0_eur,
      .setup_cost = 1500.0_keur,     // DRIE tool access
      .turnaround = 30.0_day,
      .unit_cost = 60.0_eur,
      .max_layers = 2,
      .thickness_min = 5.0_um,
      .thickness_max = 500.0_um,
      .cmos_compatible = false,
  };
}

std::vector<ProcessSpec> process_catalog() {
  return {dry_film_resist(), pdms_soft_lithography(), glass_etch(), silicon_drie()};
}

FabricationReport plan_fabrication(const FluidicMask& mask, const ProcessSpec& process,
                                   int volume, double chamber_height, bool on_cmos_die) {
  BIOCHIP_REQUIRE(volume >= 1, "volume must be >= 1 device");
  FabricationReport report;

  // Feasibility: resolution, layers, thickness, substrate.
  for (const MaskFeature& f : mask.features()) {
    const double min_dim = std::min(f.shape.width(), f.shape.height());
    if (min_dim < process.min_feature) {
      report.feasible = false;
      report.issues.push_back("feature '" + f.name + "' below process resolution");
    }
  }
  if (mask.layer_count() > process.max_layers) {
    report.feasible = false;
    report.issues.push_back("layer count exceeds process capability");
  }
  if (chamber_height < process.thickness_min || chamber_height > process.thickness_max) {
    report.feasible = false;
    report.issues.push_back("chamber height outside achievable layer thickness");
  }
  if (on_cmos_die && !process.cmos_compatible) {
    report.feasible = false;
    report.issues.push_back("process cannot be applied to a finished CMOS die");
  }

  const int layers = std::max(mask.layer_count(), 1);
  report.nre_cost = process.setup_cost + process.mask_cost * layers;
  report.unit_cost = process.unit_cost;
  report.amortized_unit_cost =
      (report.nre_cost + process.unit_cost * volume) / static_cast<double>(volume);
  report.turnaround = process.turnaround;
  return report;
}

double iterations_per_month(const ProcessSpec& process) {
  BIOCHIP_REQUIRE(process.turnaround > 0.0, "process turnaround must be positive");
  constexpr double kWorkSecondsPerMonth = 22.0 * 8.0 * 3600.0;
  // A fab cycle occupies wall-clock days but only part of the team's time;
  // the loop rate is bounded by the turnaround itself (one iteration in
  // flight at a time, as in the paper's Fig. 2 loop).
  const double month_seconds = 30.0 * 86400.0;
  (void)kWorkSecondsPerMonth;
  return month_seconds / process.turnaround;
}

}  // namespace biochip::fluidic
