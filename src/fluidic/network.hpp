#pragma once
/// \file network.hpp
/// \brief Hydraulic resistance network solver (fluidic "SPICE").
///
/// Laminar channel flow is linear: ΔP = R_h·Q, with the hydraulic resistance
/// of a rectangular channel R_h ≈ 12 η L / (w h³ (1 − 0.63 h/w)) for h ≤ w.
/// A fluidic circuit (ports, channels, chambers) therefore solves exactly
/// like a resistor network by nodal analysis — the electrical analogy the
/// paper's EDA audience knows by heart, and the lightweight design tool the
/// Fig. 2 flow *does* justify building (fast, parameter-insensitive), in
/// contrast to full CFD (§3).

#include <string>
#include <vector>

#include "physics/medium.hpp"

namespace biochip::fluidic {

/// Hydraulic resistance of a rectangular channel [Pa·s/m³].
/// Requires height <= width (slot orientation); use the smaller dimension
/// as height.
double channel_resistance(const physics::Medium& medium, double length, double width,
                          double height);

/// Node/edge hydraulic network with pressure and flow sources.
class HydraulicNetwork {
 public:
  explicit HydraulicNetwork(const physics::Medium& medium);

  /// Add a node; returns its id.
  int add_node(const std::string& name);
  /// Connect two nodes with a rectangular channel.
  int add_channel(int node_a, int node_b, double length, double width, double height,
                  const std::string& name = "");
  /// Pin a node to an absolute pressure [Pa] (at least one required).
  void set_pressure(int node, double pressure);
  /// Inject a volumetric flow at a node [m³/s] (positive = into the network).
  void set_flow(int node, double flow);

  std::size_t node_count() const { return node_names_.size(); }
  std::size_t channel_count() const { return channels_.size(); }

  /// Solved state.
  struct Solution {
    std::vector<double> node_pressure;   ///< [Pa]
    std::vector<double> channel_flow;    ///< [m³/s], positive a→b
  };

  /// Nodal analysis solve. Throws ConfigError if no pressure reference is
  /// set, NumericError if the system is singular (disconnected island).
  Solution solve() const;

  /// Total volumetric flow through a channel under the solution; convenience
  /// for mean velocity: Q / (w·h).
  double mean_velocity(const Solution& sol, int channel_id) const;

 private:
  struct Channel {
    int a;
    int b;
    double resistance;
    double width;
    double height;
    std::string name;
  };
  physics::Medium medium_;
  std::vector<std::string> node_names_;
  std::vector<Channel> channels_;
  std::vector<std::pair<int, double>> pressure_pins_;
  std::vector<std::pair<int, double>> flow_sources_;
};

}  // namespace biochip::fluidic
