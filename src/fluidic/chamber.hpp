#pragma once
/// \file chamber.hpp
/// \brief Microchamber geometry and filling.

#include "common/geometry.hpp"

namespace biochip::fluidic {

/// Parallel-plate microchamber over the chip (Fig. 3 of the paper: dry-resist
/// spacer walls between the CMOS die and the ITO-coated glass lid).
struct Microchamber {
  double length = 0.0;  ///< along flow [m]
  double width = 0.0;   ///< across flow [m]
  double height = 0.0;  ///< lid gap (resist spacer thickness) [m]

  double volume() const;        ///< [m³]
  double footprint_area() const;  ///< [m²]
  /// Time to exchange one chamber volume at the given volumetric rate [s].
  double exchange_time(double flow_rate) const;
  /// Hydraulic diameter of the slot cross-section [m].
  double hydraulic_diameter() const;
};

/// Throws ConfigError unless all dimensions are positive and the aspect
/// (height << width) is slot-like (height <= width/2).
void validate(const Microchamber& chamber);

}  // namespace biochip::fluidic
