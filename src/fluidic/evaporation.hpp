#pragma once
/// \file evaporation.hpp
/// \brief Evaporation of the sample drop/chamber — one of the paper's §3
/// "hard to model, easy to hit" effects. Diffusion-limited model.

namespace biochip::fluidic {

/// Ambient conditions for evaporation estimates.
struct Ambient {
  double temperature = 298.15;      ///< [K]
  double relative_humidity = 0.4;   ///< [0,1]
  double pressure = 101325.0;       ///< [Pa]
};

/// Saturation vapor pressure of water at T [Pa] (Buck equation).
double saturation_vapor_pressure(double temperature);

/// Diffusion-limited evaporation rate of a sessile drop of contact radius
/// `radius` [kg/s] (Hu–Larson flat-drop limit: J = π R D c_sat (1−RH) · 4/π).
double drop_evaporation_rate(double contact_radius, const Ambient& ambient);

/// Lifetime of a drop of the given volume and contact radius [s].
double drop_lifetime(double volume, double contact_radius, const Ambient& ambient);

/// Evaporation rate from an open port of area A [kg/s] (stagnant-film model
/// with film thickness `film`).
double port_evaporation_rate(double port_area, double film, const Ambient& ambient);

/// Relative concentration increase per second in a chamber of volume V fed
/// only by a port evaporating at `rate` [1/s] — the osmolarity drift that
/// kills cells in unsealed devices.
double osmolarity_drift_rate(double chamber_volume, double evaporation_rate);

}  // namespace biochip::fluidic
