#include "fluidic/chamber.hpp"

#include "common/error.hpp"

namespace biochip::fluidic {

double Microchamber::volume() const { return length * width * height; }

double Microchamber::footprint_area() const { return length * width; }

double Microchamber::exchange_time(double flow_rate) const {
  BIOCHIP_REQUIRE(flow_rate > 0.0, "flow rate must be positive");
  return volume() / flow_rate;
}

double Microchamber::hydraulic_diameter() const {
  // Slot: D_h = 4A/P = 4wh / (2(w+h)) ≈ 2h for w >> h.
  return 4.0 * width * height / (2.0 * (width + height));
}

void validate(const Microchamber& chamber) {
  if (!(chamber.length > 0.0 && chamber.width > 0.0 && chamber.height > 0.0))
    throw ConfigError("chamber dimensions must be positive");
  if (chamber.height > 0.5 * chamber.width)
    throw ConfigError("chamber is not slot-like (height must be <= width/2)");
}

}  // namespace biochip::fluidic
