#pragma once
/// \file chamber_network.hpp
/// \brief Multi-chamber lab-on-chip topology: chambers + transfer ports.
///
/// The paper's chip is explicitly a multi-site platform: several
/// microchambers share one die, connected by microfluidic channels, so many
/// cell workflows run concurrently and cells move between chambers through
/// the channels. `ChamberNetwork` is the static topology the orchestration
/// layer (`control::Orchestrator`) is driven from: each chamber carries its
/// own electrode-site grid and `Microchamber` geometry, and each
/// `TransferPort` names the site pair a hand-off passes through — a cage
/// tows its cell to the port site of the source chamber, the channel carries
/// the cell across, and the destination chamber re-cages it at its own port
/// site. The same topology doubles as a hydraulic circuit
/// (`hydraulics()` — one node per chamber, one channel per port), so
/// exchange times and port flow rates come from the existing
/// `HydraulicNetwork` nodal solve.

#include <cstddef>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "fluidic/chamber.hpp"
#include "fluidic/network.hpp"

namespace biochip::fluidic {

/// One chamber of the network: a parallel-plate microchamber over its own
/// `cols` × `rows` electrode-site grid.
struct ChamberSite {
  Microchamber geometry;
  int cols = 0;  ///< electrode sites across the chamber
  int rows = 0;
};

/// One inlet port: the site of a chamber where cells arrive from off-chip
/// (sample loading channel). Inlets are the sources of the open-system
/// streaming mode (`control::StreamingService`): a seeded arrival process
/// injects cells here and the admission layer cages them — or sheds them
/// when the chamber is saturated.
struct InletPort {
  int chamber = 0;
  GridCoord site;
};

/// One transfer port: a microfluidic channel connecting a site of chamber
/// `a` to a site of chamber `b` (bidirectional — hand-offs run either way).
struct TransferPort {
  int a = 0;
  GridCoord a_site;
  int b = 0;
  GridCoord b_site;
  double channel_length = 0.0;  ///< [m]
  double channel_width = 0.0;   ///< [m]
  double channel_height = 0.0;  ///< [m]; 0 = min of the two chamber heights
};

/// Static multi-chamber topology. Validated on construction of every
/// element; immutable queries afterwards.
class ChamberNetwork {
 public:
  /// Add a chamber; returns its id (dense, 0-based). Throws ConfigError on
  /// invalid geometry or a non-positive site grid.
  int add_chamber(const Microchamber& geometry, int cols, int rows);

  /// Connect two chambers with a transfer port. `a_site` / `b_site` must lie
  /// inside the respective site grids; channel dimensions must be positive
  /// (height 0 = min of the two chamber heights). Returns the port id.
  int add_port(int a, GridCoord a_site, int b, GridCoord b_site,
               double channel_length, double channel_width,
               double channel_height = 0.0);

  /// Declare an inlet: cells of the streaming arrival process enter
  /// `chamber` at `site`. Returns the inlet id (dense, 0-based — the id the
  /// arrival streams are keyed by, so it must be stable across topologies
  /// that share a prefix of inlets).
  int add_inlet(int chamber, GridCoord site);

  std::size_t chamber_count() const { return chambers_.size(); }
  std::size_t port_count() const { return ports_.size(); }
  std::size_t inlet_count() const { return inlets_.size(); }
  const ChamberSite& chamber(int id) const;
  const TransferPort& port(int id) const;
  const InletPort& inlet(int id) const;
  /// Ids of every inlet feeding a chamber, ascending.
  std::vector<int> inlets_of(int chamber) const;

  /// Ids of every port touching a chamber, ascending.
  std::vector<int> ports_of(int chamber) const;
  /// First port connecting `from` to `to` (either orientation), or nullopt.
  std::optional<int> port_between(int from, int to) const;
  /// Every port connecting `from` to `to` (either orientation), ascending —
  /// the escalation set a failed transfer can re-route through.
  std::vector<int> ports_between(int from, int to) const;
  bool connected(int from, int to) const { return port_between(from, to).has_value(); }

  /// Port endpoint inside `chamber` (throws when the port does not touch it).
  GridCoord port_site(int port, int chamber) const;

  /// Hydraulic circuit of the topology: one node per chamber, one
  /// rectangular channel per port. Pin pressures / inject flows on the
  /// returned network and solve; node ids equal chamber ids.
  HydraulicNetwork hydraulics(const physics::Medium& medium) const;

 private:
  std::vector<ChamberSite> chambers_;
  std::vector<TransferPort> ports_;
  std::vector<InletPort> inlets_;
};

}  // namespace biochip::fluidic
