#pragma once
/// \file flow.hpp
/// \brief Pressure-driven laminar flow in the chamber slot and its loads on
/// trapped cells.

#include "fluidic/chamber.hpp"
#include "physics/medium.hpp"

namespace biochip::fluidic {

/// Fully developed plane-Poiseuille flow between chip and lid.
class SlotFlow {
 public:
  /// `mean_velocity`: section-averaged velocity [m/s].
  SlotFlow(const Microchamber& chamber, const physics::Medium& medium,
           double mean_velocity);

  double mean_velocity() const { return mean_velocity_; }
  /// Velocity at height z above the chip (parabolic profile) [m/s].
  double velocity_at(double z) const;
  /// Peak (mid-gap) velocity = 1.5 × mean [m/s].
  double peak_velocity() const;
  /// Volumetric rate [m³/s].
  double flow_rate() const;
  /// Channel Reynolds number (hydraulic diameter based).
  double reynolds() const;
  /// Wall shear stress at the chip surface [Pa] — must stay below cell
  /// damage thresholds (~1 Pa for mammalian cells).
  double wall_shear_stress() const;
  /// Pressure gradient magnitude required to drive the flow [Pa/m].
  double pressure_gradient() const;
  /// Stokes drag on a particle of radius r held at height z [N].
  double drag_on_held_particle(double radius, double z) const;

 private:
  Microchamber chamber_;
  physics::Medium medium_;
  double mean_velocity_;
};

}  // namespace biochip::fluidic
