#include "fluidic/chamber_network.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace biochip::fluidic {

int ChamberNetwork::add_chamber(const Microchamber& geometry, int cols, int rows) {
  validate(geometry);
  if (cols < 1 || rows < 1)
    throw ConfigError("chamber needs a positive site grid, got " +
                      std::to_string(cols) + "x" + std::to_string(rows));
  chambers_.push_back({geometry, cols, rows});
  return static_cast<int>(chambers_.size()) - 1;
}

int ChamberNetwork::add_port(int a, GridCoord a_site, int b, GridCoord b_site,
                             double channel_length, double channel_width,
                             double channel_height) {
  const auto in_chamber = [&](int id, GridCoord s) {
    const ChamberSite& c = chamber(id);
    return s.col >= 0 && s.col < c.cols && s.row >= 0 && s.row < c.rows;
  };
  BIOCHIP_REQUIRE(a != b, "a port must connect two distinct chambers");
  BIOCHIP_REQUIRE(in_chamber(a, a_site) && in_chamber(b, b_site),
                  "port sites must lie inside their chamber site grids");
  if (channel_height == 0.0)
    channel_height =
        std::min(chamber(a).geometry.height, chamber(b).geometry.height);
  if (channel_length <= 0.0 || channel_width <= 0.0 || channel_height <= 0.0)
    throw ConfigError("port channel dimensions must be positive");
  ports_.push_back({a, a_site, b, b_site, channel_length, channel_width,
                    channel_height});
  return static_cast<int>(ports_.size()) - 1;
}

int ChamberNetwork::add_inlet(int chamber_id, GridCoord site) {
  const ChamberSite& c = chamber(chamber_id);  // validates the id
  BIOCHIP_REQUIRE(site.col >= 0 && site.col < c.cols && site.row >= 0 &&
                      site.row < c.rows,
                  "inlet site must lie inside its chamber site grid");
  inlets_.push_back({chamber_id, site});
  return static_cast<int>(inlets_.size()) - 1;
}

const InletPort& ChamberNetwork::inlet(int id) const {
  BIOCHIP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < inlets_.size(),
                  "unknown inlet id");
  return inlets_[static_cast<std::size_t>(id)];
}

std::vector<int> ChamberNetwork::inlets_of(int chamber_id) const {
  chamber(chamber_id);  // validates
  std::vector<int> out;
  for (std::size_t i = 0; i < inlets_.size(); ++i)
    if (inlets_[i].chamber == chamber_id) out.push_back(static_cast<int>(i));
  return out;
}

const ChamberSite& ChamberNetwork::chamber(int id) const {
  BIOCHIP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < chambers_.size(),
                  "unknown chamber id");
  return chambers_[static_cast<std::size_t>(id)];
}

const TransferPort& ChamberNetwork::port(int id) const {
  BIOCHIP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < ports_.size(),
                  "unknown port id");
  return ports_[static_cast<std::size_t>(id)];
}

std::vector<int> ChamberNetwork::ports_of(int chamber_id) const {
  chamber(chamber_id);  // validates
  std::vector<int> out;
  for (std::size_t p = 0; p < ports_.size(); ++p)
    if (ports_[p].a == chamber_id || ports_[p].b == chamber_id)
      out.push_back(static_cast<int>(p));
  return out;
}

std::optional<int> ChamberNetwork::port_between(int from, int to) const {
  chamber(from);
  chamber(to);
  for (std::size_t p = 0; p < ports_.size(); ++p)
    if ((ports_[p].a == from && ports_[p].b == to) ||
        (ports_[p].a == to && ports_[p].b == from))
      return static_cast<int>(p);
  return std::nullopt;
}

std::vector<int> ChamberNetwork::ports_between(int from, int to) const {
  chamber(from);
  chamber(to);
  std::vector<int> out;
  for (std::size_t p = 0; p < ports_.size(); ++p)
    if ((ports_[p].a == from && ports_[p].b == to) ||
        (ports_[p].a == to && ports_[p].b == from))
      out.push_back(static_cast<int>(p));
  return out;
}

GridCoord ChamberNetwork::port_site(int port_id, int chamber_id) const {
  const TransferPort& p = port(port_id);
  if (p.a == chamber_id) return p.a_site;
  if (p.b == chamber_id) return p.b_site;
  throw PreconditionError("port " + std::to_string(port_id) +
                          " does not touch chamber " + std::to_string(chamber_id));
}

HydraulicNetwork ChamberNetwork::hydraulics(const physics::Medium& medium) const {
  HydraulicNetwork net(medium);
  for (std::size_t c = 0; c < chambers_.size(); ++c)
    net.add_node("chamber" + std::to_string(c));
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const TransferPort& port = ports_[p];
    // channel_resistance's slot convention wants height <= width.
    const double w = std::max(port.channel_width, port.channel_height);
    const double h = std::min(port.channel_width, port.channel_height);
    net.add_channel(port.a, port.b, port.channel_length, w, h,
                    "port" + std::to_string(p));
  }
  return net;
}

}  // namespace biochip::fluidic
