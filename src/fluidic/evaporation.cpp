#include "fluidic/evaporation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::fluidic {

namespace {
/// Water vapor diffusivity in air [m²/s] near room temperature.
constexpr double kVaporDiffusivity = 2.5e-5;
/// Molar mass of water [kg/mol]; gas constant [J/(mol K)].
constexpr double kMolarMassWater = 0.018;
constexpr double kGasConstant = 8.314;

double vapor_concentration(double temperature, double vapor_pressure) {
  // Ideal gas: c = p M / (R T)  [kg/m³]
  return vapor_pressure * kMolarMassWater / (kGasConstant * temperature);
}
}  // namespace

double saturation_vapor_pressure(double temperature) {
  BIOCHIP_REQUIRE(temperature > 200.0 && temperature < 400.0,
                  "temperature outside Buck-equation validity");
  const double tc = temperature - 273.15;
  // Buck (1981), over liquid water; result in Pa.
  return 611.21 * std::exp((18.678 - tc / 234.5) * (tc / (257.14 + tc)));
}

double drop_evaporation_rate(double contact_radius, const Ambient& ambient) {
  BIOCHIP_REQUIRE(contact_radius > 0.0, "contact radius must be positive");
  BIOCHIP_REQUIRE(ambient.relative_humidity >= 0.0 && ambient.relative_humidity <= 1.0,
                  "relative humidity must be in [0,1]");
  const double c_sat =
      vapor_concentration(ambient.temperature, saturation_vapor_pressure(ambient.temperature));
  return 4.0 * kVaporDiffusivity * contact_radius * c_sat *
         (1.0 - ambient.relative_humidity);
}

double drop_lifetime(double volume, double contact_radius, const Ambient& ambient) {
  BIOCHIP_REQUIRE(volume > 0.0, "drop volume must be positive");
  const double rate = drop_evaporation_rate(contact_radius, ambient);
  return volume * constants::rho_water / rate;
}

double port_evaporation_rate(double port_area, double film, const Ambient& ambient) {
  BIOCHIP_REQUIRE(port_area > 0.0 && film > 0.0, "port area and film must be positive");
  const double c_sat =
      vapor_concentration(ambient.temperature, saturation_vapor_pressure(ambient.temperature));
  return kVaporDiffusivity * port_area * c_sat * (1.0 - ambient.relative_humidity) / film;
}

double osmolarity_drift_rate(double chamber_volume, double evaporation_rate) {
  BIOCHIP_REQUIRE(chamber_volume > 0.0, "chamber volume must be positive");
  const double volume_loss_rate = evaporation_rate / constants::rho_water;  // m³/s
  return volume_loss_rate / chamber_volume;
}

}  // namespace biochip::fluidic
