#include "cell/particle.hpp"

#include "common/error.hpp"
#include "common/units.hpp"
#include "physics/dep.hpp"

namespace biochip::cell {

std::complex<double> ParticleSpec::cm(const physics::Medium& medium, double frequency) const {
  return physics::cm_factor(dielectric, radius, medium, frequency);
}

double ParticleSpec::re_k(const physics::Medium& medium, double frequency) const {
  return cm(medium, frequency).real();
}

double ParticleSpec::dep_prefactor(const physics::Medium& medium, double frequency) const {
  return physics::dep_prefactor(medium, radius, re_k(medium, frequency));
}

double ParticleSpec::volume() const {
  return (4.0 / 3.0) * constants::pi * radius * radius * radius;
}

void validate(const ParticleSpec& spec) {
  if (!(spec.radius > 0.0)) throw ConfigError("particle radius must be > 0: " + spec.name);
  if (!(spec.density > 0.0)) throw ConfigError("particle density must be > 0: " + spec.name);
  if (spec.dielectric.shell.has_value()) {
    if (!(spec.dielectric.shell_thickness > 0.0) ||
        spec.dielectric.shell_thickness >= spec.radius)
      throw ConfigError("shell thickness must be in (0, radius): " + spec.name);
  }
}

}  // namespace biochip::cell
