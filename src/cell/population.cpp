#include "cell/population.hpp"

#include "common/error.hpp"

namespace biochip::cell {

std::vector<Instance> draw_population(const std::vector<MixtureComponent>& mixture,
                                      const Aabb& region, bool sedimented, Rng& rng) {
  BIOCHIP_REQUIRE(region.volume() > 0.0, "population region must be a non-empty box");
  std::vector<Instance> out;
  int next_id = 0;
  for (const MixtureComponent& comp : mixture) {
    validate(comp.spec);
    for (std::size_t n = 0; n < comp.count; ++n) {
      Instance inst;
      inst.id = next_id++;
      inst.label = comp.spec.name;
      inst.spec = comp.spec;
      inst.spec.radius = rng.lognormal_mean_cv(comp.spec.radius, comp.size_cv);
      const double z =
          sedimented ? region.min.z + inst.spec.radius * 1.05
                     : rng.uniform(region.min.z + inst.spec.radius,
                                   region.max.z - inst.spec.radius);
      inst.position = {rng.uniform(region.min.x + inst.spec.radius,
                                   region.max.x - inst.spec.radius),
                       rng.uniform(region.min.y + inst.spec.radius,
                                   region.max.y - inst.spec.radius),
                       z};
      out.push_back(std::move(inst));
    }
  }
  return out;
}

physics::ParticleBody to_body(const Instance& inst, const physics::Medium& medium,
                              double frequency) {
  physics::ParticleBody b;
  b.position = inst.position;
  b.radius = inst.spec.radius;
  b.density = inst.spec.density;
  b.dep_prefactor = inst.spec.dep_prefactor(medium, frequency);
  b.id = inst.id;
  return b;
}

std::vector<physics::ParticleBody> to_bodies(const std::vector<Instance>& population,
                                             const physics::Medium& medium,
                                             double frequency) {
  std::vector<physics::ParticleBody> out;
  out.reserve(population.size());
  for (const Instance& inst : population) out.push_back(to_body(inst, medium, frequency));
  return out;
}

}  // namespace biochip::cell
