#pragma once
/// \file library.hpp
/// \brief Parameter library of particles used across examples/benches.
///
/// Values are literature-typical (Jones; Pethig; Gascoyne) rather than
/// measured — the framework substitutes synthetic populations for the
/// paper's real samples, per the reproduction ground rules in DESIGN.md.

#include <vector>

#include "cell/particle.hpp"

namespace biochip::cell {

/// Polystyrene calibration bead of the given radius (default 5 µm).
ParticleSpec polystyrene_bead(double radius = 5e-6);

/// Viable mammalian cell (lymphocyte-like, ~5 µm): intact insulating
/// membrane over conductive cytoplasm — strong nDEP in low-σ buffer at MHz.
ParticleSpec viable_lymphocyte();

/// Non-viable counterpart: permeabilized membrane (shell conductivity up),
/// which collapses the shell response and shifts the crossover.
ParticleSpec nonviable_lymphocyte();

/// Erythrocyte (red blood cell), sphere-equivalent radius ~2.8 µm.
ParticleSpec erythrocyte();

/// K562 leukaemia line cell (~9 µm radius) — the large-cell manipulation case.
ParticleSpec k562_cell();

/// Two-shell nucleated lymphocyte: membrane + cytoplasm + nucleus occupying
/// ~55% of the inner radius (high N/C ratio typical of lymphocytes). Use to
/// probe the sensitivity of DEP signatures to internal structure.
ParticleSpec nucleated_lymphocyte();

/// Yeast (S. cerevisiae, ~4 µm radius, walled cell approximated as shelled).
ParticleSpec yeast();

/// E. coli sphere-equivalent (~1 µm) — small-particle limit for sensing.
ParticleSpec e_coli();

/// The whole library (for parameterized tests and reports).
std::vector<ParticleSpec> standard_library();

}  // namespace biochip::cell
