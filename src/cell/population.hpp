#pragma once
/// \file population.hpp
/// \brief Synthetic sample populations (the framework's substitute for real
/// biological samples).

#include <string>
#include <vector>

#include "cell/particle.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "physics/dynamics.hpp"

namespace biochip::cell {

/// One particle instance drawn from a spec.
struct Instance {
  int id = 0;
  std::string label;     ///< spec name (population identity for scoring)
  ParticleSpec spec;     ///< instance-specific (radius jittered) spec
  Vec3 position;         ///< current location [m]
};

/// Mixture component: a particle type with count and size dispersion.
struct MixtureComponent {
  ParticleSpec spec;
  std::size_t count = 0;
  double size_cv = 0.05;  ///< lognormal coefficient of variation on radius
};

/// Draw a mixed population with positions uniform in `region` (z placed at
/// sedimented height just above the floor when `sedimented` is true).
std::vector<Instance> draw_population(const std::vector<MixtureComponent>& mixture,
                                      const Aabb& region, bool sedimented, Rng& rng);

/// Convert an instance to a dynamics body at drive frequency f in `medium`.
physics::ParticleBody to_body(const Instance& inst, const physics::Medium& medium,
                              double frequency);

/// Convert a whole population.
std::vector<physics::ParticleBody> to_bodies(const std::vector<Instance>& population,
                                             const physics::Medium& medium, double frequency);

}  // namespace biochip::cell
