#include "cell/library.hpp"

namespace biochip::cell {

using physics::DielectricMaterial;
using physics::ParticleDielectric;

ParticleSpec polystyrene_bead(double radius) {
  ParticleSpec s;
  s.name = "polystyrene_bead";
  s.radius = radius;
  s.density = 1050.0;
  // Bulk polystyrene is a near-perfect insulator; a small effective bulk
  // conductivity stands in for surface conductance (2 Ks / R, Ks ~ 1 nS).
  s.dielectric = ParticleDielectric{.body = {2.55, 2.0e-4},
                                    .shell = {},
                                    .shell_thickness = 0.0,
                                    .nucleus = {},
                                    .nucleus_radius_fraction = 0.0};
  return s;
}

ParticleSpec viable_lymphocyte() {
  ParticleSpec s;
  s.name = "viable_lymphocyte";
  s.radius = 5.0e-6;
  s.density = 1070.0;
  s.dielectric = ParticleDielectric{
      .body = {60.0, 0.50},                  // cytoplasm
      .shell = DielectricMaterial{6.0, 1e-7},  // intact insulating membrane
      .shell_thickness = 7.0e-9,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

ParticleSpec nonviable_lymphocyte() {
  ParticleSpec s;
  s.name = "nonviable_lymphocyte";
  s.radius = 5.0e-6;
  s.density = 1070.0;
  s.dielectric = ParticleDielectric{
      .body = {60.0, 0.05},                    // ion-depleted cytoplasm
      .shell = DielectricMaterial{6.0, 1e-3},  // permeabilized membrane
      .shell_thickness = 7.0e-9,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

ParticleSpec erythrocyte() {
  ParticleSpec s;
  s.name = "erythrocyte";
  s.radius = 2.8e-6;
  s.density = 1100.0;
  s.dielectric = ParticleDielectric{
      .body = {59.0, 0.31},
      .shell = DielectricMaterial{4.4, 1e-6},
      .shell_thickness = 4.5e-9,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

ParticleSpec k562_cell() {
  ParticleSpec s;
  s.name = "k562_cell";
  s.radius = 9.0e-6;
  s.density = 1060.0;
  s.dielectric = ParticleDielectric{
      .body = {60.0, 0.40},
      .shell = DielectricMaterial{11.0, 1e-6},  // folded membrane: higher C_mem
      .shell_thickness = 8.0e-9,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

ParticleSpec nucleated_lymphocyte() {
  ParticleSpec s;
  s.name = "nucleated_lymphocyte";
  s.radius = 5.0e-6;
  s.density = 1070.0;
  s.dielectric = ParticleDielectric{
      .body = {60.0, 0.50},
      .shell = DielectricMaterial{6.0, 1e-7},
      .shell_thickness = 7.0e-9,
      .nucleus = DielectricMaterial{52.0, 1.35},  // nucleoplasm: ion-rich
      .nucleus_radius_fraction = 0.55,
  };
  return s;
}

ParticleSpec yeast() {
  ParticleSpec s;
  s.name = "yeast";
  s.radius = 4.0e-6;
  s.density = 1110.0;
  // Wall + membrane approximated as one effective shell.
  s.dielectric = ParticleDielectric{
      .body = {50.0, 0.20},
      .shell = DielectricMaterial{60.0, 0.014},
      .shell_thickness = 0.25e-6,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

ParticleSpec e_coli() {
  ParticleSpec s;
  s.name = "e_coli";
  s.radius = 1.0e-6;
  s.density = 1090.0;
  s.dielectric = ParticleDielectric{
      .body = {60.0, 0.19},
      .shell = DielectricMaterial{10.0, 1e-3},
      .shell_thickness = 20.0e-9,
      .nucleus = {},
      .nucleus_radius_fraction = 0.0,
  };
  return s;
}

std::vector<ParticleSpec> standard_library() {
  return {polystyrene_bead(), viable_lymphocyte(), nonviable_lymphocyte(),
          nucleated_lymphocyte(), erythrocyte(), k562_cell(), yeast(), e_coli()};
}

}  // namespace biochip::cell
