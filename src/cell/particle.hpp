#pragma once
/// \file particle.hpp
/// \brief Physical description of a suspended particle (bead or cell).

#include <string>

#include "physics/dielectrics.hpp"
#include "physics/medium.hpp"

namespace biochip::cell {

/// Complete physical description of a particle type.
struct ParticleSpec {
  std::string name;                        ///< human-readable type name
  double radius = 0.0;                     ///< nominal outer radius [m]
  double density = 0.0;                    ///< mass density [kg/m³]
  physics::ParticleDielectric dielectric;  ///< dielectric model

  /// Clausius-Mossotti factor at drive frequency f in the given medium.
  std::complex<double> cm(const physics::Medium& medium, double frequency) const;
  /// Re K at frequency f (sign decides pDEP vs nDEP).
  double re_k(const physics::Medium& medium, double frequency) const;
  /// DEP prefactor 2π ε_m R³ Re K at frequency f [F·m].
  double dep_prefactor(const physics::Medium& medium, double frequency) const;
  /// Particle volume [m³].
  double volume() const;
};

/// Throws ConfigError if the spec is not physically meaningful.
void validate(const ParticleSpec& spec);

}  // namespace biochip::cell
