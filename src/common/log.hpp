#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger. Defaults to warnings-and-up on stderr so
/// tests and benches stay quiet; examples raise verbosity.

#include <sstream>
#include <string>

namespace biochip {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (process-wide; not thread-synchronized by design —
/// set it once at startup).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style logging: BIOCHIP_LOG(kInfo) << "solved in " << n << " sweeps";
#define BIOCHIP_LOG(level_enum)                                              \
  for (bool biochip_log_once =                                               \
           (::biochip::LogLevel::level_enum >= ::biochip::log_level());      \
       biochip_log_once; biochip_log_once = false)                           \
  ::biochip::detail::LogLine(::biochip::LogLevel::level_enum)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, ss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace biochip
