#pragma once
/// \file geometry.hpp
/// \brief Small value-type vector/box geometry used throughout the framework.

#include <array>
#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <ostream>

namespace biochip {

/// 2-vector (double, SI units unless noted). Plain aggregate: no invariant.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm2() const { return x * x + y * y; }
  constexpr bool operator==(const Vec2&) const = default;
};
constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// 3-vector (double, SI units unless noted). Plain aggregate: no invariant.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double norm2() const { return x * x + y * y + z * z; }
  constexpr bool operator==(const Vec3&) const = default;
  constexpr Vec2 xy() const { return {x, y}; }
};
constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

std::ostream& operator<<(std::ostream& os, Vec2 v);
std::ostream& operator<<(std::ostream& os, Vec3 v);

/// Integer grid coordinate (electrode/pixel index). May be out of range of a
/// concrete array; consumers validate with `ElectrodeArray::contains`.
struct GridCoord {
  int col = 0;  ///< x index
  int row = 0;  ///< y index
  constexpr bool operator==(const GridCoord&) const = default;
  constexpr GridCoord operator+(GridCoord o) const { return {col + o.col, row + o.row}; }
  constexpr GridCoord operator-(GridCoord o) const { return {col - o.col, row - o.row}; }
};

/// L1 (Manhattan) distance between grid coordinates.
constexpr int manhattan(GridCoord a, GridCoord b) {
  const int dc = a.col - b.col;
  const int dr = a.row - b.row;
  return (dc < 0 ? -dc : dc) + (dr < 0 ? -dr : dr);
}

/// Chebyshev (L-inf) distance between grid coordinates.
constexpr int chebyshev(GridCoord a, GridCoord b) {
  int dc = a.col - b.col;
  if (dc < 0) dc = -dc;
  int dr = a.row - b.row;
  if (dr < 0) dr = -dr;
  return dc > dr ? dc : dr;
}

std::ostream& operator<<(std::ostream& os, GridCoord c);

/// Axis-aligned box in 3D. Empty when max < min on any axis.
struct Aabb {
  Vec3 min;
  Vec3 max;

  constexpr bool contains(Vec3 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }
  constexpr Vec3 extent() const { return max - min; }
  constexpr Vec3 center() const { return (min + max) * 0.5; }
  constexpr double volume() const {
    const Vec3 e = extent();
    return (e.x > 0 && e.y > 0 && e.z > 0) ? e.x * e.y * e.z : 0.0;
  }
  /// Clamp a point into the box.
  Vec3 clamp(Vec3 p) const;
};

/// Axis-aligned rectangle in 2D (used for fluidic mask polygons & CAD regions).
struct Rect {
  Vec2 min;
  Vec2 max;
  constexpr double width() const { return max.x - min.x; }
  constexpr double height() const { return max.y - min.y; }
  constexpr double area() const {
    const double w = width(), h = height();
    return (w > 0 && h > 0) ? w * h : 0.0;
  }
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  constexpr bool overlaps(const Rect& o) const {
    return min.x < o.max.x && o.min.x < max.x && min.y < o.max.y && o.min.y < max.y;
  }
};

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Clamp helper (std::clamp requires <algorithm>; this is constexpr-friendly).
constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace biochip
