#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biochip {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double Percentiles::percentile(double q) const {
  BIOCHIP_REQUIRE(!data_.empty(), "percentile on empty sample set");
  BIOCHIP_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q out of [0,100]");
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  if (data_.size() == 1) return data_.front();
  const double rank = q / 100.0 * static_cast<double>(data_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double t = rank - static_cast<double>(lo);
  return data_[lo] + (data_[hi] - data_[lo]) * t;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BIOCHIP_REQUIRE(hi > lo, "Histogram range inverted");
  BIOCHIP_REQUIRE(bins >= 1, "Histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double f = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  if (b >= counts_.size()) b = counts_.size() - 1;
  ++counts_[b];
}

std::size_t Histogram::bin_count(std::size_t b) const {
  BIOCHIP_REQUIRE(b < counts_.size(), "Histogram bin out of range");
  return counts_[b];
}

double Histogram::bin_center(std::size_t b) const {
  BIOCHIP_REQUIRE(b < counts_.size(), "Histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * w;
}

}  // namespace biochip
