#include "common/log.hpp"

#include <iostream>

#include "common/geometry.hpp"

namespace biochip {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::cerr << "[biochip " << level_name(level) << "] " << msg << "\n";
}
}  // namespace detail

// Stream operators for geometry types live here to keep geometry.hpp light.
std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}
std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}
std::ostream& operator<<(std::ostream& os, GridCoord c) {
  return os << "[" << c.col << ", " << c.row << "]";
}

Vec3 Aabb::clamp(Vec3 p) const {
  return {biochip::clamp(p.x, min.x, max.x), biochip::clamp(p.y, min.y, max.y),
          biochip::clamp(p.z, min.z, max.z)};
}

}  // namespace biochip
