#include "common/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace biochip {

namespace {
// Clamped continuous index -> (base node, fraction) for interpolation.
struct Frac {
  std::size_t i0;
  double t;
};
Frac split_axis(double pos, double spacing, std::size_t n) {
  if (n <= 1 || spacing <= 0.0) return {0, 0.0};
  double u = pos / spacing;
  const double umax = static_cast<double>(n - 1);
  if (u <= 0.0) return {0, 0.0};
  if (u >= umax) return {n - 2, 1.0};
  const double fl = std::floor(u);
  return {static_cast<std::size_t>(fl), u - fl};
}
}  // namespace

Grid2::Grid2(std::size_t nx, std::size_t ny, double spacing, double init)
    : nx_(nx), ny_(ny), spacing_(spacing), data_(nx * ny, init) {
  BIOCHIP_REQUIRE(nx >= 1 && ny >= 1, "Grid2 needs at least one node per axis");
  BIOCHIP_REQUIRE(spacing > 0.0, "Grid2 spacing must be positive");
}

double Grid2::sample(Vec2 p) const {
  const Frac fx = split_axis(p.x, spacing_, nx_);
  const Frac fy = split_axis(p.y, spacing_, ny_);
  const std::size_t i1 = (nx_ > 1) ? fx.i0 + 1 : fx.i0;
  const std::size_t j1 = (ny_ > 1) ? fy.i0 + 1 : fy.i0;
  const double v00 = at(fx.i0, fy.i0), v10 = at(i1, fy.i0);
  const double v01 = at(fx.i0, j1), v11 = at(i1, j1);
  return lerp(lerp(v00, v10, fx.t), lerp(v01, v11, fx.t), fy.t);
}

void Grid2::fill(double v) { std::fill(data_.begin(), data_.end(), v); }
double Grid2::min() const { return *std::min_element(data_.begin(), data_.end()); }
double Grid2::max() const { return *std::max_element(data_.begin(), data_.end()); }
double Grid2::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

Grid3::Grid3(std::size_t nx, std::size_t ny, std::size_t nz, double spacing, double init)
    : nx_(nx), ny_(ny), nz_(nz), spacing_(spacing), data_(nx * ny * nz, init) {
  BIOCHIP_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "Grid3 needs at least one node per axis");
  BIOCHIP_REQUIRE(spacing > 0.0, "Grid3 spacing must be positive");
}

double Grid3::sample(Vec3 p) const {
  const Frac fx = split_axis(p.x, spacing_, nx_);
  const Frac fy = split_axis(p.y, spacing_, ny_);
  const Frac fz = split_axis(p.z, spacing_, nz_);
  const std::size_t i1 = (nx_ > 1) ? fx.i0 + 1 : fx.i0;
  const std::size_t j1 = (ny_ > 1) ? fy.i0 + 1 : fy.i0;
  const std::size_t k1 = (nz_ > 1) ? fz.i0 + 1 : fz.i0;
  const double c000 = at(fx.i0, fy.i0, fz.i0), c100 = at(i1, fy.i0, fz.i0);
  const double c010 = at(fx.i0, j1, fz.i0), c110 = at(i1, j1, fz.i0);
  const double c001 = at(fx.i0, fy.i0, k1), c101 = at(i1, fy.i0, k1);
  const double c011 = at(fx.i0, j1, k1), c111 = at(i1, j1, k1);
  const double z0 = lerp(lerp(c000, c100, fx.t), lerp(c010, c110, fx.t), fy.t);
  const double z1 = lerp(lerp(c001, c101, fx.t), lerp(c011, c111, fx.t), fy.t);
  return lerp(z0, z1, fz.t);
}

Vec3 Grid3::gradient(Vec3 p) const {
  const double h = spacing_;
  // Central differences of the interpolant; sample() clamps at boundaries,
  // which degrades gracefully to one-sided differences there.
  const double dx = (sample({p.x + h, p.y, p.z}) - sample({p.x - h, p.y, p.z})) / (2.0 * h);
  const double dy = (sample({p.x, p.y + h, p.z}) - sample({p.x, p.y - h, p.z})) / (2.0 * h);
  const double dz = (sample({p.x, p.y, p.z + h}) - sample({p.x, p.y, p.z - h})) / (2.0 * h);
  return {dx, dy, dz};
}

void Grid3::fill(double v) { std::fill(data_.begin(), data_.end(), v); }
double Grid3::min() const { return *std::min_element(data_.begin(), data_.end()); }
double Grid3::max() const { return *std::max_element(data_.begin(), data_.end()); }

}  // namespace biochip
