#pragma once
/// \file table.hpp
/// \brief Console table / CSV writers used by benches and examples to print
/// the paper-reproduction rows in a uniform format.

#include <iosfwd>
#include <string>
#include <vector>

namespace biochip {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// sensible precision. Rendered with a header rule, suitable for bench logs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 4);
  Table& cell(int v);
  Table& cell(long v);
  Table& cell(unsigned long v);
  /// Engineering notation with SI prefix (e.g. 2.4e-5 -> "24 u").
  Table& cell_si(double v, const std::string& unit, int precision = 3);

  std::size_t rows() const { return cells_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180-ish; quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with SI engineering prefix: si_format(2.4e-5, "m") == "24 um".
std::string si_format(double v, const std::string& unit, int precision = 3);

/// Fixed-precision formatting helper.
std::string fmt(double v, int precision = 4);

/// Print a section banner (used by bench binaries to label reproduction tables).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace biochip
