#pragma once
/// \file stats.hpp
/// \brief Streaming statistics, percentiles, and histograms for experiments.

#include <cstddef>
#include <vector>

namespace biochip {

/// Welford streaming mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Standard error of the mean.
  double sem() const;
  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples for percentile queries (sorts lazily).
class Percentiles {
 public:
  void add(double x) { data_.push_back(x); sorted_ = false; }
  std::size_t count() const { return data_.size(); }
  /// Linear-interpolated percentile; q in [0,100]. Requires >=1 sample.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

/// Fixed-range uniform histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t b) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_center(std::size_t b) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace biochip
