#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component in the framework takes an explicit `Rng&` so
/// that experiments are reproducible from a single seed. The generator is
/// xoshiro256++ (Blackman & Vigna), which is fast, has a 2^256-1 period, and
/// is fully specified here (no standard-library distribution variability).

#include <array>
#include <cstdint>

namespace biochip {

/// xoshiro256++ PRNG with splitmix64 seeding. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically; two Rng with the same seed produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);
  /// Log-normal such that the *resulting* distribution has the given
  /// arithmetic mean and coefficient of variation (sigma/mean).
  double lognormal_mean_cv(double mean, double cv);
  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Poisson-distributed count with the given mean (Knuth for small, normal
  /// approximation for large means).
  std::uint64_t poisson(double mean);

  /// Derive an independent child stream (for per-agent/per-trial streams).
  /// Advances this generator; successive calls give distinct children.
  Rng split();

  /// Counter-based stream splitting: derive the `stream_id`-th child WITHOUT
  /// advancing this generator. The child depends only on (parent state,
  /// stream_id), so a population fanned out over worker threads gets the
  /// same per-member stream no matter how the work is partitioned or
  /// ordered — the foundation for deterministic parallel physics.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace biochip
