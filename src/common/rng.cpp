#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/units.hpp"

namespace biochip {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
constexpr std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BIOCHIP_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * constants::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::lognormal_mean_cv(double mean, double cv) {
  BIOCHIP_REQUIRE(mean > 0.0, "lognormal mean must be positive");
  BIOCHIP_REQUIRE(cv >= 0.0, "coefficient of variation must be non-negative");
  if (cv == 0.0) return mean;
  const double s2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * s2;
  return std::exp(normal(mu, std::sqrt(s2)));
}

double Rng::exponential(double mean) {
  BIOCHIP_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < clamp(p, 0.0, 1.0); }

std::uint64_t Rng::poisson(double mean) {
  BIOCHIP_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for model use.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

Rng Rng::split() { return Rng((*this)() ^ 0xD2B74407B1CE6E93ull); }

Rng Rng::fork(std::uint64_t stream_id) const {
  // Fold the full 256-bit parent state and the counter through splitmix64 so
  // nearby stream ids (0,1,2,...) land on unrelated seeds. Distinct from
  // split()'s constant to keep the two derivation families apart.
  std::uint64_t x = stream_id ^ 0xA0761D6478BD642Full;
  std::uint64_t seed = splitmix64(x);
  seed ^= s_[0] + splitmix64(x);
  seed ^= rotl(s_[1], 17) + splitmix64(x);
  seed ^= rotl(s_[2], 31) + splitmix64(x);
  seed ^= rotl(s_[3], 47) + splitmix64(x);
  return Rng(seed);
}

}  // namespace biochip
