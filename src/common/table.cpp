#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace biochip {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BIOCHIP_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  BIOCHIP_REQUIRE(!cells_.empty(), "call row() before cell()");
  BIOCHIP_REQUIRE(cells_.back().size() < headers_.size(), "row has too many cells");
  cells_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }
Table& Table::cell(double v, int precision) { return cell(fmt(v, precision)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(long v) { return cell(std::to_string(v)); }
Table& Table::cell(unsigned long v) { return cell(std::to_string(v)); }
Table& Table::cell_si(double v, const std::string& unit, int precision) {
  return cell(si_format(v, unit, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << s << " | ";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : cells_) emit_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << "\n";
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << quote(row[c]);
    os << "\n";
  }
}

std::string si_format(double v, const std::string& unit, int precision) {
  if (v == 0.0 || !std::isfinite(v)) {
    std::ostringstream ss;
    ss << v << " " << unit;
    return ss.str();
  }
  static const struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
                   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
                   {1e-18, "a"}};
  const double mag = std::fabs(v);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9999) {
      std::ostringstream ss;
      ss << std::setprecision(precision) << v / p.scale << " " << p.prefix << unit;
      return ss.str();
    }
  }
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v << " " << unit;
  return ss.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  const double mag = std::fabs(v);
  if (v != 0.0 && (mag >= 1e6 || mag < 1e-4))
    ss << std::scientific << std::setprecision(precision) << v;
  else
    ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n" << std::string(title.size() + 8, '=') << "\n"
     << "==  " << title << "  ==\n"
     << std::string(title.size() + 8, '=') << "\n";
}

}  // namespace biochip
