#pragma once
/// \file units.hpp
/// \brief SI unit literals and physical constants.
///
/// All quantities in the framework are plain `double`s in SI base units
/// (metres, seconds, volts, kilograms, kelvin, farads, ...). These literals
/// keep call sites readable (`20.0_um`, `3.3_V`, `1.0_MHz`) without the cost
/// and friction of a full dimensional-analysis type system.

namespace biochip::units {

// ---- length -------------------------------------------------------------
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_cm(long double v) { return static_cast<double>(v) * 1e-2; }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

// ---- time ---------------------------------------------------------------
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_min(long double v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_hour(long double v) { return static_cast<double>(v) * 3600.0; }
constexpr double operator""_day(long double v) { return static_cast<double>(v) * 86400.0; }

// ---- electrical ----------------------------------------------------------
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_aF(long double v) { return static_cast<double>(v) * 1e-18; }
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }

// ---- frequency -----------------------------------------------------------
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }

// ---- volume / mass / force ------------------------------------------------
constexpr double operator""_L(long double v) { return static_cast<double>(v) * 1e-3; }   // litre -> m^3
constexpr double operator""_mL(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uL(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nL(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_kg(long double v) { return static_cast<double>(v); }
constexpr double operator""_g(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_N(long double v) { return static_cast<double>(v); }
constexpr double operator""_pN(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fN(long double v) { return static_cast<double>(v) * 1e-15; }

// ---- temperature / misc ----------------------------------------------------
constexpr double operator""_K(long double v) { return static_cast<double>(v); }
constexpr double celsius(double c) { return c + 273.15; }

// ---- currency (design-flow cost models; unit: euro) ------------------------
constexpr double operator""_eur(long double v) { return static_cast<double>(v); }
constexpr double operator""_keur(long double v) { return static_cast<double>(v) * 1e3; }

}  // namespace biochip::units

namespace biochip::constants {

/// Vacuum permittivity [F/m].
inline constexpr double epsilon0 = 8.8541878128e-12;
/// Boltzmann constant [J/K].
inline constexpr double kB = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double qe = 1.602176634e-19;
/// Standard gravity [m/s^2].
inline constexpr double g0 = 9.80665;
/// Pi.
inline constexpr double pi = 3.14159265358979323846;
/// Relative permittivity of water at ~25 C.
inline constexpr double eps_r_water = 78.5;
/// Dynamic viscosity of water at ~25 C [Pa s].
inline constexpr double eta_water = 0.89e-3;
/// Density of water [kg/m^3].
inline constexpr double rho_water = 997.0;

}  // namespace biochip::constants
