#pragma once
/// \file error.hpp
/// \brief Exception types and contract-check helpers.
///
/// Policy (per C++ Core Guidelines E.*): throw on violated preconditions and
/// unrecoverable configuration errors; return values/optionals for expected
/// "no result" cases. All framework exceptions derive from `biochip::Error`
/// so callers can catch the whole family.

#include <stdexcept>
#include <string>

namespace biochip {

/// Root of the framework's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// A configuration (technology, geometry, process...) is internally inconsistent.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced non-finite values.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace biochip

/// Precondition check that throws `biochip::PreconditionError` with location info.
#define BIOCHIP_REQUIRE(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::biochip::detail::raise_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Debug-only variant for hot-path invariants (e.g. unchecked grid accessors):
/// full BIOCHIP_REQUIRE in debug builds, compiled out entirely under NDEBUG.
#if defined(NDEBUG)
#define BIOCHIP_DBG_REQUIRE(expr, msg) ((void)0)
#else
#define BIOCHIP_DBG_REQUIRE(expr, msg) BIOCHIP_REQUIRE(expr, msg)
#endif
