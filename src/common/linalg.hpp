#pragma once
/// \file linalg.hpp
/// \brief Small dense linear algebra used by solvers and fitting utilities.

#include <complex>
#include <cstddef>
#include <vector>

namespace biochip {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double init = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix operator*(const Matrix& o) const;
  std::vector<double> operator*(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws NumericError on a (numerically) singular matrix.
std::vector<double> solve_dense(Matrix a, std::vector<double> b);

/// Solve a tridiagonal system (Thomas algorithm).
/// `lower` has n-1 entries, `diag` n, `upper` n-1. Throws on zero pivot.
std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      std::vector<double> rhs);

/// Least-squares straight-line fit y = a + b x. Returns {a, b, r2}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fit y = c * x^p in log-log space (all x,y must be > 0). Returns {log c, p, r2}
/// mapped to {coefficient, exponent, r2}.
struct PowerFit {
  double coefficient = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};
PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace biochip
